/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (simulated-annealing moves,
 * synthetic trace skew, simulator arbitration tie-breaks) draw from this
 * generator so that every run is reproducible from a single seed. The
 * core is splitmix64 for seeding and xoshiro256** for the stream, both
 * public-domain algorithms reimplemented here.
 */

#ifndef MINNOC_UTIL_RNG_HPP
#define MINNOC_UTIL_RNG_HPP

#include <cstdint>
#include <limits>

#include "log.hpp"

namespace minnoc {

/**
 * A small, fast, deterministic RNG (xoshiro256**), seeded via splitmix64.
 *
 * Not cryptographically secure; statistical quality is more than enough
 * for annealing and workload synthesis.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : _state)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
        const std::uint64_t t = _state[1] << 17;
        _state[2] ^= _state[0];
        _state[3] ^= _state[1];
        _state[1] ^= _state[2];
        _state[0] ^= _state[3];
        _state[2] ^= t;
        _state[3] = rotl(_state[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound) using rejection to avoid modulo bias. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            panic("Rng::below called with bound 0");
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in the inclusive range [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        if (lo > hi)
            panic("Rng::range called with lo > hi");
        const auto span =
            static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
        return lo + static_cast<std::int64_t>(below(span));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Derive an independent child generator for parallel branch
     * @p stream without advancing this generator. Children of equal
     * (parent state, stream) pairs are identical, children of different
     * streams are decorrelated, so concurrent workers can each take a
     * deterministic stream regardless of execution order.
     */
    Rng
    split(std::uint64_t stream) const
    {
        std::uint64_t x = _state[0] ^ rotl(_state[1], 13) ^
                          rotl(_state[2], 27) ^ rotl(_state[3], 41);
        x += 0x9e3779b97f4a7c15ULL * (stream + 1);
        return Rng(splitmix64(x));
    }

    /** Fisher-Yates shuffle of a random-access container. */
    template <typename Container>
    void
    shuffle(Container &items)
    {
        const auto n = items.size();
        for (std::size_t i = n; i > 1; --i) {
            const std::size_t j = below(i);
            using std::swap;
            swap(items[i - 1], items[j]);
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t _state[4];
};

} // namespace minnoc

#endif // MINNOC_UTIL_RNG_HPP
