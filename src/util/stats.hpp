/**
 * @file
 * Statistics accumulators used by the simulator and benchmark harnesses.
 *
 * Provides a streaming scalar accumulator (count/mean/variance/min/max via
 * Welford's algorithm), a fixed-bin histogram, and a named stat registry
 * for human-readable dumps.
 */

#ifndef MINNOC_UTIL_STATS_HPP
#define MINNOC_UTIL_STATS_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "log.hpp"

namespace minnoc {

/**
 * Streaming scalar statistic: tracks count, sum, mean, variance, min, max
 * without storing samples (Welford's online algorithm).
 */
class ScalarStat
{
  public:
    /** Add one sample. */
    void
    sample(double value)
    {
        ++_count;
        _sum += value;
        const double delta = value - _mean;
        _mean += delta / static_cast<double>(_count);
        _m2 += delta * (value - _mean);
        _min = std::min(_min, value);
        _max = std::max(_max, value);
    }

    /** Merge another accumulator into this one (parallel-safe combine). */
    void
    merge(const ScalarStat &other)
    {
        if (other._count == 0)
            return;
        if (_count == 0) {
            *this = other;
            return;
        }
        const auto na = static_cast<double>(_count);
        const auto nb = static_cast<double>(other._count);
        const double delta = other._mean - _mean;
        const double total = na + nb;
        _mean += delta * nb / total;
        _m2 += other._m2 + delta * delta * na * nb / total;
        _count += other._count;
        _sum += other._sum;
        _min = std::min(_min, other._min);
        _max = std::max(_max, other._max);
    }

    std::uint64_t count() const { return _count; }
    double sum() const { return _sum; }
    double mean() const { return _count ? _mean : 0.0; }

    /** Population variance; zero when fewer than two samples. */
    double
    variance() const
    {
        return _count > 1 ? _m2 / static_cast<double>(_count) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    /** Reset to the empty state. */
    void reset() { *this = ScalarStat(); }

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width-bin histogram over [lo, hi); out-of-range samples land in
 * saturating underflow/overflow bins.
 */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the tracked range
     * @param hi exclusive upper bound of the tracked range
     * @param bins number of equal-width bins (must be > 0)
     */
    Histogram(double lo, double hi, std::size_t bins)
        : _lo(lo), _hi(hi), _counts(bins, 0)
    {
        if (bins == 0)
            panic("Histogram requires at least one bin");
        if (!(lo < hi))
            panic("Histogram requires lo < hi");
    }

    /** Add one sample. */
    void
    sample(double value)
    {
        ++_total;
        if (value < _lo) {
            ++_underflow;
        } else if (value >= _hi) {
            ++_overflow;
        } else {
            const double frac = (value - _lo) / (_hi - _lo);
            auto idx = static_cast<std::size_t>(
                frac * static_cast<double>(_counts.size()));
            idx = std::min(idx, _counts.size() - 1);
            ++_counts[idx];
        }
    }

    std::uint64_t total() const { return _total; }
    std::uint64_t underflow() const { return _underflow; }
    std::uint64_t overflow() const { return _overflow; }
    std::size_t bins() const { return _counts.size(); }
    std::uint64_t binCount(std::size_t i) const { return _counts.at(i); }

    /** Inclusive lower edge of bin @p i. */
    double
    binLo(std::size_t i) const
    {
        return _lo + (_hi - _lo) * static_cast<double>(i) /
                         static_cast<double>(_counts.size());
    }

  private:
    double _lo;
    double _hi;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _underflow = 0;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
};

/**
 * Named registry of scalar statistics for end-of-run dumps.
 * Ordered by name so output is deterministic.
 */
class StatRegistry
{
  public:
    /** Get or create the stat with the given name. */
    ScalarStat &operator[](const std::string &name) { return _stats[name]; }

    /** True if a stat with this name has been created. */
    bool
    contains(const std::string &name) const
    {
        return _stats.count(name) != 0;
    }

    /** Write "name: count mean min max" lines to @p os. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &[name, stat] : _stats) {
            os << name << ": count=" << stat.count()
               << " mean=" << stat.mean() << " min=" << stat.min()
               << " max=" << stat.max() << '\n';
        }
    }

    auto begin() const { return _stats.begin(); }
    auto end() const { return _stats.end(); }

  private:
    std::map<std::string, ScalarStat> _stats;
};

} // namespace minnoc

#endif // MINNOC_UTIL_STATS_HPP
