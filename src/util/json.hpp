/**
 * @file
 * Minimal header-only JSON parser — just enough for the test suite to
 * validate the observability exporters' output (metrics dumps, Chrome
 * trace-event files) without an external dependency. Strict on
 * structure, permissive on nothing: any malformed input returns
 * std::nullopt rather than a partial tree.
 */

#ifndef MINNOC_UTIL_JSON_HPP
#define MINNOC_UTIL_JSON_HPP

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace minnoc::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/** One JSON value: null / bool / number / string / array / object. */
class Value
{
  public:
    Value() : _data(nullptr) {}
    Value(std::nullptr_t) : _data(nullptr) {}
    Value(bool b) : _data(b) {}
    Value(double d) : _data(d) {}
    Value(std::string s) : _data(std::move(s)) {}
    Value(Array a) : _data(std::move(a)) {}
    Value(Object o) : _data(std::move(o)) {}

    bool isNull() const { return std::holds_alternative<std::nullptr_t>(_data); }
    bool isBool() const { return std::holds_alternative<bool>(_data); }
    bool isNumber() const { return std::holds_alternative<double>(_data); }
    bool isString() const { return std::holds_alternative<std::string>(_data); }
    bool isArray() const { return std::holds_alternative<Array>(_data); }
    bool isObject() const { return std::holds_alternative<Object>(_data); }

    bool asBool() const { return std::get<bool>(_data); }
    double asNumber() const { return std::get<double>(_data); }
    const std::string &asString() const { return std::get<std::string>(_data); }
    const Array &asArray() const { return std::get<Array>(_data); }
    const Object &asObject() const { return std::get<Object>(_data); }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *
    find(const std::string &key) const
    {
        if (!isObject())
            return nullptr;
        const auto &obj = asObject();
        const auto it = obj.find(key);
        return it == obj.end() ? nullptr : &it->second;
    }

  private:
    std::variant<std::nullptr_t, bool, double, std::string, Array,
                 Object>
        _data;
};

namespace detail {

class Parser
{
  public:
    explicit Parser(const std::string &text) : _text(text) {}

    std::optional<Value>
    run()
    {
        skipWs();
        auto v = parseValue();
        if (!v)
            return std::nullopt;
        skipWs();
        if (_pos != _text.size())
            return std::nullopt; // trailing garbage
        return v;
    }

  private:
    void
    skipWs()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos])))
            ++_pos;
    }

    bool
    consume(char c)
    {
        if (_pos < _text.size() && _text[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (_text.compare(_pos, n, word) == 0) {
            _pos += n;
            return true;
        }
        return false;
    }

    std::optional<Value>
    parseValue()
    {
        if (_pos >= _text.size())
            return std::nullopt;
        switch (_text[_pos]) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': {
            auto s = parseString();
            if (!s)
                return std::nullopt;
            return Value(std::move(*s));
        }
        case 't':
            return literal("true") ? std::optional<Value>(Value(true))
                                   : std::nullopt;
        case 'f':
            return literal("false") ? std::optional<Value>(Value(false))
                                    : std::nullopt;
        case 'n':
            return literal("null")
                       ? std::optional<Value>(Value(nullptr))
                       : std::nullopt;
        default: return parseNumber();
        }
    }

    std::optional<std::string>
    parseString()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (_pos < _text.size()) {
            const char c = _text[_pos++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (_pos >= _text.size())
                    return std::nullopt;
                const char esc = _text[_pos++];
                switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (_pos + 4 > _text.size())
                        return std::nullopt;
                    const auto hex = _text.substr(_pos, 4);
                    char *end = nullptr;
                    const long cp =
                        std::strtol(hex.c_str(), &end, 16);
                    if (end != hex.c_str() + 4)
                        return std::nullopt;
                    _pos += 4;
                    // ASCII-only escapes are all our emitters produce;
                    // encode anything else as UTF-8 (no surrogates).
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 |
                                                 ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                }
                default: return std::nullopt;
                }
            } else {
                out += c;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<Value>
    parseNumber()
    {
        const std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        while (_pos < _text.size() &&
               (std::isdigit(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '.' || _text[_pos] == 'e' ||
                _text[_pos] == 'E' || _text[_pos] == '+' ||
                _text[_pos] == '-'))
            ++_pos;
        if (_pos == start)
            return std::nullopt;
        const std::string tok = _text.substr(start, _pos - start);
        char *end = nullptr;
        const double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return std::nullopt;
        return Value(v);
    }

    std::optional<Value>
    parseArray()
    {
        if (!consume('['))
            return std::nullopt;
        Array arr;
        skipWs();
        if (consume(']'))
            return Value(std::move(arr));
        while (true) {
            skipWs();
            auto v = parseValue();
            if (!v)
                return std::nullopt;
            arr.push_back(std::move(*v));
            skipWs();
            if (consume(']'))
                return Value(std::move(arr));
            if (!consume(','))
                return std::nullopt;
        }
    }

    std::optional<Value>
    parseObject()
    {
        if (!consume('{'))
            return std::nullopt;
        Object obj;
        skipWs();
        if (consume('}'))
            return Value(std::move(obj));
        while (true) {
            skipWs();
            auto key = parseString();
            if (!key)
                return std::nullopt;
            skipWs();
            if (!consume(':'))
                return std::nullopt;
            skipWs();
            auto v = parseValue();
            if (!v)
                return std::nullopt;
            obj.emplace(std::move(*key), std::move(*v));
            skipWs();
            if (consume('}'))
                return Value(std::move(obj));
            if (!consume(','))
                return std::nullopt;
        }
    }

    const std::string &_text;
    std::size_t _pos = 0;
};

} // namespace detail

/** Parse @p text; std::nullopt on any syntax error. */
inline std::optional<Value>
parse(const std::string &text)
{
    return detail::Parser(text).run();
}

} // namespace minnoc::json

#endif // MINNOC_UTIL_JSON_HPP
