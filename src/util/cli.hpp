/**
 * @file
 * Shared command-line flag parsing for the minnoc tools and benches.
 *
 * One `--key value` / `--key=value` parser with a per-command allowlist
 * (unknown flags fail fast with the valid set) plus hardened numeric
 * conversion: garbage, signs, empty strings and out-of-range values all
 * produce a one-line fatal() instead of std::stoi exceptions or silent
 * wraparound. Extracted from tools/minnoc.cpp so every subcommand and
 * bench front-end shares the same behavior.
 */

#ifndef MINNOC_UTIL_CLI_HPP
#define MINNOC_UTIL_CLI_HPP

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "log.hpp"

namespace minnoc::cli {

/**
 * Parse @p text as an unsigned integer in [0, @p max]. @p what names
 * the flag in the one-line error message. Rejects empty strings,
 * leading signs (no silent negative wraparound), trailing garbage and
 * values beyond @p max.
 */
inline std::uint64_t
parseUnsigned(const std::string &what, const std::string &text,
              std::uint64_t max = std::numeric_limits<std::uint64_t>::max())
{
    if (text.empty() ||
        !std::isdigit(static_cast<unsigned char>(text.front())))
        fatal(what, ": '", text, "' is not an unsigned integer");
    errno = 0;
    char *end = nullptr;
    const auto v = std::strtoull(text.c_str(), &end, 10);
    if (*end != '\0')
        fatal(what, ": '", text, "' is not an unsigned integer");
    if (errno == ERANGE || v > max)
        fatal(what, ": ", text, " is out of range (max ", max, ")");
    return v;
}

/**
 * Parse @p text as a finite double. Accepts a leading '-'; rejects
 * empty strings, trailing garbage and overflow.
 */
inline double
parseDouble(const std::string &what, const std::string &text)
{
    if (text.empty())
        fatal(what, ": '' is not a number");
    errno = 0;
    char *end = nullptr;
    const auto v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal(what, ": '", text, "' is not a number");
    if (errno == ERANGE)
        fatal(what, ": ", text, " is out of range");
    return v;
}

/**
 * Parse a comma-separated unsigned list ("4,5,6"); empty items and the
 * empty string are rejected (a flag given with no usable values is a
 * user error, not an empty sweep).
 */
inline std::vector<std::uint64_t>
parseUnsignedList(const std::string &what, const std::string &text,
                  std::uint64_t max =
                      std::numeric_limits<std::uint64_t>::max())
{
    std::vector<std::uint64_t> values;
    std::stringstream ss(text);
    std::string item;
    while (std::getline(ss, item, ','))
        values.push_back(parseUnsigned(what, item, max));
    if (values.empty())
        fatal(what, ": expected a comma-separated list, got '", text, "'");
    return values;
}

/** parseUnsignedList narrowed to 32-bit elements. */
inline std::vector<std::uint32_t>
parseU32List(const std::string &what, const std::string &text)
{
    std::vector<std::uint32_t> values;
    for (const auto v : parseUnsignedList(
             what, text, std::numeric_limits<std::uint32_t>::max()))
        values.push_back(static_cast<std::uint32_t>(v));
    return values;
}

/**
 * Parsed command line: `--key value` or `--key=value` pairs plus
 * positionals. Each subcommand declares its valid flags; anything else
 * fails fast with the list instead of being silently ignored.
 */
struct Args
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> flags;

    static Args
    parse(int argc, char **argv, int start,
          const std::vector<std::string> &allowed)
    {
        Args args;
        for (int i = start; i < argc; ++i) {
            const std::string tok = argv[i];
            if (tok.rfind("--", 0) != 0) {
                args.positional.push_back(tok);
                continue;
            }
            std::string key;
            std::string value;
            const auto eq = tok.find('=');
            if (eq != std::string::npos) {
                key = tok.substr(2, eq - 2);
                value = tok.substr(eq + 1);
            } else {
                key = tok.substr(2);
                if (i + 1 >= argc)
                    fatal("flag --", key, " needs a value");
                value = argv[++i];
            }
            if (std::find(allowed.begin(), allowed.end(), key) ==
                allowed.end()) {
                std::string valid;
                for (const auto &f : allowed)
                    valid += (valid.empty() ? "--" : ", --") + f;
                fatal("unknown flag --", key, " (valid flags: ",
                      valid.empty() ? "none" : valid, ")");
            }
            if (args.flags.count(key))
                fatal("flag --", key,
                      " given more than once (the values would "
                      "silently overwrite each other)");
            args.flags[key] = value;
        }
        return args;
    }

    bool has(const std::string &key) const { return flags.count(key) > 0; }

    std::string
    get(const std::string &key, const std::string &def = "") const
    {
        const auto it = flags.find(key);
        return it == flags.end() ? def : it->second;
    }

    std::uint32_t
    getU32(const std::string &key, std::uint32_t def) const
    {
        const auto it = flags.find(key);
        if (it == flags.end())
            return def;
        return static_cast<std::uint32_t>(parseUnsigned(
            "flag --" + key, it->second,
            std::numeric_limits<std::uint32_t>::max()));
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t def) const
    {
        const auto it = flags.find(key);
        if (it == flags.end())
            return def;
        return parseUnsigned("flag --" + key, it->second);
    }

    double
    getDouble(const std::string &key, double def) const
    {
        const auto it = flags.find(key);
        if (it == flags.end())
            return def;
        return parseDouble("flag --" + key, it->second);
    }

    /** Comma-separated 32-bit list flag ("--degrees 4,5,6"). */
    std::vector<std::uint32_t>
    getU32List(const std::string &key,
               std::vector<std::uint32_t> def) const
    {
        const auto it = flags.find(key);
        if (it == flags.end())
            return def;
        return parseU32List("flag --" + key, it->second);
    }

    /** Comma-separated 64-bit list flag ("--seeds 1,2,3"). */
    std::vector<std::uint64_t>
    getU64List(const std::string &key,
               std::vector<std::uint64_t> def) const
    {
        const auto it = flags.find(key);
        if (it == flags.end())
            return def;
        return parseUnsignedList("flag --" + key, it->second);
    }
};

} // namespace minnoc::cli

#endif // MINNOC_UTIL_CLI_HPP
