/**
 * @file
 * Lightweight logging and error-reporting helpers.
 *
 * Modeled after the gem5 logging discipline: panic() for internal
 * invariant violations (aborts), fatal() for unrecoverable user errors
 * (clean exit), warn()/inform() for status messages. All helpers accept
 * printf-free, ostream-style formatting via variadic streaming.
 */

#ifndef MINNOC_UTIL_LOG_HPP
#define MINNOC_UTIL_LOG_HPP

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace minnoc {

/**
 * Thrown by fatal() instead of exiting when fatalThrows mode is on.
 * Long-running processes (the serve daemon) enable the mode once at
 * startup so a malformed submission surfaces as a structured error on
 * one request instead of killing every in-flight request with it.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(std::string message)
        : std::runtime_error(std::move(message))
    {
    }
};

/** Verbosity levels for runtime log filtering. */
enum class LogLevel : int {
    Silent = 0,
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
};

/**
 * Global log configuration. A single process-wide instance controls
 * the verbosity of inform()/debug() output; errors are always shown.
 */
class LogConfig
{
  public:
    /** Access the process-wide configuration. */
    static LogConfig &
    instance()
    {
        static LogConfig cfg;
        return cfg;
    }

    LogLevel level() const { return _level; }
    void level(LogLevel lvl) { _level = lvl; }

    /**
     * When on, fatal() throws FatalError instead of calling exit().
     * Process-wide; meant to be flipped once at daemon startup, before
     * worker threads exist.
     */
    bool fatalThrows() const
    {
        return _fatalThrows.load(std::memory_order_relaxed);
    }
    void fatalThrows(bool on)
    {
        _fatalThrows.store(on, std::memory_order_relaxed);
    }

    /** True if messages at @p lvl should be emitted. */
    bool
    enabled(LogLevel lvl) const
    {
        return static_cast<int>(lvl) <= static_cast<int>(_level);
    }

  private:
    LogConfig() = default;
    LogLevel _level = LogLevel::Warn;
    std::atomic<bool> _fatalThrows{false};
};

namespace detail {

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 * Use only for conditions that indicate a bug in this library.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::cerr << "panic: " << detail::concat(std::forward<Args>(args)...)
              << std::endl;
    std::abort();
}

/**
 * Report an unrecoverable user-level error (bad configuration, invalid
 * arguments) and exit with a failure code — or, in fatalThrows mode
 * (see LogConfig), throw FatalError so a serving process can turn the
 * condition into a per-request structured error instead of dying.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    auto message = detail::concat(std::forward<Args>(args)...);
    if (LogConfig::instance().fatalThrows())
        throw FatalError(std::move(message));
    std::cerr << "fatal: " << message << std::endl;
    std::exit(1);
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (LogConfig::instance().enabled(LogLevel::Warn)) {
        std::cerr << "warn: " << detail::concat(std::forward<Args>(args)...)
                  << std::endl;
    }
}

/** Emit an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (LogConfig::instance().enabled(LogLevel::Info)) {
        std::cout << "info: " << detail::concat(std::forward<Args>(args)...)
                  << std::endl;
    }
}

/** Emit a debug trace message. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (LogConfig::instance().enabled(LogLevel::Debug)) {
        std::cout << "debug: " << detail::concat(std::forward<Args>(args)...)
                  << std::endl;
    }
}

} // namespace minnoc

#endif // MINNOC_UTIL_LOG_HPP
