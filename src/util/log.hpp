/**
 * @file
 * Lightweight logging and error-reporting helpers.
 *
 * Modeled after the gem5 logging discipline: panic() for internal
 * invariant violations (aborts), fatal() for unrecoverable user errors
 * (clean exit), warn()/inform() for status messages. All helpers accept
 * printf-free, ostream-style formatting via variadic streaming.
 */

#ifndef MINNOC_UTIL_LOG_HPP
#define MINNOC_UTIL_LOG_HPP

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace minnoc {

/** Verbosity levels for runtime log filtering. */
enum class LogLevel : int {
    Silent = 0,
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
};

/**
 * Global log configuration. A single process-wide instance controls
 * the verbosity of inform()/debug() output; errors are always shown.
 */
class LogConfig
{
  public:
    /** Access the process-wide configuration. */
    static LogConfig &
    instance()
    {
        static LogConfig cfg;
        return cfg;
    }

    LogLevel level() const { return _level; }
    void level(LogLevel lvl) { _level = lvl; }

    /** True if messages at @p lvl should be emitted. */
    bool
    enabled(LogLevel lvl) const
    {
        return static_cast<int>(lvl) <= static_cast<int>(_level);
    }

  private:
    LogConfig() = default;
    LogLevel _level = LogLevel::Warn;
};

namespace detail {

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/**
 * Report an internal invariant violation and abort.
 * Use only for conditions that indicate a bug in this library.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::cerr << "panic: " << detail::concat(std::forward<Args>(args)...)
              << std::endl;
    std::abort();
}

/**
 * Report an unrecoverable user-level error (bad configuration, invalid
 * arguments) and exit with a failure code.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::cerr << "fatal: " << detail::concat(std::forward<Args>(args)...)
              << std::endl;
    std::exit(1);
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (LogConfig::instance().enabled(LogLevel::Warn)) {
        std::cerr << "warn: " << detail::concat(std::forward<Args>(args)...)
                  << std::endl;
    }
}

/** Emit an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (LogConfig::instance().enabled(LogLevel::Info)) {
        std::cout << "info: " << detail::concat(std::forward<Args>(args)...)
                  << std::endl;
    }
}

/** Emit a debug trace message. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    if (LogConfig::instance().enabled(LogLevel::Debug)) {
        std::cout << "debug: " << detail::concat(std::forward<Args>(args)...)
                  << std::endl;
    }
}

} // namespace minnoc

#endif // MINNOC_UTIL_LOG_HPP
