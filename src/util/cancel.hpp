/**
 * @file
 * Cooperative cancellation for long-running pipeline stages.
 *
 * A CancelToken is a tiny shared flag-plus-deadline that the serve
 * daemon, the CLI signal handlers, and the test harnesses hand down
 * into the methodology / DSE / simulator stack. The stack never blocks
 * on it; instead the expensive loops call checkpoint() at natural
 * yield points — once per partitioner restart, once per DSE job, every
 * few thousand simulator cycles — and a cancelled token surfaces as a
 * CancelledError that unwinds the whole pipeline without leaving
 * partial state behind. cancel() is a single relaxed atomic store, so
 * it is safe from signal handlers and from any thread.
 *
 * Tokens are runtime plumbing, never configuration: they are excluded
 * from every signature() that feeds content-addressed caches, so a
 * cancelled-and-retried job lands on the same cache key.
 */

#ifndef MINNOC_UTIL_CANCEL_HPP
#define MINNOC_UTIL_CANCEL_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace minnoc {

/** Why a token fired; picks the structured error a request maps to. */
enum class CancelReason : std::uint8_t {
    None = 0,
    Deadline,   ///< the per-request deadline expired
    Disconnect, ///< the submitting client went away
    Shutdown,   ///< the process is draining (SIGTERM/SIGINT)
};

/** Thrown by CancelToken::checkpoint() once the token has fired. */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(CancelReason reason)
        : std::runtime_error(describe(reason)), _reason(reason)
    {
    }

    CancelReason reason() const { return _reason; }

    static const char *
    describe(CancelReason reason)
    {
        switch (reason) {
          case CancelReason::Deadline: return "deadline exceeded";
          case CancelReason::Disconnect: return "client disconnected";
          case CancelReason::Shutdown: return "server shutting down";
          case CancelReason::None: break;
        }
        return "cancelled";
    }

  private:
    CancelReason _reason;
};

/**
 * Shared cancellation flag with an optional deadline. One writer side
 * (server, signal handler) cancels; many reader sides poll. All
 * members are lock-free atomics: cancel() is async-signal-safe and
 * cancelled() costs two relaxed loads plus, when a deadline is armed,
 * one steady_clock read.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** Monotonic now in microseconds (steady_clock). */
    static std::int64_t
    nowUs()
    {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
    }

    /** Arm a deadline @p us microseconds from now (0 disarms). */
    void
    setDeadlineIn(std::int64_t us)
    {
        _deadlineUs.store(us > 0 ? nowUs() + us : 0,
                          std::memory_order_relaxed);
    }

    /** Fire the token with @p reason (first reason wins). */
    void
    cancel(CancelReason reason = CancelReason::Shutdown)
    {
        CancelReason expected = CancelReason::None;
        _reason.compare_exchange_strong(expected, reason,
                                        std::memory_order_relaxed);
        _cancelled.store(true, std::memory_order_release);
    }

    /** Reset to the pristine state (single-threaded use only). */
    void
    reset()
    {
        _cancelled.store(false, std::memory_order_relaxed);
        _reason.store(CancelReason::None, std::memory_order_relaxed);
        _deadlineUs.store(0, std::memory_order_relaxed);
    }

    /** True once cancelled or past the armed deadline. */
    bool
    cancelled() const
    {
        if (_cancelled.load(std::memory_order_acquire))
            return true;
        const auto deadline =
            _deadlineUs.load(std::memory_order_relaxed);
        if (deadline > 0 && nowUs() >= deadline) {
            // Latch the deadline expiry so reason() is stable.
            CancelReason expected = CancelReason::None;
            _reason.compare_exchange_strong(expected,
                                            CancelReason::Deadline,
                                            std::memory_order_relaxed);
            _cancelled.store(true, std::memory_order_release);
            return true;
        }
        return false;
    }

    /** Why the token fired (None while still live). */
    CancelReason
    reason() const
    {
        return _reason.load(std::memory_order_relaxed);
    }

    /** Throw CancelledError if the token has fired. */
    void
    checkpoint() const
    {
        if (cancelled())
            throw CancelledError(reason());
    }

  private:
    mutable std::atomic<bool> _cancelled{false};
    mutable std::atomic<CancelReason> _reason{CancelReason::None};
    std::atomic<std::int64_t> _deadlineUs{0};
};

/**
 * Convenience for call sites holding a possibly-null token pointer —
 * the pattern every pipeline config uses (`const CancelToken *cancel`).
 */
inline void
checkCancel(const CancelToken *token)
{
    if (token)
        token->checkpoint();
}

} // namespace minnoc

#endif // MINNOC_UTIL_CANCEL_HPP
