/**
 * @file
 * Minimal fixed-size worker pool for the methodology's parallel phases.
 *
 * The restart loop and the route-optimizer baseline builds are
 * embarrassingly parallel: independent work items over shared read-only
 * state. This pool is deliberately small — a queue of type-erased tasks
 * drained by std::jthread workers — because the parallelism it hosts is
 * coarse (whole partitioning restarts, chunked pipe scans), not
 * fine-grained.
 */

#ifndef MINNOC_UTIL_THREAD_POOL_HPP
#define MINNOC_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace minnoc {

/** Fixed-size worker pool; tasks run FIFO, exceptions flow via futures. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to at least one). */
    explicit ThreadPool(unsigned threads)
    {
        if (threads == 0)
            threads = 1;
        _workers.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            _workers.emplace_back([this] { workerLoop(); });
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool()
    {
        {
            const std::scoped_lock lock(_mutex);
            _stopping = true;
        }
        _ready.notify_all();
        // _workers are jthreads declared last: they join here, before
        // the queue and mutex they reference are destroyed.
    }

    unsigned size() const { return static_cast<unsigned>(_workers.size()); }

    /** Enqueue @p fn; the future reports completion (or the exception). */
    std::future<void>
    submit(std::function<void()> fn)
    {
        std::packaged_task<void()> task(std::move(fn));
        std::future<void> future = task.get_future();
        {
            const std::scoped_lock lock(_mutex);
            _queue.push_back(std::move(task));
        }
        _ready.notify_one();
        return future;
    }

    /**
     * Run @p fn(i) for every i in [0, @p n) across the workers and wait
     * for all of them. Every task is waited on even when one throws, so
     * no task can outlive the references @p fn captures; the first
     * exception is then rethrown.
     */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &fn)
    {
        std::vector<std::future<void>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            futures.push_back(submit([&fn, i] { fn(i); }));
        std::exception_ptr first;
        for (auto &f : futures) {
            try {
                f.get();
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::packaged_task<void()> task;
            {
                std::unique_lock lock(_mutex);
                _ready.wait(lock,
                            [this] { return _stopping || !_queue.empty(); });
                if (_queue.empty())
                    return; // stopping and drained
                task = std::move(_queue.front());
                _queue.pop_front();
            }
            task(); // exceptions land in the task's future
        }
    }

    std::mutex _mutex;
    std::condition_variable _ready;
    std::deque<std::packaged_task<void()>> _queue;
    bool _stopping = false;
    std::vector<std::jthread> _workers; ///< keep last: joins first
};

} // namespace minnoc

#endif // MINNOC_UTIL_THREAD_POOL_HPP
