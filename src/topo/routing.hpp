/**
 * @file
 * Routing functions (paper Definition 6 and Section 4.2).
 *
 * The simulator asks the routing function, at each node, for the
 * candidate output links of a packet. Deterministic functions (source
 * routing on generated networks, dimension-order routing on meshes,
 * crossbar) return exactly one candidate; the torus's true fully
 * adaptive routing returns every minimal productive link and lets the
 * router pick by congestion.
 */

#ifndef MINNOC_TOPO_ROUTING_HPP
#define MINNOC_TOPO_ROUTING_HPP

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/finalize.hpp"
#include "core/types.hpp"
#include "topology.hpp"

namespace minnoc::topo {

/** Abstract per-hop routing decision. */
class RoutingFunction
{
  public:
    virtual ~RoutingFunction() = default;

    /**
     * Candidate output links at node @p cur for a packet travelling
     * from processor @p src to processor @p dst. Must be non-empty
     * whenever @p cur is not the destination end-node.
     */
    virtual std::vector<LinkId> candidates(NodeIdx cur, core::ProcId src,
                                           core::ProcId dst) const = 0;

    /** True when the function offers real choice (torus TFAR). */
    virtual bool adaptive() const { return false; }

    virtual std::string name() const = 0;
};

/**
 * Deterministic source routing backed by a per-pair link path table.
 * Paths include the injection and ejection links.
 */
class TableRouting : public RoutingFunction
{
  public:
    /** @param topo topology the paths refer to (must outlive this) */
    TableRouting(const Topology &topo, std::string name)
        : _topo(&topo), _name(std::move(name))
    {
    }

    /** Install the full link path for (src, dst). */
    void setPath(core::ProcId src, core::ProcId dst,
                 std::vector<LinkId> path);

    /** The installed path (panics when missing). */
    const std::vector<LinkId> &path(core::ProcId src,
                                    core::ProcId dst) const;

    /** True if a path is installed for (src, dst). */
    bool hasPath(core::ProcId src, core::ProcId dst) const;

    std::vector<LinkId> candidates(NodeIdx cur, core::ProcId src,
                                   core::ProcId dst) const override;

    std::string name() const override { return _name; }

  private:
    static std::uint64_t
    key(core::ProcId s, core::ProcId d)
    {
        return (static_cast<std::uint64_t>(s) << 32) | d;
    }

    const Topology *_topo;
    std::string _name;
    std::unordered_map<std::uint64_t, std::vector<LinkId>> _table;
};

/**
 * True fully adaptive minimal routing on a 2-D torus: every productive
 * (distance-reducing, with wraparound) output link is a candidate.
 * Deadlock freedom is *not* guaranteed; the simulator's detection and
 * regressive recovery handles cycles (paper Section 4.2).
 */
class TorusAdaptiveRouting : public RoutingFunction
{
  public:
    /**
     * @param topo the torus topology (switch (x,y) hosts proc y*w+x)
     * @param w torus width
     * @param h torus height
     */
    TorusAdaptiveRouting(const Topology &topo, std::uint32_t w,
                         std::uint32_t h);

    std::vector<LinkId> candidates(NodeIdx cur, core::ProcId src,
                                   core::ProcId dst) const override;

    bool adaptive() const override { return true; }
    std::string name() const override { return "torus-tfar"; }

  private:
    const Topology *_topo;
    std::uint32_t _w;
    std::uint32_t _h;
};

/**
 * Verify that @p routing delivers every src/dst pair on @p topo within a
 * hop budget (follows first candidates; adaptive functions are spot
 * checked on their first choice). Panics on a broken pair; used by
 * builders and tests.
 */
void validateRouting(const Topology &topo, const RoutingFunction &routing);

/** Build dimension-order (x then y) DOR paths for a @p w x @p h mesh. */
std::unique_ptr<TableRouting> makeMeshDorRouting(const Topology &topo,
                                                 std::uint32_t w,
                                                 std::uint32_t h);

/** Trivial two-hop paths through the single crossbar switch. */
std::unique_ptr<TableRouting> makeCrossbarRouting(const Topology &topo);

/**
 * Source routing for a generated network: communications known to the
 * design follow their finalized switch route, using on each pipe the
 * parallel link chosen by the finalization coloring; pairs the design
 * never saw (cross-pattern experiments) fall back to BFS-shortest
 * switch paths with round-robin parallel-link choice.
 */
std::unique_ptr<TableRouting>
makeDesignRouting(const Topology &topo, const core::FinalizedDesign &design);

/**
 * Up-star/down-star ("up*\/down*", Autonet) routing: orient every
 * inter-switch link "up" toward the root of a BFS spanning tree (ties
 * by switch id) and restrict every path to zero or more up hops
 * followed by zero or more down hops. Provably deadlock-free on any
 * topology -- the classic baseline for irregular switch networks, and
 * the guarantee the generated networks' source routing lacks. Paths
 * are shortest legal ones; parallel links are picked round-robin.
 */
std::unique_ptr<TableRouting> makeUpDownRouting(const Topology &topo);

} // namespace minnoc::topo

#endif // MINNOC_TOPO_ROUTING_HPP
