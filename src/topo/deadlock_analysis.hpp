/**
 * @file
 * Static deadlock analysis via channel dependency graphs.
 *
 * The paper reports that no deadlocks were detected in any simulation
 * and calls this "consistent with prior observations" of its reference
 * [20] (Warnakulasuriya & Pinkston's deadlock characterization in
 * irregular networks — the IRFlexSim lineage). This module makes that
 * observation checkable: it builds the exact channel dependency graph
 * (CDG) of a routing function over a topology — one vertex per
 * directed link, one edge per possible consecutive link pair over any
 * (source, destination) flow — and reports whether it is acyclic.
 *
 * Dally & Seitz: an acyclic CDG proves the routing deadlock-free on
 * wormhole networks; a cyclic CDG only indicates *potential* deadlock
 * (which regressive recovery then covers).
 */

#ifndef MINNOC_TOPO_DEADLOCK_ANALYSIS_HPP
#define MINNOC_TOPO_DEADLOCK_ANALYSIS_HPP

#include <string>
#include <vector>

#include "routing.hpp"
#include "topology.hpp"

namespace minnoc::topo {

/** Result of a CDG analysis. */
struct CdgReport
{
    /** True when the channel dependency graph has no cycle. */
    bool acyclic = false;

    /** Directed links that appear in at least one route. */
    std::size_t usedChannels = 0;

    /** Dependency edges (consecutive link pairs over all flows). */
    std::size_t dependencies = 0;

    /**
     * One cycle of links when cyclic (a witness of the potential
     * deadlock), empty otherwise.
     */
    std::vector<LinkId> cycleWitness;

    /** One-line summary for reports. */
    std::string toString() const;
};

/**
 * Build and analyze the exact CDG of @p routing on @p topo.
 *
 * Works for deterministic and adaptive functions alike: for every
 * (src, dst) pair the set of reachable "currently on link l" states is
 * explored through every candidate the function offers, so an adaptive
 * function contributes every dependency any of its choices can create.
 */
CdgReport analyzeChannelDependencies(const Topology &topo,
                                     const RoutingFunction &routing);

} // namespace minnoc::topo

#endif // MINNOC_TOPO_DEADLOCK_ANALYSIS_HPP
