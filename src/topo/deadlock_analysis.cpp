#include "deadlock_analysis.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "util/log.hpp"

namespace minnoc::topo {

std::string
CdgReport::toString() const
{
    std::ostringstream oss;
    oss << (acyclic ? "acyclic (deadlock-free)" : "cyclic")
        << ", channels=" << usedChannels
        << ", dependencies=" << dependencies;
    if (!acyclic)
        oss << ", cycle length " << cycleWitness.size();
    return oss.str();
}

namespace {

/** Iterative cycle search (white/grey/black DFS) on the CDG. */
std::vector<LinkId>
findCycle(const std::map<LinkId, std::set<LinkId>> &cdg)
{
    enum class Color { White, Grey, Black };
    std::map<LinkId, Color> color;
    for (const auto &[node, succs] : cdg)
        color[node] = Color::White;

    for (const auto &[root, rootSuccs] : cdg) {
        if (color[root] != Color::White)
            continue;

        // DFS with an explicit stack of (node, successor iterator).
        std::vector<std::pair<LinkId, std::set<LinkId>::const_iterator>>
            stack;
        std::vector<LinkId> path;
        color[root] = Color::Grey;
        stack.push_back({root, cdg.at(root).begin()});
        path.push_back(root);
        while (!stack.empty()) {
            auto &[node, it] = stack.back();
            const auto &succs = cdg.at(node);
            if (it == succs.end()) {
                color[node] = Color::Black;
                stack.pop_back();
                path.pop_back();
                continue;
            }
            const LinkId next = *it;
            ++it;
            const auto cit = color.find(next);
            if (cit == color.end())
                continue; // sink channel with no out-edges
            if (cit->second == Color::Grey) {
                // Found a cycle: slice the grey path from `next`.
                const auto start =
                    std::find(path.begin(), path.end(), next);
                return {start, path.end()};
            }
            if (cit->second == Color::White) {
                cit->second = Color::Grey;
                stack.push_back({next, cdg.at(next).begin()});
                path.push_back(next);
            }
        }
    }
    return {};
}

} // namespace

CdgReport
analyzeChannelDependencies(const Topology &topo,
                           const RoutingFunction &routing)
{
    // cdg[l1] = set of links a packet on l1 can need next.
    std::map<LinkId, std::set<LinkId>> cdg;
    std::set<LinkId> used;

    for (core::ProcId s = 0; s < topo.numProcs(); ++s) {
        for (core::ProcId d = 0; d < topo.numProcs(); ++d) {
            if (s == d)
                continue;
            const NodeIdx goal = topo.procNode(d);

            // BFS over "currently occupying link l" states, expanding
            // every candidate the routing function offers.
            std::set<LinkId> visited;
            std::deque<LinkId> frontier;
            for (const auto first :
                 routing.candidates(topo.procNode(s), s, d)) {
                if (visited.insert(first).second)
                    frontier.push_back(first);
            }
            std::size_t guard = 0;
            while (!frontier.empty()) {
                const LinkId cur = frontier.front();
                frontier.pop_front();
                used.insert(cur);
                const NodeIdx at = topo.link(cur).to;
                if (at == goal)
                    continue; // ejected
                if (++guard > 16u * topo.numLinks() * topo.numLinks())
                    panic("analyzeChannelDependencies: state explosion");
                for (const auto next : routing.candidates(at, s, d)) {
                    cdg[cur].insert(next);
                    if (visited.insert(next).second)
                        frontier.push_back(next);
                }
            }
        }
    }

    CdgReport report;
    report.usedChannels = used.size();
    for (const auto &[node, succs] : cdg)
        report.dependencies += succs.size();
    report.cycleWitness = findCycle(cdg);
    report.acyclic = report.cycleWitness.empty();
    return report;
}

} // namespace minnoc::topo
