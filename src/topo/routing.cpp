#include "routing.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "graph/connectivity.hpp"
#include "graph/digraph.hpp"
#include "util/log.hpp"

namespace minnoc::topo {

void
TableRouting::setPath(core::ProcId src, core::ProcId dst,
                      std::vector<LinkId> path)
{
    if (path.empty())
        panic("TableRouting: empty path for (", src, ",", dst, ")");
    // Validate continuity: each link starts where the previous ended.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        if (_topo->link(path[i]).to != _topo->link(path[i + 1]).from)
            panic("TableRouting '", _name, "': discontinuous path for (",
                  src, ",", dst, ")");
    }
    if (_topo->link(path.front()).from != _topo->procNode(src) ||
        _topo->link(path.back()).to != _topo->procNode(dst)) {
        panic("TableRouting '", _name, "': path endpoints wrong for (",
              src, ",", dst, ")");
    }
    _table[key(src, dst)] = std::move(path);
}

const std::vector<LinkId> &
TableRouting::path(core::ProcId src, core::ProcId dst) const
{
    const auto it = _table.find(key(src, dst));
    if (it == _table.end())
        panic("TableRouting '", _name, "': no path for (", src, ",", dst,
              ")");
    return it->second;
}

bool
TableRouting::hasPath(core::ProcId src, core::ProcId dst) const
{
    return _table.count(key(src, dst)) != 0;
}

std::vector<LinkId>
TableRouting::candidates(NodeIdx cur, core::ProcId src,
                         core::ProcId dst) const
{
    // Paths are simple (no node repeats), so the link leaving `cur` is
    // unique on the path.
    for (const LinkId id : path(src, dst)) {
        if (_topo->link(id).from == cur)
            return {id};
    }
    panic("TableRouting '", _name, "': node ", cur,
          " is not on the path (", src, ",", dst, ")");
}

TorusAdaptiveRouting::TorusAdaptiveRouting(const Topology &topo,
                                           std::uint32_t w, std::uint32_t h)
    : _topo(&topo), _w(w), _h(h)
{
    if (static_cast<std::uint64_t>(w) * h != topo.numProcs())
        panic("TorusAdaptiveRouting: ", w, "x", h, " != ",
              topo.numProcs(), " procs");
}

std::vector<LinkId>
TorusAdaptiveRouting::candidates(NodeIdx cur, core::ProcId src,
                                 core::ProcId dst) const
{
    (void)src;
    if (_topo->isProc(cur)) {
        // Only the source end-node ever routes: inject.
        return {_topo->injectionLink(_topo->procOf(cur))};
    }

    const core::SwitchId s = _topo->switchOf(cur);
    const std::uint32_t x = s % _w;
    const std::uint32_t y = s / _w;
    const std::uint32_t dx = dst % _w;
    const std::uint32_t dy = dst / _w;

    if (x == dx && y == dy)
        return {_topo->ejectionLink(dst)};

    std::vector<LinkId> out;
    auto addDir = [&](std::uint32_t nx, std::uint32_t ny) {
        const LinkId id = _topo->findLink(
            cur, _topo->switchNode(ny * _w + nx));
        if (id == kNoLink)
            panic("TorusAdaptiveRouting: missing torus link");
        out.push_back(id);
    };

    if (x != dx) {
        const std::uint32_t fwd = (dx + _w - x) % _w; // +x hops
        const std::uint32_t bwd = (x + _w - dx) % _w; // -x hops
        if (fwd <= bwd)
            addDir((x + 1) % _w, y);
        if (bwd <= fwd)
            addDir((x + _w - 1) % _w, y);
    }
    if (y != dy) {
        const std::uint32_t fwd = (dy + _h - y) % _h;
        const std::uint32_t bwd = (y + _h - dy) % _h;
        if (fwd <= bwd)
            addDir(x, (y + 1) % _h);
        if (bwd <= fwd)
            addDir(x, (y + _h - 1) % _h);
    }
    if (out.empty())
        panic("TorusAdaptiveRouting: no productive link at S", s,
              " for dst ", dst);
    return out;
}

void
validateRouting(const Topology &topo, const RoutingFunction &routing)
{
    for (core::ProcId s = 0; s < topo.numProcs(); ++s) {
        for (core::ProcId d = 0; d < topo.numProcs(); ++d) {
            if (s == d)
                continue;
            NodeIdx cur = topo.procNode(s);
            const NodeIdx goal = topo.procNode(d);
            std::size_t hops = 0;
            while (cur != goal) {
                const auto cands = routing.candidates(cur, s, d);
                if (cands.empty())
                    panic("validateRouting: no candidates at node ", cur,
                          " for (", s, ",", d, ")");
                cur = topo.link(cands.front()).to;
                if (++hops > 4ull * topo.numNodes())
                    panic("validateRouting: livelock for (", s, ",", d,
                          ")");
            }
        }
    }
}

std::unique_ptr<TableRouting>
makeMeshDorRouting(const Topology &topo, std::uint32_t w, std::uint32_t h)
{
    if (static_cast<std::uint64_t>(w) * h != topo.numProcs())
        panic("makeMeshDorRouting: bad dims");
    auto routing = std::make_unique<TableRouting>(topo, "mesh-dor");
    for (core::ProcId s = 0; s < topo.numProcs(); ++s) {
        for (core::ProcId d = 0; d < topo.numProcs(); ++d) {
            if (s == d)
                continue;
            std::vector<LinkId> path{topo.injectionLink(s)};
            std::uint32_t x = s % w;
            std::uint32_t y = s / w;
            const std::uint32_t dx = d % w;
            const std::uint32_t dy = d / w;
            auto hop = [&](std::uint32_t nx, std::uint32_t ny) {
                const LinkId id =
                    topo.findLink(topo.switchNode(y * w + x),
                                  topo.switchNode(ny * w + nx));
                if (id == kNoLink)
                    panic("makeMeshDorRouting: missing mesh link");
                path.push_back(id);
                x = nx;
                y = ny;
            };
            while (x != dx)
                hop(x < dx ? x + 1 : x - 1, y);
            while (y != dy)
                hop(x, y < dy ? y + 1 : y - 1);
            path.push_back(topo.ejectionLink(d));
            routing->setPath(s, d, std::move(path));
        }
    }
    return routing;
}

std::unique_ptr<TableRouting>
makeCrossbarRouting(const Topology &topo)
{
    auto routing = std::make_unique<TableRouting>(topo, "crossbar");
    for (core::ProcId s = 0; s < topo.numProcs(); ++s) {
        for (core::ProcId d = 0; d < topo.numProcs(); ++d) {
            if (s == d)
                continue;
            routing->setPath(
                s, d,
                {topo.injectionLink(s), topo.ejectionLink(d)});
        }
    }
    return routing;
}

std::unique_ptr<TableRouting>
makeDesignRouting(const Topology &topo, const core::FinalizedDesign &design)
{
    auto routing = std::make_unique<TableRouting>(topo, "source-routed");

    // Parallel links of a pipe, in finalization link-index order: the
    // builder adds them in that order, so findLinks preserves it.
    auto pipeLink = [&](core::SwitchId from, core::SwitchId to,
                        std::uint32_t index) {
        const auto links = topo.findLinks(topo.switchNode(from),
                                          topo.switchNode(to));
        if (index >= links.size())
            panic("makeDesignRouting: pipe S", from, "-S", to,
                  " has no link ", index);
        return links[index];
    };

    // Known communications: follow the finalized route and colors.
    for (core::CommId c = 0; c < design.comms.size(); ++c) {
        const auto &comm = design.comms[c];
        if (comm.src == comm.dst)
            continue;
        const auto &route = design.routes[c];
        std::vector<LinkId> path{topo.injectionLink(comm.src)};
        for (std::size_t i = 0; i + 1 < route.size(); ++i) {
            const core::PipeKey key(route[i], route[i + 1]);
            const std::size_t pi = design.pipeIndex(key);
            if (pi == core::FinalizedDesign::npos)
                panic("makeDesignRouting: route uses missing pipe");
            const auto &pipe = design.pipes[pi];
            const bool forward = route[i] < route[i + 1];
            const auto &linkOf = forward ? pipe.fwdLink : pipe.bwdLink;
            const auto it = linkOf.find(c);
            if (it == linkOf.end())
                panic("makeDesignRouting: comm missing link color");
            path.push_back(pipeLink(route[i], route[i + 1], it->second));
        }
        path.push_back(topo.ejectionLink(comm.dst));
        routing->setPath(comm.src, comm.dst, std::move(path));
    }

    // Fallback for pairs the design never saw (cross-pattern runs):
    // BFS-shortest switch paths, round-robin over parallel links.
    // Pipes may be one-directional (linksFwd xor linksBwd), so only
    // directions with at least one physical link enter the graph.
    graph::Digraph sg(design.numSwitches);
    for (const auto &pipe : design.pipes) {
        if (!topo.findLinks(topo.switchNode(pipe.key.a),
                            topo.switchNode(pipe.key.b)).empty())
            sg.addEdge(pipe.key.a, pipe.key.b);
        if (!topo.findLinks(topo.switchNode(pipe.key.b),
                            topo.switchNode(pipe.key.a)).empty())
            sg.addEdge(pipe.key.b, pipe.key.a);
    }
    std::map<std::pair<core::SwitchId, core::SwitchId>, std::uint32_t> rr;
    for (core::ProcId s = 0; s < topo.numProcs(); ++s) {
        for (core::ProcId d = 0; d < topo.numProcs(); ++d) {
            if (s == d || routing->hasPath(s, d))
                continue;
            const auto sw = design.procHome[s];
            const auto dw = design.procHome[d];
            std::vector<LinkId> path{topo.injectionLink(s)};
            if (sw != dw) {
                const auto hops = graph::shortestPathEdges(sg, sw, dw);
                if (hops.size() == 1 && hops.front() == graph::kNoEdge)
                    panic("makeDesignRouting: switch graph disconnected");
                for (const auto e : hops) {
                    const auto from =
                        static_cast<core::SwitchId>(sg.edge(e).src);
                    const auto to =
                        static_cast<core::SwitchId>(sg.edge(e).dst);
                    const auto parallel =
                        topo.findLinks(topo.switchNode(from),
                                       topo.switchNode(to));
                    auto &counter = rr[{from, to}];
                    path.push_back(parallel[counter % parallel.size()]);
                    ++counter;
                }
            }
            path.push_back(topo.ejectionLink(d));
            routing->setPath(s, d, std::move(path));
        }
    }
    return routing;
}

std::unique_ptr<TableRouting>
makeUpDownRouting(const Topology &topo)
{
    const std::uint32_t numSw = topo.numSwitches();
    if (numSw == 0)
        panic("makeUpDownRouting: no switches");

    // Undirected switch adjacency from the inter-switch links.
    graph::Digraph sg(numSw);
    for (const auto &link : topo.links()) {
        if (!topo.isProc(link.from) && !topo.isProc(link.to)) {
            sg.addEdge(topo.switchOf(link.from),
                       topo.switchOf(link.to));
        }
    }

    // BFS levels from switch 0 define the up orientation.
    const auto level = graph::bfsDistances(sg, 0);
    for (core::SwitchId s = 0; s < numSw; ++s) {
        if (level[s] < 0)
            panic("makeUpDownRouting: switch graph disconnected");
    }
    auto isUp = [&](core::SwitchId from, core::SwitchId to) {
        if (level[to] != level[from])
            return level[to] < level[from];
        return to < from; // tie-break by id
    };

    // Shortest legal (up* then down*) switch paths via BFS over
    // (switch, phase) states, phase = "has taken a down hop yet".
    auto legalPath = [&](core::SwitchId src,
                         core::SwitchId dst) -> std::vector<core::SwitchId> {
        if (src == dst)
            return {src};
        struct Prev
        {
            core::SwitchId sw = core::kNoSwitch;
            bool phase = false;
        };
        std::vector<std::array<Prev, 2>> parent(numSw);
        std::vector<std::array<bool, 2>> visited(numSw,
                                                 {false, false});
        std::deque<std::pair<core::SwitchId, bool>> frontier;
        visited[src][0] = true;
        frontier.push_back({src, false});
        while (!frontier.empty()) {
            const auto [sw, down] = frontier.front();
            frontier.pop_front();
            for (const auto next : sg.successors(sw)) {
                const bool hopUp = isUp(sw, next);
                if (down && hopUp)
                    continue; // down -> up is illegal
                const bool nextDown = down || !hopUp;
                if (visited[next][nextDown])
                    continue;
                visited[next][nextDown] = true;
                parent[next][nextDown] = Prev{sw, down};
                if (next == dst) {
                    std::vector<core::SwitchId> path{dst};
                    core::SwitchId cur = dst;
                    bool phase = nextDown;
                    while (cur != src) {
                        const Prev &pv = parent[cur][phase];
                        path.push_back(pv.sw);
                        phase = pv.phase;
                        cur = pv.sw;
                    }
                    std::reverse(path.begin(), path.end());
                    return path;
                }
                frontier.push_back({next, nextDown});
            }
        }
        panic("makeUpDownRouting: no legal path between S", src,
              " and S", dst);
    };

    auto routing = std::make_unique<TableRouting>(topo, "up-down");
    std::map<std::pair<core::SwitchId, core::SwitchId>, std::uint32_t> rr;
    for (core::ProcId s = 0; s < topo.numProcs(); ++s) {
        const auto sw =
            topo.switchOf(topo.link(topo.injectionLink(s)).to);
        for (core::ProcId d = 0; d < topo.numProcs(); ++d) {
            if (s == d)
                continue;
            const auto dw =
                topo.switchOf(topo.link(topo.injectionLink(d)).to);
            std::vector<LinkId> path{topo.injectionLink(s)};
            if (sw != dw) {
                const auto hops = legalPath(sw, dw);
                for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
                    const auto parallel =
                        topo.findLinks(topo.switchNode(hops[i]),
                                       topo.switchNode(hops[i + 1]));
                    if (parallel.empty())
                        panic("makeUpDownRouting: missing link");
                    auto &counter = rr[{hops[i], hops[i + 1]}];
                    path.push_back(parallel[counter % parallel.size()]);
                    ++counter;
                }
            }
            path.push_back(topo.ejectionLink(d));
            routing->setPath(s, d, std::move(path));
        }
    }
    return routing;
}

} // namespace minnoc::topo
