#include "power.hpp"

#include <sstream>

#include "util/log.hpp"

namespace minnoc::topo {

std::string
PowerModel::signature() const
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "esw=" << switchEnergyPerFlit
        << ";ewire=" << wireEnergyPerFlitTile
        << ";lsw=" << switchLeakagePerCycle
        << ";lwire=" << wireLeakagePerTileCycle;
    return oss.str();
}

std::string
EnergyReport::toString() const
{
    std::ostringstream oss;
    oss << "energy total=" << total() << " (dynamic " << dynamic()
        << ": switch " << switchDynamic << " + wire " << wireDynamic
        << "; leakage " << leakage() << ")";
    return oss.str();
}

EnergyReport
computeEnergy(const Topology &topo,
              const std::vector<std::uint64_t> &link_flits,
              std::int64_t cycles, const PowerModel &model)
{
    if (link_flits.size() != topo.numLinks())
        panic("computeEnergy: flit counts for ", link_flits.size(),
              " links but topology has ", topo.numLinks());

    EnergyReport report;
    std::uint64_t totalWire = 0;
    for (LinkId l = 0; l < topo.numLinks(); ++l) {
        const auto &link = topo.link(l);
        const auto flits = static_cast<double>(link_flits[l]);
        // Every flit crossing a link is absorbed by a switch or NI
        // stage at the far end: charge one switch traversal per hop.
        report.switchDynamic += flits * model.switchEnergyPerFlit;
        report.wireDynamic += flits * model.wireEnergyPerFlitTile *
                              static_cast<double>(link.length);
        totalWire += link.length;
    }
    const auto horizon = static_cast<double>(cycles);
    report.switchLeakage = horizon * model.switchLeakagePerCycle *
                           static_cast<double>(topo.numSwitches());
    report.wireLeakage = horizon * model.wireLeakagePerTileCycle *
                         static_cast<double>(totalWire);
    return report;
}

} // namespace minnoc::topo
