#include "power.hpp"

#include <sstream>

#include "util/log.hpp"

namespace minnoc::topo {

const char *
powerModelKindName(PowerModelKind kind)
{
    switch (kind) {
    case PowerModelKind::Static:
        return "static";
    case PowerModelKind::Activity:
        return "activity";
    }
    panic("powerModelKindName: bad kind ",
          static_cast<unsigned>(kind));
}

std::optional<PowerModelKind>
powerModelKindFromName(std::string_view name)
{
    if (name == "static")
        return PowerModelKind::Static;
    if (name == "activity")
        return PowerModelKind::Activity;
    return std::nullopt;
}

std::string
PowerModel::signature() const
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "esw=" << switchEnergyPerFlit
        << ";ewire=" << wireEnergyPerFlitTile
        << ";lsw=" << switchLeakagePerCycle
        << ";lwire=" << wireLeakagePerTileCycle;
    // Appended only when the activity tier is selected: static-model
    // signatures keep their historical bytes, so DSE cache entries and
    // golden designs made before this tier existed stay addressable.
    if (kind == PowerModelKind::Activity) {
        oss << ";act=1;ebw=" << bufferWriteEnergyPerFlit
            << ";ebr=" << bufferReadEnergyPerFlit
            << ";exb=" << xbarEnergyPerFlit
            << ";etg=" << linkToggleEnergyPerFlitTile
            << ";lbuf=" << bufferRetentionPerFlitCycle;
    }
    return oss.str();
}

std::string
EnergyReport::toString() const
{
    std::ostringstream oss;
    oss << "energy total=" << total() << " (dynamic " << dynamic()
        << ": switch " << switchDynamic << " + wire " << wireDynamic;
    if (bufferDynamic != 0.0)
        oss << " + buffer " << bufferDynamic;
    oss << "; leakage " << leakage() << ")";
    return oss.str();
}

EnergyReport
computeEnergy(const Topology &topo,
              const std::vector<std::uint64_t> &link_flits,
              std::int64_t cycles, const ActivityCounters &activity,
              const PowerModel &model)
{
    if (link_flits.size() != topo.numLinks())
        panic("computeEnergy: flit counts for ", link_flits.size(),
              " links but topology has ", topo.numLinks());

    EnergyReport report;
    std::uint64_t totalWire = 0;
    const bool act = model.kind == PowerModelKind::Activity;
    for (LinkId l = 0; l < topo.numLinks(); ++l) {
        const auto &link = topo.link(l);
        const auto flits = static_cast<double>(link_flits[l]);
        if (act) {
            report.wireDynamic += flits *
                                  model.linkToggleEnergyPerFlitTile *
                                  static_cast<double>(link.length);
        } else {
            // Every flit crossing a link is absorbed by a switch or NI
            // stage at the far end: charge one switch traversal per hop.
            report.switchDynamic += flits * model.switchEnergyPerFlit;
            report.wireDynamic += flits * model.wireEnergyPerFlitTile *
                                  static_cast<double>(link.length);
        }
        totalWire += link.length;
    }
    if (act) {
        report.switchDynamic =
            static_cast<double>(activity.bufferReads) *
            model.xbarEnergyPerFlit;
        report.bufferDynamic =
            static_cast<double>(activity.bufferWrites) *
                model.bufferWriteEnergyPerFlit +
            static_cast<double>(activity.bufferReads) *
                model.bufferReadEnergyPerFlit;
        report.bufferLeakage =
            static_cast<double>(activity.residentFlitCycles) *
            model.bufferRetentionPerFlitCycle;
    }
    const auto horizon = static_cast<double>(cycles);
    report.switchLeakage = horizon * model.switchLeakagePerCycle *
                           static_cast<double>(topo.numSwitches());
    report.wireLeakage = horizon * model.wireLeakagePerTileCycle *
                         static_cast<double>(totalWire);
    return report;
}

EnergyReport
computeEnergy(const Topology &topo,
              const std::vector<std::uint64_t> &link_flits,
              std::int64_t cycles, const PowerModel &model)
{
    return computeEnergy(topo, link_flits, cycles, ActivityCounters{},
                         model);
}

} // namespace minnoc::topo
