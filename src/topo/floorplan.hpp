/**
 * @file
 * Tile floorplanner and area model (paper Section 4.1, Figure 6).
 *
 * The chip is a grid of processor tiles. Each tile hosts one processor;
 * switches sit at tile corners and up to four tiles can share one corner
 * (the paper's rotated-tile trick), so a 5-port switch can serve four
 * processors plus one network link with zero proc-link area. The area
 * accounting follows the paper:
 *  - every 5-port switch costs one unit of switch area;
 *  - a link's area equals the Manhattan distance between the corners of
 *    the switches it connects (co-located corners cost zero, mesh
 *    neighbors cost one);
 *  - a processor's link to its switch is free when the switch sits on a
 *    corner of its tile and costs the corner distance otherwise.
 *
 * Placement of the generated (irregular) networks is automated with
 * simulated annealing over processor-to-tile assignments.
 */

#ifndef MINNOC_TOPO_FLOORPLAN_HPP
#define MINNOC_TOPO_FLOORPLAN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/finalize.hpp"
#include "util/rng.hpp"

namespace minnoc::topo {

/** Integer point on the tile / corner grid. */
struct GridPoint
{
    std::int32_t x = 0;
    std::int32_t y = 0;

    bool operator==(const GridPoint &o) const = default;
};

/** Manhattan distance between two grid points. */
inline std::uint32_t
manhattan(const GridPoint &a, const GridPoint &b)
{
    const std::int32_t dx = a.x > b.x ? a.x - b.x : b.x - a.x;
    const std::int32_t dy = a.y > b.y ? a.y - b.y : b.y - a.y;
    return static_cast<std::uint32_t>(dx + dy);
}

/** Floorplanner knobs. */
struct FloorplanConfig
{
    std::uint64_t seed = 1;
    /** Annealing sweeps over all processor pairs. */
    std::uint32_t sweeps = 64;
    double t0 = 4.0;
    double alpha = 0.92;

    /**
     * Canonical parameter string for content-addressed caching: equal
     * signatures guarantee identical placements for the same design.
     */
    std::string signature() const;
};

/**
 * A computed floorplan: tile positions per processor, corner positions
 * per switch, and the resulting area split.
 */
struct Floorplan
{
    std::uint32_t tilesX = 0;
    std::uint32_t tilesY = 0;
    /** Tile of each processor (tile (x,y) spans corners (x..x+1, y..y+1)). */
    std::vector<GridPoint> procTile;
    /** Corner point of each switch. */
    std::vector<GridPoint> switchCorner;

    /** Switch area in units (one per switch). */
    std::uint32_t switchArea = 0;
    /** Total inter-switch link area (Manhattan, co-located = 0). */
    std::uint32_t linkArea = 0;
    /** Total processor-to-switch link area (0 when corner-adjacent). */
    std::uint32_t procLinkArea = 0;

    /** Combined silicon cost: switch + link + proc-link area. */
    std::uint32_t
    totalArea() const
    {
        return switchArea + linkArea + procLinkArea;
    }

    /** Link length (for wire delay) between two switches: max(1, dist). */
    std::uint32_t switchDistance(core::SwitchId a, core::SwitchId b) const;

    /** Corner distance of proc @p p to its switch corner. */
    std::uint32_t procDistance(core::ProcId p,
                               core::SwitchId home) const;

    /** ASCII rendering for reports. */
    std::string toString() const;
};

/**
 * Analytic mesh floorplan areas for @p procs processors arranged on the
 * most-square grid (used as the normalization baseline of Figure 7).
 * Returns {switchArea, linkArea}.
 */
std::pair<std::uint32_t, std::uint32_t> meshAreas(std::uint32_t procs);

/** Torus baseline areas: same switches, folded links of length 2. */
std::pair<std::uint32_t, std::uint32_t> torusAreas(std::uint32_t procs);

/** Most-square tile grid dimensions for @p procs tiles. */
std::pair<std::uint32_t, std::uint32_t> gridDims(std::uint32_t procs);

/**
 * Place a finalized design on the tile grid: annealed processor-to-tile
 * assignment, switches snapped to the corner minimizing their members'
 * and pipes' cost, and the paper's area accounting filled in.
 */
Floorplan planFloor(const core::FinalizedDesign &design,
                    const FloorplanConfig &config = {});

} // namespace minnoc::topo

#endif // MINNOC_TOPO_FLOORPLAN_HPP
