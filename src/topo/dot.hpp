/**
 * @file
 * Graphviz DOT export for topologies and finalized designs.
 *
 * Lets users *see* the generated networks (the paper communicates them
 * as figures): `dot -Tpng` on the output reproduces Figure-5(f)-style
 * diagrams with processors as boxes, switches as circles, and pipe
 * widths as edge labels.
 */

#ifndef MINNOC_TOPO_DOT_HPP
#define MINNOC_TOPO_DOT_HPP

#include <iosfwd>

#include "core/finalize.hpp"
#include "topology.hpp"

namespace minnoc::topo {

/**
 * Write a finalized design as an undirected DOT graph: switches with
 * their attached processors, one edge per pipe labeled with its link
 * (or fwd/bwd channel) count; connectivity-only pipes dashed.
 */
void writeDesignDot(const core::FinalizedDesign &design, std::ostream &os);

/**
 * Write a concrete topology as a DOT graph (one edge per duplex pair
 * or lone channel, labeled with length).
 */
void writeTopologyDot(const Topology &topo, std::ostream &os);

} // namespace minnoc::topo

#endif // MINNOC_TOPO_DOT_HPP
