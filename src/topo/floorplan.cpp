#include "floorplan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/log.hpp"

namespace minnoc::topo {

std::string
FloorplanConfig::signature() const
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "fpseed=" << seed << ";sweeps=" << sweeps << ";t0=" << t0
        << ";alpha=" << alpha;
    return oss.str();
}

std::uint32_t
Floorplan::switchDistance(core::SwitchId a, core::SwitchId b) const
{
    const auto d = manhattan(switchCorner.at(a), switchCorner.at(b));
    return d ? d : 1; // wire delay floor of one tile
}

std::uint32_t
Floorplan::procDistance(core::ProcId p, core::SwitchId home) const
{
    const GridPoint tile = procTile.at(p);
    const GridPoint sw = switchCorner.at(home);
    std::uint32_t best = static_cast<std::uint32_t>(-1);
    for (const std::int32_t dx : {0, 1}) {
        for (const std::int32_t dy : {0, 1}) {
            const GridPoint corner{tile.x + dx, tile.y + dy};
            best = std::min(best, manhattan(corner, sw));
        }
    }
    return best;
}

std::string
Floorplan::toString() const
{
    std::ostringstream oss;
    oss << "Floorplan " << tilesX << "x" << tilesY
        << " switchArea=" << switchArea << " linkArea=" << linkArea
        << " procLinkArea=" << procLinkArea << "\n";
    for (std::uint32_t p = 0; p < procTile.size(); ++p) {
        oss << "  P" << p << " tile(" << procTile[p].x << ","
            << procTile[p].y << ")\n";
    }
    for (std::uint32_t s = 0; s < switchCorner.size(); ++s) {
        oss << "  S" << s << " corner(" << switchCorner[s].x << ","
            << switchCorner[s].y << ")\n";
    }
    return oss.str();
}

std::pair<std::uint32_t, std::uint32_t>
gridDims(std::uint32_t procs)
{
    if (procs == 0)
        panic("gridDims: zero processors");
    // Most-square factorization; fall back to a ceil grid for primes.
    const auto root =
        static_cast<std::uint32_t>(std::sqrt(static_cast<double>(procs)));
    for (std::uint32_t h = root; h >= 1; --h) {
        if (procs % h == 0)
            return {procs / h, h};
    }
    const std::uint32_t w = root + 1;
    return {w, (procs + w - 1) / w};
}

std::pair<std::uint32_t, std::uint32_t>
meshAreas(std::uint32_t procs)
{
    const auto [w, h] = gridDims(procs);
    const std::uint32_t switchArea = procs;
    // Duplex mesh connections, one unit of area each (Figure 6a); a
    // full-duplex connection is counted once, as in the paper.
    const std::uint32_t linkArea = (w - 1) * h + w * (h - 1);
    return {switchArea, linkArea};
}

std::pair<std::uint32_t, std::uint32_t>
torusAreas(std::uint32_t procs)
{
    const auto [w, h] = gridDims(procs);
    const std::uint32_t switchArea = procs;
    // Folded torus: every ring of k switches has k connections, all of
    // physical length 2, doubling the mesh's total link area.
    const std::uint32_t connections = w * h * 2;
    return {switchArea, connections * 2};
}

namespace {

/** Candidate corners of a tile. */
std::vector<GridPoint>
tileCorners(const GridPoint &tile)
{
    return {GridPoint{tile.x, tile.y}, GridPoint{tile.x + 1, tile.y},
            GridPoint{tile.x, tile.y + 1},
            GridPoint{tile.x + 1, tile.y + 1}};
}

/** Full placement cost evaluator: relaxes switch corners, sums areas. */
class PlacementCost
{
  public:
    PlacementCost(const core::FinalizedDesign &design)
        : _design(design)
    {
    }

    /**
     * Given processor tiles, choose switch corners by a few relaxation
     * sweeps and return the total link + proc-link area.
     */
    std::uint32_t
    evaluate(const std::vector<GridPoint> &procTile,
             std::vector<GridPoint> &corners) const
    {
        const auto numSwitches = _design.numSwitches;
        corners.assign(numSwitches, GridPoint{});

        // Initialize each switch at the first corner of its first proc's
        // tile (every switch owns at least one proc after partitioning;
        // guard anyway).
        for (core::SwitchId s = 0; s < numSwitches; ++s) {
            if (!_design.switchProcs[s].empty()) {
                const auto p = _design.switchProcs[s].front();
                corners[s] = procTile[p];
            }
        }

        // Relax: move each switch to the member-tile corner minimizing
        // its local cost, holding the others fixed.
        for (int pass = 0; pass < 3; ++pass) {
            for (core::SwitchId s = 0; s < numSwitches; ++s)
                relaxSwitch(s, procTile, corners);
        }
        return totalCost(procTile, corners);
    }

    std::uint32_t
    totalCost(const std::vector<GridPoint> &procTile,
              const std::vector<GridPoint> &corners) const
    {
        std::uint32_t cost = 0;
        for (const auto &pipe : _design.pipes) {
            cost += pipe.links *
                    manhattan(corners[pipe.key.a], corners[pipe.key.b]);
        }
        for (core::ProcId p = 0; p < _design.numProcs; ++p) {
            const auto home = _design.procHome[p];
            std::uint32_t best = static_cast<std::uint32_t>(-1);
            for (const auto &c : tileCorners(procTile[p]))
                best = std::min(best, manhattan(c, corners[home]));
            cost += best;
        }
        return cost;
    }

  private:
    void
    relaxSwitch(core::SwitchId s, const std::vector<GridPoint> &procTile,
                std::vector<GridPoint> &corners) const
    {
        // Candidates: every corner of every member tile.
        std::vector<GridPoint> candidates;
        for (const auto p : _design.switchProcs[s]) {
            for (const auto &c : tileCorners(procTile[p]))
                candidates.push_back(c);
        }
        if (candidates.empty())
            return;

        std::uint32_t bestCost = static_cast<std::uint32_t>(-1);
        GridPoint bestCorner = corners[s];
        for (const auto &cand : candidates) {
            std::uint32_t cost = 0;
            for (const auto &pipe : _design.pipes) {
                if (pipe.key.a == s) {
                    cost +=
                        pipe.links * manhattan(cand, corners[pipe.key.b]);
                } else if (pipe.key.b == s) {
                    cost +=
                        pipe.links * manhattan(cand, corners[pipe.key.a]);
                }
            }
            for (const auto p : _design.switchProcs[s]) {
                std::uint32_t d = static_cast<std::uint32_t>(-1);
                for (const auto &c : tileCorners(procTile[p]))
                    d = std::min(d, manhattan(c, cand));
                cost += d;
            }
            if (cost < bestCost) {
                bestCost = cost;
                bestCorner = cand;
            }
        }
        corners[s] = bestCorner;
    }

    const core::FinalizedDesign &_design;
};

} // namespace

Floorplan
planFloor(const core::FinalizedDesign &design, const FloorplanConfig &config)
{
    Floorplan plan;
    const auto [w, h] = gridDims(design.numProcs);
    plan.tilesX = w;
    plan.tilesY = h;

    // Initial assignment: scan tiles in 2x2-block order and fill with
    // processors grouped by switch, so co-switched processors start in
    // compact blocks (the paper's shared-corner layout).
    std::vector<GridPoint> tiles;
    for (std::uint32_t by = 0; by < h; by += 2) {
        for (std::uint32_t bx = 0; bx < w; bx += 2) {
            for (const auto &[dx, dy] :
                 std::vector<std::pair<std::uint32_t, std::uint32_t>>{
                     {0, 0}, {1, 0}, {0, 1}, {1, 1}}) {
                const std::uint32_t x = bx + dx;
                const std::uint32_t y = by + dy;
                if (x < w && y < h) {
                    tiles.push_back(GridPoint{static_cast<std::int32_t>(x),
                                              static_cast<std::int32_t>(y)});
                }
            }
        }
    }
    if (tiles.size() < design.numProcs)
        panic("planFloor: grid too small");

    plan.procTile.assign(design.numProcs, GridPoint{});
    std::size_t cursor = 0;
    for (core::SwitchId s = 0; s < design.numSwitches; ++s) {
        for (const auto p : design.switchProcs[s])
            plan.procTile[p] = tiles[cursor++];
    }

    // Simulated annealing over processor tile swaps.
    PlacementCost evaluator(design);
    std::vector<GridPoint> corners;
    std::uint32_t cost = evaluator.evaluate(plan.procTile, corners);
    Rng rng(config.seed);
    double temperature = config.t0;
    for (std::uint32_t sweep = 0; sweep < config.sweeps; ++sweep) {
        const std::uint32_t attempts = design.numProcs * 4;
        for (std::uint32_t i = 0; i < attempts; ++i) {
            const auto a =
                static_cast<core::ProcId>(rng.below(design.numProcs));
            const auto b =
                static_cast<core::ProcId>(rng.below(design.numProcs));
            if (a == b)
                continue;
            std::swap(plan.procTile[a], plan.procTile[b]);
            std::vector<GridPoint> newCorners;
            const std::uint32_t newCost =
                evaluator.evaluate(plan.procTile, newCorners);
            const auto delta = static_cast<double>(newCost) -
                               static_cast<double>(cost);
            if (delta <= 0 ||
                rng.chance(std::exp(-delta /
                                    std::max(temperature, 1e-9)))) {
                cost = newCost;
                corners = std::move(newCorners);
            } else {
                std::swap(plan.procTile[a], plan.procTile[b]);
            }
        }
        temperature *= config.alpha;
    }

    // Final greedy polish (temperature zero).
    for (int pass = 0; pass < 2; ++pass) {
        for (core::ProcId a = 0; a < design.numProcs; ++a) {
            for (core::ProcId b = a + 1; b < design.numProcs; ++b) {
                std::swap(plan.procTile[a], plan.procTile[b]);
                std::vector<GridPoint> newCorners;
                const std::uint32_t newCost =
                    evaluator.evaluate(plan.procTile, newCorners);
                if (newCost < cost) {
                    cost = newCost;
                    corners = std::move(newCorners);
                } else {
                    std::swap(plan.procTile[a], plan.procTile[b]);
                }
            }
        }
    }

    plan.switchCorner = corners;
    plan.switchArea = design.numSwitches;
    // A full-duplex connection of Manhattan distance d costs d units of
    // area (Figure 6); a lone unidirectional channel costs half that.
    double linkArea = 0.0;
    for (const auto &pipe : design.pipes) {
        std::uint32_t channels = pipe.linksFwd + pipe.linksBwd;
        if (channels == 0)
            channels = 2 * pipe.links;
        linkArea += 0.5 * static_cast<double>(channels) *
                    static_cast<double>(
                        manhattan(plan.switchCorner[pipe.key.a],
                                  plan.switchCorner[pipe.key.b]));
    }
    plan.linkArea = static_cast<std::uint32_t>(linkArea + 0.5);
    plan.procLinkArea = 0;
    for (core::ProcId p = 0; p < design.numProcs; ++p)
        plan.procLinkArea += plan.procDistance(p, design.procHome[p]);
    return plan;
}

} // namespace minnoc::topo
