/**
 * @file
 * Concrete network topologies.
 *
 * A Topology is the physical network the simulator runs on: end-nodes
 * (one per processor, each holding a network interface), switches, and
 * unidirectional links with a physical length in tiles (which sets both
 * wire delay and the link-area cost in the floorplan model). Full-duplex
 * connections are two opposing unidirectional links.
 *
 * Node index space: [0, numProcs) are end-nodes, [numProcs,
 * numProcs + numSwitches) are switches.
 */

#ifndef MINNOC_TOPO_TOPOLOGY_HPP
#define MINNOC_TOPO_TOPOLOGY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace minnoc::topo {

/** Index of a node (end-node or switch) in a Topology. */
using NodeIdx = std::uint32_t;
/** Index of a unidirectional link. */
using LinkId = std::uint32_t;

constexpr NodeIdx kNoNodeIdx = static_cast<NodeIdx>(-1);
constexpr LinkId kNoLink = static_cast<LinkId>(-1);

/** One unidirectional link (channel). */
struct Link
{
    NodeIdx from = kNoNodeIdx;
    NodeIdx to = kNoNodeIdx;
    /** Physical length in tiles; wire delay is max(1, length) cycles. */
    std::uint32_t length = 1;

    /** Wire delay in cycles. */
    std::uint32_t delay() const { return length ? length : 1; }
};

/**
 * The physical network: nodes plus unidirectional links. Immutable
 * after construction by a builder.
 */
class Topology
{
  public:
    /**
     * @param num_procs number of end-nodes
     * @param num_switches number of switches
     * @param name human-readable topology name (used in reports)
     */
    Topology(std::uint32_t num_procs, std::uint32_t num_switches,
             std::string name);

    const std::string &name() const { return _name; }
    std::uint32_t numProcs() const { return _numProcs; }
    std::uint32_t numSwitches() const { return _numSwitches; }
    std::uint32_t numNodes() const { return _numProcs + _numSwitches; }
    std::size_t numLinks() const { return _links.size(); }

    /** Node index of processor @p p. */
    NodeIdx
    procNode(core::ProcId p) const
    {
        return static_cast<NodeIdx>(p);
    }

    /** Node index of switch @p s. */
    NodeIdx
    switchNode(core::SwitchId s) const
    {
        return _numProcs + static_cast<NodeIdx>(s);
    }

    /** True if @p n is an end-node. */
    bool isProc(NodeIdx n) const { return n < _numProcs; }

    /** The processor id of end-node @p n. */
    core::ProcId
    procOf(NodeIdx n) const
    {
        return static_cast<core::ProcId>(n);
    }

    /** The switch id of switch-node @p n. */
    core::SwitchId
    switchOf(NodeIdx n) const
    {
        return static_cast<core::SwitchId>(n - _numProcs);
    }

    /** Add one unidirectional link; returns its id. */
    LinkId addLink(NodeIdx from, NodeIdx to, std::uint32_t length = 1);

    /** Add a full-duplex connection; returns {forward, backward} ids. */
    std::pair<LinkId, LinkId> addDuplex(NodeIdx a, NodeIdx b,
                                        std::uint32_t length = 1);

    const Link &link(LinkId id) const { return _links.at(id); }
    const std::vector<Link> &links() const { return _links; }

    /** Ids of links leaving node @p n. */
    const std::vector<LinkId> &outLinks(NodeIdx n) const;

    /** Ids of links entering node @p n. */
    const std::vector<LinkId> &inLinks(NodeIdx n) const;

    /** First link from @p from to @p to, or kNoLink. */
    LinkId findLink(NodeIdx from, NodeIdx to) const;

    /** All links from @p from to @p to (parallel channels). */
    std::vector<LinkId> findLinks(NodeIdx from, NodeIdx to) const;

    /**
     * The injection link of processor @p p (its single end-node ->
     * switch link; panics if the builder attached none or several).
     */
    LinkId injectionLink(core::ProcId p) const;

    /** The ejection link of processor @p p (switch -> end-node). */
    LinkId ejectionLink(core::ProcId p) const;

    /** Total link area: sum of lengths (adjacent length-0 links free). */
    std::uint64_t totalLinkArea() const;

    /** Validate structural sanity (every proc attached, etc.). */
    void validate() const;

    /** Human-readable dump. */
    std::string toString() const;

  private:
    std::string _name;
    std::uint32_t _numProcs;
    std::uint32_t _numSwitches;
    std::vector<Link> _links;
    std::vector<std::vector<LinkId>> _out;
    std::vector<std::vector<LinkId>> _in;
};

} // namespace minnoc::topo

#endif // MINNOC_TOPO_TOPOLOGY_HPP
