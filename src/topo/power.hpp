/**
 * @file
 * On-chip network power model.
 *
 * The paper's conclusion names power-efficient network generation as
 * the immediate extension of the methodology ("this work can be
 * extended to include other important optimization criteria such as
 * power"). This module provides the energy accounting that extension
 * needs, in two fidelity tiers selected by PowerModel::kind:
 *
 *  - Static (the historical default): a per-hop bit-energy model in
 *    the spirit of Orion —
 *
 *      dynamic  = sum over links of flits(l) * (E_switch + E_wire * len(l))
 *      leakage  = cycles * (P_switch * switches + P_wire * total wire)
 *
 *  - Activity (McPAT-flavored): per-event accounting driven by the
 *    simulator's microarchitectural counters — every input-buffer
 *    write and read, every crossbar traversal, every link toggle
 *    weighted by wire length, plus a buffer-retention term integrated
 *    over flit residency. Same traffic on the same topology can now
 *    price differently depending on how much of it actually queued,
 *    which is exactly what coherence-style bursty traffic stresses.
 *
 * Units are arbitrary ("energy units"); only the relative comparison
 * between topologies matters here. Defaults make one tile of wire cost
 * roughly half a switch traversal, a common on-chip ratio. The static
 * model's signature bytes are unchanged from its single-model days, so
 * content-addressed caches and golden artifacts produced before the
 * activity tier existed remain valid.
 */

#ifndef MINNOC_TOPO_POWER_HPP
#define MINNOC_TOPO_POWER_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "topology.hpp"

namespace minnoc::topo {

/** Which energy accounting tier to run. */
enum class PowerModelKind : std::uint8_t {
    Static,   ///< per-hop bit-energy (historical default)
    Activity, ///< per-event buffer/crossbar/link-toggle accounting
};

/** Stable name of @p kind (`"static"` / `"activity"`). */
const char *powerModelKindName(PowerModelKind kind);

/** Parse a kind name; nullopt when @p name is neither spelling. */
std::optional<PowerModelKind> powerModelKindFromName(std::string_view name);

/**
 * Microarchitectural event counts of one simulated run — the activity
 * model's input, produced by sim::NetworkStats. Lives here (not in
 * sim/) because topo/ must not depend on the simulator.
 */
struct ActivityCounters
{
    /** Flits written into switch input-VC buffers. */
    std::uint64_t bufferWrites = 0;
    /** Flits read back out of input-VC buffers (crossbar traversals). */
    std::uint64_t bufferReads = 0;
    /** Occupancy integral: flits resident in the fabric, per cycle. */
    std::uint64_t residentFlitCycles = 0;
};

/** Energy/power coefficients. */
struct PowerModel
{
    /** Accounting tier; Static preserves the historical numbers. */
    PowerModelKind kind = PowerModelKind::Static;

    /** Dynamic energy per flit through a switch stage (buffer+xbar). */
    double switchEnergyPerFlit = 1.0;

    /** Dynamic energy per flit per tile of wire length. */
    double wireEnergyPerFlitTile = 0.5;

    /** Leakage power per switch per cycle. */
    double switchLeakagePerCycle = 0.0005;

    /** Leakage power per tile of wire per cycle. */
    double wireLeakagePerTileCycle = 0.0002;

    // Activity-tier coefficients (ignored under Static). Defaults are
    // sized so that one clean, unqueued switch stage costs about the
    // same as the static model's E_switch: write + read + xbar ~ 1.2.
    /** Energy per flit written into an input-VC buffer. */
    double bufferWriteEnergyPerFlit = 0.35;
    /** Energy per flit read out of an input-VC buffer. */
    double bufferReadEnergyPerFlit = 0.25;
    /** Energy per flit through a crossbar. */
    double xbarEnergyPerFlit = 0.6;
    /** Link-toggle energy per flit per tile of wire length. */
    double linkToggleEnergyPerFlitTile = 0.45;
    /** Retention power per resident flit per cycle (clocked buffers). */
    double bufferRetentionPerFlitCycle = 0.0001;

    /**
     * Canonical coefficient string for content-addressed caching:
     * energy numbers computed under equal signatures are comparable.
     * The activity block is appended only when kind == Activity, so
     * static-model signatures are byte-identical to historical ones.
     */
    std::string signature() const;
};

/** Energy breakdown of one simulated run. */
struct EnergyReport
{
    double switchDynamic = 0.0;
    double wireDynamic = 0.0;
    /** Input-buffer write+read energy (activity model only). */
    double bufferDynamic = 0.0;
    double switchLeakage = 0.0;
    double wireLeakage = 0.0;
    /** Buffer retention over flit residency (activity model only). */
    double bufferLeakage = 0.0;

    double dynamic() const
    {
        return switchDynamic + wireDynamic + bufferDynamic;
    }
    double leakage() const
    {
        return switchLeakage + wireLeakage + bufferLeakage;
    }
    double total() const { return dynamic() + leakage(); }

    /** One-line summary. */
    std::string toString() const;
};

/**
 * Compute the energy of a run.
 *
 * @param topo the simulated topology
 * @param link_flits flits each link carried (SimResult::linkFlits)
 * @param cycles total execution time in cycles (leakage horizon)
 * @param activity microarchitectural event counts (SimResult::activity);
 *        consumed only by the Activity tier
 * @param model coefficients + tier selection
 */
EnergyReport computeEnergy(const Topology &topo,
                           const std::vector<std::uint64_t> &link_flits,
                           std::int64_t cycles,
                           const ActivityCounters &activity,
                           const PowerModel &model);

/**
 * Zero-activity convenience: exact historical behavior under the
 * Static tier; under Activity it prices an idle fabric (leakage plus
 * whatever link_flits alone imply), which is what reconfiguration
 * idle-energy call sites want.
 */
EnergyReport computeEnergy(const Topology &topo,
                           const std::vector<std::uint64_t> &link_flits,
                           std::int64_t cycles,
                           const PowerModel &model = {});

} // namespace minnoc::topo

#endif // MINNOC_TOPO_POWER_HPP
