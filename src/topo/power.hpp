/**
 * @file
 * On-chip network power model.
 *
 * The paper's conclusion names power-efficient network generation as
 * the immediate extension of the methodology ("this work can be
 * extended to include other important optimization criteria such as
 * power"). This module provides the energy accounting that extension
 * needs: a simple, widely used activity-based model in the spirit of
 * the Orion/bit-energy models —
 *
 *   dynamic  = sum over links of flits(l) * (E_switch + E_wire * len(l))
 *   leakage  = cycles * (P_switch * switches + P_wire * total wire)
 *
 * Units are arbitrary ("energy units"); only the relative comparison
 * between topologies matters here. Defaults make one tile of wire cost
 * roughly half a switch traversal, a common on-chip ratio.
 */

#ifndef MINNOC_TOPO_POWER_HPP
#define MINNOC_TOPO_POWER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "topology.hpp"

namespace minnoc::topo {

/** Energy/power coefficients. */
struct PowerModel
{
    /** Dynamic energy per flit through a switch stage (buffer+xbar). */
    double switchEnergyPerFlit = 1.0;

    /** Dynamic energy per flit per tile of wire length. */
    double wireEnergyPerFlitTile = 0.5;

    /** Leakage power per switch per cycle. */
    double switchLeakagePerCycle = 0.0005;

    /** Leakage power per tile of wire per cycle. */
    double wireLeakagePerTileCycle = 0.0002;

    /**
     * Canonical coefficient string for content-addressed caching:
     * energy numbers computed under equal signatures are comparable.
     */
    std::string signature() const;
};

/** Energy breakdown of one simulated run. */
struct EnergyReport
{
    double switchDynamic = 0.0;
    double wireDynamic = 0.0;
    double switchLeakage = 0.0;
    double wireLeakage = 0.0;

    double dynamic() const { return switchDynamic + wireDynamic; }
    double leakage() const { return switchLeakage + wireLeakage; }
    double total() const { return dynamic() + leakage(); }

    /** One-line summary. */
    std::string toString() const;
};

/**
 * Compute the energy of a run.
 *
 * @param topo the simulated topology
 * @param link_flits flits each link carried (SimResult::linkFlits)
 * @param cycles total execution time in cycles (leakage horizon)
 * @param model coefficients
 */
EnergyReport computeEnergy(const Topology &topo,
                           const std::vector<std::uint64_t> &link_flits,
                           std::int64_t cycles,
                           const PowerModel &model = {});

} // namespace minnoc::topo

#endif // MINNOC_TOPO_POWER_HPP
