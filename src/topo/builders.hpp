/**
 * @file
 * Topology builders for the evaluation's four network families
 * (Section 4): fully connected non-blocking crossbar, 2-D mesh with
 * dimension-order routing, folded 2-D torus with true fully adaptive
 * routing, and the generated (irregular) networks produced by the design
 * methodology.
 */

#ifndef MINNOC_TOPO_BUILDERS_HPP
#define MINNOC_TOPO_BUILDERS_HPP

#include <memory>

#include "core/finalize.hpp"
#include "floorplan.hpp"
#include "routing.hpp"
#include "topology.hpp"

namespace minnoc::topo {

/**
 * A topology bundled with its routing function. The topology is heap
 * allocated so the routing function's internal pointer stays valid when
 * the bundle is moved.
 */
struct BuiltNetwork
{
    std::unique_ptr<Topology> topo;
    std::unique_ptr<RoutingFunction> routing;
};

/**
 * Fully connected non-blocking crossbar: one megaswitch, every
 * processor attached by a dedicated duplex link. Output-port conflicts
 * (two messages to one destination) remain, as in a real crossbar.
 */
BuiltNetwork buildCrossbar(std::uint32_t procs);

/**
 * 2-D mesh on the most-square grid for @p procs processors, one
 * processor per switch, dimension-order (XY) routing, unit-length links.
 */
BuiltNetwork buildMesh(std::uint32_t procs);

/**
 * Folded 2-D torus: mesh plus wraparound rings; every inter-switch link
 * has physical length 2 (folded layout), doubling the mesh link area.
 * Routing is true fully adaptive minimal (TFAR).
 */
BuiltNetwork buildTorus(std::uint32_t procs);

/**
 * Materialize a finalized generated design: one node per design switch,
 * `links` parallel duplex links per pipe with lengths taken from the
 * floorplan, processors attached to their home switches, and the
 * finalized source-routing table (with BFS fallback paths for unknown
 * pairs).
 */
BuiltNetwork buildFromDesign(const core::FinalizedDesign &design,
                             const Floorplan &plan);

} // namespace minnoc::topo

#endif // MINNOC_TOPO_BUILDERS_HPP
