#include "topology.hpp"

#include <sstream>

#include "util/log.hpp"

namespace minnoc::topo {

Topology::Topology(std::uint32_t num_procs, std::uint32_t num_switches,
                   std::string name)
    : _name(std::move(name)), _numProcs(num_procs),
      _numSwitches(num_switches)
{
    if (num_procs == 0)
        panic("Topology '", _name, "': zero processors");
    _out.resize(numNodes());
    _in.resize(numNodes());
}

LinkId
Topology::addLink(NodeIdx from, NodeIdx to, std::uint32_t length)
{
    if (from >= numNodes() || to >= numNodes())
        panic("Topology '", _name, "': link endpoint out of range");
    if (from == to)
        panic("Topology '", _name, "': self-link on node ", from);
    const auto id = static_cast<LinkId>(_links.size());
    _links.push_back(Link{from, to, length});
    _out[from].push_back(id);
    _in[to].push_back(id);
    return id;
}

std::pair<LinkId, LinkId>
Topology::addDuplex(NodeIdx a, NodeIdx b, std::uint32_t length)
{
    const LinkId fwd = addLink(a, b, length);
    const LinkId bwd = addLink(b, a, length);
    return {fwd, bwd};
}

const std::vector<LinkId> &
Topology::outLinks(NodeIdx n) const
{
    if (n >= numNodes())
        panic("Topology::outLinks: node out of range");
    return _out[n];
}

const std::vector<LinkId> &
Topology::inLinks(NodeIdx n) const
{
    if (n >= numNodes())
        panic("Topology::inLinks: node out of range");
    return _in[n];
}

LinkId
Topology::findLink(NodeIdx from, NodeIdx to) const
{
    for (const LinkId id : outLinks(from)) {
        if (_links[id].to == to)
            return id;
    }
    return kNoLink;
}

std::vector<LinkId>
Topology::findLinks(NodeIdx from, NodeIdx to) const
{
    std::vector<LinkId> found;
    for (const LinkId id : outLinks(from)) {
        if (_links[id].to == to)
            found.push_back(id);
    }
    return found;
}

LinkId
Topology::injectionLink(core::ProcId p) const
{
    const auto &out = outLinks(procNode(p));
    if (out.size() != 1)
        panic("Topology '", _name, "': proc ", p, " has ", out.size(),
              " injection links (want exactly 1)");
    return out.front();
}

LinkId
Topology::ejectionLink(core::ProcId p) const
{
    const auto &in = inLinks(procNode(p));
    if (in.size() != 1)
        panic("Topology '", _name, "': proc ", p, " has ", in.size(),
              " ejection links (want exactly 1)");
    return in.front();
}

std::uint64_t
Topology::totalLinkArea() const
{
    std::uint64_t area = 0;
    for (const auto &l : _links)
        area += l.length;
    return area;
}

void
Topology::validate() const
{
    for (core::ProcId p = 0; p < _numProcs; ++p) {
        (void)injectionLink(p);
        (void)ejectionLink(p);
        // End-nodes attach to switches, never to other end-nodes.
        if (isProc(link(injectionLink(p)).to))
            panic("Topology '", _name, "': proc ", p,
                  " attached to another end-node");
    }
}

std::string
Topology::toString() const
{
    std::ostringstream oss;
    oss << "Topology '" << _name << "' (" << _numProcs << " procs, "
        << _numSwitches << " switches, " << _links.size() << " links)\n";
    for (LinkId id = 0; id < _links.size(); ++id) {
        const auto &l = _links[id];
        auto describe = [this](NodeIdx n) {
            std::ostringstream s;
            if (isProc(n))
                s << 'P' << procOf(n);
            else
                s << 'S' << switchOf(n);
            return s.str();
        };
        oss << "  link " << id << ": " << describe(l.from) << " -> "
            << describe(l.to) << " (len " << l.length << ")\n";
    }
    return oss.str();
}

} // namespace minnoc::topo
