#include "dot.hpp"

#include <map>
#include <ostream>

namespace minnoc::topo {

void
writeDesignDot(const core::FinalizedDesign &design, std::ostream &os)
{
    os << "graph design {\n";
    os << "  layout=neato; overlap=false; splines=true;\n";
    os << "  node [fontsize=10];\n";
    for (core::SwitchId s = 0; s < design.numSwitches; ++s) {
        os << "  S" << s << " [shape=circle, style=filled, "
           << "fillcolor=lightblue, label=\"S" << s << "\"];\n";
    }
    for (core::ProcId p = 0; p < design.numProcs; ++p) {
        os << "  P" << p << " [shape=box, style=filled, "
           << "fillcolor=lightyellow, label=\"P" << p << "\"];\n";
        os << "  P" << p << " -- S" << design.procHome[p] << ";\n";
    }
    for (const auto &pipe : design.pipes) {
        os << "  S" << pipe.key.a << " -- S" << pipe.key.b << " [label=\"";
        if (design.unidirectional &&
            (pipe.linksFwd != pipe.links || pipe.linksBwd != pipe.links)) {
            os << pipe.linksFwd << "/" << pipe.linksBwd;
        } else {
            os << pipe.links;
        }
        os << "\"";
        if (pipe.links > 1)
            os << ", penwidth=" << pipe.links;
        if (pipe.connectivityOnly)
            os << ", style=dashed";
        os << "];\n";
    }
    os << "}\n";
}

void
writeTopologyDot(const Topology &topo, std::ostream &os)
{
    os << "graph \"" << topo.name() << "\" {\n";
    os << "  layout=neato; overlap=false;\n";
    for (NodeIdx n = 0; n < topo.numNodes(); ++n) {
        if (topo.isProc(n)) {
            os << "  P" << topo.procOf(n)
               << " [shape=box, style=filled, fillcolor=lightyellow];\n";
        } else {
            os << "  S" << topo.switchOf(n)
               << " [shape=circle, style=filled, fillcolor=lightblue];\n";
        }
    }
    auto describe = [&topo](NodeIdx n) {
        std::string out = topo.isProc(n) ? "P" : "S";
        out += std::to_string(topo.isProc(n)
                                  ? static_cast<std::uint32_t>(
                                        topo.procOf(n))
                                  : static_cast<std::uint32_t>(
                                        topo.switchOf(n)));
        return out;
    };
    // Merge opposite unidirectional channels into one undirected edge.
    std::map<std::pair<NodeIdx, NodeIdx>, std::pair<std::size_t,
                                                    std::uint32_t>>
        edges; // (min,max) -> (count, length)
    for (const auto &link : topo.links()) {
        const auto key = std::minmax(link.from, link.to);
        auto &entry = edges[{key.first, key.second}];
        ++entry.first;
        entry.second = link.length;
    }
    for (const auto &[key, entry] : edges) {
        const auto channels = entry.first;
        os << "  " << describe(key.first) << " -- "
           << describe(key.second) << " [label=\"";
        if (channels > 2)
            os << channels / 2 << "x";
        os << "len " << entry.second << "\"];\n";
    }
    os << "}\n";
}

} // namespace minnoc::topo
