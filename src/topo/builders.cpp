#include "builders.hpp"

#include "util/log.hpp"

namespace minnoc::topo {

BuiltNetwork
buildCrossbar(std::uint32_t procs)
{
    auto topo = std::make_unique<Topology>(
        procs, 1, "crossbar-" + std::to_string(procs));
    const NodeIdx sw = topo->switchNode(0);
    for (core::ProcId p = 0; p < procs; ++p)
        topo->addDuplex(topo->procNode(p), sw, 1);
    topo->validate();
    auto routing = makeCrossbarRouting(*topo);
    validateRouting(*topo, *routing);
    return BuiltNetwork{std::move(topo), std::move(routing)};
}

BuiltNetwork
buildMesh(std::uint32_t procs)
{
    const auto [w, h] = gridDims(procs);
    if (static_cast<std::uint64_t>(w) * h != procs)
        panic("buildMesh: ", procs, " procs do not tile a grid");
    auto topo = std::make_unique<Topology>(
        procs, procs,
        "mesh-" + std::to_string(w) + "x" + std::to_string(h));
    for (core::ProcId p = 0; p < procs; ++p)
        topo->addDuplex(topo->procNode(p), topo->switchNode(p), 0);
    for (std::uint32_t y = 0; y < h; ++y) {
        for (std::uint32_t x = 0; x < w; ++x) {
            const auto s = topo->switchNode(y * w + x);
            if (x + 1 < w)
                topo->addDuplex(s, topo->switchNode(y * w + x + 1), 1);
            if (y + 1 < h)
                topo->addDuplex(s, topo->switchNode((y + 1) * w + x), 1);
        }
    }
    topo->validate();
    auto routing = makeMeshDorRouting(*topo, w, h);
    validateRouting(*topo, *routing);
    return BuiltNetwork{std::move(topo), std::move(routing)};
}

BuiltNetwork
buildTorus(std::uint32_t procs)
{
    const auto [w, h] = gridDims(procs);
    if (static_cast<std::uint64_t>(w) * h != procs)
        panic("buildTorus: ", procs, " procs do not tile a grid");
    auto topo = std::make_unique<Topology>(
        procs, procs,
        "torus-" + std::to_string(w) + "x" + std::to_string(h));
    for (core::ProcId p = 0; p < procs; ++p)
        topo->addDuplex(topo->procNode(p), topo->switchNode(p), 0);
    // Folded layout: every ring link has physical length 2. A ring of
    // two switches keeps both of its links (they become parallel).
    for (std::uint32_t y = 0; y < h; ++y) {
        for (std::uint32_t x = 0; x < w; ++x) {
            const auto s = topo->switchNode(y * w + x);
            if (w > 1)
                topo->addDuplex(s, topo->switchNode(y * w + (x + 1) % w),
                                2);
            if (h > 1)
                topo->addDuplex(s, topo->switchNode(((y + 1) % h) * w + x),
                                2);
        }
    }
    topo->validate();
    auto routing = std::make_unique<TorusAdaptiveRouting>(*topo, w, h);
    validateRouting(*topo, *routing);
    return BuiltNetwork{std::move(topo), std::move(routing)};
}

BuiltNetwork
buildFromDesign(const core::FinalizedDesign &design, const Floorplan &plan)
{
    auto topo = std::make_unique<Topology>(design.numProcs,
                                           design.numSwitches, "generated");
    for (core::ProcId p = 0; p < design.numProcs; ++p) {
        const auto home = design.procHome[p];
        topo->addDuplex(topo->procNode(p), topo->switchNode(home),
                        plan.procDistance(p, home));
    }
    // Parallel channels per pipe in link-index order per direction
    // (makeDesignRouting relies on this ordering via findLinks).
    // Hand-built designs that only set `links` are treated as duplex.
    for (const auto &pipe : design.pipes) {
        const auto length =
            manhattan(plan.switchCorner.at(pipe.key.a),
                      plan.switchCorner.at(pipe.key.b));
        std::uint32_t fwd = pipe.linksFwd;
        std::uint32_t bwd = pipe.linksBwd;
        if (fwd == 0 && bwd == 0) {
            fwd = pipe.links;
            bwd = pipe.links;
        }
        for (std::uint32_t i = 0; i < fwd; ++i) {
            topo->addLink(topo->switchNode(pipe.key.a),
                          topo->switchNode(pipe.key.b), length);
        }
        for (std::uint32_t i = 0; i < bwd; ++i) {
            topo->addLink(topo->switchNode(pipe.key.b),
                          topo->switchNode(pipe.key.a), length);
        }
    }
    topo->validate();
    auto routing = makeDesignRouting(*topo, design);
    validateRouting(*topo, *routing);
    return BuiltNetwork{std::move(topo), std::move(routing)};
}

} // namespace minnoc::topo
