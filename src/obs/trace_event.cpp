#include "trace_event.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace minnoc::obs {

namespace {

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

std::int64_t
wallMicros()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               clock::now() - epoch)
        .count();
}

void
TraceEventLog::push(Event e)
{
    const std::lock_guard lock(_mutex);
    e.seq = _nextSeq++;
    _events.push_back(std::move(e));
}

void
TraceEventLog::complete(const std::string &name, std::uint32_t pid,
                        std::uint32_t tid, std::int64_t ts,
                        std::int64_t dur, const std::string &argsJson)
{
    Event e;
    e.phase = 'X';
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.dur = dur < 0 ? 0 : dur;
    e.argsJson = argsJson;
    push(std::move(e));
}

void
TraceEventLog::counter(const std::string &name, std::uint32_t pid,
                       std::int64_t ts, double value)
{
    Event e;
    e.phase = 'C';
    e.name = name;
    e.pid = pid;
    e.ts = ts;
    e.value = value;
    push(std::move(e));
}

void
TraceEventLog::processName(std::uint32_t pid, const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.name = "process_name";
    e.pid = pid;
    e.argsJson = "\"name\": \"" + escapeJson(name) + "\"";
    push(std::move(e));
}

void
TraceEventLog::threadName(std::uint32_t pid, std::uint32_t tid,
                          const std::string &name)
{
    Event e;
    e.phase = 'M';
    e.name = "thread_name";
    e.pid = pid;
    e.tid = tid;
    e.argsJson = "\"name\": \"" + escapeJson(name) + "\"";
    push(std::move(e));
}

std::size_t
TraceEventLog::size() const
{
    const std::lock_guard lock(_mutex);
    return _events.size();
}

std::string
TraceEventLog::toJson() const
{
    std::vector<Event> events;
    {
        const std::lock_guard lock(_mutex);
        events = _events;
    }
    // Metadata first, then time order; insertion order breaks ties so
    // the serialization is stable for a fixed set of recorded events.
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         const bool am = a.phase == 'M';
                         const bool bm = b.phase == 'M';
                         if (am != bm)
                             return am;
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         return a.seq < b.seq;
                     });

    std::ostringstream oss;
    oss << "{\"traceEvents\": [\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &e = events[i];
        oss << "  {\"ph\": \"" << e.phase << "\", \"name\": \""
            << escapeJson(e.name) << "\", \"pid\": " << e.pid
            << ", \"tid\": " << e.tid << ", \"ts\": " << e.ts;
        if (e.phase == 'X')
            oss << ", \"dur\": " << e.dur;
        if (e.phase == 'C')
            oss << ", \"args\": {\"value\": " << fmtDouble(e.value)
                << "}";
        else if (!e.argsJson.empty())
            oss << ", \"args\": {" << e.argsJson << "}";
        oss << "}" << (i + 1 < events.size() ? "," : "") << "\n";
    }
    oss << "], \"displayTimeUnit\": \"ms\"}\n";
    return oss.str();
}

} // namespace minnoc::obs
