#include "sim_observer.hpp"

#include <algorithm>
#include <string>

namespace minnoc::obs {

namespace {

std::string
flowName(std::uint32_t src, std::uint32_t dst)
{
    return "sim/flow/" + std::to_string(src) + "->" +
           std::to_string(dst) + "/latency";
}

/** Publish a finished histogram into the registry under @p name. */
void
publishHistogram(MetricsRegistry &registry, const std::string &name,
                 const LatencyHistogram &src)
{
    registry.histogram(name) = src;
}

} // namespace

void
SimObserver::onDelivered(std::uint32_t src, std::uint32_t dst,
                         std::int64_t latency, std::uint32_t hops,
                         bool clean)
{
    const auto v =
        static_cast<std::uint64_t>(latency < 0 ? 0 : latency);
    _latency.record(v);
    if (clean)
        _cleanLatency.record(v);
    _hops.record(hops);
    _flows[{src, dst}].record(v);
}

void
SimObserver::sample(std::int64_t now, std::uint64_t flitsInNetwork,
                    const std::vector<std::uint64_t> &linkFlits)
{
    Epoch e;
    e.end = now;
    e.occupancy = flitsInNetwork;
    e.linkFlits = linkFlits;
    _epochs.push_back(std::move(e));
    _nextSample = now + _epochCycles;

    if (_epochs.size() >= _sampleCap) {
        // Halve resolution: the snapshots are cumulative, so merging
        // two adjacent epochs is just dropping the earlier boundary.
        std::vector<Epoch> kept;
        kept.reserve(_epochs.size() / 2 + 1);
        for (std::size_t i = 1; i < _epochs.size(); i += 2)
            kept.push_back(std::move(_epochs[i]));
        _epochs = std::move(kept);
        _epochCycles *= 2;
        _nextSample = _epochs.back().end + _epochCycles;
    }
}

void
SimObserver::finish(const FinalCounters &counters, std::int64_t now,
                    std::uint64_t flitsInNetwork,
                    const std::vector<std::uint64_t> &linkFlits)
{
    _final = counters;
    _finished = true;
    if (_epochs.empty() || _epochs.back().end < now)
        sample(now, flitsInNetwork, linkFlits);
}

void
SimObserver::exportTo(MetricsRegistry &registry) const
{
    registry.counter("sim/packets_enqueued").add(_final.packetsEnqueued);
    registry.counter("sim/packets_delivered")
        .add(_final.packetsDelivered);
    registry.counter("sim/packets_dropped").add(_final.packetsDropped);
    registry.counter("sim/flit_hops").add(_final.flitHops);
    registry.counter("sim/buffer_writes").add(_final.bufferWrites);
    registry.counter("sim/buffer_reads").add(_final.bufferReads);
    registry.counter("sim/resident_flit_cycles")
        .add(_final.residentFlitCycles);
    registry.counter("sim/retransmissions").add(_final.retransmissions);
    registry.counter("sim/corrupted_flits").add(_final.corruptedFlits);
    registry.counter("sim/deadlock_recoveries")
        .add(_final.deadlockRecoveries);
    registry.counter("sim/failed_links").add(_final.failedLinks);
    registry.counter("sim/disconnected_pairs")
        .add(_final.disconnectedPairs);
    registry.counter("sim/retry_exhaustions")
        .add(_final.retryExhaustions);
    registry.counter("sim/recovery_exhaustions")
        .add(_final.recoveryExhaustions);
    registry.gauge("sim/exec_time")
        .set(static_cast<double>(_final.execTime));

    publishHistogram(registry, "sim/latency", _latency);
    publishHistogram(registry, "sim/latency_clean", _cleanLatency);
    publishHistogram(registry, "sim/hops", _hops);
    for (const auto &[key, hist] : _flows)
        publishHistogram(registry, flowName(key.first, key.second),
                         hist);

    // Occupancy and per-link utilization time series from the epoch
    // snapshots (deltas between consecutive cumulative boundaries).
    auto &occupancy = registry.series("sim/occupancy");
    for (const auto &e : _epochs)
        occupancy.sample(e.end, static_cast<double>(e.occupancy));

    const std::size_t numLinks =
        _epochs.empty() ? 0 : _epochs.back().linkFlits.size();
    for (std::size_t l = 0; l < numLinks; ++l) {
        auto &util =
            registry.series("sim/link/" + std::to_string(l) + "/util");
        std::int64_t prevEnd = 0;
        std::uint64_t prevFlits = 0;
        for (const auto &e : _epochs) {
            const auto cycles = e.end - prevEnd;
            const auto flits =
                l < e.linkFlits.size() ? e.linkFlits[l] - prevFlits : 0;
            util.sample(e.end,
                        cycles > 0 ? static_cast<double>(flits) /
                                         static_cast<double>(cycles)
                                   : 0.0);
            prevEnd = e.end;
            prevFlits = l < e.linkFlits.size() ? e.linkFlits[l] : 0;
        }
    }
}

void
SimObserver::exportTrace(TraceEventLog &log) const
{
    log.processName(kPidSim, "minnoc simulator");
    log.threadName(kPidSim, 0, "epochs");

    std::int64_t prevEnd = 0;
    std::uint64_t prevTotal = 0;
    for (const auto &e : _epochs) {
        const auto cycles = e.end - prevEnd;
        std::uint64_t total = 0;
        for (const auto f : e.linkFlits)
            total += f;
        const auto moved = total - prevTotal;
        const std::size_t links = e.linkFlits.size();
        const double meanUtil =
            cycles > 0 && links > 0
                ? static_cast<double>(moved) /
                      (static_cast<double>(cycles) *
                       static_cast<double>(links))
                : 0.0;
        log.complete("epoch", kPidSim, 0, prevEnd, cycles,
                     "\"flits_moved\": " + std::to_string(moved));
        log.counter("flits_in_network", kPidSim, e.end,
                    static_cast<double>(e.occupancy));
        log.counter("mean_link_util", kPidSim, e.end, meanUtil);
        prevEnd = e.end;
        prevTotal = total;
    }
}

} // namespace minnoc::obs
