/**
 * @file
 * Per-run simulator instrumentation: epoch-sampled per-channel
 * utilization and occupancy time series, per-flow latency histograms,
 * and fault/retransmit counters.
 *
 * The observer is attached to a Network by pointer and fed from two hot
 * paths: onStep() once per simulated cycle and onDelivered() once per
 * tail-flit delivery. Both are cheap — onStep snapshots cumulative
 * counters only at epoch boundaries, and the epoch length doubles
 * (merging adjacent samples) whenever the sample count would exceed a
 * fixed cap, so memory stays bounded no matter how long the run is.
 * All state is driven by simulated cycles, never wall clocks, so the
 * collected content is deterministic for a deterministic run.
 */

#ifndef MINNOC_OBS_SIM_OBSERVER_HPP
#define MINNOC_OBS_SIM_OBSERVER_HPP

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "metrics.hpp"
#include "trace_event.hpp"

namespace minnoc::obs {

/** Collects one simulation run's worth of telemetry. */
class SimObserver
{
  public:
    /**
     * @param epochCycles initial sampling period in cycles (doubles
     *        under pressure)
     * @param sampleCap maximum retained epoch samples before the
     *        period doubles
     */
    explicit SimObserver(std::int64_t epochCycles = 64,
                         std::size_t sampleCap = 128)
        : _epochCycles(epochCycles < 1 ? 1 : epochCycles),
          _sampleCap(sampleCap < 4 ? 4 : sampleCap)
    {
    }

    /**
     * Per-cycle hook. @p linkFlits is the cumulative per-link flit
     * counter; a snapshot is copied only at epoch boundaries.
     */
    void
    onStep(std::int64_t now, std::uint64_t flitsInNetwork,
           const std::vector<std::uint64_t> &linkFlits)
    {
        if (now < _nextSample)
            return;
        sample(now, flitsInNetwork, linkFlits);
    }

    /** Per-delivery hook (tail flit consumed at the destination). */
    void onDelivered(std::uint32_t src, std::uint32_t dst,
                     std::int64_t latency, std::uint32_t hops,
                     bool clean);

    /** Fault / retransmit counters, copied once at end of run. */
    struct FinalCounters
    {
        std::uint64_t packetsEnqueued = 0;
        std::uint64_t packetsDelivered = 0;
        std::uint64_t packetsDropped = 0;
        std::uint64_t flitHops = 0;
        std::uint64_t bufferWrites = 0;
        std::uint64_t bufferReads = 0;
        std::uint64_t residentFlitCycles = 0;
        std::uint64_t retransmissions = 0;
        std::uint64_t corruptedFlits = 0;
        std::uint32_t deadlockRecoveries = 0;
        std::uint32_t failedLinks = 0;
        std::uint32_t disconnectedPairs = 0;
        std::uint32_t retryExhaustions = 0;
        std::uint32_t recoveryExhaustions = 0;
        std::int64_t execTime = 0;
    };

    /** Record end-of-run aggregates and close the last epoch. */
    void finish(const FinalCounters &counters, std::int64_t now,
                std::uint64_t flitsInNetwork,
                const std::vector<std::uint64_t> &linkFlits);

    /** Publish everything into @p registry under the "sim/" prefix. */
    void exportTo(MetricsRegistry &registry) const;

    /** Emit epoch spans and counter tracks onto pid kPidSim. */
    void exportTrace(TraceEventLog &log) const;

    /** Retained epoch boundary count (exposed for tests). */
    std::size_t epochCount() const { return _epochs.size(); }
    /** Current sampling period in cycles (exposed for tests). */
    std::int64_t epochCycles() const { return _epochCycles; }

  private:
    /** Cumulative snapshot at an epoch boundary. */
    struct Epoch
    {
        std::int64_t end = 0;
        std::uint64_t occupancy = 0;            ///< flits in network
        std::vector<std::uint64_t> linkFlits;   ///< cumulative per link
    };

    void sample(std::int64_t now, std::uint64_t flitsInNetwork,
                const std::vector<std::uint64_t> &linkFlits);

    std::int64_t _epochCycles;
    std::size_t _sampleCap;
    std::int64_t _nextSample = 0;

    std::vector<Epoch> _epochs;
    LatencyHistogram _latency;
    LatencyHistogram _cleanLatency;
    LatencyHistogram _hops;
    /** (src, dst) -> latency histogram. */
    std::map<std::pair<std::uint32_t, std::uint32_t>, LatencyHistogram>
        _flows;
    FinalCounters _final;
    bool _finished = false;
};

} // namespace minnoc::obs

#endif // MINNOC_OBS_SIM_OBSERVER_HPP
