/**
 * @file
 * Lock-cheap metrics registry: counters, gauges, time series, and
 * HDR-style latency histograms with quantile extraction.
 *
 * Design rules:
 *  - Handles are obtained once (mutex-guarded name lookup) and then
 *    updated without locks: counters are relaxed atomics, everything
 *    else is owned by exactly one writer by construction.
 *  - Dump content is deterministic: the registry iterates name order,
 *    numbers render via fixed formats, and nothing derived from wall
 *    clocks enters the default JSON dump — metrics registered with
 *    timing = true are excluded unless explicitly requested, so two
 *    runs of a deterministic workload emit byte-identical bytes.
 *  - The whole subsystem compiles away when MINNOC_OBS_ENABLED is 0
 *    (CMake option MINNOC_OBS=OFF): instrumentation call sites are
 *    wrapped in `if constexpr (obs::kEnabled)`, so the hot paths carry
 *    no branch, no pointer test, nothing.
 */

#ifndef MINNOC_OBS_METRICS_HPP
#define MINNOC_OBS_METRICS_HPP

#ifndef MINNOC_OBS_ENABLED
#define MINNOC_OBS_ENABLED 1
#endif

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace minnoc::obs {

/** True when instrumentation hooks are compiled in. */
inline constexpr bool kEnabled = MINNOC_OBS_ENABLED != 0;

/** Monotone event count; add() is wait-free (relaxed atomic). */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
        _value.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return _value.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> _value{0};
};

/** Last-write-wins scalar. One writer per gauge by convention. */
class Gauge
{
  public:
    void set(double v) { _value = v; }
    double value() const { return _value; }

  private:
    double _value = 0.0;
};

/** Append-only (t, value) series, e.g. per-epoch link utilization. */
class Series
{
  public:
    void
    sample(std::int64_t t, double v)
    {
        _points.emplace_back(t, v);
    }

    const std::vector<std::pair<std::int64_t, double>> &
    points() const
    {
        return _points;
    }

  private:
    std::vector<std::pair<std::int64_t, double>> _points;
};

/**
 * HDR-style histogram over non-negative integer samples (latencies in
 * cycles): logarithmic tiers of 2^kSubBits linear sub-buckets, so the
 * relative bucket width never exceeds 1/16 while the whole 64-bit range
 * fits in under a thousand buckets. Count, sum, min and max are exact;
 * quantiles are exact at bucket resolution (the returned value is the
 * inclusive upper edge of the bucket holding the requested rank, i.e.
 * within 6.25% of the true order statistic, and exact below 2^kSubBits).
 */
class LatencyHistogram
{
  public:
    static constexpr std::uint32_t kSubBits = 4;

    void
    record(std::uint64_t v)
    {
        const std::size_t b = bucketOf(v);
        if (b >= _counts.size())
            _counts.resize(b + 1, 0);
        ++_counts[b];
        ++_count;
        _sum += v;
        _min = _count == 1 ? v : (v < _min ? v : _min);
        _max = v > _max ? v : _max;
    }

    std::uint64_t count() const { return _count; }
    std::uint64_t sum() const { return _sum; }
    std::uint64_t min() const { return _count ? _min : 0; }
    std::uint64_t max() const { return _count ? _max : 0; }

    double
    mean() const
    {
        return _count ? static_cast<double>(_sum) /
                            static_cast<double>(_count)
                      : 0.0;
    }

    /**
     * The value at quantile @p q in [0, 1]: the upper edge of the
     * bucket containing sample rank ceil(q * count), clamped to the
     * exact max for q = 1.
     */
    std::uint64_t quantile(double q) const;

    /** Non-empty buckets as (inclusive lower edge, count) pairs. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets() const;

    /** Bucket index of value @p v (exposed for tests). */
    static std::size_t
    bucketOf(std::uint64_t v)
    {
        constexpr std::uint64_t base = 1ull << kSubBits;
        if (v < base)
            return static_cast<std::size_t>(v);
        const int msb = 63 - std::countl_zero(v);
        const int shift = msb - static_cast<int>(kSubBits);
        const auto sub =
            static_cast<std::size_t>((v >> shift) & (base - 1));
        return ((static_cast<std::size_t>(msb - kSubBits) + 1)
                << kSubBits) +
               sub;
    }

    /** Inclusive lower edge of bucket @p b (exposed for tests). */
    static std::uint64_t
    bucketLo(std::size_t b)
    {
        const std::size_t tier = b >> kSubBits;
        const std::uint64_t sub = b & ((1ull << kSubBits) - 1);
        if (tier == 0)
            return sub;
        return (1ull << (tier + kSubBits - 1)) + (sub << (tier - 1));
    }

    /** Inclusive upper edge of bucket @p b. */
    static std::uint64_t
    bucketHi(std::size_t b)
    {
        const std::size_t tier = b >> kSubBits;
        const std::uint64_t width = tier == 0 ? 1 : 1ull << (tier - 1);
        return bucketLo(b) + width - 1;
    }

  private:
    std::vector<std::uint64_t> _counts;
    std::uint64_t _count = 0;
    std::uint64_t _sum = 0;
    std::uint64_t _min = 0;
    std::uint64_t _max = 0;
};

/**
 * Named metric registry. Lookup / creation takes a mutex; updates on
 * the returned references do not. Iteration order is name order, so
 * dumps are deterministic regardless of registration order.
 */
class MetricsRegistry
{
  public:
    /**
     * Get or create a metric. @p timing marks wall-clock-derived
     * metrics, which toJson() excludes by default so the dump stays
     * byte-reproducible. Requesting an existing name with a different
     * metric kind panics (names are typed).
     */
    Counter &counter(const std::string &name, bool timing = false);
    Gauge &gauge(const std::string &name, bool timing = false);
    Series &series(const std::string &name, bool timing = false);
    LatencyHistogram &histogram(const std::string &name,
                                bool timing = false);

    /** Number of registered metrics (timing ones included). */
    std::size_t size() const;

    /**
     * Stable machine-readable JSON dump: schema header plus one entry
     * per metric in name order. Deterministic byte-for-byte for
     * deterministic workloads when @p includeTimings is false.
     */
    std::string toJson(bool includeTimings = false) const;

  private:
    struct Entry
    {
        bool timing = false;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Series> series;
        std::unique_ptr<LatencyHistogram> histogram;
    };

    Entry &entry(const std::string &name, bool timing);

    mutable std::mutex _mutex;
    std::map<std::string, Entry> _entries;
};

} // namespace minnoc::obs

#endif // MINNOC_OBS_METRICS_HPP
