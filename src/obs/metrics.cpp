#include "metrics.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/log.hpp"

namespace minnoc::obs {

namespace {

/** %.17g — enough digits for exact double round-tripping. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Minimal JSON string escape (control chars, quote, backslash). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::uint64_t
LatencyHistogram::quantile(double q) const
{
    if (_count == 0)
        return 0;
    if (q >= 1.0)
        return _max;
    if (q <= 0.0)
        return _min;
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(_count)));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < _counts.size(); ++b) {
        seen += _counts[b];
        if (seen >= rank)
            return std::min(bucketHi(b), _max);
    }
    return _max;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
LatencyHistogram::buckets() const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    for (std::size_t b = 0; b < _counts.size(); ++b)
        if (_counts[b])
            out.emplace_back(bucketLo(b), _counts[b]);
    return out;
}

MetricsRegistry::Entry &
MetricsRegistry::entry(const std::string &name, bool timing)
{
    auto &e = _entries[name];
    e.timing = e.timing || timing;
    return e;
}

Counter &
MetricsRegistry::counter(const std::string &name, bool timing)
{
    const std::lock_guard lock(_mutex);
    auto &e = entry(name, timing);
    if (e.gauge || e.series || e.histogram)
        fatal("metric '", name, "' already registered with another kind");
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, bool timing)
{
    const std::lock_guard lock(_mutex);
    auto &e = entry(name, timing);
    if (e.counter || e.series || e.histogram)
        fatal("metric '", name, "' already registered with another kind");
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Series &
MetricsRegistry::series(const std::string &name, bool timing)
{
    const std::lock_guard lock(_mutex);
    auto &e = entry(name, timing);
    if (e.counter || e.gauge || e.histogram)
        fatal("metric '", name, "' already registered with another kind");
    if (!e.series)
        e.series = std::make_unique<Series>();
    return *e.series;
}

LatencyHistogram &
MetricsRegistry::histogram(const std::string &name, bool timing)
{
    const std::lock_guard lock(_mutex);
    auto &e = entry(name, timing);
    if (e.counter || e.gauge || e.series)
        fatal("metric '", name, "' already registered with another kind");
    if (!e.histogram)
        e.histogram = std::make_unique<LatencyHistogram>();
    return *e.histogram;
}

std::size_t
MetricsRegistry::size() const
{
    const std::lock_guard lock(_mutex);
    return _entries.size();
}

std::string
MetricsRegistry::toJson(bool includeTimings) const
{
    const std::lock_guard lock(_mutex);
    std::ostringstream oss;
    oss << "{\n  \"report\": \"minnoc-metrics\",\n"
        << "  \"schema\": \"minnoc-metrics-v1\",\n"
        << "  \"metrics\": [\n";
    bool first = true;
    for (const auto &[name, e] : _entries) {
        if (e.timing && !includeTimings)
            continue;
        oss << (first ? "" : ",\n") << "    {\"name\": \""
            << escapeJson(name) << "\", ";
        if (e.counter) {
            oss << "\"type\": \"counter\", \"value\": "
                << e.counter->value() << "}";
        } else if (e.gauge) {
            oss << "\"type\": \"gauge\", \"value\": "
                << fmtDouble(e.gauge->value()) << "}";
        } else if (e.series) {
            oss << "\"type\": \"series\", \"points\": [";
            const auto &pts = e.series->points();
            for (std::size_t i = 0; i < pts.size(); ++i)
                oss << (i ? ", " : "") << "[" << pts[i].first << ", "
                    << fmtDouble(pts[i].second) << "]";
            oss << "]}";
        } else if (e.histogram) {
            const auto &h = *e.histogram;
            oss << "\"type\": \"histogram\", \"count\": " << h.count()
                << ", \"sum\": " << h.sum() << ", \"min\": " << h.min()
                << ", \"max\": " << h.max()
                << ", \"mean\": " << fmtDouble(h.mean())
                << ", \"p50\": " << h.quantile(0.50)
                << ", \"p90\": " << h.quantile(0.90)
                << ", \"p99\": " << h.quantile(0.99)
                << ", \"buckets\": [";
            const auto bs = h.buckets();
            for (std::size_t i = 0; i < bs.size(); ++i)
                oss << (i ? ", " : "") << "[" << bs[i].first << ", "
                    << bs[i].second << "]";
            oss << "]}";
        } else {
            // Registered but never materialized (cannot happen via the
            // public API); emit a null so the dump stays parseable.
            oss << "\"type\": \"null\"}";
        }
        first = false;
    }
    oss << "\n  ]\n}\n";
    return oss.str();
}

} // namespace minnoc::obs
