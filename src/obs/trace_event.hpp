/**
 * @file
 * Chrome trace-event (Perfetto-loadable) timeline log.
 *
 * Emits the JSON object format — {"traceEvents": [...]} — with three
 * event phases:
 *  - "X" complete events (named spans with ts + dur),
 *  - "C" counter events (stacked time series in the trace viewer),
 *  - "M" metadata events (process / thread names).
 *
 * Timestamps are microseconds by convention. Simulator spans map one
 * simulated cycle to one microsecond so epoch boundaries land on exact
 * ticks; methodology / DSE phases use wall-clock microseconds. The two
 * domains are kept apart with distinct pid values so Perfetto renders
 * them as separate process tracks.
 */

#ifndef MINNOC_OBS_TRACE_EVENT_HPP
#define MINNOC_OBS_TRACE_EVENT_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace minnoc::obs {

/** Well-known process ids used for track grouping. */
inline constexpr std::uint32_t kPidSim = 1;
inline constexpr std::uint32_t kPidMethodology = 2;
inline constexpr std::uint32_t kPidDse = 3;
inline constexpr std::uint32_t kPidPhase = 4;
inline constexpr std::uint32_t kPidDist = 5;

/**
 * Wall-clock microseconds since the first call in this process — the
 * timestamp base for methodology / DSE phase spans. Never feed these
 * into metrics that must be byte-reproducible; they belong in the
 * trace timeline and in timing-flagged metrics only.
 */
std::int64_t wallMicros();

/** Thread-safe, append-only trace-event collector. */
class TraceEventLog
{
  public:
    /** "X" span: [ts, ts + dur] on track (pid, tid). */
    void complete(const std::string &name, std::uint32_t pid,
                  std::uint32_t tid, std::int64_t ts, std::int64_t dur,
                  const std::string &argsJson = "");

    /** "C" counter sample at @p ts on track pid. */
    void counter(const std::string &name, std::uint32_t pid,
                 std::int64_t ts, double value);

    /** "M" process_name metadata. */
    void processName(std::uint32_t pid, const std::string &name);

    /** "M" thread_name metadata. */
    void threadName(std::uint32_t pid, std::uint32_t tid,
                    const std::string &name);

    std::size_t size() const;

    /**
     * Serialize as {"traceEvents": [...]} with events sorted by
     * (ts, insertion order) so the output is stable for a given set of
     * recorded events.
     */
    std::string toJson() const;

  private:
    struct Event
    {
        char phase;
        std::string name;
        std::uint32_t pid = 0;
        std::uint32_t tid = 0;
        std::int64_t ts = 0;
        std::int64_t dur = 0;
        double value = 0.0;        // counter payload
        std::string argsJson;      // pre-rendered args object body
        std::uint64_t seq = 0;     // insertion order tie-break
    };

    void push(Event e);

    mutable std::mutex _mutex;
    std::vector<Event> _events;
    std::uint64_t _nextSeq = 0;
};

} // namespace minnoc::obs

#endif // MINNOC_OBS_TRACE_EVENT_HPP
