#include "network.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace minnoc::sim {

namespace {

/** Deterministic per-packet checksum (splitmix-style mix of the id). */
std::uint64_t
packetChecksum(PacketId id, core::ProcId src, core::ProcId dst,
               std::uint64_t bytes)
{
    std::uint64_t z = id * 0x9e3779b97f4a7c15ULL + src +
                      (static_cast<std::uint64_t>(dst) << 32) + bytes;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Network::Network(const topo::Topology &topo,
                 const topo::RoutingFunction &routing,
                 const SimConfig &config, FaultModel faults)
    : _topo(&topo), _routing(&routing), _config(config),
      _faults(std::move(faults))
{
    const auto numLinks = static_cast<std::uint32_t>(topo.numLinks());
    _inputs.resize(numLinks);
    _outputs.resize(numLinks);
    _pipes.resize(numLinks);
    for (topo::LinkId l = 0; l < numLinks; ++l) {
        // Links into switches get receive buffers; links into end-nodes
        // are drained instantly by the NI (modeled without an input
        // unit), but keep uniform sender-side credit bookkeeping.
        if (!topo.isProc(topo.link(l).to))
            _inputs[l].vcs.resize(config.numVcs);
        auto &out = _outputs[l];
        out.credits.assign(config.numVcs, config.vcDepth);
        out.vcOwner.assign(config.numVcs, kNoPacket);
        out.tailSent.assign(config.numVcs, false);
        out.outstanding.assign(config.numVcs, 0);
    }
    _sources.resize(topo.numProcs());
    _inputUsed.assign(numLinks, false);
    _sourceUsed.assign(topo.numProcs(), false);
    _stats.linkFlits.assign(numLinks, 0);

    // Fail-from-start link faults: swap in the degraded routing before
    // any packet moves (nothing to purge yet).
    if (_faults.hasLinkFaults() && _faults.failAtCycle() <= 0)
        activateFaults(0);
}

bool
Network::isTail(const FlitRef &f) const
{
    return f.seq + 1 == _packets.at(f.packet).numFlits;
}

PacketId
Network::enqueue(core::ProcId src, core::ProcId dst, std::uint64_t bytes,
                 std::uint32_t callId, Cycle now)
{
    if (src >= _topo->numProcs() || dst >= _topo->numProcs())
        panic("Network::enqueue: proc out of range");
    if (src == dst)
        panic("Network::enqueue: src == dst");
    Packet pkt;
    pkt.id = static_cast<PacketId>(_packets.size());
    pkt.src = src;
    pkt.dst = dst;
    pkt.bytes = bytes;
    pkt.callId = callId;
    pkt.numFlits =
        1 + static_cast<std::uint32_t>(
                (bytes + _config.flitBytes - 1) / _config.flitBytes);
    pkt.enqueuedAt = now;
    pkt.lastProgress = now;
    pkt.channelSeq = _sendSeq[{dst, src}]++;
    pkt.checksum = packetChecksum(pkt.id, src, dst, bytes);
    pkt.wireChecksum = pkt.checksum;
    _packets.push_back(pkt);
    ++_stats.packetsEnqueued;
    if (_deadChannels.count({dst, src})) {
        // The channel has no surviving path: give up immediately so the
        // sender unblocks and the receiver learns the sequence is lost.
        dropPacket(pkt.id, "channel disconnected by link failure");
        return pkt.id;
    }
    _sources[src].queue.push_back(pkt.id);
    return pkt.id;
}

bool
Network::injected(PacketId id) const
{
    const Packet &pkt = _packets.at(id);
    return pkt.dropped || pkt.flitsInjected == pkt.numFlits;
}

bool
Network::hasDelivered(core::ProcId dst, core::ProcId src) const
{
    // In-order matching: only the next-in-sequence message is visible,
    // even if later ones overtook it through the virtual channels.
    const auto it = _delivered.find({dst, src});
    if (it == _delivered.end() || it->second.empty())
        return false;
    const auto seqIt = _consumeSeq.find({dst, src});
    const std::uint64_t next = seqIt == _consumeSeq.end() ? 0
                                                          : seqIt->second;
    return it->second.begin()->first == next;
}

PacketId
Network::consumeDelivered(core::ProcId dst, core::ProcId src)
{
    if (!hasDelivered(dst, src))
        panic("Network::consumeDelivered: nothing from ", src, " at ",
              dst);
    auto &buffer = _delivered[{dst, src}];
    const PacketId id = buffer.begin()->second;
    buffer.erase(buffer.begin());
    ++_consumeSeq[{dst, src}];
    return id;
}

void
Network::step(Cycle now)
{
    if (now <= _lastStep)
        panic("Network::step: non-monotone clock");
    _lastStep = now;

    std::fill(_inputUsed.begin(), _inputUsed.end(), false);
    std::fill(_sourceUsed.begin(), _sourceUsed.end(), false);

    if (!_faultsActive && _faults.hasLinkFaults() &&
        now >= _faults.failAtCycle()) {
        activateFaults(now);
    }

    arriveCredits(now);
    arriveFlits(now);
    routeAndAllocate(now);
    switchAllocation(now);
    injectFromSources(now);
    if (_config.deadlockScanInterval > 0 &&
        now % _config.deadlockScanInterval == 0) {
        scanForDeadlocks(now);
    }

    // Occupancy integral for the activity power model's retention
    // term. The trace driver fast-forwards the clock only while the
    // network is empty, so unstepped cycles contribute exactly zero.
    _stats.residentFlitCycles += _flitsInNetwork;

    if constexpr (obs::kEnabled) {
        if (_observer)
            _observer->onStep(now, _flitsInNetwork, _stats.linkFlits);
    }
}

void
Network::arriveCredits(Cycle now)
{
    for (topo::LinkId l = 0; l < _pipes.size(); ++l) {
        auto &pipe = _pipes[l];
        auto &out = _outputs[l];
        // Lax-sync: credits may be consumed up to laxSyncSlack cycles
        // before their modeled wire arrival (0 = strict, bit-exact with
        // the historical comparison). Only this backward channel is
        // relaxed; flit arrivals in arriveFlits() stay cycle-exact.
        const Cycle horizon = now + _config.laxSyncSlack;
        while (!pipe.credits.empty() &&
               pipe.credits.front().arrive <= horizon) {
            const auto vc = pipe.credits.front().vc;
            pipe.credits.pop_front();
            ++out.credits[vc];
            if (out.outstanding[vc] == 0)
                panic("Network: credit underflow on link ", l);
            --out.outstanding[vc];
            if (out.tailSent[vc] && out.outstanding[vc] == 0) {
                // Downstream VC fully drained: release the reservation.
                out.vcOwner[vc] = kNoPacket;
                out.tailSent[vc] = false;
            }
        }
    }
}

void
Network::arriveFlits(Cycle now)
{
    for (topo::LinkId l = 0; l < _pipes.size(); ++l) {
        auto &pipe = _pipes[l];
        while (!pipe.flits.empty() && pipe.flits.front().arrive <= now) {
            const auto in = pipe.flits.front();
            pipe.flits.pop_front();
            const auto toNode = _topo->link(l).to;
            if (_topo->isProc(toNode)) {
                deliverAtProc(in.flit, l, in.vc, now);
            } else {
                auto &vc = _inputs[l].vcs.at(in.vc);
                if (in.flit.isHead()) {
                    if (vc.owner != kNoPacket)
                        panic("Network: head arrival on owned VC");
                    vc.owner = in.flit.packet;
                }
                if (vc.owner != in.flit.packet)
                    panic("Network: flit arrival on foreign VC");
                vc.buffer.push_back(in.flit);
                ++_stats.bufferWrites;
                _packets[in.flit.packet].lastProgress = now;
            }
        }
    }
}

std::uint32_t
Network::allocateVc(OutputState &out)
{
    const auto n = static_cast<std::uint32_t>(out.vcOwner.size());
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t vc = (out.rrVc + i) % n;
        if (out.vcOwner[vc] == kNoPacket) {
            out.rrVc = (vc + 1) % n;
            return vc;
        }
    }
    return kNoVc;
}

topo::LinkId
Network::chooseOutput(const std::vector<topo::LinkId> &candidates)
{
    // Prefer outputs with a free downstream VC, then most free credits
    // (congestion-aware choice for adaptive routing; deterministic
    // functions supply one candidate).
    topo::LinkId best = topo::kNoLink;
    bool bestFree = false;
    std::uint64_t bestCredits = 0;
    for (const auto cand : candidates) {
        const auto &out = _outputs[cand];
        bool freeVc = false;
        std::uint64_t credits = 0;
        for (std::uint32_t v = 0; v < out.vcOwner.size(); ++v) {
            if (out.vcOwner[v] == kNoPacket)
                freeVc = true;
            credits += out.credits[v];
        }
        if (!freeVc)
            continue;
        if (best == topo::kNoLink || credits > bestCredits) {
            best = cand;
            bestFree = true;
            bestCredits = credits;
        }
    }
    (void)bestFree;
    return best;
}

void
Network::routeAndAllocate(Cycle now)
{
    (void)now;
    for (topo::LinkId l = 0; l < _inputs.size(); ++l) {
        auto &unit = _inputs[l];
        for (auto &vc : unit.vcs) {
            if (vc.buffer.empty() || vc.outAssigned)
                continue;
            if (!vc.buffer.front().isHead())
                panic("Network: non-head flit awaiting route");
            const Packet &pkt = _packets[vc.buffer.front().packet];
            const auto node = _topo->link(l).to;
            const auto candidates =
                _routing->candidates(node, pkt.src, pkt.dst);
            if (candidates.empty())
                panic("Network: routing returned no candidates");
            const auto out = chooseOutput(candidates);
            if (out == topo::kNoLink)
                continue; // every candidate VC busy: stall
            auto &outState = _outputs[out];
            const auto w = allocateVc(outState);
            if (w == kNoVc)
                continue;
            outState.vcOwner[w] = pkt.id;
            outState.tailSent[w] = false;
            vc.outLink = out;
            vc.outVc = w;
            vc.outAssigned = true;
        }
    }
}

void
Network::forwardFlit(topo::LinkId inLink, std::uint32_t inVc, VcState &vc,
                     Cycle now)
{
    const FlitRef flit = vc.buffer.front();
    vc.buffer.pop_front();
    ++_stats.bufferReads;
    auto &out = _outputs[vc.outLink];

    if (out.credits[vc.outVc] == 0)
        panic("Network: forwarding without credit");
    --out.credits[vc.outVc];
    ++out.outstanding[vc.outVc];
    _pipes[vc.outLink].flits.push_back(LinkPipe::InFlit{
        now + _topo->link(vc.outLink).delay(), flit, vc.outVc});
    maybeCorrupt(flit);
    ++_stats.flitHops;
    ++_stats.linkFlits[vc.outLink];
    if (flit.isHead())
        ++_packets[flit.packet].hops;
    _packets[flit.packet].lastProgress = now;

    // The freed input buffer slot becomes a credit for the upstream
    // sender of `inLink` after the wire's return delay.
    _pipes[inLink].credits.push_back(LinkPipe::InCredit{
        now + _topo->link(inLink).delay(), inVc});

    if (isTail(flit)) {
        out.tailSent[vc.outVc] = true;
        if (!vc.buffer.empty())
            panic("Network: flits behind tail in VC");
        vc.owner = kNoPacket;
        vc.outAssigned = false;
        vc.outLink = topo::kNoLink;
        vc.outVc = kNoVc;
    }
    _inputUsed[inLink] = true;
}

void
Network::switchAllocation(Cycle now)
{
    // Arbitrate each output link independently (full crossbar switches:
    // contention exists only per link, as in the paper's model).
    for (topo::LinkId out = 0; out < _outputs.size(); ++out) {
        const auto fromNode = _topo->link(out).from;
        if (_topo->isProc(fromNode))
            continue; // injection links are driven by the source NIs

        // Gather requesting (input link, vc) pairs.
        struct Request
        {
            topo::LinkId link;
            std::uint32_t vc;
        };
        std::vector<Request> requests;
        for (const auto inLink : _topo->inLinks(fromNode)) {
            if (_inputUsed[inLink])
                continue;
            auto &unit = _inputs[inLink];
            for (std::uint32_t v = 0; v < unit.vcs.size(); ++v) {
                auto &vc = unit.vcs[v];
                if (vc.buffer.empty() || !vc.outAssigned ||
                    vc.outLink != out) {
                    continue;
                }
                if (_outputs[out].credits[vc.outVc] == 0)
                    continue;
                requests.push_back(Request{inLink, v});
            }
        }
        if (requests.empty())
            continue;
        auto &rr = _outputs[out].rrReq;
        const auto &winner = requests[rr % requests.size()];
        rr = (rr + 1) % std::max<std::uint32_t>(
                            1, static_cast<std::uint32_t>(requests.size()));
        forwardFlit(winner.link, winner.vc,
                    _inputs[winner.link].vcs[winner.vc], now);
    }
}

void
Network::injectFromSources(Cycle now)
{
    for (core::ProcId p = 0; p < _sources.size(); ++p) {
        auto &src = _sources[p];
        if (src.queue.empty() || _sourceUsed[p])
            continue;
        Packet &pkt = _packets[src.queue.front()];
        if (now < pkt.holdUntil)
            continue;
        const auto inj = _topo->injectionLink(p);
        auto &out = _outputs[inj];

        if (!src.vcAssigned) {
            const auto w = allocateVc(out);
            if (w == kNoVc)
                continue;
            out.vcOwner[w] = pkt.id;
            out.tailSent[w] = false;
            src.vc = w;
            src.vcAssigned = true;
        }
        if (out.credits[src.vc] == 0)
            continue;

        const FlitRef flit{pkt.id, pkt.flitsInjected};
        --out.credits[src.vc];
        ++out.outstanding[src.vc];
        _pipes[inj].flits.push_back(LinkPipe::InFlit{
            now + _topo->link(inj).delay(), flit, src.vc});
        maybeCorrupt(flit);
        ++pkt.flitsInjected;
        ++_flitsInNetwork;
        ++_stats.flitHops;
        ++_stats.linkFlits[inj];
        if (flit.isHead())
            ++pkt.hops;
        pkt.lastProgress = now;
        _sourceUsed[p] = true;

        if (pkt.flitsInjected == pkt.numFlits) {
            out.tailSent[src.vc] = true;
            src.queue.pop_front();
            src.vcAssigned = false;
            src.vc = kNoVc;
        }
    }
}

void
Network::deliverAtProc(const FlitRef &flit, topo::LinkId link,
                       std::uint32_t vc, Cycle now)
{
    Packet &pkt = _packets[flit.packet];
    ++pkt.flitsDelivered;
    --_flitsInNetwork;
    pkt.lastProgress = now;

    // The NI drains instantly; the freed slot is credited back to the
    // last switch after the wire's return delay.
    _pipes[link].credits.push_back(LinkPipe::InCredit{
        now + _topo->link(link).delay(), vc});

    if (isTail(flit)) {
        if (pkt.flitsDelivered != pkt.numFlits)
            panic("Network: tail delivered before body (packet ", pkt.id,
                  ")");
        if (pkt.wireChecksum != pkt.checksum) {
            // Checksum mismatch: a transient fault corrupted the packet
            // in flight. The NI NACKs; the source retransmits after an
            // exponential backoff, up to the bounded retry budget.
            if (pkt.retries >= _faults.maxRetransmits()) {
                ++_stats.retryExhaustions;
                dropPacket(pkt.id, "corruption retry budget exhausted");
            } else {
                ++_stats.retransmissions;
                ++pkt.retries;
                pkt.wireChecksum = pkt.checksum;
                requeuePacket(pkt.id, now,
                              _faults.backoff(pkt.retries - 1));
            }
            return;
        }
        pkt.deliveredAt = now;
        _delivered[{pkt.dst, pkt.src}][pkt.channelSeq] = pkt.id;
        ++_stats.packetsDelivered;
        _stats.packetLatency.sample(
            static_cast<double>(now - pkt.enqueuedAt));
        if (pkt.retries == 0) {
            _stats.cleanPacketLatency.sample(
                static_cast<double>(now - pkt.enqueuedAt));
        }
        _stats.packetHops.sample(static_cast<double>(pkt.hops));
        if constexpr (obs::kEnabled) {
            if (_observer) {
                _observer->onDelivered(pkt.src, pkt.dst,
                                       now - pkt.enqueuedAt, pkt.hops,
                                       pkt.retries == 0);
            }
        }
    }
}

void
Network::scanForDeadlocks(Cycle now)
{
    // Regressive recovery kills one victim per scan — the packet whose
    // progress is stalest. Killing every blocked packet at once would
    // make the survivors re-form the identical cycle after the penalty
    // and livelock.
    Packet *victim = nullptr;
    for (auto &pkt : _packets) {
        if (pkt.delivered() || pkt.dropped)
            continue;
        if (pkt.flitsInjected == 0 ||
            pkt.flitsInjected == pkt.flitsDelivered) {
            continue; // no flits alive in the network
        }
        if (now - pkt.lastProgress <= _config.deadlockTimeout)
            continue;
        if (!victim || pkt.lastProgress < victim->lastProgress)
            victim = &pkt;
    }
    if (victim)
        recoverPacket(victim->id, now);
}

void
Network::recoverPacket(PacketId id, Cycle now)
{
    Packet &pkt = _packets.at(id);
    warn("Network: deadlock recovery of packet ", id, " (", pkt.src, "->",
         pkt.dst, ") at cycle ", now);
    ++_stats.deadlockRecoveries;
    if (pkt.retries >= _config.maxRecoveries) {
        // The bound exists to turn a pathological kill/retransmit
        // livelock into a counted drop with a diagnostic.
        ++_stats.recoveryExhaustions;
        dropPacket(id, "deadlock recovery budget exhausted");
        return;
    }
    ++pkt.retries;
    requeuePacket(id, now, _config.deadlockPenalty);
}

void
Network::purgePacket(PacketId id)
{
    // Purge in-flight flits (treat as never sent: restore the sender's
    // credit, cancel the outstanding count).
    for (topo::LinkId l = 0; l < _pipes.size(); ++l) {
        auto &pipe = _pipes[l];
        auto &out = _outputs[l];
        for (auto it = pipe.flits.begin(); it != pipe.flits.end();) {
            if (it->flit.packet == id) {
                ++out.credits[it->vc];
                --out.outstanding[it->vc];
                --_flitsInNetwork;
                it = pipe.flits.erase(it);
            } else {
                ++it;
            }
        }
    }

    // Purge buffered flits and free the victim's input VCs.
    for (topo::LinkId l = 0; l < _inputs.size(); ++l) {
        auto &out = _outputs[l];
        for (std::uint32_t v = 0; v < _inputs[l].vcs.size(); ++v) {
            auto &vc = _inputs[l].vcs[v];
            if (vc.owner != id)
                continue;
            const auto k =
                static_cast<std::uint32_t>(vc.buffer.size());
            vc.buffer.clear();
            vc.owner = kNoPacket;
            vc.outAssigned = false;
            vc.outLink = topo::kNoLink;
            vc.outVc = kNoVc;
            out.credits[v] += k;
            if (out.outstanding[v] < k)
                panic("Network: recovery outstanding underflow");
            out.outstanding[v] -= k;
            _flitsInNetwork -= k;
        }
    }

    // Release every downstream VC reservation held by the victim. A
    // reservation is only freed once the tail is credited, so any
    // credit still in flight on a VC the victim owns is for one of its
    // own flits (already consumed downstream) — absorb it now rather
    // than waiting out the wire delay. This happens on corruption
    // NACKs, where the purge fires the same cycle the tail delivers.
    for (topo::LinkId l = 0; l < _outputs.size(); ++l) {
        auto &out = _outputs[l];
        auto &pipe = _pipes[l];
        for (std::uint32_t v = 0; v < out.vcOwner.size(); ++v) {
            if (out.vcOwner[v] != id)
                continue;
            for (auto it = pipe.credits.begin();
                 it != pipe.credits.end() && out.outstanding[v] != 0;) {
                if (it->vc == v) {
                    ++out.credits[v];
                    --out.outstanding[v];
                    it = pipe.credits.erase(it);
                } else {
                    ++it;
                }
            }
            if (out.outstanding[v] != 0)
                panic("Network: recovery left outstanding flits");
            out.vcOwner[v] = kNoPacket;
            out.tailSent[v] = false;
        }
    }

    // If the source NI was mid-wormhole on this packet, reset it.
    Packet &pkt = _packets.at(id);
    auto &src = _sources[pkt.src];
    if (!src.queue.empty() && src.queue.front() == id) {
        src.vcAssigned = false;
        src.vc = kNoVc;
    }
}

void
Network::requeuePacket(PacketId id, Cycle now, Cycle backoff)
{
    purgePacket(id);
    Packet &pkt = _packets.at(id);
    auto &src = _sources[pkt.src];
    const bool queued =
        std::find(src.queue.begin(), src.queue.end(), id) !=
        src.queue.end();
    if (!queued) {
        // Retransmit ahead of waiting packets, but never preempt a
        // front packet mid-wormhole: its remaining flits must follow
        // the head down the VC it already claimed.
        auto pos = src.queue.begin();
        if (src.vcAssigned && !src.queue.empty())
            ++pos;
        src.queue.insert(pos, id);
    }
    if (src.queue.front() == id)
        src.vcAssigned = false;
    pkt.flitsInjected = 0;
    pkt.flitsDelivered = 0;
    pkt.hops = 0;
    pkt.holdUntil = now + backoff;
    pkt.lastProgress = now;
}

void
Network::dropPacket(PacketId id, const char *why)
{
    purgePacket(id);
    Packet &pkt = _packets.at(id);
    auto &src = _sources[pkt.src];
    const auto it = std::find(src.queue.begin(), src.queue.end(), id);
    if (it != src.queue.end()) {
        if (it == src.queue.begin())
            src.vcAssigned = false;
        src.queue.erase(it);
    }
    pkt.dropped = true;
    pkt.flitsInjected = 0;
    pkt.flitsDelivered = 0;
    ++_stats.packetsDropped;
    // The receiver matches in channel-sequence order; record the hole so
    // it can skip this message instead of blocking forever.
    _lostSeqs[{pkt.dst, pkt.src}].insert(pkt.channelSeq);
    warn("Network: dropping packet ", id, " (", pkt.src, "->", pkt.dst,
         ", seq ", pkt.channelSeq, "): ", why);
}

void
Network::activateFaults(Cycle now)
{
    _faultsActive = true;
    _stats.failedLinks =
        static_cast<std::uint32_t>(_faults.failedLinks().size());

    // The routing swap invalidates every in-network position (the new
    // table need not pass through a packet's current switch), so purge
    // and source-retransmit everything currently in flight.
    for (auto &pkt : _packets) {
        if (pkt.delivered() || pkt.dropped || pkt.flitsInjected == 0)
            continue;
        ++_stats.retransmissions;
        requeuePacket(pkt.id, now, _faults.backoff(0));
    }

    auto degraded = rerouteAroundFaults(*_topo, _faults.failedMask());
    for (const auto &[s, d] : degraded.disconnected)
        _deadChannels.insert({d, s});
    _stats.disconnectedPairs =
        static_cast<std::uint32_t>(degraded.disconnected.size());
    _degradedRouting = std::move(degraded.routing);
    _routing = _degradedRouting.get();
    if (!degraded.disconnected.empty()) {
        warn("Network: ", _stats.failedLinks, " failed links left ",
             _stats.disconnectedPairs, " (src,dst) pairs disconnected");
    }

    // Give up on queued packets whose channel no longer exists.
    for (auto &pkt : _packets) {
        if (!pkt.delivered() && !pkt.dropped &&
            _deadChannels.count({pkt.dst, pkt.src})) {
            dropPacket(pkt.id, "channel disconnected by link failure");
        }
    }
}

void
Network::maybeCorrupt(const FlitRef &flit)
{
    // One Bernoulli draw per packet per link traversal (taken when the
    // head enters the link): "did any flit of this worm get hit while
    // crossing?". Per-flit draws would make large packets undeliverable
    // at any rate worth simulating.
    if (!flit.isHead())
        return;
    if (_faults.corruptsTraversal()) {
        ++_stats.corruptedFlits;
        _packets[flit.packet].wireChecksum ^= _faults.corruptionWord();
    }
}

bool
Network::nextDeliveryLost(core::ProcId dst, core::ProcId src) const
{
    const auto it = _lostSeqs.find({dst, src});
    if (it == _lostSeqs.end())
        return false;
    const auto seqIt = _consumeSeq.find({dst, src});
    const std::uint64_t next =
        seqIt == _consumeSeq.end() ? 0 : seqIt->second;
    return it->second.count(next) != 0;
}

void
Network::skipLostDelivery(core::ProcId dst, core::ProcId src)
{
    if (!nextDeliveryLost(dst, src))
        panic("Network::skipLostDelivery: next message from ", src,
              " at ", dst, " is not lost");
    auto &lost = _lostSeqs[{dst, src}];
    lost.erase(_consumeSeq[{dst, src}]++);
}

bool
Network::channelDisconnected(core::ProcId src, core::ProcId dst) const
{
    return _deadChannels.count({dst, src}) != 0;
}

bool
Network::idle() const
{
    if (_flitsInNetwork != 0)
        return false;
    for (const auto &src : _sources) {
        if (!src.queue.empty())
            return false;
    }
    return true;
}

} // namespace minnoc::sim
