/**
 * @file
 * Trace-driven workload engine (paper Section 4.2).
 *
 * Replays a Trace on a Network: each rank walks its timeline, charging
 * compute cycles locally, paying the ten-cycle send overhead and then
 * blocking until its packet is fully injected, and blocking on receives
 * until the matching message is absorbed (plus the receive overhead).
 * Reported metrics match the paper's Figure 8: total execution time and
 * per-rank communication time (waiting + overhead included).
 */

#ifndef MINNOC_SIM_TRACE_DRIVER_HPP
#define MINNOC_SIM_TRACE_DRIVER_HPP

#include <string>
#include <utility>
#include <vector>

#include "fault.hpp"
#include "network.hpp"
#include "topo/power.hpp"
#include "trace/trace.hpp"

namespace minnoc::sim {

/** Results of one trace-driven simulation. */
struct SimResult
{
    /** Cycle at which the last rank finished: total execution time. */
    Cycle execTime = 0;
    /** Per-rank cycles spent inside send/recv (waiting + overhead). */
    std::vector<Cycle> commTime;
    /** Per-rank finish cycle. */
    std::vector<Cycle> finishTime;
    std::uint64_t packetsDelivered = 0;
    std::uint32_t deadlockRecoveries = 0;

    /** Fault accounting (all zero / 1.0 on a clean network). */
    std::uint64_t packetsEnqueued = 0;
    std::uint64_t packetsDropped = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t corruptedFlits = 0;
    std::uint32_t failedLinks = 0;
    std::uint32_t disconnectedPairs = 0;
    std::uint32_t retryExhaustions = 0;
    std::uint32_t recoveryExhaustions = 0;
    /** Fraction of enqueued packets eventually delivered. */
    double deliveredFraction = 1.0;
    /** Mean latency relative to first-try deliveries (>= 1.0). */
    double latencyInflation = 1.0;
    /** Receives the driver skipped because the message was lost. */
    std::uint64_t recvsLost = 0;
    /** Distinct (src, dst) channels with at least one lost message. */
    std::vector<std::pair<core::ProcId, core::ProcId>>
        undeliverableChannels;

    double avgPacketLatency = 0.0;
    /** Mean path length in links over delivered packets. */
    double avgPacketHops = 0.0;
    /** Peak and mean per-link utilization over the whole run. */
    double maxLinkUtilization = 0.0;
    double meanLinkUtilization = 0.0;
    /** Flits each link carried (for power/utilization analysis). */
    std::vector<std::uint64_t> linkFlits;

    /** Microarchitectural event counts for the activity power model. */
    topo::ActivityCounters activity;

    /** Mean of commTime over ranks. */
    double commTimeMean() const;
    /** Max of commTime over ranks. */
    Cycle commTimeMax() const;
};

/**
 * Drive @p trace through @p network until every rank completes.
 * The network must be freshly constructed for the trace's rank count.
 * An observer attached to the network is finalized (end-of-run counter
 * snapshot, last epoch closed) before the result is returned.
 */
SimResult runTrace(const trace::Trace &trace, Network &network);

/**
 * Convenience: build the network for (topo, routing, config) and run.
 * @p observer, when non-null, is attached for the duration of the run.
 */
SimResult runTrace(const trace::Trace &trace, const topo::Topology &topo,
                   const topo::RoutingFunction &routing,
                   const SimConfig &config = {},
                   obs::SimObserver *observer = nullptr);

/**
 * Fault-injection variant: resolve @p faults against @p topo, build the
 * (possibly degraded) network, and run. Undeliverable messages are
 * skipped and accounted instead of hanging the replay.
 */
SimResult runTrace(const trace::Trace &trace, const topo::Topology &topo,
                   const topo::RoutingFunction &routing,
                   const SimConfig &config, const FaultConfig &faults,
                   obs::SimObserver *observer = nullptr);

} // namespace minnoc::sim

#endif // MINNOC_SIM_TRACE_DRIVER_HPP
