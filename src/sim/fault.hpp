/**
 * @file
 * Fault injection and fault-aware rerouting.
 *
 * The generated topologies are minimal by construction (Section 3
 * prunes every link the contention model calls redundant), which makes
 * them the most fragile designs in the evaluation. This module models
 * the two hardware misbehaviors that matter for such networks:
 *
 *  - **Permanent link failures**: a set of links (named explicitly or
 *    drawn at random from a seed) stops carrying flits, either from the
 *    start of the run or at a configured cycle. The network responds by
 *    recomputing a shortest-path TableRouting over the surviving links;
 *    (src, dst) pairs with no surviving path are reported as
 *    disconnected and the simulator degrades to a delivered-fraction
 *    metric instead of hanging.
 *
 *  - **Transient faults**: every time a packet traverses a link, one
 *    Bernoulli draw decides whether some flit of the worm was corrupted
 *    while crossing. Corruption is detected end-to-end by a per-packet
 *    checksum at the destination NI, which NACKs the packet; the source
 *    retransmits with exponential backoff up to a bounded retry budget,
 *    after which the packet is dropped and counted.
 *
 * All randomness (failed-link selection and per-traversal corruption
 * draws) comes from one seeded Rng, so a (seed, workload) pair
 * reproduces identical statistics.
 */

#ifndef MINNOC_SIM_FAULT_HPP
#define MINNOC_SIM_FAULT_HPP

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "config.hpp"
#include "core/types.hpp"
#include "topo/routing.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace minnoc::sim {

/** Fault-injection knobs (inert when default-constructed). */
struct FaultConfig
{
    /** Links that fail permanently, by id. */
    std::vector<topo::LinkId> failLinks;

    /**
     * Additional permanently failed links drawn at random (without
     * replacement) from the inter-switch links; when the topology has
     * none (crossbar), the draw falls back to all links.
     */
    std::uint32_t randomFailLinks = 0;

    /** Cycle at which permanent failures take effect (<= 0: at start). */
    Cycle failAtCycle = 0;

    /** Per-packet-per-link-traversal corruption probability. */
    double flitErrorRate = 0.0;

    /** Seed for link selection and corruption draws. */
    std::uint64_t seed = 1;

    /**
     * Retransmissions allowed per packet before a persistently
     * corrupted packet is dropped.
     */
    std::uint32_t maxRetransmits = 8;

    /** Backoff before retry r is backoffBase << r, capped below. */
    Cycle backoffBase = 64;
    Cycle backoffCap = 16'384;
};

/**
 * Resolved fault state for one topology: the concrete failed-link set
 * plus the corruption stream. Owned (by value) by the Network.
 */
class FaultModel
{
  public:
    /** Inert model: no failures, no corruption. */
    FaultModel() = default;

    /**
     * Resolve @p cfg against @p topo: validates explicit link ids and
     * draws the random failed set deterministically from the seed.
     */
    FaultModel(const topo::Topology &topo, const FaultConfig &cfg);

    /** True when any fault mechanism is configured. */
    bool
    enabled() const
    {
        return !_failedList.empty() || _cfg.flitErrorRate > 0.0;
    }

    /** True when permanent link failures are configured. */
    bool hasLinkFaults() const { return !_failedList.empty(); }

    /** Cycle the permanent failures take effect (<= 0: from start). */
    Cycle failAtCycle() const { return _cfg.failAtCycle; }

    /** Ids of the permanently failed links. */
    const std::vector<topo::LinkId> &failedLinks() const
    {
        return _failedList;
    }

    /** Per-link failed mask (indexed by LinkId; empty when no faults). */
    const std::vector<bool> &failedMask() const { return _failedMask; }

    /** Bernoulli draw: does this packet-link traversal corrupt it? */
    bool
    corruptsTraversal()
    {
        return _cfg.flitErrorRate > 0.0 && _rng.chance(_cfg.flitErrorRate);
    }

    /** Nonzero mask XORed into the packet checksum on corruption. */
    std::uint64_t corruptionWord() { return _rng.next() | 1; }

    std::uint32_t maxRetransmits() const { return _cfg.maxRetransmits; }

    /** Exponential backoff before retransmission number @p retries. */
    Cycle
    backoff(std::uint32_t retries) const
    {
        const Cycle raw = _cfg.backoffBase
                          << std::min<std::uint32_t>(retries, 20);
        return std::min(raw, _cfg.backoffCap);
    }

  private:
    FaultConfig _cfg;
    std::vector<bool> _failedMask;
    std::vector<topo::LinkId> _failedList;
    Rng _rng;
};

/** A recomputed routing table plus the pairs it could not connect. */
struct DegradedRouting
{
    std::unique_ptr<topo::TableRouting> routing;
    /** (src, dst) pairs with no surviving path. */
    std::vector<std::pair<core::ProcId, core::ProcId>> disconnected;
};

/**
 * Fault-aware rerouting: BFS shortest paths over the links of @p topo
 * not marked in @p failedMask (which may be empty for "no failures").
 * Every connected (src, dst) pair gets a path; the rest are reported
 * in DegradedRouting::disconnected.
 */
DegradedRouting rerouteAroundFaults(const topo::Topology &topo,
                                    const std::vector<bool> &failedMask);

} // namespace minnoc::sim

#endif // MINNOC_SIM_FAULT_HPP
