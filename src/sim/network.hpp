/**
 * @file
 * Cycle-driven flit-level network model.
 *
 * Microarchitecture: input-queued wormhole routers with full internal
 * crossbars (contention is per link, matching the paper's path-conflict
 * model), per-link virtual channels with credit-based flow control,
 * per-output round-robin switch allocation, one flit per input link and
 * per output link per cycle, and wire delay equal to link length.
 *
 * Deadlocks (possible under the torus's fully adaptive routing and on
 * arbitrary generated topologies) are detected by per-packet progress
 * timeout and resolved by regressive recovery: every buffered or
 * in-flight flit of the victim is purged with credits restored, and the
 * source retransmits the whole packet after a penalty — the scheme the
 * paper assumes (Section 4.2).
 */

#ifndef MINNOC_SIM_NETWORK_HPP
#define MINNOC_SIM_NETWORK_HPP

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "config.hpp"
#include "fault.hpp"
#include "obs/sim_observer.hpp"
#include "packet.hpp"
#include "topo/routing.hpp"
#include "topo/topology.hpp"
#include "util/stats.hpp"

namespace minnoc::sim {

/** Aggregate network statistics. */
struct NetworkStats
{
    std::uint64_t packetsEnqueued = 0;
    std::uint64_t packetsDelivered = 0;
    /** Packets given up on: disconnected channel or retries exhausted. */
    std::uint64_t packetsDropped = 0;
    std::uint64_t flitHops = 0;
    std::uint32_t deadlockRecoveries = 0;

    /** Flits written into switch input-VC buffers (activity power). */
    std::uint64_t bufferWrites = 0;
    /** Flits read back out of input-VC buffers (crossbar traversals). */
    std::uint64_t bufferReads = 0;
    /** Occupancy integral: flits resident in the fabric, per cycle. */
    std::uint64_t residentFlitCycles = 0;

    /** Source retransmissions (corruption NACKs + fault-event purges). */
    std::uint64_t retransmissions = 0;
    /** Flit corruption events on link traversals. */
    std::uint64_t corruptedFlits = 0;
    /** Permanently failed links once the fault event is active. */
    std::uint32_t failedLinks = 0;
    /** (src, dst) pairs with no surviving path after link failures. */
    std::uint32_t disconnectedPairs = 0;
    /** Packets dropped because the corruption-retry budget ran out. */
    std::uint32_t retryExhaustions = 0;
    /** Packets dropped because deadlock recoveries exceeded the bound. */
    std::uint32_t recoveryExhaustions = 0;

    ScalarStat packetLatency; ///< enqueue -> delivered, cycles
    ScalarStat packetHops;    ///< path length in links
    /** Latency of packets delivered on the first try (no retransmits). */
    ScalarStat cleanPacketLatency;

    /** Fraction of enqueued packets eventually delivered. */
    double
    deliveredFraction() const
    {
        if (packetsEnqueued == 0)
            return 1.0;
        return static_cast<double>(packetsDelivered) /
               static_cast<double>(packetsEnqueued);
    }

    /**
     * Mean delivered latency relative to the first-try population:
     * 1.0 on a clean network, above it when retransmissions stretched
     * the tail.
     */
    double
    latencyInflation() const
    {
        if (cleanPacketLatency.count() == 0 ||
            cleanPacketLatency.mean() <= 0.0) {
            return 1.0;
        }
        return packetLatency.mean() / cleanPacketLatency.mean();
    }

    /** Flits that traversed each link (indexed by LinkId). */
    std::vector<std::uint64_t> linkFlits;

    /**
     * Utilization of link @p l over a horizon of @p cycles: fraction of
     * cycles the link moved a flit (a link moves at most one per
     * cycle).
     */
    double
    linkUtilization(topo::LinkId l, Cycle cycles) const
    {
        if (cycles <= 0 || l >= linkFlits.size())
            return 0.0;
        return static_cast<double>(linkFlits[l]) /
               static_cast<double>(cycles);
    }

    /** Peak link utilization over the horizon. */
    double
    maxLinkUtilization(Cycle cycles) const
    {
        double best = 0.0;
        for (topo::LinkId l = 0; l < linkFlits.size(); ++l)
            best = std::max(best, linkUtilization(l, cycles));
        return best;
    }

    /** Mean utilization over all links. */
    double
    meanLinkUtilization(Cycle cycles) const
    {
        if (linkFlits.empty())
            return 0.0;
        double total = 0.0;
        for (topo::LinkId l = 0; l < linkFlits.size(); ++l)
            total += linkUtilization(l, cycles);
        return total / static_cast<double>(linkFlits.size());
    }
};

/**
 * The network: topology + routing + router state. Driven one cycle at
 * a time by step(); the trace engine enqueues packets and polls
 * delivery.
 */
class Network
{
  public:
    /**
     * @param topo physical topology (must outlive the network)
     * @param routing routing function (must outlive the network)
     * @param config simulator parameters
     * @param faults resolved fault model (default: no faults). With
     *        fail-from-start link faults the routing is replaced by a
     *        degraded shortest-path table immediately; with a positive
     *        fail-at cycle the swap happens mid-run, purging and
     *        retransmitting everything then in flight.
     */
    Network(const topo::Topology &topo,
            const topo::RoutingFunction &routing, const SimConfig &config,
            FaultModel faults = FaultModel{});

    /** Queue a packet for injection; returns its id. */
    PacketId enqueue(core::ProcId src, core::ProcId dst,
                     std::uint64_t bytes, std::uint32_t callId, Cycle now);

    /** True once the packet's tail flit left the source NI (or it was
     *  dropped — senders must not block on an undeliverable packet). */
    bool injected(PacketId id) const;

    /** True if a delivered-but-unconsumed message from src waits at dst. */
    bool hasDelivered(core::ProcId dst, core::ProcId src) const;

    /**
     * Consume the oldest delivered message from src at dst; returns its
     * packet id (panics when none is pending).
     */
    PacketId consumeDelivered(core::ProcId dst, core::ProcId src);

    /** Advance the network one cycle (call with monotone `now`). */
    void step(Cycle now);

    /** True when no flits exist anywhere and no injections are pending. */
    bool idle() const;

    /**
     * True when the next in-sequence message from @p src at @p dst is
     * known lost (dropped packet) and will never be delivered. The
     * consumer should acknowledge it via skipLostDelivery() and move
     * on instead of blocking.
     */
    bool nextDeliveryLost(core::ProcId dst, core::ProcId src) const;

    /** Advance the channel past a lost message (panics when none). */
    void skipLostDelivery(core::ProcId dst, core::ProcId src);

    /** True when link failures left (src -> dst) without any path. */
    bool channelDisconnected(core::ProcId src, core::ProcId dst) const;

    const NetworkStats &stats() const { return _stats; }
    const Packet &packet(PacketId id) const { return _packets.at(id); }
    const SimConfig &config() const { return _config; }
    const FaultModel &faults() const { return _faults; }

    /**
     * Attach a telemetry observer (must outlive the network; nullptr
     * detaches). Fed per cycle and per delivery; compiled out entirely
     * when MINNOC_OBS=OFF.
     */
    void setObserver(obs::SimObserver *observer) { _observer = observer; }
    obs::SimObserver *observer() const { return _observer; }

    /** Flits currently buffered or in flight (observer support). */
    std::uint64_t flitsInNetwork() const { return _flitsInNetwork; }

  private:
    static constexpr std::uint32_t kNoVc = static_cast<std::uint32_t>(-1);

    /** Receiver-side state of one virtual channel of one link. */
    struct VcState
    {
        PacketId owner = kNoPacket;
        std::deque<FlitRef> buffer;
        /** Output chosen for the owner (valid once head routed). */
        topo::LinkId outLink = topo::kNoLink;
        std::uint32_t outVc = kNoVc;
        bool outAssigned = false;
    };

    /** Receiver side of a link (absent for links into end-nodes). */
    struct InputUnit
    {
        std::vector<VcState> vcs;
    };

    /** Sender-side bookkeeping of a link. */
    struct OutputState
    {
        std::vector<std::uint32_t> credits; ///< free downstream slots
        std::vector<PacketId> vcOwner;      ///< reserved downstream VC
        std::vector<bool> tailSent;         ///< tail handed to the link
        std::vector<std::uint32_t> outstanding; ///< flits not yet credited
        std::uint32_t rrVc = 0;             ///< VC allocation round-robin
        std::uint32_t rrReq = 0;            ///< switch allocation rr
    };

    /** Flits and credits in flight on a link. */
    struct LinkPipe
    {
        struct InFlit
        {
            Cycle arrive;
            FlitRef flit;
            std::uint32_t vc;
        };
        struct InCredit
        {
            Cycle arrive;
            std::uint32_t vc;
        };
        std::deque<InFlit> flits;
        std::deque<InCredit> credits;
    };

    /** Per-processor source NI. */
    struct SourceNi
    {
        std::deque<PacketId> queue;
        std::uint32_t vc = kNoVc;
        bool vcAssigned = false;
    };

    bool isTail(const FlitRef &f) const;
    void arriveFlits(Cycle now);
    void arriveCredits(Cycle now);
    void routeAndAllocate(Cycle now);
    void switchAllocation(Cycle now);
    void injectFromSources(Cycle now);
    void scanForDeadlocks(Cycle now);
    void recoverPacket(PacketId id, Cycle now);
    void purgePacket(PacketId id);
    void requeuePacket(PacketId id, Cycle now, Cycle backoff);
    void dropPacket(PacketId id, const char *why);
    void activateFaults(Cycle now);
    void maybeCorrupt(const FlitRef &flit);
    std::uint32_t allocateVc(OutputState &out);
    topo::LinkId chooseOutput(const std::vector<topo::LinkId> &candidates);
    void forwardFlit(topo::LinkId inLink, std::uint32_t inVc,
                     VcState &vc, Cycle now);
    void deliverAtProc(const FlitRef &flit, topo::LinkId link,
                       std::uint32_t vc, Cycle now);

    const topo::Topology *_topo;
    const topo::RoutingFunction *_routing;
    SimConfig _config;
    FaultModel _faults;
    bool _faultsActive = false;
    /** Replacement routing once link failures are active. */
    std::unique_ptr<topo::TableRouting> _degradedRouting;
    /** (dst, src) channels link failures disconnected. */
    std::set<std::pair<core::ProcId, core::ProcId>> _deadChannels;
    /** Per-channel sequence numbers of dropped (never-arriving) packets. */
    std::map<std::pair<core::ProcId, core::ProcId>,
             std::set<std::uint64_t>>
        _lostSeqs;

    std::vector<Packet> _packets;
    std::vector<InputUnit> _inputs;   ///< per link (empty for proc sinks)
    std::vector<OutputState> _outputs; ///< per link
    std::vector<LinkPipe> _pipes;      ///< per link
    std::vector<SourceNi> _sources;    ///< per proc

    /** Per-channel reorder buffers: (dst, src) -> seq -> packet id. */
    std::map<std::pair<core::ProcId, core::ProcId>,
             std::map<std::uint64_t, PacketId>>
        _delivered;
    /** Next sequence to hand to the consumer, per channel. */
    std::map<std::pair<core::ProcId, core::ProcId>, std::uint64_t>
        _consumeSeq;
    /** Next sequence to assign at the source, per channel. */
    std::map<std::pair<core::ProcId, core::ProcId>, std::uint64_t>
        _sendSeq;

    /** Per-cycle scratch: input links already used this cycle. */
    std::vector<bool> _inputUsed;
    std::vector<bool> _sourceUsed;

    std::uint64_t _flitsInNetwork = 0;
    NetworkStats _stats;
    Cycle _lastStep = -1;
    obs::SimObserver *_observer = nullptr;
};

} // namespace minnoc::sim

#endif // MINNOC_SIM_NETWORK_HPP
