/**
 * @file
 * Packets and flits.
 *
 * A message becomes one packet: a head flit (carrying the route header)
 * followed by ceil(bytes / flitBytes) payload flits; the last flit is
 * the tail. Flits are referenced by (packet id, sequence) — the
 * simulator tracks buffer occupancy by these references rather than
 * materializing per-flit payloads.
 */

#ifndef MINNOC_SIM_PACKET_HPP
#define MINNOC_SIM_PACKET_HPP

#include <cstdint>

#include "config.hpp"
#include "core/types.hpp"

namespace minnoc::sim {

/** Dense packet identifier. */
using PacketId = std::uint64_t;

constexpr PacketId kNoPacket = static_cast<PacketId>(-1);

/** One in-flight or completed packet. */
struct Packet
{
    PacketId id = kNoPacket;
    core::ProcId src = core::kNoProc;
    core::ProcId dst = core::kNoProc;
    std::uint64_t bytes = 0;
    std::uint32_t callId = 0;

    /** Head + payload flits. */
    std::uint32_t numFlits = 1;

    /** Flits handed to the injection link so far (resets on recovery). */
    std::uint32_t flitsInjected = 0;

    /** Flits absorbed at the destination NI (resets on recovery). */
    std::uint32_t flitsDelivered = 0;

    Cycle enqueuedAt = 0;
    Cycle deliveredAt = -1;

    /** Cycle of the most recent flit movement (deadlock detection). */
    Cycle lastProgress = 0;

    /** Source retransmissions so far (recovery + corruption NACKs). */
    std::uint32_t retries = 0;

    /**
     * End-to-end integrity checksum, fixed at enqueue. Transient link
     * faults perturb @ref wireChecksum in flight; the destination NI
     * accepts the packet only when the two still agree.
     */
    std::uint64_t checksum = 0;

    /** Checksum as accumulated over the wire (== checksum when clean). */
    std::uint64_t wireChecksum = 0;

    /**
     * Permanently given up on: the channel was disconnected by link
     * failures or the retry budget ran out. Never delivered.
     */
    bool dropped = false;

    /** Links the head flit has traversed (path length on delivery). */
    std::uint32_t hops = 0;

    /**
     * Sequence number within the (src, dst) channel. Virtual-channel
     * interleaving can deliver packets of one channel out of order;
     * the destination NI re-orders by this sequence (MPI-style
     * matching).
     */
    std::uint64_t channelSeq = 0;

    /** Earliest cycle the source may (re)start injecting. */
    Cycle holdUntil = 0;

    bool delivered() const { return deliveredAt >= 0; }
};

/** Reference to one flit of a packet. */
struct FlitRef
{
    PacketId packet = kNoPacket;
    std::uint32_t seq = 0;

    bool isHead() const { return seq == 0; }
};

} // namespace minnoc::sim

#endif // MINNOC_SIM_PACKET_HPP
