#include "fault.hpp"

#include <algorithm>

#include "graph/connectivity.hpp"
#include "graph/digraph.hpp"
#include "util/log.hpp"

namespace minnoc::sim {

FaultModel::FaultModel(const topo::Topology &topo, const FaultConfig &cfg)
    : _cfg(cfg), _rng(cfg.seed)
{
    if (cfg.flitErrorRate < 0.0 || cfg.flitErrorRate > 1.0)
        panic("FaultModel: flit error rate ", cfg.flitErrorRate,
              " outside [0, 1]");
    const auto numLinks = static_cast<topo::LinkId>(topo.numLinks());
    _failedMask.assign(numLinks, false);

    for (const auto l : cfg.failLinks) {
        if (l >= numLinks)
            panic("FaultModel: failed link ", l, " out of range (topology "
                  "has ", numLinks, " links)");
        if (!_failedMask[l]) {
            _failedMask[l] = true;
            _failedList.push_back(l);
        }
    }

    if (cfg.randomFailLinks > 0) {
        // Draw from the inter-switch links so a single random fault does
        // not trivially amputate a processor; topologies without any
        // (crossbar) fall back to the full link set.
        std::vector<topo::LinkId> pool;
        for (topo::LinkId l = 0; l < numLinks; ++l) {
            const auto &link = topo.link(l);
            if (!topo.isProc(link.from) && !topo.isProc(link.to) &&
                !_failedMask[l]) {
                pool.push_back(l);
            }
        }
        if (pool.empty()) {
            for (topo::LinkId l = 0; l < numLinks; ++l) {
                if (!_failedMask[l])
                    pool.push_back(l);
            }
        }
        auto want = cfg.randomFailLinks;
        if (want > pool.size()) {
            warn("FaultModel: requested ", want, " random failed links "
                 "but only ", pool.size(), " are eligible; clamping");
            want = static_cast<std::uint32_t>(pool.size());
        }
        _rng.shuffle(pool);
        for (std::uint32_t i = 0; i < want; ++i) {
            _failedMask[pool[i]] = true;
            _failedList.push_back(pool[i]);
        }
    }
    std::sort(_failedList.begin(), _failedList.end());
}

DegradedRouting
rerouteAroundFaults(const topo::Topology &topo,
                    const std::vector<bool> &failedMask)
{
    const auto failed = [&](topo::LinkId l) {
        return l < failedMask.size() && failedMask[l];
    };

    // Surviving inter-switch digraph; edge tags carry the originating
    // LinkId so BFS edge paths map back to link paths. Routing stays at
    // the switch level — paths never cut through another processor's
    // network interface.
    graph::Digraph g(topo.numSwitches());
    for (topo::LinkId l = 0; l < topo.numLinks(); ++l) {
        if (failed(l))
            continue;
        const auto &link = topo.link(l);
        if (topo.isProc(link.from) || topo.isProc(link.to))
            continue;
        g.addEdge(topo.switchOf(link.from), topo.switchOf(link.to),
                  link.delay(), static_cast<std::int64_t>(l));
    }

    DegradedRouting out;
    out.routing = std::make_unique<topo::TableRouting>(topo, "degraded");
    for (core::ProcId s = 0; s < topo.numProcs(); ++s) {
        const auto inj = topo.injectionLink(s);
        for (core::ProcId d = 0; d < topo.numProcs(); ++d) {
            if (s == d)
                continue;
            const auto ej = topo.ejectionLink(d);
            if (failed(inj) || failed(ej)) {
                out.disconnected.emplace_back(s, d);
                continue;
            }
            const auto sw = topo.switchOf(topo.link(inj).to);
            const auto dw = topo.switchOf(topo.link(ej).from);
            std::vector<topo::LinkId> path{inj};
            if (sw != dw) {
                const auto edges = graph::shortestPathEdges(g, sw, dw);
                if (edges.size() == 1 && edges.front() == graph::kNoEdge) {
                    out.disconnected.emplace_back(s, d);
                    continue;
                }
                for (const auto e : edges)
                    path.push_back(
                        static_cast<topo::LinkId>(g.edge(e).tag));
            }
            path.push_back(ej);
            out.routing->setPath(s, d, std::move(path));
        }
    }
    return out;
}

} // namespace minnoc::sim
