/**
 * @file
 * Simulator configuration (paper Section 4.2 parameters).
 *
 * Defaults reproduce the paper's setup: 32-bit physical links and flits
 * at 800 MHz (so one flit carries 4 bytes and a link moves one flit per
 * cycle), 3 virtual channels per physical link, ten-cycle LogP-style
 * send/receive overheads, wire delay equal to link length in tiles with
 * a one-cycle floor, and timeout-based deadlock detection with
 * regressive recovery (kill and retransmit).
 */

#ifndef MINNOC_SIM_CONFIG_HPP
#define MINNOC_SIM_CONFIG_HPP

#include <cstdint>
#include <sstream>
#include <string>

#include "util/cancel.hpp"

namespace minnoc::sim {

/** Simulated clock cycle count. */
using Cycle = std::int64_t;

/** All simulator knobs. */
struct SimConfig
{
    /** Virtual channels per physical link (paper: 3). */
    std::uint32_t numVcs = 3;

    /** Buffer depth per virtual channel, in flits. */
    std::uint32_t vcDepth = 4;

    /** Payload bytes per flit (32-bit phits). */
    std::uint32_t flitBytes = 4;

    /** Software overhead charged on each send (cycles; paper: 10). */
    Cycle sendOverhead = 10;

    /** Software overhead charged on each receive (cycles; paper: 10). */
    Cycle recvOverhead = 10;

    /**
     * A packet with no flit movement for this many cycles is declared
     * deadlocked and regressively recovered.
     */
    Cycle deadlockTimeout = 50'000;

    /** Wait before retransmitting a killed packet. */
    Cycle deadlockPenalty = 200;

    /** Cycles between deadlock scans. */
    Cycle deadlockScanInterval = 512;

    /**
     * Regressive recoveries allowed per packet before it is dropped
     * with a diagnostic instead of retransmitted again (livelock
     * guard; generous because recovery is rare and usually converges).
     */
    std::uint32_t maxRecoveries = 64;

    /** Hard wall on simulated time (guards against livelock bugs). */
    Cycle maxCycles = 2'000'000'000;

    /**
     * Lax-sync slack window (cycles; 0 = strict, the default). When
     * nonzero, backward credit returns may be consumed up to this many
     * cycles before their modeled wire arrival, so a sender stalled on
     * a credit round-trip resumes early and the replay finishes in
     * fewer simulated cycles (Graphite-style bounded-slack relaxation,
     * applied to the credit channel only). Flit arrivals stay
     * cycle-exact, routing and VC allocation are unchanged, and the
     * run remains deterministic for a fixed slack — only the strict
     * timing guarantee is traded: latency/energy may deviate from the
     * slack-0 run by an amount bounded in practice by the slack (see
     * bench/lax_sync for the measured error per setting).
     */
    Cycle laxSyncSlack = 0;

    /**
     * Optional cooperative-cancellation token (not owned, may be
     * null). The replay loop polls it at epoch granularity (every few
     * thousand scheduler iterations) and unwinds with CancelledError
     * when it fires, so a timed-out or disconnected client's
     * simulation actually stops instead of running to completion.
     * Runtime plumbing only: excluded from signature().
     */
    const CancelToken *cancel = nullptr;

    /**
     * Canonical parameter string for content-addressed caching: equal
     * signatures guarantee identical simulation results for the same
     * trace and network.
     */
    std::string
    signature() const
    {
        std::ostringstream oss;
        oss << "vcs=" << numVcs << ";vcd=" << vcDepth
            << ";flit=" << flitBytes << ";so=" << sendOverhead
            << ";ro=" << recvOverhead << ";dto=" << deadlockTimeout
            << ";dp=" << deadlockPenalty << ";dsi=" << deadlockScanInterval
            << ";rec=" << maxRecoveries << ";max=" << maxCycles;
        // Appended only when lax-sync is on, so every strict-mode
        // signature (and with it every existing cache key and golden
        // artifact) keeps its exact historical bytes.
        if (laxSyncSlack > 0)
            oss << ";lax=" << laxSyncSlack;
        return oss.str();
    }
};

} // namespace minnoc::sim

#endif // MINNOC_SIM_CONFIG_HPP
