#include "trace_driver.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "util/log.hpp"

namespace minnoc::sim {

double
SimResult::commTimeMean() const
{
    if (commTime.empty())
        return 0.0;
    double total = 0.0;
    for (const auto c : commTime)
        total += static_cast<double>(c);
    return total / static_cast<double>(commTime.size());
}

Cycle
SimResult::commTimeMax() const
{
    Cycle best = 0;
    for (const auto c : commTime)
        best = std::max(best, c);
    return best;
}

namespace {

/** Per-rank replay state machine. */
struct RankState
{
    enum class Phase {
        Ready,        ///< fetch the next op
        Busy,         ///< compute or overhead until readyAt
        SendOverhead, ///< paying send overhead, packet not yet queued
        WaitInject,   ///< blocking until the packet's tail leaves the NI
        WaitRecv,     ///< blocking until a message from peer arrives
        RecvOverhead, ///< paying receive overhead
        Done,
    };

    Phase phase = Phase::Ready;
    std::size_t cursor = 0;
    Cycle readyAt = 0;
    Cycle opStart = 0;
    PacketId pending = kNoPacket;
    Cycle commTime = 0;
    Cycle finishedAt = -1;

    /** True when the rank can only be unblocked by the clock. */
    bool
    timeBound() const
    {
        return phase == Phase::Busy || phase == Phase::SendOverhead ||
               phase == Phase::RecvOverhead;
    }
};

} // namespace

SimResult
runTrace(const trace::Trace &trace, Network &network)
{
    const std::uint32_t ranks = trace.numRanks();
    std::vector<RankState> state(ranks);
    const SimConfig &cfg = network.config();

    std::uint64_t recvsLost = 0;
    std::set<std::pair<core::ProcId, core::ProcId>> lostChannels;

    auto progress = [&](core::ProcId r, Cycle now) {
        auto &st = state[r];
        const auto &tl = trace.timeline(r);
        for (;;) {
            switch (st.phase) {
              case RankState::Phase::Done:
                return;
              case RankState::Phase::Busy:
                if (now < st.readyAt)
                    return;
                st.phase = RankState::Phase::Ready;
                break;
              case RankState::Phase::Ready: {
                if (st.cursor == tl.size()) {
                    st.phase = RankState::Phase::Done;
                    st.finishedAt = now;
                    return;
                }
                const auto &op = tl[st.cursor];
                if (op.kind == trace::OpKind::Compute) {
                    st.readyAt = now + op.cycles;
                    st.phase = RankState::Phase::Busy;
                    ++st.cursor;
                } else if (op.kind == trace::OpKind::Send) {
                    st.opStart = now;
                    st.readyAt = now + cfg.sendOverhead;
                    st.phase = RankState::Phase::SendOverhead;
                } else {
                    st.opStart = now;
                    st.phase = RankState::Phase::WaitRecv;
                }
                break;
              }
              case RankState::Phase::SendOverhead: {
                if (now < st.readyAt)
                    return;
                const auto &op = tl[st.cursor];
                st.pending = network.enqueue(r, op.peer, op.bytes,
                                             op.callId, now);
                st.phase = RankState::Phase::WaitInject;
                break;
              }
              case RankState::Phase::WaitInject:
                if (!network.injected(st.pending))
                    return;
                st.commTime += now - st.opStart;
                st.pending = kNoPacket;
                ++st.cursor;
                st.phase = RankState::Phase::Ready;
                break;
              case RankState::Phase::WaitRecv: {
                const auto &op = tl[st.cursor];
                if (network.hasDelivered(r, op.peer)) {
                    network.consumeDelivered(r, op.peer);
                    st.readyAt = now + cfg.recvOverhead;
                    st.phase = RankState::Phase::RecvOverhead;
                    break;
                }
                if (network.nextDeliveryLost(r, op.peer)) {
                    // The message this receive would match was dropped
                    // (disconnected channel or exhausted retries):
                    // record the loss and move on instead of blocking
                    // forever — graceful degradation.
                    network.skipLostDelivery(r, op.peer);
                    ++recvsLost;
                    lostChannels.insert({op.peer, r});
                    st.commTime += now - st.opStart;
                    ++st.cursor;
                    st.phase = RankState::Phase::Ready;
                    break;
                }
                return;
              }
              case RankState::Phase::RecvOverhead:
                if (now < st.readyAt)
                    return;
                st.commTime += now - st.opStart;
                ++st.cursor;
                st.phase = RankState::Phase::Ready;
                break;
            }
        }
    };

    // Cancellation epoch: poll the token every 4096 scheduler
    // iterations (not simulated cycles — compute fast-forwards can
    // leap millions of cycles in one iteration), cheap enough to be
    // invisible and frequent enough that a cancelled request stops
    // within microseconds of real time.
    constexpr std::uint64_t kCancelEpoch = 4096;
    std::uint64_t iterations = 0;

    Cycle now = 0;
    for (;;) {
        ++now;
        if (now > cfg.maxCycles)
            fatal("runTrace: exceeded maxCycles (", cfg.maxCycles,
                  ") on '", trace.name(), "' over ",
                  "the given network");
        if (cfg.cancel && ++iterations % kCancelEpoch == 0)
            cfg.cancel->checkpoint();
        network.step(now);

        bool allDone = true;
        for (core::ProcId r = 0; r < ranks; ++r) {
            progress(r, now);
            allDone &= state[r].phase == RankState::Phase::Done;
        }
        if (allDone && network.idle())
            break;

        // Fast-forward through pure-compute stretches: when the network
        // is empty and every live rank is waiting on the clock, jump to
        // the earliest wake-up. If the network is empty and every live
        // rank is blocked in a receive, the trace itself deadlocked.
        if (network.idle()) {
            Cycle next = -1;
            bool allTimeBound = true;
            bool allWaitRecv = true;
            bool anyLive = false;
            for (const auto &st : state) {
                if (st.phase == RankState::Phase::Done)
                    continue;
                anyLive = true;
                if (st.timeBound()) {
                    allWaitRecv = false;
                    if (next < 0 || st.readyAt < next)
                        next = st.readyAt;
                } else {
                    allTimeBound = false;
                    if (st.phase != RankState::Phase::WaitRecv)
                        allWaitRecv = false;
                }
            }
            if (anyLive && allWaitRecv)
                fatal("runTrace: trace '", trace.name(),
                      "' deadlocked: all live ranks blocked in recv "
                      "with an empty network");
            if (anyLive && allTimeBound && next > now + 1)
                now = next - 1;
        }
    }

    SimResult result;
    result.commTime.resize(ranks);
    result.finishTime.resize(ranks);
    result.execTime = 0;
    for (core::ProcId r = 0; r < ranks; ++r) {
        result.commTime[r] = state[r].commTime;
        result.finishTime[r] = state[r].finishedAt;
        result.execTime = std::max(result.execTime, state[r].finishedAt);
    }
    const auto &ns = network.stats();
    result.packetsDelivered = ns.packetsDelivered;
    result.deadlockRecoveries = ns.deadlockRecoveries;
    result.packetsEnqueued = ns.packetsEnqueued;
    result.packetsDropped = ns.packetsDropped;
    result.retransmissions = ns.retransmissions;
    result.corruptedFlits = ns.corruptedFlits;
    result.failedLinks = ns.failedLinks;
    result.disconnectedPairs = ns.disconnectedPairs;
    result.retryExhaustions = ns.retryExhaustions;
    result.recoveryExhaustions = ns.recoveryExhaustions;
    result.deliveredFraction = ns.deliveredFraction();
    result.latencyInflation = ns.latencyInflation();
    result.recvsLost = recvsLost;
    result.undeliverableChannels.assign(lostChannels.begin(),
                                        lostChannels.end());
    result.avgPacketLatency = ns.packetLatency.mean();
    result.avgPacketHops = ns.packetHops.mean();
    result.maxLinkUtilization = ns.maxLinkUtilization(result.execTime);
    result.meanLinkUtilization = ns.meanLinkUtilization(result.execTime);
    result.linkFlits = ns.linkFlits;
    result.activity.bufferWrites = ns.bufferWrites;
    result.activity.bufferReads = ns.bufferReads;
    result.activity.residentFlitCycles = ns.residentFlitCycles;

    if constexpr (obs::kEnabled) {
        if (auto *observer = network.observer()) {
            obs::SimObserver::FinalCounters fc;
            fc.packetsEnqueued = ns.packetsEnqueued;
            fc.packetsDelivered = ns.packetsDelivered;
            fc.packetsDropped = ns.packetsDropped;
            fc.flitHops = ns.flitHops;
            fc.bufferWrites = ns.bufferWrites;
            fc.bufferReads = ns.bufferReads;
            fc.residentFlitCycles = ns.residentFlitCycles;
            fc.retransmissions = ns.retransmissions;
            fc.corruptedFlits = ns.corruptedFlits;
            fc.deadlockRecoveries = ns.deadlockRecoveries;
            fc.failedLinks = ns.failedLinks;
            fc.disconnectedPairs = ns.disconnectedPairs;
            fc.retryExhaustions = ns.retryExhaustions;
            fc.recoveryExhaustions = ns.recoveryExhaustions;
            fc.execTime = result.execTime;
            observer->finish(fc, result.execTime,
                             network.flitsInNetwork(), ns.linkFlits);
        }
    }
    return result;
}

SimResult
runTrace(const trace::Trace &trace, const topo::Topology &topo,
         const topo::RoutingFunction &routing, const SimConfig &config,
         obs::SimObserver *observer)
{
    if (trace.numRanks() != topo.numProcs())
        fatal("runTrace: trace has ", trace.numRanks(),
              " ranks but topology has ", topo.numProcs(), " procs");
    Network network(topo, routing, config);
    network.setObserver(observer);
    return runTrace(trace, network);
}

SimResult
runTrace(const trace::Trace &trace, const topo::Topology &topo,
         const topo::RoutingFunction &routing, const SimConfig &config,
         const FaultConfig &faults, obs::SimObserver *observer)
{
    if (trace.numRanks() != topo.numProcs())
        fatal("runTrace: trace has ", trace.numRanks(),
              " ranks but topology has ", topo.numProcs(), " procs");
    Network network(topo, routing, config, FaultModel(topo, faults));
    network.setObserver(observer);
    return runTrace(trace, network);
}

} // namespace minnoc::sim
