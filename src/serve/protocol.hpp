/**
 * @file
 * Wire protocol of the `minnoc serve` daemon.
 *
 * Newline-delimited JSON over a local socket: every request is one
 * JSON object on one line, every response is one JSON object on one
 * line, matched to its request by the client-chosen `id`. Multi-line
 * artifacts (trace submissions, report JSON) travel as JSON strings
 * with standard escaping, so the framing never depends on payload
 * content.
 *
 * Request shape:
 *
 *   {"id": "r1", "cmd": "explore", "trace": "trace CG-8 8\n...",
 *    "degrees": [4,5], "vcs": [2,3], "deadline_ms": 5000}
 *
 * Commands: `ping` and `status` (immediate, never queued), `design`,
 * `explore`, `phases` (admitted into the bounded work queue). Compute
 * parameters mirror the CLI flags of the same name and default to the
 * same values, so a serve response is byte-identical to the
 * corresponding CLI command's output for the same trace.
 *
 * Response shape:
 *
 *   {"id": "r1", "status": "ok", "cmd": "explore", "result": "..."}
 *   {"id": "r1", "status": "error", "code": "timeout",
 *    "message": "deadline exceeded"}
 *
 * Parsing is strict and total: any byte sequence maps to either a
 * Request or a structured (code, message) error — never an abort, a
 * hang, or a partially-populated request. Unknown fields are errors
 * (fail fast beats silently ignoring a typoed parameter), as are
 * wrong types, out-of-range values, and parameter grids large enough
 * to be a denial of service.
 */

#ifndef MINNOC_SERVE_PROTOCOL_HPP
#define MINNOC_SERVE_PROTOCOL_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "dse/explorer.hpp"
#include "phase/segmenter.hpp"

namespace minnoc::serve {

/** Hard framing limits; anything past them is a structured error. */
inline constexpr std::size_t kMaxRequestBytes = 8u << 20; ///< one line
inline constexpr std::uint32_t kMaxTraceRanks = 4096;
inline constexpr std::size_t kMaxGridJobs = 1024;

/** The structured error taxonomy every failure maps onto. */
enum class ErrorCode : std::uint8_t {
    ParseError,      ///< not a JSON object / framing violation
    ValidationError, ///< well-formed but semantically invalid
    Timeout,         ///< per-request deadline expired
    QueueFull,       ///< admission control rejected (backpressure)
    Cancelled,       ///< client disconnected mid-request
    ShuttingDown,    ///< server draining, not admitting
    Internal,        ///< unexpected server-side failure
};

/** Stable wire name of @p code (`"parse_error"`, ...). */
const char *errorCodeName(ErrorCode code);

/** What a request asks for. */
enum class Cmd : std::uint8_t {
    Ping,    ///< liveness probe, answered inline
    Status,  ///< health/metrics snapshot, answered inline
    Design,  ///< full methodology run -> design file bytes
    Explore, ///< DSE grid sweep -> explore report JSON
    Phases,  ///< phase segmentation + evaluation -> phases report JSON
    DseJob,  ///< one explore grid point -> job-wire result document
    PhaseJob, ///< one phase standalone row -> job-wire result document
};

/** Stable wire name of @p cmd (`"design"`, ...). */
const char *cmdName(Cmd cmd);

/**
 * A fully validated request. Parameter fields default to the exact
 * CLI defaults so an empty parameter set reproduces the CLI's output.
 */
struct Request
{
    std::string id;
    Cmd cmd = Cmd::Ping;

    /** Submitted trace bytes (Trace::save format). */
    std::string traceText;

    /** Requested deadline in ms; 0 = server default. */
    std::int64_t deadlineMs = 0;

    // design / phases scalars (CLI defaults).
    std::uint32_t maxDegree = 5;
    std::uint32_t restarts = 16;
    std::uint64_t seed = 1;

    // explore grid (defaults = ExploreGrid defaults = CLI defaults).
    dse::ExploreGrid grid;
    std::int64_t reconfigCost = 500;

    /** Energy accounting tier ("static" / "activity"), CLI default. */
    std::string power = "static";

    // phases knobs (defaults = PhaseConfig / CLI defaults).
    std::uint32_t window = phase::PhaseConfig{}.windowMessages;
    double threshold = phase::PhaseConfig{}.mergeThreshold;
    std::uint32_t minPhaseWindows = phase::PhaseConfig{}.minPhaseWindows;

    // dse_job / phase_job scalars — the multi-host coordinator's
    // per-job dispatch (defaults = JobParams / segmenter defaults).
    /** Coordinator's dispatch attempt for this job (2 on requeue). */
    std::uint32_t attempt = 1;
    /** Grid index / phase index, echoed in the result document. */
    std::uint32_t jobIndex = 0;
    /** Coordinator's expected parameter signature (drift guard). */
    std::string sig;
    bool unidirectional = false;
    std::uint32_t vcs = 3;
    std::uint32_t vcDepth = 4;
    std::uint32_t phaseWindow = 0;
    double matrixWeight = phase::PhaseConfig{}.matrixWeight;
    /** phase_job segmentation cross-check (phases the caller saw). */
    std::uint32_t expectedPhases = 0;
};

/** A (code, message) pair — the payload of every error response. */
struct RequestError
{
    ErrorCode code = ErrorCode::ParseError;
    std::string message;
};

/**
 * Parse one request line. Returns the request on success; on failure
 * fills @p error and returns nullopt. Total: never throws, never
 * aborts, regardless of input bytes.
 */
std::optional<Request> parseRequest(const std::string &line,
                                    RequestError &error);

/** JSON string escaping for payload embedding (ASCII-safe). */
std::string jsonEscape(std::string_view raw);

/** One-line success response carrying @p payload as a JSON string. */
std::string okResponse(const std::string &id, Cmd cmd,
                       std::string_view payload);

/** One-line structured error response. */
std::string errorResponse(const std::string &id, ErrorCode code,
                          std::string_view message);

/**
 * Parsed view of a response line — the client half of the protocol,
 * shared by the test suite and the chaos harness.
 */
struct Reply
{
    std::string id;
    bool ok = false;
    std::string cmd;     ///< ok replies only
    std::string result;  ///< ok replies only (unescaped payload)
    std::string code;    ///< error replies only
    std::string message; ///< error replies only
};

/** Parse a response line; nullopt when it is not a valid reply. */
std::optional<Reply> parseReply(const std::string &line);

} // namespace minnoc::serve

#endif // MINNOC_SERVE_PROTOCOL_HPP
