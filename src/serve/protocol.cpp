#include "protocol.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "topo/power.hpp"
#include "util/json.hpp"

namespace minnoc::serve {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::ParseError: return "parse_error";
      case ErrorCode::ValidationError: return "validation_error";
      case ErrorCode::Timeout: return "timeout";
      case ErrorCode::QueueFull: return "queue_full";
      case ErrorCode::Cancelled: return "cancelled";
      case ErrorCode::ShuttingDown: return "shutting_down";
      case ErrorCode::Internal: return "internal";
    }
    return "internal";
}

const char *
cmdName(Cmd cmd)
{
    switch (cmd) {
      case Cmd::Ping: return "ping";
      case Cmd::Status: return "status";
      case Cmd::Design: return "design";
      case Cmd::Explore: return "explore";
      case Cmd::Phases: return "phases";
      case Cmd::DseJob: return "dse_job";
      case Cmd::PhaseJob: return "phase_job";
    }
    return "ping";
}

namespace {

/** Largest integer a JSON double carries exactly. */
constexpr double kMaxExactInt = 9007199254740992.0; // 2^53

/** Set @p error and return nullopt — the single failure-path helper. */
std::optional<Request>
fail(RequestError &error, ErrorCode code, std::string message)
{
    error.code = code;
    error.message = std::move(message);
    return std::nullopt;
}

/** Extract a non-negative integer <= @p max from a JSON number. */
bool
asUint(const json::Value &v, std::uint64_t max, std::uint64_t &out)
{
    if (!v.isNumber())
        return false;
    const double d = v.asNumber();
    if (!(d >= 0.0) || d > kMaxExactInt || d != std::floor(d) ||
        d > static_cast<double>(max))
        return false;
    out = static_cast<std::uint64_t>(d);
    return true;
}

/** Extract a bounded, non-empty array of integers in [min, max]. */
bool
asUintList(const json::Value &v, std::uint64_t minV, std::uint64_t maxV,
           std::size_t maxLen, std::vector<std::uint64_t> &out)
{
    if (!v.isArray())
        return false;
    const auto &arr = v.asArray();
    if (arr.empty() || arr.size() > maxLen)
        return false;
    out.clear();
    for (const auto &item : arr) {
        std::uint64_t u = 0;
        if (!asUint(item, maxV, u) || u < minV)
            return false;
        out.push_back(u);
    }
    return true;
}

std::vector<std::uint32_t>
narrow32(const std::vector<std::uint64_t> &values)
{
    std::vector<std::uint32_t> out;
    out.reserve(values.size());
    for (const auto v : values)
        out.push_back(static_cast<std::uint32_t>(v));
    return out;
}

} // namespace

std::optional<Request>
parseRequest(const std::string &line, RequestError &error)
{
    if (line.size() > kMaxRequestBytes)
        return fail(error, ErrorCode::ParseError,
                    "request exceeds " +
                        std::to_string(kMaxRequestBytes) + " bytes");

    const auto root = json::parse(line);
    if (!root)
        return fail(error, ErrorCode::ParseError, "malformed JSON");
    if (!root->isObject())
        return fail(error, ErrorCode::ParseError,
                    "request must be a JSON object");
    const auto &obj = root->asObject();

    Request req;

    // id: optional, echoed back verbatim (escaped) in the response.
    if (const auto *id = root->find("id")) {
        if (!id->isString() || id->asString().size() > 256)
            return fail(error, ErrorCode::ValidationError,
                        "'id' must be a string of at most 256 bytes");
        req.id = id->asString();
    }

    const auto *cmd = root->find("cmd");
    if (!cmd || !cmd->isString())
        return fail(error, ErrorCode::ValidationError,
                    "missing or non-string 'cmd'");
    const auto &name = cmd->asString();
    if (name == "ping")
        req.cmd = Cmd::Ping;
    else if (name == "status")
        req.cmd = Cmd::Status;
    else if (name == "design")
        req.cmd = Cmd::Design;
    else if (name == "explore")
        req.cmd = Cmd::Explore;
    else if (name == "phases")
        req.cmd = Cmd::Phases;
    else if (name == "dse_job")
        req.cmd = Cmd::DseJob;
    else if (name == "phase_job")
        req.cmd = Cmd::PhaseJob;
    else
        return fail(error, ErrorCode::ValidationError,
                    "unknown cmd '" + name + "'");

    const bool compute = req.cmd == Cmd::Design ||
                         req.cmd == Cmd::Explore ||
                         req.cmd == Cmd::Phases ||
                         req.cmd == Cmd::DseJob ||
                         req.cmd == Cmd::PhaseJob;

    // Strict field set: every key must be known AND applicable to the
    // command — a typoed or misplaced parameter is an error, not a
    // silently-ignored no-op.
    for (const auto &[key, value] : obj) {
        (void)value;
        const bool common = key == "id" || key == "cmd";
        const bool computeCommon =
            compute && (key == "trace" || key == "deadline_ms");
        const bool designKey =
            req.cmd == Cmd::Design &&
            (key == "max_degree" || key == "restarts" || key == "seed");
        const bool exploreKey =
            req.cmd == Cmd::Explore &&
            (key == "degrees" || key == "restarts" || key == "seeds" ||
             key == "vcs" || key == "unidirectional" ||
             key == "vc_depth" || key == "phase_windows" ||
             key == "reconfig_cost" || key == "power");
        const bool phasesKey =
            req.cmd == Cmd::Phases &&
            (key == "window" || key == "threshold" ||
             key == "min_phase_windows" || key == "reconfig_cost" ||
             key == "max_degree" || key == "restarts" ||
             key == "seed" || key == "power");
        const bool jobCommon =
            (req.cmd == Cmd::DseJob || req.cmd == Cmd::PhaseJob) &&
            (key == "attempt" || key == "job_index" || key == "sig" ||
             key == "max_degree" || key == "restarts" || key == "seed" ||
             key == "reconfig_cost" || key == "threshold" ||
             key == "min_phase_windows" || key == "matrix_weight" ||
             key == "power");
        const bool dseJobKey =
            req.cmd == Cmd::DseJob &&
            (key == "unidirectional" || key == "vcs" ||
             key == "vc_depth" || key == "phase_window");
        const bool phaseJobKey =
            req.cmd == Cmd::PhaseJob &&
            (key == "window" || key == "expected_phases");
        if (!common && !computeCommon && !designKey && !exploreKey &&
            !phasesKey && !jobCommon && !dseJobKey && !phaseJobKey)
            return fail(error, ErrorCode::ValidationError,
                        "unknown field '" + key + "' for cmd '" + name +
                            "'");
    }

    if (!compute)
        return req;

    const auto *tr = root->find("trace");
    if (!tr || !tr->isString() || tr->asString().empty())
        return fail(error, ErrorCode::ValidationError,
                    "missing or empty 'trace'");
    req.traceText = tr->asString();

    std::uint64_t u = 0;
    if (const auto *dl = root->find("deadline_ms")) {
        if (!asUint(*dl, 86'400'000, u))
            return fail(error, ErrorCode::ValidationError,
                        "'deadline_ms' must be an integer in "
                        "[0, 86400000]");
        req.deadlineMs = static_cast<std::int64_t>(u);
    }

    const auto badField = [&](const char *field, const char *what) {
        return fail(error, ErrorCode::ValidationError,
                    std::string("'") + field + "' " + what);
    };

    if (req.cmd == Cmd::Design || req.cmd == Cmd::Phases ||
        req.cmd == Cmd::DseJob || req.cmd == Cmd::PhaseJob) {
        if (const auto *v = root->find("max_degree")) {
            if (!asUint(*v, 64, u) || u < 1)
                return badField("max_degree",
                                "must be an integer in [1, 64]");
            req.maxDegree = static_cast<std::uint32_t>(u);
        }
        if (const auto *v = root->find("restarts")) {
            if (!asUint(*v, 1024, u) || u < 1)
                return badField("restarts",
                                "must be an integer in [1, 1024]");
            req.restarts = static_cast<std::uint32_t>(u);
        }
        if (const auto *v = root->find("seed")) {
            if (!asUint(*v, static_cast<std::uint64_t>(kMaxExactInt), u))
                return badField("seed", "must be a non-negative integer");
            req.seed = u;
        }
    }

    // Energy accounting tier: applies to every command that prices a
    // simulated run (design emits no energy numbers).
    if (req.cmd == Cmd::Explore || req.cmd == Cmd::Phases ||
        req.cmd == Cmd::DseJob || req.cmd == Cmd::PhaseJob) {
        if (const auto *v = root->find("power")) {
            if (!v->isString() ||
                !topo::powerModelKindFromName(v->asString()))
                return badField("power",
                                "must be 'static' or 'activity'");
            req.power = v->asString();
        }
    }

    if (req.cmd == Cmd::Explore) {
        std::vector<std::uint64_t> list;
        if (const auto *v = root->find("degrees")) {
            if (!asUintList(*v, 1, 64, 64, list))
                return badField("degrees",
                                "must be a non-empty array of integers "
                                "in [1, 64]");
            req.grid.maxDegrees = narrow32(list);
        }
        if (const auto *v = root->find("restarts")) {
            if (!asUintList(*v, 1, 1024, 64, list))
                return badField("restarts",
                                "must be a non-empty array of integers "
                                "in [1, 1024]");
            req.grid.restarts = narrow32(list);
        }
        if (const auto *v = root->find("seeds")) {
            if (!asUintList(*v, 0,
                            static_cast<std::uint64_t>(kMaxExactInt), 64,
                            list))
                return badField("seeds",
                                "must be a non-empty array of "
                                "non-negative integers");
            req.grid.seeds = list;
        }
        if (const auto *v = root->find("vcs")) {
            if (!asUintList(*v, 1, 32, 64, list))
                return badField("vcs",
                                "must be a non-empty array of integers "
                                "in [1, 32]");
            req.grid.vcs = narrow32(list);
        }
        if (const auto *v = root->find("unidirectional")) {
            if (!asUintList(*v, 0, 1, 2, list))
                return badField("unidirectional",
                                "must be a non-empty array of 0/1");
            req.grid.unidirectional = narrow32(list);
        }
        if (const auto *v = root->find("vc_depth")) {
            if (!asUint(*v, 64, u) || u < 1)
                return badField("vc_depth",
                                "must be an integer in [1, 64]");
            req.grid.vcDepth = static_cast<std::uint32_t>(u);
        }
        if (const auto *v = root->find("phase_windows")) {
            if (!asUintList(*v, 0, 1'000'000, 64, list))
                return badField("phase_windows",
                                "must be a non-empty array of integers "
                                "in [0, 1000000]");
            req.grid.phaseWindows = narrow32(list);
        }
        if (const auto *v = root->find("reconfig_cost")) {
            if (!asUint(*v, 1'000'000'000, u))
                return badField("reconfig_cost",
                                "must be an integer in [0, 1e9]");
            req.reconfigCost = static_cast<std::int64_t>(u);
        }

        // Admission-time DoS guard: a request's grid expands
        // multiplicatively, so bound the job count before any work.
        const std::size_t jobs = req.grid.maxDegrees.size() *
                                 req.grid.restarts.size() *
                                 req.grid.seeds.size() *
                                 req.grid.unidirectional.size() *
                                 req.grid.vcs.size() *
                                 req.grid.phaseWindows.size();
        if (jobs == 0 || jobs > kMaxGridJobs)
            return fail(error, ErrorCode::ValidationError,
                        "grid expands to " + std::to_string(jobs) +
                            " jobs (limit " +
                            std::to_string(kMaxGridJobs) + ")");
    }

    if (req.cmd == Cmd::Phases) {
        if (const auto *v = root->find("window")) {
            if (!asUint(*v, 1'000'000'000, u) || u < 1)
                return badField("window",
                                "must be an integer in [1, 1e9]");
            req.window = static_cast<std::uint32_t>(u);
        }
        if (const auto *v = root->find("threshold")) {
            if (!v->isNumber() || !(v->asNumber() >= 0.0) ||
                !(v->asNumber() <= 1e6))
                return badField("threshold",
                                "must be a number in [0, 1e6]");
            req.threshold = v->asNumber();
        }
        if (const auto *v = root->find("min_phase_windows")) {
            if (!asUint(*v, 1'000'000, u) || u < 1)
                return badField("min_phase_windows",
                                "must be an integer in [1, 1e6]");
            req.minPhaseWindows = static_cast<std::uint32_t>(u);
        }
        if (const auto *v = root->find("reconfig_cost")) {
            if (!asUint(*v, 1'000'000'000, u))
                return badField("reconfig_cost",
                                "must be an integer in [0, 1e9]");
            req.reconfigCost = static_cast<std::int64_t>(u);
        }
    }

    if (req.cmd == Cmd::DseJob || req.cmd == Cmd::PhaseJob) {
        if (const auto *v = root->find("attempt")) {
            if (!asUint(*v, 2, u) || u < 1)
                return badField("attempt",
                                "must be an integer in [1, 2]");
            req.attempt = static_cast<std::uint32_t>(u);
        }
        if (const auto *v = root->find("job_index")) {
            if (!asUint(*v, 4294967295ull, u))
                return badField("job_index",
                                "must be an integer in [0, 2^32)");
            req.jobIndex = static_cast<std::uint32_t>(u);
        }
        // The signature is the drift guard between coordinator and
        // backend; a job without one cannot be checked, so require it.
        const auto *sig = root->find("sig");
        if (!sig || !sig->isString() || sig->asString().empty() ||
            sig->asString().size() > 1024)
            return fail(error, ErrorCode::ValidationError,
                        "'sig' must be a non-empty string of at most "
                        "1024 bytes");
        req.sig = sig->asString();
        if (const auto *v = root->find("reconfig_cost")) {
            if (!asUint(*v, 1'000'000'000, u))
                return badField("reconfig_cost",
                                "must be an integer in [0, 1e9]");
            req.reconfigCost = static_cast<std::int64_t>(u);
        }
        if (const auto *v = root->find("threshold")) {
            if (!v->isNumber() || !(v->asNumber() >= 0.0) ||
                !(v->asNumber() <= 1e6))
                return badField("threshold",
                                "must be a number in [0, 1e6]");
            req.threshold = v->asNumber();
        }
        if (const auto *v = root->find("min_phase_windows")) {
            if (!asUint(*v, 1'000'000, u) || u < 1)
                return badField("min_phase_windows",
                                "must be an integer in [1, 1e6]");
            req.minPhaseWindows = static_cast<std::uint32_t>(u);
        }
        if (const auto *v = root->find("matrix_weight")) {
            if (!v->isNumber() || !(v->asNumber() >= 0.0) ||
                !(v->asNumber() <= 1.0))
                return badField("matrix_weight",
                                "must be a number in [0, 1]");
            req.matrixWeight = v->asNumber();
        }
    }

    if (req.cmd == Cmd::DseJob) {
        if (const auto *v = root->find("unidirectional")) {
            if (!asUint(*v, 1, u))
                return badField("unidirectional", "must be 0 or 1");
            req.unidirectional = u != 0;
        }
        if (const auto *v = root->find("vcs")) {
            if (!asUint(*v, 32, u) || u < 1)
                return badField("vcs", "must be an integer in [1, 32]");
            req.vcs = static_cast<std::uint32_t>(u);
        }
        if (const auto *v = root->find("vc_depth")) {
            if (!asUint(*v, 64, u) || u < 1)
                return badField("vc_depth",
                                "must be an integer in [1, 64]");
            req.vcDepth = static_cast<std::uint32_t>(u);
        }
        if (const auto *v = root->find("phase_window")) {
            if (!asUint(*v, 1'000'000, u))
                return badField("phase_window",
                                "must be an integer in [0, 1e6]");
            req.phaseWindow = static_cast<std::uint32_t>(u);
        }
    }

    if (req.cmd == Cmd::PhaseJob) {
        if (const auto *v = root->find("window")) {
            if (!asUint(*v, 1'000'000'000, u) || u < 1)
                return badField("window",
                                "must be an integer in [1, 1e9]");
            req.window = static_cast<std::uint32_t>(u);
        }
        if (const auto *v = root->find("expected_phases")) {
            if (!asUint(*v, 1'000'000, u))
                return badField("expected_phases",
                                "must be an integer in [0, 1e6]");
            req.expectedPhases = static_cast<std::uint32_t>(u);
        }
    }

    return req;
}

std::string
jsonEscape(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size() + raw.size() / 8);
    for (const char c : raw) {
        const auto u = static_cast<unsigned char>(c);
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", u);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
okResponse(const std::string &id, Cmd cmd, std::string_view payload)
{
    std::string out = "{\"id\": \"" + jsonEscape(id) +
                      "\", \"status\": \"ok\", \"cmd\": \"" +
                      cmdName(cmd) + "\", \"result\": \"" +
                      jsonEscape(payload) + "\"}\n";
    return out;
}

std::string
errorResponse(const std::string &id, ErrorCode code,
              std::string_view message)
{
    std::string out = "{\"id\": \"" + jsonEscape(id) +
                      "\", \"status\": \"error\", \"code\": \"" +
                      errorCodeName(code) + "\", \"message\": \"" +
                      jsonEscape(message) + "\"}\n";
    return out;
}

std::optional<Reply>
parseReply(const std::string &line)
{
    const auto root = json::parse(line);
    if (!root || !root->isObject())
        return std::nullopt;
    const auto *status = root->find("status");
    if (!status || !status->isString())
        return std::nullopt;

    Reply reply;
    if (const auto *id = root->find("id"); id && id->isString())
        reply.id = id->asString();
    if (status->asString() == "ok") {
        reply.ok = true;
        const auto *cmd = root->find("cmd");
        const auto *result = root->find("result");
        if (!cmd || !cmd->isString() || !result || !result->isString())
            return std::nullopt;
        reply.cmd = cmd->asString();
        reply.result = result->asString();
        return reply;
    }
    if (status->asString() != "error")
        return std::nullopt;
    const auto *code = root->find("code");
    const auto *message = root->find("message");
    if (!code || !code->isString() || !message || !message->isString())
        return std::nullopt;
    reply.code = code->asString();
    reply.message = message->asString();
    return reply;
}

} // namespace minnoc::serve
