#include "jobwire.hpp"

#include <cmath>
#include <cstdio>

#include "protocol.hpp"

namespace minnoc::serve {

namespace {

/** Largest integer a JSON double carries exactly. */
constexpr double kMaxExact = 9007199254740992.0; // 2^53

} // namespace

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

bool
getU32(const json::Value &obj, const char *key, std::uint32_t &out,
       std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isNumber()) {
        err = std::string("missing or non-numeric '") + key + "'";
        return false;
    }
    const double d = v->asNumber();
    if (d < 0 || d > 4294967295.0 || d != std::floor(d)) {
        err = std::string("'") + key + "' out of u32 range";
        return false;
    }
    out = static_cast<std::uint32_t>(d);
    return true;
}

bool
getU64(const json::Value &obj, const char *key, std::uint64_t &out,
       std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isNumber()) {
        err = std::string("missing or non-numeric '") + key + "'";
        return false;
    }
    const double d = v->asNumber();
    if (d < 0 || d > kMaxExact || d != std::floor(d)) {
        err = std::string("'") + key + "' out of exact-u64 range";
        return false;
    }
    out = static_cast<std::uint64_t>(d);
    return true;
}

bool
getI64(const json::Value &obj, const char *key, std::int64_t &out,
       std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isNumber()) {
        err = std::string("missing or non-numeric '") + key + "'";
        return false;
    }
    const double d = v->asNumber();
    if (d < -kMaxExact || d > kMaxExact || d != std::floor(d)) {
        err = std::string("'") + key + "' out of exact-i64 range";
        return false;
    }
    out = static_cast<std::int64_t>(d);
    return true;
}

bool
getDouble(const json::Value &obj, const char *key, double &out,
          std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isNumber()) {
        err = std::string("missing or non-numeric '") + key + "'";
        return false;
    }
    out = v->asNumber();
    return true;
}

bool
getBool(const json::Value &obj, const char *key, bool &out,
        std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isBool()) {
        err = std::string("missing or non-bool '") + key + "'";
        return false;
    }
    out = v->asBool();
    return true;
}

bool
getString(const json::Value &obj, const char *key, std::string &out,
          std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isString()) {
        err = std::string("missing or non-string '") + key + "'";
        return false;
    }
    out = v->asString();
    return true;
}

bool
getU32List(const json::Value &obj, const char *key,
           std::vector<std::uint32_t> &out, std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isArray()) {
        err = std::string("missing or non-array '") + key + "'";
        return false;
    }
    out.clear();
    for (const auto &e : v->asArray()) {
        if (!e.isNumber() || e.asNumber() < 0 ||
            e.asNumber() > 4294967295.0 ||
            e.asNumber() != std::floor(e.asNumber())) {
            err = std::string("non-u32 element in '") + key + "'";
            return false;
        }
        out.push_back(static_cast<std::uint32_t>(e.asNumber()));
    }
    return true;
}

bool
getU64List(const json::Value &obj, const char *key,
           std::vector<std::uint64_t> &out, std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isArray()) {
        err = std::string("missing or non-array '") + key + "'";
        return false;
    }
    out.clear();
    for (const auto &e : v->asArray()) {
        if (!e.isNumber() || e.asNumber() < 0 ||
            e.asNumber() > kMaxExact ||
            e.asNumber() != std::floor(e.asNumber())) {
            err = std::string("non-exact-u64 element in '") + key + "'";
            return false;
        }
        out.push_back(static_cast<std::uint64_t>(e.asNumber()));
    }
    return true;
}

std::string
encodeResult(std::uint32_t index, bool cached, std::int64_t wallUs,
             const dse::JobMetrics &m)
{
    std::string out = "{\"type\": \"result\", \"index\": " +
                      std::to_string(index);
    out += std::string(", \"cached\": ") + (cached ? "true" : "false");
    out += ", \"wall_us\": " + std::to_string(wallUs);
    out += ", \"metrics\": {";
    out += "\"switches\": " + std::to_string(m.switches);
    out += ", \"links\": " + std::to_string(m.links);
    out += ", \"channels\": " + std::to_string(m.channels);
    out += std::string(", \"constraints_met\": ") +
           (m.constraintsMet ? "true" : "false");
    out += ", \"violations\": " + std::to_string(m.violations);
    out += ", \"rounds\": " + std::to_string(m.rounds);
    out += ", \"switch_area\": " + std::to_string(m.switchArea);
    out += ", \"link_area\": " + std::to_string(m.linkArea);
    out += ", \"proc_link_area\": " + std::to_string(m.procLinkArea);
    out += ", \"exec_time\": " + std::to_string(m.execTime);
    out += ", \"avg_latency\": " + fmtDouble(m.avgLatency);
    out += ", \"avg_hops\": " + fmtDouble(m.avgHops);
    out += ", \"max_link_util\": " + fmtDouble(m.maxLinkUtil);
    out += ", \"energy\": " + fmtDouble(m.energy);
    out += "}}";
    return out;
}

std::string
encodePhaseResult(std::uint32_t index, std::int64_t wallUs,
                  const phase::PhaseRowEval &row)
{
    const auto &v = row.network;
    std::string out = "{\"type\": \"result\", \"index\": " +
                      std::to_string(index);
    out += ", \"wall_us\": " + std::to_string(wallUs);
    out += ", \"row\": {";
    out += "\"switches\": " + std::to_string(v.switches);
    out += ", \"links\": " + std::to_string(v.links);
    out += ", \"channels\": " + std::to_string(v.channels);
    out += ", \"area\": " + std::to_string(v.area);
    out += ", \"exec_time\": " + std::to_string(v.execTime);
    out += ", \"avg_latency\": " + fmtDouble(v.avgLatency);
    out += ", \"energy\": " + fmtDouble(v.energy);
    out += ", \"packets\": " + std::to_string(v.packetsDelivered);
    out += ", \"violations\": " + std::to_string(v.violations);
    out += ", \"reconfig_idle_energy\": " +
           fmtDouble(row.reconfigIdleEnergy);
    out += "}}";
    return out;
}

std::string
encodeDone(std::uint64_t jobs, std::uint64_t cacheHits)
{
    return "{\"type\": \"done\", \"jobs\": " + std::to_string(jobs) +
           ", \"cache_hits\": " + std::to_string(cacheHits) + "}";
}

std::string
encodeError(const std::string &code, const std::string &message)
{
    return "{\"type\": \"error\", \"code\": \"" + jsonEscape(code) +
           "\", \"message\": \"" + jsonEscape(message) + "\"}";
}

std::string
phasesSignature(const phase::PhaseEvalConfig &config)
{
    return config.methodology.signature() + "|" +
           config.floorplan.signature() + "|" +
           config.power.signature() + "|" + config.sim.signature() +
           "|" + config.segmenter.signature() +
           ";rc=" + std::to_string(config.reconfigCost);
}

std::optional<WorkerMsg>
parseWorkerMsg(const std::string &text, std::string &err)
{
    const auto doc = json::parse(text);
    if (!doc || !doc->isObject()) {
        err = "worker frame is not a JSON object";
        return std::nullopt;
    }
    std::string type;
    if (!getString(*doc, "type", type, err))
        return std::nullopt;
    WorkerMsg msg;
    if (type == "result") {
        msg.kind = WorkerMsg::Kind::Result;
        if (!getU32(*doc, "index", msg.index, err) ||
            !getI64(*doc, "wall_us", msg.wallUs, err))
            return std::nullopt;
        if (const auto *m = doc->find("metrics")) {
            std::uint32_t violations = 0;
            if (!getU32(*m, "switches", msg.metrics.switches, err) ||
                !getU32(*m, "links", msg.metrics.links, err) ||
                !getU32(*m, "channels", msg.metrics.channels, err) ||
                !getBool(*m, "constraints_met",
                         msg.metrics.constraintsMet, err) ||
                !getU32(*m, "violations", violations, err) ||
                !getU32(*m, "rounds", msg.metrics.rounds, err) ||
                !getU32(*m, "switch_area", msg.metrics.switchArea,
                        err) ||
                !getU32(*m, "link_area", msg.metrics.linkArea, err) ||
                !getU32(*m, "proc_link_area", msg.metrics.procLinkArea,
                        err) ||
                !getI64(*m, "exec_time", msg.metrics.execTime, err) ||
                !getDouble(*m, "avg_latency", msg.metrics.avgLatency,
                           err) ||
                !getDouble(*m, "avg_hops", msg.metrics.avgHops, err) ||
                !getDouble(*m, "max_link_util",
                           msg.metrics.maxLinkUtil, err) ||
                !getDouble(*m, "energy", msg.metrics.energy, err) ||
                !getBool(*doc, "cached", msg.cached, err))
                return std::nullopt;
            msg.metrics.violations = violations;
        } else if (const auto *r = doc->find("row")) {
            msg.isPhaseRow = true;
            auto &v = msg.row.network;
            std::uint64_t packets = 0;
            std::uint64_t violations = 0;
            std::int64_t exec = 0;
            if (!getU32(*r, "switches", v.switches, err) ||
                !getU32(*r, "links", v.links, err) ||
                !getU32(*r, "channels", v.channels, err) ||
                !getU32(*r, "area", v.area, err) ||
                !getI64(*r, "exec_time", exec, err) ||
                !getDouble(*r, "avg_latency", v.avgLatency, err) ||
                !getDouble(*r, "energy", v.energy, err) ||
                !getU64(*r, "packets", packets, err) ||
                !getU64(*r, "violations", violations, err) ||
                !getDouble(*r, "reconfig_idle_energy",
                           msg.row.reconfigIdleEnergy, err))
                return std::nullopt;
            v.execTime = exec;
            v.packetsDelivered = packets;
            v.violations = static_cast<std::size_t>(violations);
        } else {
            err = "result frame lacks both 'metrics' and 'row'";
            return std::nullopt;
        }
    } else if (type == "done") {
        msg.kind = WorkerMsg::Kind::Done;
        if (!getU64(*doc, "jobs", msg.jobs, err) ||
            !getU64(*doc, "cache_hits", msg.cacheHits, err))
            return std::nullopt;
    } else if (type == "error") {
        msg.kind = WorkerMsg::Kind::Error;
        if (!getString(*doc, "code", msg.code, err) ||
            !getString(*doc, "message", msg.message, err))
            return std::nullopt;
    } else {
        err = "unknown worker message type '" + type + "'";
        return std::nullopt;
    }
    return msg;
}

} // namespace minnoc::serve
