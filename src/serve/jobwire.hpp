/**
 * @file
 * Result-payload wire layer shared by the serve daemon and the
 * distributed coordinator.
 *
 * One evaluated job — an explore grid point or a phase row — always
 * crosses a process boundary as the same JSON document, whether it
 * travels inside a netstring frame from a forked pipe worker or as
 * the `result` string of a `dse_job`/`phase_job` serve reply. Keeping
 * the encoder and the strict parser in one place (below the dist
 * layer, which links against serve) is what makes `--hosts` and
 * `--workers` byte-identical by construction: both backends feed the
 * coordinator the exact same bytes per job.
 *
 * Determinism contract (inherited by every user): integers cross as
 * decimal and are rejected beyond 2^53; doubles cross as %.17g, which
 * strtod round-trips bit-exactly.
 */

#ifndef MINNOC_SERVE_JOBWIRE_HPP
#define MINNOC_SERVE_JOBWIRE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dse/explorer.hpp"
#include "phase/evaluator.hpp"
#include "util/json.hpp"

namespace minnoc::serve {

/** %.17g — enough digits for exact double round-tripping. */
std::string fmtDouble(double v);

// Strict typed field extraction: every getter rejects missing keys,
// wrong types, non-integral numbers and values beyond the exact-int
// range, filling @p err with the offending key. Shared by the shard
// request parser (dist) and the job result parser (below).
bool getU32(const json::Value &obj, const char *key, std::uint32_t &out,
            std::string &err);
bool getU64(const json::Value &obj, const char *key, std::uint64_t &out,
            std::string &err);
bool getI64(const json::Value &obj, const char *key, std::int64_t &out,
            std::string &err);
bool getDouble(const json::Value &obj, const char *key, double &out,
               std::string &err);
bool getBool(const json::Value &obj, const char *key, bool &out,
             std::string &err);
bool getString(const json::Value &obj, const char *key, std::string &out,
               std::string &err);
bool getU32List(const json::Value &obj, const char *key,
                std::vector<std::uint32_t> &out, std::string &err);
bool getU64List(const json::Value &obj, const char *key,
                std::vector<std::uint64_t> &out, std::string &err);

/** Everything a job backend sends back, one message per job. */
struct WorkerMsg
{
    enum class Kind : std::uint8_t { Result, Done, Error };
    Kind kind = Kind::Done;

    // Result
    std::uint32_t index = 0; ///< grid index / phase index
    bool cached = false;     ///< explore only
    std::int64_t wallUs = 0; ///< backend-side wall time of this job
    dse::JobMetrics metrics; ///< explore payload
    phase::PhaseRowEval row; ///< phases payload
    bool isPhaseRow = false;

    // Done
    std::uint64_t jobs = 0;
    std::uint64_t cacheHits = 0;

    // Error (codes follow serve::errorCodeName)
    std::string code;
    std::string message;
};

std::string encodeResult(std::uint32_t index, bool cached,
                         std::int64_t wallUs,
                         const dse::JobMetrics &metrics);
std::string encodePhaseResult(std::uint32_t index, std::int64_t wallUs,
                              const phase::PhaseRowEval &row);
std::string encodeDone(std::uint64_t jobs, std::uint64_t cacheHits);
std::string encodeError(const std::string &code,
                        const std::string &message);

/** Parse a job payload; on failure fills @p err, returns nullopt. */
std::optional<WorkerMsg> parseWorkerMsg(const std::string &text,
                                        std::string &err);

/**
 * Combined signature of one phases evaluation — every stage signature
 * concatenated plus the reconfiguration cost. The coordinator sends
 * it, the backend recomputes it from the wire scalars; inequality
 * means the config carries knobs the wire cannot express, and the
 * backend refuses rather than produce a silently different report.
 */
std::string phasesSignature(const phase::PhaseEvalConfig &config);

} // namespace minnoc::serve

#endif // MINNOC_SERVE_JOBWIRE_HPP
