/**
 * @file
 * The `minnoc serve` daemon: synthesis-as-a-service over a local
 * socket.
 *
 * Architecture (one box per thread kind):
 *
 *   accept thread ──► reader thread per connection ──► bounded queue
 *                       │  (parse, admit, inline                │
 *                       │   ping/status, backpressure)          ▼
 *                       │                               worker threads
 *                       ◄── responses (per-conn write mutex) ───┘
 *
 * Robustness properties, each load-bearing:
 *
 *  - **Admission control**: the work queue is a bounded deque; a
 *    request arriving past the high-water mark is rejected immediately
 *    with `queue_full` instead of queueing unboundedly. `ping` and
 *    `status` are answered inline by the reader and never queued, so
 *    health checks work under full load.
 *  - **Deadlines**: every compute request gets a CancelToken whose
 *    deadline covers queue wait plus compute; the token is polled
 *    cooperatively at partitioner-restart, DSE-job and simulator-epoch
 *    granularity, so a poisonously slow job stops within one
 *    checkpoint interval, not at completion.
 *  - **Cancellation on disconnect**: a reader seeing EOF fires every
 *    in-flight token of its connection with Disconnect — abandoned
 *    work is unwound, not finished into the void.
 *  - **Crash-safe two-tier caching**: an in-memory response LRU
 *    (exact bytes of the first computation) sits in front of the
 *    checksummed, quarantine-on-corruption on-disk DSE result cache.
 *    Responses are byte-identical to the CLI's output for the same
 *    request whether served cold, warm-via-LRU or warm-via-disk.
 *  - **Single-flight dedup**: concurrent identical submissions share
 *    one computation; followers block on the leader's flight and all
 *    receive byte-identical responses.
 *  - **Structured errors**: every failure — malformed bytes, invalid
 *    parameters, deadline expiry, backpressure, drain — maps onto the
 *    protocol's error taxonomy. User-level fatal()s inside the
 *    pipeline are converted to exceptions for the request's lifetime
 *    (LogConfig::fatalThrows), so no submission can kill the daemon.
 *  - **Graceful drain**: stop() (or SIGTERM/SIGINT via the
 *    async-signal-safe requestStop()) stops admitting, finishes
 *    in-flight work within the drain budget, then cancels stragglers
 *    with Shutdown, joins every thread and flushes metrics.
 */

#ifndef MINNOC_SERVE_SERVER_HPP
#define MINNOC_SERVE_SERVER_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lru.hpp"
#include "obs/metrics.hpp"
#include "protocol.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace minnoc::serve {

/** Listener, capacity and policy knobs of one Server. */
struct ServerConfig
{
    /** Unix-domain socket path; takes precedence when non-empty. */
    std::string socketPath;
    /** TCP loopback port; 0 = ephemeral (see Server::boundPort()). */
    int port = -1;

    /** Worker threads draining the compute queue. */
    std::uint32_t workers = 2;
    /** Queue high-water mark; past it requests get `queue_full`. */
    std::size_t queueCapacity = 64;

    /** Deadline applied when a request does not ask for one (ms). */
    std::int64_t defaultDeadlineMs = 30'000;
    /** Hard ceiling a request's own deadline is clamped to (ms). */
    std::int64_t maxDeadlineMs = 120'000;
    /** Graceful-drain budget before stragglers are cancelled (ms). */
    std::int64_t drainMs = 5'000;
    /** Close a connection stuck mid-request-line this long (ms). */
    std::int64_t idleTimeoutMs = 30'000;

    /** Response-LRU capacity in entries (0 disables the tier). */
    std::size_t lruCapacity = 128;
    /** DSE disk-cache directory; empty = dse::defaultCacheDir(). */
    std::string cacheDir;
    /** Disable the disk tier entirely. */
    bool useCache = true;

    /** Threads of the shared methodology pool (0 = hardware). */
    std::uint32_t innerThreads = 0;

    /** When non-empty, stop() dumps the metrics registry here. */
    std::string metricsOut;
};

class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind the listener and spawn the accept + worker threads.
     * Returns false (with a description in @p error) when the socket
     * cannot be bound.
     */
    bool start(std::string &error);

    /** Bound TCP port (after start(); 0 for unix-socket servers). */
    int boundPort() const { return _boundPort; }

    /**
     * Ask the server to stop. Async-signal-safe: one atomic store and
     * one self-pipe write, no locks. serveForever() (or stop()) then
     * performs the actual drain.
     */
    void requestStop();

    /** Block until requestStop(), then drain and tear down. */
    void serveForever();

    /**
     * Graceful shutdown: stop admitting, drain in-flight work within
     * the drain budget, cancel stragglers (Shutdown), join all
     * threads, flush metrics. Idempotent.
     */
    void stop();

    /** Deterministic one-line status/health JSON document. */
    std::string statusJson();

    /** The registry behind `status` (counters, latency histogram). */
    obs::MetricsRegistry &metrics() { return _metrics; }

  private:
    struct Conn
    {
        int fd = -1;
        std::atomic<bool> open{true};
        std::mutex writeMutex;
        /** Tokens of this connection's queued/running jobs. */
        std::mutex tokenMutex;
        std::vector<std::weak_ptr<CancelToken>> inflight;
    };

    struct Job
    {
        Request req;
        std::shared_ptr<Conn> conn;
        std::shared_ptr<CancelToken> token;
        std::uint64_t key = 0; ///< content hash (cmd|params|trace)
        std::int64_t enqueuedUs = 0;
    };

    /** One deduplicated computation; followers wait on the leader. */
    struct Flight
    {
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
        /** Leader was cancelled; followers retry for leadership. */
        bool abandoned = false;
        bool ok = false;
        std::string payload;
        ErrorCode code = ErrorCode::Internal;
        std::string message;
    };

    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn);
    void workerLoop(std::uint32_t worker);

    /** Parse + admit one request line from @p conn. */
    void handleLine(const std::shared_ptr<Conn> &conn,
                    const std::string &line);
    void handleJob(Job &job, std::uint32_t worker);

    /** Run the actual pipeline for @p job; returns the payload. */
    std::string compute(const Job &job);

    void respond(const std::shared_ptr<Conn> &conn,
                 const std::string &line);
    void respondError(const std::shared_ptr<Conn> &conn,
                      const std::string &id, ErrorCode code,
                      const std::string &message);
    void countError(ErrorCode code);
    void recordLatency(const Job &job);

    void closeAllConnections();

    ServerConfig _config;
    int _listenFd = -1;
    int _boundPort = 0;
    int _stopPipe[2] = {-1, -1};

    std::atomic<bool> _started{false};
    std::atomic<bool> _stopRequested{false};
    std::atomic<bool> _draining{false};
    std::atomic<bool> _stopped{false};

    std::mutex _queueMutex;
    std::condition_variable _queueReady;
    std::condition_variable _queueDrained;
    std::deque<Job> _queue;
    bool _stopWorkers = false;
    std::atomic<std::uint64_t> _inFlight{0};

    std::mutex _flightsMutex;
    std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> _flights;

    LruCache _lru;
    /** Shared restart pool for design jobs (re-entrant methodology). */
    std::unique_ptr<ThreadPool> _innerPool;

    obs::MetricsRegistry _metrics;
    std::mutex _latencyMutex; ///< histogram is single-writer by design

    std::mutex _connsMutex;
    std::vector<std::pair<std::shared_ptr<Conn>, std::jthread>> _conns;

    std::jthread _acceptThread;
    std::vector<std::jthread> _workers;
};

} // namespace minnoc::serve

#endif // MINNOC_SERVE_SERVER_HPP
