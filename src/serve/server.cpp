#include "server.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/design_io.hpp"
#include "core/methodology.hpp"
#include "dse/cache.hpp"
#include "dse/explorer.hpp"
#include "jobwire.hpp"
#include "phase/evaluator.hpp"
#include "phase/multi_design.hpp"
#include "phase/segmenter.hpp"
#include "trace/analyzer.hpp"
#include "trace/trace.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace minnoc::serve {

namespace {

/**
 * Content hash of a compute request: command, canonical parameter
 * string, then the raw trace bytes chained through FNV-1a. Deadline
 * and id are deliberately excluded — they never change the result.
 */
std::uint64_t
requestKey(const Request &req)
{
    std::ostringstream sig;
    sig << std::setprecision(17) << cmdName(req.cmd);
    const auto list = [&sig](const char *name, const auto &values) {
        sig << '|' << name << '=';
        for (std::size_t i = 0; i < values.size(); ++i)
            sig << (i ? "," : "") << values[i];
    };
    switch (req.cmd) {
      case Cmd::Design:
        sig << "|d=" << req.maxDegree << "|r=" << req.restarts
            << "|s=" << req.seed;
        break;
      case Cmd::Explore:
        list("deg", req.grid.maxDegrees);
        list("res", req.grid.restarts);
        list("seed", req.grid.seeds);
        list("uni", req.grid.unidirectional);
        list("vcs", req.grid.vcs);
        list("pw", req.grid.phaseWindows);
        sig << "|vcd=" << req.grid.vcDepth
            << "|rc=" << req.reconfigCost;
        break;
      case Cmd::Phases:
        sig << "|w=" << req.window << "|t=" << req.threshold
            << "|m=" << req.minPhaseWindows
            << "|rc=" << req.reconfigCost << "|d=" << req.maxDegree
            << "|r=" << req.restarts << "|s=" << req.seed;
        break;
      case Cmd::DseJob:
        sig << "|j=" << req.jobIndex << "|sig=" << req.sig
            << "|d=" << req.maxDegree << "|r=" << req.restarts
            << "|s=" << req.seed << "|u=" << req.unidirectional
            << "|v=" << req.vcs << "|vcd=" << req.vcDepth
            << "|pw=" << req.phaseWindow << "|rc=" << req.reconfigCost;
        break;
      case Cmd::PhaseJob:
        sig << "|j=" << req.jobIndex << "|sig=" << req.sig
            << "|w=" << req.window << "|ep=" << req.expectedPhases;
        break;
      case Cmd::Ping:
      case Cmd::Status:
        break;
    }
    // Appended only off the default tier so historical keys for
    // static-power requests are unchanged (same discipline as
    // PowerModel::signature()).
    if (req.power != "static")
        sig << "|pm=" << req.power;
    const auto h = dse::fnv1a64(sig.str());
    return dse::fnv1a64(req.traceText, h);
}

/** Jobs this daemon has completed — arms the chaos hooks below. */
std::atomic<std::uint64_t> gJobsCompleted{0};

/**
 * True when the dist test hook @p env is set to "serve" (the
 * daemon-side spelling; pipe workers use their numeric slot), this is
 * the job's first dispatch attempt, and at least one job has already
 * completed — mirroring the pipe worker's after-first-result timing.
 */
bool
serveHookFires(const char *env, std::uint32_t attempt)
{
    if (attempt != 1 ||
        gJobsCompleted.load(std::memory_order_relaxed) == 0)
        return false;
    const char *v = std::getenv(env);
    return v && std::string(v) == "serve";
}

/** Simulated daemon crash / stalled socket, for the chaos tests. */
void
maybeInjectServeFault(std::uint32_t attempt)
{
    if (serveHookFires("MINNOC_DIST_TEST_CRASH", attempt))
        ::_exit(42);
    if (serveHookFires("MINNOC_DIST_TEST_HANG", attempt)) {
        // Stop responding; only the coordinator's activity timeout
        // (or killing the daemon) ends this.
        for (;;)
            ::usleep(50'000);
    }
}

/** Best-effort id extraction for error responses to invalid lines. */
std::string
bestEffortId(const std::string &line)
{
    const auto v = json::parse(line);
    if (!v || !v->isObject())
        return "";
    if (const auto *id = v->find("id");
        id && id->isString() && id->asString().size() <= 256)
        return id->asString();
    return "";
}

/** Map a fired token onto the structured error it owes the client. */
std::pair<ErrorCode, const char *>
cancelError(CancelReason reason)
{
    switch (reason) {
      case CancelReason::Deadline:
        return {ErrorCode::Timeout, "deadline exceeded"};
      case CancelReason::Disconnect:
        return {ErrorCode::Cancelled, "client disconnected"};
      case CancelReason::Shutdown:
        return {ErrorCode::ShuttingDown, "server shutting down"};
      case CancelReason::None:
        break;
    }
    return {ErrorCode::Internal, "cancelled"};
}

} // namespace

Server::Server(ServerConfig config)
    : _config(std::move(config)), _lru(_config.lruCapacity)
{
}

Server::~Server()
{
    if (_started.load())
        stop();
}

bool
Server::start(std::string &error)
{
    if (_started.exchange(true)) {
        error = "server already started";
        return false;
    }

    // Convert pipeline fatal()s (malformed traces, simulator aborts)
    // into exceptions for the daemon's lifetime: a request may fail,
    // the process may not.
    LogConfig::instance().fatalThrows(true);

    if (::pipe(_stopPipe) != 0) {
        error = std::string("pipe: ") + std::strerror(errno);
        return false;
    }

    if (!_config.socketPath.empty()) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (_config.socketPath.size() >= sizeof addr.sun_path) {
            error = "socket path too long: " + _config.socketPath;
            return false;
        }
        std::strncpy(addr.sun_path, _config.socketPath.c_str(),
                     sizeof addr.sun_path - 1);
        _listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (_listenFd < 0) {
            error = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        ::unlink(_config.socketPath.c_str());
        if (::bind(_listenFd,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof addr) != 0) {
            error = "bind " + _config.socketPath + ": " +
                    std::strerror(errno);
            return false;
        }
    } else if (_config.port >= 0) {
        _listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (_listenFd < 0) {
            error = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        const int one = 1;
        ::setsockopt(_listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port =
            htons(static_cast<std::uint16_t>(_config.port));
        if (::bind(_listenFd,
                   reinterpret_cast<const sockaddr *>(&addr),
                   sizeof addr) != 0) {
            error = "bind 127.0.0.1:" + std::to_string(_config.port) +
                    ": " + std::strerror(errno);
            return false;
        }
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        ::getsockname(_listenFd,
                      reinterpret_cast<sockaddr *>(&bound), &len);
        _boundPort = ntohs(bound.sin_port);
    } else {
        error = "no listener configured (need socketPath or port)";
        return false;
    }

    if (::listen(_listenFd, 64) != 0) {
        error = std::string("listen: ") + std::strerror(errno);
        return false;
    }

    const unsigned inner = _config.innerThreads
                               ? _config.innerThreads
                               : std::thread::hardware_concurrency();
    _innerPool = std::make_unique<ThreadPool>(inner);

    const auto workers = _config.workers ? _config.workers : 1u;
    _workers.reserve(workers);
    for (std::uint32_t i = 0; i < workers; ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
    _acceptThread = std::jthread([this] { acceptLoop(); });
    return true;
}

void
Server::requestStop()
{
    // Async-signal-safe: one relaxed store plus one pipe write.
    _stopRequested.store(true, std::memory_order_relaxed);
    if (_stopPipe[1] >= 0) {
        const char b = 's';
        [[maybe_unused]] const auto n = ::write(_stopPipe[1], &b, 1);
    }
}

void
Server::serveForever()
{
    pollfd p{_stopPipe[0], POLLIN, 0};
    while (!_stopRequested.load(std::memory_order_relaxed)) {
        const int r = ::poll(&p, 1, 200);
        if (r < 0 && errno != EINTR)
            break;
        if (r > 0 && (p.revents & POLLIN))
            break;
    }
    stop();
}

void
Server::stop()
{
    if (_stopped.exchange(true))
        return;
    _stopRequested.store(true);
    _draining.store(true);

    // Wake and retire the accept thread; no new connections.
    if (_stopPipe[1] >= 0) {
        const char b = 's';
        [[maybe_unused]] const auto n = ::write(_stopPipe[1], &b, 1);
    }
    if (_acceptThread.joinable())
        _acceptThread.join();

    // Phase 1: let in-flight and queued work finish inside the drain
    // budget. Readers stay alive so responses still reach clients.
    const auto pred = [this] {
        return _queue.empty() && _inFlight.load() == 0;
    };
    const auto budget = std::chrono::milliseconds(
        _config.drainMs > 0 ? _config.drainMs : 0);
    bool drained = false;
    {
        std::unique_lock lock(_queueMutex);
        drained = _queueDrained.wait_until(
            lock, std::chrono::steady_clock::now() + budget, pred);
    }

    // Phase 2: past the budget, cancel every outstanding token with
    // Shutdown — workers unwind at the next checkpoint and answer
    // `shutting_down`, so no request is silently dropped.
    if (!drained) {
        {
            const std::scoped_lock lock(_connsMutex);
            for (auto &[conn, thread] : _conns) {
                const std::scoped_lock tokens(conn->tokenMutex);
                for (auto &weak : conn->inflight)
                    if (const auto token = weak.lock())
                        token->cancel(CancelReason::Shutdown);
            }
        }
        std::unique_lock lock(_queueMutex);
        _queueDrained.wait_until(
            lock, std::chrono::steady_clock::now() + budget, pred);
    }

    {
        const std::scoped_lock lock(_queueMutex);
        _stopWorkers = true;
    }
    _queueReady.notify_all();
    _workers.clear(); // jthreads join here

    closeAllConnections();

    if (_listenFd >= 0) {
        ::close(_listenFd);
        _listenFd = -1;
    }
    if (!_config.socketPath.empty())
        ::unlink(_config.socketPath.c_str());
    for (const int fd : _stopPipe)
        if (fd >= 0)
            ::close(fd);
    _stopPipe[0] = _stopPipe[1] = -1;

    if (!_config.metricsOut.empty()) {
        // Snapshot the LRU tier into the registry so the dump carries
        // the full cache story, then include timing metrics (latency
        // histogram) — this artifact is about observed behavior.
        _metrics.counter("serve/lru_hits").add(_lru.hits());
        _metrics.counter("serve/lru_lookups").add(_lru.lookups());
        std::ofstream os(_config.metricsOut);
        if (os)
            os << _metrics.toJson(true);
    }

    LogConfig::instance().fatalThrows(false);
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2] = {{_listenFd, POLLIN, 0},
                         {_stopPipe[0], POLLIN, 0}};
        const int r = ::poll(fds, 2, -1);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        if (fds[1].revents & POLLIN)
            return;
        if (!(fds[0].revents & POLLIN))
            continue;
        const int fd = ::accept(_listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;

        // Bounded socket waits keep readers stop-aware (recv) and keep
        // a stalled client from pinning a worker forever (send).
        timeval rcv{0, 200'000};
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &rcv, sizeof rcv);
        timeval snd{5, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof snd);

        auto conn = std::make_shared<Conn>();
        conn->fd = fd;

        // Reap connections whose readers already exited: join the
        // reader, then close the fd under the write mutex so no
        // worker can race a response onto a recycled descriptor.
        std::vector<std::pair<std::shared_ptr<Conn>, std::jthread>>
            dead;
        {
            const std::scoped_lock lock(_connsMutex);
            for (auto it = _conns.begin(); it != _conns.end();) {
                if (!it->first->open.load()) {
                    dead.push_back(std::move(*it));
                    it = _conns.erase(it);
                } else {
                    ++it;
                }
            }
            _conns.emplace_back(conn, std::jthread([this, conn] {
                                    readerLoop(conn);
                                }));
        }
        for (auto &[deadConn, thread] : dead) {
            if (thread.joinable())
                thread.join();
            const std::scoped_lock write(deadConn->writeMutex);
            if (deadConn->fd >= 0) {
                ::close(deadConn->fd);
                deadConn->fd = -1;
            }
        }
    }
}

void
Server::readerLoop(std::shared_ptr<Conn> conn)
{
    std::string buffer;
    char chunk[4096];
    auto lastByteUs = CancelToken::nowUs();

    while (conn->open.load()) {
        const auto n = ::recv(conn->fd, chunk, sizeof chunk, 0);
        if (n > 0) {
            buffer.append(chunk, static_cast<std::size_t>(n));
            lastByteUs = CancelToken::nowUs();
            std::size_t start = 0;
            for (;;) {
                const auto nl = buffer.find('\n', start);
                if (nl == std::string::npos)
                    break;
                std::string line =
                    buffer.substr(start, nl - start);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                start = nl + 1;
                if (!line.empty())
                    handleLine(conn, line);
            }
            buffer.erase(0, start);
            if (buffer.size() > kMaxRequestBytes) {
                respondError(conn, "", ErrorCode::ParseError,
                             "request line exceeds " +
                                 std::to_string(kMaxRequestBytes) +
                                 " bytes");
                break;
            }
        } else if (n == 0) {
            break; // orderly EOF
        } else if (errno == EINTR) {
            continue;
        } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
            // Slow-writer guard: a connection stuck mid-line holds a
            // reader thread; bound that with the idle timeout. Idle
            // connections *between* requests are left alone.
            if (!buffer.empty() && _config.idleTimeoutMs > 0 &&
                CancelToken::nowUs() - lastByteUs >
                    _config.idleTimeoutMs * 1000) {
                respondError(conn, "", ErrorCode::ParseError,
                             "idle mid-request for over " +
                                 std::to_string(
                                     _config.idleTimeoutMs) +
                                 " ms");
                break;
            }
        } else {
            break; // hard socket error
        }
    }

    conn->open.store(false);
    // Kill both directions so a client blocked mid-send unblocks
    // immediately instead of waiting out the daemon's lifetime. The
    // fd itself is closed later (reap/shutdown) under the write
    // mutex, after this thread is joined.
    ::shutdown(conn->fd, SHUT_RDWR);
    // Abandon this connection's outstanding work: nobody is left to
    // read the results.
    const std::scoped_lock lock(conn->tokenMutex);
    for (auto &weak : conn->inflight)
        if (const auto token = weak.lock())
            token->cancel(CancelReason::Disconnect);
}

void
Server::handleLine(const std::shared_ptr<Conn> &conn,
                   const std::string &line)
{
    _metrics.counter("serve/requests_total").add();

    RequestError error;
    auto parsed = parseRequest(line, error);
    if (!parsed) {
        respondError(conn, bestEffortId(line), error.code,
                     error.message);
        return;
    }

    // Liveness probes are answered inline by the reader thread —
    // health checks must work while the queue is full.
    if (parsed->cmd == Cmd::Ping) {
        _metrics.counter("serve/responses_ok").add();
        respond(conn, okResponse(parsed->id, Cmd::Ping, "pong"));
        return;
    }
    if (parsed->cmd == Cmd::Status) {
        _metrics.counter("serve/responses_ok").add();
        respond(conn,
                okResponse(parsed->id, Cmd::Status, statusJson()));
        return;
    }

    if (_draining.load()) {
        respondError(conn, parsed->id, ErrorCode::ShuttingDown,
                     "server shutting down");
        return;
    }

    Job job;
    job.req = std::move(*parsed);
    job.conn = conn;
    job.token = std::make_shared<CancelToken>();
    // The deadline covers queue wait too: a request that sat behind a
    // full queue for its whole budget times out instead of running.
    const auto deadlineMs =
        job.req.deadlineMs > 0
            ? std::min(job.req.deadlineMs, _config.maxDeadlineMs)
            : _config.defaultDeadlineMs;
    if (deadlineMs > 0)
        job.token->setDeadlineIn(deadlineMs * 1000);
    job.key = requestKey(job.req);
    job.enqueuedUs = CancelToken::nowUs();

    {
        const std::scoped_lock tokens(conn->tokenMutex);
        std::erase_if(conn->inflight,
                      [](const auto &w) { return w.expired(); });
        conn->inflight.push_back(job.token);
    }

    {
        const std::scoped_lock lock(_queueMutex);
        if (_queue.size() >= _config.queueCapacity) {
            respondError(conn, job.req.id, ErrorCode::QueueFull,
                         "work queue is full (" +
                             std::to_string(_config.queueCapacity) +
                             " pending requests)");
            return;
        }
        _queue.push_back(std::move(job));
    }
    _queueReady.notify_one();
}

void
Server::workerLoop(std::uint32_t worker)
{
    // Per-worker registration + counters: a skewed jobs distribution
    // across rows in `status` flags a stuck worker or lock contention.
    auto &jobsCounter = _metrics.counter(
        "serve/worker/" + std::to_string(worker) + "/jobs");
    for (;;) {
        Job job;
        {
            std::unique_lock lock(_queueMutex);
            _queueReady.wait(lock, [this] {
                return _stopWorkers || !_queue.empty();
            });
            if (_queue.empty())
                return; // stopping and drained
            job = std::move(_queue.front());
            _queue.pop_front();
        }
        _inFlight.fetch_add(1);
        jobsCounter.add();
        handleJob(job, worker);
        _inFlight.fetch_sub(1);
        _queueDrained.notify_all();
    }
}

void
Server::handleJob(Job &job, const std::uint32_t worker)
{
    const auto &req = job.req;

    // Coordinator job dispatch bypasses the response LRU and the
    // single-flight tier: the `cached` flag inside the result document
    // must tell the truth about this daemon's disk cache, and the
    // shared disk cache already dedups identical jobs across requests.
    if (req.cmd == Cmd::DseJob || req.cmd == Cmd::PhaseJob) {
        (void)worker;
        if (job.token->cancelled()) {
            const auto [code, message] =
                cancelError(job.token->reason());
            respondError(job.conn, req.id, code, message);
        } else {
            try {
                const auto payload = compute(job);
                _metrics.counter("serve/responses_ok").add();
                respond(job.conn,
                        okResponse(req.id, req.cmd, payload));
            } catch (const CancelledError &) {
                const auto [code, message] =
                    cancelError(job.token->reason());
                respondError(job.conn, req.id, code, message);
            } catch (const FatalError &e) {
                respondError(job.conn, req.id,
                             ErrorCode::ValidationError, e.what());
            } catch (const std::exception &e) {
                respondError(job.conn, req.id, ErrorCode::Internal,
                             e.what());
            }
        }
        recordLatency(job);
        return;
    }

    for (;;) {
        if (job.token->cancelled()) {
            const auto [code, message] =
                cancelError(job.token->reason());
            respondError(job.conn, req.id, code, message);
            break;
        }

        // Tier 1: response LRU — the exact bytes of the first
        // computation for this content hash.
        if (auto hit = _lru.get(job.key)) {
            // Count before the socket write: a client that has seen
            // the reply must never observe a stale counter.
            _metrics.counter("serve/responses_ok").add();
            _metrics
                .counter("serve/worker/" + std::to_string(worker) +
                         "/cache_hits")
                .add();
            respond(job.conn,
                    okResponse(req.id, req.cmd, *hit));
            break;
        }

        // Single-flight: one computation per key, however many
        // identical requests are in the building.
        std::shared_ptr<Flight> flight;
        bool leader = false;
        {
            const std::scoped_lock lock(_flightsMutex);
            const auto it = _flights.find(job.key);
            if (it == _flights.end()) {
                flight = std::make_shared<Flight>();
                _flights.emplace(job.key, flight);
                leader = true;
            } else {
                flight = it->second;
            }
        }

        if (leader) {
            bool ok = false;
            bool abandoned = false;
            std::string payload;
            ErrorCode code = ErrorCode::Internal;
            std::string message;
            // Re-check the LRU now that we hold the flight: a prior
            // leader for this key publishes to the LRU before retiring
            // its flight, so a request that missed the LRU, found no
            // flight and got here either predates that leader (true
            // miss) or is guaranteed to hit now — exactly-once compute
            // with no window in between.
            if (auto hit = _lru.get(job.key)) {
                ok = true;
                payload = std::move(*hit);
                _metrics
                    .counter("serve/worker/" + std::to_string(worker) +
                             "/cache_hits")
                    .add();
            } else {
                try {
                    payload = compute(job);
                    ok = true;
                    _metrics.counter("serve/computations").add();
                } catch (const CancelledError &) {
                    // Leader-specific cancellation (its deadline, its
                    // client): followers must not inherit it — they
                    // re-elect a leader instead.
                    abandoned = true;
                } catch (const FatalError &e) {
                    code = ErrorCode::ValidationError;
                    message = e.what();
                } catch (const std::exception &e) {
                    code = ErrorCode::Internal;
                    message = e.what();
                }
            }

            // Publish to the LRU before retiring the flight (see the
            // leader re-check above), and erase the flight BEFORE
            // marking it done: a retrying follower must find either
            // no flight (become leader) or a live one — never a
            // completed husk.
            if (ok)
                _lru.put(job.key, payload);
            {
                const std::scoped_lock lock(_flightsMutex);
                _flights.erase(job.key);
            }
            {
                const std::scoped_lock lock(flight->mutex);
                flight->done = true;
                flight->abandoned = abandoned;
                flight->ok = ok;
                flight->payload = payload;
                flight->code = code;
                flight->message = message;
            }
            flight->cv.notify_all();

            if (ok) {
                _metrics.counter("serve/responses_ok").add();
                respond(job.conn,
                        okResponse(req.id, req.cmd, payload));
            } else if (abandoned) {
                const auto [c, m] = cancelError(job.token->reason());
                respondError(job.conn, req.id, c, m);
            } else {
                respondError(job.conn, req.id, code, message);
            }
            break;
        }

        // Follower: wait for the leader, slicing against our own
        // deadline/disconnect — a follower's fate is its own.
        _metrics.counter("serve/dedup_joins").add();
        bool done = false;
        bool abandoned = false;
        bool ok = false;
        std::string payload;
        ErrorCode code = ErrorCode::Internal;
        std::string message;
        {
            std::unique_lock lock(flight->mutex);
            while (!flight->done) {
                flight->cv.wait_for(
                    lock, std::chrono::milliseconds(20));
                if (!flight->done && job.token->cancelled())
                    break;
            }
            done = flight->done;
            abandoned = flight->abandoned;
            ok = flight->ok;
            payload = flight->payload;
            code = flight->code;
            message = flight->message;
        }
        if (!done) {
            const auto [c, m] = cancelError(job.token->reason());
            respondError(job.conn, req.id, c, m);
            break;
        }
        if (abandoned)
            continue; // retry: maybe become the leader this time
        if (ok) {
            _metrics.counter("serve/responses_ok").add();
            respond(job.conn, okResponse(req.id, req.cmd, payload));
        } else {
            respondError(job.conn, req.id, code, message);
        }
        break;
    }

    recordLatency(job);
}

std::string
Server::compute(const Job &job)
{
    const auto &req = job.req;

    std::istringstream in(req.traceText);
    const auto tr = trace::Trace::load(in); // FatalError on malformed
    if (tr.numRanks() < 2 || tr.numRanks() > kMaxTraceRanks)
        throw FatalError("trace must have between 2 and " +
                         std::to_string(kMaxTraceRanks) +
                         " ranks, got " +
                         std::to_string(tr.numRanks()));
    if (tr.numSends() == 0)
        throw FatalError("trace has no messages");
    checkCancel(job.token.get());

    switch (req.cmd) {
      case Cmd::Design: {
        core::MethodologyConfig mcfg;
        mcfg.partitioner.constraints.maxDegree = req.maxDegree;
        mcfg.restarts = req.restarts;
        mcfg.partitioner.seed =
            static_cast<std::uint32_t>(req.seed);
        mcfg.cancel = job.token.get();
        // The re-entrant overload shards restarts across the shared
        // pool; the wave selection keeps the design byte-identical to
        // the CLI's at any concurrency.
        const auto partStart = CancelToken::nowUs();
        const auto outcome = core::runMethodology(
            trace::analyzeByCall(tr), mcfg, _innerPool.get());
        const auto partUs = CancelToken::nowUs() - partStart;
        _metrics.counter("serve/designs_total").add();
        _metrics.counter("serve/design_restarts_used")
            .add(outcome.restartsUsed);
        {
            // Same single-writer contract as the latency histogram.
            const std::scoped_lock lock(_latencyMutex);
            _metrics.histogram("serve/partitioner_wall_us", true)
                .record(partUs > 0
                            ? static_cast<std::uint64_t>(partUs)
                            : 0);
        }
        std::ostringstream os;
        core::saveDesign(outcome.design, os);
        return os.str();
      }
      case Cmd::Explore: {
        dse::ExploreConfig cfg;
        cfg.grid = req.grid;
        cfg.phaseReconfigCost =
            static_cast<sim::Cycle>(req.reconfigCost);
        // Request-level parallelism comes from the worker pool; each
        // job runs its grid sequentially (reports are byte-identical
        // at any thread count, so this is invisible to clients).
        cfg.threads = 1;
        cfg.cacheDir = _config.cacheDir;
        cfg.useCache = _config.useCache;
        cfg.power.kind = *topo::powerModelKindFromName(req.power);
        cfg.cancel = job.token.get();
        const auto report = dse::explore(tr, cfg);
        _metrics.counter("serve/disk_cache_hits")
            .add(report.cacheHits);
        _metrics.counter("serve/disk_cache_misses")
            .add(report.cacheMisses);
        return report.toJson();
      }
      case Cmd::Phases: {
        phase::PhaseEvalConfig cfg;
        cfg.segmenter.windowMessages = req.window;
        cfg.segmenter.mergeThreshold = req.threshold;
        cfg.segmenter.minPhaseWindows = req.minPhaseWindows;
        cfg.reconfigCost =
            static_cast<sim::Cycle>(req.reconfigCost);
        cfg.methodology.partitioner.constraints.maxDegree =
            req.maxDegree;
        cfg.methodology.restarts = req.restarts;
        cfg.methodology.partitioner.seed =
            static_cast<std::uint32_t>(req.seed);
        cfg.methodology.cancel = job.token.get();
        cfg.sim.cancel = job.token.get();
        cfg.power.kind = *topo::powerModelKindFromName(req.power);
        cfg.threads = 1;
        return phase::evaluatePhases(tr, cfg).toJson();
      }
      case Cmd::DseJob: {
        maybeInjectServeFault(req.attempt);
        dse::ExploreConfig cfg;
        cfg.threads = 1;
        // Always the daemon's OWN disk cache, never a client path —
        // the socket is the trust boundary.
        cfg.cacheDir = _config.cacheDir;
        cfg.useCache = _config.useCache;
        cfg.phaseSegmenter.mergeThreshold = req.threshold;
        cfg.phaseSegmenter.minPhaseWindows = req.minPhaseWindows;
        cfg.phaseSegmenter.matrixWeight = req.matrixWeight;
        cfg.phaseReconfigCost =
            static_cast<sim::Cycle>(req.reconfigCost);
        cfg.power.kind = *topo::powerModelKindFromName(req.power);
        cfg.cancel = job.token.get();

        dse::JobParams params;
        params.maxDegree = req.maxDegree;
        params.restarts = req.restarts;
        params.seed = req.seed;
        params.unidirectional = req.unidirectional;
        params.numVcs = req.vcs;
        params.vcDepth = req.vcDepth;
        params.phaseWindow = req.phaseWindow;

        const auto sig = dse::jobSignature(params, cfg);
        if (sig != req.sig)
            throw FatalError(
                "job signature drift: coordinator expects '" +
                req.sig + "', daemon computes '" + sig + "'");

        // Re-serialize so the cache key matches the coordinator's
        // (save∘load round-trips bit-exactly).
        std::ostringstream patternStream;
        tr.save(patternStream);
        const auto key = dse::jobKey(patternStream.str(), sig);

        auto cliques = trace::analyzeByCall(tr);
        cliques.prepareCaches();
        const dse::ResultCache cache(cfg.cacheDir, cfg.useCache);

        const std::int64_t t0 = CancelToken::nowUs();
        dse::JobMetrics metrics;
        bool cached = false;
        if (auto hit = cache.load(key, sig)) {
            metrics = *hit;
            cached = true;
            _metrics.counter("serve/job_cache_hits").add();
        } else {
            metrics = dse::evaluateJob(tr, cliques, params, cfg);
            cache.store(key, sig, metrics);
            _metrics.counter("serve/job_cache_misses").add();
        }
        const std::int64_t wallUs = CancelToken::nowUs() - t0;
        _metrics.counter("serve/dse_jobs").add();
        gJobsCompleted.fetch_add(1, std::memory_order_relaxed);
        return encodeResult(req.jobIndex, cached, wallUs, metrics);
      }
      case Cmd::PhaseJob: {
        maybeInjectServeFault(req.attempt);
        phase::PhaseEvalConfig cfg;
        cfg.segmenter.windowMessages = req.window;
        cfg.segmenter.mergeThreshold = req.threshold;
        cfg.segmenter.minPhaseWindows = req.minPhaseWindows;
        cfg.segmenter.matrixWeight = req.matrixWeight;
        cfg.methodology.partitioner.constraints.maxDegree =
            req.maxDegree;
        cfg.methodology.partitioner.seed =
            static_cast<std::uint32_t>(req.seed);
        cfg.methodology.restarts = req.restarts;
        cfg.methodology.threads = 1;
        cfg.methodology.cancel = job.token.get();
        cfg.sim.cancel = job.token.get();
        cfg.reconfigCost =
            static_cast<sim::Cycle>(req.reconfigCost);
        cfg.power.kind = *topo::powerModelKindFromName(req.power);
        cfg.threads = 1;

        const auto sig = phasesSignature(cfg);
        if (sig != req.sig)
            throw FatalError(
                "phases signature drift: coordinator expects '" +
                req.sig + "', daemon computes '" + sig + "'");

        const phase::Segmentation seg =
            phase::segmentTrace(tr, cfg.segmenter);
        if (seg.phases.size() != req.expectedPhases)
            throw FatalError(
                "segmentation drift: coordinator detected " +
                std::to_string(req.expectedPhases) +
                " phases, daemon detected " +
                std::to_string(seg.phases.size()));
        if (req.jobIndex >= seg.phases.size())
            throw FatalError("job references phase " +
                             std::to_string(req.jobIndex) + " of " +
                             std::to_string(seg.phases.size()));
        const phase::PhaseCliques cliques =
            phase::buildPhaseCliques(tr, seg);

        const std::int64_t t0 = CancelToken::nowUs();
        const auto row = phase::evalPhaseStandalone(
            tr, seg, cliques.standalone[req.jobIndex], req.jobIndex,
            cfg);
        const std::int64_t wallUs = CancelToken::nowUs() - t0;
        _metrics.counter("serve/phase_jobs").add();
        gJobsCompleted.fetch_add(1, std::memory_order_relaxed);
        return encodePhaseResult(req.jobIndex, wallUs, row);
      }
      case Cmd::Ping:
      case Cmd::Status:
        break;
    }
    throw FatalError("not a compute command");
}

void
Server::respond(const std::shared_ptr<Conn> &conn,
                const std::string &line)
{
    if (!conn->open.load())
        return;
    const std::scoped_lock lock(conn->writeMutex);
    if (conn->fd < 0)
        return; // reaped while we waited for the mutex
    const char *p = line.data();
    auto left = line.size();
    while (left > 0) {
        // MSG_NOSIGNAL: a vanished client is a closed connection,
        // never a SIGPIPE for the daemon.
        const auto n = ::send(conn->fd, p, left, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            conn->open.store(false);
            return;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }
}

void
Server::respondError(const std::shared_ptr<Conn> &conn,
                     const std::string &id, ErrorCode code,
                     const std::string &message)
{
    countError(code);
    respond(conn, errorResponse(id, code, message));
}

void
Server::countError(ErrorCode code)
{
    _metrics
        .counter(std::string("serve/errors_") + errorCodeName(code))
        .add();
}

void
Server::recordLatency(const Job &job)
{
    const auto us = CancelToken::nowUs() - job.enqueuedUs;
    // The histogram is single-writer by contract; serialize workers.
    const std::scoped_lock lock(_latencyMutex);
    _metrics.histogram("serve/request_latency_us", true)
        .record(us > 0 ? static_cast<std::uint64_t>(us) : 0);
}

std::string
Server::statusJson()
{
    std::size_t depth = 0;
    {
        const std::scoped_lock lock(_queueMutex);
        depth = _queue.size();
    }
    const auto counter = [this](const char *name) {
        return _metrics.counter(name).value();
    };
    const auto errorCounter = [this](ErrorCode code) {
        return _metrics
            .counter(std::string("serve/errors_") +
                     errorCodeName(code))
            .value();
    };

    const auto lruHits = _lru.hits();
    const auto lruLookups = _lru.lookups();
    const auto diskHits = counter("serve/disk_cache_hits");
    const auto diskMisses = counter("serve/disk_cache_misses");
    const auto cacheLookups = lruLookups + diskHits + diskMisses;
    const double hitRatio =
        cacheLookups
            ? static_cast<double>(lruHits + diskHits) /
                  static_cast<double>(cacheLookups)
            : 0.0;

    std::uint64_t latCount = 0, p50 = 0, p90 = 0, p99 = 0, latMax = 0;
    std::uint64_t partCount = 0, partP50 = 0, partP99 = 0, partMax = 0;
    {
        const std::scoped_lock lock(_latencyMutex);
        auto &h =
            _metrics.histogram("serve/request_latency_us", true);
        latCount = h.count();
        p50 = h.quantile(0.5);
        p90 = h.quantile(0.9);
        p99 = h.quantile(0.99);
        latMax = h.max();
        auto &ph =
            _metrics.histogram("serve/partitioner_wall_us", true);
        partCount = ph.count();
        partP50 = ph.quantile(0.5);
        partP99 = ph.quantile(0.99);
        partMax = ph.max();
    }

    std::ostringstream os;
    os << "{\"queue_depth\": " << depth
       << ", \"queue_capacity\": " << _config.queueCapacity
       << ", \"in_flight\": " << _inFlight.load()
       << ", \"draining\": "
       << (_draining.load() ? "true" : "false")
       << ", \"requests_total\": " << counter("serve/requests_total")
       << ", \"responses_ok\": " << counter("serve/responses_ok")
       << ", \"errors\": {";
    constexpr ErrorCode kCodes[] = {
        ErrorCode::ParseError,   ErrorCode::ValidationError,
        ErrorCode::Timeout,      ErrorCode::QueueFull,
        ErrorCode::Cancelled,    ErrorCode::ShuttingDown,
        ErrorCode::Internal,
    };
    for (std::size_t i = 0; i < std::size(kCodes); ++i)
        os << (i ? ", " : "") << '"' << errorCodeName(kCodes[i])
           << "\": " << errorCounter(kCodes[i]);
    os << "}, \"computations\": " << counter("serve/computations")
       << ", \"dse_jobs\": " << counter("serve/dse_jobs")
       << ", \"phase_jobs\": " << counter("serve/phase_jobs")
       << ", \"job_cache_hits\": " << counter("serve/job_cache_hits")
       << ", \"job_cache_misses\": "
       << counter("serve/job_cache_misses")
       << ", \"dedup_joins\": " << counter("serve/dedup_joins")
       << ", \"lru_hits\": " << lruHits
       << ", \"lru_lookups\": " << lruLookups
       << ", \"disk_cache_hits\": " << diskHits
       << ", \"disk_cache_misses\": " << diskMisses
       << ", \"cache_hit_ratio\": " << std::fixed
       << std::setprecision(4) << hitRatio
       << ", \"latency_us\": {\"count\": " << latCount
       << ", \"p50\": " << p50 << ", \"p90\": " << p90
       << ", \"p99\": " << p99 << ", \"max\": " << latMax << "}"
       << ", \"designs_total\": " << counter("serve/designs_total")
       << ", \"design_restarts_used\": "
       << counter("serve/design_restarts_used")
       << ", \"partitioner_wall_us\": {\"count\": " << partCount
       << ", \"p50\": " << partP50 << ", \"p99\": " << partP99
       << ", \"max\": " << partMax << "}"
       << ", \"workers\": [";
    const auto nWorkers = _config.workers ? _config.workers : 1u;
    for (std::uint32_t w = 0; w < nWorkers; ++w) {
        const auto base = "serve/worker/" + std::to_string(w) + "/";
        os << (w ? ", " : "") << "{\"worker\": " << w
           << ", \"jobs\": " << _metrics.counter(base + "jobs").value()
           << ", \"cache_hits\": "
           << _metrics.counter(base + "cache_hits").value() << "}";
    }
    os << "]}";
    return os.str();
}

void
Server::closeAllConnections()
{
    std::vector<std::pair<std::shared_ptr<Conn>, std::jthread>> conns;
    {
        const std::scoped_lock lock(_connsMutex);
        conns.swap(_conns);
    }
    for (auto &[conn, thread] : conns) {
        conn->open.store(false);
        if (conn->fd >= 0)
            ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (auto &[conn, thread] : conns) {
        if (thread.joinable())
            thread.join();
        const std::scoped_lock write(conn->writeMutex);
        if (conn->fd >= 0) {
            ::close(conn->fd);
            conn->fd = -1;
        }
    }
}

} // namespace minnoc::serve
