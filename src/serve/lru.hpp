/**
 * @file
 * Concurrent response-level LRU cache.
 *
 * First tier of the serve daemon's two-tier cache: full response
 * payload bytes keyed by the request's content hash. Sits in front of
 * the per-job on-disk dse::ResultCache — an LRU hit skips even the
 * grid expansion and returns the exact bytes of the first computation,
 * which is what makes warm-via-LRU responses byte-identical to cold
 * ones by construction.
 *
 * Coarse single-mutex design: entries are whole response payloads
 * (kilobytes), lookups are rare relative to the seconds-long compute
 * they shortcut, so lock contention is noise. Capacity is counted in
 * entries, not bytes; payload sizes are bounded by the protocol's
 * framing limits.
 */

#ifndef MINNOC_SERVE_LRU_HPP
#define MINNOC_SERVE_LRU_HPP

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace minnoc::serve {

class LruCache
{
  public:
    explicit LruCache(std::size_t capacity) : _capacity(capacity) {}

    LruCache(const LruCache &) = delete;
    LruCache &operator=(const LruCache &) = delete;

    /** Lookup @p key, refreshing its recency on a hit. */
    std::optional<std::string> get(std::uint64_t key)
    {
        std::lock_guard lock(_mutex);
        ++_lookups;
        const auto it = _index.find(key);
        if (it == _index.end())
            return std::nullopt;
        ++_hits;
        _order.splice(_order.begin(), _order, it->second);
        return it->second->second;
    }

    /** Insert/overwrite @p key, evicting the least recent past cap. */
    void put(std::uint64_t key, std::string value)
    {
        if (_capacity == 0)
            return;
        std::lock_guard lock(_mutex);
        if (const auto it = _index.find(key); it != _index.end()) {
            it->second->second = std::move(value);
            _order.splice(_order.begin(), _order, it->second);
            return;
        }
        _order.emplace_front(key, std::move(value));
        _index.emplace(key, _order.begin());
        if (_index.size() > _capacity) {
            _index.erase(_order.back().first);
            _order.pop_back();
        }
    }

    std::size_t size() const
    {
        std::lock_guard lock(_mutex);
        return _index.size();
    }

    std::uint64_t hits() const
    {
        std::lock_guard lock(_mutex);
        return _hits;
    }

    std::uint64_t lookups() const
    {
        std::lock_guard lock(_mutex);
        return _lookups;
    }

  private:
    const std::size_t _capacity;
    mutable std::mutex _mutex;
    /** Most recent at front; list nodes keep iterators stable. */
    std::list<std::pair<std::uint64_t, std::string>> _order;
    std::unordered_map<
        std::uint64_t,
        std::list<std::pair<std::uint64_t, std::string>>::iterator>
        _index;
    std::uint64_t _hits = 0;
    std::uint64_t _lookups = 0;
};

} // namespace minnoc::serve

#endif // MINNOC_SERVE_LRU_HPP
