/**
 * @file
 * Minimal blocking client for the serve protocol — the test suite's
 * and chaos harness's view of the daemon. Header-only on purpose: the
 * harness links nothing beyond the protocol helpers, and the raw fd is
 * exposed so chaos scenarios can write garbage, dribble bytes, or
 * disconnect mid-request.
 */

#ifndef MINNOC_SERVE_CLIENT_HPP
#define MINNOC_SERVE_CLIENT_HPP

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace minnoc::serve {

/** One blocking connection to a serve daemon. */
class Client
{
  public:
    Client() = default;
    ~Client() { close(); }

    Client(Client &&o) noexcept : _fd(o._fd), _buffer(std::move(o._buffer))
    {
        o._fd = -1;
    }

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    bool
    connectUnix(const std::string &path)
    {
        close();
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof addr.sun_path)
            return false;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof addr.sun_path - 1);
        _fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (_fd < 0)
            return false;
        if (::connect(_fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) != 0) {
            close();
            return false;
        }
        return true;
    }

    bool
    connectTcp(int port)
    {
        close();
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        _fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (_fd < 0)
            return false;
        if (::connect(_fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof addr) != 0) {
            close();
            return false;
        }
        return true;
    }

    bool connected() const { return _fd >= 0; }

    /** Raw fd for chaos tricks (partial writes, abrupt close). */
    int fd() const { return _fd; }

    /** Send @p data verbatim (no newline appended). */
    bool
    sendRaw(std::string_view data)
    {
        const char *p = data.data();
        auto left = data.size();
        while (left > 0) {
            const auto n = ::send(_fd, p, left, MSG_NOSIGNAL);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            p += n;
            left -= static_cast<std::size_t>(n);
        }
        return true;
    }

    /** Send one request line (newline appended). */
    bool
    sendLine(const std::string &line)
    {
        return sendRaw(line + "\n");
    }

    /**
     * Receive one response line (newline stripped). Blocks until a
     * full line, EOF (nullopt), or a socket error (nullopt).
     */
    std::optional<std::string>
    recvLine()
    {
        for (;;) {
            const auto nl = _buffer.find('\n');
            if (nl != std::string::npos) {
                std::string line = _buffer.substr(0, nl);
                _buffer.erase(0, nl + 1);
                return line;
            }
            char chunk[4096];
            const auto n = ::recv(_fd, chunk, sizeof chunk, 0);
            if (n > 0) {
                _buffer.append(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            return std::nullopt; // EOF or error
        }
    }

    void
    close()
    {
        if (_fd >= 0) {
            ::close(_fd);
            _fd = -1;
        }
        _buffer.clear();
    }

  private:
    int _fd = -1;
    std::string _buffer;
};

} // namespace minnoc::serve

#endif // MINNOC_SERVE_CLIENT_HPP
