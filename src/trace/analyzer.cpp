#include "analyzer.hpp"

#include <algorithm>
#include <deque>
#include <map>

#include "util/log.hpp"

namespace minnoc::trace {

core::CommPattern
idealReplay(const Trace &trace, const ReplayModel &model)
{
    const std::uint32_t ranks = trace.numRanks();
    core::CommPattern pattern(ranks);

    // Per-rank cursor and local clock; per-channel FIFO of in-flight
    // message finish times (eager sends, FIFO channels).
    std::vector<std::size_t> cursor(ranks, 0);
    std::vector<double> clock(ranks, 0.0);
    std::map<std::pair<core::ProcId, core::ProcId>, std::deque<double>>
        inFlight;

    auto transferTime = [&model](std::uint64_t bytes) {
        const double payload =
            static_cast<double>(bytes) / model.bytesPerCycle;
        return model.wireLatency + std::max(payload, 1.0);
    };

    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (core::ProcId r = 0; r < ranks; ++r) {
            const auto &tl = trace.timeline(r);
            while (cursor[r] < tl.size()) {
                const TraceOp &op = tl[cursor[r]];
                if (op.kind == OpKind::Compute) {
                    clock[r] += static_cast<double>(op.cycles);
                } else if (op.kind == OpKind::Send) {
                    // Eager send: overhead on the sender, then the
                    // message is in flight.
                    clock[r] += model.overhead;
                    const double ts = clock[r];
                    const double tf = ts + transferTime(op.bytes);
                    pattern.addMessage(core::Message(
                        r, op.peer, ts, tf, op.bytes, op.callId));
                    inFlight[{r, op.peer}].push_back(tf);
                } else {
                    auto &channel = inFlight[{op.peer, r}];
                    if (channel.empty())
                        break; // matching send not issued yet
                    clock[r] = std::max(clock[r], channel.front()) +
                               model.overhead;
                    channel.pop_front();
                }
                ++cursor[r];
                progressed = true;
            }
        }
    }

    for (core::ProcId r = 0; r < ranks; ++r) {
        if (cursor[r] != trace.timeline(r).size())
            panic("idealReplay: trace '", trace.name(),
                  "' deadlocks at rank ", r, " op ", cursor[r]);
    }
    return pattern;
}

core::CliqueSet
analyzeByCall(const Trace &trace, bool reduce_to_maximum)
{
    core::CliqueSet cliques(trace.numRanks());
    std::map<std::uint32_t, std::vector<core::Comm>> byCall;
    for (core::ProcId r = 0; r < trace.numRanks(); ++r) {
        for (const auto &op : trace.timeline(r)) {
            if (op.kind == OpKind::Send)
                byCall[op.callId].emplace_back(r, op.peer);
        }
    }
    for (const auto &[call, comms] : byCall)
        cliques.addClique(comms);
    if (reduce_to_maximum)
        cliques.reduceToMaximum();
    return cliques;
}

} // namespace minnoc::trace
