#include "trace.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/log.hpp"

namespace minnoc::trace {

void
Trace::push(core::ProcId r, const TraceOp &op)
{
    if (r >= _timelines.size())
        panic("Trace::push: rank ", r, " out of range");
    if (op.kind != OpKind::Compute && op.peer >= _timelines.size())
        panic("Trace::push: peer ", op.peer, " out of range");
    if (op.kind != OpKind::Compute && op.peer == r)
        panic("Trace::push: rank ", r, " communicating with itself");
    _timelines[r].push_back(op);
}

const std::vector<TraceOp> &
Trace::timeline(core::ProcId r) const
{
    if (r >= _timelines.size())
        panic("Trace::timeline: rank ", r, " out of range");
    return _timelines[r];
}

std::size_t
Trace::numSends() const
{
    std::size_t count = 0;
    for (const auto &tl : _timelines) {
        count += static_cast<std::size_t>(
            std::count_if(tl.begin(), tl.end(), [](const TraceOp &op) {
                return op.kind == OpKind::Send;
            }));
    }
    return count;
}

std::uint64_t
Trace::totalSendBytes() const
{
    std::uint64_t total = 0;
    for (const auto &tl : _timelines) {
        for (const auto &op : tl) {
            if (op.kind == OpKind::Send)
                total += op.bytes;
        }
    }
    return total;
}

std::int64_t
Trace::totalComputeCycles() const
{
    std::int64_t total = 0;
    for (const auto &tl : _timelines) {
        for (const auto &op : tl) {
            if (op.kind == OpKind::Compute)
                total += op.cycles;
        }
    }
    return total;
}

std::uint32_t
Trace::numCalls() const
{
    std::uint32_t top = 0;
    for (const auto &tl : _timelines) {
        for (const auto &op : tl) {
            if (op.kind != OpKind::Compute)
                top = std::max(top, op.callId + 1);
        }
    }
    return top;
}

void
Trace::validateMatching() const
{
    // Key: (src, dst, callId) -> multiset balance of sends vs recvs.
    std::map<std::tuple<core::ProcId, core::ProcId, std::uint32_t>,
             std::int64_t>
        balance;
    for (core::ProcId r = 0; r < numRanks(); ++r) {
        for (const auto &op : _timelines[r]) {
            if (op.kind == OpKind::Send)
                ++balance[{r, op.peer, op.callId}];
            else if (op.kind == OpKind::Recv)
                --balance[{op.peer, r, op.callId}];
        }
    }
    for (const auto &[key, bal] : balance) {
        if (bal != 0) {
            const auto &[s, d, call] = key;
            panic("Trace '", _name, "': unmatched send/recv (", s, "->",
                  d, ", call ", call, "), balance ", bal);
        }
    }
}

void
Trace::save(std::ostream &os) const
{
    os << "trace " << _name << ' ' << numRanks() << '\n';
    for (core::ProcId r = 0; r < numRanks(); ++r) {
        for (const auto &op : _timelines[r]) {
            switch (op.kind) {
              case OpKind::Compute:
                os << r << " compute " << op.cycles << '\n';
                break;
              case OpKind::Send:
                os << r << " send " << op.peer << ' ' << op.bytes << ' '
                   << op.callId << '\n';
                break;
              case OpKind::Recv:
                os << r << " recv " << op.peer << ' ' << op.bytes << ' '
                   << op.callId << '\n';
                break;
            }
        }
    }
}

Trace
Trace::load(std::istream &is)
{
    std::string magic;
    std::string name;
    std::uint32_t ranks = 0;
    if (!(is >> magic >> name >> ranks) || magic != "trace")
        fatal("Trace::load: bad header");
    Trace trace(name, ranks);

    core::ProcId r;
    std::string kind;
    while (is >> r >> kind) {
        if (kind == "compute") {
            std::int64_t cycles;
            if (!(is >> cycles))
                fatal("Trace::load: bad compute op");
            trace.push(r, TraceOp::compute(cycles));
        } else if (kind == "send" || kind == "recv") {
            core::ProcId peer;
            std::uint64_t bytes;
            std::uint32_t call;
            if (!(is >> peer >> bytes >> call))
                fatal("Trace::load: bad ", kind, " op");
            trace.push(r, kind == "send"
                              ? TraceOp::send(peer, bytes, call)
                              : TraceOp::recv(peer, bytes, call));
        } else {
            fatal("Trace::load: unknown op kind '", kind, "'");
        }
    }
    return trace;
}

} // namespace minnoc::trace
