/**
 * @file
 * Synthetic NAS-benchmark trace generators (paper Section 4).
 *
 * We do not have the authors' MPE/MPICH execution traces, so each
 * generator synthesizes a trace that is structurally faithful to the
 * published communication behavior of its benchmark:
 *
 *  - BT / SP: ADI sweeps on a square process grid — per iteration, six
 *    cyclic-shift permutations (forward and backward along x, y and the
 *    diagonal "z" direction) plus boundary face exchanges; BT moves
 *    larger messages, SP runs more iterations of smaller ones.
 *  - CG: log2(cols) pairwise reduce-exchange phases within process-grid
 *    rows (partner = column XOR 2^k) followed by a matrix-transpose
 *    exchange (the diagonal stays silent — a partial permutation);
 *    this reproduces the contention periods of the paper's Figure 1.
 *  - FFT: 2-D blocking — one personalized all-to-all within rows and
 *    one within columns per iteration, each a single library call.
 *  - MG: per-level boundary exchanges at stride 2^l plus one
 *    recursive-doubling allreduce per iteration, all short messages.
 *
 * Compute gaps scale as computeScale / ranks (strong scaling), so the
 * communication-to-computation ratio grows with the configuration size
 * as the paper observes. Per-rank jitter models the time skew between
 * processes that the paper identifies as the source of residual
 * contention.
 */

#ifndef MINNOC_TRACE_NAS_GENERATORS_HPP
#define MINNOC_TRACE_NAS_GENERATORS_HPP

#include <string>

#include "trace.hpp"

namespace minnoc::trace {

/** The five benchmarks of the paper's evaluation. */
enum class Benchmark { BT, CG, FFT, MG, SP };

/** Name string ("BT", "CG", ...). */
std::string benchmarkName(Benchmark b);

/** Parse a benchmark name; fatal() on unknown names. */
Benchmark benchmarkFromName(const std::string &name);

/** Generator knobs; zero values select per-benchmark defaults. */
struct NasConfig
{
    std::uint32_t ranks = 16;
    std::uint32_t iterations = 3;
    std::uint64_t seed = 1;
    /** Relative compute-time jitter between ranks (time skew). */
    double skew = 0.08;
    /** Override base message bytes (0 = benchmark default). */
    std::uint64_t bytesScale = 0;
    /** Override total compute cycles per phase across ranks (0 = default). */
    std::int64_t computeScale = 0;
};

/** Generate the synthetic trace for one benchmark. */
Trace generateBenchmark(Benchmark b, const NasConfig &config);

/** Individual generators (same as generateBenchmark dispatch). */
Trace generateBT(const NasConfig &config);
Trace generateCG(const NasConfig &config);
Trace generateFFT(const NasConfig &config);
Trace generateMG(const NasConfig &config);
Trace generateSP(const NasConfig &config);

/** All five benchmarks, for sweep loops. */
inline constexpr Benchmark kAllBenchmarks[] = {
    Benchmark::BT, Benchmark::CG, Benchmark::FFT, Benchmark::MG,
    Benchmark::SP};

/**
 * The rank count each benchmark uses for the paper's "8 or 9 node" and
 * "16 node" configurations (BT/SP need a perfect square: 9).
 */
std::uint32_t smallConfigRanks(Benchmark b);
std::uint32_t largeConfigRanks(Benchmark b);

} // namespace minnoc::trace

#endif // MINNOC_TRACE_NAS_GENERATORS_HPP
