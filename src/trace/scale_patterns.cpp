#include "scale_patterns.hpp"

#include "util/log.hpp"

namespace minnoc::trace {

using core::CliqueSet;
using core::Comm;
using core::ProcId;

namespace {

/**
 * Grid factorization used by the transpose and nearest-neighbor
 * patterns: the largest divisor of @p n not exceeding sqrt(n), so the
 * grid is as square as possible (for powers of two this is
 * 2^(log2(n) / 2)).
 */
std::uint32_t
gridRows(std::uint32_t n)
{
    std::uint32_t best = 1;
    for (std::uint32_t r = 1; r * r <= n; ++r) {
        if (n % r == 0)
            best = r;
    }
    return best;
}

} // namespace

CliqueSet
ringPattern(std::uint32_t ranks)
{
    if (ranks < 2)
        fatal("ringPattern: need at least 2 ranks, got ", ranks);
    CliqueSet ks(ranks);
    std::vector<Comm> fwd;
    std::vector<Comm> bwd;
    for (ProcId i = 0; i < ranks; ++i) {
        fwd.emplace_back(i, (i + 1) % ranks);
        bwd.emplace_back(i, (i + ranks - 1) % ranks);
    }
    ks.addClique(fwd);
    ks.addClique(bwd);
    return ks;
}

CliqueSet
transposePattern(std::uint32_t ranks)
{
    if (ranks < 2)
        fatal("transposePattern: need at least 2 ranks, got ", ranks);
    const std::uint32_t rows = gridRows(ranks);
    const std::uint32_t cols = ranks / rows;
    if (rows == 1) {
        fatal("transposePattern: ", ranks,
              " ranks only factor into a 1-row grid (prime?); the "
              "transpose would be the identity");
    }
    CliqueSet ks(ranks);
    std::vector<Comm> comms;
    for (ProcId i = 0; i < ranks; ++i) {
        const std::uint32_t r = i / cols;
        const std::uint32_t c = i % cols;
        // (r, c) of the rows x cols matrix -> (c, r) of the transposed
        // cols x rows matrix, linearized in its own row-major order.
        const ProcId dst = c * rows + r;
        if (dst != i)
            comms.emplace_back(i, dst);
    }
    ks.addClique(comms);
    return ks;
}

CliqueSet
nearestNeighborPattern(std::uint32_t ranks)
{
    if (ranks < 2)
        fatal("nearestNeighborPattern: need at least 2 ranks, got ",
              ranks);
    const std::uint32_t rows = gridRows(ranks);
    const std::uint32_t cols = ranks / rows;
    CliqueSet ks(ranks);
    auto shift = [&](std::int32_t dr, std::int32_t dc) {
        std::vector<Comm> comms;
        for (ProcId i = 0; i < ranks; ++i) {
            const std::uint32_t r = i / cols;
            const std::uint32_t c = i % cols;
            const std::uint32_t nr =
                static_cast<std::uint32_t>(
                    (static_cast<std::int64_t>(r) + dr + rows)) %
                rows;
            const std::uint32_t nc =
                static_cast<std::uint32_t>(
                    (static_cast<std::int64_t>(c) + dc + cols)) %
                cols;
            const ProcId dst = nr * cols + nc;
            if (dst != i)
                comms.emplace_back(i, dst);
        }
        if (!comms.empty())
            ks.addClique(comms);
    };
    shift(0, 1);  // +x
    shift(0, -1); // -x
    shift(1, 0);  // +y
    shift(-1, 0); // -y
    return ks;
}

CliqueSet
railPattern(std::uint32_t ranks, std::uint32_t groupSize,
            std::uint32_t rails)
{
    if (groupSize == 0 || ranks % groupSize != 0)
        fatal("railPattern: ", ranks,
              " ranks do not divide into groups of ", groupSize);
    const std::uint32_t groups = ranks / groupSize;
    if (groups < 2)
        fatal("railPattern: need at least 2 groups, got ", groups);
    const std::uint32_t k = std::min(rails, groupSize);
    CliqueSet ks(ranks);
    for (std::uint32_t d = 0; d < groups; ++d) {
        // All rail traffic converging on destination group d is one
        // contention period.
        std::vector<Comm> comms;
        for (std::uint32_t s = 0; s < groups; ++s) {
            if (s == d)
                continue;
            for (std::uint32_t i = 0; i < k; ++i) {
                comms.emplace_back(s * groupSize + i,
                                   d * groupSize + i);
            }
        }
        ks.addClique(comms);
    }
    return ks;
}

namespace {

/** Shared (ranks, groupSize, subgroup) validation for fan / dense. */
std::uint32_t
groupCountFor(const char *what, std::uint32_t ranks,
              std::uint32_t groupSize)
{
    if (groupSize == 0 || ranks % groupSize != 0)
        fatal(what, ": ", ranks, " ranks do not divide into groups of ",
              groupSize);
    const std::uint32_t groups = ranks / groupSize;
    if (groups < 2)
        fatal(what, ": need at least 2 groups, got ", groups);
    return groups;
}

} // namespace

CliqueSet
fanPattern(std::uint32_t ranks, std::uint32_t groupSize,
           std::uint32_t subgroup, GroupDirection dir)
{
    const std::uint32_t groups =
        groupCountFor("fanPattern", ranks, groupSize);
    const std::uint32_t k = std::min(std::max(subgroup, 1u), groupSize);
    CliqueSet ks(ranks);
    // All traffic converging on destination group d is one contention
    // period, matching railPattern's clique convention.
    for (std::uint32_t d = 0; d < groups; ++d) {
        std::vector<Comm> comms;
        for (std::uint32_t s = 0; s < groups; ++s) {
            if (s == d)
                continue;
            const bool sIsRoot = dir == GroupDirection::Omni || s == 0;
            const bool dIsRoot = dir == GroupDirection::Omni || d == 0;
            // Root subgroup fans out to every rank of group d.
            if (sIsRoot) {
                for (std::uint32_t i = 0; i < k; ++i)
                    for (std::uint32_t j = 0; j < groupSize; ++j)
                        comms.emplace_back(s * groupSize + i,
                                           d * groupSize + j);
            }
            // Bi adds the gather half: every rank of group s answers
            // the root subgroup of group d.
            if (dir != GroupDirection::Uni && dIsRoot && !sIsRoot) {
                for (std::uint32_t j = 0; j < groupSize; ++j)
                    for (std::uint32_t i = 0; i < k; ++i)
                        comms.emplace_back(s * groupSize + j,
                                           d * groupSize + i);
            }
        }
        if (!comms.empty())
            ks.addClique(comms);
    }
    return ks;
}

CliqueSet
densePattern(std::uint32_t ranks, std::uint32_t groupSize,
             std::uint32_t subgroup, GroupDirection dir)
{
    const std::uint32_t groups =
        groupCountFor("densePattern", ranks, groupSize);
    const std::uint32_t k = std::min(std::max(subgroup, 1u), groupSize);
    CliqueSet ks(ranks);
    for (std::uint32_t d = 0; d < groups; ++d) {
        std::vector<Comm> comms;
        for (std::uint32_t s = 0; s < groups; ++s) {
            if (s == d)
                continue;
            // k x k subgroup-to-subgroup product; Uni keeps group 0 as
            // the only source, Bi adds the pairs flowing back into it,
            // Omni activates every ordered group pair.
            const bool active = dir == GroupDirection::Omni || s == 0 ||
                                (dir == GroupDirection::Bi && d == 0);
            if (!active)
                continue;
            for (std::uint32_t i = 0; i < k; ++i)
                for (std::uint32_t j = 0; j < k; ++j)
                    comms.emplace_back(s * groupSize + i,
                                       d * groupSize + j);
        }
        if (!comms.empty())
            ks.addClique(comms);
    }
    return ks;
}

const std::vector<std::string> &
scalePatternNames()
{
    static const std::vector<std::string> names = {
        "ring",    "transpose", "neighbor",  "rail",      "fan_uni",
        "fan_bi",  "fan_omni",  "dense_uni", "dense_bi",  "dense_omni"};
    return names;
}

CliqueSet
makeScalePattern(const std::string &name, std::uint32_t ranks)
{
    return makeScalePattern(name, ranks, 8, 2);
}

CliqueSet
makeScalePattern(const std::string &name, std::uint32_t ranks,
                 std::uint32_t groupSize, std::uint32_t rails)
{
    if (name == "ring")
        return ringPattern(ranks);
    if (name == "transpose")
        return transposePattern(ranks);
    if (name == "neighbor")
        return nearestNeighborPattern(ranks);
    if (name == "rail")
        return railPattern(ranks, groupSize, rails);
    if (name == "fan_uni")
        return fanPattern(ranks, groupSize, rails, GroupDirection::Uni);
    if (name == "fan_bi")
        return fanPattern(ranks, groupSize, rails, GroupDirection::Bi);
    if (name == "fan_omni")
        return fanPattern(ranks, groupSize, rails, GroupDirection::Omni);
    if (name == "dense_uni")
        return densePattern(ranks, groupSize, rails, GroupDirection::Uni);
    if (name == "dense_bi")
        return densePattern(ranks, groupSize, rails, GroupDirection::Bi);
    if (name == "dense_omni")
        return densePattern(ranks, groupSize, rails,
                            GroupDirection::Omni);
    fatal("unknown scale pattern '", name,
          "' (valid: ring, transpose, neighbor, rail, fan_uni, fan_bi, "
          "fan_omni, dense_uni, dense_bi, dense_omni)");
}

Trace
traceFromCliques(const core::CliqueSet &cliques, std::string name,
                 std::uint64_t bytes, std::uint32_t iterations)
{
    Trace tr(std::move(name), cliques.numProcs());
    for (std::uint32_t it = 0; it < std::max(iterations, 1u); ++it) {
        // One bulk-synchronous epoch per iteration: every clique posts
        // its sends first, then the matching recvs, so blocking sends
        // complete on injection and the epoch cannot rendezvous-lock.
        for (std::uint32_t c = 0; c < cliques.numCliques(); ++c) {
            const auto call = static_cast<std::uint32_t>(c);
            for (const auto id : cliques.cliques()[c].comms) {
                const auto &comm = cliques.comm(id);
                tr.push(comm.src, TraceOp::send(comm.dst, bytes, call));
            }
            for (const auto id : cliques.cliques()[c].comms) {
                const auto &comm = cliques.comm(id);
                tr.push(comm.dst, TraceOp::recv(comm.src, bytes, call));
            }
        }
    }
    tr.validateMatching();
    return tr;
}

} // namespace minnoc::trace
