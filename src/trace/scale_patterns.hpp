/**
 * @file
 * Closed-form clique-set generators for the node-count scaling study.
 *
 * The NAS generators build cliques by tracing and analyzing a whole
 * application; at four-digit rank counts the traces themselves become
 * the bottleneck and obscure what the scale bench measures. These
 * generators instead emit the contention cliques of four classic
 * well-behaved patterns directly — ring, matrix transpose, 2D
 * nearest-neighbor and grouped-rail (CommBench-style (p, g, k))
 * exchanges — so the synthesis time is the only thing on the clock.
 *
 * Every generator is a pure function of (pattern, ranks): no RNG, no
 * trace, comms added in ascending source order. The resulting designs
 * are therefore reproducible inputs for the byte-identity tests.
 */

#ifndef MINNOC_TRACE_SCALE_PATTERNS_HPP
#define MINNOC_TRACE_SCALE_PATTERNS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/clique_set.hpp"

namespace minnoc::trace {

/**
 * Ring shift: every rank sends to (i + 1) mod n and to (i - 1) mod n.
 * Two cliques, one per direction (each shift is one concurrent phase).
 */
core::CliqueSet ringPattern(std::uint32_t ranks);

/**
 * Matrix transpose on the r x c grid factorization of @p ranks
 * (r = largest power-of-two divisor not exceeding sqrt(n), else the
 * largest divisor <= sqrt(n)): rank (i, j) sends to rank (j, i) of the
 * transposed grid. One clique; fixed points are dropped.
 */
core::CliqueSet transposePattern(std::uint32_t ranks);

/**
 * 2D-torus nearest-neighbor exchange on the same grid factorization:
 * four cliques (+x, -x, +y, -y shifts), degenerate axes skipped.
 */
core::CliqueSet nearestNeighborPattern(std::uint32_t ranks);

/**
 * Grouped-rail exchange, the (p, g, k) shape of CommBench-style
 * hierarchical collectives: ranks are split into groups of @p groupSize
 * and the first @p rails ranks of every group send to the rank holding
 * the same offset in every other group. One clique per destination
 * group (each group's inbound rail traffic lands concurrently).
 */
core::CliqueSet railPattern(std::uint32_t ranks, std::uint32_t groupSize,
                            std::uint32_t rails);

/** The generator names accepted by makeScalePattern, in sweep order. */
const std::vector<std::string> &scalePatternNames();

/**
 * Name-based dispatch for benches and tools: "ring", "transpose",
 * "neighbor" or "rail" (rail uses groupSize 8, rails 2). Fails via
 * fatal() on an unknown name.
 */
core::CliqueSet makeScalePattern(const std::string &name,
                                 std::uint32_t ranks);

} // namespace minnoc::trace

#endif // MINNOC_TRACE_SCALE_PATTERNS_HPP
