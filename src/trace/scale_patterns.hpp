/**
 * @file
 * Closed-form clique-set generators for the node-count scaling study.
 *
 * The NAS generators build cliques by tracing and analyzing a whole
 * application; at four-digit rank counts the traces themselves become
 * the bottleneck and obscure what the scale bench measures. These
 * generators instead emit the contention cliques of four classic
 * well-behaved patterns directly — ring, matrix transpose, 2D
 * nearest-neighbor and grouped-rail (CommBench-style (p, g, k))
 * exchanges — so the synthesis time is the only thing on the clock.
 *
 * Every generator is a pure function of (pattern, ranks): no RNG, no
 * trace, comms added in ascending source order. The resulting designs
 * are therefore reproducible inputs for the byte-identity tests.
 */

#ifndef MINNOC_TRACE_SCALE_PATTERNS_HPP
#define MINNOC_TRACE_SCALE_PATTERNS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/clique_set.hpp"
#include "trace.hpp"

namespace minnoc::trace {

/**
 * Ring shift: every rank sends to (i + 1) mod n and to (i - 1) mod n.
 * Two cliques, one per direction (each shift is one concurrent phase).
 */
core::CliqueSet ringPattern(std::uint32_t ranks);

/**
 * Matrix transpose on the r x c grid factorization of @p ranks
 * (r = largest power-of-two divisor not exceeding sqrt(n), else the
 * largest divisor <= sqrt(n)): rank (i, j) sends to rank (j, i) of the
 * transposed grid. One clique; fixed points are dropped.
 */
core::CliqueSet transposePattern(std::uint32_t ranks);

/**
 * 2D-torus nearest-neighbor exchange on the same grid factorization:
 * four cliques (+x, -x, +y, -y shifts), degenerate axes skipped.
 */
core::CliqueSet nearestNeighborPattern(std::uint32_t ranks);

/**
 * Grouped-rail exchange, the (p, g, k) shape of CommBench-style
 * hierarchical collectives: ranks are split into groups of @p groupSize
 * and the first @p rails ranks of every group send to the rank holding
 * the same offset in every other group. One clique per destination
 * group (each group's inbound rail traffic lands concurrently).
 */
core::CliqueSet railPattern(std::uint32_t ranks, std::uint32_t groupSize,
                            std::uint32_t rails);

/** Direction variant of the grouped Fan / Dense exchanges. */
enum class GroupDirection : std::uint8_t {
    Uni,  ///< root group -> other groups only
    Bi,   ///< uni plus the reversed comms
    Omni, ///< every group takes the root role in turn
};

/**
 * CommBench-style Fan exchange on the (p, g, k) grouping: the first
 * @p subgroup ranks of the root group (group 0) each send to every
 * rank of every other group. Uni is that root->rest fan-out; Bi adds
 * the reversed comms; Omni makes every group the root in turn. One
 * clique per destination group, same convention as railPattern (all
 * traffic converging on a group is one contention period).
 */
core::CliqueSet fanPattern(std::uint32_t ranks, std::uint32_t groupSize,
                           std::uint32_t subgroup, GroupDirection dir);

/**
 * CommBench-style Dense exchange: for every ordered group pair the
 * first @p subgroup ranks of the source group each send to the first
 * @p subgroup ranks of the destination group (a k x k product). Uni
 * keeps group 0 as the only source; Bi adds the reversed comms; Omni
 * uses every ordered pair. One clique per destination group.
 */
core::CliqueSet densePattern(std::uint32_t ranks, std::uint32_t groupSize,
                             std::uint32_t subgroup, GroupDirection dir);

/** The generator names accepted by makeScalePattern, in sweep order. */
const std::vector<std::string> &scalePatternNames();

/**
 * Name-based dispatch for benches and tools: "ring", "transpose",
 * "neighbor", "rail", or the grouped CommBench shapes "fan_uni",
 * "fan_bi", "fan_omni", "dense_uni", "dense_bi", "dense_omni". The
 * two-argument overload uses groupSize 8 and subgroup/rails 2; the
 * four-argument overload exposes both knobs (rails doubles as the
 * fan/dense subgroup size k). Fails via fatal() on an unknown name.
 */
core::CliqueSet makeScalePattern(const std::string &name,
                                 std::uint32_t ranks);
core::CliqueSet makeScalePattern(const std::string &name,
                                 std::uint32_t ranks,
                                 std::uint32_t groupSize,
                                 std::uint32_t rails);

/**
 * Materialize a clique set as a replayable Trace: @p iterations
 * bulk-synchronous epochs, each posting every clique's comms as
 * blocking sends (then the matching recvs) of @p bytes payload, with
 * callId = clique index so analyzeByCall() recovers exactly the
 * generating cliques. Validates send/recv matching before returning.
 */
trace::Trace traceFromCliques(const core::CliqueSet &cliques,
                              std::string name, std::uint64_t bytes,
                              std::uint32_t iterations);

} // namespace minnoc::trace

#endif // MINNOC_TRACE_SCALE_PATTERNS_HPP
