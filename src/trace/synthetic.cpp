#include "synthetic.hpp"

#include <map>
#include <vector>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace minnoc::trace {

std::string
patternName(Pattern p)
{
    switch (p) {
      case Pattern::UniformRandom:
        return "uniform";
      case Pattern::Transpose:
        return "transpose";
      case Pattern::BitReversal:
        return "bitrev";
      case Pattern::Hotspot:
        return "hotspot";
      case Pattern::Neighbor:
        return "neighbor";
    }
    panic("patternName: bad enum");
}

namespace {

std::uint32_t
bitsFor(std::uint32_t ranks)
{
    std::uint32_t bits = 0;
    while ((1u << bits) < ranks)
        ++bits;
    return bits;
}

/** Most-square grid width for the transpose pattern. */
std::uint32_t
gridWidth(std::uint32_t ranks)
{
    std::uint32_t w = 1;
    for (std::uint32_t d = 1; d * d <= ranks; ++d) {
        if (ranks % d == 0)
            w = ranks / d;
    }
    return w;
}

} // namespace

Trace
generateSynthetic(const SyntheticConfig &cfg)
{
    if (cfg.ranks < 2)
        fatal("generateSynthetic: need at least two ranks");
    if (cfg.load < 0.0 || cfg.load > 1.0)
        fatal("generateSynthetic: load must be in [0, 1]");

    Rng rng(cfg.seed);
    const std::uint32_t w = gridWidth(cfg.ranks);
    const std::uint32_t h = cfg.ranks / w;
    const std::uint32_t bits = bitsFor(cfg.ranks);

    auto destination = [&](core::ProcId src) -> core::ProcId {
        switch (cfg.pattern) {
          case Pattern::UniformRandom: {
            const auto d = static_cast<core::ProcId>(
                rng.below(cfg.ranks - 1));
            return d >= src ? d + 1 : d;
          }
          case Pattern::Transpose: {
            const std::uint32_t x = src % w;
            const std::uint32_t y = src / w;
            // Transpose on the (possibly non-square) grid: clamp into
            // range by swapping within the smaller dimension.
            const std::uint32_t nx = y % w;
            const std::uint32_t ny = x % h;
            return static_cast<core::ProcId>(ny * w + nx);
          }
          case Pattern::BitReversal: {
            std::uint32_t out = 0;
            for (std::uint32_t b = 0; b < bits; ++b) {
                if (src & (1u << b))
                    out |= 1u << (bits - 1 - b);
            }
            return static_cast<core::ProcId>(out % cfg.ranks);
          }
          case Pattern::Hotspot:
            if (src != 0 && rng.chance(cfg.hotspotFraction))
                return 0;
            else {
                const auto d = static_cast<core::ProcId>(
                    rng.below(cfg.ranks - 1));
                return d >= src ? d + 1 : d;
            }
          case Pattern::Neighbor:
            return static_cast<core::ProcId>((src + 1) % cfg.ranks);
        }
        panic("generateSynthetic: bad pattern");
    };

    Trace trace("synthetic-" + patternName(cfg.pattern), cfg.ranks);

    // Per-channel send logs so the drain phase posts matching receives
    // in FIFO order.
    std::map<std::pair<core::ProcId, core::ProcId>,
             std::vector<std::uint32_t>>
        sent;

    std::uint32_t call = 0;
    for (std::uint32_t slot = 0; slot < cfg.slots; ++slot) {
        for (core::ProcId r = 0; r < cfg.ranks; ++r) {
            trace.push(r, TraceOp::compute(cfg.slotCycles));
            if (!rng.chance(cfg.load))
                continue;
            const auto d = destination(r);
            if (d == r)
                continue; // self-directed patterns skip the slot
            trace.push(r, TraceOp::send(d, cfg.bytes, call));
            sent[{r, d}].push_back(call);
            ++call;
        }
    }

    // Drain phase: every rank receives everything aimed at it, per
    // channel in FIFO order.
    for (const auto &[channel, calls] : sent) {
        const auto [src, dst] = channel;
        for (const auto c : calls)
            trace.push(dst, TraceOp::recv(src, cfg.bytes, c));
    }
    trace.validateMatching();
    return trace;
}

} // namespace minnoc::trace
