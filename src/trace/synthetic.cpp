#include "synthetic.hpp"

#include <map>
#include <vector>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace minnoc::trace {

std::string
patternName(Pattern p)
{
    switch (p) {
      case Pattern::UniformRandom:
        return "uniform";
      case Pattern::Transpose:
        return "transpose";
      case Pattern::BitReversal:
        return "bitrev";
      case Pattern::Hotspot:
        return "hotspot";
      case Pattern::Neighbor:
        return "neighbor";
    }
    panic("patternName: bad enum");
}

Pattern
patternFromName(const std::string &name)
{
    if (name == "uniform")
        return Pattern::UniformRandom;
    if (name == "transpose")
        return Pattern::Transpose;
    if (name == "bitrev")
        return Pattern::BitReversal;
    if (name == "hotspot")
        return Pattern::Hotspot;
    if (name == "neighbor")
        return Pattern::Neighbor;
    fatal("unknown synthetic pattern '", name,
          "' (uniform, transpose, bitrev, hotspot, neighbor)");
}

namespace {

std::uint32_t
bitsFor(std::uint32_t ranks)
{
    std::uint32_t bits = 0;
    while ((1u << bits) < ranks)
        ++bits;
    return bits;
}

/** Most-square grid width for the transpose pattern. */
std::uint32_t
gridWidth(std::uint32_t ranks)
{
    std::uint32_t w = 1;
    for (std::uint32_t d = 1; d * d <= ranks; ++d) {
        if (ranks % d == 0)
            w = ranks / d;
    }
    return w;
}

/** Destination of @p src under @p pattern (may return src itself). */
core::ProcId
patternDestination(Pattern pattern, core::ProcId src, std::uint32_t ranks,
                   double hotspotFraction, Rng &rng)
{
    const std::uint32_t w = gridWidth(ranks);
    const std::uint32_t h = ranks / w;
    switch (pattern) {
      case Pattern::UniformRandom: {
        const auto d = static_cast<core::ProcId>(rng.below(ranks - 1));
        return d >= src ? d + 1 : d;
      }
      case Pattern::Transpose: {
        const std::uint32_t x = src % w;
        const std::uint32_t y = src / w;
        // Transpose on the (possibly non-square) grid: clamp into
        // range by swapping within the smaller dimension.
        const std::uint32_t nx = y % w;
        const std::uint32_t ny = x % h;
        return static_cast<core::ProcId>(ny * w + nx);
      }
      case Pattern::BitReversal: {
        const std::uint32_t bits = bitsFor(ranks);
        std::uint32_t out = 0;
        for (std::uint32_t b = 0; b < bits; ++b) {
            if (src & (1u << b))
                out |= 1u << (bits - 1 - b);
        }
        return static_cast<core::ProcId>(out % ranks);
      }
      case Pattern::Hotspot:
        if (src != 0 && rng.chance(hotspotFraction))
            return 0;
        else {
            const auto d =
                static_cast<core::ProcId>(rng.below(ranks - 1));
            return d >= src ? d + 1 : d;
        }
      case Pattern::Neighbor:
        return static_cast<core::ProcId>((src + 1) % ranks);
    }
    panic("patternDestination: bad pattern");
}

} // namespace

Trace
generateSynthetic(const SyntheticConfig &cfg)
{
    if (cfg.ranks < 2)
        fatal("generateSynthetic: need at least two ranks");
    if (cfg.load < 0.0 || cfg.load > 1.0)
        fatal("generateSynthetic: load must be in [0, 1]");

    Rng rng(cfg.seed);
    auto destination = [&](core::ProcId src) {
        return patternDestination(cfg.pattern, src, cfg.ranks,
                                  cfg.hotspotFraction, rng);
    };

    Trace trace("synthetic-" + patternName(cfg.pattern), cfg.ranks);

    // Per-channel send logs so the drain phase posts matching receives
    // in FIFO order.
    std::map<std::pair<core::ProcId, core::ProcId>,
             std::vector<std::uint32_t>>
        sent;

    std::uint32_t call = 0;
    for (std::uint32_t slot = 0; slot < cfg.slots; ++slot) {
        for (core::ProcId r = 0; r < cfg.ranks; ++r) {
            trace.push(r, TraceOp::compute(cfg.slotCycles));
            if (!rng.chance(cfg.load))
                continue;
            const auto d = destination(r);
            if (d == r)
                continue; // self-directed patterns skip the slot
            trace.push(r, TraceOp::send(d, cfg.bytes, call));
            sent[{r, d}].push_back(call);
            ++call;
        }
    }

    // Drain phase: every rank receives everything aimed at it, per
    // channel in FIFO order.
    for (const auto &[channel, calls] : sent) {
        const auto [src, dst] = channel;
        for (const auto c : calls)
            trace.push(dst, TraceOp::recv(src, cfg.bytes, c));
    }
    trace.validateMatching();
    return trace;
}

Trace
phaseShift(const std::vector<Pattern> &patterns,
           const PhaseShiftConfig &cfg)
{
    if (patterns.empty())
        fatal("phaseShift: need at least one pattern");
    if (cfg.ranks < 2)
        fatal("phaseShift: need at least two ranks");
    if (cfg.itersPerPhase == 0 || cfg.sitesPerPhase == 0)
        fatal("phaseShift: itersPerPhase and sitesPerPhase must be "
              "positive");

    std::string name = "phase-shift";
    for (const Pattern p : patterns)
        name += "-" + patternName(p);
    Trace trace(name, cfg.ranks);

    Rng rng(cfg.seed);
    for (std::uint32_t e = 0; e < patterns.size(); ++e) {
        for (std::uint32_t iter = 0; iter < cfg.itersPerPhase; ++iter) {
            const std::uint32_t call =
                e * cfg.sitesPerPhase + iter % cfg.sitesPerPhase;

            // One bulk-synchronous exchange: every rank computes, then
            // sends to its pattern destination, then receives what was
            // aimed at it (rank-major), exactly like the NAS builders.
            std::vector<std::pair<core::ProcId, core::ProcId>> sends;
            for (core::ProcId r = 0; r < cfg.ranks; ++r) {
                trace.push(r, TraceOp::compute(cfg.computeCycles));
                const auto d = patternDestination(
                    patterns[e], r, cfg.ranks, cfg.hotspotFraction, rng);
                if (d == r)
                    continue; // fixed points of the pattern stay silent
                trace.push(r, TraceOp::send(d, cfg.bytes, call));
                sends.emplace_back(r, d);
            }
            for (core::ProcId dst = 0; dst < cfg.ranks; ++dst) {
                for (const auto &[s, d] : sends) {
                    if (d == dst)
                        trace.push(dst,
                                   TraceOp::recv(s, cfg.bytes, call));
                }
            }
        }
    }
    trace.validateMatching();
    return trace;
}

} // namespace minnoc::trace
