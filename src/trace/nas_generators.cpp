#include "nas_generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace minnoc::trace {

std::string
benchmarkName(Benchmark b)
{
    switch (b) {
      case Benchmark::BT:
        return "BT";
      case Benchmark::CG:
        return "CG";
      case Benchmark::FFT:
        return "FFT";
      case Benchmark::MG:
        return "MG";
      case Benchmark::SP:
        return "SP";
    }
    panic("benchmarkName: bad enum");
}

Benchmark
benchmarkFromName(const std::string &name)
{
    if (name == "BT")
        return Benchmark::BT;
    if (name == "CG")
        return Benchmark::CG;
    if (name == "FFT")
        return Benchmark::FFT;
    if (name == "MG")
        return Benchmark::MG;
    if (name == "SP")
        return Benchmark::SP;
    fatal("unknown benchmark '", name, "' (want BT/CG/FFT/MG/SP)");
}

std::uint32_t
smallConfigRanks(Benchmark b)
{
    return (b == Benchmark::BT || b == Benchmark::SP) ? 9 : 8;
}

std::uint32_t
largeConfigRanks(Benchmark b)
{
    (void)b;
    return 16;
}

namespace {

/** Floor of log2 (n must be > 0). */
std::uint32_t
ilog2(std::uint32_t n)
{
    std::uint32_t l = 0;
    while (n >>= 1)
        ++l;
    return l;
}

bool
isPow2(std::uint32_t n)
{
    return n && !(n & (n - 1));
}

/**
 * Incrementally builds a phase-parallel trace: alternating jittered
 * compute gaps and exchange phases, each exchange being one library
 * call (one callId shared across ranks and iterations of the same call
 * site).
 */
class TraceBuilder
{
  public:
    TraceBuilder(std::string name, std::uint32_t ranks, std::uint64_t seed,
                 double skew, std::int64_t compute_per_rank)
        : _trace(std::move(name), ranks), _rng(seed), _skew(skew),
          _gap(compute_per_rank)
    {
    }

    /** Reserve a stable call-site id (call once per site, reuse). */
    std::uint32_t
    newCallSite()
    {
        return _nextCall++;
    }

    /** Jittered compute gap on every rank (models time skew). */
    void
    computePhase(double scale = 1.0)
    {
        for (core::ProcId r = 0; r < _trace.numRanks(); ++r) {
            const double jitter =
                1.0 + _skew * (2.0 * _rng.uniform() - 1.0);
            const auto cycles = static_cast<std::int64_t>(
                static_cast<double>(_gap) * scale * jitter);
            _trace.push(r, TraceOp::compute(std::max<std::int64_t>(
                               cycles, 1)));
        }
    }

    /**
     * One exchange phase: every (src, dst) pair in @p pairs moves
     * @p bytes under call site @p call. Each rank posts its sends, then
     * its receives (eager-send semantics keep this deadlock-free).
     */
    void
    exchange(std::uint32_t call,
             const std::vector<core::Comm> &pairs, std::uint64_t bytes)
    {
        for (core::ProcId r = 0; r < _trace.numRanks(); ++r) {
            for (const auto &c : pairs) {
                if (c.src == r)
                    _trace.push(r, TraceOp::send(c.dst, bytes, call));
            }
        }
        for (core::ProcId r = 0; r < _trace.numRanks(); ++r) {
            for (const auto &c : pairs) {
                if (c.dst == r)
                    _trace.push(r, TraceOp::recv(c.src, bytes, call));
            }
        }
    }

    Trace
    take()
    {
        _trace.validateMatching();
        return std::move(_trace);
    }

  private:
    Trace _trace;
    Rng _rng;
    double _skew;
    std::int64_t _gap;
    std::uint32_t _nextCall = 0;
};

/** Resolved per-benchmark parameters. */
struct Params
{
    std::uint64_t bytes;
    std::int64_t computeTotal; ///< per phase, across all ranks
    std::uint32_t iterations;
};

Params
resolve(const NasConfig &cfg, std::uint64_t def_bytes,
        std::int64_t def_compute, std::uint32_t iter_factor)
{
    Params p;
    p.bytes = cfg.bytesScale ? cfg.bytesScale : def_bytes;
    p.computeTotal = cfg.computeScale ? cfg.computeScale : def_compute;
    p.iterations = std::max<std::uint32_t>(1, cfg.iterations * iter_factor);
    return p;
}

/** ADI-sweep generator shared by BT and SP. */
Trace
generateAdi(const NasConfig &cfg, const char *name, std::uint64_t def_bytes,
            std::int64_t def_compute, std::uint32_t iter_factor)
{
    const std::uint32_t ranks = cfg.ranks;
    const auto q = static_cast<std::uint32_t>(
        std::lround(std::sqrt(static_cast<double>(ranks))));
    if (q * q != ranks)
        fatal(name, " requires a square number of ranks, got ", ranks);
    const Params prm = resolve(cfg, def_bytes, def_compute, iter_factor);

    TraceBuilder b(name, ranks, cfg.seed, cfg.skew,
                   prm.computeTotal / ranks);
    auto rankAt = [q](std::uint32_t row, std::uint32_t col) {
        return static_cast<core::ProcId>(row * q + col);
    };

    // Call sites: 6 sweep shifts + 2 face-exchange calls.
    struct Shift
    {
        std::int32_t dr, dc;
    };
    const std::vector<Shift> shifts = {{0, 1},  {0, -1}, {1, 0},
                                       {-1, 0}, {1, 1},  {-1, -1}};
    std::vector<std::uint32_t> sweepCalls;
    for (std::size_t i = 0; i < shifts.size(); ++i)
        sweepCalls.push_back(b.newCallSite());
    // copy_faces: one call per face direction. (Combining directions
    // into one call would model NPB's concurrent face pushes more
    // aggressively, but every combined direction adds a conflicting
    // out-communication per processor and inflates the generated
    // network's link budget far beyond the paper's 75%-of-mesh range;
    // see EXPERIMENTS.md for the ablation.)
    const std::uint32_t faceXp = b.newCallSite();
    const std::uint32_t faceXm = b.newCallSite();
    const std::uint32_t faceYp = b.newCallSite();
    const std::uint32_t faceYm = b.newCallSite();

    auto shiftPairs = [&](const Shift &sh) {
        std::vector<core::Comm> pairs;
        for (std::uint32_t row = 0; row < q; ++row) {
            for (std::uint32_t col = 0; col < q; ++col) {
                const std::uint32_t nr = (row + q +
                                          static_cast<std::uint32_t>(
                                              (sh.dr + static_cast<std::int32_t>(q)) % static_cast<std::int32_t>(q))) % q;
                const std::uint32_t nc =
                    (col + static_cast<std::uint32_t>(
                               (sh.dc + static_cast<std::int32_t>(q)) %
                               static_cast<std::int32_t>(q))) %
                    q;
                pairs.emplace_back(rankAt(row, col), rankAt(nr, nc));
            }
        }
        return pairs;
    };

    for (std::uint32_t it = 0; it < prm.iterations; ++it) {
        b.computePhase(1.0);
        b.exchange(faceXp, shiftPairs(Shift{0, 1}), prm.bytes / 2);
        b.exchange(faceXm, shiftPairs(Shift{0, -1}), prm.bytes / 2);
        b.computePhase(0.25);
        b.exchange(faceYp, shiftPairs(Shift{1, 0}), prm.bytes / 2);
        b.exchange(faceYm, shiftPairs(Shift{-1, 0}), prm.bytes / 2);
        for (std::size_t i = 0; i < shifts.size(); ++i) {
            b.computePhase(0.5);
            b.exchange(sweepCalls[i], shiftPairs(shifts[i]), prm.bytes);
        }
    }
    return b.take();
}

} // namespace

Trace
generateBT(const NasConfig &cfg)
{
    return generateAdi(cfg, "BT", 12288, 220'000, 1);
}

Trace
generateSP(const NasConfig &cfg)
{
    return generateAdi(cfg, "SP", 6144, 110'000, 2);
}

Trace
generateCG(const NasConfig &cfg)
{
    const std::uint32_t ranks = cfg.ranks;
    if (!isPow2(ranks))
        fatal("CG requires a power-of-two rank count, got ", ranks);
    const Params prm = resolve(cfg, 16384, 260'000, 1);

    // NPB CG layout: cols = 2^ceil(l2/2), rows = ranks / cols.
    const std::uint32_t l2 = ilog2(ranks);
    const std::uint32_t cols = 1u << ((l2 + 1) / 2);
    const std::uint32_t rows = ranks / cols;

    TraceBuilder b("CG", ranks, cfg.seed, cfg.skew,
                   prm.computeTotal / ranks);
    auto rankAt = [cols](std::uint32_t row, std::uint32_t col) {
        return static_cast<core::ProcId>(row * cols + col);
    };

    std::vector<std::uint32_t> reduceCalls;
    const std::uint32_t reducePhases = ilog2(cols);
    for (std::uint32_t k = 0; k < reducePhases; ++k)
        reduceCalls.push_back(b.newCallSite());
    const std::uint32_t transposeCall = b.newCallSite();

    // Reduce phase k: exchange with the row-mate whose column differs
    // in bit k (full permutation within each row).
    auto reducePairs = [&](std::uint32_t k) {
        std::vector<core::Comm> pairs;
        for (std::uint32_t row = 0; row < rows; ++row) {
            for (std::uint32_t col = 0; col < cols; ++col) {
                const std::uint32_t partner = col ^ (1u << k);
                pairs.emplace_back(rankAt(row, col), rankAt(row, partner));
            }
        }
        return pairs;
    };

    // Transpose phase: square grids exchange (r, c) <-> (c, r) with the
    // diagonal silent (the partial permutation of the paper's Figure 1);
    // non-square grids pair rank i with i + ranks/2.
    auto transposePairs = [&]() {
        std::vector<core::Comm> pairs;
        if (rows == cols) {
            for (std::uint32_t row = 0; row < rows; ++row) {
                for (std::uint32_t col = 0; col < cols; ++col) {
                    if (row != col)
                        pairs.emplace_back(rankAt(row, col),
                                           rankAt(col, row));
                }
            }
        } else {
            for (std::uint32_t r = 0; r < ranks; ++r) {
                pairs.emplace_back(static_cast<core::ProcId>(r),
                                   static_cast<core::ProcId>(
                                       (r + ranks / 2) % ranks));
            }
        }
        return pairs;
    };

    for (std::uint32_t it = 0; it < prm.iterations; ++it) {
        for (std::uint32_t k = 0; k < reducePhases; ++k) {
            b.computePhase(1.0);
            b.exchange(reduceCalls[k], reducePairs(k), prm.bytes);
        }
        b.computePhase(0.5);
        b.exchange(transposeCall, transposePairs(), prm.bytes);
    }
    return b.take();
}

Trace
generateFFT(const NasConfig &cfg)
{
    const std::uint32_t ranks = cfg.ranks;
    const Params prm = resolve(cfg, 8192, 600'000, 1);

    // Most-square 2-D blocking grid.
    std::uint32_t cols = 1;
    for (std::uint32_t d = 1; d * d <= ranks; ++d) {
        if (ranks % d == 0)
            cols = ranks / d;
    }
    const std::uint32_t rows = ranks / cols;

    TraceBuilder b("FFT", ranks, cfg.seed, cfg.skew,
                   prm.computeTotal / ranks);
    auto rankAt = [cols](std::uint32_t row, std::uint32_t col) {
        return static_cast<core::ProcId>(row * cols + col);
    };

    if (!isPow2(rows) || !isPow2(cols))
        fatal("FFT requires power-of-two grid dims, got ", rows, "x",
              cols);

    // Personalized all-to-all via the pairwise-exchange (XOR) schedule:
    // phase j, every rank swaps its block with rank XOR j inside the
    // group. Each phase is one library call and thus one contention
    // period (this is how the hand-instrumented transposes appear in
    // MPE logs).
    std::vector<std::uint32_t> rowCalls;
    for (std::uint32_t j = 1; j < cols; ++j)
        rowCalls.push_back(b.newCallSite());
    std::vector<std::uint32_t> colCalls;
    for (std::uint32_t j = 1; j < rows; ++j)
        colCalls.push_back(b.newCallSite());

    auto rowPhase = [&](std::uint32_t j) {
        std::vector<core::Comm> pairs;
        for (std::uint32_t row = 0; row < rows; ++row) {
            for (std::uint32_t col = 0; col < cols; ++col)
                pairs.emplace_back(rankAt(row, col),
                                   rankAt(row, col ^ j));
        }
        return pairs;
    };
    auto colPhase = [&](std::uint32_t j) {
        std::vector<core::Comm> pairs;
        for (std::uint32_t col = 0; col < cols; ++col) {
            for (std::uint32_t row = 0; row < rows; ++row)
                pairs.emplace_back(rankAt(row, col),
                                   rankAt(row ^ j, col));
        }
        return pairs;
    };

    for (std::uint32_t it = 0; it < prm.iterations; ++it) {
        b.computePhase(1.0);
        for (std::uint32_t j = 1; j < cols; ++j)
            b.exchange(rowCalls[j - 1], rowPhase(j), prm.bytes);
        b.computePhase(1.0);
        for (std::uint32_t j = 1; j < rows; ++j)
            b.exchange(colCalls[j - 1], colPhase(j), prm.bytes);
    }
    return b.take();
}

Trace
generateMG(const NasConfig &cfg)
{
    const std::uint32_t ranks = cfg.ranks;
    if (!isPow2(ranks))
        fatal("MG requires a power-of-two rank count, got ", ranks);
    const Params prm = resolve(cfg, 2048, 500'000, 1);

    // NPB MG decomposes the grid in 3-D: spread the rank bits over the
    // three dimensions round-robin (16 -> 4x2x2, 8 -> 2x2x2).
    const std::uint32_t bits = ilog2(ranks);
    std::uint32_t dimBits[3] = {0, 0, 0};
    for (std::uint32_t i = 0; i < bits; ++i)
        ++dimBits[i % 3];
    const std::uint32_t dx = 1u << dimBits[0];
    const std::uint32_t dy = 1u << dimBits[1];
    const std::uint32_t dz = 1u << dimBits[2];
    const std::uint32_t levels = bits;

    TraceBuilder b("MG", ranks, cfg.seed, cfg.skew,
                   prm.computeTotal / ranks);

    auto rankAt = [dx, dy](std::uint32_t x, std::uint32_t y,
                           std::uint32_t z) {
        return static_cast<core::ProcId>(x + dx * (y + dy * z));
    };

    // comm3-style boundary exchange: one call per (dimension,
    // direction); every rank sends its face to the wrapped neighbor.
    auto faceShift = [&](std::uint32_t dim, bool up) {
        std::vector<core::Comm> pairs;
        const std::uint32_t size[3] = {dx, dy, dz};
        for (std::uint32_t z = 0; z < dz; ++z) {
            for (std::uint32_t y = 0; y < dy; ++y) {
                for (std::uint32_t x = 0; x < dx; ++x) {
                    std::uint32_t q[3] = {x, y, z};
                    q[dim] = up ? (q[dim] + 1) % size[dim]
                                : (q[dim] + size[dim] - 1) % size[dim];
                    const auto peer = rankAt(q[0], q[1], q[2]);
                    const auto self = rankAt(x, y, z);
                    if (peer != self)
                        pairs.emplace_back(self, peer);
                }
            }
        }
        return pairs;
    };

    // The residual-norm reduction: one pairwise-exchange phase per rank
    // bit (recursive doubling), each phase a separate call site.
    auto reducePhase = [&](std::uint32_t k) {
        std::vector<core::Comm> pairs;
        for (std::uint32_t r = 0; r < ranks; ++r) {
            pairs.emplace_back(static_cast<core::ProcId>(r),
                               static_cast<core::ProcId>(r ^ (1u << k)));
        }
        return pairs;
    };

    // Call sites: per (dim, direction) boundary exchange (shared across
    // levels: same pattern, smaller messages) plus the reduce phases.
    std::uint32_t faceCalls[3][2];
    for (std::uint32_t d = 0; d < 3; ++d) {
        faceCalls[d][0] = b.newCallSite();
        faceCalls[d][1] = b.newCallSite();
    }
    std::vector<std::uint32_t> reduceCalls;
    for (std::uint32_t k = 0; k < bits; ++k)
        reduceCalls.push_back(b.newCallSite());

    const std::uint32_t sizes[3] = {dx, dy, dz};
    for (std::uint32_t it = 0; it < prm.iterations; ++it) {
        // V-cycle: boundary exchanges at every level, message size
        // shrinking with depth (short messages dominate, as the paper
        // notes for MG).
        for (std::uint32_t l = 0; l < levels; ++l) {
            const std::uint64_t bytes =
                std::max<std::uint64_t>(prm.bytes >> l, 64);
            b.computePhase(1.0 / static_cast<double>(l + 1));
            for (std::uint32_t d = 0; d < 3; ++d) {
                if (sizes[d] < 2)
                    continue;
                b.exchange(faceCalls[d][0], faceShift(d, true), bytes);
                if (sizes[d] > 2) {
                    // A 2-ring's up and down neighbors coincide; skip
                    // the redundant opposite call.
                    b.exchange(faceCalls[d][1], faceShift(d, false),
                               bytes);
                }
            }
        }
        b.computePhase(0.5);
        for (std::uint32_t k = 0; k < bits; ++k)
            b.exchange(reduceCalls[k], reducePhase(k), 64);
    }
    return b.take();
}

Trace
generateBenchmark(Benchmark bench, const NasConfig &config)
{
    switch (bench) {
      case Benchmark::BT:
        return generateBT(config);
      case Benchmark::CG:
        return generateCG(config);
      case Benchmark::FFT:
        return generateFFT(config);
      case Benchmark::MG:
        return generateMG(config);
      case Benchmark::SP:
        return generateSP(config);
    }
    panic("generateBenchmark: bad enum");
}

} // namespace minnoc::trace
