/**
 * @file
 * Synthetic traffic generators for open-loop network evaluation.
 *
 * The paper evaluates with application traces; a network library is
 * also expected to support the classic open-loop methodology — inject
 * packets under a Bernoulli process at a configurable offered load and
 * plot latency versus load. These generators produce the standard
 * spatial patterns (uniform random, bit-transpose, bit-reversal,
 * hotspot, nearest-neighbor) as plain Traces so they run through the
 * same trace-driven engine.
 *
 * Open-loop fidelity note: the trace engine's sends are blocking, so
 * very high offered loads self-throttle at the injection port exactly
 * like a real NI back-pressuring a core.
 */

#ifndef MINNOC_TRACE_SYNTHETIC_HPP
#define MINNOC_TRACE_SYNTHETIC_HPP

#include <cstdint>
#include <vector>

#include "trace.hpp"

namespace minnoc::trace {

/** Spatial distribution of synthetic destinations. */
enum class Pattern {
    UniformRandom, ///< destination uniform over all other nodes
    Transpose,     ///< (x, y) -> (y, x) on the square grid
    BitReversal,   ///< reverse the bits of the node index
    Hotspot,       ///< a fraction of traffic targets node 0
    Neighbor,      ///< +1 ring neighbor
};

/** Name string for reports. */
std::string patternName(Pattern p);

/** Inverse of patternName; fails via fatal() on an unknown name. */
Pattern patternFromName(const std::string &name);

/** Synthetic-traffic knobs. */
struct SyntheticConfig
{
    std::uint32_t ranks = 16;
    Pattern pattern = Pattern::UniformRandom;

    /**
     * Offered load as the probability that a node starts a new packet
     * injection each "slot" of `slotCycles` cycles; 1.0 saturates the
     * injection port for the configured packet size.
     */
    double load = 0.1;

    /** Packet payload bytes. */
    std::uint64_t bytes = 64;

    /** Number of injection slots simulated per node. */
    std::uint32_t slots = 200;

    /** Cycles per injection slot (>= packet serialization time). */
    std::uint32_t slotCycles = 32;

    /** Fraction of hotspot traffic aimed at node 0 (Hotspot only). */
    double hotspotFraction = 0.3;

    std::uint64_t seed = 1;
};

/**
 * Generate an open-loop synthetic trace: each rank alternates short
 * compute slots with probabilistic sends; receives are posted at the
 * end so they never block injection (sink semantics).
 */
Trace generateSynthetic(const SyntheticConfig &config);

/** Multi-phase synthetic workload knobs. */
struct PhaseShiftConfig
{
    std::uint32_t ranks = 16;

    /** Bulk-synchronous iterations per pattern epoch. */
    std::uint32_t itersPerPhase = 8;

    /**
     * Distinct call sites each epoch cycles through (iteration i of
     * epoch e uses callId e * sitesPerPhase + i % sitesPerPhase), so
     * sites repeat within an epoch — the ground truth the segmenter's
     * call-set Jaccard term detects — and never across epochs.
     */
    std::uint32_t sitesPerPhase = 4;

    /** Payload bytes per message. */
    std::uint64_t bytes = 256;

    /** Compute cycles each rank burns before sending, per iteration. */
    std::int64_t computeCycles = 64;

    /** Fraction of hotspot traffic aimed at node 0 (Hotspot epochs). */
    double hotspotFraction = 0.3;

    std::uint64_t seed = 1;
};

/**
 * Phase-shift workload: one bulk-synchronous epoch per entry of
 * @p patterns, in order (e.g. neighbor -> transpose -> hotspot), each
 * with its own callId range. Ground-truth fixture for the phase
 * segmenter: the pattern changes exactly at the epoch boundaries.
 */
Trace phaseShift(const std::vector<Pattern> &patterns,
                 const PhaseShiftConfig &config = {});

} // namespace minnoc::trace

#endif // MINNOC_TRACE_SYNTHETIC_HPP
