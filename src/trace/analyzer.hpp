/**
 * @file
 * Communication-pattern analyzer (paper Sections 2-4).
 *
 * Converts an execution trace into the contention model's inputs, two
 * ways:
 *  - idealReplay(): a contention-free logical replay that assigns every
 *    message its start/finish times (Definition 2), from which the
 *    sweep-based clique extraction of CommPattern can run; and
 *  - analyzeByCall(): the paper's practical method — communications
 *    issued by the same library call (same callId) across all ranks are
 *    assumed synchronized and form one contention period.
 */

#ifndef MINNOC_TRACE_ANALYZER_HPP
#define MINNOC_TRACE_ANALYZER_HPP

#include "core/clique_set.hpp"
#include "core/comm_pattern.hpp"
#include "trace.hpp"

namespace minnoc::trace {

/** Logical replay cost model (contention-free, LogP-flavored). */
struct ReplayModel
{
    /** Payload bandwidth in bytes per cycle (32-bit flits). */
    double bytesPerCycle = 4.0;
    /** Software send/receive overhead in cycles (paper: 10). */
    double overhead = 10.0;
    /** Base wire latency charged per message. */
    double wireLatency = 1.0;
};

/**
 * Replay @p trace on an ideal (contention-free) machine and return the
 * resulting timed communication pattern. Panics if the trace deadlocks
 * (a recv whose matching send can never be issued).
 */
core::CommPattern idealReplay(const Trace &trace,
                              const ReplayModel &model = {});

/**
 * The paper's extraction method: group sends by library-call id, one
 * contention period (clique) per call, duplicates collapsed.
 *
 * @param reduce_to_maximum drop cliques covered by a superset clique
 */
core::CliqueSet analyzeByCall(const Trace &trace,
                              bool reduce_to_maximum = true);

} // namespace minnoc::trace

#endif // MINNOC_TRACE_ANALYZER_HPP
