/**
 * @file
 * Execution traces.
 *
 * A Trace is the per-rank timeline of compute and communication
 * operations an application performs — the stand-in for the MPE/MPICH
 * communication-event logs the paper collects on a PC cluster. Each
 * Send/Recv op carries the library-call site id (callId) that the
 * pattern analyzer uses to group communications into contention periods,
 * exactly as the paper groups "calls to the same communication library
 * function across all the processors".
 */

#ifndef MINNOC_TRACE_TRACE_HPP
#define MINNOC_TRACE_TRACE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace minnoc::trace {

/** Kind of one timeline operation. */
enum class OpKind : std::uint8_t {
    Compute, ///< local work for `cycles` cycles
    Send,    ///< blocking send of `bytes` to `peer` (callId tags the site)
    Recv,    ///< blocking receive of `bytes` from `peer`
};

/** One operation on a rank's timeline. */
struct TraceOp
{
    OpKind kind = OpKind::Compute;
    std::int64_t cycles = 0;     ///< Compute only
    core::ProcId peer = core::kNoProc; ///< Send/Recv only
    std::uint64_t bytes = 0;     ///< Send/Recv only
    std::uint32_t callId = 0;    ///< Send/Recv only

    static TraceOp
    compute(std::int64_t c)
    {
        TraceOp op;
        op.kind = OpKind::Compute;
        op.cycles = c;
        return op;
    }

    static TraceOp
    send(core::ProcId peer, std::uint64_t bytes, std::uint32_t call)
    {
        TraceOp op;
        op.kind = OpKind::Send;
        op.peer = peer;
        op.bytes = bytes;
        op.callId = call;
        return op;
    }

    static TraceOp
    recv(core::ProcId peer, std::uint64_t bytes, std::uint32_t call)
    {
        TraceOp op;
        op.kind = OpKind::Recv;
        op.peer = peer;
        op.bytes = bytes;
        op.callId = call;
        return op;
    }

    bool operator==(const TraceOp &o) const = default;
};

/** Per-rank op timelines plus metadata. */
class Trace
{
  public:
    Trace() = default;

    Trace(std::string name, std::uint32_t num_ranks)
        : _name(std::move(name)), _timelines(num_ranks)
    {
    }

    const std::string &name() const { return _name; }
    void name(std::string n) { _name = std::move(n); }

    std::uint32_t
    numRanks() const
    {
        return static_cast<std::uint32_t>(_timelines.size());
    }

    /** Append an op to rank @p r's timeline. */
    void push(core::ProcId r, const TraceOp &op);

    const std::vector<TraceOp> &timeline(core::ProcId r) const;

    /** Total number of Send ops across ranks. */
    std::size_t numSends() const;

    /** Total payload bytes across all Send ops. */
    std::uint64_t totalSendBytes() const;

    /** Total compute cycles across all ranks. */
    std::int64_t totalComputeCycles() const;

    /** Largest callId used plus one (0 for traces with no comms). */
    std::uint32_t numCalls() const;

    /**
     * Structural sanity: every Send has exactly one matching Recv with
     * the same callId/bytes on the peer, and vice versa. Panics with a
     * description on mismatch (generator tests rely on this).
     */
    void validateMatching() const;

    /** Text serialization (one op per line). */
    void save(std::ostream &os) const;

    /** Parse the save() format; throws via fatal() on malformed input. */
    static Trace load(std::istream &is);

    bool operator==(const Trace &o) const = default;

  private:
    std::string _name;
    std::vector<std::vector<TraceOp>> _timelines;
};

} // namespace minnoc::trace

#endif // MINNOC_TRACE_TRACE_HPP
