/**
 * @file
 * The Main Partitioning Algorithm (paper Appendix, Section 3.4).
 *
 * Starting from a single megaswitch connecting every processor, switches
 * violating the design constraints are recursively bisected. After each
 * split, Best_Route redistributes communications between the two halves
 * and an annealing loop moves processors across the fresh cut while the
 * Fast_Color estimate of the required links keeps improving (the paper's
 * default accepts only improving, balance-preserving moves; an optional
 * temperature schedule generalizes this to true simulated annealing).
 */

#ifndef MINNOC_CORE_PARTITIONER_HPP
#define MINNOC_CORE_PARTITIONER_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "design_network.hpp"
#include "util/rng.hpp"

namespace minnoc::core {

/** Design constraints a finished network must satisfy (Section 3.4). */
struct DesignConstraints
{
    /**
     * Maximum node degree: attached processors plus total links over all
     * incident pipes must not exceed this (the paper uses 5, matching a
     * mesh/torus switch).
     */
    std::uint32_t maxDegree = 5;

    /** Optional cap on processors per switch (0 = unconstrained). */
    std::uint32_t maxProcsPerSwitch = 0;

    /** True if switch @p degree / @p procs satisfy the constraints. */
    bool
    satisfied(std::uint32_t degree, std::uint32_t procs) const
    {
        if (degree > maxDegree)
            return false;
        if (maxProcsPerSwitch && procs > maxProcsPerSwitch)
            return false;
        return true;
    }
};

/** Knobs of the partitioning loop. */
struct PartitionerConfig
{
    DesignConstraints constraints;

    /** RNG seed; equal seeds reproduce the same network. */
    std::uint64_t seed = 1;

    /**
     * Maximum processor imbalance tolerated between freshly split
     * switches after a move (the paper uses 2).
     */
    std::uint32_t maxImbalance = 2;

    /** Hard cap on split operations (safety valve; 0 = 4 * numProcs). */
    std::uint32_t maxSplits = 0;

    /**
     * Cap on committed processor moves per split (0 = automatic,
     * 4 * cut size + 8). Needed because Best_Route runs between moves
     * and can make the reverse of a just-committed move look improving
     * again; the paper's greedy loop would oscillate without a bound.
     */
    std::uint32_t maxMovesPerSplit = 0;

    /**
     * Enable a true simulated-annealing acceptance rule: worsening
     * moves are accepted with probability exp(-delta / T). When false
     * (the paper's formulation) only strictly improving moves commit.
     */
    bool anneal = false;
    double annealT0 = 2.0;
    double annealAlpha = 0.85;
    std::uint32_t annealMovesPerLevel = 8;

    /** Run Best_Route after each split / move (paper: yes). */
    bool optimizeRoutes = true;

    /**
     * Run global route consolidation (see consolidateRoutes) before
     * each constraint check. Without it, dense patterns whose direct
     * routes fan out to many switches cannot meet tight degree
     * constraints; with it the partitioner merges compatible traffic
     * onto shared links first and only splits when truly necessary.
     */
    bool consolidate = true;

    /** Consolidation passes per constraint check. */
    std::uint32_t consolidatePasses = 4;

    /**
     * Price pipes as unidirectional channel pairs (fwd + bwd) instead
     * of full-duplex bundles (max of the two). Set when finalization
     * will provision unidirectional links, so the route optimizer
     * actually removes traffic from unused directions.
     */
    bool unidirectionalCost = false;

    /**
     * Above this many processors the partitioner switches to the
     * scalable large-N mode: a deterministic multilevel-bisection
     * pre-partition of the megaswitch (see hier_partitioner.hpp), batch
     * splitting of all violating switches per constraint pass, and the
     * quadratic whole-network refinements (processor-swap polish,
     * switch merging) gated off. At or below the threshold the flat
     * paper path runs unchanged, so paper-scale designs stay
     * byte-identical. 0 disables the hierarchical mode entirely.
     */
    std::uint32_t hierarchicalThreshold = 64;

    /**
     * Leaf group size of the hierarchical pre-partition: recursive
     * bisection stops once every group holds at most this many
     * processors; the constraint loop refines from there.
     */
    std::uint32_t hierarchicalLeaf = 8;

    /** Validate DesignNetwork invariants after every mutation (tests). */
    bool paranoid = false;

    /** True when @p num_procs puts a run into the large-N mode. */
    bool
    largeScale(std::uint32_t num_procs) const
    {
        return hierarchicalThreshold && num_procs > hierarchicalThreshold;
    }
};

/** One entry of the partitioning history (drives the Fig. 5 walkthrough). */
struct PartitionStep
{
    enum class Kind { Split, Move, Reroute, Finalize };
    Kind kind;
    SwitchId a = kNoSwitch; ///< split: original / move: source switch
    SwitchId b = kNoSwitch; ///< split: new switch / move: target switch
    ProcId proc = kNoProc;  ///< move: the processor moved
    std::uint32_t estimatedLinks = 0; ///< total estimate after the step
    std::string note;
};

/** Result of a partitioning run. */
struct PartitionResult
{
    /** True when every switch met the constraints under the estimates. */
    bool feasible = true;
    std::uint32_t numSplits = 0;
    std::uint32_t numMoves = 0;
    /** Move candidates scored across all settle loops (search effort). */
    std::uint64_t movesEvaluated = 0;
    std::vector<PartitionStep> history;
};

/**
 * Runs the main partitioning algorithm on @p net in place.
 *
 * The loop of the paper's appendix: while some switch violates the
 * constraints (by the Fast_Color degree estimate), randomly pick one,
 * split it, Best_Route the halves, then greedily move processors across
 * the cut while the estimated link demand drops and balance holds.
 *
 * Finalization (exact coloring) is a separate step, see finalize.hpp;
 * the methodology driver re-enters this function if exact colors exceed
 * the estimates and re-violate the constraints.
 *
 * @param net the design network to refine
 * @param config algorithm knobs
 * @param rng random source (switch choice, split halves, annealing)
 * @return run statistics and history
 */
PartitionResult partitionNetwork(DesignNetwork &net,
                                 const PartitionerConfig &config, Rng &rng);

/**
 * Convenience single-shot: megaswitch from @p cliques, partition with a
 * fresh Rng seeded from the config.
 */
PartitionResult partitionNetwork(DesignNetwork &net,
                                 const PartitionerConfig &config);

/**
 * One forced bisection of @p si followed by the usual Best_Route and
 * processor-move settling loop (paper steps 5-9). Used by the
 * methodology driver when exact coloring reveals a constraint violation
 * that the Fast_Color estimate missed.
 *
 * @return the id of the new sibling switch.
 */
SwitchId splitAndSettle(DesignNetwork &net, const PartitionerConfig &config,
                        Rng &rng, SwitchId si, PartitionResult &result);

/**
 * Kernighan-Lin style refinement over the whole network: try swapping
 * processor pairs across switches (preserving per-switch counts) and
 * keep swaps that lexicographically reduce (degree violation, links).
 * The split-local move loop cannot see these exchanges once the
 * partition tree is fixed; the partitioner uses it when stuck and the
 * methodology driver uses it as a guarded polish step.
 *
 * @return true if at least one swap was committed.
 */
bool refineProcSwaps(DesignNetwork &net, const DesignConstraints &dc,
                     Rng &rng, std::uint32_t passes);

} // namespace minnoc::core

#endif // MINNOC_CORE_PARTITIONER_HPP
