#include "finalize.hpp"

#include <algorithm>
#include <sstream>

#include "graph/coloring.hpp"
#include "graph/connectivity.hpp"
#include "graph/digraph.hpp"
#include "graph/ugraph.hpp"
#include "util/log.hpp"

namespace minnoc::core {

std::size_t
FinalizedDesign::pipeIndex(const PipeKey &key) const
{
    const auto it = std::lower_bound(
        pipes.begin(), pipes.end(), key,
        [](const FinalizedPipe &p, const PipeKey &k) { return p.key < k; });
    if (it == pipes.end() || !(it->key == key))
        return npos;
    return static_cast<std::size_t>(it - pipes.begin());
}

std::uint32_t
FinalizedDesign::switchDegree(SwitchId s) const
{
    std::uint32_t degree =
        static_cast<std::uint32_t>(switchProcs.at(s).size());
    for (const auto &p : pipes) {
        if (p.key.a == s || p.key.b == s)
            degree += p.links;
    }
    return degree;
}

std::uint32_t
FinalizedDesign::totalLinks() const
{
    std::uint32_t total = 0;
    for (const auto &p : pipes)
        total += p.links;
    return total;
}

std::uint32_t
FinalizedDesign::totalChannels() const
{
    std::uint32_t total = 0;
    for (const auto &p : pipes) {
        if (p.linksFwd == 0 && p.linksBwd == 0)
            total += 2 * p.links; // hand-built duplex designs
        else
            total += p.linksFwd + p.linksBwd;
    }
    return total;
}

std::string
FinalizedDesign::toString() const
{
    std::ostringstream oss;
    oss << "FinalizedDesign(" << numSwitches << " switches, "
        << totalLinks() << " links, colorsExact=" << colorsExact << ")\n";
    for (SwitchId s = 0; s < numSwitches; ++s) {
        oss << "  S" << s << " degree " << switchDegree(s) << " procs {";
        for (std::size_t i = 0; i < switchProcs[s].size(); ++i) {
            if (i)
                oss << ", ";
            oss << switchProcs[s][i];
        }
        oss << "}\n";
    }
    for (const auto &p : pipes) {
        oss << "  pipe S" << p.key.a << "-S" << p.key.b << ": " << p.links
            << " link(s)" << (p.connectivityOnly ? " [connectivity]" : "")
            << "\n";
    }
    return oss.str();
}

namespace {

/**
 * Color one directional comm set of a pipe: build the conflict graph
 * from clique co-occurrence and exact-color it.
 */
graph::Coloring
colorDirection(const CliqueSet &cliques, const CommBitset &comms,
               const FinalizeConfig &config, bool &exact)
{
    const std::vector<CommId> ids = comms.toVector();
    graph::Ugraph cg(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
        for (std::size_t j = i + 1; j < ids.size(); ++j) {
            if (cliques.contend(ids[i], ids[j]))
                cg.addEdge(static_cast<graph::NodeId>(i),
                           static_cast<graph::NodeId>(j));
        }
    }
    bool wasExact = true;
    auto coloring =
        graph::exactColoring(cg, config.exactNodeBudget, &wasExact);
    if (!wasExact)
        exact = false;
    return coloring;
}

} // namespace

FinalizedDesign
finalizeDesign(const DesignNetwork &net, const FinalizeConfig &config)
{
    const CliqueSet &cliques = net.cliques();

    // Compact the switch space: partitioning can leave orphan switches
    // (no processors, no traffic); drop them and renumber. Switches
    // that carry transit routes or processors survive.
    const auto oldCount = static_cast<SwitchId>(net.numSwitches());
    std::vector<bool> used(oldCount, false);
    for (SwitchId s = 0; s < oldCount; ++s) {
        if (!net.procsOf(s).empty())
            used[s] = true;
    }
    for (CommId c = 0; c < cliques.numComms(); ++c) {
        for (const SwitchId s : net.route(c))
            used[s] = true;
    }
    std::vector<SwitchId> remap(oldCount, kNoSwitch);
    SwitchId next = 0;
    for (SwitchId s = 0; s < oldCount; ++s) {
        if (used[s])
            remap[s] = next++;
    }

    FinalizedDesign out;
    out.numProcs = net.numProcs();
    out.numSwitches = next;
    out.switchProcs.resize(next);
    for (SwitchId s = 0; s < oldCount; ++s) {
        if (used[s])
            out.switchProcs[remap[s]] = net.procsOf(s);
    }
    out.procHome.resize(net.numProcs());
    for (ProcId p = 0; p < net.numProcs(); ++p)
        out.procHome[p] = remap[net.homeOf(p)];
    out.routes.resize(cliques.numComms());
    out.comms.resize(cliques.numComms());
    for (CommId c = 0; c < cliques.numComms(); ++c) {
        out.routes[c] = net.route(c);
        for (auto &s : out.routes[c])
            s = remap[s];
        out.comms[c] = cliques.comm(c);
    }

    // Formal coloring per pipe and direction; the physical link count is
    // the max of the two directional chromatic numbers (full-duplex).
    for (const auto &key : net.pipes()) {
        const Pipe &p = net.pipe(key);
        FinalizedPipe fp;
        fp.key = PipeKey(remap[key.a], remap[key.b]);

        const std::vector<CommId> fwdIds = p.fwd.toVector();
        const std::vector<CommId> bwdIds = p.bwd.toVector();
        const auto fwdColoring =
            colorDirection(cliques, p.fwd, config, out.colorsExact);
        const auto bwdColoring =
            colorDirection(cliques, p.bwd, config, out.colorsExact);

        for (std::size_t i = 0; i < fwdIds.size(); ++i)
            fp.fwdLink[fwdIds[i]] = fwdColoring.color[i];
        for (std::size_t i = 0; i < bwdIds.size(); ++i)
            fp.bwdLink[bwdIds[i]] = bwdColoring.color[i];
        fp.links = std::max(fwdColoring.numColors, bwdColoring.numColors);
        if (config.unidirectional) {
            // Each direction only gets the channels it needs.
            fp.linksFwd = fwdColoring.numColors;
            fp.linksBwd = bwdColoring.numColors;
        } else {
            fp.linksFwd = fp.links;
            fp.linksBwd = fp.links;
        }
        if (fp.links == 0)
            continue; // pipe carries nothing; drop it
        out.pipes.push_back(std::move(fp));
    }
    std::sort(out.pipes.begin(), out.pipes.end(),
              [](const FinalizedPipe &x, const FinalizedPipe &y) {
                  return x.key < y.key;
              });

    // Connectivity patch (Definition 1 demands strong connectivity).
    // In duplex mode any pipe provides both directions; in
    // unidirectional mode only provisioned directions count, so an
    // asymmetric design may need extra channels even between already
    // piped switches.
    out.unidirectional = config.unidirectional;
    auto patchConnectivity = [&out]() {
        graph::Digraph sg(out.numSwitches);
        for (const auto &p : out.pipes) {
            if (p.linksFwd > 0)
                sg.addEdge(p.key.a, p.key.b);
            if (p.linksBwd > 0)
                sg.addEdge(p.key.b, p.key.a);
        }
        auto comp = graph::stronglyConnectedComponents(sg);
        std::uint32_t numComp = 0;
        for (const auto c : comp)
            numComp = std::max(numComp, c + 1);
        if (numComp <= 1)
            return false;

        // Close a directed ring over component representatives.
        std::vector<SwitchId> rep(numComp, kNoSwitch);
        for (SwitchId s = 0; s < out.numSwitches; ++s) {
            if (rep[comp[s]] == kNoSwitch)
                rep[comp[s]] = s;
        }
        std::sort(rep.begin(), rep.end());
        for (std::size_t i = 0; i < rep.size(); ++i) {
            const SwitchId a = rep[i];
            const SwitchId b = rep[(i + 1) % rep.size()];
            if (rep.size() == 2 && i == 1)
                break; // two components: one duplex patch suffices
            const PipeKey key(a, b);
            const auto idx = out.pipeIndex(key);
            if (idx == FinalizedDesign::npos) {
                FinalizedPipe fp;
                fp.key = key;
                fp.links = 1;
                fp.linksFwd = 1;
                fp.linksBwd = 1;
                fp.connectivityOnly = true;
                out.pipes.push_back(std::move(fp));
                std::sort(out.pipes.begin(), out.pipes.end(),
                          [](const FinalizedPipe &x,
                             const FinalizedPipe &y) {
                              return x.key < y.key;
                          });
            } else {
                // Pipe exists but lacks a direction: widen it.
                auto &fp = out.pipes[idx];
                if (fp.linksFwd == 0)
                    fp.linksFwd = 1;
                if (fp.linksBwd == 0)
                    fp.linksBwd = 1;
                fp.links = std::max(fp.linksFwd, fp.linksBwd);
            }
        }
        return true;
    };
    // A single pass can merge several components at once; iterate to a
    // fixpoint (bounded by the component count).
    for (std::uint32_t guard = 0; guard <= out.numSwitches; ++guard) {
        if (!patchConnectivity())
            break;
    }

    return out;
}

} // namespace minnoc::core
