/**
 * @file
 * Finalization of a partitioned design (paper Appendix, step 3).
 *
 * Once the partitioning loop settles, the exact number of links per pipe
 * is fixed by formally coloring each pipe's two directional conflict
 * graphs (vertices: communications through the pipe in that direction;
 * edges: pairs that co-occur in some contention clique). Each
 * communication's color picks the physical link it uses on the pipe,
 * which yields a complete link-level source-routing table. Strong
 * connectivity (Definition 1) is restored afterwards if routing demand
 * alone left switch islands.
 */

#ifndef MINNOC_CORE_FINALIZE_HPP
#define MINNOC_CORE_FINALIZE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "design_network.hpp"

namespace minnoc::core {

/** Exact-coloring knobs. */
struct FinalizeConfig
{
    /**
     * Branch-and-bound node budget per conflict graph before falling
     * back to the DSATUR heuristic color count (0 = unlimited).
     */
    std::uint64_t exactNodeBudget = 2'000'000;

    /**
     * Provision unidirectional links instead of full-duplex pairs
     * (paper footnote 1): each pipe direction gets exactly the
     * channels its coloring demands, which saves wires on asymmetric
     * patterns, and strong connectivity of the *directed* switch graph
     * is patched explicitly.
     */
    bool unidirectional = false;
};

/** One finalized pipe: physical link count plus per-comm link choice. */
struct FinalizedPipe
{
    PipeKey key;
    /**
     * Number of full-duplex physical links between the two switches
     * (always max(linksFwd, linksBwd); this is also the pipe's
     * switch-port cost).
     */
    std::uint32_t links = 0;
    /** Channels provisioned a -> b (== links in duplex mode). */
    std::uint32_t linksFwd = 0;
    /** Channels provisioned b -> a (== links in duplex mode). */
    std::uint32_t linksBwd = 0;
    /** Link index used by each comm traversing a -> b. */
    std::map<CommId, std::uint32_t> fwdLink;
    /** Link index used by each comm traversing b -> a. */
    std::map<CommId, std::uint32_t> bwdLink;
    /** True if this pipe exists only to restore connectivity. */
    bool connectivityOnly = false;
};

/**
 * A finished network design: the immutable output of the methodology,
 * consumed by the topology/floorplan layer and the simulator.
 */
struct FinalizedDesign
{
    std::uint32_t numProcs = 0;
    std::uint32_t numSwitches = 0;
    /** Processor list per switch. */
    std::vector<std::vector<ProcId>> switchProcs;
    /** Home switch per processor. */
    std::vector<SwitchId> procHome;
    /** Switch-level route per communication (indexed by CommId). */
    std::vector<std::vector<SwitchId>> routes;
    /** Finalized pipes, sorted by key. */
    std::vector<FinalizedPipe> pipes;
    /** Communications registry (paired with the originating CliqueSet). */
    std::vector<Comm> comms;
    /** True when every conflict graph was colored exactly. */
    bool colorsExact = true;
    /** True when the design provisions unidirectional channels. */
    bool unidirectional = false;

    /** Index of the pipe with @p key, or npos. */
    std::size_t pipeIndex(const PipeKey &key) const;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Exact degree of switch @p s: procs + links over incident pipes. */
    std::uint32_t switchDegree(SwitchId s) const;

    /** Total full-duplex links between switches. */
    std::uint32_t totalLinks() const;

    /** Total directed channels (fwd + bwd over all pipes). */
    std::uint32_t totalChannels() const;

    /** Human-readable dump. */
    std::string toString() const;
};

/**
 * Finalize @p net: exact-color every pipe, assign per-comm links, and
 * patch connectivity. @p net is not modified.
 */
FinalizedDesign finalizeDesign(const DesignNetwork &net,
                               const FinalizeConfig &config = {});

} // namespace minnoc::core

#endif // MINNOC_CORE_FINALIZE_HPP
