#include "route_optimizer.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/log.hpp"

namespace minnoc::core {

namespace {

/** Sum of Fast_Color estimates over a set of pipes. */
std::uint32_t
pipesCost(const DesignNetwork &net, const std::vector<PipeKey> &keys)
{
    std::uint32_t total = 0;
    for (const auto &k : keys)
        total += net.fastColor(k);
    return total;
}

/**
 * Attempt one route edit on @p c: replace the route's segment between
 * positions pos and pos+1 with the given middle switch inserted (detour)
 * or drop the switch at @p pos (straighten, middle == kNoSwitch).
 * Commits only if the summed estimate over affected pipes decreases.
 * @return links saved (0 when rejected).
 */
std::uint32_t
tryEdit(DesignNetwork &net, CommId c, std::size_t pos, SwitchId middle)
{
    const std::vector<SwitchId> oldRoute = net.route(c);
    std::vector<SwitchId> newRoute = oldRoute;

    if (middle != kNoSwitch) {
        // Detour: (a, b) -> (a, middle, b). Skip if middle already on
        // the route; routes must stay simple.
        if (std::find(oldRoute.begin(), oldRoute.end(), middle) !=
            oldRoute.end()) {
            return 0;
        }
        newRoute.insert(newRoute.begin() +
                            static_cast<std::ptrdiff_t>(pos) + 1,
                        middle);
    } else {
        // Straighten: (a, x, b) -> (a, b); pos indexes x. Endpoints are
        // pinned by the processor homes, so only interior removal.
        if (pos == 0 || pos + 1 >= oldRoute.size())
            return 0;
        if (oldRoute[pos - 1] == oldRoute[pos + 1])
            return 0; // would create an immediate repeat
        newRoute.erase(newRoute.begin() + static_cast<std::ptrdiff_t>(pos));
    }

    // Affected pipes: every adjacency that differs between the routes.
    std::vector<PipeKey> affected;
    auto collect = [&affected](const std::vector<SwitchId> &r) {
        for (std::size_t i = 0; i + 1 < r.size(); ++i)
            affected.emplace_back(r[i], r[i + 1]);
    };
    collect(oldRoute);
    collect(newRoute);
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()),
                   affected.end());

    const std::uint32_t before = pipesCost(net, affected);
    net.setRoute(c, newRoute);
    const std::uint32_t after = pipesCost(net, affected);
    if (after < before)
        return before - after;
    net.setRoute(c, oldRoute);
    return 0;
}

/**
 * One Best_Route direction: for every pipe P(s, k) incident to @p s with
 * k != sibling, try detouring each of its communications through the
 * sibling, and try straightening existing detours through the sibling.
 */
void
optimizePipesOf(DesignNetwork &net, SwitchId s, SwitchId sibling,
                RouteOptStats &stats)
{
    for (const auto &key : net.pipesOf(s)) {
        const SwitchId other = (key.a == s) ? key.b : key.a;
        if (other == sibling)
            continue;

        // Snapshot the comm ids first: edits mutate the pipe sets.
        const Pipe &p = net.pipe(key);
        std::vector<CommId> comms = p.fwd.toVector();
        const std::vector<CommId> bwdIds = p.bwd.toVector();
        comms.insert(comms.end(), bwdIds.begin(), bwdIds.end());
        std::sort(comms.begin(), comms.end());
        comms.erase(std::unique(comms.begin(), comms.end()), comms.end());

        for (const CommId c : comms) {
            const auto &r = net.route(c);
            // Find an adjacency (s, other) or (other, s) in the route.
            for (std::size_t i = 0; i + 1 < r.size(); ++i) {
                const bool hits = (r[i] == s && r[i + 1] == other) ||
                                  (r[i] == other && r[i + 1] == s);
                if (!hits)
                    continue;
                ++stats.triedMoves;
                const std::uint32_t saved = tryEdit(net, c, i, sibling);
                if (saved) {
                    ++stats.committedMoves;
                    stats.linksSaved += saved;
                }
                break; // route changed or not; re-scan on next pass
            }
        }
    }

    // Straightening pass: remove detours through the sibling that no
    // longer pay for themselves.
    for (const auto &key : net.pipesOf(sibling)) {
        const Pipe &p = net.pipe(key);
        std::vector<CommId> comms = p.fwd.toVector();
        const std::vector<CommId> bwdIds = p.bwd.toVector();
        comms.insert(comms.end(), bwdIds.begin(), bwdIds.end());
        for (const CommId c : comms) {
            const auto &r = net.route(c);
            for (std::size_t i = 1; i + 1 < r.size(); ++i) {
                if (r[i] != sibling)
                    continue;
                ++stats.triedMoves;
                const std::uint32_t saved = tryEdit(net, c, i, kNoSwitch);
                if (saved) {
                    ++stats.committedMoves;
                    stats.linksSaved += saved;
                }
                break;
            }
        }
    }
}

} // namespace

RouteOptStats
bestRoute(DesignNetwork &net, SwitchId si, SwitchId sj)
{
    RouteOptStats stats;
    if (si == sj)
        panic("bestRoute: si == sj");
    optimizePipesOf(net, si, sj, stats);
    optimizePipesOf(net, sj, si, stats);
    return stats;
}

namespace {

/** Total degree violation over all switches. */
std::uint64_t
degreeViolation(const DesignNetwork &net, std::uint32_t max_degree)
{
    std::uint64_t total = 0;
    for (const auto d : net.estimatedDegrees()) {
        if (d > max_degree)
            total += d - max_degree;
    }
    return total;
}

/**
 * Per-pipe baseline for pricing one communication's reroute: the pipe's
 * directional comm sets with the victim (and its paired reverse)
 * removed, plus memo slots for the with-victim Fast_Color values the
 * Dijkstra hop pricing asks for repeatedly (-1 = not computed yet).
 */
struct PipeBaseline
{
    /**
     * Directional comm sets with the victim removed. Pipes the victims
     * do not cross point straight at the live pipe's sets (valid
     * because pricing only reads them before any route commits); only
     * the handful of pipes on the victims' routes materialize owned
     * victim-free copies. The full-table deep copy this replaces was a
     * top-three profile entry at large N.
     */
    const CommBitset *fwd = nullptr;
    const CommBitset *bwd = nullptr;
    CommBitset ownedFwd; ///< backing storage when the victim crossed
    CommBitset ownedBwd;
    std::uint32_t fcFwd = 0;
    std::uint32_t fcBwd = 0;

    mutable std::int64_t withCFwd = -1;   ///< fastColor(fwd + c)
    mutable std::int64_t withCBwd = -1;   ///< fastColor(bwd + c)
    mutable std::int64_t withRevFwd = -1; ///< fastColor(fwd + rev)
    mutable std::int64_t withRevBwd = -1; ///< fastColor(bwd + rev)

    /** Duplex width: a full-duplex bundle serves both directions. */
    std::uint32_t width() const { return std::max(fcFwd, fcBwd); }

    /** Channel count under unidirectional provisioning. */
    std::uint32_t channels() const { return fcFwd + fcBwd; }
};

/** Sorted pipe-key -> baseline table (keys come sorted from pipes()). */
struct BaselineTable
{
    std::vector<PipeKey> keys;
    std::vector<PipeBaseline> entries;

    const PipeBaseline *
    find(const PipeKey &k) const
    {
        const auto it = std::lower_bound(keys.begin(), keys.end(), k);
        if (it == keys.end() || !(*it == k))
            return nullptr;
        return &entries[static_cast<std::size_t>(it - keys.begin())];
    }
};

/** Pipe-count threshold below which a parallel build is not worth it. */
constexpr std::size_t kParallelBaselineThreshold = 64;

/**
 * Snapshot every existing pipe with @p c (and @p rev when paired)
 * removed. Pipes the victims do not cross keep their live comm sets and
 * reuse the cached Fast_Color values; only the handful of pipes on the
 * victims' routes recompute. With a pool, entries build in parallel
 * chunks (each chunk owns a disjoint slice; the network is only read).
 */
BaselineTable
buildBaseline(const DesignNetwork &net, CommId c, CommId rev,
              ThreadPool *pool)
{
    BaselineTable table;
    std::vector<const Pipe *> live;
    net.forEachPipe([&](const PipeKey &key, const Pipe &p) {
        table.keys.push_back(key);
        live.push_back(&p);
    });
    table.entries.resize(table.keys.size());

    auto build = [&](std::size_t i) {
        const Pipe &p = *live[i];
        PipeBaseline &pb = table.entries[i];
        const bool touched =
            p.fwd.test(c) || p.bwd.test(c) ||
            (rev != CliqueSet::kNoComm &&
             (p.fwd.test(rev) || p.bwd.test(rev)));
        if (!touched) {
            pb.fwd = &p.fwd;
            pb.bwd = &p.bwd;
            const auto [ff, fb] = net.fastColorDirs(p);
            pb.fcFwd = ff;
            pb.fcBwd = fb;
            return;
        }
        pb.ownedFwd = p.fwd;
        pb.ownedBwd = p.bwd;
        pb.ownedFwd.erase(c);
        pb.ownedBwd.erase(c);
        if (rev != CliqueSet::kNoComm) {
            pb.ownedFwd.erase(rev);
            pb.ownedBwd.erase(rev);
        }
        pb.fwd = &pb.ownedFwd;
        pb.bwd = &pb.ownedBwd;
        pb.fcFwd = net.fastColorSet(pb.ownedFwd);
        pb.fcBwd = net.fastColorSet(pb.ownedBwd);
    };

    const std::size_t n = table.keys.size();
    if (pool && n >= kParallelBaselineThreshold) {
        // Workers must never race the lazy caches: force-build the
        // clique masks and clean every pipe's Fast_Color cache first so
        // the parallel section reads shared state without writing it.
        net.cliques().prepareCaches();
        net.totalEstimatedLinks();
        const std::size_t chunks = std::min<std::size_t>(pool->size(), n);
        const std::size_t per = (n + chunks - 1) / chunks;
        pool->parallelFor(chunks, [&](std::size_t chunk) {
            const std::size_t lo = chunk * per;
            const std::size_t hi = std::min(lo + per, n);
            for (std::size_t i = lo; i < hi; ++i)
                build(i);
        });
    } else {
        for (std::size_t i = 0; i < n; ++i)
            build(i);
    }
    return table;
}

/**
 * One consolidation attempt for a single communication. When the
 * opposite-direction communication exists and currently mirrors c's
 * route, the two are priced and rerouted as a joint full-duplex pair —
 * otherwise removing only one of them never shrinks the shared pipe
 * (its width is the max of the two directions) and no move would ever
 * look profitable.
 */
bool
consolidateOne(DesignNetwork &net, CommId c, std::uint32_t max_degree,
               bool uni_cost, ThreadPool *pool)
{
    const std::vector<SwitchId> oldRoute = net.route(c);
    if (oldRoute.size() < 2)
        return false; // intra-switch: nothing to optimize
    const SwitchId src = oldRoute.front();
    const SwitchId dst = oldRoute.back();

    // Pair with the reverse communication when it mirrors this route.
    const CliqueSet &cliques = net.cliques();
    CommId rev = cliques.findComm(cliques.comm(c).reversed());
    if (rev == c)
        rev = CliqueSet::kNoComm;
    if (rev != CliqueSet::kNoComm) {
        std::vector<SwitchId> mirrored(net.route(rev).rbegin(),
                                       net.route(rev).rend());
        if (mirrored != oldRoute)
            rev = CliqueSet::kNoComm; // asymmetric: treat c alone
    }

    // Snapshot every existing pipe with c (and its paired reverse)
    // removed: the baseline network candidate paths are priced against.
    // Pipes are full-duplex bundles: width = max of the directional
    // needs, so a hop riding the empty reverse direction of a busy pipe
    // is free.
    const BaselineTable base = buildBaseline(net, c, rev, pool);

    // Switches already at or beyond the degree budget: hops touching
    // them are penalized so traffic drains away from hubs instead of
    // piling onto them (total-links greed would otherwise happily grow
    // one giant hub switch).
    std::vector<bool> overloaded(net.numSwitches(), false);
    if (max_degree) {
        const auto degrees = net.estimatedDegrees();
        for (SwitchId s = 0; s < net.numSwitches(); ++s)
            overloaded[s] = degrees[s] > max_degree;
    }

    // Marginal link cost of sending c across hop (u, v) — and, when
    // paired, the reverse communication across (v, u). With-victim
    // Fast_Color values memoize in the baseline entry, so repeated
    // relaxations of the same pipe cost one popcount scan total.
    auto hopCost = [&](SwitchId u, SwitchId v) -> std::uint32_t {
        const PipeBaseline *pb = base.find(PipeKey(u, v));
        if (!pb)
            return static_cast<std::uint32_t>(-1); // pipe absent
        const bool forward = u < v;
        std::int64_t &withC = forward ? pb->withCFwd : pb->withCBwd;
        if (withC < 0)
            withC = net.fastColorSetPlus(*(forward ? pb->fwd : pb->bwd),
                                         c);
        const auto fcWith = static_cast<std::uint32_t>(withC);
        std::uint32_t fcOther = forward ? pb->fcBwd : pb->fcFwd;
        if (rev != CliqueSet::kNoComm) {
            std::int64_t &withR = forward ? pb->withRevBwd : pb->withRevFwd;
            if (withR < 0) {
                withR = net.fastColorSetPlus(
                    *(forward ? pb->bwd : pb->fwd), rev);
            }
            fcOther = static_cast<std::uint32_t>(withR);
        }
        if (uni_cost)
            return fcWith + fcOther - pb->channels();
        return std::max(fcWith, fcOther) - pb->width();
    };

    // Weighted hop price: links dominate, overloaded endpoints repel,
    // hop count breaks ties.
    constexpr std::uint64_t kLink = 1024;
    constexpr std::uint64_t kOverload = 64;
    constexpr std::uint64_t kHop = 1;
    auto hopPrice = [&](SwitchId u, SwitchId v) -> std::uint64_t {
        const auto links = hopCost(u, v);
        if (links == static_cast<std::uint32_t>(-1))
            return static_cast<std::uint64_t>(-1) / 4; // pipe absent
        std::uint64_t price = static_cast<std::uint64_t>(links) * kLink +
                              kHop;
        if (max_degree)
            price += kOverload * (overloaded[u] + overloaded[v]);
        return price;
    };

    std::uint64_t currentCost = 0;
    for (std::size_t i = 0; i + 1 < oldRoute.size(); ++i)
        currentCost += hopPrice(oldRoute[i], oldRoute[i + 1]);

    // Dijkstra over existing pipes from src's switch to dst's switch.
    // Neighbor lists come from the sorted key table, so relaxation
    // order matches the old whole-map scan.
    std::vector<std::vector<SwitchId>> adjacent(net.numSwitches());
    for (const auto &key : base.keys) {
        adjacent[key.a].push_back(key.b);
        adjacent[key.b].push_back(key.a);
    }
    std::map<SwitchId, std::uint64_t> dist;
    std::map<SwitchId, SwitchId> parent;
    std::set<std::pair<std::uint64_t, SwitchId>> frontier;
    dist[src] = 0;
    frontier.insert({0, src});
    while (!frontier.empty()) {
        const auto [d, v] = *frontier.begin();
        frontier.erase(frontier.begin());
        if (v == dst)
            break;
        if (d > dist[v])
            continue;
        for (const SwitchId w : adjacent[v]) {
            const std::uint64_t nd = d + hopPrice(v, w);
            const auto it = dist.find(w);
            if (it == dist.end() || nd < it->second) {
                if (it != dist.end())
                    frontier.erase({it->second, w});
                dist[w] = nd;
                parent[w] = v;
                frontier.insert({nd, w});
            }
        }
    }
    const auto dit = dist.find(dst);
    if (dit == dist.end() || dit->second >= currentCost)
        return false;

    // Reconstruct and commit the cheaper path (both directions when
    // paired). With a degree budget in force, revert any commit that
    // worsens the total degree violation — link savings must not undo
    // repairDegrees' spreading.
    std::vector<SwitchId> path{dst};
    while (path.back() != src)
        path.push_back(parent.at(path.back()));
    std::reverse(path.begin(), path.end());
    if (path == oldRoute)
        return false;
    const std::uint64_t violBefore =
        max_degree ? degreeViolation(net, max_degree) : 0;
    const std::vector<SwitchId> oldRev =
        rev != CliqueSet::kNoComm ? net.route(rev)
                                  : std::vector<SwitchId>{};
    net.setRoute(c, path);
    if (rev != CliqueSet::kNoComm) {
        net.setRoute(rev,
                     std::vector<SwitchId>(path.rbegin(), path.rend()));
    }
    if (max_degree && degreeViolation(net, max_degree) > violBefore) {
        net.setRoute(c, oldRoute);
        if (rev != CliqueSet::kNoComm)
            net.setRoute(rev, oldRev);
        return false;
    }
    return true;
}

} // namespace

namespace {

/**
 * Propose an alternative route for @p c (and commit its mirrored pair
 * when applicable) that avoids overloaded switches, then keep it only
 * if the global (violation, links) measure improves.
 */
bool
repairOne(DesignNetwork &net, CommId c, std::uint32_t max_degree,
          ThreadPool *pool)
{
    const std::vector<SwitchId> oldRoute = net.route(c);
    if (oldRoute.size() < 2)
        return false;
    const SwitchId src = oldRoute.front();
    const SwitchId dst = oldRoute.back();

    // One bulk degree pass feeds both the overload map and the spare
    // budget (for pricing new pipes).
    const auto degrees = net.estimatedDegrees();
    std::vector<bool> overloaded(net.numSwitches(), false);
    std::vector<std::int64_t> spare(net.numSwitches(), 0);
    bool touches = false;
    for (SwitchId s = 0; s < net.numSwitches(); ++s) {
        overloaded[s] = degrees[s] > max_degree;
        spare[s] = static_cast<std::int64_t>(max_degree) -
                   static_cast<std::int64_t>(degrees[s]);
    }
    for (const SwitchId s : oldRoute)
        touches |= overloaded[s];
    if (!touches)
        return false;

    // Pair with the mirrored reverse comm (full-duplex pipes).
    const CliqueSet &cliques = net.cliques();
    CommId rev = cliques.findComm(cliques.comm(c).reversed());
    if (rev == c)
        rev = CliqueSet::kNoComm;
    if (rev != CliqueSet::kNoComm) {
        std::vector<SwitchId> mirrored(net.route(rev).rbegin(),
                                       net.route(rev).rend());
        if (mirrored != oldRoute)
            rev = CliqueSet::kNoComm;
    }

    // Baseline pipe state with the victim pair removed, so candidate
    // hops can be priced by their marginal width contribution (riding
    // an existing link conflict-free is much cheaper than widening).
    const BaselineTable base = buildBaseline(net, c, rev, pool);

    // Dijkstra proposal: width widening is expensive, overloaded
    // interiors are avoided hard, a new pipe is allowed when both ends
    // have spare degree.
    constexpr std::uint64_t kAvoid = 1ull << 20;
    constexpr std::uint64_t kLink = 1024;
    constexpr std::uint64_t kNewPipe = 512;
    constexpr std::uint64_t kHop = 1;
    auto price = [&](SwitchId u, SwitchId v) -> std::uint64_t {
        std::uint64_t p = kHop;
        const PipeBaseline *pb = base.find(PipeKey(u, v));
        if (!pb) {
            // New pipe: one fresh link, both endpoints must afford it.
            if (spare[u] < 1 || spare[v] < 1)
                return static_cast<std::uint64_t>(-1) / 8;
            p += kLink + kNewPipe;
        } else {
            const bool forward = u < v;
            std::int64_t &withC = forward ? pb->withCFwd : pb->withCBwd;
            if (withC < 0) {
                withC = net.fastColorSetPlus(
                    *(forward ? pb->fwd : pb->bwd), c);
            }
            const auto fcWith = static_cast<std::uint32_t>(withC);
            std::uint32_t fcOther = forward ? pb->fcBwd : pb->fcFwd;
            if (rev != CliqueSet::kNoComm) {
                std::int64_t &withR =
                    forward ? pb->withRevBwd : pb->withRevFwd;
                if (withR < 0) {
                    withR = net.fastColorSetPlus(
                        *(forward ? pb->bwd : pb->fwd), rev);
                }
                fcOther = static_cast<std::uint32_t>(withR);
            }
            const std::uint32_t widen =
                std::max(fcWith, fcOther) - pb->width();
            p += static_cast<std::uint64_t>(widen) * kLink;
            // Widening a pipe consumes endpoint degree too.
            if (widen && (spare[u] < 1 || spare[v] < 1) &&
                !(overloaded[u] || overloaded[v])) {
                p += kNewPipe;
            }
        }
        if (v != dst && overloaded[v])
            p += kAvoid;
        if (u != src && overloaded[u])
            p += kAvoid;
        return p;
    };

    // Large-N mode swaps the complete-graph relaxation (every popped
    // vertex prices an edge to every other switch — O(S^2) per comm,
    // the single hottest loop in profile at 256+ ranks) for a sparse
    // one: existing pipes come from the baseline's key list, and
    // new-pipe offers — whose price is uniform over targets up to the
    // two overload surcharges — are broadcast at most once per penalty
    // class, from the first (hence cheapest) popped vertex of that
    // class. Offers from spare-less vertices (priced effectively
    // infinite in the dense path) are dropped entirely: a repair that
    // could only route through them would never survive the acceptance
    // check anyway. Small nets keep the dense loop so existing designs
    // reproduce byte for byte.
    const bool sparseRelax = net.numProcs() > 64;
    std::vector<std::vector<SwitchId>> adj;
    if (sparseRelax) {
        adj.assign(net.numSwitches(), {});
        for (const PipeKey &k : base.keys) {
            adj[k.a].push_back(k.b);
            adj[k.b].push_back(k.a);
        }
    }

    std::map<SwitchId, std::uint64_t> dist;
    std::map<SwitchId, SwitchId> parent;
    std::set<std::pair<std::uint64_t, SwitchId>> frontier;
    dist[src] = 0;
    frontier.insert({0, src});
    auto relax = [&](SwitchId w, std::uint64_t nd, SwitchId from) {
        const auto it = dist.find(w);
        if (it == dist.end() || nd < it->second) {
            if (it != dist.end())
                frontier.erase({it->second, w});
            dist[w] = nd;
            parent[w] = from;
            frontier.insert({nd, w});
        }
    };
    bool bulkDone[2] = {false, false};
    while (!frontier.empty()) {
        const auto [d, v] = *frontier.begin();
        frontier.erase(frontier.begin());
        if (v == dst)
            break;
        if (d > dist[v])
            continue;
        if (!sparseRelax) {
            for (SwitchId w = 0; w < net.numSwitches(); ++w) {
                if (w == v)
                    continue;
                relax(w, d + price(v, w), v);
            }
            continue;
        }
        for (const SwitchId w : adj[v])
            relax(w, d + price(v, w), v);
        if (spare[v] < 1)
            continue;
        const bool pen = v != src && overloaded[v];
        if (bulkDone[pen])
            continue; // a cheaper same-class vertex already broadcast
        bulkDone[pen] = true;
        const std::uint64_t basePrice =
            d + kHop + kLink + kNewPipe + (pen ? kAvoid : 0);
        for (SwitchId w = 0; w < net.numSwitches(); ++w) {
            if (w == v || spare[w] < 1)
                continue;
            const std::uint64_t surcharge =
                w != dst && overloaded[w] ? kAvoid : 0;
            relax(w, basePrice + surcharge, v);
        }
    }
    if (!dist.count(dst))
        return false;
    std::vector<SwitchId> path{dst};
    while (path.back() != src)
        path.push_back(parent.at(path.back()));
    std::reverse(path.begin(), path.end());
    if (path == oldRoute)
        return false;

    // Trial apply; accept only if (violation, links) improves.
    const std::uint64_t violBefore = degreeViolation(net, max_degree);
    const std::uint32_t linksBefore = net.totalEstimatedLinks();
    const std::vector<SwitchId> oldRev =
        rev != CliqueSet::kNoComm ? net.route(rev)
                                  : std::vector<SwitchId>{};
    net.setRoute(c, path);
    if (rev != CliqueSet::kNoComm) {
        net.setRoute(rev,
                     std::vector<SwitchId>(path.rbegin(), path.rend()));
    }
    const std::uint64_t violAfter = degreeViolation(net, max_degree);
    const std::uint32_t linksAfter = net.totalEstimatedLinks();
    // Feasibility buys link slack: shedding a violation is worth up to
    // one extra link (consolidation claws links back afterwards).
    const bool accept =
        (violAfter < violBefore && linksAfter <= linksBefore + 1) ||
        (violAfter == violBefore && linksAfter < linksBefore);
    if (!accept) {
        net.setRoute(c, oldRoute);
        if (rev != CliqueSet::kNoComm)
            net.setRoute(rev, oldRev);
        return false;
    }
    return true;
}

} // namespace

RouteOptStats
repairDegrees(DesignNetwork &net, std::uint32_t max_degree,
              std::uint32_t max_passes, Rng *rng, ThreadPool *pool)
{
    RouteOptStats stats;
    const auto numComms =
        static_cast<CommId>(net.cliques().numComms());
    std::vector<CommId> order(numComms);
    for (CommId c = 0; c < numComms; ++c)
        order[c] = c;
    for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
        if (degreeViolation(net, max_degree) == 0)
            break;
        if (rng)
            rng->shuffle(order);
        bool changed = false;
        for (const CommId c : order) {
            ++stats.triedMoves;
            if (repairOne(net, c, max_degree, pool)) {
                ++stats.committedMoves;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return stats;
}

RouteOptStats
consolidateRoutes(DesignNetwork &net, std::uint32_t max_passes,
                  std::uint32_t max_degree, Rng *rng, bool uni_cost,
                  ThreadPool *pool)
{
    RouteOptStats stats;
    const auto numComms =
        static_cast<CommId>(net.cliques().numComms());
    std::vector<CommId> order(numComms);
    for (CommId c = 0; c < numComms; ++c)
        order[c] = c;
    for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
        const std::uint32_t before = net.totalEstimatedLinks();
        if (rng)
            rng->shuffle(order);
        bool changed = false;
        for (const CommId c : order) {
            ++stats.triedMoves;
            if (consolidateOne(net, c, max_degree, uni_cost, pool)) {
                ++stats.committedMoves;
                changed = true;
            }
        }
        const std::uint32_t after = net.totalEstimatedLinks();
        stats.linksSaved += before > after ? before - after : 0;
        if (!changed)
            break;
    }
    return stats;
}

} // namespace minnoc::core
