/**
 * @file
 * Best_Route (paper Appendix): after a switch split, try indirect routes
 * through the sibling switch wherever that lowers the estimated number
 * of links the affected pipes need.
 */

#ifndef MINNOC_CORE_ROUTE_OPTIMIZER_HPP
#define MINNOC_CORE_ROUTE_OPTIMIZER_HPP

#include <cstdint>

#include "design_network.hpp"
#include "util/thread_pool.hpp"

namespace minnoc::core {

/**
 * Statistics returned by a Best_Route pass.
 */
struct RouteOptStats
{
    std::uint32_t triedMoves = 0;
    std::uint32_t committedMoves = 0;
    std::uint32_t linksSaved = 0;
};

/**
 * Run the paper's Best_Route procedure for the freshly split pair
 * (s_i, s_j): for every pipe P(i,k) incident to s_i, try rerouting each
 * communication through the indirect path s_i -> s_j -> s_k (and the
 * mirrored variants for pipes of s_j), committing every reroute that
 * strictly decreases the summed Fast_Color estimate of the three
 * involved pipes. Also considers straightening a previously indirect
 * route back to direct.
 *
 * @param net the design network (mutated in place)
 * @param si the original switch of the split
 * @param sj the sibling created by the split
 * @return statistics of the pass
 */
RouteOptStats bestRoute(DesignNetwork &net, SwitchId si, SwitchId sj);

/**
 * Global route consolidation: a generalization of Best_Route over the
 * whole pipe graph. For every communication, find the cheapest path
 * from its source's switch to its destination's switch over *existing*
 * pipes, where a hop costs the marginal Fast_Color increase of adding
 * the communication to that pipe direction (0 when it rides along
 * conflict-free, 1 when it widens the pipe), with hop count as the tie
 * breaker; reroute whenever that beats the communication's current
 * marginal contribution. Repeats until a fixpoint or @p max_passes.
 *
 * The paper's appendix only detours through the split sibling; this
 * pass is the natural closure of that idea and is what lets dense
 * patterns (MG's allreduce, BT/SP sweeps) meet a node-degree-5
 * constraint by sharing links across contention periods. Toggleable
 * for ablation via PartitionerConfig::consolidateRoutes.
 *
 * @param pool optional worker pool: large per-comm pipe-baseline
 *        snapshots are built in parallel chunks. Results are identical
 *        with or without it; pass nullptr from code already running on
 *        pool workers (no nested parallelism).
 * @return statistics (triedMoves counts examined comms)
 */
RouteOptStats consolidateRoutes(DesignNetwork &net,
                                std::uint32_t max_passes = 8,
                                std::uint32_t max_degree = 0,
                                Rng *rng = nullptr,
                                bool uni_cost = false,
                                ThreadPool *pool = nullptr);

/**
 * Degree repair: when some switches exceed the degree budget and
 * cannot be split further, reroute traffic away from them — over
 * existing pipes or over *new* pipes between switches that both have
 * spare degree — accepting any move that lexicographically reduces
 * (total degree violation, total links). This trades links for
 * feasibility, the opposite bias of consolidateRoutes; the partitioner
 * runs it only when it is otherwise stuck.
 *
 * @return statistics; check violations again after the call.
 */
RouteOptStats repairDegrees(DesignNetwork &net, std::uint32_t max_degree,
                            std::uint32_t max_passes = 4,
                            Rng *rng = nullptr,
                            ThreadPool *pool = nullptr);

} // namespace minnoc::core

#endif // MINNOC_CORE_ROUTE_OPTIMIZER_HPP
