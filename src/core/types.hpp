/**
 * @file
 * Fundamental identifier types for the contention model.
 *
 * A "communication" in the paper is a source-destination processor pair
 * (s, d); messages are timed instances of communications. Pairs are
 * packed into 64-bit keys so sets of communications hash and compare
 * cheaply throughout the methodology.
 */

#ifndef MINNOC_CORE_TYPES_HPP
#define MINNOC_CORE_TYPES_HPP

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace minnoc::core {

/** Processor (end-node) identifier; dense in [0, numProcs). */
using ProcId = std::uint32_t;

/** Switch identifier within a design-time network. */
using SwitchId = std::uint32_t;

/** Sentinel values. */
constexpr ProcId kNoProc = static_cast<ProcId>(-1);
constexpr SwitchId kNoSwitch = static_cast<SwitchId>(-1);

/**
 * A communication: an ordered (source, destination) processor pair.
 * Value type with total order (src-major) for deterministic set layout.
 */
struct Comm
{
    ProcId src = kNoProc;
    ProcId dst = kNoProc;

    Comm() = default;
    Comm(ProcId s, ProcId d) : src(s), dst(d) {}

    /** Pack into a single comparable/hashable 64-bit key. */
    std::uint64_t
    key() const
    {
        return (static_cast<std::uint64_t>(src) << 32) | dst;
    }

    /** Rebuild from a packed key. */
    static Comm
    fromKey(std::uint64_t k)
    {
        return Comm(static_cast<ProcId>(k >> 32),
                    static_cast<ProcId>(k & 0xffffffffULL));
    }

    /** The opposite-direction communication (d, s). */
    Comm reversed() const { return Comm(dst, src); }

    bool operator==(const Comm &o) const = default;
    auto operator<=>(const Comm &o) const = default;
};

inline std::ostream &
operator<<(std::ostream &os, const Comm &c)
{
    return os << '(' << c.src << ',' << c.dst << ')';
}

} // namespace minnoc::core

namespace std {

/** Hash support so Comm can key unordered containers. */
template <>
struct hash<minnoc::core::Comm>
{
    size_t
    operator()(const minnoc::core::Comm &c) const noexcept
    {
        // splitmix64-style finalizer over the packed key.
        uint64_t z = c.key() + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<size_t>(z ^ (z >> 31));
    }
};

} // namespace std

#endif // MINNOC_CORE_TYPES_HPP
