/**
 * @file
 * Communication patterns and the time-conflict model (paper Section 2.2).
 *
 * A CommPattern is the set of timed messages an application exchanges
 * (Definition 2). From it we derive:
 *  - the overlap relation O over message pairs (Definition 3),
 *  - the potential communication contention set C (Definition 4),
 *  - the communication clique set K of contention periods (Definition 5),
 *    via a sweep over message start/finish events, and
 *  - the communication maximum clique set (dominated cliques removed).
 */

#ifndef MINNOC_CORE_COMM_PATTERN_HPP
#define MINNOC_CORE_COMM_PATTERN_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "clique_set.hpp"
#include "message.hpp"
#include "types.hpp"

namespace minnoc::core {

/**
 * The set of all messages passed between processes, plus derivation of
 * the time-conflict model sets.
 */
class CommPattern
{
  public:
    CommPattern() = default;

    /** @param num_procs number of processors (end-nodes) in the system */
    explicit CommPattern(std::uint32_t num_procs) : _numProcs(num_procs) {}

    /** Append one message. Source/destination must be < numProcs. */
    void addMessage(const Message &m);

    const std::vector<Message> &messages() const { return _messages; }
    std::size_t numMessages() const { return _messages.size(); }
    std::uint32_t numProcs() const { return _numProcs; }

    /**
     * The overlap relation O (Definition 3) as index pairs (i < j) of
     * messages whose [T_s, T_f] intervals intersect. Quadratic output in
     * the worst case; computed with a sweep so non-overlapping pairs
     * cost nothing.
     */
    std::vector<std::pair<std::size_t, std::size_t>> overlapRelation() const;

    /**
     * The potential communication contention set C (Definition 4): the
     * distinct 4-tuples (s1, d1, s2, d2) of potentially colliding
     * message pairs. Symmetric closure included.
     */
    std::vector<std::array<ProcId, 4>> contentionSet() const;

    /**
     * Extract the communication clique set K (Definition 5): one clique
     * per potential contention period, i.e. per maximal set of messages
     * simultaneously in flight. Duplicate cliques collapse.
     *
     * @param reduce_to_maximum when true, also remove cliques dominated
     *        by a superset clique (the "maximum clique set").
     */
    CliqueSet extractCliqueSet(bool reduce_to_maximum = true) const;

    /**
     * The paper's trace-analyzer shortcut: assume messages from the same
     * communication library call (equal callId) are synchronized, each
     * call forming exactly one contention period, regardless of the
     * recorded times. Duplicate patterns collapse.
     */
    CliqueSet cliqueSetByCall(bool reduce_to_maximum = true) const;

    /** Total bytes over all messages. */
    std::uint64_t totalBytes() const;

    /** Earliest start / latest finish over all messages (0,0 if empty). */
    std::pair<double, double> timeSpan() const;

    /** Human-readable listing. */
    std::string toString() const;

  private:
    std::uint32_t _numProcs = 0;
    std::vector<Message> _messages;
};

} // namespace minnoc::core

#endif // MINNOC_CORE_COMM_PATTERN_HPP
