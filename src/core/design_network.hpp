/**
 * @file
 * Design-time network state for the partitioning methodology (Section 3).
 *
 * A DesignNetwork tracks, during recursive bisection:
 *  - the set of switches and the processors attached to each,
 *  - one deterministic source-based route (a switch sequence) per
 *    distinct communication (Definition 6 at pipe granularity), and
 *  - the pipes between switches, each holding the two directional sets
 *    of communications routed through it.
 *
 * Link-count estimates use the paper's Fast_Color procedure: the width a
 * pipe needs per direction is lower-bounded by the largest intersection
 * of any communication clique with the pipe's directional comm set, and
 * a full-duplex pipe needs the max of its two directions.
 *
 * Fast_Color is the partitioner's hot path — it runs on every candidate
 * move of the bisection loop — so the directional comm sets are stored
 * as CommBitsets (intersection = AND + popcount against precomputed
 * clique masks) and each pipe caches its two directional estimates
 * behind a dirty bit that route mutations invalidate. Only pipes a
 * mutation actually perturbed are ever recomputed.
 */

#ifndef MINNOC_CORE_DESIGN_NETWORK_HPP
#define MINNOC_CORE_DESIGN_NETWORK_HPP

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "clique_set.hpp"
#include "comm_bitset.hpp"
#include "types.hpp"
#include "util/rng.hpp"

namespace minnoc::core {

/** Canonical pipe key: unordered switch pair stored with a < b. */
struct PipeKey
{
    SwitchId a = kNoSwitch;
    SwitchId b = kNoSwitch;

    PipeKey() = default;

    PipeKey(SwitchId x, SwitchId y)
        : a(x < y ? x : y), b(x < y ? y : x)
    {
    }

    bool operator==(const PipeKey &o) const = default;
    auto operator<=>(const PipeKey &o) const = default;
};

/**
 * A pipe: the bundle of links between two switches, characterized by the
 * two opposing sets of communications that traverse it (Section 3.1).
 * "Forward" is the canonical a -> b direction.
 *
 * The cached per-direction Fast_Color values are owned by
 * DesignNetwork: mutations mark the pipe dirty and readers recompute
 * lazily, so external code should go through DesignNetwork::fastColor.
 */
struct Pipe
{
    CommBitset fwd;
    CommBitset bwd;

    bool empty() const { return fwd.empty() && bwd.empty(); }

    /** Cached Fast_Color per direction; valid only when !dirty. */
    mutable std::uint32_t fcFwd = 0;
    mutable std::uint32_t fcBwd = 0;
    mutable bool dirty = true;
};

/** Counters of the Fast_Color estimation cache (benchmarking). */
struct FastColorStats
{
    std::uint64_t calls = 0;     ///< fastColor / fastColorSet queries
    std::uint64_t cacheHits = 0; ///< queries answered from a pipe cache
};

/** Process-wide Fast_Color counters (atomic; cheap, thread-safe). */
FastColorStats fastColorStats();
void resetFastColorStats();

/**
 * Mutable partitioning state: switches, processor homes, routes, pipes.
 *
 * Starts as a single megaswitch connecting every processor (every route
 * is the trivial one-switch path) and is refined by splitSwitch /
 * moveProc / setRoute, which keep pipe comm sets incrementally correct.
 */
class DesignNetwork
{
  public:
    /**
     * Build the initial megaswitch network.
     * @param cliques the communication (maximum) clique set; the network
     *        keeps a reference, so it must outlive this object.
     */
    explicit DesignNetwork(const CliqueSet &cliques);

    const CliqueSet &cliques() const { return *_cliques; }

    std::size_t numSwitches() const { return _switchProcs.size(); }
    std::uint32_t numProcs() const { return _cliques->numProcs(); }

    /** Processors attached to switch @p s (sorted). */
    const std::vector<ProcId> &procsOf(SwitchId s) const;

    /** Home switch of processor @p p. */
    SwitchId homeOf(ProcId p) const { return _home.at(p); }

    /** Current route (switch sequence) of communication @p c. */
    const std::vector<SwitchId> &route(CommId c) const;

    /**
     * Replace the route of @p c. The route must start at the source's
     * home switch, end at the destination's home switch, and contain no
     * immediate repetitions; pipe sets are updated incrementally.
     */
    void setRoute(CommId c, std::vector<SwitchId> r);

    /** All currently non-empty pipes (sorted by key). */
    std::vector<PipeKey> pipes() const;

    /**
     * Visit every pipe in ascending key order without per-key map
     * lookups: @p f receives (const PipeKey &, const Pipe &). The hot
     * bulk readers (baseline snapshots, degree sweeps) use this; the
     * callback must not mutate the network.
     */
    template <typename F>
    void
    forEachPipe(F &&f) const
    {
        for (const auto &[key, pipe] : _pipes)
            f(key, pipe);
    }

    /** Non-empty pipes incident to switch @p s. */
    std::vector<PipeKey> pipesOf(SwitchId s) const;

    /** The pipe record for @p key (empty record if absent). */
    const Pipe &pipe(const PipeKey &key) const;

    /**
     * Fast_Color (Section 3.3): lower-bound estimate of the number of
     * full-duplex links pipe @p key needs, i.e. the max over cliques K
     * and directions dir of |K intersect C_dir(pipe)|. Served from the
     * pipe's cache unless a mutation dirtied it.
     */
    std::uint32_t fastColor(const PipeKey &key) const;

    /** Cached per-direction Fast_Color of @p key: (fwd, bwd). */
    std::pair<std::uint32_t, std::uint32_t>
    fastColorDirs(const PipeKey &key) const;

    /** Same, for a pipe reference already in hand (skips the lookup). */
    std::pair<std::uint32_t, std::uint32_t>
    fastColorDirs(const Pipe &p) const;

    /** Fast_Color of an explicit directional comm set. */
    std::uint32_t fastColorSet(const CommBitset &comms) const;

    /**
     * Fast_Color of (@p comms + the single id @p extra) without
     * materializing the union; @p extra must not be in @p comms.
     */
    std::uint32_t fastColorSetPlus(const CommBitset &comms,
                                   CommId extra) const;

    /**
     * The original ordered-set Fast_Color implementation, kept as the
     * reference oracle for the bitset path. Test-only: quadratic-ish
     * merge counting per clique; do not use on hot paths.
     */
    std::uint32_t
    fastColorSetReference(const std::set<CommId> &comms) const;

    /**
     * Estimated switch degree: attached processors plus the estimated
     * link count of every incident pipe.
     */
    std::uint32_t estimatedDegree(SwitchId s) const;

    /** estimatedDegree of every switch in one pass over the pipes. */
    std::vector<std::uint32_t> estimatedDegrees() const;

    /** Sum of fastColor over all pipes: the partitioning objective. */
    std::uint32_t totalEstimatedLinks() const;

    /**
     * Summed fastColor over the pipes incident to @p si or @p sj (each
     * pipe counted once): the cut cost the move-enumeration loop ranks
     * candidates by. One incidence scan over cached values — no key
     * vector is built or sorted.
     */
    std::uint32_t cutEstimate(SwitchId si, SwitchId sj) const;

    /**
     * Split switch @p s: create a new switch, move half of s's
     * processors to it (random choice via @p rng), and recompute the
     * direct routes of every communication touching the moved
     * processors. Transit communications keep routing through @p s.
     * @return the id of the new switch.
     */
    SwitchId splitSwitch(SwitchId s, Rng &rng);

    /**
     * Split switch @p s moving exactly the processors in @p procs_to_move
     * (a strict, non-empty subset of s's processors) to a new switch.
     * Used by the hierarchical partitioner, which computes the halves
     * itself instead of sampling them. @return the new switch's id.
     */
    SwitchId splitSwitchInto(SwitchId s,
                             const std::vector<ProcId> &procs_to_move);

    /**
     * Move processor @p p to switch @p to, recomputing the direct routes
     * of all communications with an endpoint at @p p (the interior of
     * each route is preserved; only the endpoint switch changes).
     */
    void moveProc(ProcId p, SwitchId to);

    /** Communications with source or destination attached to @p p. */
    const std::vector<CommId> &commsOf(ProcId p) const;

    /** Validate all internal invariants; panics on violation (tests). */
    void checkInvariants() const;

    /** Human-readable dump. */
    std::string toString() const;

  private:
    void addRouteToPipes(CommId c, const std::vector<SwitchId> &r);
    void removeRouteFromPipes(CommId c, const std::vector<SwitchId> &r);
    void recomputeEndpoints(CommId c);
    static std::vector<SwitchId> normalized(std::vector<SwitchId> r);
    void linkNeighbor(SwitchId s, SwitchId t);
    void unlinkNeighbor(SwitchId s, SwitchId t);

    /** Cached duplex estimate of @p p; recomputes when dirty. */
    std::uint32_t pipeFastColor(const Pipe &p) const;

    /** Raw bitset Fast_Color without touching the stat counters. */
    std::uint32_t computeFastColor(const CommBitset &comms) const;

    const CliqueSet *_cliques;
    std::size_t _numComms = 0; ///< bitset width of every pipe comm set
    std::vector<std::vector<ProcId>> _switchProcs;
    std::vector<SwitchId> _home;              // per proc
    std::vector<std::vector<SwitchId>> _routes; // per comm
    std::vector<std::vector<CommId>> _procComms; // per proc
    std::map<PipeKey, Pipe> _pipes;

    /**
     * Per-switch sorted list of pipe neighbors, maintained on pipe
     * creation/erasure. Turns pipesOf / estimatedDegree / cutEstimate
     * into O(degree) incidence walks instead of full pipe-map scans —
     * the scans were quadratic-in-switches inside the move loop and
     * dominated at four-digit rank counts.
     */
    std::vector<std::vector<SwitchId>> _nbrs;
};

} // namespace minnoc::core

#endif // MINNOC_CORE_DESIGN_NETWORK_HPP
