#include "partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "hier_partitioner.hpp"
#include "route_optimizer.hpp"
#include "util/log.hpp"

namespace minnoc::core {

namespace {

/** Cost a move is judged by: summed link estimate of the cut's pipes. */
std::uint32_t
cutCost(const DesignNetwork &net, SwitchId si, SwitchId sj)
{
    // One incidence scan over cached Fast_Color values; no per-call key
    // vector to build, sort, and dedupe.
    return net.cutEstimate(si, sj);
}

/** Switches currently violating the constraints (by estimate). */
std::vector<SwitchId>
violatingSwitches(const DesignNetwork &net, const DesignConstraints &dc)
{
    std::vector<SwitchId> bad;
    const auto degrees = net.estimatedDegrees();
    for (SwitchId s = 0; s < net.numSwitches(); ++s) {
        const auto procs =
            static_cast<std::uint32_t>(net.procsOf(s).size());
        if (!dc.satisfied(degrees[s], procs))
            bad.push_back(s);
    }
    return bad;
}

/** A candidate processor move across the fresh cut. */
struct MoveCandidate
{
    ProcId proc = kNoProc;
    SwitchId from = kNoSwitch;
    SwitchId to = kNoSwitch;
    std::int64_t delta = 0; ///< cost change; negative improves
};

/**
 * Evaluate every balanced processor move between @p si and @p sj by
 * temporarily applying it (the paper evaluates with direct routes; our
 * endpoint recomputation preserves route interiors, which direct routes
 * have anyway right after a split).
 */
std::vector<MoveCandidate>
enumerateMoves(DesignNetwork &net, SwitchId si, SwitchId sj,
               std::uint32_t maxImbalance)
{
    std::vector<MoveCandidate> candidates;
    const std::uint32_t before = cutCost(net, si, sj);

    auto consider = [&](SwitchId from, SwitchId to) {
        // Every candidate is applied and undone, so the switch sizes —
        // and with them the balance rule — are invariant across the
        // per-proc loop: check once, outside it.
        const auto fromSize =
            static_cast<std::int64_t>(net.procsOf(from).size()) - 1;
        const auto toSize =
            static_cast<std::int64_t>(net.procsOf(to).size()) + 1;
        // Balance rule (paper: skew at most 2) plus a no-emptying
        // guard: un-splitting a switch would loop the algorithm.
        if (fromSize < 1 ||
            std::llabs(toSize - fromSize) >
                static_cast<std::int64_t>(maxImbalance)) {
            return;
        }
        const std::vector<ProcId> procs = net.procsOf(from); // copy
        for (const ProcId p : procs) {
            net.moveProc(p, to);
            const std::uint32_t after = cutCost(net, si, sj);
            net.moveProc(p, from);
            candidates.push_back(MoveCandidate{
                p, from, to,
                static_cast<std::int64_t>(after) -
                    static_cast<std::int64_t>(before)});
        }
    };
    consider(si, sj);
    consider(sj, si);
    return candidates;
}


/** Global (violation, links) measure used by the swap refinement. */
std::pair<std::uint64_t, std::uint32_t>
placementMeasure(const DesignNetwork &net, const DesignConstraints &dc)
{
    std::uint64_t viol = 0;
    const auto degrees = net.estimatedDegrees();
    for (SwitchId s = 0; s < net.numSwitches(); ++s) {
        const auto d = degrees[s];
        if (d > dc.maxDegree)
            viol += d - dc.maxDegree;
    }
    return {viol, net.totalEstimatedLinks()};
}

} // namespace

bool
refineProcSwaps(DesignNetwork &net, const DesignConstraints &dc, Rng &rng,
                std::uint32_t passes)
{
    bool improvedAny = false;
    const auto procs = net.numProcs();
    std::vector<ProcId> order(procs);
    for (ProcId p = 0; p < procs; ++p)
        order[p] = p;
    for (std::uint32_t pass = 0; pass < passes; ++pass) {
        rng.shuffle(order);
        bool improved = false;
        for (std::size_t i = 0; i < order.size(); ++i) {
            for (std::size_t j = i + 1; j < order.size(); ++j) {
                const ProcId a = order[i];
                const ProcId b = order[j];
                const SwitchId sa = net.homeOf(a);
                const SwitchId sb = net.homeOf(b);
                if (sa == sb)
                    continue;
                const auto before = placementMeasure(net, dc);
                net.moveProc(a, sb);
                net.moveProc(b, sa);
                const auto after = placementMeasure(net, dc);
                if (after < before) {
                    improved = true;
                    improvedAny = true;
                } else {
                    net.moveProc(a, sa);
                    net.moveProc(b, sb);
                }
            }
        }
        if (!improved)
            break;
    }
    return improvedAny;
}

SwitchId
splitAndSettle(DesignNetwork &net, const PartitionerConfig &config,
               Rng &rng, SwitchId si, PartitionResult &result)
{
    auto record = [&result](PartitionStep step) {
        result.history.push_back(std::move(step));
    };

    // Step 5: bisect the switch.
    const SwitchId sj = net.splitSwitch(si, rng);
    ++result.numSplits;
    if (config.paranoid)
        net.checkInvariants();
    record(PartitionStep{PartitionStep::Kind::Split, si, sj, kNoProc,
                         net.totalEstimatedLinks(),
                         "split S" + std::to_string(si)});

    // Step 6: optimize routing through the fresh halves.
    if (config.optimizeRoutes) {
        const auto ro = bestRoute(net, si, sj);
        if (config.paranoid)
            net.checkInvariants();
        if (ro.committedMoves) {
            record(PartitionStep{
                PartitionStep::Kind::Reroute, si, sj, kNoProc,
                net.totalEstimatedLinks(),
                std::to_string(ro.committedMoves) + " reroutes"});
        }
    }

    // Steps 7-9: processor moves across the cut while the estimated
    // link demand improves (or, with annealing, probabilistically).
    const std::uint32_t cutSize = static_cast<std::uint32_t>(
        net.procsOf(si).size() + net.procsOf(sj).size());
    const std::uint32_t maxMoves = config.maxMovesPerSplit
                                       ? config.maxMovesPerSplit
                                       : 4 * cutSize + 8;
    std::uint32_t movesDone = 0;
    double temperature = config.annealT0;
    std::uint32_t annealBudget =
        config.anneal ? config.annealMovesPerLevel *
                            static_cast<std::uint32_t>(
                                net.procsOf(si).size() +
                                net.procsOf(sj).size())
                      : 0;
    while (movesDone < maxMoves) {
        auto candidates = enumerateMoves(net, si, sj, config.maxImbalance);
        result.movesEvaluated += candidates.size();
        if (candidates.empty())
            break;

        std::sort(candidates.begin(), candidates.end(),
                  [](const MoveCandidate &x, const MoveCandidate &y) {
                      if (x.delta != y.delta)
                          return x.delta < y.delta;
                      return x.proc < y.proc;
                  });
        const MoveCandidate *chosen = nullptr;
        if (candidates.front().delta < 0) {
            chosen = &candidates.front();
        } else if (config.anneal && annealBudget > 0) {
            const auto &cand = candidates[rng.below(candidates.size())];
            const double accept =
                std::exp(-static_cast<double>(cand.delta) /
                         std::max(temperature, 1e-9));
            if (rng.chance(accept))
                chosen = &cand;
            temperature *= config.annealAlpha;
            --annealBudget;
        }
        if (!chosen)
            break;

        net.moveProc(chosen->proc, chosen->to);
        ++result.numMoves;
        ++movesDone;
        if (config.paranoid)
            net.checkInvariants();
        record(PartitionStep{
            PartitionStep::Kind::Move, chosen->from, chosen->to,
            chosen->proc, net.totalEstimatedLinks(),
            "move P" + std::to_string(chosen->proc)});

        // Step 6 again after each committed move.
        if (config.optimizeRoutes) {
            bestRoute(net, si, sj);
            if (config.paranoid)
                net.checkInvariants();
        }
    }
    return sj;
}

PartitionResult
partitionNetwork(DesignNetwork &net, const PartitionerConfig &config,
                 Rng &rng)
{
    PartitionResult result;
    const std::uint32_t maxSplits =
        config.maxSplits ? config.maxSplits : 4 * net.numProcs() + 8;
    std::uint32_t repairAttempts = 0;

    // Large-N mode: pre-cut the megaswitch along the communication
    // graph before the constraint loop, and afterwards split every
    // violator per pass instead of one random one — the global
    // consolidation between passes is the dominant cost at scale, so
    // it must run O(log N) times, not O(N).
    const bool large = config.largeScale(net.numProcs());
    if (large && net.numSwitches() == 1 && net.numProcs() >= 2)
        hierarchicalPrePartition(net, config, result);

    for (;;) {
        // Merge compatible traffic onto shared links before judging the
        // constraints: direct routes systematically overestimate the
        // degree a switch really needs.
        if (config.consolidate)
            consolidateRoutes(net, config.consolidatePasses,
                              config.constraints.maxDegree, &rng,
                              config.unidirectionalCost);
        if (config.paranoid)
            net.checkInvariants();

        auto violators = violatingSwitches(net, config.constraints);
        // Switches that cannot be split further (fewer than two procs)
        // make the constraints infeasible for this pattern.
        std::vector<SwitchId> splittable;
        for (const SwitchId s : violators) {
            if (net.procsOf(s).size() >= 2)
                splittable.push_back(s);
        }
        if (splittable.empty()) {
            if (!violators.empty() && config.consolidate &&
                repairAttempts < 4) {
                // Stuck: no violator can be split. Spread traffic away
                // from the overloaded switches even at extra link cost,
                // try global processor swaps, then re-judge. The swap
                // refinement is quadratic in processors, so the large-N
                // mode relies on repairDegrees alone.
                ++repairAttempts;
                const auto rs = repairDegrees(
                    net, config.constraints.maxDegree, 4, &rng);
                const bool swapped =
                    !large &&
                    refineProcSwaps(net, config.constraints, rng, 2);
                if (config.paranoid)
                    net.checkInvariants();
                if (rs.committedMoves || swapped)
                    continue;
            }
            result.feasible = violators.empty();
            if (!result.feasible) {
                warn("partitioner: ", violators.size(),
                     " switch(es) violate constraints but cannot be "
                     "split further");
            }
            return result;
        }
        if (result.numSplits >= maxSplits) {
            warn("partitioner: split budget exhausted (", maxSplits, ")");
            result.feasible = false;
            return result;
        }

        if (large) {
            // Batch mode: split every splittable violator this pass.
            for (const SwitchId si : splittable) {
                if (result.numSplits >= maxSplits)
                    break;
                splitAndSettle(net, config, rng, si, result);
            }
            continue;
        }

        // Step 4: randomly pick a violating switch; steps 5-9 inside.
        const SwitchId si = splittable[rng.below(splittable.size())];
        splitAndSettle(net, config, rng, si, result);
    }
}

PartitionResult
partitionNetwork(DesignNetwork &net, const PartitionerConfig &config)
{
    Rng rng(config.seed);
    return partitionNetwork(net, config, rng);
}

} // namespace minnoc::core
