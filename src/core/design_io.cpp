#include "design_io.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "util/log.hpp"

namespace minnoc::core {

void
saveDesign(const FinalizedDesign &design, std::ostream &os)
{
    os << "minnoc-design 1 " << design.numProcs << ' '
       << design.numSwitches << '\n';
    if (design.unidirectional)
        os << "unidirectional 1\n";
    for (ProcId p = 0; p < design.numProcs; ++p)
        os << "home " << p << ' ' << design.procHome[p] << '\n';
    for (CommId c = 0; c < design.comms.size(); ++c) {
        os << "comm " << c << ' ' << design.comms[c].src << ' '
           << design.comms[c].dst << '\n';
        os << "route " << c << ' ' << design.routes[c].size();
        for (const auto s : design.routes[c])
            os << ' ' << s;
        os << '\n';
    }
    for (const auto &pipe : design.pipes) {
        os << "pipe " << pipe.key.a << ' ' << pipe.key.b << ' '
           << pipe.links << ' ' << pipe.linksFwd << ' ' << pipe.linksBwd
           << ' ' << (pipe.connectivityOnly ? 1 : 0) << '\n';
        for (const auto &[c, link] : pipe.fwdLink) {
            os << "fwd " << pipe.key.a << ' ' << pipe.key.b << ' ' << c
               << ' ' << link << '\n';
        }
        for (const auto &[c, link] : pipe.bwdLink) {
            os << "bwd " << pipe.key.a << ' ' << pipe.key.b << ' ' << c
               << ' ' << link << '\n';
        }
    }
    os << "end\n";
}

FinalizedDesign
loadDesign(std::istream &is)
{
    std::string magic;
    int version = 0;
    FinalizedDesign d;
    if (!(is >> magic >> version) || magic != "minnoc-design")
        fatal("loadDesign: bad header");
    if (version != 1)
        fatal("loadDesign: unsupported version ", version);
    if (!(is >> d.numProcs >> d.numSwitches))
        fatal("loadDesign: bad counts");
    d.procHome.assign(d.numProcs, kNoSwitch);
    d.switchProcs.assign(d.numSwitches, {});

    auto pipeAt = [&d](SwitchId a, SwitchId b) -> FinalizedPipe & {
        const PipeKey key(a, b);
        for (auto &p : d.pipes) {
            if (p.key == key)
                return p;
        }
        fatal("loadDesign: link record for unknown pipe S", a, "-S", b);
    };

    std::string tag;
    while (is >> tag) {
        if (tag == "end")
            break;
        if (tag == "home") {
            ProcId p;
            SwitchId s;
            if (!(is >> p >> s) || p >= d.numProcs ||
                s >= d.numSwitches)
                fatal("loadDesign: bad home record");
            d.procHome[p] = s;
            d.switchProcs[s].push_back(p);
        } else if (tag == "comm") {
            CommId id;
            ProcId src, dst;
            if (!(is >> id >> src >> dst))
                fatal("loadDesign: bad comm record");
            if (id != d.comms.size())
                fatal("loadDesign: comm records out of order");
            d.comms.emplace_back(src, dst);
        } else if (tag == "route") {
            CommId id;
            std::size_t len;
            if (!(is >> id >> len) || id != d.routes.size())
                fatal("loadDesign: bad route record");
            std::vector<SwitchId> route(len);
            for (auto &s : route) {
                if (!(is >> s) || s >= d.numSwitches)
                    fatal("loadDesign: bad route hop");
            }
            d.routes.push_back(std::move(route));
        } else if (tag == "unidirectional") {
            int flag;
            if (!(is >> flag))
                fatal("loadDesign: bad unidirectional record");
            d.unidirectional = flag != 0;
        } else if (tag == "pipe") {
            FinalizedPipe pipe;
            SwitchId a, b;
            int conn;
            if (!(is >> a >> b >> pipe.links >> pipe.linksFwd >>
                  pipe.linksBwd >> conn))
                fatal("loadDesign: bad pipe record");
            pipe.key = PipeKey(a, b);
            pipe.connectivityOnly = conn != 0;
            d.pipes.push_back(std::move(pipe));
        } else if (tag == "fwd" || tag == "bwd") {
            SwitchId a, b;
            CommId c;
            std::uint32_t link;
            if (!(is >> a >> b >> c >> link))
                fatal("loadDesign: bad ", tag, " record");
            auto &pipe = pipeAt(a, b);
            (tag == "fwd" ? pipe.fwdLink : pipe.bwdLink)[c] = link;
        } else {
            fatal("loadDesign: unknown record '", tag, "'");
        }
    }
    if (tag != "end")
        fatal("loadDesign: missing end record");

    // Sanity: every proc homed, pipes sorted (saveDesign keeps order).
    for (ProcId p = 0; p < d.numProcs; ++p) {
        if (d.procHome[p] == kNoSwitch)
            fatal("loadDesign: processor ", p, " has no home switch");
    }
    std::sort(d.pipes.begin(), d.pipes.end(),
              [](const FinalizedPipe &x, const FinalizedPipe &y) {
                  return x.key < y.key;
              });
    if (d.comms.size() != d.routes.size())
        fatal("loadDesign: comm/route count mismatch");
    return d;
}

} // namespace minnoc::core
