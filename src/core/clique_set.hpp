/**
 * @file
 * Communication clique sets (paper Definition 5).
 *
 * A clique is the set of communications active during one potential
 * contention period — a full or partial permutation of the processors.
 * The CliqueSet owns the distinct cliques of a communication pattern and
 * supports the "maximum clique set" reduction that drops cliques
 * dominated (covered) by a superset clique, which shrinks the work the
 * partitioner's fast-coloring loop has to do without changing results.
 */

#ifndef MINNOC_CORE_CLIQUE_SET_HPP
#define MINNOC_CORE_CLIQUE_SET_HPP

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "comm_bitset.hpp"
#include "types.hpp"

namespace minnoc::core {

/** Dense index of a distinct communication within a CliqueSet. */
using CommId = std::uint32_t;

/**
 * One potential contention period: a set of distinct communications,
 * stored as sorted CommId lists for fast intersection counting.
 */
struct Clique
{
    /** Sorted, duplicate-free communication indices. */
    std::vector<CommId> comms;

    std::size_t size() const { return comms.size(); }
    bool contains(CommId c) const;
    bool operator==(const Clique &o) const = default;
};

/**
 * The set of distinct cliques of a communication pattern, together with
 * the registry of distinct communications they reference.
 *
 * Invariants: comm ids are dense; each clique's list is sorted and
 * duplicate-free; no two stored cliques are equal.
 */
class CliqueSet
{
  public:
    CliqueSet() = default;

    /** @param num_procs number of processors the pattern spans */
    explicit CliqueSet(std::uint32_t num_procs) : _numProcs(num_procs) {}

    /** Register (or look up) a communication; returns its dense id. */
    CommId internComm(const Comm &c);

    /** Look up a communication's id; kNoComm when absent. */
    CommId findComm(const Comm &c) const;

    static constexpr CommId kNoComm = static_cast<CommId>(-1);

    /** The communication for a dense id. */
    const Comm &comm(CommId id) const { return _comms.at(id); }

    /** Number of distinct communications. */
    std::size_t numComms() const { return _comms.size(); }

    std::uint32_t numProcs() const { return _numProcs; }
    void numProcs(std::uint32_t n) { _numProcs = n; }

    /**
     * Add a clique given as communications. Duplicate pairs within the
     * clique collapse; a clique identical to an existing one is dropped.
     * @return true if a new clique was stored.
     */
    bool addClique(const std::vector<Comm> &comms);

    /** Add a clique by pre-interned ids (sorted/deduped internally). */
    bool addCliqueByIds(std::vector<CommId> ids);

    const std::vector<Clique> &cliques() const { return _cliques; }
    std::size_t numCliques() const { return _cliques.size(); }

    /**
     * One bitmask per clique (bit c set iff comm c belongs to the
     * clique), sized to numComms(). Built lazily and cached; this is
     * what turns Fast_Color into AND + popcount.
     */
    const std::vector<CommBitset> &cliqueMasks() const;

    /**
     * Sparse companion to cliqueMasks(): per-clique skip list of the
     * populated 64-bit blocks plus the clique's popcount, so the
     * Fast_Color AND+popcount loop touches only nonzero words. Parallel
     * to cliqueMasks(); built/invalidated together with it.
     */
    struct MaskInfo
    {
        /** Ascending indices of the nonzero words of the mask. */
        std::vector<std::uint32_t> nonzeroWords;
        /** Popcount of the mask (= clique size). */
        std::uint32_t popcount = 0;
    };
    const std::vector<MaskInfo> &maskInfos() const;

    /**
     * Clique indices ordered by descending popcount (stable, so the
     * order is deterministic). Iterating cliques in this order lets
     * Fast_Color stop as soon as the remaining cliques are too small to
     * beat the best intersection found so far.
     */
    const std::vector<std::uint32_t> &masksBySize() const;

    /**
     * Force-build every lazy cache (clique masks, contention index).
     * The lazy builders mutate shared state and are not safe to race;
     * call this once before handing the set to concurrent readers.
     */
    void prepareCaches() const;

    /** Size of the largest clique (0 when empty). */
    std::size_t maxCliqueSize() const;

    /**
     * Reduce to the communication *maximum* clique set: remove every
     * clique whose communications are a subset of another clique's.
     * @return the number of cliques removed.
     */
    std::size_t reduceToMaximum();

    /**
     * True if the two communications potentially contend, i.e. appear
     * together in at least one clique (membership in the potential
     * communication contention set, Definition 4, at pair granularity).
     */
    bool contend(CommId a, CommId b) const;

    /**
     * The potential communication contention set C as explicit 4-tuples
     * (s1, d1, s2, d2), symmetric closure included. Mostly useful for
     * tests and the Theorem-1 verifier; quadratic in clique sizes.
     */
    std::vector<std::array<ProcId, 4>> contentionSet() const;

    /** Human-readable listing. */
    std::string toString() const;

  private:
    void buildMembership() const;
    void buildMaskCaches() const;

    std::uint32_t _numProcs = 0;
    std::vector<Comm> _comms;
    std::unordered_map<Comm, CommId> _index;
    std::vector<Clique> _cliques;

    /**
     * Lazily built per-comm clique-membership bitsets: row c holds one
     * bit per clique, set iff comm c belongs to that clique. Two comms
     * contend iff their rows intersect, so contend() is an AND over
     * numCliques/64 words instead of a dense numComms² matrix — the
     * matrix was the memory wall at four-digit rank counts.
     */
    mutable std::vector<std::uint64_t> _membership;
    mutable std::size_t _membershipWords = 0;
    mutable bool _membershipValid = false;

    /** Lazily built per-clique bitmasks, invalidated on mutation. */
    mutable std::vector<CommBitset> _masks;
    mutable std::vector<MaskInfo> _maskInfos;
    mutable std::vector<std::uint32_t> _masksBySize;
    mutable bool _masksValid = false;
};

} // namespace minnoc::core

#endif // MINNOC_CORE_CLIQUE_SET_HPP
