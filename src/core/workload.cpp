#include "workload.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace minnoc::core {

CliqueSet
mergeCliqueSets(const std::vector<const CliqueSet *> &sets)
{
    if (sets.empty())
        panic("mergeCliqueSets: no inputs");
    const std::uint32_t procs = sets.front()->numProcs();
    CliqueSet merged(procs);
    for (const auto *set : sets) {
        if (set->numProcs() != procs)
            panic("mergeCliqueSets: processor count mismatch (",
                  set->numProcs(), " vs ", procs, ")");
        for (const auto &k : set->cliques()) {
            std::vector<Comm> comms;
            comms.reserve(k.size());
            for (const auto id : k.comms)
                comms.push_back(set->comm(id));
            merged.addClique(comms);
        }
    }
    return merged;
}

CliqueSet
mergeCliqueSets(const std::vector<CliqueSet> &sets)
{
    std::vector<const CliqueSet *> ptrs;
    ptrs.reserve(sets.size());
    for (const auto &s : sets)
        ptrs.push_back(&s);
    return mergeCliqueSets(ptrs);
}

bool
coveredBy(const CliqueSet &part, const CliqueSet &whole)
{
    if (part.numProcs() != whole.numProcs())
        return false;
    for (const auto &k : part.cliques()) {
        // Translate to the whole set's comm ids.
        std::vector<CommId> ids;
        ids.reserve(k.size());
        for (const auto id : k.comms) {
            const auto wid = whole.findComm(part.comm(id));
            if (wid == CliqueSet::kNoComm)
                return false;
            ids.push_back(wid);
        }
        std::sort(ids.begin(), ids.end());
        // A clique of `part` is covered when some clique of `whole`
        // contains all of its communications.
        bool found = false;
        for (const auto &wk : whole.cliques()) {
            if (std::includes(wk.comms.begin(), wk.comms.end(),
                              ids.begin(), ids.end())) {
                found = true;
                break;
            }
        }
        if (!found)
            return false;
    }
    return true;
}

} // namespace minnoc::core
