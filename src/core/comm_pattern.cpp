#include "comm_pattern.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "util/log.hpp"

namespace minnoc::core {

void
CommPattern::addMessage(const Message &m)
{
    if (m.src >= _numProcs || m.dst >= _numProcs)
        panic("CommPattern: message ", m, " references proc >= ", _numProcs);
    if (m.tFinish < m.tStart)
        panic("CommPattern: message ", m, " finishes before it starts");
    _messages.push_back(m);
}

namespace {

/** Sweep event: message start or finish. Starts sort before finishes at
 * equal times because the paper's intervals are closed. */
struct SweepEvent
{
    double time;
    bool isStart;
    std::size_t msg;

    bool
    operator<(const SweepEvent &o) const
    {
        if (time != o.time)
            return time < o.time;
        if (isStart != o.isStart)
            return isStart; // starts first
        return msg < o.msg;
    }
};

std::vector<SweepEvent>
buildEvents(const std::vector<Message> &messages)
{
    std::vector<SweepEvent> events;
    events.reserve(messages.size() * 2);
    for (std::size_t i = 0; i < messages.size(); ++i) {
        events.push_back(SweepEvent{messages[i].tStart, true, i});
        events.push_back(SweepEvent{messages[i].tFinish, false, i});
    }
    std::sort(events.begin(), events.end());
    return events;
}

} // namespace

std::vector<std::pair<std::size_t, std::size_t>>
CommPattern::overlapRelation() const
{
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    std::set<std::size_t> active;
    for (const auto &ev : buildEvents(_messages)) {
        if (ev.isStart) {
            for (const std::size_t other : active) {
                pairs.emplace_back(std::min(other, ev.msg),
                                   std::max(other, ev.msg));
            }
            active.insert(ev.msg);
        } else {
            active.erase(ev.msg);
        }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    return pairs;
}

std::vector<std::array<ProcId, 4>>
CommPattern::contentionSet() const
{
    // Distinct 4-tuples over *different* communications; a communication
    // never conflicts with itself in the path model (it is one path).
    std::set<std::array<ProcId, 4>> tuples;
    for (const auto &[i, j] : overlapRelation()) {
        const Comm a = _messages[i].comm();
        const Comm b = _messages[j].comm();
        if (a == b)
            continue;
        tuples.insert({a.src, a.dst, b.src, b.dst});
        tuples.insert({b.src, b.dst, a.src, a.dst});
    }
    return {tuples.begin(), tuples.end()};
}

CliqueSet
CommPattern::extractCliqueSet(bool reduce_to_maximum) const
{
    CliqueSet result(_numProcs);

    // Sweep: the maximal sets of simultaneously active messages are the
    // potential contention periods. A snapshot is taken each time a
    // finish event is about to shrink an active set that has grown since
    // the last snapshot; this enumerates exactly the maximal cliques of
    // the interval overlap graph.
    std::set<std::size_t> active;
    bool grown = false;
    const auto events = buildEvents(_messages);
    auto snapshot = [&]() {
        std::vector<Comm> comms;
        comms.reserve(active.size());
        for (const std::size_t i : active)
            comms.push_back(_messages[i].comm());
        result.addClique(comms);
    };
    for (const auto &ev : events) {
        if (ev.isStart) {
            active.insert(ev.msg);
            grown = true;
        } else {
            if (grown) {
                snapshot();
                grown = false;
            }
            active.erase(ev.msg);
        }
    }

    if (reduce_to_maximum)
        result.reduceToMaximum();
    return result;
}

CliqueSet
CommPattern::cliqueSetByCall(bool reduce_to_maximum) const
{
    CliqueSet result(_numProcs);
    std::map<std::uint32_t, std::vector<Comm>> byCall;
    for (const auto &m : _messages)
        byCall[m.callId].push_back(m.comm());
    for (const auto &[call, comms] : byCall)
        result.addClique(comms);
    if (reduce_to_maximum)
        result.reduceToMaximum();
    return result;
}

std::uint64_t
CommPattern::totalBytes() const
{
    std::uint64_t total = 0;
    for (const auto &m : _messages)
        total += m.bytes;
    return total;
}

std::pair<double, double>
CommPattern::timeSpan() const
{
    if (_messages.empty())
        return {0.0, 0.0};
    double lo = _messages.front().tStart;
    double hi = _messages.front().tFinish;
    for (const auto &m : _messages) {
        lo = std::min(lo, m.tStart);
        hi = std::max(hi, m.tFinish);
    }
    return {lo, hi};
}

std::string
CommPattern::toString() const
{
    std::ostringstream oss;
    oss << "CommPattern(" << _numProcs << " procs, " << _messages.size()
        << " messages)\n";
    for (const auto &m : _messages)
        oss << "  " << m << " bytes=" << m.bytes << " call=" << m.callId
            << "\n";
    return oss.str();
}

} // namespace minnoc::core
