/**
 * @file
 * Fixed-width bitset over dense communication ids.
 *
 * The partitioner's Fast_Color lower bound is evaluated thousands of
 * times inside the move-enumeration loop; representing a pipe's
 * directional comm set as one bit per CommId turns every clique
 * intersection into AND + popcount over 64-bit words instead of an
 * ordered-set merge. The width is fixed at construction (the number of
 * distinct communications of the pattern) so that equal comm sets always
 * compare equal word-for-word.
 */

#ifndef MINNOC_CORE_COMM_BITSET_HPP
#define MINNOC_CORE_COMM_BITSET_HPP

#include <bit>
#include <cstdint>
#include <vector>

#include "util/log.hpp"

namespace minnoc::core {

/** One bit per dense communication id; width fixed via resize(). */
class CommBitset
{
  public:
    CommBitset() = default;

    /** A cleared bitset able to hold ids in [0, @p bits). */
    explicit CommBitset(std::size_t bits) { resize(bits); }

    /** Reset to @p bits capacity with every bit cleared. */
    void
    resize(std::size_t bits)
    {
        _bits = bits;
        _words.assign((bits + 63) / 64, 0);
        _count = 0;
    }

    std::size_t numBits() const { return _bits; }

    /** Set bit @p c; true if it was previously clear. */
    bool
    insert(std::uint32_t c)
    {
        checkRange(c);
        std::uint64_t &w = _words[c >> 6];
        const std::uint64_t bit = 1ULL << (c & 63);
        const bool added = (w & bit) == 0;
        w |= bit;
        _count += added;
        return added;
    }

    /** Clear bit @p c; true if it was previously set. */
    bool
    erase(std::uint32_t c)
    {
        checkRange(c);
        std::uint64_t &w = _words[c >> 6];
        const std::uint64_t bit = 1ULL << (c & 63);
        const bool removed = (w & bit) != 0;
        w &= ~bit;
        _count -= removed;
        return removed;
    }

    /** True when bit @p c is set (false for out-of-range ids). */
    bool
    test(std::uint32_t c) const
    {
        if (c >= _bits)
            return false;
        return (_words[c >> 6] >> (c & 63)) & 1;
    }

    /**
     * Number of set bits. O(1): the count is maintained by insert()
     * and erase(); sanitized builds recount the words and abort on
     * drift.
     */
    std::size_t
    size() const
    {
#ifdef MINNOC_SANITIZE
        std::size_t n = 0;
        for (const std::uint64_t w : _words)
            n += static_cast<std::size_t>(std::popcount(w));
        if (n != _count)
            panic("CommBitset: cached popcount ", _count,
                  " drifted from recount ", n);
#endif
        return _count;
    }

    bool empty() const { return _count == 0; }

    /** Word-exact equality; the cached count is derived, not compared. */
    bool
    operator==(const CommBitset &o) const
    {
        return _bits == o._bits && _words == o._words;
    }

    /** Call @p fn(id) for every set bit in ascending id order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < _words.size(); ++i) {
            std::uint64_t w = _words[i];
            while (w) {
                const auto b = static_cast<std::uint32_t>(
                    std::countr_zero(w));
                fn(static_cast<std::uint32_t>(i * 64 + b));
                w &= w - 1;
            }
        }
    }

    /** The set bits as a sorted id vector. */
    std::vector<std::uint32_t>
    toVector() const
    {
        std::vector<std::uint32_t> ids;
        ids.reserve(size());
        forEach([&ids](std::uint32_t c) { ids.push_back(c); });
        return ids;
    }

    /** Raw 64-bit words (for AND + popcount loops). */
    const std::vector<std::uint64_t> &words() const { return _words; }

  private:
    void
    checkRange(std::uint32_t c) const
    {
        if (c >= _bits)
            panic("CommBitset: id ", c, " out of range (width ", _bits,
                  ")");
    }

    std::size_t _bits = 0;
    std::vector<std::uint64_t> _words;
    /** Cached popcount of _words; maintained by insert/erase/resize. */
    std::size_t _count = 0;
};

} // namespace minnoc::core

#endif // MINNOC_CORE_COMM_BITSET_HPP
