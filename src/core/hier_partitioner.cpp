#include "hier_partitioner.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <numeric>
#include <utility>

#include "util/log.hpp"

namespace minnoc::core {

namespace {

/**
 * Weighted undirected graph over local vertex ids. `vweight[v]` is the
 * number of processors vertex v represents; `adj[v]` holds (neighbor,
 * edge weight) pairs sorted by neighbor id.
 */
struct LevelGraph
{
    std::vector<std::uint32_t> vweight;
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> adj;

    std::size_t size() const { return vweight.size(); }
};

/** Coarsest-graph size the matching loop aims for. */
constexpr std::size_t kCoarseTarget = 24;

/** Boundary-refinement passes per uncoarsening level. */
constexpr std::uint32_t kRefinePasses = 2;

/**
 * Heavy-edge matching: visit vertices ascending; an unmatched vertex
 * grabs its heaviest unmatched neighbor (ties toward the smaller id).
 * @return fine-to-coarse vertex map and the coarse vertex count, or
 *         coarse count == fine count when no pair matched (no progress).
 */
std::pair<std::vector<std::uint32_t>, std::size_t>
heavyEdgeMatch(const LevelGraph &g)
{
    const std::size_t n = g.size();
    constexpr auto kUnmatched = static_cast<std::uint32_t>(-1);
    std::vector<std::uint32_t> mate(n, kUnmatched);
    std::size_t pairs = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
        if (mate[v] != kUnmatched)
            continue;
        std::uint32_t best = kUnmatched;
        std::uint64_t bestW = 0;
        for (const auto &[u, w] : g.adj[v]) {
            if (mate[u] != kUnmatched || u == v)
                continue;
            if (w > bestW || (w == bestW && (best == kUnmatched ||
                                             u < best))) {
                best = u;
                bestW = w;
            }
        }
        if (best != kUnmatched) {
            mate[v] = best;
            mate[best] = v;
            ++pairs;
        }
    }

    // Assign coarse ids in ascending visit order: a vertex (or pair)
    // gets the next id the first time either member is visited.
    std::vector<std::uint32_t> map(n, kUnmatched);
    std::uint32_t next = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
        if (map[v] != kUnmatched)
            continue;
        map[v] = next;
        if (mate[v] != kUnmatched)
            map[mate[v]] = next;
        ++next;
    }
    return {std::move(map), pairs ? next : n};
}

/** Contract @p g along @p map into a graph with @p coarseN vertices. */
LevelGraph
contract(const LevelGraph &g, const std::vector<std::uint32_t> &map,
         std::size_t coarseN)
{
    LevelGraph out;
    out.vweight.assign(coarseN, 0);
    out.adj.assign(coarseN, {});
    for (std::uint32_t v = 0; v < g.size(); ++v)
        out.vweight[map[v]] += g.vweight[v];

    // Accumulate coarse edge weights; self-loops (internal edges of a
    // matched pair) vanish, which is exactly the matched weight saved.
    std::vector<std::uint64_t> row(coarseN, 0);
    std::vector<std::uint32_t> touched;
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
        halves(coarseN);
    for (std::uint32_t v = 0; v < g.size(); ++v) {
        const std::uint32_t cv = map[v];
        for (const auto &[u, w] : g.adj[v]) {
            const std::uint32_t cu = map[u];
            if (cu == cv)
                continue;
            if (row[cu] == 0)
                touched.push_back(cu);
            row[cu] += w;
        }
        // Per-fine-vertex partial rows; the sort+merge below combines
        // the two partials of a matched pair.
        halves[cv].reserve(halves[cv].size() + touched.size());
        for (const std::uint32_t cu : touched) {
            halves[cv].emplace_back(cu, row[cu]);
            row[cu] = 0;
        }
        touched.clear();
    }
    for (std::uint32_t cv = 0; cv < coarseN; ++cv) {
        auto &h = halves[cv];
        std::sort(h.begin(), h.end());
        auto &merged = out.adj[cv];
        for (const auto &[cu, w] : h) {
            if (!merged.empty() && merged.back().first == cu)
                merged.back().second += w;
            else
                merged.emplace_back(cu, w);
        }
    }
    return out;
}

/**
 * Greedy growth initial bisection of the coarsest graph: seed with the
 * heaviest vertex, grow along the strongest connection until side 0
 * reaches half the total weight.
 */
std::vector<std::uint8_t>
initialBisect(const LevelGraph &g)
{
    const std::size_t n = g.size();
    const std::uint64_t total =
        std::accumulate(g.vweight.begin(), g.vweight.end(),
                        std::uint64_t{0});
    const std::uint64_t target = total / 2;

    std::uint32_t seed = 0;
    for (std::uint32_t v = 1; v < n; ++v) {
        if (g.vweight[v] > g.vweight[seed])
            seed = v;
    }

    std::vector<std::uint8_t> part(n, 1);
    std::vector<std::uint64_t> link(n, 0); // weight into side 0
    std::vector<std::uint8_t> in(n, 0);
    auto add = [&](std::uint32_t v) {
        part[v] = 0;
        in[v] = 1;
        for (const auto &[u, w] : g.adj[v])
            link[u] += w;
    };
    add(seed);
    std::uint64_t grown = g.vweight[seed];
    while (grown < target) {
        std::uint32_t pick = static_cast<std::uint32_t>(-1);
        for (std::uint32_t v = 0; v < n; ++v) {
            if (in[v])
                continue;
            if (pick == static_cast<std::uint32_t>(-1) ||
                link[v] > link[pick]) {
                pick = v; // link ties resolve to the smallest id
            }
        }
        if (pick == static_cast<std::uint32_t>(-1))
            break; // everything is on side 0 already
        add(pick);
        grown += g.vweight[pick];
    }
    return part;
}

/**
 * FM-lite boundary refinement: greedy single-vertex moves that reduce
 * the cut, subject to the balance tolerance; imbalance-reducing
 * zero-gain moves are also taken. Neither side may empty.
 */
std::uint64_t
refine(const LevelGraph &g, std::vector<std::uint8_t> &part,
       std::uint64_t tol)
{
    const std::size_t n = g.size();
    std::uint64_t moves = 0;
    std::array<std::uint64_t, 2> size{0, 0};
    for (std::uint32_t v = 0; v < n; ++v)
        size[part[v]] += g.vweight[v];

    auto imbalance = [](std::uint64_t a, std::uint64_t b) {
        return a > b ? a - b : b - a;
    };

    for (std::uint32_t pass = 0; pass < kRefinePasses; ++pass) {
        bool changed = false;
        for (std::uint32_t v = 0; v < n; ++v) {
            const std::uint8_t from = part[v];
            const std::uint8_t to = from ^ 1;
            const std::uint64_t w = g.vweight[v];
            if (size[from] <= w)
                continue; // would empty its side
            std::int64_t gain = 0;
            for (const auto &[u, ew] : g.adj[v]) {
                gain += part[u] == from
                            ? -static_cast<std::int64_t>(ew)
                            : static_cast<std::int64_t>(ew);
            }
            const std::uint64_t imbNow = imbalance(size[0], size[1]);
            std::array<std::uint64_t, 2> after = size;
            after[from] -= w;
            after[to] += w;
            const std::uint64_t imbNew = imbalance(after[0], after[1]);
            const bool balanced = imbNew <= std::max(tol, imbNow);
            const bool better =
                gain > 0 || (gain == 0 && imbNew < imbNow);
            if (balanced && better) {
                part[v] = to;
                size = after;
                changed = true;
                ++moves;
            }
        }
        if (!changed)
            break;
    }
    return moves;
}

/**
 * Multilevel bisection of the subgraph induced by @p verts (global
 * processor ids): coarsen by heavy-edge matching to ~kCoarseTarget
 * vertices, greedy-bisect the coarsest graph, then project back up,
 * refining the boundary at every level.
 * @return (side A, side B) as global processor ids, both non-empty.
 */
std::pair<std::vector<ProcId>, std::vector<ProcId>>
multilevelBisect(
    const std::vector<ProcId> &verts,
    const std::vector<std::vector<std::pair<ProcId, std::uint64_t>>>
        &globalAdj,
    std::uint64_t tol, HierStats &stats)
{
    const std::size_t n = verts.size();

    // Induce the local graph (vertex i == verts[i]).
    std::vector<std::uint32_t> local(globalAdj.size(),
                                     static_cast<std::uint32_t>(-1));
    for (std::uint32_t i = 0; i < n; ++i)
        local[verts[i]] = i;
    LevelGraph g;
    g.vweight.assign(n, 1);
    g.adj.assign(n, {});
    for (std::uint32_t i = 0; i < n; ++i) {
        for (const auto &[u, w] : globalAdj[verts[i]]) {
            const std::uint32_t j = local[u];
            if (j != static_cast<std::uint32_t>(-1) && j != i)
                g.adj[i].emplace_back(j, w);
        }
    }

    // Coarsen.
    std::vector<LevelGraph> levels{std::move(g)};
    std::vector<std::vector<std::uint32_t>> maps;
    while (levels.back().size() > kCoarseTarget) {
        auto [map, coarseN] = heavyEdgeMatch(levels.back());
        if (coarseN >= levels.back().size())
            break; // no edge matched: nothing left to contract
        levels.push_back(contract(levels.back(), map, coarseN));
        maps.push_back(std::move(map));
        ++stats.coarsenLevels;
    }

    // Initial partition of the coarsest level, then uncoarsen+refine.
    std::vector<std::uint8_t> part = initialBisect(levels.back());
    stats.refineMoves += refine(levels.back(), part, tol);
    for (std::size_t lvl = maps.size(); lvl-- > 0;) {
        const auto &map = maps[lvl];
        std::vector<std::uint8_t> finePart(levels[lvl].size());
        for (std::uint32_t v = 0; v < finePart.size(); ++v)
            finePart[v] = part[map[v]];
        part = std::move(finePart);
        stats.refineMoves += refine(levels[lvl], part, tol);
    }

    std::pair<std::vector<ProcId>, std::vector<ProcId>> out;
    for (std::uint32_t i = 0; i < n; ++i)
        (part[i] == 0 ? out.first : out.second).push_back(verts[i]);

    // A one-sided partition cannot drive a split; fall back to an even
    // id-order cut (can only happen on edgeless or degenerate graphs).
    if (out.first.empty() || out.second.empty()) {
        out.first.assign(verts.begin(),
                         verts.begin() + static_cast<std::ptrdiff_t>(
                                             n / 2));
        out.second.assign(verts.begin() + static_cast<std::ptrdiff_t>(
                                              n / 2),
                          verts.end());
    }
    return out;
}

} // namespace

HierStats
hierarchicalPrePartition(DesignNetwork &net,
                         const PartitionerConfig &config,
                         PartitionResult &result)
{
    HierStats stats;
    if (net.numSwitches() != 1)
        panic("hierarchicalPrePartition: network already partitioned");
    const std::uint32_t leaf = std::max(1u, config.hierarchicalLeaf);
    const std::uint32_t procs = net.numProcs();
    if (procs <= leaf)
        return stats;

    // Communication graph: edge weight = comms between the pair, both
    // directions (each crossing comm widens the eventual cut pipe).
    const CliqueSet &cliques = net.cliques();
    std::vector<std::vector<std::pair<ProcId, std::uint64_t>>> adj(procs);
    {
        std::vector<std::pair<ProcId, ProcId>> edges;
        edges.reserve(cliques.numComms());
        for (CommId c = 0; c < cliques.numComms(); ++c) {
            const Comm &comm = cliques.comm(c);
            if (comm.src != comm.dst)
                edges.emplace_back(std::min(comm.src, comm.dst),
                                   std::max(comm.src, comm.dst));
        }
        std::sort(edges.begin(), edges.end());
        for (std::size_t i = 0; i < edges.size();) {
            std::size_t j = i;
            while (j < edges.size() && edges[j] == edges[i])
                ++j;
            const auto [a, b] = edges[i];
            const auto w = static_cast<std::uint64_t>(j - i);
            adj[a].emplace_back(b, w);
            adj[b].emplace_back(a, w);
            i = j;
        }
        for (auto &row : adj)
            std::sort(row.begin(), row.end());
    }

    // Depth-first over the partition tree; the pop order (and with it
    // every new switch id) is deterministic.
    const std::uint64_t tol = std::max<std::uint64_t>(
        config.maxImbalance, 1);
    std::vector<std::pair<SwitchId, std::vector<ProcId>>> work;
    work.emplace_back(SwitchId{0}, net.procsOf(0));
    while (!work.empty()) {
        auto [s, group] = std::move(work.back());
        work.pop_back();
        if (group.size() <= leaf) {
            ++stats.leaves;
            continue;
        }
        auto [sideA, sideB] = multilevelBisect(group, adj, tol, stats);
        const SwitchId t = net.splitSwitchInto(s, sideB);
        ++stats.splits;
        ++result.numSplits;
        result.history.push_back(PartitionStep{
            PartitionStep::Kind::Split, s, t, kNoProc,
            net.totalEstimatedLinks(),
            "hier split S" + std::to_string(s)});
        if (config.paranoid)
            net.checkInvariants();
        work.emplace_back(t, std::move(sideB));
        work.emplace_back(s, std::move(sideA));
    }
    return stats;
}

} // namespace minnoc::core
