/**
 * @file
 * Hierarchical (multilevel) recursive bisection pre-partitioner.
 *
 * The paper's flat bisection loop splits one random violating switch at
 * a time and re-settles with per-move cut estimation; at four-digit
 * rank counts the settle loops and the global route consolidation in
 * between dominate and the synthesis time grows super-linearly. The
 * classic multilevel answer (METIS-style, and the decomposition
 * approach of Ogras & Marculescu): coarsen the communication graph by
 * heavy-edge matching until it is small, bisect the coarse graph
 * greedily, then uncoarsen level by level with local boundary
 * refinement. Applied recursively this pre-partitions the megaswitch
 * down to leaf-sized processor groups in O(E log N) graph work before
 * the constraint loop ever runs, so the expensive settle machinery only
 * operates on leaf-sized switches.
 *
 * Everything here is deterministic: vertices are visited in ascending
 * id order, ties break toward smaller ids, and no RNG is consumed —
 * the produced partition tree is a pure function of the pattern and
 * the config, which keeps large-N designs byte-identical across
 * reruns and thread counts.
 *
 * Coarsening invariants (documented in DESIGN.md §5i):
 *  - node weights are processor counts and are conserved level to
 *    level (a coarse node's weight is the sum of its constituents);
 *  - edge weights are summed comm multiplicities, so the coarse cut of
 *    any coarse partition equals the fine cut of its projection;
 *  - matching is heavy-edge maximal: visiting v ascending, v matches
 *    its heaviest unmatched neighbor (ties toward the smallest id).
 */

#ifndef MINNOC_CORE_HIER_PARTITIONER_HPP
#define MINNOC_CORE_HIER_PARTITIONER_HPP

#include <cstdint>

#include "partitioner.hpp"

namespace minnoc::core {

/** Statistics of one hierarchical pre-partition run. */
struct HierStats
{
    /** Bisections applied to the network (== switches created). */
    std::uint32_t splits = 0;
    /** Coarsening levels built across all bisections. */
    std::uint32_t coarsenLevels = 0;
    /** Boundary-refinement moves committed across all levels. */
    std::uint64_t refineMoves = 0;
    /** Leaf groups the megaswitch was cut into. */
    std::uint32_t leaves = 0;
};

/**
 * Recursively bisect the megaswitch of @p net down to groups of at most
 * `config.hierarchicalLeaf` processors using multilevel bisection over
 * the communication graph (edge weight = number of comms between the
 * two processors, both directions).
 *
 * Preconditions: the network must still be the initial megaswitch
 * (numSwitches() == 1). Splits and history are recorded into
 * @p result like the flat path's.
 */
HierStats hierarchicalPrePartition(DesignNetwork &net,
                                   const PartitionerConfig &config,
                                   PartitionResult &result);

} // namespace minnoc::core

#endif // MINNOC_CORE_HIER_PARTITIONER_HPP
