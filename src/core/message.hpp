/**
 * @file
 * Timed messages (paper Definition 2).
 *
 * Each message m carries its source S(m), destination D(m), start time
 * T_s(m) at which it leaves the source, and finish time T_f(m) at which
 * it is completely absorbed by the destination. Times are real-valued;
 * the unit is up to the producer (the synthetic trace generators use
 * cycles).
 */

#ifndef MINNOC_CORE_MESSAGE_HPP
#define MINNOC_CORE_MESSAGE_HPP

#include <cstdint>
#include <ostream>

#include "types.hpp"

namespace minnoc::core {

/** One timed message instance of a communication. */
struct Message
{
    ProcId src = kNoProc;
    ProcId dst = kNoProc;
    double tStart = 0.0;
    double tFinish = 0.0;
    std::uint64_t bytes = 0;
    /** Library-call site that produced this message (analyzer grouping). */
    std::uint32_t callId = 0;

    Message() = default;

    Message(ProcId s, ProcId d, double ts, double tf, std::uint64_t b = 0,
            std::uint32_t call = 0)
        : src(s), dst(d), tStart(ts), tFinish(tf), bytes(b), callId(call)
    {
    }

    /** The communication (s, d) this message instantiates. */
    Comm comm() const { return Comm(src, dst); }

    /**
     * Paper Definition 3: two messages potentially collide iff their
     * active intervals [T_s, T_f] overlap (closed intervals).
     */
    bool
    overlaps(const Message &other) const
    {
        return tStart <= other.tFinish && other.tStart <= tFinish;
    }

    bool operator==(const Message &o) const = default;
};

inline std::ostream &
operator<<(std::ostream &os, const Message &m)
{
    return os << m.comm() << '[' << m.tStart << ',' << m.tFinish << ']';
}

} // namespace minnoc::core

#endif // MINNOC_CORE_MESSAGE_HPP
