#include "verify.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/log.hpp"

namespace minnoc::core {

std::string
ContentionViolation::toString(const CliqueSet &cliques) const
{
    std::ostringstream oss;
    oss << "comms " << cliques.comm(a) << " and " << cliques.comm(b)
        << " share link " << link << " of pipe S" << pipe.a << "-S"
        << pipe.b << (forward ? " (fwd)" : " (bwd)");
    return oss.str();
}

namespace {

/** Directed channel identity: pipe + direction + link index. */
struct Channel
{
    PipeKey pipe;
    bool forward;
    std::uint32_t link;

    auto operator<=>(const Channel &o) const = default;
};

/** Occupancy map: channel -> comms assigned to it. */
std::map<Channel, std::vector<CommId>>
channelOccupancy(const FinalizedDesign &design)
{
    std::map<Channel, std::vector<CommId>> occ;
    for (const auto &p : design.pipes) {
        for (const auto &[c, link] : p.fwdLink)
            occ[Channel{p.key, true, link}].push_back(c);
        for (const auto &[c, link] : p.bwdLink)
            occ[Channel{p.key, false, link}].push_back(c);
    }
    return occ;
}

/**
 * Theorem-1 violations of one pipe, in the order the global channel map
 * would report them: bwd channels before fwd (false < true), links
 * ascending within a direction, comm pairs in ascending (i, j) order.
 * Violations cannot cross pipes, so concatenating this over the pipes
 * sorted by key reproduces checkContentionFree exactly.
 */
std::vector<ContentionViolation>
pipeViolations(const FinalizedPipe &p, const CliqueSet &cliques)
{
    std::vector<ContentionViolation> violations;
    auto side = [&](const std::map<CommId, std::uint32_t> &assign,
                    bool forward) {
        std::map<std::uint32_t, std::vector<CommId>> occ;
        for (const auto &[c, link] : assign)
            occ[link].push_back(c);
        for (const auto &[link, comms] : occ) {
            for (std::size_t i = 0; i < comms.size(); ++i) {
                for (std::size_t j = i + 1; j < comms.size(); ++j) {
                    if (cliques.contend(comms[i], comms[j])) {
                        violations.push_back(ContentionViolation{
                            comms[i], comms[j], p.key, forward, link});
                    }
                }
            }
        }
    };
    side(p.bwdLink, false);
    side(p.fwdLink, true);
    return violations;
}

} // namespace

std::vector<std::pair<CommId, CommId>>
resourceConflictSet(const FinalizedDesign &design)
{
    std::vector<std::pair<CommId, CommId>> pairs;
    for (const auto &[channel, comms] : channelOccupancy(design)) {
        for (std::size_t i = 0; i < comms.size(); ++i) {
            for (std::size_t j = i + 1; j < comms.size(); ++j) {
                pairs.emplace_back(std::min(comms[i], comms[j]),
                                   std::max(comms[i], comms[j]));
            }
        }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    return pairs;
}

std::vector<ContentionViolation>
checkContentionFree(const FinalizedDesign &design, const CliqueSet &cliques)
{
    std::vector<ContentionViolation> violations;
    for (const auto &p : design.pipes) {
        auto v = pipeViolations(p, cliques);
        violations.insert(violations.end(), v.begin(), v.end());
    }
    return violations;
}

std::vector<ContentionViolation>
IncrementalVerifier::check(const FinalizedDesign &design)
{
    // Rebuild the cache map each call so pipes absent from this design
    // drop out instead of accumulating.
    std::map<PipeKey, Entry> fresh;
    std::vector<ContentionViolation> violations;
    for (const auto &p : design.pipes) {
        auto it = _cache.find(p.key);
        if (it != _cache.end() && it->second.fwdLink == p.fwdLink &&
            it->second.bwdLink == p.bwdLink) {
            ++_reused;
            auto node = _cache.extract(it);
            violations.insert(violations.end(),
                              node.mapped().violations.begin(),
                              node.mapped().violations.end());
            fresh.insert(std::move(node));
            continue;
        }
        ++_checked;
        Entry e;
        e.fwdLink = p.fwdLink;
        e.bwdLink = p.bwdLink;
        e.violations = pipeViolations(p, *_cliques);
        violations.insert(violations.end(), e.violations.begin(),
                          e.violations.end());
        fresh.emplace(p.key, std::move(e));
    }
    _cache = std::move(fresh);
    return violations;
}

} // namespace minnoc::core
