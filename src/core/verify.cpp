#include "verify.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/log.hpp"

namespace minnoc::core {

std::string
ContentionViolation::toString(const CliqueSet &cliques) const
{
    std::ostringstream oss;
    oss << "comms " << cliques.comm(a) << " and " << cliques.comm(b)
        << " share link " << link << " of pipe S" << pipe.a << "-S"
        << pipe.b << (forward ? " (fwd)" : " (bwd)");
    return oss.str();
}

namespace {

/** Directed channel identity: pipe + direction + link index. */
struct Channel
{
    PipeKey pipe;
    bool forward;
    std::uint32_t link;

    auto operator<=>(const Channel &o) const = default;
};

/** Occupancy map: channel -> comms assigned to it. */
std::map<Channel, std::vector<CommId>>
channelOccupancy(const FinalizedDesign &design)
{
    std::map<Channel, std::vector<CommId>> occ;
    for (const auto &p : design.pipes) {
        for (const auto &[c, link] : p.fwdLink)
            occ[Channel{p.key, true, link}].push_back(c);
        for (const auto &[c, link] : p.bwdLink)
            occ[Channel{p.key, false, link}].push_back(c);
    }
    return occ;
}

} // namespace

std::vector<std::pair<CommId, CommId>>
resourceConflictSet(const FinalizedDesign &design)
{
    std::vector<std::pair<CommId, CommId>> pairs;
    for (const auto &[channel, comms] : channelOccupancy(design)) {
        for (std::size_t i = 0; i < comms.size(); ++i) {
            for (std::size_t j = i + 1; j < comms.size(); ++j) {
                pairs.emplace_back(std::min(comms[i], comms[j]),
                                   std::max(comms[i], comms[j]));
            }
        }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    return pairs;
}

std::vector<ContentionViolation>
checkContentionFree(const FinalizedDesign &design, const CliqueSet &cliques)
{
    std::vector<ContentionViolation> violations;
    for (const auto &[channel, comms] : channelOccupancy(design)) {
        for (std::size_t i = 0; i < comms.size(); ++i) {
            for (std::size_t j = i + 1; j < comms.size(); ++j) {
                if (cliques.contend(comms[i], comms[j])) {
                    violations.push_back(ContentionViolation{
                        comms[i], comms[j], channel.pipe, channel.forward,
                        channel.link});
                }
            }
        }
    }
    return violations;
}

} // namespace minnoc::core
