#include "methodology.hpp"

#include <optional>
#include <sstream>
#include <thread>

#include "route_optimizer.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace minnoc::core {

std::string
MethodologyConfig::signature() const
{
    const auto &p = partitioner;
    std::ostringstream oss;
    oss << "deg=" << p.constraints.maxDegree
        << ";pps=" << p.constraints.maxProcsPerSwitch
        << ";seed=" << p.seed << ";imb=" << p.maxImbalance
        << ";splits=" << p.maxSplits << ";mps=" << p.maxMovesPerSplit
        << ";anneal=" << p.anneal << ";t0=" << p.annealT0
        << ";alpha=" << p.annealAlpha << ";mpl=" << p.annealMovesPerLevel
        << ";opt=" << p.optimizeRoutes << ";cons=" << p.consolidate
        << ";cp=" << p.consolidatePasses
        << ";ucost=" << p.unidirectionalCost
        << ";budget=" << finalize.exactNodeBudget
        << ";uni=" << finalize.unidirectional << ";rounds=" << maxRounds
        << ";reduce=" << reduceCliques << ";restarts=" << restarts
        << ";merge=" << mergeSwitches;
    // Appended only when non-default so signatures of pre-existing
    // configurations — and the cache keys derived from them — are
    // unchanged by the introduction of the hierarchical mode.
    if (p.hierarchicalThreshold != 64 || p.hierarchicalLeaf != 8) {
        oss << ";hier=" << p.hierarchicalThreshold << ","
            << p.hierarchicalLeaf;
    }
    return oss.str();
}

std::string
DesignOutcome::summary() const
{
    std::ostringstream oss;
    oss << "switches=" << design.numSwitches
        << " links=" << design.totalLinks()
        << " constraintsMet=" << constraintsMet
        << " violations=" << violations.size() << " rounds=" << rounds;
    return oss.str();
}

namespace {

/** Exact-degree constraint check over a finalized design. */
std::vector<SwitchId>
exactViolators(const FinalizedDesign &design, const DesignConstraints &dc)
{
    std::vector<SwitchId> bad;
    for (SwitchId s = 0; s < design.numSwitches; ++s) {
        const auto procs =
            static_cast<std::uint32_t>(design.switchProcs[s].size());
        if (!dc.satisfied(design.switchDegree(s), procs))
            bad.push_back(s);
    }
    return bad;
}

/** One partition/finalize attempt plus its final network state. */
struct SeedResult
{
    DesignOutcome outcome;
    DesignNetwork net;
};

/** One partition/finalize attempt from a single seed. */
SeedResult
runOnce(const CliqueSet &cliques, const MethodologyConfig &config,
        std::uint64_t seed)
{
    DesignOutcome outcome;
    DesignNetwork net(cliques);
    PartitionerConfig pcfg = config.partitioner;
    pcfg.seed = seed;
    if (config.finalize.unidirectional)
        pcfg.unidirectionalCost = true;
    Rng rng(seed);

    for (std::uint32_t round = 0; round < config.maxRounds; ++round) {
        outcome.rounds = round + 1;

        // Phase 1: partition under Fast_Color estimates.
        auto pr = partitionNetwork(net, pcfg, rng);
        outcome.movesEvaluated += pr.movesEvaluated;
        outcome.history.insert(outcome.history.end(), pr.history.begin(),
                               pr.history.end());

        // Phase 2: finalize with formal coloring.
        outcome.design = finalizeDesign(net, config.finalize);
        outcome.history.push_back(PartitionStep{
            PartitionStep::Kind::Finalize, kNoSwitch, kNoSwitch, kNoProc,
            outcome.design.totalLinks(), "finalize"});

        // Phase 3: re-check constraints against exact link counts.
        const auto bad =
            exactViolators(outcome.design, pcfg.constraints);
        if (bad.empty()) {
            outcome.constraintsMet = pr.feasible;

            // Polish: guarded quality refinement. Processor swaps plus
            // consolidation can shave links, but only a re-finalized,
            // still-feasible, Theorem-1-clean design is accepted;
            // otherwise roll back. The verifier persists across polish
            // iterations, so each re-check only recolors pipes whose
            // link assignment actually changed. The swap refinement is
            // quadratic in processors and is skipped in large-N mode.
            const bool big =
                pcfg.largeScale(net.numProcs());
            IncrementalVerifier verifier(cliques);
            DesignNetwork snapshot = net;
            for (int polish = 0; polish < 3; ++polish) {
                const bool swapped =
                    !big &&
                    refineProcSwaps(net, pcfg.constraints, rng, 2);
                const auto cs = consolidateRoutes(
                    net, pcfg.consolidatePasses,
                    pcfg.constraints.maxDegree, &rng,
                    pcfg.unidirectionalCost);
                if (!swapped && cs.committedMoves == 0)
                    break;
                auto polished = finalizeDesign(net, config.finalize);
                const auto measure = [](const FinalizedDesign &d) {
                    return d.unidirectional ? d.totalChannels()
                                            : 2 * d.totalLinks();
                };
                if (exactViolators(polished, pcfg.constraints).empty() &&
                    measure(polished) < measure(outcome.design) &&
                    verifier.check(polished).empty()) {
                    outcome.design = std::move(polished);
                    snapshot = net;
                } else {
                    net = snapshot;
                    break;
                }
            }
            break;
        }

        // Split the first exact violator that still has >= 2 procs and
        // loop; when none is splittable, spread traffic harder (the
        // exact chromatic numbers can exceed the Fast_Color estimates,
        // so repair against a tightened budget) and re-finalize.
        SwitchId splitTarget = kNoSwitch;
        for (const SwitchId s : bad) {
            if (net.procsOf(s).size() >= 2) {
                splitTarget = s;
                break;
            }
        }
        if (splitTarget == kNoSwitch) {
            const std::uint32_t tightened =
                pcfg.constraints.maxDegree > 1
                    ? pcfg.constraints.maxDegree - 1
                    : 1;
            const auto rs = repairDegrees(net, tightened, 4, &rng);
            outcome.constraintsMet = false;
            if (rs.committedMoves == 0)
                break; // stuck for good from this seed
            continue;
        }
        PartitionResult forced;
        splitAndSettle(net, pcfg, rng, splitTarget, forced);
        outcome.movesEvaluated += forced.movesEvaluated;
        outcome.history.insert(outcome.history.end(),
                               forced.history.begin(),
                               forced.history.end());
        outcome.constraintsMet = false; // until a clean round completes
    }

    return SeedResult{std::move(outcome), std::move(net)};
}

/** Estimate-level constraint violations (mirror of the partitioner's). */
bool
estimatesSatisfied(const DesignNetwork &net, const DesignConstraints &dc)
{
    for (SwitchId s = 0; s < net.numSwitches(); ++s) {
        const auto procs =
            static_cast<std::uint32_t>(net.procsOf(s).size());
        if (!dc.satisfied(net.estimatedDegree(s), procs))
            return false;
    }
    return true;
}

/**
 * Switch-merge polish: the recursive-bisection loop tends to over-split
 * dense patterns down to one processor per switch even when pairs of
 * switches would fit the degree budget together (the paper's generated
 * networks share switches between processors). Try merging switch
 * pairs, re-consolidating routes, and keep any merge whose finalized
 * design still meets the constraints with at most one extra link.
 */
void
mergeSwitches(DesignNetwork &net, DesignOutcome &outcome,
              const MethodologyConfig &config, const CliqueSet &cliques,
              const PartitionerConfig &pcfg, Rng &rng, ThreadPool *pool)
{
    const auto &dc = pcfg.constraints;
    // Merge candidates differ from the incumbent in the few pipes around
    // the merged pair; the incremental verifier re-checks only those.
    IncrementalVerifier verifier(cliques);
    // Merging shares switches but lengthens some routes; cap the total
    // hop growth so resource savings do not silently buy latency.
    auto totalHops = [](const FinalizedDesign &d) {
        std::size_t hops = 0;
        for (const auto &r : d.routes)
            hops += r.size() - 1;
        return hops;
    };
    const std::size_t hopBudget =
        totalHops(outcome.design) + totalHops(outcome.design) / 4;
    bool improved = true;
    while (improved) {
        improved = false;
        const auto numSwitches =
            static_cast<SwitchId>(net.numSwitches());
        for (SwitchId s = 0; s < numSwitches && !improved; ++s) {
            if (net.procsOf(s).empty())
                continue;
            for (SwitchId t = s + 1; t < numSwitches && !improved;
                 ++t) {
                if (net.procsOf(t).empty())
                    continue;
                const auto combinedProcs = net.procsOf(s).size() +
                                           net.procsOf(t).size();
                // A merged switch needs at least one link if anything
                // leaves it; quick infeasibility filter.
                if (combinedProcs + 1 > dc.maxDegree)
                    continue;

                DesignNetwork snapshot = net;
                const std::vector<ProcId> procs = net.procsOf(t);
                for (const ProcId p : procs)
                    net.moveProc(p, s);
                consolidateRoutes(net, pcfg.consolidatePasses,
                                  dc.maxDegree, &rng,
                                  pcfg.unidirectionalCost, pool);
                if (estimatesSatisfied(net, dc)) {
                    auto merged = finalizeDesign(net, config.finalize);
                    const auto linkBudget =
                        (merged.unidirectional
                             ? outcome.design.totalChannels()
                             : 2 * outcome.design.totalLinks()) +
                        2;
                    const auto mergedLinks =
                        merged.unidirectional
                            ? merged.totalChannels()
                            : 2 * merged.totalLinks();
                    if (exactViolators(merged, dc).empty() &&
                        merged.numSwitches <
                            outcome.design.numSwitches &&
                        mergedLinks <= linkBudget &&
                        totalHops(merged) <= hopBudget &&
                        verifier.check(merged).empty()) {
                        outcome.design = std::move(merged);
                        improved = true;
                        break;
                    }
                }
                net = std::move(snapshot);
            }
        }
    }
}

/** Total exact-degree violation of a finalized design. */
std::uint64_t
exactViolation(const FinalizedDesign &d, const DesignConstraints &dc)
{
    std::uint64_t total = 0;
    for (SwitchId s = 0; s < d.numSwitches; ++s) {
        const auto deg = d.switchDegree(s);
        if (deg > dc.maxDegree)
            total += deg - dc.maxDegree;
    }
    return total;
}

/**
 * Publish one consumed restart's telemetry: quality gauges plus the
 * annealing cost curve (estimated links after every recorded step).
 * Called from the selection fold only, which replays the sequential
 * seed order at any thread count — so the recorded content is
 * thread-count-invariant by construction.
 */
void
recordRestart(obs::MetricsRegistry &metrics, std::uint32_t i,
              const DesignOutcome &outcome)
{
    const std::string prefix =
        "methodology/restart/" + std::to_string(i) + "/";
    metrics.gauge(prefix + "links")
        .set(static_cast<double>(outcome.design.totalLinks()));
    metrics.gauge(prefix + "switches")
        .set(static_cast<double>(outcome.design.numSwitches));
    metrics.gauge(prefix + "feasible")
        .set(outcome.constraintsMet ? 1.0 : 0.0);
    metrics.gauge(prefix + "rounds")
        .set(static_cast<double>(outcome.rounds));
    metrics.counter(prefix + "moves_evaluated")
        .add(outcome.movesEvaluated);
    auto &curve = metrics.series(prefix + "cost_curve");
    std::int64_t step = 0;
    for (const auto &h : outcome.history)
        curve.sample(step++, static_cast<double>(h.estimatedLinks));
}

/** True when @p a is a strictly better design than @p b. */
bool
betterThan(const DesignOutcome &a, const DesignOutcome &b,
           const DesignConstraints &dc)
{
    if (a.constraintsMet != b.constraintsMet)
        return a.constraintsMet;
    if (!a.constraintsMet) {
        // Both infeasible: closer to feasible wins.
        const auto va = exactViolation(a.design, dc);
        const auto vb = exactViolation(b.design, dc);
        if (va != vb)
            return va < vb;
    }
    // Unidirectional designs compete on channel count; duplex designs
    // on full-duplex link count.
    const auto linksA = a.design.unidirectional
                            ? a.design.totalChannels()
                            : 2 * a.design.totalLinks();
    const auto linksB = b.design.unidirectional
                            ? b.design.totalChannels()
                            : 2 * b.design.totalLinks();
    if (linksA != linksB)
        return linksA < linksB;
    return a.design.numSwitches < b.design.numSwitches;
}

} // namespace

DesignOutcome
runMethodology(const CliqueSet &cliquesIn, const MethodologyConfig &config,
               ThreadPool *pool)
{
    // Work on a private copy so the (optional) maximum-clique reduction
    // does not mutate the caller's set.
    CliqueSet cliques = cliquesIn;
    if (config.reduceCliques)
        cliques.reduceToMaximum();
    // Restart workers share the clique set read-only; its lazy caches
    // (clique masks, contention index) must exist before they race.
    cliques.prepareCaches();

    const std::uint32_t attempts = std::max(1u, config.restarts);
    const std::uint32_t threads =
        pool ? std::min(pool->size(), attempts) : 1u;

    DesignOutcome best;
    std::optional<DesignNetwork> bestNet;
    std::uint32_t restartsUsed = 0;

    // The sequential preference order: fold restart i into the running
    // best, then stop once a feasible design has been found and at
    // least min(attempts, 4) seeds were sampled. Returns true to stop.
    auto select = [&](SeedResult &result, std::uint32_t i) {
        if constexpr (obs::kEnabled) {
            if (config.metrics)
                recordRestart(*config.metrics, i, result.outcome);
        }
        restartsUsed = i + 1;
        if (!bestNet ||
            betterThan(result.outcome, best,
                       config.partitioner.constraints)) {
            best = std::move(result.outcome);
            bestNet.emplace(std::move(result.net));
        }
        return best.constraintsMet && i + 1 >= std::min(attempts, 4u);
    };

    const std::int64_t restartsStart =
        config.traceLog || config.metrics ? obs::wallMicros() : 0;

    if (!pool) {
        for (std::uint32_t i = 0; i < attempts; ++i) {
            // Restart granularity is the cancellation checkpoint: a
            // fired token abandons the search before the next attempt.
            checkCancel(config.cancel);
            auto result =
                runOnce(cliques, config, config.partitioner.seed + i);
            if (select(result, i))
                break;
        }
    } else {
        // Waves of independent restarts; selection then replays the
        // wave in seed order and discards anything past the sequential
        // stopping point, so the winner matches threads = 1 exactly.
        bool done = false;
        for (std::uint32_t i = 0; i < attempts && !done;) {
            const std::uint32_t wave = std::min(threads, attempts - i);
            std::vector<std::optional<SeedResult>> results(wave);
            pool->parallelFor(wave, [&](std::size_t w) {
                // Same per-restart checkpoint as the sequential path;
                // parallelFor rethrows the first CancelledError after
                // every task of the wave has returned.
                checkCancel(config.cancel);
                results[w].emplace(runOnce(
                    cliques, config,
                    config.partitioner.seed + i +
                        static_cast<std::uint32_t>(w)));
            });
            for (std::uint32_t w = 0; w < wave && !done; ++w)
                done = select(*results[w], i + w);
            i += wave;
        }
    }
    best.restartsUsed = restartsUsed;
    if (!best.constraintsMet) {
        warn("methodology: no seed met the design constraints after ",
             attempts, " restarts; returning best effort");
    }
    if constexpr (obs::kEnabled) {
        if (config.traceLog) {
            config.traceLog->complete(
                "restarts", obs::kPidMethodology, 0, restartsStart,
                obs::wallMicros() - restartsStart);
        }
    }

    // Switch-merge polish on the winner (see mergeSwitches). Quadratic
    // in switches with a full consolidate + finalize per candidate, so
    // it is gated off in large-N mode.
    checkCancel(config.cancel);
    const bool big =
        config.partitioner.largeScale(cliques.numProcs());
    if (!big && best.constraintsMet && config.mergeSwitches && bestNet) {
        const std::int64_t mergeStart =
            config.traceLog ? obs::wallMicros() : 0;
        PartitionerConfig pcfg = config.partitioner;
        if (config.finalize.unidirectional)
            pcfg.unidirectionalCost = true;
        Rng rng(config.partitioner.seed ^ 0x5bd1e995);
        mergeSwitches(*bestNet, best, config, cliques, pcfg, rng, pool);
        if constexpr (obs::kEnabled) {
            if (config.traceLog) {
                config.traceLog->complete(
                    "merge_switches", obs::kPidMethodology, 0,
                    mergeStart, obs::wallMicros() - mergeStart);
            }
        }
    }

    // Theorem-1 verification of the final design.
    const std::int64_t verifyStart =
        config.traceLog ? obs::wallMicros() : 0;
    best.violations = checkContentionFree(best.design, cliques);
    if constexpr (obs::kEnabled) {
        if (config.traceLog) {
            config.traceLog->processName(obs::kPidMethodology,
                                         "minnoc methodology");
            config.traceLog->complete("verify", obs::kPidMethodology, 0,
                                      verifyStart,
                                      obs::wallMicros() - verifyStart);
        }
        if (config.metrics) {
            auto &m = *config.metrics;
            m.gauge("methodology/links")
                .set(static_cast<double>(best.design.totalLinks()));
            m.gauge("methodology/switches")
                .set(static_cast<double>(best.design.numSwitches));
            m.gauge("methodology/constraints_met")
                .set(best.constraintsMet ? 1.0 : 0.0);
            m.gauge("methodology/rounds")
                .set(static_cast<double>(best.rounds));
            m.gauge("methodology/violations")
                .set(static_cast<double>(best.violations.size()));
            m.counter("methodology/moves_evaluated")
                .add(best.movesEvaluated);
            // Wall time is inherently run-dependent: flagged as timing
            // so the default JSON dump stays byte-reproducible.
            m.gauge("methodology/time/restarts_us", true)
                .set(static_cast<double>(obs::wallMicros() -
                                         restartsStart));
        }
    }
    return best;
}

DesignOutcome
runMethodology(const CliqueSet &cliques, const MethodologyConfig &config)
{
    const std::uint32_t attempts = std::max(1u, config.restarts);
    std::uint32_t threads =
        config.threads ? config.threads
                       : std::thread::hardware_concurrency();
    threads = std::min(std::max(threads, 1u), attempts);

    std::optional<ThreadPool> pool;
    if (threads > 1)
        pool.emplace(threads);
    return runMethodology(cliques, config, pool ? &*pool : nullptr);
}

} // namespace minnoc::core
