/**
 * @file
 * Theorem 1 verifier (paper Section 2.4).
 *
 * A finalized design is contention-free for its clique set iff the
 * intersection of the potential communication contention set C and the
 * network resource conflict set R is empty. At link granularity: no two
 * communications that co-occur in a contention clique may be assigned
 * the same physical link channel (pipe, direction, link index).
 */

#ifndef MINNOC_CORE_VERIFY_HPP
#define MINNOC_CORE_VERIFY_HPP

#include <string>
#include <vector>

#include "clique_set.hpp"
#include "finalize.hpp"

namespace minnoc::core {

/** One Theorem-1 violation: two contending comms sharing a channel. */
struct ContentionViolation
{
    CommId a = 0;
    CommId b = 0;
    PipeKey pipe;
    bool forward = true;
    std::uint32_t link = 0;

    std::string toString(const CliqueSet &cliques) const;
};

/**
 * The network resource conflict set R restricted to pairs of distinct
 * communications that share at least one directed link channel.
 * Pairs are reported once with a < b.
 */
std::vector<std::pair<CommId, CommId>>
resourceConflictSet(const FinalizedDesign &design);

/**
 * Check Theorem 1: return every pair in C intersect R, i.e. every pair
 * of potentially colliding communications whose routes share a link.
 * An empty result certifies contention-free communication.
 */
std::vector<ContentionViolation>
checkContentionFree(const FinalizedDesign &design, const CliqueSet &cliques);

} // namespace minnoc::core

#endif // MINNOC_CORE_VERIFY_HPP
