/**
 * @file
 * Theorem 1 verifier (paper Section 2.4).
 *
 * A finalized design is contention-free for its clique set iff the
 * intersection of the potential communication contention set C and the
 * network resource conflict set R is empty. At link granularity: no two
 * communications that co-occur in a contention clique may be assigned
 * the same physical link channel (pipe, direction, link index).
 */

#ifndef MINNOC_CORE_VERIFY_HPP
#define MINNOC_CORE_VERIFY_HPP

#include <string>
#include <vector>

#include "clique_set.hpp"
#include "finalize.hpp"

namespace minnoc::core {

/** One Theorem-1 violation: two contending comms sharing a channel. */
struct ContentionViolation
{
    CommId a = 0;
    CommId b = 0;
    PipeKey pipe;
    bool forward = true;
    std::uint32_t link = 0;

    std::string toString(const CliqueSet &cliques) const;
};

/**
 * The network resource conflict set R restricted to pairs of distinct
 * communications that share at least one directed link channel.
 * Pairs are reported once with a < b.
 */
std::vector<std::pair<CommId, CommId>>
resourceConflictSet(const FinalizedDesign &design);

/**
 * Check Theorem 1: return every pair in C intersect R, i.e. every pair
 * of potentially colliding communications whose routes share a link.
 * An empty result certifies contention-free communication.
 */
std::vector<ContentionViolation>
checkContentionFree(const FinalizedDesign &design, const CliqueSet &cliques);

/**
 * Incremental Theorem-1 verifier for refinement loops that re-verify a
 * design after every local edit (route consolidation, switch merging,
 * processor-swap polish). Violations can only involve communications
 * sharing a channel of one pipe, so the check decomposes per pipe; this
 * verifier caches each pipe's link assignment and its violations and
 * recomputes only the pipes whose assignment actually changed since the
 * previous check. Results (content and order) are identical to
 * checkContentionFree on every call.
 */
class IncrementalVerifier
{
  public:
    /** @param cliques must outlive the verifier. */
    explicit IncrementalVerifier(const CliqueSet &cliques)
        : _cliques(&cliques)
    {
    }

    /** Full Theorem-1 result for @p design, reusing unchanged pipes. */
    std::vector<ContentionViolation>
    check(const FinalizedDesign &design);

    /** Pipes recomputed across all check() calls (testing/telemetry). */
    std::uint64_t pipesChecked() const { return _checked; }
    /** Pipes served from cache across all check() calls. */
    std::uint64_t pipesReused() const { return _reused; }

  private:
    struct Entry
    {
        std::map<CommId, std::uint32_t> fwdLink;
        std::map<CommId, std::uint32_t> bwdLink;
        std::vector<ContentionViolation> violations;
    };

    const CliqueSet *_cliques;
    std::map<PipeKey, Entry> _cache;
    std::uint64_t _checked = 0;
    std::uint64_t _reused = 0;
};

} // namespace minnoc::core

#endif // MINNOC_CORE_VERIFY_HPP
