/**
 * @file
 * Text serialization of finalized designs.
 *
 * A FinalizedDesign is the methodology's durable artifact — the thing a
 * team would check into their chip repository. This module gives it a
 * stable, human-readable text format so designs can be produced once
 * (e.g. by the CLI) and consumed by floorplanning, simulation or
 * downstream tooling without re-running the synthesis.
 */

#ifndef MINNOC_CORE_DESIGN_IO_HPP
#define MINNOC_CORE_DESIGN_IO_HPP

#include <iosfwd>

#include "finalize.hpp"

namespace minnoc::core {

/** Write @p design to @p os in the text format below. */
void saveDesign(const FinalizedDesign &design, std::ostream &os);

/**
 * Parse a design previously written by saveDesign. Calls fatal() on
 * malformed input (this is an end-user file format).
 *
 * Format (one record per line):
 *   minnoc-design 1 <numProcs> <numSwitches>
 *   home <proc> <switch>                  (numProcs lines)
 *   comm <id> <src> <dst>
 *   route <commId> <len> <s0> ... <sk>
 *   pipe <a> <b> <links> <connectivityOnly>
 *   fwd <a> <b> <commId> <linkIndex>
 *   bwd <a> <b> <commId> <linkIndex>
 *   end
 */
FinalizedDesign loadDesign(std::istream &is);

} // namespace minnoc::core

#endif // MINNOC_CORE_DESIGN_IO_HPP
