#include "design_network.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <sstream>

#include "util/log.hpp"

namespace minnoc::core {

namespace {

// Process-wide so the bench can aggregate over the many short-lived
// DesignNetwork instances a methodology run creates (one per restart).
std::atomic<std::uint64_t> g_fcCalls{0};
std::atomic<std::uint64_t> g_fcHits{0};

} // namespace

FastColorStats
fastColorStats()
{
    return FastColorStats{g_fcCalls.load(std::memory_order_relaxed),
                          g_fcHits.load(std::memory_order_relaxed)};
}

void
resetFastColorStats()
{
    g_fcCalls.store(0, std::memory_order_relaxed);
    g_fcHits.store(0, std::memory_order_relaxed);
}

DesignNetwork::DesignNetwork(const CliqueSet &cliques)
    : _cliques(&cliques), _numComms(cliques.numComms())
{
    const std::uint32_t procs = cliques.numProcs();
    if (procs == 0)
        panic("DesignNetwork: clique set has zero processors");

    // One megaswitch holding every processor.
    _switchProcs.emplace_back();
    _switchProcs[0].reserve(procs);
    for (ProcId p = 0; p < procs; ++p)
        _switchProcs[0].push_back(p);
    _home.assign(procs, 0);

    // Every communication routes trivially inside the megaswitch.
    _routes.assign(cliques.numComms(), std::vector<SwitchId>{0});

    _nbrs.emplace_back();

    _procComms.assign(procs, {});
    for (CommId c = 0; c < cliques.numComms(); ++c) {
        const Comm &comm = cliques.comm(c);
        if (comm.src >= procs || comm.dst >= procs)
            panic("DesignNetwork: comm ", comm, " outside proc range");
        _procComms[comm.src].push_back(c);
        if (comm.dst != comm.src)
            _procComms[comm.dst].push_back(c);
    }
}

const std::vector<ProcId> &
DesignNetwork::procsOf(SwitchId s) const
{
    if (s >= _switchProcs.size())
        panic("DesignNetwork::procsOf: bad switch ", s);
    return _switchProcs[s];
}

const std::vector<SwitchId> &
DesignNetwork::route(CommId c) const
{
    if (c >= _routes.size())
        panic("DesignNetwork::route: bad comm ", c);
    return _routes[c];
}

std::vector<SwitchId>
DesignNetwork::normalized(std::vector<SwitchId> r)
{
    // Routes must be simple paths: collapse repeats AND excise loops
    // (endpoint re-anchoring after processor moves can make a route
    // revisit a switch; everything between the two visits is a loop
    // that wastes links and could double-cross a pipe).
    std::vector<SwitchId> out;
    out.reserve(r.size());
    for (const SwitchId s : r) {
        const auto it = std::find(out.begin(), out.end(), s);
        if (it != out.end()) {
            out.erase(it + 1, out.end());
        } else {
            out.push_back(s);
        }
    }
    return out;
}

void
DesignNetwork::linkNeighbor(SwitchId s, SwitchId t)
{
    auto &v = _nbrs[s];
    v.insert(std::lower_bound(v.begin(), v.end(), t), t);
}

void
DesignNetwork::unlinkNeighbor(SwitchId s, SwitchId t)
{
    auto &v = _nbrs[s];
    const auto it = std::lower_bound(v.begin(), v.end(), t);
    if (it == v.end() || *it != t)
        panic("DesignNetwork: neighbor index missing ", t, " at ", s);
    v.erase(it);
}

void
DesignNetwork::addRouteToPipes(CommId c, const std::vector<SwitchId> &r)
{
    for (std::size_t i = 0; i + 1 < r.size(); ++i) {
        const SwitchId from = r[i];
        const SwitchId to = r[i + 1];
        auto [it, created] = _pipes.try_emplace(PipeKey(from, to));
        Pipe &p = it->second;
        if (created) {
            p.fwd.resize(_numComms);
            p.bwd.resize(_numComms);
            linkNeighbor(from, to);
            linkNeighbor(to, from);
        }
        auto &dir = (from < to) ? p.fwd : p.bwd;
        if (!dir.insert(c))
            panic("DesignNetwork: comm ", c, " crosses pipe ", from, "-",
                  to, " twice in one direction");
        p.dirty = true;
    }
}

void
DesignNetwork::removeRouteFromPipes(CommId c, const std::vector<SwitchId> &r)
{
    for (std::size_t i = 0; i + 1 < r.size(); ++i) {
        const SwitchId from = r[i];
        const SwitchId to = r[i + 1];
        const auto it = _pipes.find(PipeKey(from, to));
        if (it == _pipes.end())
            panic("DesignNetwork: route segment on missing pipe");
        auto &dir = (from < to) ? it->second.fwd : it->second.bwd;
        if (!dir.erase(c))
            panic("DesignNetwork: comm ", c, " missing from pipe set");
        it->second.dirty = true;
        if (it->second.empty()) {
            _pipes.erase(it);
            unlinkNeighbor(from, to);
            unlinkNeighbor(to, from);
        }
    }
}

void
DesignNetwork::setRoute(CommId c, std::vector<SwitchId> r)
{
    r = normalized(std::move(r));
    const Comm &comm = _cliques->comm(c);
    if (r.empty() || r.front() != _home[comm.src] ||
        r.back() != _home[comm.dst]) {
        panic("DesignNetwork::setRoute: route endpoints do not match "
              "processor homes for comm ", comm);
    }
    removeRouteFromPipes(c, _routes[c]);
    _routes[c] = std::move(r);
    addRouteToPipes(c, _routes[c]);
}

std::vector<PipeKey>
DesignNetwork::pipes() const
{
    std::vector<PipeKey> keys;
    keys.reserve(_pipes.size());
    for (const auto &[key, pipe] : _pipes)
        keys.push_back(key);
    return keys;
}

std::vector<PipeKey>
DesignNetwork::pipesOf(SwitchId s) const
{
    // Ascending neighbor ids yield ascending PipeKeys: every (x, s)
    // with x < s sorts before every (s, y) with y > s.
    std::vector<PipeKey> keys;
    if (s >= _nbrs.size())
        return keys;
    keys.reserve(_nbrs[s].size());
    for (const SwitchId t : _nbrs[s])
        keys.emplace_back(s, t);
    return keys;
}

const Pipe &
DesignNetwork::pipe(const PipeKey &key) const
{
    static const Pipe kEmpty;
    const auto it = _pipes.find(key);
    return it == _pipes.end() ? kEmpty : it->second;
}

std::uint32_t
DesignNetwork::computeFastColor(const CommBitset &comms) const
{
    // Max over cliques of |K ∩ comms|. Cliques are visited largest
    // first and only over their populated words; both cuts are exact
    // (an intersection can never exceed the smaller operand), so the
    // result is identical to the dense scan.
    const auto cap = static_cast<std::uint32_t>(comms.size());
    if (cap == 0)
        return 0;
    const auto &masks = _cliques->cliqueMasks();
    const auto &infos = _cliques->maskInfos();
    const auto &sw = comms.words();
    std::uint32_t best = 0;
    for (const std::uint32_t m : _cliques->masksBySize()) {
        if (infos[m].popcount <= best)
            break; // descending sizes: nothing later can beat best
        const auto &mw = masks[m].words();
        std::uint32_t common = 0;
        for (const std::uint32_t w : infos[m].nonzeroWords) {
            if (w >= sw.size())
                break; // nonzeroWords is ascending
            common += static_cast<std::uint32_t>(
                std::popcount(mw[w] & sw[w]));
        }
        best = std::max(best, common);
        if (best >= cap)
            break; // no clique can cover more than the whole set
    }
    return best;
}

std::uint32_t
DesignNetwork::fastColorSet(const CommBitset &comms) const
{
    g_fcCalls.fetch_add(1, std::memory_order_relaxed);
    return computeFastColor(comms);
}

std::uint32_t
DesignNetwork::fastColorSetPlus(const CommBitset &comms, CommId extra) const
{
    g_fcCalls.fetch_add(1, std::memory_order_relaxed);
    // |K ∩ (comms + extra)| can exceed neither |K| nor |comms| + 1.
    const auto cap = static_cast<std::uint32_t>(comms.size()) + 1;
    const auto &masks = _cliques->cliqueMasks();
    const auto &infos = _cliques->maskInfos();
    const auto &sw = comms.words();
    std::uint32_t best = 0;
    for (const std::uint32_t m : _cliques->masksBySize()) {
        if (infos[m].popcount <= best)
            break;
        const auto &mw = masks[m].words();
        std::uint32_t common = masks[m].test(extra) ? 1u : 0u;
        for (const std::uint32_t w : infos[m].nonzeroWords) {
            if (w >= sw.size())
                break;
            common += static_cast<std::uint32_t>(
                std::popcount(mw[w] & sw[w]));
        }
        best = std::max(best, common);
        if (best >= cap)
            break;
    }
    return best;
}

std::uint32_t
DesignNetwork::fastColorSetReference(const std::set<CommId> &comms) const
{
    std::uint32_t best = 0;
    for (const auto &k : _cliques->cliques()) {
        std::uint32_t common = 0;
        // k.comms is sorted; comms is an ordered set: merge-count.
        auto it = comms.begin();
        for (const CommId c : k.comms) {
            while (it != comms.end() && *it < c)
                ++it;
            if (it == comms.end())
                break;
            if (*it == c)
                ++common;
        }
        best = std::max(best, common);
    }
    return best;
}

std::uint32_t
DesignNetwork::pipeFastColor(const Pipe &p) const
{
    g_fcCalls.fetch_add(1, std::memory_order_relaxed);
    if (p.dirty) {
        p.fcFwd = computeFastColor(p.fwd);
        p.fcBwd = computeFastColor(p.bwd);
        p.dirty = false;
    } else {
        g_fcHits.fetch_add(1, std::memory_order_relaxed);
    }
    return std::max(p.fcFwd, p.fcBwd);
}

std::uint32_t
DesignNetwork::fastColor(const PipeKey &key) const
{
    const auto it = _pipes.find(key);
    if (it == _pipes.end()) {
        // An absent pipe is trivially zero; count it as a served query.
        g_fcCalls.fetch_add(1, std::memory_order_relaxed);
        g_fcHits.fetch_add(1, std::memory_order_relaxed);
        return 0;
    }
    return pipeFastColor(it->second);
}

std::pair<std::uint32_t, std::uint32_t>
DesignNetwork::fastColorDirs(const PipeKey &key) const
{
    const auto it = _pipes.find(key);
    if (it == _pipes.end())
        return {0, 0};
    return fastColorDirs(it->second);
}

std::pair<std::uint32_t, std::uint32_t>
DesignNetwork::fastColorDirs(const Pipe &p) const
{
    pipeFastColor(p);
    return {p.fcFwd, p.fcBwd};
}

std::uint32_t
DesignNetwork::estimatedDegree(SwitchId s) const
{
    std::uint32_t degree =
        static_cast<std::uint32_t>(procsOf(s).size());
    for (const SwitchId t : _nbrs[s]) {
        const auto it = _pipes.find(PipeKey(s, t));
        if (it == _pipes.end())
            panic("DesignNetwork: neighbor index lists missing pipe");
        degree += pipeFastColor(it->second);
    }
    return degree;
}

std::vector<std::uint32_t>
DesignNetwork::estimatedDegrees() const
{
    std::vector<std::uint32_t> degrees(_switchProcs.size());
    for (SwitchId s = 0; s < _switchProcs.size(); ++s)
        degrees[s] = static_cast<std::uint32_t>(_switchProcs[s].size());
    for (const auto &[key, pipe] : _pipes) {
        const std::uint32_t fc = pipeFastColor(pipe);
        degrees[key.a] += fc;
        degrees[key.b] += fc;
    }
    return degrees;
}

std::uint32_t
DesignNetwork::totalEstimatedLinks() const
{
    std::uint32_t total = 0;
    for (const auto &[key, pipe] : _pipes)
        total += pipeFastColor(pipe);
    return total;
}

std::uint32_t
DesignNetwork::cutEstimate(SwitchId si, SwitchId sj) const
{
    // Each incident pipe counted once: all of si's, then sj's minus
    // the shared (si, sj) pipe already visited from si's side.
    std::uint32_t total = 0;
    for (const SwitchId t : _nbrs[si]) {
        const auto it = _pipes.find(PipeKey(si, t));
        if (it == _pipes.end())
            panic("DesignNetwork: neighbor index lists missing pipe");
        total += pipeFastColor(it->second);
    }
    if (si == sj)
        return total;
    for (const SwitchId t : _nbrs[sj]) {
        if (t == si)
            continue;
        const auto it = _pipes.find(PipeKey(sj, t));
        if (it == _pipes.end())
            panic("DesignNetwork: neighbor index lists missing pipe");
        total += pipeFastColor(it->second);
    }
    return total;
}

SwitchId
DesignNetwork::splitSwitch(SwitchId s, Rng &rng)
{
    if (s >= _switchProcs.size())
        panic("DesignNetwork::splitSwitch: bad switch ", s);
    if (_switchProcs[s].size() < 2)
        panic("DesignNetwork::splitSwitch: switch ", s,
              " has fewer than two processors");

    // Copy before emplace_back: growing _switchProcs invalidates
    // references into it.
    std::vector<ProcId> pool = _switchProcs[s];
    const auto t = static_cast<SwitchId>(_switchProcs.size());
    _switchProcs.emplace_back();
    _nbrs.emplace_back();

    // Randomly pick half of the processors to move to the new switch.
    rng.shuffle(pool);
    const std::size_t moveCount = pool.size() / 2;
    for (std::size_t i = 0; i < moveCount; ++i)
        moveProc(pool[i], t);
    return t;
}

SwitchId
DesignNetwork::splitSwitchInto(SwitchId s,
                               const std::vector<ProcId> &procs_to_move)
{
    if (s >= _switchProcs.size())
        panic("DesignNetwork::splitSwitchInto: bad switch ", s);
    if (procs_to_move.empty() ||
        procs_to_move.size() >= _switchProcs[s].size()) {
        panic("DesignNetwork::splitSwitchInto: must move a strict, "
              "non-empty subset of switch ", s, "'s processors");
    }
    for (const ProcId p : procs_to_move) {
        if (p >= _home.size() || _home[p] != s)
            panic("DesignNetwork::splitSwitchInto: proc ", p,
                  " is not on switch ", s);
    }
    const auto t = static_cast<SwitchId>(_switchProcs.size());
    _switchProcs.emplace_back();
    _nbrs.emplace_back();
    for (const ProcId p : procs_to_move)
        moveProc(p, t);
    return t;
}

const std::vector<CommId> &
DesignNetwork::commsOf(ProcId p) const
{
    if (p >= _procComms.size())
        panic("DesignNetwork::commsOf: bad proc ", p);
    return _procComms[p];
}

void
DesignNetwork::recomputeEndpoints(CommId c)
{
    const Comm &comm = _cliques->comm(c);
    const auto &old = _routes[c];

    // Preserve the interior of the route; re-anchor the endpoints at the
    // (possibly new) home switches. This is the "direct path" rule: a
    // moved endpoint connects straight to the next switch on the path.
    std::vector<SwitchId> next;
    next.push_back(_home[comm.src]);
    for (std::size_t i = 1; i + 1 < old.size(); ++i)
        next.push_back(old[i]);
    next.push_back(_home[comm.dst]);

    removeRouteFromPipes(c, _routes[c]);
    _routes[c] = normalized(std::move(next));
    addRouteToPipes(c, _routes[c]);
}

void
DesignNetwork::moveProc(ProcId p, SwitchId to)
{
    if (p >= _home.size())
        panic("DesignNetwork::moveProc: bad proc ", p);
    if (to >= _switchProcs.size())
        panic("DesignNetwork::moveProc: bad switch ", to);
    const SwitchId from = _home[p];
    if (from == to)
        return;

    auto &fromProcs = _switchProcs[from];
    const auto it = std::find(fromProcs.begin(), fromProcs.end(), p);
    if (it == fromProcs.end())
        panic("DesignNetwork::moveProc: proc ", p, " not on switch ", from);
    fromProcs.erase(it);
    auto &toProcs = _switchProcs[to];
    toProcs.insert(std::upper_bound(toProcs.begin(), toProcs.end(), p), p);
    _home[p] = to;

    for (const CommId c : _procComms[p])
        recomputeEndpoints(c);
}

void
DesignNetwork::checkInvariants() const
{
    // Homes and switch membership agree.
    std::vector<std::size_t> seen(_home.size(), 0);
    for (SwitchId s = 0; s < _switchProcs.size(); ++s) {
        for (const ProcId p : _switchProcs[s]) {
            if (_home.at(p) != s)
                panic("invariant: proc ", p, " home mismatch");
            ++seen[p];
        }
        if (!std::is_sorted(_switchProcs[s].begin(), _switchProcs[s].end()))
            panic("invariant: switch proc list not sorted");
    }
    for (ProcId p = 0; p < seen.size(); ++p) {
        if (seen[p] != 1)
            panic("invariant: proc ", p, " attached ", seen[p], " times");
    }

    // Routes anchored at homes, normalized, and mirrored in pipes.
    std::map<PipeKey, Pipe> rebuilt;
    for (CommId c = 0; c < _routes.size(); ++c) {
        const auto &r = _routes[c];
        const Comm &comm = _cliques->comm(c);
        if (r.empty() || r.front() != _home[comm.src] ||
            r.back() != _home[comm.dst]) {
            panic("invariant: route of comm ", comm, " not anchored");
        }
        for (std::size_t i = 0; i + 1 < r.size(); ++i) {
            if (r[i] == r[i + 1])
                panic("invariant: route has immediate repeat");
            auto [it, created] =
                rebuilt.try_emplace(PipeKey(r[i], r[i + 1]));
            if (created) {
                it->second.fwd.resize(_numComms);
                it->second.bwd.resize(_numComms);
            }
            ((r[i] < r[i + 1]) ? it->second.fwd : it->second.bwd)
                .insert(c);
        }
    }
    if (rebuilt.size() != _pipes.size())
        panic("invariant: pipe map size mismatch");

    // The neighbor index mirrors the pipe map exactly.
    std::size_t nbrEdges = 0;
    if (_nbrs.size() != _switchProcs.size())
        panic("invariant: neighbor index size mismatch");
    for (SwitchId s = 0; s < _nbrs.size(); ++s) {
        if (!std::is_sorted(_nbrs[s].begin(), _nbrs[s].end()))
            panic("invariant: neighbor list of switch ", s, " not sorted");
        for (const SwitchId t : _nbrs[s]) {
            if (!_pipes.contains(PipeKey(s, t)))
                panic("invariant: neighbor index lists absent pipe ", s,
                      "-", t);
        }
        nbrEdges += _nbrs[s].size();
    }
    if (nbrEdges != 2 * _pipes.size())
        panic("invariant: neighbor index edge count mismatch");
    for (const auto &[key, pipe] : _pipes) {
        const auto it = rebuilt.find(key);
        if (it == rebuilt.end() || it->second.fwd != pipe.fwd ||
            it->second.bwd != pipe.bwd) {
            panic("invariant: pipe comm sets out of sync");
        }
        // The estimation cache must match a from-scratch Fast_Color.
        if (!pipe.dirty &&
            (pipe.fcFwd != computeFastColor(pipe.fwd) ||
             pipe.fcBwd != computeFastColor(pipe.bwd))) {
            panic("invariant: stale Fast_Color cache on pipe ", key.a,
                  "-", key.b);
        }
    }
}

std::string
DesignNetwork::toString() const
{
    std::ostringstream oss;
    oss << "DesignNetwork(" << numSwitches() << " switches, "
        << _pipes.size() << " pipes, est links " << totalEstimatedLinks()
        << ")\n";
    for (SwitchId s = 0; s < _switchProcs.size(); ++s) {
        oss << "  S" << s << ": procs {";
        for (std::size_t i = 0; i < _switchProcs[s].size(); ++i) {
            if (i)
                oss << ", ";
            oss << _switchProcs[s][i];
        }
        oss << "} est degree " << estimatedDegree(s) << "\n";
    }
    for (const auto &[key, pipe] : _pipes) {
        oss << "  pipe S" << key.a << "-S" << key.b << ": "
            << pipe.fwd.size() << " fwd, " << pipe.bwd.size()
            << " bwd, est links " << fastColor(key) << "\n";
    }
    return oss.str();
}

} // namespace minnoc::core
