#include "clique_set.hpp"

#include <algorithm>
#include <sstream>

#include "util/log.hpp"

namespace minnoc::core {

bool
Clique::contains(CommId c) const
{
    return std::binary_search(comms.begin(), comms.end(), c);
}

CommId
CliqueSet::internComm(const Comm &c)
{
    auto [it, inserted] =
        _index.emplace(c, static_cast<CommId>(_comms.size()));
    if (inserted) {
        _comms.push_back(c);
        _membershipValid = false;
        _masksValid = false;
    }
    return it->second;
}

CommId
CliqueSet::findComm(const Comm &c) const
{
    const auto it = _index.find(c);
    return it == _index.end() ? kNoComm : it->second;
}

bool
CliqueSet::addClique(const std::vector<Comm> &comms)
{
    std::vector<CommId> ids;
    ids.reserve(comms.size());
    for (const auto &c : comms)
        ids.push_back(internComm(c));
    return addCliqueByIds(std::move(ids));
}

bool
CliqueSet::addCliqueByIds(std::vector<CommId> ids)
{
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    if (ids.empty())
        return false;
    for (CommId id : ids) {
        if (id >= _comms.size())
            panic("CliqueSet: clique references unknown comm id ", id);
    }
    Clique clique{std::move(ids)};
    for (const auto &existing : _cliques) {
        if (existing == clique)
            return false;
    }
    _cliques.push_back(std::move(clique));
    _membershipValid = false;
    _masksValid = false;
    return true;
}

void
CliqueSet::buildMaskCaches() const
{
    _masks.assign(_cliques.size(), CommBitset(_comms.size()));
    _maskInfos.assign(_cliques.size(), MaskInfo{});
    for (std::size_t i = 0; i < _cliques.size(); ++i) {
        for (const CommId c : _cliques[i].comms)
            _masks[i].insert(c);
        auto &info = _maskInfos[i];
        const auto &words = _masks[i].words();
        for (std::size_t w = 0; w < words.size(); ++w) {
            if (words[w])
                info.nonzeroWords.push_back(
                    static_cast<std::uint32_t>(w));
        }
        info.popcount = static_cast<std::uint32_t>(_masks[i].size());
    }
    _masksBySize.resize(_cliques.size());
    for (std::size_t i = 0; i < _masksBySize.size(); ++i)
        _masksBySize[i] = static_cast<std::uint32_t>(i);
    std::stable_sort(_masksBySize.begin(), _masksBySize.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                         return _maskInfos[a].popcount >
                                _maskInfos[b].popcount;
                     });
    _masksValid = true;
}

const std::vector<CommBitset> &
CliqueSet::cliqueMasks() const
{
    if (!_masksValid)
        buildMaskCaches();
    return _masks;
}

const std::vector<CliqueSet::MaskInfo> &
CliqueSet::maskInfos() const
{
    if (!_masksValid)
        buildMaskCaches();
    return _maskInfos;
}

const std::vector<std::uint32_t> &
CliqueSet::masksBySize() const
{
    if (!_masksValid)
        buildMaskCaches();
    return _masksBySize;
}

void
CliqueSet::prepareCaches() const
{
    cliqueMasks();
    if (!_membershipValid)
        buildMembership();
}

std::size_t
CliqueSet::maxCliqueSize() const
{
    std::size_t best = 0;
    for (const auto &k : _cliques)
        best = std::max(best, k.size());
    return best;
}

std::size_t
CliqueSet::reduceToMaximum()
{
    // Sort indices by clique size descending; a clique can only be
    // dominated by a strictly larger or equal-size earlier clique.
    std::vector<std::size_t> order(_cliques.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return _cliques[a].size() > _cliques[b].size();
                     });

    std::vector<bool> dominated(_cliques.size(), false);
    for (std::size_t i = 0; i < order.size(); ++i) {
        const auto &big = _cliques[order[i]];
        for (std::size_t j = i + 1; j < order.size(); ++j) {
            if (dominated[order[j]])
                continue;
            const auto &small = _cliques[order[j]];
            if (std::includes(big.comms.begin(), big.comms.end(),
                              small.comms.begin(), small.comms.end())) {
                dominated[order[j]] = true;
            }
        }
    }

    std::vector<Clique> kept;
    kept.reserve(_cliques.size());
    for (std::size_t i = 0; i < _cliques.size(); ++i) {
        if (!dominated[i])
            kept.push_back(std::move(_cliques[i]));
    }
    const std::size_t removed = _cliques.size() - kept.size();
    _cliques = std::move(kept);
    if (removed) {
        _membershipValid = false;
        _masksValid = false;
    }
    return removed;
}

void
CliqueSet::buildMembership() const
{
    const std::size_t n = _comms.size();
    _membershipWords = (_cliques.size() + 63) / 64;
    _membership.assign(n * _membershipWords, 0);
    for (std::size_t k = 0; k < _cliques.size(); ++k) {
        const std::uint64_t bit = 1ULL << (k & 63);
        const std::size_t word = k >> 6;
        for (const CommId c : _cliques[k].comms)
            _membership[c * _membershipWords + word] |= bit;
    }
    _membershipValid = true;
}

bool
CliqueSet::contend(CommId a, CommId b) const
{
    if (a >= _comms.size() || b >= _comms.size())
        panic("CliqueSet::contend: comm id out of range");
    if (a == b)
        return false;
    if (!_membershipValid)
        buildMembership();
    const std::uint64_t *ra = _membership.data() + a * _membershipWords;
    const std::uint64_t *rb = _membership.data() + b * _membershipWords;
    for (std::size_t w = 0; w < _membershipWords; ++w) {
        if (ra[w] & rb[w])
            return true;
    }
    return false;
}

std::vector<std::array<ProcId, 4>>
CliqueSet::contentionSet() const
{
    std::vector<std::array<ProcId, 4>> tuples;
    const std::size_t n = _comms.size();
    for (CommId a = 0; a < n; ++a) {
        for (CommId b = 0; b < n; ++b) {
            if (contend(a, b)) {
                tuples.push_back({_comms[a].src, _comms[a].dst,
                                  _comms[b].src, _comms[b].dst});
            }
        }
    }
    return tuples;
}

std::string
CliqueSet::toString() const
{
    std::ostringstream oss;
    oss << "CliqueSet(" << _numProcs << " procs, " << _comms.size()
        << " comms, " << _cliques.size() << " cliques)\n";
    for (std::size_t i = 0; i < _cliques.size(); ++i) {
        oss << "  clique " << i << ": {";
        bool first = true;
        for (CommId id : _cliques[i].comms) {
            if (!first)
                oss << ", ";
            oss << _comms[id];
            first = false;
        }
        oss << "}\n";
    }
    return oss.str();
}

} // namespace minnoc::core
