/**
 * @file
 * Multi-application workloads.
 *
 * The paper's cross-pattern experiment (Section 4.2) shows generated
 * networks tolerate only moderate pattern drift; the robust alternative
 * for a machine that runs a known *set* of applications is to design
 * for the union of their communication requirements. Merging clique
 * sets is sound because applications never run concurrently in the
 * paper's model: a clique from application A can never overlap in time
 * with one from B, so the union of the two clique sets is exactly the
 * combined workload's clique set.
 */

#ifndef MINNOC_CORE_WORKLOAD_HPP
#define MINNOC_CORE_WORKLOAD_HPP

#include <vector>

#include "clique_set.hpp"

namespace minnoc::core {

/**
 * Merge several applications' clique sets into one workload clique
 * set. All inputs must agree on the processor count; duplicate cliques
 * collapse. The result can be fed to runMethodology to design one
 * network that is contention-free for every application.
 */
CliqueSet mergeCliqueSets(const std::vector<const CliqueSet *> &sets);

/** Convenience overload for value containers. */
CliqueSet mergeCliqueSets(const std::vector<CliqueSet> &sets);

/**
 * True if every clique of @p part also exists (as a set of the same
 * communications) in @p whole — i.e. a network contention-free for
 * `whole` is contention-free for `part`.
 */
bool coveredBy(const CliqueSet &part, const CliqueSet &whole);

} // namespace minnoc::core

#endif // MINNOC_CORE_WORKLOAD_HPP
