/**
 * @file
 * Top-level design methodology driver (paper Section 3).
 *
 * Ties the pieces together: communication clique set -> recursive
 * bisection partitioning (Fast_Color estimates) -> formal coloring
 * finalization -> re-partitioning if exact colors re-violate the design
 * constraints -> Theorem-1 verification.
 */

#ifndef MINNOC_CORE_METHODOLOGY_HPP
#define MINNOC_CORE_METHODOLOGY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "clique_set.hpp"
#include "finalize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "partitioner.hpp"
#include "util/cancel.hpp"
#include "verify.hpp"

namespace minnoc {
class ThreadPool;
}

namespace minnoc::core {

/** Configuration of a full methodology run. */
struct MethodologyConfig
{
    PartitionerConfig partitioner;
    FinalizeConfig finalize;

    /**
     * Maximum number of partition/finalize rounds: finalization can
     * reveal that exact colors exceed the Fast_Color estimates, in which
     * case the violating switches are split further and the design is
     * re-finalized (paper Appendix, steps 2-3).
     */
    std::uint32_t maxRounds = 8;

    /**
     * Reduce the clique set to the communication maximum clique set
     * before partitioning (paper: yes; exposed for ablation).
     */
    bool reduceCliques = true;

    /**
     * Random restarts: the partitioner is greedy and seed-sensitive, so
     * the driver runs it from several seeds (seed, seed+1, ...) and
     * keeps the best design — feasibility first, then fewest links,
     * then fewest switches. The paper's simulated-annealing framing
     * implies the same kind of stochastic search.
     */
    std::uint32_t restarts = 16;

    /**
     * After restart selection, try merging switch pairs whose combined
     * load still fits the degree budget (the bisection loop otherwise
     * over-splits dense patterns to one processor per switch). Merges
     * are finalization-checked and accepted only at <= 1 extra link.
     */
    bool mergeSwitches = true;

    /**
     * Worker threads for the restart loop (restarts are independent and
     * run in waves). 0 = hardware concurrency. The wave selection
     * replays the sequential preference order, so the chosen design is
     * identical at every thread count; threads = 1 runs the exact
     * single-threaded code path.
     */
    std::uint32_t threads = 0;

    /**
     * Optional telemetry sinks (not owned, may be null). The driver
     * records per-restart annealing cost curves and design quality into
     * @p metrics — only for the restarts the sequential preference
     * order consumes, so the recorded content is identical at every
     * thread count — and per-phase wall-time spans into @p traceLog.
     * Excluded from signature(): telemetry never changes the design.
     */
    obs::MetricsRegistry *metrics = nullptr;
    obs::TraceEventLog *traceLog = nullptr;

    /**
     * Optional cooperative-cancellation token (not owned, may be
     * null). The restart loop polls it before every partitioning
     * attempt and unwinds with CancelledError when it fires. Runtime
     * plumbing like the telemetry sinks: excluded from signature(), so
     * a cancelled-and-retried run lands on the same cache key.
     */
    const CancelToken *cancel = nullptr;

    /**
     * Canonical parameter string covering every knob that changes the
     * produced design. Content-addressed caches (the DSE result store)
     * hash it, so two configs with equal signatures are guaranteed to
     * yield byte-identical designs for the same pattern. `threads` is
     * deliberately excluded: the wave selection makes it
     * result-invariant.
     */
    std::string signature() const;
};

/** Everything a methodology run produces. */
struct DesignOutcome
{
    FinalizedDesign design;
    /** True if the finalized design satisfies the constraints. */
    bool constraintsMet = false;
    /** Theorem-1 violations (empty = provably contention-free). */
    std::vector<ContentionViolation> violations;
    /** Number of partition/finalize rounds used. */
    std::uint32_t rounds = 0;
    /** Restart attempts actually consumed before selection stopped. */
    std::uint32_t restartsUsed = 0;
    /** Move candidates scored across all rounds (search effort). */
    std::uint64_t movesEvaluated = 0;
    /** Concatenated partitioning history across rounds. */
    std::vector<PartitionStep> history;

    /** One-line summary for logs and benches. */
    std::string summary() const;
};

/**
 * Run the full methodology on a clique set.
 *
 * @param cliques the communication clique set (copied internally when
 *        reduction is requested)
 * @param config knobs for every stage
 * @return the finalized design plus verification results
 */
DesignOutcome runMethodology(const CliqueSet &cliques,
                             const MethodologyConfig &config = {});

/**
 * Re-entrant variant for callers that already run inside a worker pool
 * (e.g. the DSE explorer evaluating many configurations at once).
 * Restarts are scheduled on @p pool when one is given; with
 * pool == nullptr the run is strictly sequential and inline —
 * no threads are spawned regardless of `config.threads` or the
 * hardware concurrency, so nested parallelism never oversubscribes.
 * The produced design is identical either way.
 */
DesignOutcome runMethodology(const CliqueSet &cliques,
                             const MethodologyConfig &config,
                             ThreadPool *pool);

} // namespace minnoc::core

#endif // MINNOC_CORE_METHODOLOGY_HPP
