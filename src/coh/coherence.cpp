#include "coherence.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace minnoc::coh {

namespace {

/** Directory entry of one block (sparse: bounded sharer pointers). */
struct DirEntry
{
    enum : std::uint8_t { I, S, M };
    std::uint8_t state = I;
    /** Sharer ranks in insertion order (S state only). */
    std::vector<core::ProcId> sharers;
    core::ProcId owner = core::kNoProc; ///< M state only
};

/** Cache-line states per rank (same I/S/M encoding as DirEntry). */
using CacheRow = std::vector<std::uint8_t>;

class Generator
{
  public:
    explicit Generator(const CoherenceConfig &config)
        : _cfg(config), _rng(config.seed ^ 0xC0DEC0DEULL),
          _dir(config.blocks), _home(config.blocks, core::kNoProc),
          _cache(config.ranks, CacheRow(config.blocks, DirEntry::I)),
          _cls(config.blocks, SharingClass::Private),
          _producer(config.blocks, 0)
    {
        assignClasses();
    }

    CohExpansion
    run()
    {
        for (std::uint32_t round = 0; round < _cfg.rounds; ++round) {
            _round = round;
            for (std::uint32_t op = 0; op < _cfg.opsPerRankPerRound;
                 ++op) {
                // Round-robin over ranks so each round's traffic
                // interleaves all requesters (bursty at replay time).
                for (core::ProcId r = 0; r < _cfg.ranks; ++r)
                    issueOp(r);
            }
        }
        _out.ranks = _cfg.ranks;
        return std::move(_out);
    }

  private:
    void
    assignClasses()
    {
        double sum = 0.0;
        for (const double w : _cfg.mix.weights)
            sum += w;
        for (std::uint32_t b = 0; b < _cfg.blocks; ++b) {
            double x = _rng.uniform() * sum;
            std::size_t c = 0;
            while (c + 1 < kNumSharingClasses &&
                   x >= _cfg.mix.weights[c]) {
                x -= _cfg.mix.weights[c];
                ++c;
            }
            // A zero-weight tail class can be reached only by
            // floating-point edge; walk back to a weighted class.
            while (c > 0 && _cfg.mix.weights[c] <= 0.0)
                --c;
            _cls[b] = static_cast<SharingClass>(c);
            _byClass[c].push_back(b);
            if (_cls[b] == SharingClass::ProducerConsumer)
                _producer[b] =
                    static_cast<core::ProcId>(_rng.below(_cfg.ranks));
        }
        // Private blocks are spread over ranks in index order; rank r
        // draws from its own slice.
        const auto &priv =
            _byClass[static_cast<std::size_t>(SharingClass::Private)];
        _privateOf.assign(_cfg.ranks, {});
        for (std::size_t i = 0; i < priv.size(); ++i)
            _privateOf[i % _cfg.ranks].push_back(priv[i]);
    }

    core::ProcId
    homeOf(std::uint32_t b, core::ProcId requester)
    {
        if (_cfg.homeMap == HomeMap::BlockInterleaved)
            return static_cast<core::ProcId>(b % _cfg.ranks);
        if (_home[b] == core::kNoProc)
            _home[b] = requester; // first touch
        return _home[b];
    }

    void
    emit(MsgType type, core::ProcId src, core::ProcId dst)
    {
        ++_out.stats.perType[static_cast<std::size_t>(type)];
        if (src == dst)
            return; // local directory / local response: no traffic
        const bool data =
            type == MsgType::Data || type == MsgType::WriteBack;
        CohMessage m;
        m.type = type;
        m.src = src;
        m.dst = dst;
        m.bytes = data ? _cfg.blockBytes : _cfg.controlBytes;
        m.callId = _round * kNumMsgTypes +
                   static_cast<std::uint32_t>(type);
        m.txn = _txn;
        m.block = _block;
        m.round = _round;
        _out.messages.push_back(m);
    }

    void
    beginTxn(TxnKind kind, core::ProcId requester, std::uint32_t b)
    {
        _txn = _out.stats.transactions++;
        _block = b;
        TxnInfo info;
        info.kind = kind;
        info.requester = requester;
        info.block = b;
        info.round = _round;
        _out.txns.push_back(info);
    }

    void
    countInvalidation()
    {
        ++_out.txns.back().invalidations;
        ++_out.txns.back().acks;
    }

    /** Evict sharers past the sparse-directory pointer capacity. */
    void
    enforceSharerBound(DirEntry &d, std::uint32_t b,
                       core::ProcId protectedRank)
    {
        const core::ProcId h = homeOf(b, protectedRank);
        while (d.sharers.size() > _cfg.maxSharers) {
            auto victim = d.sharers.begin();
            while (victim != d.sharers.end() && *victim == protectedRank)
                ++victim;
            if (victim == d.sharers.end())
                break;
            emit(MsgType::Inv, h, *victim);
            emit(MsgType::Ack, *victim, h);
            countInvalidation();
            _cache[*victim][b] = DirEntry::I;
            d.sharers.erase(victim);
        }
    }

    void
    doLoad(core::ProcId r, std::uint32_t b)
    {
        ++_out.stats.loads;
        if (_cache[r][b] != DirEntry::I) {
            ++_out.stats.hits;
            return;
        }
        beginTxn(TxnKind::Load, r, b);
        const core::ProcId h = homeOf(b, r);
        DirEntry &d = _dir[b];
        emit(MsgType::GetS, r, h);
        if (d.state == DirEntry::M) {
            // Recall the dirty copy; the owner drops to I (the MSI
            // simplification without an O state) and home serves S.
            emit(MsgType::Fetch, h, d.owner);
            emit(MsgType::WriteBack, d.owner, h);
            _cache[d.owner][b] = DirEntry::I;
            d.sharers.clear();
            d.owner = core::kNoProc;
        }
        emit(MsgType::Data, h, r);
        if (std::find(d.sharers.begin(), d.sharers.end(), r) ==
            d.sharers.end())
            d.sharers.push_back(r);
        d.state = DirEntry::S;
        _cache[r][b] = DirEntry::S;
        enforceSharerBound(d, b, r);
    }

    void
    doStore(core::ProcId r, std::uint32_t b)
    {
        ++_out.stats.stores;
        if (_cache[r][b] == DirEntry::M) {
            ++_out.stats.hits;
            return;
        }
        beginTxn(TxnKind::Store, r, b);
        const core::ProcId h = homeOf(b, r);
        DirEntry &d = _dir[b];
        emit(MsgType::GetX, r, h);
        if (d.state == DirEntry::M && d.owner != r) {
            emit(MsgType::Fetch, h, d.owner);
            emit(MsgType::WriteBack, d.owner, h);
            _cache[d.owner][b] = DirEntry::I;
        }
        std::uint32_t fanout = 0;
        if (d.state == DirEntry::S) {
            // Invalidation burst: every Inv of this transaction
            // follows the GetX above, and each invalidated sharer
            // acks the requester directly.
            for (const core::ProcId s : d.sharers) {
                if (s == r)
                    continue;
                emit(MsgType::Inv, h, s);
                emit(MsgType::Ack, s, r);
                countInvalidation();
                _cache[s][b] = DirEntry::I;
                ++fanout;
            }
        }
        _out.stats.maxInvFanout =
            std::max(_out.stats.maxInvFanout, fanout);
        emit(MsgType::Data, h, r);
        d.state = DirEntry::M;
        d.owner = r;
        d.sharers.clear();
        _cache[r][b] = DirEntry::M;
    }

    void
    doWriteback(core::ProcId r, std::uint32_t b)
    {
        if (_cache[r][b] != DirEntry::M)
            return;
        beginTxn(TxnKind::Writeback, r, b);
        const core::ProcId h = homeOf(b, r);
        DirEntry &d = _dir[b];
        emit(MsgType::WriteBack, r, h);
        emit(MsgType::WbAck, h, r);
        _cache[r][b] = DirEntry::I;
        if (d.state == DirEntry::M && d.owner == r) {
            d.state = DirEntry::I;
            d.owner = core::kNoProc;
        }
    }

    /** Weighted class draw, falling back to a class that has blocks. */
    SharingClass
    drawClass()
    {
        double sum = 0.0;
        for (const double w : _cfg.mix.weights)
            sum += w;
        double x = _rng.uniform() * sum;
        std::size_t c = 0;
        while (c + 1 < kNumSharingClasses && x >= _cfg.mix.weights[c]) {
            x -= _cfg.mix.weights[c];
            ++c;
        }
        for (std::size_t probe = 0; probe < kNumSharingClasses;
             ++probe) {
            const std::size_t k = (c + probe) % kNumSharingClasses;
            if (!_byClass[k].empty())
                return static_cast<SharingClass>(k);
        }
        panic("coh: no blocks assigned to any sharing class");
    }

    std::uint32_t
    pickFrom(const std::vector<std::uint32_t> &list)
    {
        return list[_rng.below(list.size())];
    }

    void
    issueOp(core::ProcId r)
    {
        switch (drawClass()) {
        case SharingClass::Private: {
            const auto &own = _privateOf[r].empty()
                                  ? _byClass[static_cast<std::size_t>(
                                        SharingClass::Private)]
                                  : _privateOf[r];
            const std::uint32_t b = pickFrom(own);
            if (_cache[r][b] == DirEntry::M && _rng.chance(0.25)) {
                doWriteback(r, b);
            } else if (_rng.chance(0.7)) {
                doStore(r, b);
            } else {
                doLoad(r, b);
            }
            break;
        }
        case SharingClass::ReadShared: {
            const std::uint32_t b =
                pickFrom(_byClass[static_cast<std::size_t>(
                    SharingClass::ReadShared)]);
            if (_rng.chance(0.05))
                doStore(r, b); // rare write: invalidation burst
            else
                doLoad(r, b);
            break;
        }
        case SharingClass::Migratory: {
            // Read-modify-write: ownership migrates to the accessor.
            const std::uint32_t b =
                pickFrom(_byClass[static_cast<std::size_t>(
                    SharingClass::Migratory)]);
            doLoad(r, b);
            doStore(r, b);
            break;
        }
        case SharingClass::ProducerConsumer: {
            const std::uint32_t b =
                pickFrom(_byClass[static_cast<std::size_t>(
                    SharingClass::ProducerConsumer)]);
            if (r == _producer[b])
                doStore(r, b);
            else
                doLoad(r, b);
            break;
        }
        }
    }

    const CoherenceConfig &_cfg;
    Rng _rng;
    std::vector<DirEntry> _dir;
    std::vector<core::ProcId> _home;
    std::vector<CacheRow> _cache;
    std::vector<SharingClass> _cls;
    std::vector<core::ProcId> _producer;
    std::array<std::vector<std::uint32_t>, kNumSharingClasses> _byClass;
    std::vector<std::vector<std::uint32_t>> _privateOf;

    CohExpansion _out;
    std::uint32_t _round = 0;
    std::uint32_t _txn = 0;
    std::uint32_t _block = 0;
};

} // namespace

const char *
sharingClassName(SharingClass cls)
{
    switch (cls) {
    case SharingClass::Private:
        return "private";
    case SharingClass::ReadShared:
        return "read_shared";
    case SharingClass::Migratory:
        return "migratory";
    case SharingClass::ProducerConsumer:
        return "producer_consumer";
    }
    panic("sharingClassName: bad class ", static_cast<unsigned>(cls));
}

const char *
homeMapName(HomeMap map)
{
    switch (map) {
    case HomeMap::BlockInterleaved:
        return "interleaved";
    case HomeMap::FirstTouch:
        return "first-touch";
    }
    panic("homeMapName: bad map ", static_cast<unsigned>(map));
}

std::optional<HomeMap>
homeMapFromName(std::string_view name)
{
    if (name == "interleaved")
        return HomeMap::BlockInterleaved;
    if (name == "first-touch")
        return HomeMap::FirstTouch;
    return std::nullopt;
}

const char *
msgTypeName(MsgType type)
{
    switch (type) {
    case MsgType::GetS:
        return "GetS";
    case MsgType::GetX:
        return "GetX";
    case MsgType::Fetch:
        return "Fetch";
    case MsgType::Inv:
        return "Inv";
    case MsgType::Ack:
        return "Ack";
    case MsgType::Data:
        return "Data";
    case MsgType::WriteBack:
        return "WriteBack";
    case MsgType::WbAck:
        return "WbAck";
    }
    panic("msgTypeName: bad type ", static_cast<unsigned>(type));
}

std::optional<SharingMix>
parseMix(std::string_view text, std::string &error)
{
    SharingMix mix;
    mix.weights.fill(0.0);
    bool seen[kNumSharingClasses] = {};
    if (text.empty()) {
        error = "empty --mix string";
        return std::nullopt;
    }
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string_view item = text.substr(
            pos, comma == std::string_view::npos ? std::string_view::npos
                                                 : comma - pos);
        const std::size_t colon = item.find(':');
        if (colon == std::string_view::npos) {
            error = "mix item '" + std::string(item) +
                    "' is not class:weight";
            return std::nullopt;
        }
        const std::string_view name = item.substr(0, colon);
        const std::string valueText(item.substr(colon + 1));
        std::size_t cls = kNumSharingClasses;
        for (std::size_t c = 0; c < kNumSharingClasses; ++c) {
            if (name == sharingClassName(static_cast<SharingClass>(c)))
                cls = c;
        }
        if (cls == kNumSharingClasses) {
            error = "unknown sharing class '" + std::string(name) + "'";
            return std::nullopt;
        }
        if (seen[cls]) {
            error = "duplicate sharing class '" + std::string(name) +
                    "' in mix";
            return std::nullopt;
        }
        if (valueText.empty()) {
            error = "missing weight for class '" + std::string(name) +
                    "'";
            return std::nullopt;
        }
        char *end = nullptr;
        const double w = std::strtod(valueText.c_str(), &end);
        if (end != valueText.c_str() + valueText.size() ||
            !std::isfinite(w) || w < 0.0) {
            error = "bad weight '" + valueText + "' for class '" +
                    std::string(name) + "'";
            return std::nullopt;
        }
        seen[cls] = true;
        mix.weights[cls] = w;
        if (comma == std::string_view::npos)
            break;
        pos = comma + 1;
        if (pos == text.size()) {
            error = "trailing comma in --mix";
            return std::nullopt;
        }
    }
    double sum = 0.0;
    for (const double w : mix.weights)
        sum += w;
    if (sum <= 0.0) {
        error = "mix weights sum to zero";
        return std::nullopt;
    }
    return mix;
}

void
CoherenceConfig::validate() const
{
    if (ranks < 2)
        panic("coh: need at least 2 ranks, got ", ranks);
    if (blocks == 0)
        panic("coh: need at least 1 block");
    if (blocks > (1u << 20))
        panic("coh: blocks ", blocks, " exceeds the 2^20 bound");
    if (maxSharers == 0)
        panic("coh: need at least 1 sharer pointer");
    if (rounds == 0 || opsPerRankPerRound == 0)
        panic("coh: rounds and ops per rank must be positive");
    if (blockBytes == 0 || controlBytes == 0)
        panic("coh: message payloads must be positive");
    if (computeCycles < 0)
        panic("coh: compute cycles must be non-negative");
    double sum = 0.0;
    for (const double w : mix.weights) {
        if (!std::isfinite(w) || w < 0.0)
            panic("coh: mix weights must be finite and non-negative");
        sum += w;
    }
    if (sum <= 0.0)
        panic("coh: mix weights sum to zero");
}

std::uint64_t
CohStats::messages() const
{
    std::uint64_t total = 0;
    for (const auto n : perType)
        total += n;
    return total;
}

CohExpansion
expandCoherence(const CoherenceConfig &config)
{
    config.validate();
    return Generator(config).run();
}

trace::Trace
traceFromExpansion(const CohExpansion &expansion,
                   const CoherenceConfig &config)
{
    trace::Trace t("COH-" + std::to_string(config.ranks), config.ranks);
    // Per-rank compute jitter at round boundaries desynchronizes the
    // requesters the way real core pipelines would; drawn from a
    // dedicated stream so trace shape is independent of expansion
    // internals.
    Rng jitter(config.seed ^ 0x9A91755E57ULL);
    std::size_t next = 0;
    for (std::uint32_t round = 0; round < config.rounds; ++round) {
        if (config.computeCycles > 0) {
            const auto span =
                static_cast<std::uint64_t>(config.computeCycles);
            for (core::ProcId r = 0; r < config.ranks; ++r) {
                const auto extra =
                    static_cast<std::int64_t>(jitter.below(span / 4 + 1));
                t.push(r, trace::TraceOp::compute(config.computeCycles +
                                                  extra));
            }
        }
        // One global causal order: each message's Send lands on the
        // source timeline and its Recv on the destination timeline
        // immediately, so any rank's awaited message was sent by an
        // earlier op — replay cannot deadlock (sends block only until
        // injection, deliveries buffer at the NI).
        while (next < expansion.messages.size() &&
               expansion.messages[next].round == round) {
            const CohMessage &m = expansion.messages[next];
            t.push(m.src,
                   trace::TraceOp::send(m.dst, m.bytes, m.callId));
            t.push(m.dst,
                   trace::TraceOp::recv(m.src, m.bytes, m.callId));
            ++next;
        }
    }
    t.validateMatching();
    return t;
}

trace::Trace
coherenceTrace(const CoherenceConfig &config)
{
    const auto expansion = expandCoherence(config);
    return traceFromExpansion(expansion, config);
}

} // namespace minnoc::coh
