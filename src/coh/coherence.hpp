/**
 * @file
 * Sparse-directory MSI coherence traffic generator.
 *
 * The paper's methodology assumes "well-behaved" communication: message
 * targets and volumes fixed by the algorithm, repeated across
 * iterations. Directory-based cache coherence is the canonical workload
 * that breaks this — targets are data-dependent (whoever happens to
 * share a block), volumes are bimodal (one-flit control vs. full-block
 * data), and invalidation fan-out arrives in bursts. This module
 * synthesizes such traffic from first principles so the segmenter,
 * synthesis flow, and power model can be stress-tested on it:
 *
 *  1. Per-rank address streams are drawn over configurable sharing
 *     classes — private, read-shared, migratory, producer-consumer —
 *     with a seeded RNG; every block is assigned one class up front.
 *  2. A sparse directory (block-interleaved or first-touch home map,
 *     bounded sharer pointers) expands each load/store into its MSI
 *     protocol messages: GetS/GetX requests, Fetch recalls, Data
 *     responses, invalidation fan-out plus acks, and writebacks.
 *  3. The resulting message list is linearized into a well-formed
 *     Trace: every message's Send is appended to the source timeline
 *     and its Recv to the destination timeline in one global causal
 *     order, so replay can never deadlock (sends block only until
 *     injection; deliveries buffer at the NI) and validateMatching()
 *     holds by construction.
 *
 * Call ids encode (round, message type), so analyzeByCall() groups each
 * round's invalidation burst into one contention period and the phase
 * segmenter sees call sets drift as sharing migrates — exactly the
 * "assumption frays" signal DESIGN.md §5l quantifies.
 */

#ifndef MINNOC_COH_COHERENCE_HPP
#define MINNOC_COH_COHERENCE_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"
#include "trace/trace.hpp"

namespace minnoc::coh {

/** Access behavior of one address block. */
enum class SharingClass : std::uint8_t {
    Private,          ///< one rank, mostly stores, periodic writebacks
    ReadShared,       ///< many readers, rare stores (inv bursts)
    Migratory,        ///< read-modify-write ownership hand-offs
    ProducerConsumer, ///< one writer, a fixed consumer set
};

inline constexpr std::size_t kNumSharingClasses = 4;

/** Stable name of @p cls (`"private"`, `"read_shared"`, ...). */
const char *sharingClassName(SharingClass cls);

/** Directory home-node placement policy. */
enum class HomeMap : std::uint8_t {
    BlockInterleaved, ///< home(b) = b mod ranks
    FirstTouch,       ///< home(b) = first rank to access b
};

/** Stable name of @p map (`"interleaved"` / `"first-touch"`). */
const char *homeMapName(HomeMap map);

/** Parse a home-map name; nullopt when unknown. */
std::optional<HomeMap> homeMapFromName(std::string_view name);

/** Relative weight of each sharing class in the address stream. */
struct SharingMix
{
    /** Indexed by SharingClass; need not sum to 1 (normalized). */
    std::array<double, kNumSharingClasses> weights{0.4, 0.3, 0.2, 0.1};
};

/**
 * Parse a `--mix` string: comma-separated `class:weight` pairs, e.g.
 * `private:0.5,read_shared:0.3,migratory:0.1,producer_consumer:0.1`.
 * Classes omitted get weight 0. Returns nullopt and fills @p error on
 * any malformed input — unknown class, duplicate class, non-finite or
 * negative weight, or an all-zero mix. Total: never throws or aborts.
 */
std::optional<SharingMix> parseMix(std::string_view text,
                                   std::string &error);

/** Generator parameters (CLI defaults). */
struct CoherenceConfig
{
    std::uint32_t ranks = 16;
    /** Address blocks tracked by the directory. */
    std::uint32_t blocks = 64;
    /** Sparse-directory pointer capacity per block. */
    std::uint32_t maxSharers = 4;
    /** Generation rounds (one trace epoch per round). */
    std::uint32_t rounds = 4;
    /** Memory operations per rank per round. */
    std::uint32_t opsPerRankPerRound = 16;
    /** Cache-block payload of data messages, bytes. */
    std::uint64_t blockBytes = 64;
    /** Payload of control messages (requests, invs, acks), bytes. */
    std::uint64_t controlBytes = 8;
    /** Compute cycles charged per rank at each round boundary. */
    std::int64_t computeCycles = 200;
    std::uint64_t seed = 1;
    HomeMap homeMap = HomeMap::BlockInterleaved;
    SharingMix mix;

    /** Panics with a description on out-of-range parameters. */
    void validate() const;
};

/** Protocol message types of the expansion. */
enum class MsgType : std::uint8_t {
    GetS,      ///< read request, requester -> home (control)
    GetX,      ///< write request, requester -> home (control)
    Fetch,     ///< recall of a Modified block, home -> owner (control)
    Inv,       ///< invalidation, home -> sharer (control)
    Ack,       ///< invalidation ack, sharer -> requester/home (control)
    Data,      ///< block data response, home -> requester (data)
    WriteBack, ///< dirty block, owner -> home (data)
    WbAck,     ///< writeback ack, home -> owner (control)
};

inline constexpr std::uint32_t kNumMsgTypes = 8;

/** Stable name of @p type (`"GetS"`, ...). */
const char *msgTypeName(MsgType type);

/** One protocol message of the expansion, in global causal order. */
struct CohMessage
{
    MsgType type = MsgType::GetS;
    core::ProcId src = 0;
    core::ProcId dst = 0;
    std::uint64_t bytes = 0;
    /** round * kNumMsgTypes + type — the analyzer's grouping key. */
    std::uint32_t callId = 0;
    /** Transaction index (one per expanded load/store/writeback). */
    std::uint32_t txn = 0;
    /** Address block the transaction touched. */
    std::uint32_t block = 0;
    /** Generation round the transaction belongs to. */
    std::uint32_t round = 0;
};

/** What kind of access a transaction expanded. */
enum class TxnKind : std::uint8_t { Load, Store, Writeback };

/**
 * Per-transaction ledger entry. Message-list invariants survive local
 * (src == dst) elision because the ledger counts protocol events, not
 * network messages: a GetX's ack count always equals the sharers it
 * invalidated even when the home node was itself a sharer.
 */
struct TxnInfo
{
    TxnKind kind = TxnKind::Load;
    core::ProcId requester = 0;
    std::uint32_t block = 0;
    std::uint32_t round = 0;
    /** Sharers invalidated by this transaction. */
    std::uint32_t invalidations = 0;
    /** Acks those invalidations produced. */
    std::uint32_t acks = 0;
};

/** Aggregate accounting of one expansion. */
struct CohStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    /** Accesses satisfied locally (no protocol messages). */
    std::uint64_t hits = 0;
    std::uint32_t transactions = 0;
    /** Messages emitted, per MsgType. */
    std::array<std::uint64_t, kNumMsgTypes> perType{};
    /** Largest invalidation fan-out of any single transaction. */
    std::uint32_t maxInvFanout = 0;

    std::uint64_t messages() const;
};

/** The protocol expansion: ordered messages plus accounting. */
struct CohExpansion
{
    std::uint32_t ranks = 0;
    std::vector<CohMessage> messages;
    /** One entry per transaction, indexed by CohMessage::txn. */
    std::vector<TxnInfo> txns;
    CohStats stats;
};

/**
 * Run the generator: draw the address streams, expand every access
 * through the directory protocol, and return the causal message order.
 * Deterministic: equal configs produce equal expansions.
 */
CohExpansion expandCoherence(const CoherenceConfig &config);

/**
 * Linearize @p expansion into a replayable Trace (validateMatching-
 * clean, deadlock-free by construction; see file header).
 */
trace::Trace traceFromExpansion(const CohExpansion &expansion,
                                const CoherenceConfig &config);

/** Convenience: expandCoherence + traceFromExpansion. */
trace::Trace coherenceTrace(const CoherenceConfig &config);

} // namespace minnoc::coh

#endif // MINNOC_COH_COHERENCE_HPP
