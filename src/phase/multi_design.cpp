#include "multi_design.hpp"

#include <map>

#include "core/design_network.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace minnoc::phase {

PhaseCliques
buildPhaseCliques(const trace::Trace &trace, const Segmentation &seg)
{
    const std::uint32_t ranks = trace.numRanks();
    const std::uint32_t numPhases =
        static_cast<std::uint32_t>(seg.phases.size());

    // Comms per call in analyzeByCall's canonical order: ascending
    // callId, rank-major within a call.
    std::map<std::uint32_t, std::vector<core::Comm>> byCall;
    for (core::ProcId r = 0; r < ranks; ++r)
        for (const auto &op : trace.timeline(r))
            if (op.kind == trace::OpKind::Send)
                byCall[op.callId].emplace_back(r, op.peer);

    PhaseCliques out;
    out.merged = core::CliqueSet(ranks);
    out.shared.assign(numPhases, core::CliqueSet(ranks));
    out.standalone.assign(numPhases, core::CliqueSet(ranks));

    // Interning every comm into every shared set first (same order as
    // the merged set) pins identical registries, so CommIds transfer
    // between the union design and each phase's clique set.
    for (const auto &[call, comms] : byCall) {
        for (const auto &c : comms) {
            out.merged.internComm(c);
            for (auto &s : out.shared)
                s.internComm(c);
        }
    }
    for (const auto &[call, comms] : byCall) {
        const std::uint32_t p = seg.callPhase.at(call);
        if (p == Segmentation::kNoPhase)
            panic("buildPhaseCliques: call ", call,
                        " has no owning phase");
        out.merged.addClique(comms);
        out.shared[p].addClique(comms);
        out.standalone[p].addClique(comms);
    }
    return out;
}

std::size_t
MultiPhaseResult::unionViolationCount() const
{
    std::size_t n = 0;
    for (const auto &v : unionPhaseViolations)
        n += v.size();
    return n;
}

namespace {

/**
 * Rebuild the monolithic partition on a fresh megaswitch network over
 * @p cliques: split until the switch count matches, then move every
 * processor to its monolithic home. Routes end up direct (endpoint
 * homes only), which is exactly the union design's routing policy.
 */
core::DesignNetwork
imposePartition(const core::CliqueSet &cliques,
                const core::FinalizedDesign &target, std::uint64_t seed)
{
    core::DesignNetwork net(cliques);
    Rng rng(seed);
    while (net.numSwitches() < target.numSwitches) {
        bool split = false;
        for (core::SwitchId s = 0;
             s < static_cast<core::SwitchId>(net.numSwitches()); ++s) {
            if (net.procsOf(s).size() >= 2) {
                net.splitSwitch(s, rng);
                split = true;
                break;
            }
        }
        if (!split)
            panic("imposePartition: cannot reach ",
                        target.numSwitches, " switches for ",
                        net.numProcs(), " procs");
    }
    for (core::ProcId p = 0; p < net.numProcs(); ++p)
        net.moveProc(p, target.procHome.at(p));
    return net;
}

} // namespace

MultiPhaseResult
synthesizeMultiPhase(const trace::Trace &trace, const Segmentation &seg,
                     const core::MethodologyConfig &config,
                     ThreadPool *pool, bool withPhaseDesigns)
{
    // Inner telemetry off: phase-level metrics are the evaluator's job,
    // and repeated monolithic-style recordings would collide.
    core::MethodologyConfig quiet = config;
    quiet.metrics = nullptr;
    quiet.traceLog = nullptr;

    const auto run = [&quiet, pool](const core::CliqueSet &cliques) {
        return pool ? core::runMethodology(cliques, quiet, pool)
                    : core::runMethodology(cliques, quiet);
    };

    MultiPhaseResult result;
    result.cliques = buildPhaseCliques(trace, seg);

    // Monolithic baseline over the merged set (runMethodology reduces
    // internally when the config asks; reduction never reindexes comms,
    // so the baseline's registry equals the merged registry).
    result.monolithic = run(result.cliques.merged);

    if (withPhaseDesigns) {
        result.phases.reserve(seg.phases.size());
        for (std::uint32_t p = 0; p < seg.phases.size(); ++p) {
            PhaseDesign pd;
            pd.phase = p;
            pd.outcome = run(result.cliques.standalone[p]);
            result.phases.push_back(std::move(pd));
        }
    }

    // Union design: monolithic partition, direct routes, one exact
    // coloring over the unreduced merged cliques.
    const core::DesignNetwork net =
        imposePartition(result.cliques.merged, result.monolithic.design,
                        quiet.partitioner.seed);
    result.unionDesign = core::finalizeDesign(net, quiet.finalize);

    result.unionPhaseViolations.reserve(seg.phases.size());
    for (std::uint32_t p = 0; p < seg.phases.size(); ++p)
        result.unionPhaseViolations.push_back(core::checkContentionFree(
            result.unionDesign, result.cliques.shared[p]));

    return result;
}

} // namespace minnoc::phase
