#include "evaluator.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <sstream>
#include <thread>

#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "util/thread_pool.hpp"

namespace minnoc::phase {

namespace {

/** %.17g — enough digits for exact double round-tripping. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

struct VariantEval
{
    VariantResult result;
    topo::BuiltNetwork net;
    sim::SimResult sim;
};

/** Floorplan, build, and replay one design on one (sub-)trace. */
VariantEval
evalDesign(const core::FinalizedDesign &design, std::size_t violations,
           const trace::Trace &tr, const PhaseEvalConfig &config)
{
    VariantEval e;
    const auto plan = topo::planFloor(design, config.floorplan);
    e.net = topo::buildFromDesign(design, plan);
    e.sim = sim::runTrace(tr, *e.net.topo, *e.net.routing, config.sim);
    const auto energy =
        topo::computeEnergy(*e.net.topo, e.sim.linkFlits,
                            e.sim.execTime, e.sim.activity, config.power);

    e.result.switches = design.numSwitches;
    e.result.links = design.totalLinks();
    e.result.channels = design.totalChannels();
    e.result.area = plan.totalArea();
    e.result.execTime = e.sim.execTime;
    e.result.avgLatency = e.sim.avgPacketLatency;
    e.result.energy = energy.total();
    e.result.packetsDelivered = e.sim.packetsDelivered;
    e.result.violations = violations;
    return e;
}

void
recordVariantMetrics(obs::MetricsRegistry &m, const std::string &prefix,
                     const VariantResult &v)
{
    m.gauge(prefix + "area").set(static_cast<double>(v.area));
    m.gauge(prefix + "exec_time").set(static_cast<double>(v.execTime));
    m.gauge(prefix + "avg_latency").set(v.avgLatency);
    m.gauge(prefix + "energy").set(v.energy);
    m.gauge(prefix + "violations").set(static_cast<double>(v.violations));
}

std::string
jsonVariant(const VariantResult &v)
{
    std::ostringstream oss;
    oss << "{\"switches\": " << v.switches << ", \"links\": " << v.links
        << ", \"channels\": " << v.channels << ", \"area\": " << v.area
        << ", \"exec_time\": " << v.execTime << ", \"avg_latency\": "
        << fmtDouble(v.avgLatency) << ", \"energy\": "
        << fmtDouble(v.energy) << ", \"packets\": " << v.packetsDelivered
        << ", \"violations\": " << v.violations << "}";
    return oss.str();
}

} // namespace

VariantResult
evalDesignVariant(const core::FinalizedDesign &design,
                  std::size_t violations, const trace::Trace &tr,
                  const PhaseEvalConfig &config)
{
    return evalDesign(design, violations, tr, config).result;
}

PhaseRowEval
evalPhaseRow(const trace::Trace &trace, const Segmentation &seg,
             const core::DesignOutcome &outcome, std::uint32_t p,
             const PhaseEvalConfig &config)
{
    const trace::Trace sub = phaseSubTrace(trace, seg, p);
    const auto pe = evalDesign(outcome.design, outcome.violations.size(),
                               sub, config);
    PhaseRowEval row;
    row.network = pe.result;
    // Priced unconditionally; the assembly charges it only for p > 0
    // (every phase after the first is swapped in exactly once).
    const std::vector<std::uint64_t> idle(pe.sim.linkFlits.size(), 0);
    row.reconfigIdleEnergy =
        topo::computeEnergy(*pe.net.topo, idle, config.reconfigCost,
                            config.power)
            .total();
    return row;
}

PhaseRowEval
evalPhaseStandalone(const trace::Trace &trace, const Segmentation &seg,
                    const core::CliqueSet &standalone, std::uint32_t p,
                    const PhaseEvalConfig &config)
{
    // Mirror synthesizeMultiPhase's inner runs: telemetry off, strictly
    // sequential. Designs are thread-count-invariant, so this
    // reproduces the pooled in-process outcome exactly.
    core::MethodologyConfig quiet = config.methodology;
    quiet.metrics = nullptr;
    quiet.traceLog = nullptr;
    const auto outcome = core::runMethodology(standalone, quiet, nullptr);
    return evalPhaseRow(trace, seg, outcome, p, config);
}

PhaseReport
assemblePhaseReport(const trace::Trace &trace,
                    const PhaseEvalConfig &config, const Segmentation &seg,
                    const VariantResult &monolithic,
                    const VariantResult &unionVariant,
                    const std::vector<std::size_t> &unionPhaseViolations,
                    const std::vector<PhaseRowEval> &rows)
{
    PhaseReport report;
    report.pattern = trace.name();
    report.ranks = trace.numRanks();
    report.methodologySignature = config.methodology.signature();
    report.segmenterSignature = config.segmenter.signature();
    report.reconfigCost = config.reconfigCost;
    report.numMessages = seg.numMessages;
    report.numWindows = seg.numWindows;
    report.distances = seg.distances;
    report.monolithic = monolithic;
    report.unionVariant = unionVariant;
    report.unionPhaseViolations = unionPhaseViolations;

    // Time-multiplexed: each phase's sub-trace on its own network, a
    // drain+swap stall at every boundary, and the incoming network
    // leaking (zero traffic) while it is swapped in.
    std::uint64_t tmDelivered = 0;
    double tmLatencyWeighted = 0.0;
    for (std::uint32_t p = 0; p < seg.phases.size(); ++p) {
        const VariantResult &net = rows.at(p).network;

        PhaseRow row;
        row.index = p;
        row.firstWindow = seg.phases[p].firstWindow;
        row.lastWindow = seg.phases[p].lastWindow;
        row.calls = seg.phases[p].calls.size();
        row.messages = seg.phases[p].messages;
        row.bytes = seg.phases[p].bytes;
        row.network = net;
        report.phases.push_back(row);

        report.timeMultiplexed.switches =
            std::max(report.timeMultiplexed.switches, net.switches);
        report.timeMultiplexed.links =
            std::max(report.timeMultiplexed.links, net.links);
        report.timeMultiplexed.channels =
            std::max(report.timeMultiplexed.channels, net.channels);
        report.timeMultiplexed.area =
            std::max(report.timeMultiplexed.area, net.area);
        report.timeMultiplexed.execTime += net.execTime;
        report.timeMultiplexed.energy += net.energy;
        report.timeMultiplexed.packetsDelivered += net.packetsDelivered;
        report.timeMultiplexed.violations += net.violations;
        tmDelivered += net.packetsDelivered;
        tmLatencyWeighted +=
            net.avgLatency * static_cast<double>(net.packetsDelivered);

        if (p > 0) {
            // The incoming network idles for the drain+swap window.
            ++report.reconfigCount;
            report.reconfigCycles += config.reconfigCost;
            report.reconfigEnergy += rows.at(p).reconfigIdleEnergy;
        }
    }
    report.timeMultiplexed.execTime += report.reconfigCycles;
    report.timeMultiplexed.energy += report.reconfigEnergy;
    report.timeMultiplexed.avgLatency =
        tmDelivered ? tmLatencyWeighted / static_cast<double>(tmDelivered)
                    : 0.0;

    if constexpr (obs::kEnabled) {
        if (config.metrics) {
            auto &m = *config.metrics;
            m.gauge("phase/count")
                .set(static_cast<double>(seg.phases.size()));
            m.gauge("phase/windows")
                .set(static_cast<double>(seg.numWindows));
            m.gauge("phase/messages")
                .set(static_cast<double>(seg.numMessages));
            for (const PhaseRow &row : report.phases) {
                const std::string prefix =
                    "phase/" + std::to_string(row.index) + "/";
                m.gauge(prefix + "calls")
                    .set(static_cast<double>(row.calls));
                m.gauge(prefix + "messages")
                    .set(static_cast<double>(row.messages));
                m.gauge(prefix + "bytes")
                    .set(static_cast<double>(row.bytes));
                recordVariantMetrics(m, prefix, row.network);
            }
            recordVariantMetrics(m, "phase/variant/monolithic/",
                                 report.monolithic);
            recordVariantMetrics(m, "phase/variant/union/",
                                 report.unionVariant);
            recordVariantMetrics(m, "phase/variant/time_multiplexed/",
                                 report.timeMultiplexed);
            m.gauge("phase/reconfig/count")
                .set(static_cast<double>(report.reconfigCount));
            m.gauge("phase/reconfig/cycles")
                .set(static_cast<double>(report.reconfigCycles));
            m.gauge("phase/reconfig/energy").set(report.reconfigEnergy);
        }
        if (config.traceLog) {
            // Two deterministic tracks in simulated time: the detected
            // phase spans (replay clock) and the time-multiplexed
            // schedule (per-phase execution + reconfiguration stalls).
            auto &log = *config.traceLog;
            log.processName(obs::kPidPhase, "minnoc phases");
            log.threadName(obs::kPidPhase, 0, "detected phases");
            log.threadName(obs::kPidPhase, 1, "tm schedule");
            for (const PhaseInfo &p : seg.phases) {
                const auto ts = static_cast<std::int64_t>(p.startTime);
                const auto dur = std::max<std::int64_t>(
                    static_cast<std::int64_t>(p.endTime - p.startTime),
                    1);
                log.complete("phase " + std::to_string(p.index),
                             obs::kPidPhase, 0, ts, dur,
                             "\"messages\": " +
                                 std::to_string(p.messages));
            }
            std::int64_t clock = 0;
            for (const PhaseRow &row : report.phases) {
                if (row.index > 0) {
                    log.complete("reconfig", obs::kPidPhase, 1, clock,
                                 std::max<sim::Cycle>(config.reconfigCost,
                                                      1));
                    clock += config.reconfigCost;
                }
                log.complete("phase " + std::to_string(row.index) +
                                 " exec",
                             obs::kPidPhase, 1, clock,
                             std::max<sim::Cycle>(row.network.execTime,
                                                  1));
                clock += row.network.execTime;
            }
        }
    }
    return report;
}

PhaseReport
evaluatePhases(const trace::Trace &trace, const PhaseEvalConfig &config)
{
    const Segmentation seg = segmentTrace(trace, config.segmenter);

    // One shared pool for every methodology run's restart loop; the
    // runs themselves stay sequential, so the produced designs are
    // thread-count-invariant.
    std::uint32_t threads =
        config.threads ? config.threads
                       : std::thread::hardware_concurrency();
    threads = std::max(threads, 1u);
    std::optional<ThreadPool> pool;
    if (threads > 1)
        pool.emplace(threads);

    const MultiPhaseResult multi = synthesizeMultiPhase(
        trace, seg, config.methodology, pool ? &*pool : nullptr);

    // Monolithic and union variants replay the full trace.
    const VariantResult mono =
        evalDesignVariant(multi.monolithic.design,
                          multi.monolithic.violations.size(), trace,
                          config);
    const VariantResult uni =
        evalDesignVariant(multi.unionDesign, multi.unionViolationCount(),
                          trace, config);
    std::vector<std::size_t> unionViolations;
    unionViolations.reserve(multi.unionPhaseViolations.size());
    for (const auto &v : multi.unionPhaseViolations)
        unionViolations.push_back(v.size());

    std::vector<PhaseRowEval> rows;
    rows.reserve(seg.phases.size());
    for (std::uint32_t p = 0; p < seg.phases.size(); ++p)
        rows.push_back(
            evalPhaseRow(trace, seg, multi.phases[p].outcome, p, config));

    return assemblePhaseReport(trace, config, seg, mono, uni,
                               unionViolations, rows);
}

TimeMultiplexedSummary
evaluateTimeMultiplexed(const trace::Trace &trace,
                       const PhaseEvalConfig &config)
{
    const Segmentation seg = segmentTrace(trace, config.segmenter);
    const PhaseCliques cliques = buildPhaseCliques(trace, seg);

    core::MethodologyConfig quiet = config.methodology;
    quiet.metrics = nullptr;
    quiet.traceLog = nullptr;

    TimeMultiplexedSummary s;
    s.phases = static_cast<std::uint32_t>(seg.phases.size());

    std::uint64_t delivered = 0;
    double latencyWeighted = 0.0;
    double hopsWeighted = 0.0;
    for (std::uint32_t p = 0; p < seg.phases.size(); ++p) {
        // Re-entrant sequential run: the caller (a DSE worker) owns
        // the parallelism.
        const auto outcome =
            core::runMethodology(cliques.standalone[p], quiet, nullptr);
        const auto plan =
            topo::planFloor(outcome.design, config.floorplan);
        const auto net = topo::buildFromDesign(outcome.design, plan);
        const trace::Trace sub = phaseSubTrace(trace, seg, p);
        const auto res =
            sim::runTrace(sub, *net.topo, *net.routing, config.sim);
        const auto energy =
            topo::computeEnergy(*net.topo, res.linkFlits, res.execTime,
                                res.activity, config.power);

        s.switches = std::max(s.switches, outcome.design.numSwitches);
        s.links = std::max(s.links, outcome.design.totalLinks());
        s.channels = std::max(s.channels, outcome.design.totalChannels());
        s.constraintsMet = s.constraintsMet && outcome.constraintsMet;
        s.violations +=
            static_cast<std::uint32_t>(outcome.violations.size());
        s.rounds = std::max(s.rounds, outcome.rounds);
        s.switchArea = std::max(s.switchArea, plan.switchArea);
        s.linkArea = std::max(s.linkArea, plan.linkArea);
        s.procLinkArea = std::max(s.procLinkArea, plan.procLinkArea);
        s.execTime += res.execTime;
        s.maxLinkUtil = std::max(s.maxLinkUtil, res.maxLinkUtilization);
        s.energy += energy.total();
        delivered += res.packetsDelivered;
        latencyWeighted += res.avgPacketLatency *
                           static_cast<double>(res.packetsDelivered);
        hopsWeighted += res.avgPacketHops *
                        static_cast<double>(res.packetsDelivered);

        if (p > 0) {
            ++s.reconfigCount;
            s.reconfigCycles += config.reconfigCost;
            const std::vector<std::uint64_t> idle(res.linkFlits.size(),
                                                  0);
            s.reconfigEnergy +=
                topo::computeEnergy(*net.topo, idle, config.reconfigCost,
                                    config.power)
                    .total();
        }
    }
    s.execTime += s.reconfigCycles;
    s.energy += s.reconfigEnergy;
    if (delivered) {
        s.avgLatency = latencyWeighted / static_cast<double>(delivered);
        s.avgHops = hopsWeighted / static_cast<double>(delivered);
    }
    return s;
}

std::string
PhaseReport::toJson() const
{
    std::ostringstream oss;
    oss << "{\n"
        << "  \"report\": \"minnoc-phase-gain\",\n"
        << "  \"schema\": \"minnoc-phase-1\",\n"
        << "  \"pattern\": \"" << pattern << "\",\n"
        << "  \"ranks\": " << ranks << ",\n"
        << "  \"segmenter\": \"" << segmenterSignature << "\",\n"
        << "  \"methodology\": \"" << methodologySignature << "\",\n"
        << "  \"reconfig_cost\": " << reconfigCost << ",\n"
        << "  \"num_messages\": " << numMessages << ",\n"
        << "  \"num_windows\": " << numWindows << ",\n"
        << "  \"distances\": [";
    for (std::size_t i = 0; i < distances.size(); ++i)
        oss << (i ? ", " : "") << fmtDouble(distances[i]);
    oss << "],\n"
        << "  \"phases\": [\n";
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const PhaseRow &r = phases[i];
        oss << "    {\"index\": " << r.index << ", \"first_window\": "
            << r.firstWindow << ", \"last_window\": " << r.lastWindow
            << ", \"calls\": " << r.calls << ", \"messages\": "
            << r.messages << ", \"bytes\": " << r.bytes
            << ", \"network\": " << jsonVariant(r.network) << "}"
            << (i + 1 < phases.size() ? "," : "") << "\n";
    }
    oss << "  ],\n"
        << "  \"union_phase_violations\": [";
    for (std::size_t i = 0; i < unionPhaseViolations.size(); ++i)
        oss << (i ? ", " : "") << unionPhaseViolations[i];
    oss << "],\n"
        << "  \"variants\": {\n"
        << "    \"monolithic\": " << jsonVariant(monolithic) << ",\n"
        << "    \"union\": " << jsonVariant(unionVariant) << ",\n"
        << "    \"time_multiplexed\": " << jsonVariant(timeMultiplexed)
        << "\n  },\n"
        << "  \"reconfig\": {\"count\": " << reconfigCount
        << ", \"cycles\": " << reconfigCycles << ", \"energy\": "
        << fmtDouble(reconfigEnergy) << "}\n"
        << "}\n";
    return oss.str();
}

std::string
PhaseReport::summaryTable() const
{
    std::ostringstream oss;
    oss << phases.size() << " phase(s), " << numWindows << " window(s), "
        << numMessages << " message(s); reconfig cost " << reconfigCost
        << " cycles x " << reconfigCount << " boundaries\n";
    char line[192];
    std::snprintf(line, sizeof line,
                  "%-16s %3s %5s %6s %10s %10s %12s %5s\n", "variant",
                  "sw", "links", "area", "exec", "latency", "energy",
                  "viol");
    oss << line;
    const auto row = [&oss, &line](const char *name,
                                   const VariantResult &v) {
        std::snprintf(line, sizeof line,
                      "%-16s %3u %5u %6u %10lld %10.2f %12.0f %5zu\n",
                      name, v.switches, v.links, v.area,
                      static_cast<long long>(v.execTime), v.avgLatency,
                      v.energy, v.violations);
        oss << line;
    };
    row("monolithic", monolithic);
    row("union", unionVariant);
    row("time-multiplexed", timeMultiplexed);
    return oss.str();
}

} // namespace minnoc::phase
