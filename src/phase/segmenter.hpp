/**
 * @file
 * Phase-aware workload segmentation.
 *
 * The paper's methodology assumes one stationary communication pattern
 * per application, but real workloads run through temporal phases
 * (setup / iterate / reduce) whose patterns differ. The segmenter
 * splits a Trace into such phases with sliding-window change-point
 * detection: the trace's messages are ordered by their ideal-replay
 * start times, grouped into fixed-size windows, and adjacent windows
 * are compared with a communication-pattern distance — normalized
 * traffic-matrix L1 distance blended with call-site-set Jaccard
 * dissimilarity. A window boundary whose distance exceeds the merge
 * threshold starts a new phase; phases shorter than the minimum length
 * are merged into their successor. The result is deterministic: equal
 * traces and configs yield byte-equal segmentations.
 */

#ifndef MINNOC_PHASE_SEGMENTER_HPP
#define MINNOC_PHASE_SEGMENTER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace minnoc::phase {

/** Change-point detection knobs. */
struct PhaseConfig
{
    /** Messages per sliding window. */
    std::uint32_t windowMessages = 64;

    /**
     * Adjacent-window distance (in [0, 1]) above which a window starts
     * a new phase; below it the windows merge into the same phase.
     */
    double mergeThreshold = 0.4;

    /** Minimum phase length in windows (shorter phases are merged). */
    std::uint32_t minPhaseWindows = 2;

    /**
     * Weight of the traffic-matrix L1 term in the blended distance;
     * the call-set Jaccard dissimilarity gets 1 - matrixWeight.
     */
    double matrixWeight = 0.5;

    /**
     * Canonical parameter string covering every knob that changes the
     * segmentation (content-addressed caches hash it).
     */
    std::string signature() const;
};

/** One detected temporal phase. */
struct PhaseInfo
{
    std::uint32_t index = 0;

    /** Inclusive window range of the phase. */
    std::uint32_t firstWindow = 0;
    std::uint32_t lastWindow = 0;

    /** Call sites owned by this phase (sorted, disjoint across phases). */
    std::vector<std::uint32_t> calls;

    /** Messages / payload bytes of the owned call sites. */
    std::size_t messages = 0;
    std::uint64_t bytes = 0;

    /** Ideal-replay time span of the owned messages. */
    double startTime = 0.0;
    double endTime = 0.0;
};

/** The full result of one segmentation run. */
struct Segmentation
{
    static constexpr std::uint32_t kNoPhase =
        static_cast<std::uint32_t>(-1);

    PhaseConfig config;

    /** Total messages and windows the detector saw. */
    std::size_t numMessages = 0;
    std::uint32_t numWindows = 0;

    /**
     * Blended distance between window i-1 and window i (index 0 is
     * always 0); exposed for reports and threshold tuning.
     */
    std::vector<double> distances;

    /** Window indices where an accepted phase boundary starts. */
    std::vector<std::uint32_t> boundaries;

    /** Detected phases in temporal order (never empty if messages). */
    std::vector<PhaseInfo> phases;

    /**
     * Owning phase per call site, indexed by callId (kNoPhase for ids
     * the trace never uses). A call site straddling a detected boundary
     * is owned by the phase holding the majority of its messages
     * (earliest phase on ties), so ownership partitions the call sites.
     */
    std::vector<std::uint32_t> callPhase;

    /** Human-readable summary (one line per phase). */
    std::string toString() const;
};

/**
 * Segment @p trace into temporal phases. Deterministic; a trace with
 * no communications yields an empty segmentation (no phases).
 */
Segmentation segmentTrace(const trace::Trace &trace,
                          const PhaseConfig &config = {});

/**
 * Extract the sub-trace of phase @p p: Send/Recv ops of the phase's
 * owned call sites plus the Compute ops leading up to them (a rank's
 * trailing computes stay with its last communication's phase). The
 * result preserves per-channel FIFO order and send/recv matching, so
 * it replays on the flit simulator like any other trace.
 */
trace::Trace phaseSubTrace(const trace::Trace &trace,
                           const Segmentation &seg, std::uint32_t p);

} // namespace minnoc::phase

#endif // MINNOC_PHASE_SEGMENTER_HPP
