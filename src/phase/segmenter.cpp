#include "segmenter.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <sstream>

#include "trace/analyzer.hpp"
#include "util/log.hpp"

namespace minnoc::phase {

namespace {

/** Pattern features of one message window. */
struct WindowFeatures
{
    /** Bytes per (src, dst), normalized to sum 1. */
    std::map<std::pair<core::ProcId, core::ProcId>, double> matrix;
    std::set<std::uint32_t> calls;
};

WindowFeatures
windowFeatures(const std::vector<core::Message> &msgs,
               const std::vector<std::size_t> &order, std::size_t first,
               std::size_t count)
{
    WindowFeatures f;
    std::uint64_t total = 0;
    for (std::size_t i = first; i < first + count; ++i) {
        const core::Message &m = msgs[order[i]];
        // Zero-byte messages still occupy a channel; weigh them as one
        // byte so they register in the matrix.
        const std::uint64_t b = m.bytes ? m.bytes : 1;
        f.matrix[{m.src, m.dst}] += static_cast<double>(b);
        f.calls.insert(m.callId);
        total += b;
    }
    for (auto &[comm, bytes] : f.matrix)
        bytes /= static_cast<double>(total);
    return f;
}

/**
 * Blended pattern distance in [0, 1]: half the L1 distance between the
 * normalized traffic matrices (0 = identical flows, 1 = disjoint)
 * weighted against the Jaccard dissimilarity of the call-site sets.
 */
double
patternDistance(const WindowFeatures &a, const WindowFeatures &b,
                const PhaseConfig &config)
{
    double l1 = 0.0;
    auto ia = a.matrix.begin();
    auto ib = b.matrix.begin();
    while (ia != a.matrix.end() || ib != b.matrix.end()) {
        if (ib == b.matrix.end() ||
            (ia != a.matrix.end() && ia->first < ib->first)) {
            l1 += ia->second;
            ++ia;
        } else if (ia == a.matrix.end() || ib->first < ia->first) {
            l1 += ib->second;
            ++ib;
        } else {
            l1 += std::abs(ia->second - ib->second);
            ++ia;
            ++ib;
        }
    }

    std::size_t common = 0;
    for (std::uint32_t c : a.calls)
        common += b.calls.count(c);
    const std::size_t unioned = a.calls.size() + b.calls.size() - common;
    const double jaccard =
        unioned ? static_cast<double>(common) / static_cast<double>(unioned)
                : 1.0;

    const double w = config.matrixWeight;
    return w * (l1 / 2.0) + (1.0 - w) * (1.0 - jaccard);
}

} // namespace

std::string
PhaseConfig::signature() const
{
    std::ostringstream oss;
    oss.precision(17);
    oss << "win=" << windowMessages << ";thresh=" << mergeThreshold
        << ";minwin=" << minPhaseWindows << ";mw=" << matrixWeight;
    return oss.str();
}

std::string
Segmentation::toString() const
{
    std::ostringstream oss;
    oss << phases.size() << " phase(s) over " << numMessages
        << " messages / " << numWindows << " windows\n";
    for (const PhaseInfo &p : phases) {
        oss << "  phase " << p.index << ": windows [" << p.firstWindow
            << ", " << p.lastWindow << "], " << p.calls.size()
            << " call site(s), " << p.messages << " message(s), " << p.bytes
            << " bytes, t=[" << p.startTime << ", " << p.endTime << "]\n";
    }
    return oss.str();
}

Segmentation
segmentTrace(const trace::Trace &trace, const PhaseConfig &config)
{
    if (config.windowMessages == 0)
        fatal("phase: --window must be positive");
    if (config.matrixWeight < 0.0 || config.matrixWeight > 1.0)
        fatal("phase: matrix weight must be within [0, 1]");

    Segmentation seg;
    seg.config = config;

    const core::CommPattern pattern = trace::idealReplay(trace);
    const std::vector<core::Message> &msgs = pattern.messages();
    seg.numMessages = msgs.size();
    if (msgs.empty())
        return seg;

    // Deterministic temporal order: replay start time, ties broken by
    // call site then endpoints (idealReplay emits one message per Send,
    // so the tuple is unique).
    std::vector<std::size_t> order(msgs.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&msgs](std::size_t x, std::size_t y) {
                  const core::Message &a = msgs[x];
                  const core::Message &b = msgs[y];
                  return std::tie(a.tStart, a.callId, a.src, a.dst) <
                         std::tie(b.tStart, b.callId, b.src, b.dst);
              });

    const std::size_t win = config.windowMessages;
    const std::uint32_t numWindows =
        static_cast<std::uint32_t>((msgs.size() + win - 1) / win);
    seg.numWindows = numWindows;

    std::vector<WindowFeatures> features;
    features.reserve(numWindows);
    for (std::uint32_t w = 0; w < numWindows; ++w) {
        const std::size_t first = static_cast<std::size_t>(w) * win;
        const std::size_t count = std::min(win, msgs.size() - first);
        features.push_back(windowFeatures(msgs, order, first, count));
    }

    seg.distances.assign(numWindows, 0.0);
    for (std::uint32_t w = 1; w < numWindows; ++w)
        seg.distances[w] =
            patternDistance(features[w - 1], features[w], config);

    // Raw change points, then the minimum-length rule: a segment
    // shorter than minPhaseWindows merges forward into its successor
    // (its closing boundary survives, its opening one is dropped); a
    // short trailing segment merges backward into its predecessor.
    std::vector<std::uint32_t> boundaries;
    std::uint32_t segStart = 0;
    for (std::uint32_t w = 1; w < numWindows; ++w) {
        if (seg.distances[w] <= config.mergeThreshold)
            continue;
        if (w - segStart >= config.minPhaseWindows) {
            boundaries.push_back(w);
            segStart = w;
        }
    }
    while (!boundaries.empty() &&
           numWindows - boundaries.back() < config.minPhaseWindows)
        boundaries.pop_back();
    seg.boundaries = boundaries;

    // Window ranges of the detected phases.
    const std::uint32_t rawPhases =
        static_cast<std::uint32_t>(boundaries.size()) + 1;
    auto windowPhase = [&boundaries](std::uint32_t w) {
        std::uint32_t p = 0;
        while (p < boundaries.size() && w >= boundaries[p])
            ++p;
        return p;
    };

    // Call ownership by majority message count (earliest phase wins
    // ties), so a call site straddling a boundary lands in one phase
    // and send/recv matching survives sub-trace extraction.
    const std::uint32_t numCalls = trace.numCalls();
    std::vector<std::vector<std::size_t>> votes(
        numCalls, std::vector<std::size_t>(rawPhases, 0));
    for (std::size_t i = 0; i < order.size(); ++i) {
        const core::Message &m = msgs[order[i]];
        const std::uint32_t w = static_cast<std::uint32_t>(i / win);
        ++votes[m.callId][windowPhase(w)];
    }

    std::vector<std::uint32_t> rawCallPhase(numCalls, Segmentation::kNoPhase);
    std::vector<std::size_t> phaseCalls(rawPhases, 0);
    for (std::uint32_t c = 0; c < numCalls; ++c) {
        std::size_t best = 0;
        std::uint32_t owner = Segmentation::kNoPhase;
        for (std::uint32_t p = 0; p < rawPhases; ++p) {
            if (votes[c][p] > best) {
                best = votes[c][p];
                owner = p;
            }
        }
        rawCallPhase[c] = owner;
        if (owner != Segmentation::kNoPhase)
            ++phaseCalls[owner];
    }

    // A phase whose every call was claimed by a neighbor (possible only
    // for degenerate thresholds) is dropped; its window range folds into
    // the preceding kept phase so ranges stay contiguous.
    std::vector<std::uint32_t> remap(rawPhases, Segmentation::kNoPhase);
    std::uint32_t kept = 0;
    for (std::uint32_t p = 0; p < rawPhases; ++p)
        if (phaseCalls[p] > 0)
            remap[p] = kept++;
    if (kept == 0)
        fatal("phase: segmentation produced no non-empty phase");

    seg.phases.assign(kept, PhaseInfo{});
    for (std::uint32_t p = 0; p < kept; ++p)
        seg.phases[p].index = p;
    for (std::uint32_t w = 0; w < numWindows; ++w) {
        std::uint32_t p = windowPhase(w);
        while (p > 0 && remap[p] == Segmentation::kNoPhase)
            --p; // fold dropped phase's windows backward
        while (remap[p] == Segmentation::kNoPhase)
            ++p; // dropped leading phase folds forward
        PhaseInfo &info = seg.phases[remap[p]];
        info.lastWindow = std::max(info.lastWindow, w);
    }
    for (std::uint32_t p = 1; p < kept; ++p)
        seg.phases[p].firstWindow = seg.phases[p - 1].lastWindow + 1;
    seg.phases[0].firstWindow = 0;

    seg.callPhase.assign(numCalls, Segmentation::kNoPhase);
    for (std::uint32_t c = 0; c < numCalls; ++c)
        if (rawCallPhase[c] != Segmentation::kNoPhase)
            seg.callPhase[c] = remap[rawCallPhase[c]];

    for (const core::Message &m : msgs) {
        PhaseInfo &info = seg.phases[seg.callPhase[m.callId]];
        if (info.messages == 0) {
            info.startTime = m.tStart;
            info.endTime = m.tFinish;
        } else {
            info.startTime = std::min(info.startTime, m.tStart);
            info.endTime = std::max(info.endTime, m.tFinish);
        }
        ++info.messages;
        info.bytes += m.bytes;
    }
    for (std::uint32_t c = 0; c < numCalls; ++c)
        if (seg.callPhase[c] != Segmentation::kNoPhase)
            seg.phases[seg.callPhase[c]].calls.push_back(c);

    return seg;
}

trace::Trace
phaseSubTrace(const trace::Trace &trace, const Segmentation &seg,
              std::uint32_t p)
{
    if (p >= seg.phases.size())
        panic("phaseSubTrace: phase ", p, " out of range (",
                    seg.phases.size(), " phases)");

    trace::Trace sub(trace.name() + "/phase" + std::to_string(p),
                     trace.numRanks());
    for (core::ProcId r = 0; r < trace.numRanks(); ++r) {
        const std::vector<trace::TraceOp> &ops = trace.timeline(r);

        // Compute ops belong to the phase of the next communication on
        // this rank (they lead up to it); trailing computes stay with
        // the rank's last communication. Comm-free ranks go to phase 0.
        std::uint32_t carry = 0;
        for (std::size_t i = ops.size(); i-- > 0;) {
            if (ops[i].kind != trace::OpKind::Compute) {
                carry = seg.callPhase[ops[i].callId];
                break;
            }
        }
        std::vector<std::uint32_t> opPhase(ops.size(), 0);
        for (std::size_t i = ops.size(); i-- > 0;) {
            if (ops[i].kind != trace::OpKind::Compute)
                carry = seg.callPhase[ops[i].callId];
            opPhase[i] = carry;
        }

        for (std::size_t i = 0; i < ops.size(); ++i)
            if (opPhase[i] == p)
                sub.push(r, ops[i]);
    }
    return sub;
}

} // namespace minnoc::phase
