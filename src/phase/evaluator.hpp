/**
 * @file
 * Phase-aware design evaluation and reporting.
 *
 * Replays the workload through the flit simulator under three design
 * variants and emits a deterministic JSON comparison:
 *
 *  - monolithic: the whole trace on the single methodology design;
 *  - union: the whole trace on the union design (monolithic partition
 *    re-finalized over the merged unreduced cliques);
 *  - time-multiplexed: each phase's sub-trace on that phase's own
 *    network, with a drain+swap reconfiguration penalty charged at
 *    every phase boundary (execution stalls for reconfigCost cycles
 *    and the incoming network leaks energy while idle).
 *
 * The report is byte-identical across thread counts and reruns: every
 * number derives from the deterministic methodology/simulator stack,
 * doubles render as %.17g, and no wall-clock value enters the JSON.
 */

#ifndef MINNOC_PHASE_EVALUATOR_HPP
#define MINNOC_PHASE_EVALUATOR_HPP

#include <string>
#include <vector>

#include "multi_design.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "sim/config.hpp"
#include "topo/floorplan.hpp"
#include "topo/power.hpp"

namespace minnoc::phase {

/** Everything one evaluatePhases run needs. */
struct PhaseEvalConfig
{
    PhaseConfig segmenter;
    core::MethodologyConfig methodology;
    topo::FloorplanConfig floorplan;
    topo::PowerModel power;
    sim::SimConfig sim;

    /** Drain+swap penalty charged per phase boundary (cycles). */
    sim::Cycle reconfigCost = 500;

    /**
     * Worker threads for the methodology restart loops (0 = hardware
     * concurrency). Results are identical at every thread count.
     */
    std::uint32_t threads = 0;

    /** Optional telemetry sinks (not owned, may be null). */
    obs::MetricsRegistry *metrics = nullptr;
    obs::TraceEventLog *traceLog = nullptr;
};

/** Simulated metrics of one design variant over the full workload. */
struct VariantResult
{
    std::uint32_t switches = 0;
    std::uint32_t links = 0;
    std::uint32_t channels = 0;
    std::uint32_t area = 0;
    sim::Cycle execTime = 0;
    double avgLatency = 0.0;
    double energy = 0.0;
    std::uint64_t packetsDelivered = 0;
    std::size_t violations = 0;
};

/** Per-phase row of the report. */
struct PhaseRow
{
    std::uint32_t index = 0;
    std::uint32_t firstWindow = 0;
    std::uint32_t lastWindow = 0;
    std::size_t calls = 0;
    std::size_t messages = 0;
    std::uint64_t bytes = 0;
    /** The phase's own network, driven by the phase's sub-trace. */
    VariantResult network;
};

/** The full phase-gain comparison. */
struct PhaseReport
{
    std::string pattern;
    std::uint32_t ranks = 0;
    std::string methodologySignature;
    std::string segmenterSignature;
    sim::Cycle reconfigCost = 0;

    std::size_t numMessages = 0;
    std::uint32_t numWindows = 0;
    std::vector<double> distances;

    std::vector<PhaseRow> phases;

    VariantResult monolithic;
    VariantResult unionVariant;
    VariantResult timeMultiplexed;

    /** Reconfiguration accounting inside the time-multiplexed run. */
    std::uint32_t reconfigCount = 0;
    sim::Cycle reconfigCycles = 0;
    double reconfigEnergy = 0.0;

    /** Union-design Theorem-1 violations per phase clique set. */
    std::vector<std::size_t> unionPhaseViolations;

    /** Deterministic JSON (schema "minnoc-phase-1"). */
    std::string toJson() const;

    /** Human-readable comparison table. */
    std::string summaryTable() const;
};

/**
 * One phase's contribution to the time-multiplexed comparison: the
 * phase network's VariantResult over its own sub-trace plus the energy
 * that network leaks while idling one reconfiguration window.
 * Everything the report assembly needs and nothing design-shaped, so a
 * distributed worker ships it as a handful of numbers.
 */
struct PhaseRowEval
{
    VariantResult network;
    /** computeEnergy of this network idling reconfigCost cycles. */
    double reconfigIdleEnergy = 0.0;
};

/** Floorplan, build and replay one finalized design on @p tr. */
VariantResult evalDesignVariant(const core::FinalizedDesign &design,
                                std::size_t violations,
                                const trace::Trace &tr,
                                const PhaseEvalConfig &config);

/** Evaluate phase @p p's already-synthesized standalone design. */
PhaseRowEval evalPhaseRow(const trace::Trace &trace,
                          const Segmentation &seg,
                          const core::DesignOutcome &outcome,
                          std::uint32_t p, const PhaseEvalConfig &config);

/**
 * Worker-side unit of the distributed phases pipeline: synthesize
 * phase @p p's standalone design (sequential, telemetry off — exactly
 * how synthesizeMultiPhase runs it) and evaluate it. Produces the same
 * row evaluatePhases computes for the same phase at any thread count.
 */
PhaseRowEval evalPhaseStandalone(const trace::Trace &trace,
                                 const Segmentation &seg,
                                 const core::CliqueSet &standalone,
                                 std::uint32_t p,
                                 const PhaseEvalConfig &config);

/**
 * Assemble the full PhaseReport — time-multiplexed aggregation,
 * reconfiguration accounting, metrics and trace-event emission — from
 * pre-computed variant results (@p rows is one PhaseRowEval per
 * detected phase, in phase order). The merge point evaluatePhases and
 * the distributed coordinator share, so their reports are
 * byte-identical by construction.
 */
PhaseReport assemblePhaseReport(
    const trace::Trace &trace, const PhaseEvalConfig &config,
    const Segmentation &seg, const VariantResult &monolithic,
    const VariantResult &unionVariant,
    const std::vector<std::size_t> &unionPhaseViolations,
    const std::vector<PhaseRowEval> &rows);

/**
 * Segment @p trace, synthesize the three variants, replay each, and
 * assemble the comparison report.
 */
PhaseReport evaluatePhases(const trace::Trace &trace,
                           const PhaseEvalConfig &config);

/**
 * Flat aggregate of one time-multiplexed run, shaped for the DSE
 * explorer's job record: per-phase maxima on the provisioned-resource
 * axes (a reconfigurable fabric must host the largest phase network),
 * sums on time/energy with the boundary penalty folded in, and
 * delivered-weighted means on the latency axes.
 */
struct TimeMultiplexedSummary
{
    std::uint32_t phases = 0;
    std::uint32_t switches = 0;
    std::uint32_t links = 0;
    std::uint32_t channels = 0;
    bool constraintsMet = true;
    std::uint32_t violations = 0;
    std::uint32_t rounds = 0;
    std::uint32_t switchArea = 0;
    std::uint32_t linkArea = 0;
    std::uint32_t procLinkArea = 0;
    sim::Cycle execTime = 0;
    double avgLatency = 0.0;
    double avgHops = 0.0;
    double maxLinkUtil = 0.0;
    double energy = 0.0;
    std::uint32_t reconfigCount = 0;
    sim::Cycle reconfigCycles = 0;
    double reconfigEnergy = 0.0;
};

/**
 * Segment @p trace and evaluate ONLY the time-multiplexed variant:
 * one methodology run per phase over that phase's standalone cliques,
 * each sub-trace replayed on its own network, reconfiguration charged
 * at every boundary. Strictly sequential (metrics/traceLog ignored) —
 * built for the DSE explorer, whose parallelism is across grid jobs.
 */
TimeMultiplexedSummary
evaluateTimeMultiplexed(const trace::Trace &trace,
                        const PhaseEvalConfig &config);

} // namespace minnoc::phase

#endif // MINNOC_PHASE_EVALUATOR_HPP
