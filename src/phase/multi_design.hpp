/**
 * @file
 * Multi-phase network synthesis.
 *
 * Given a segmented trace, runs the paper's methodology once per phase
 * and derives two multi-phase artifacts from the per-phase designs:
 *
 *  - the union design: the monolithic partition re-finalized over the
 *    *unreduced* merged clique set with purely direct routes, then
 *    re-verified contention-free against every phase's cliques
 *    individually. Because cross-phase communications never co-occur in
 *    a clique, the union's exact coloring decomposes per phase, so its
 *    pipe widths match the monolithic design's — a provable no-gain
 *    result this subsystem makes measurable (see DESIGN.md §5g);
 *
 *  - the time-multiplexed design: one independent network per phase,
 *    swapped at each phase boundary for a configurable drain+swap
 *    penalty. This is where phase awareness actually pays: each phase's
 *    network only provisions that phase's contention.
 */

#ifndef MINNOC_PHASE_MULTI_DESIGN_HPP
#define MINNOC_PHASE_MULTI_DESIGN_HPP

#include <cstddef>
#include <vector>

#include "core/methodology.hpp"
#include "segmenter.hpp"

namespace minnoc {
class ThreadPool;
}

namespace minnoc::phase {

/**
 * Clique sets derived from one segmentation, in the three registries
 * the multi-phase pipeline needs.
 */
struct PhaseCliques
{
    /**
     * All calls, unreduced, full-trace comm registry. The union design
     * is finalized against this set.
     */
    core::CliqueSet merged;

    /**
     * Per phase, only the phase's cliques but over the *same* comm
     * registry as `merged` (identical CommIds), so the union design can
     * be verified against each phase separately.
     */
    std::vector<core::CliqueSet> shared;

    /**
     * Per phase, dense own registry, reduced as configured — what each
     * phase's independent methodology run consumes.
     */
    std::vector<core::CliqueSet> standalone;
};

/**
 * Build the merged / shared / standalone clique sets of @p seg. The
 * merged and shared registries intern communications in the same
 * ascending-callId, rank-major order as trace::analyzeByCall, so
 * CommIds align with a monolithic analyzeByCall(trace, false) run.
 */
PhaseCliques buildPhaseCliques(const trace::Trace &trace,
                               const Segmentation &seg);

/** One phase's independent synthesis result. */
struct PhaseDesign
{
    std::uint32_t phase = 0;
    core::DesignOutcome outcome;
};

/** Everything synthesizeMultiPhase produces. */
struct MultiPhaseResult
{
    PhaseCliques cliques;

    /** Baseline: the whole trace through one methodology run. */
    core::DesignOutcome monolithic;

    /** Per-phase networks (the time-multiplexed configurations). */
    std::vector<PhaseDesign> phases;

    /**
     * The union design: monolithic partition, direct routes, finalized
     * over the merged unreduced cliques.
     */
    core::FinalizedDesign unionDesign;

    /** Theorem-1 violations of the union design per phase clique set. */
    std::vector<std::vector<core::ContentionViolation>>
        unionPhaseViolations;

    /** Total union violations over all phases. */
    std::size_t unionViolationCount() const;
};

/**
 * Synthesize the monolithic, per-phase, and union designs for @p seg.
 * Runs are sequential (one methodology run at a time) with restarts
 * parallelized on @p pool when one is given — the produced designs are
 * identical at every thread count, nullptr included. Telemetry sinks in
 * @p config are ignored for the inner runs (the evaluator records
 * phase-level telemetry instead).
 *
 * @p withPhaseDesigns false skips the per-phase standalone runs
 * (result.phases stays empty) while still producing the monolithic,
 * union, and per-phase violation artifacts — the distributed
 * coordinator farms the standalone runs out to workers instead.
 */
MultiPhaseResult synthesizeMultiPhase(const trace::Trace &trace,
                                      const Segmentation &seg,
                                      const core::MethodologyConfig &config,
                                      ThreadPool *pool = nullptr,
                                      bool withPhaseDesigns = true);

} // namespace minnoc::phase

#endif // MINNOC_PHASE_MULTI_DESIGN_HPP
