#include "explorer.hpp"

#include <cstdio>
#include <sstream>
#include <thread>

#include "core/methodology.hpp"
#include "pareto.hpp"
#include "phase/evaluator.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "trace/analyzer.hpp"
#include "util/thread_pool.hpp"

namespace minnoc::dse {

namespace {

/** The methodology configuration a job's parameter tuple selects. */
core::MethodologyConfig
methodologyConfigFor(const JobParams &params)
{
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = params.maxDegree;
    mcfg.partitioner.seed = params.seed;
    mcfg.restarts = params.restarts;
    mcfg.finalize.unidirectional = params.unidirectional;
    // Jobs parallelize across the grid, not within a run; the
    // re-entrant runMethodology overload below ignores this anyway.
    mcfg.threads = 1;
    return mcfg;
}

/** The simulator configuration a job's parameter tuple selects. */
sim::SimConfig
simConfigFor(const JobParams &params, const ExploreConfig &config)
{
    sim::SimConfig scfg = config.sim;
    scfg.numVcs = params.numVcs;
    scfg.vcDepth = params.vcDepth;
    scfg.cancel = config.cancel;
    return scfg;
}

/** %.17g — enough digits for exact double round-tripping. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

std::vector<JobParams>
ExploreGrid::expand() const
{
    std::vector<JobParams> jobs;
    for (const auto degree : maxDegrees) {
        for (const auto r : restarts) {
            for (const auto seed : seeds) {
                for (const auto uni : unidirectional) {
                    for (const auto vc : vcs) {
                        for (const auto pw : phaseWindows) {
                            JobParams p;
                            p.maxDegree = degree;
                            p.restarts = r;
                            p.seed = seed;
                            p.unidirectional = uni != 0;
                            p.numVcs = vc;
                            p.vcDepth = vcDepth;
                            p.phaseWindow = pw;
                            jobs.push_back(p);
                        }
                    }
                }
            }
        }
    }
    return jobs;
}

std::string
jobSignature(const JobParams &params, const ExploreConfig &config)
{
    std::string sig = methodologyConfigFor(params).signature() + "|" +
                      config.floorplan.signature() + "|" +
                      config.power.signature() + "|" +
                      simConfigFor(params, config).signature();
    // Appended only when phase-aware evaluation is on, so classic jobs
    // keep the cache keys they had before the phase dimension existed.
    if (params.phaseWindow > 0) {
        phase::PhaseConfig pcfg = config.phaseSegmenter;
        pcfg.windowMessages = params.phaseWindow;
        sig += "|phase:" + pcfg.signature() +
               ";rc=" + std::to_string(config.phaseReconfigCost);
    }
    return sig;
}

JobMetrics
evaluateJob(const trace::Trace &trace, const core::CliqueSet &cliques,
            const JobParams &params, const ExploreConfig &config,
            obs::TraceEventLog *traceLog, std::uint32_t tid)
{
    const auto span = [traceLog, tid](const char *name,
                                      std::int64_t start) {
        if constexpr (obs::kEnabled) {
            if (traceLog)
                traceLog->complete(name, obs::kPidDse, tid, start,
                                   obs::wallMicros() - start);
        }
    };
    const auto tick = [traceLog]() {
        return traceLog ? obs::wallMicros() : 0;
    };

    auto mcfg = methodologyConfigFor(params);
    mcfg.cancel = config.cancel;

    if (params.phaseWindow > 0) {
        // Phase-aware job: segment, synthesize one network per phase,
        // replay each sub-trace on its own network, charge the
        // reconfiguration penalty at every boundary. Resource axes
        // report per-phase maxima (the fabric must host the largest
        // phase network); time and energy axes are totals.
        phase::PhaseEvalConfig pcfg;
        pcfg.segmenter = config.phaseSegmenter;
        pcfg.segmenter.windowMessages = params.phaseWindow;
        pcfg.methodology = mcfg;
        pcfg.floorplan = config.floorplan;
        pcfg.power = config.power;
        pcfg.sim = simConfigFor(params, config);
        pcfg.reconfigCost = config.phaseReconfigCost;

        const auto t0 = tick();
        const auto s = phase::evaluateTimeMultiplexed(trace, pcfg);
        span("time-multiplexed", t0);

        JobMetrics m;
        m.switches = s.switches;
        m.links = s.links;
        m.channels = s.channels;
        m.constraintsMet = s.constraintsMet;
        m.violations = s.violations;
        m.rounds = s.rounds;
        m.switchArea = s.switchArea;
        m.linkArea = s.linkArea;
        m.procLinkArea = s.procLinkArea;
        m.execTime = s.execTime;
        m.avgLatency = s.avgLatency;
        m.avgHops = s.avgHops;
        m.maxLinkUtil = s.maxLinkUtil;
        m.energy = s.energy;
        return m;
    }

    // Re-entrant, strictly sequential run: the explorer's own pool
    // provides the parallelism, one job per worker.
    auto t = tick();
    const auto outcome = core::runMethodology(cliques, mcfg, nullptr);
    span("methodology", t);

    t = tick();
    const auto plan = topo::planFloor(outcome.design, config.floorplan);
    const auto net = topo::buildFromDesign(outcome.design, plan);
    span("build", t);

    const auto scfg = simConfigFor(params, config);
    t = tick();
    const auto res = sim::runTrace(trace, *net.topo, *net.routing, scfg);
    span("simulate", t);
    const auto energy =
        topo::computeEnergy(*net.topo, res.linkFlits, res.execTime,
                            res.activity, config.power);

    JobMetrics m;
    m.switches = outcome.design.numSwitches;
    m.links = outcome.design.totalLinks();
    m.channels = outcome.design.totalChannels();
    m.constraintsMet = outcome.constraintsMet;
    m.violations =
        static_cast<std::uint32_t>(outcome.violations.size());
    m.rounds = outcome.rounds;
    m.switchArea = plan.switchArea;
    m.linkArea = plan.linkArea;
    m.procLinkArea = plan.procLinkArea;
    m.execTime = res.execTime;
    m.avgLatency = res.avgPacketLatency;
    m.avgHops = res.avgPacketHops;
    m.maxLinkUtil = res.maxLinkUtilization;
    m.energy = energy.total();
    return m;
}

void
recordJobPoint(const ExploreConfig &config, std::size_t index,
               const DsePoint &pt)
{
    if constexpr (obs::kEnabled) {
        if (!config.metrics)
            return;
        // Keyed by grid index and derived only from the job's result +
        // cache state: identical at any thread or worker count.
        const std::string prefix =
            "dse/job/" + std::to_string(index) + "/";
        auto &m = *config.metrics;
        m.gauge(prefix + "cache_hit").set(pt.fromCache ? 1.0 : 0.0);
        m.gauge(prefix + "switches")
            .set(static_cast<double>(pt.metrics.switches));
        m.gauge(prefix + "links")
            .set(static_cast<double>(pt.metrics.links));
        m.gauge(prefix + "exec_time")
            .set(static_cast<double>(pt.metrics.execTime));
        m.gauge(prefix + "energy").set(pt.metrics.energy);
    }
}

void
finalizeReport(ExploreReport &report, const ExploreConfig &config)
{
    report.cacheHits = 0;
    report.cacheMisses = 0;
    for (const auto &pt : report.points)
        (pt.fromCache ? report.cacheHits : report.cacheMisses)++;

    // Pareto reduction over (area, latency, energy).
    std::vector<Objectives> objectives;
    objectives.reserve(report.points.size());
    for (const auto &pt : report.points)
        objectives.push_back(objectivesOf(pt.metrics));
    const auto dominated = dominatedFlags(objectives);
    for (std::size_t i = 0; i < report.points.size(); ++i)
        report.points[i].dominated = dominated[i];
    report.frontier = frontierIndices(dominated);

    if constexpr (obs::kEnabled) {
        if (config.metrics) {
            auto &m = *config.metrics;
            m.counter("dse/cache_hits").add(report.cacheHits);
            m.counter("dse/cache_misses").add(report.cacheMisses);
            m.gauge("dse/jobs")
                .set(static_cast<double>(report.points.size()));
            m.gauge("dse/frontier_size")
                .set(static_cast<double>(report.frontier.size()));
        }
        if (config.traceLog)
            config.traceLog->processName(obs::kPidDse, "minnoc dse");
    }
}

ExploreReport
explore(const trace::Trace &trace, const ExploreConfig &config)
{
    // The pattern bytes are the first cache-key ingredient: the exact
    // serialized trace, so any change to the workload re-keys its jobs.
    std::ostringstream patternStream;
    trace.save(patternStream);
    const std::string patternBytes = patternStream.str();

    // Analyze once; every job shares the clique set read-only (its
    // lazy caches are materialized before the workers race).
    auto cliques = trace::analyzeByCall(trace);
    cliques.prepareCaches();

    const auto jobs = config.grid.expand();
    const ResultCache cache(config.cacheDir, config.useCache);

    ExploreReport report;
    report.pattern = trace.name();
    report.ranks = trace.numRanks();
    report.points.resize(jobs.size());

    const auto evalOne = [&](std::size_t i) {
        // DSE-job granularity checkpoint; jobs already running keep
        // polling the same token inside the methodology restart loop
        // and the simulator epoch loop.
        checkCancel(config.cancel);
        const auto &params = jobs[i];
        const auto sig = jobSignature(params, config);
        const auto key = jobKey(patternBytes, sig);
        const std::int64_t jobStart =
            config.traceLog ? obs::wallMicros() : 0;
        DsePoint pt;
        pt.params = params;
        if (auto hit = cache.load(key, sig)) {
            pt.metrics = *hit;
            pt.fromCache = true;
        } else {
            pt.metrics =
                evaluateJob(trace, cliques, params, config,
                            config.traceLog,
                            static_cast<std::uint32_t>(i));
            cache.store(key, sig, pt.metrics);
        }
        if constexpr (obs::kEnabled) {
            if (config.traceLog) {
                config.traceLog->complete(
                    "job " + std::to_string(i), obs::kPidDse,
                    static_cast<std::uint32_t>(i), jobStart,
                    obs::wallMicros() - jobStart,
                    "\"cached\": " +
                        std::string(pt.fromCache ? "true" : "false"));
            }
        }
        recordJobPoint(config, i, pt);
        report.points[i] = std::move(pt);
    };

    std::uint32_t threads =
        config.threads ? config.threads
                       : std::thread::hardware_concurrency();
    threads = std::min<std::uint32_t>(
        std::max(threads, 1u),
        static_cast<std::uint32_t>(std::max<std::size_t>(jobs.size(), 1)));
    if (threads > 1) {
        ThreadPool pool(threads);
        pool.parallelFor(jobs.size(), evalOne);
    } else {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            evalOne(i);
    }

    finalizeReport(report, config);
    return report;
}

std::string
ExploreReport::toJson() const
{
    std::ostringstream oss;
    oss << "{\n"
        << "  \"report\": \"minnoc-dse-explore\",\n"
        << "  \"schema\": \"" << kCacheSalt << "\",\n"
        << "  \"pattern\": \"" << pattern << "\",\n"
        << "  \"ranks\": " << ranks << ",\n"
        << "  \"objectives\": [\"area\", \"avg_latency\", \"energy\"],\n"
        << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &pt = points[i];
        const auto &p = pt.params;
        const auto &m = pt.metrics;
        oss << "    {\"index\": " << i << ", \"max_degree\": "
            << p.maxDegree << ", \"restarts\": " << p.restarts
            << ", \"seed\": " << p.seed << ", \"unidirectional\": "
            << (p.unidirectional ? 1 : 0) << ", \"vcs\": " << p.numVcs
            << ", \"vc_depth\": " << p.vcDepth
            << ", \"phase_window\": " << p.phaseWindow
            << ", \"switches\": " << m.switches << ", \"links\": "
            << m.links << ", \"channels\": " << m.channels
            << ", \"constraints_met\": " << (m.constraintsMet ? 1 : 0)
            << ", \"violations\": " << m.violations
            << ", \"switch_area\": " << m.switchArea
            << ", \"link_area\": " << m.linkArea
            << ", \"proc_link_area\": " << m.procLinkArea
            << ", \"area\": " << m.totalArea() << ", \"exec_time\": "
            << m.execTime << ", \"avg_latency\": "
            << fmtDouble(m.avgLatency) << ", \"avg_hops\": "
            << fmtDouble(m.avgHops) << ", \"max_link_util\": "
            << fmtDouble(m.maxLinkUtil) << ", \"energy\": "
            << fmtDouble(m.energy) << ", \"dominated\": "
            << (pt.dominated ? "true" : "false") << "}"
            << (i + 1 < points.size() ? "," : "") << "\n";
    }
    oss << "  ],\n  \"frontier\": [";
    for (std::size_t i = 0; i < frontier.size(); ++i)
        oss << (i ? ", " : "") << frontier[i];
    oss << "]\n}\n";
    return oss.str();
}

std::string
ExploreReport::summaryTable() const
{
    std::ostringstream oss;
    char line[256];
    std::snprintf(line, sizeof line,
                  "%-3s %3s %4s %4s %3s %3s %4s | %3s %5s %5s | %9s %9s "
                  "| %10s | %s\n",
                  "idx", "deg", "rst", "seed", "uni", "vcs", "pw", "sw",
                  "links", "area", "latency", "exec", "energy", "");
    oss << line;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto &pt = points[i];
        const auto &p = pt.params;
        const auto &m = pt.metrics;
        std::snprintf(
            line, sizeof line,
            "%-3zu %3u %4u %4llu %3u %3u %4u | %3u %5u %5u | %9.2f "
            "%9lld | %10.0f | %s%s\n",
            i, p.maxDegree, p.restarts,
            static_cast<unsigned long long>(p.seed),
            p.unidirectional ? 1 : 0, p.numVcs, p.phaseWindow,
            m.switches, m.links,
            m.totalArea(), m.avgLatency,
            static_cast<long long>(m.execTime), m.energy,
            pt.dominated ? "" : "* frontier",
            pt.fromCache ? " (cached)" : "");
        oss << line;
    }
    return oss.str();
}

} // namespace minnoc::dse
