#include "pareto.hpp"

namespace minnoc::dse {

Objectives
objectivesOf(const JobMetrics &metrics)
{
    Objectives o;
    o.area = static_cast<double>(metrics.totalArea());
    o.latency = metrics.avgLatency;
    o.energy = metrics.energy;
    return o;
}

bool
dominates(const Objectives &a, const Objectives &b)
{
    if (a.area > b.area || a.latency > b.latency || a.energy > b.energy)
        return false;
    return a.area < b.area || a.latency < b.latency ||
           a.energy < b.energy;
}

std::vector<bool>
dominatedFlags(const std::vector<Objectives> &points)
{
    std::vector<bool> dominated(points.size(), false);
    for (std::size_t i = 0; i < points.size(); ++i) {
        for (std::size_t j = 0; j < points.size() && !dominated[i];
             ++j) {
            if (i != j && dominates(points[j], points[i]))
                dominated[i] = true;
        }
    }
    return dominated;
}

std::vector<std::size_t>
frontierIndices(const std::vector<bool> &dominated)
{
    std::vector<std::size_t> frontier;
    for (std::size_t i = 0; i < dominated.size(); ++i) {
        if (!dominated[i])
            frontier.push_back(i);
    }
    return frontier;
}

} // namespace minnoc::dse
