/**
 * @file
 * Content-hashed on-disk result cache for exploration jobs.
 *
 * Every job is keyed by a 64-bit FNV-1a hash over three ingredients:
 * the serialized communication pattern (trace bytes), the canonical
 * parameter signature of every pipeline stage (methodology, simulator,
 * floorplanner, power model), and a code-version salt. Any change to
 * the pattern or a knob lands on a new key; bumping the salt when a
 * cost-model or algorithm change alters results invalidates the whole
 * store at once. Records live as one small JSON file per key under the
 * cache directory (default `~/.cache/minnoc`), written atomically via
 * rename, so concurrent explorers — threads or processes — never read
 * a half-written record. Doubles are stored with round-trip precision:
 * a warm run reproduces the cold run byte for byte.
 *
 * Records are crash-safe on the read side too: every record embeds an
 * FNV-1a checksum over its payload, verified on load. A record that
 * fails the checksum (bit rot, torn write through a crashed kernel,
 * hostile tampering) is quarantined — renamed to `<key>.json.corrupt`
 * so the evidence survives for inspection — and the load reports a
 * miss, so the caller transparently recomputes and re-stores a clean
 * record instead of returning garbage or crashing.
 */

#ifndef MINNOC_DSE_CACHE_HPP
#define MINNOC_DSE_CACHE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "job.hpp"

namespace minnoc::dse {

/**
 * Code-version salt folded into every job key. Bump it whenever a
 * change to the methodology, simulator, floorplanner or power model
 * alters the numbers a job produces: old records then simply never
 * match again, which is the entire invalidation story. Bumped to -2
 * when the record format grew the payload checksum; to -3 when the
 * hierarchical large-N partitioning mode changed default-config
 * results for patterns above 64 processors.
 */
inline constexpr std::string_view kCacheSalt = "minnoc-dse-3";

/** 64-bit FNV-1a over @p data, seeded with @p basis for chaining. */
std::uint64_t fnv1a64(std::string_view data,
                      std::uint64_t basis = 14695981039346656037ull);

/**
 * Compute the cache key (16 lowercase hex digits) of a job:
 * hash(salt || pattern bytes || parameter signature).
 */
std::string jobKey(std::string_view patternBytes,
                   std::string_view paramSignature);

/**
 * Platform cache directory: $MINNOC_CACHE_DIR, else
 * $XDG_CACHE_HOME/minnoc, else $HOME/.cache/minnoc, else a local
 * `.minnoc-cache` as the last resort.
 */
std::string defaultCacheDir();

/** On-disk JSON store of JobMetrics records, one file per key. */
class ResultCache
{
  public:
    /**
     * Open (and lazily create) the store under @p dir. An empty @p dir
     * selects defaultCacheDir(). A disabled cache never hits and never
     * stores.
     */
    explicit ResultCache(std::string dir, bool enabled = true);

    bool enabled() const { return _enabled; }
    const std::string &dir() const { return _dir; }

    /**
     * Load the record for @p key. Returns nullopt on a miss, an
     * unreadable file or a record whose embedded parameter signature
     * disagrees with @p paramSignature (hash-collision guard). A
     * present record of the current schema whose payload checksum does
     * not verify is quarantined (renamed to `<key>.json.corrupt`) and
     * reported as a miss so the caller recomputes.
     */
    std::optional<JobMetrics> load(const std::string &key,
                                   std::string_view paramSignature) const;

    /**
     * Persist @p metrics under @p key (atomic write-then-rename). The
     * parameter signature is embedded for the collision guard.
     */
    void store(const std::string &key, std::string_view paramSignature,
               const JobMetrics &metrics) const;

  private:
    std::string recordPath(const std::string &key) const;

    /**
     * Move a corrupt record out of the way (`<key>.json.corrupt`) so
     * it can never be served again but stays available for forensics.
     */
    void quarantine(const std::string &key, const char *why) const;

    std::string _dir;
    bool _enabled;
};

} // namespace minnoc::dse

#endif // MINNOC_DSE_CACHE_HPP
