/**
 * @file
 * Pareto frontier extraction over the exploration objectives.
 *
 * The methodology trades resources for performance (paper Figures 7-8);
 * the explorer exposes that trade-off as a three-objective minimization
 * over (silicon area, average packet latency, energy), in the spirit of
 * Kao & Fink's Pareto-optimization framing of NoC synthesis. All
 * objectives are minimized; a point is dominated when some other point
 * is no worse on every axis and strictly better on at least one.
 */

#ifndef MINNOC_DSE_PARETO_HPP
#define MINNOC_DSE_PARETO_HPP

#include <cstddef>
#include <vector>

#include "job.hpp"

namespace minnoc::dse {

/** One point in objective space (all axes minimized). */
struct Objectives
{
    double area = 0.0;
    double latency = 0.0;
    double energy = 0.0;
};

/** The objective vector of one evaluated job. */
Objectives objectivesOf(const JobMetrics &metrics);

/** True iff @p a dominates @p b: a <= b on every axis, < on one. */
bool dominates(const Objectives &a, const Objectives &b);

/**
 * Flag every dominated point (O(n^2), fine for grids of thousands).
 * Ties — identical objective vectors — dominate nothing and are all
 * kept on the frontier.
 */
std::vector<bool> dominatedFlags(const std::vector<Objectives> &points);

/** Indices of the non-dominated points, ascending. */
std::vector<std::size_t>
frontierIndices(const std::vector<bool> &dominated);

} // namespace minnoc::dse

#endif // MINNOC_DSE_PARETO_HPP
