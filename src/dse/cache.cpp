#include "cache.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/log.hpp"

namespace minnoc::dse {

std::uint64_t
fnv1a64(std::string_view data, std::uint64_t basis)
{
    std::uint64_t h = basis;
    for (const char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

namespace {

/** Fold a length delimiter into the chain so that moving bytes across
 *  an ingredient boundary cannot produce the same key. */
std::uint64_t
foldLength(std::uint64_t h, std::size_t n)
{
    char buf[24];
    const int len = std::snprintf(buf, sizeof buf, "|%zu|", n);
    return fnv1a64(std::string_view(buf, static_cast<std::size_t>(len)),
                   h);
}

} // namespace

std::string
jobKey(std::string_view patternBytes, std::string_view paramSignature)
{
    std::uint64_t h = fnv1a64(kCacheSalt);
    h = foldLength(h, patternBytes.size());
    h = fnv1a64(patternBytes, h);
    h = foldLength(h, paramSignature.size());
    h = fnv1a64(paramSignature, h);
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(h));
    return hex;
}

std::string
defaultCacheDir()
{
    if (const char *dir = std::getenv("MINNOC_CACHE_DIR"); dir && *dir)
        return dir;
    if (const char *xdg = std::getenv("XDG_CACHE_HOME"); xdg && *xdg)
        return std::string(xdg) + "/minnoc";
    if (const char *home = std::getenv("HOME"); home && *home)
        return std::string(home) + "/.cache/minnoc";
    return ".minnoc-cache";
}

namespace {

/**
 * Pull the raw token following `"key":` out of a flat JSON object —
 * the only JSON this store ever writes, so a scanner beats a parser.
 */
std::optional<std::string>
rawField(const std::string &text, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    auto pos = text.find(needle);
    if (pos == std::string::npos)
        return std::nullopt;
    pos += needle.size();
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
        ++pos;
    if (pos >= text.size())
        return std::nullopt;
    if (text[pos] == '"') {
        const auto end = text.find('"', pos + 1);
        if (end == std::string::npos)
            return std::nullopt;
        return text.substr(pos + 1, end - pos - 1);
    }
    auto end = text.find_first_of(",}\n", pos);
    if (end == std::string::npos)
        return std::nullopt;
    auto token = text.substr(pos, end - pos);
    while (!token.empty() &&
           std::isspace(static_cast<unsigned char>(token.back())))
        token.pop_back();
    return token.empty() ? std::nullopt
                         : std::optional<std::string>(token);
}

bool
readU32(const std::string &text, const std::string &key,
        std::uint32_t &out)
{
    const auto raw = rawField(text, key);
    if (!raw)
        return false;
    char *end = nullptr;
    errno = 0;
    const auto v = std::strtoull(raw->c_str(), &end, 10);
    if (errno || *end != '\0' || v > 0xffffffffull)
        return false;
    out = static_cast<std::uint32_t>(v);
    return true;
}

bool
readI64(const std::string &text, const std::string &key,
        std::int64_t &out)
{
    const auto raw = rawField(text, key);
    if (!raw)
        return false;
    char *end = nullptr;
    errno = 0;
    const auto v = std::strtoll(raw->c_str(), &end, 10);
    if (errno || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
readDouble(const std::string &text, const std::string &key, double &out)
{
    const auto raw = rawField(text, key);
    if (!raw)
        return false;
    char *end = nullptr;
    errno = 0;
    const auto v = std::strtod(raw->c_str(), &end);
    if (errno || end == raw->c_str() || *end != '\0')
        return false;
    out = v;
    return true;
}

/** %.17g — enough digits for exact double round-tripping. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** 16 lowercase hex digits of @p h (the record checksum format). */
std::string
fmtHash(std::uint64_t h)
{
    char hex[17];
    std::snprintf(hex, sizeof hex, "%016llx",
                  static_cast<unsigned long long>(h));
    return hex;
}

/**
 * The byte range the record checksum covers: everything from the
 * `"params"` line to the end of the file. The schema and checksum
 * lines above it are excluded so the checksum can be spliced in
 * without hashing itself.
 */
constexpr std::string_view kPayloadAnchor = "  \"params\"";

} // namespace

ResultCache::ResultCache(std::string dir, bool enabled)
    : _dir(dir.empty() ? defaultCacheDir() : std::move(dir)),
      _enabled(enabled)
{
}

std::string
ResultCache::recordPath(const std::string &key) const
{
    return _dir + "/" + key + ".json";
}

void
ResultCache::quarantine(const std::string &key, const char *why) const
{
    const auto path = recordPath(key);
    std::error_code ec;
    std::filesystem::rename(path, path + ".corrupt", ec);
    if (ec) {
        // Renaming failed (permissions, races): removing is the next
        // best way to stop the poisoned record from hitting again.
        std::filesystem::remove(path, ec);
    }
    warn("dse cache: quarantined corrupt record '", path, "' (", why,
         "); recomputing");
}

std::optional<JobMetrics>
ResultCache::load(const std::string &key,
                  std::string_view paramSignature) const
{
    if (!_enabled)
        return std::nullopt;
    std::ifstream in(recordPath(key));
    if (!in)
        return std::nullopt;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    // A record written under a different salt is a plain miss (that is
    // how invalidation works), never corruption.
    const auto schema = rawField(text, "schema");
    if (!schema || *schema != kCacheSalt)
        return std::nullopt;

    // Verify the payload checksum before trusting anything else the
    // record claims: a flipped bit anywhere in the payload quarantines
    // the file and reads as a miss, so the job is recomputed.
    const auto checksum = rawField(text, "checksum");
    const auto payloadPos = text.find(kPayloadAnchor);
    if (!checksum || checksum->size() != 16 ||
        payloadPos == std::string::npos) {
        quarantine(key, "missing checksum or payload");
        return std::nullopt;
    }
    const auto computed = fmtHash(
        fnv1a64(std::string_view(text).substr(payloadPos)));
    if (*checksum != computed) {
        quarantine(key, "checksum mismatch");
        return std::nullopt;
    }

    const auto params = rawField(text, "params");
    if (!params || *params != paramSignature)
        return std::nullopt; // hash collision guard: a true miss

    JobMetrics m;
    std::uint32_t met = 0;
    if (!readU32(text, "switches", m.switches) ||
        !readU32(text, "links", m.links) ||
        !readU32(text, "channels", m.channels) ||
        !readU32(text, "constraints_met", met) ||
        !readU32(text, "violations", m.violations) ||
        !readU32(text, "rounds", m.rounds) ||
        !readU32(text, "switch_area", m.switchArea) ||
        !readU32(text, "link_area", m.linkArea) ||
        !readU32(text, "proc_link_area", m.procLinkArea) ||
        !readI64(text, "exec_time", m.execTime) ||
        !readDouble(text, "avg_latency", m.avgLatency) ||
        !readDouble(text, "avg_hops", m.avgHops) ||
        !readDouble(text, "max_link_util", m.maxLinkUtil) ||
        !readDouble(text, "energy", m.energy)) {
        // Checksum verified but the fields do not parse: a record
        // written by a buggy or hostile producer. Same treatment.
        quarantine(key, "unparseable payload");
        return std::nullopt;
    }
    m.constraintsMet = met != 0;
    return m;
}

void
ResultCache::store(const std::string &key,
                   std::string_view paramSignature,
                   const JobMetrics &m) const
{
    if (!_enabled)
        return;
    std::error_code ec;
    std::filesystem::create_directories(_dir, ec);
    if (ec) {
        warn("dse cache: cannot create '", _dir, "': ", ec.message());
        return;
    }

    // The checksum covers the payload (params line through the final
    // brace); it is computed over the exact bytes written so the read
    // side can verify without re-canonicalizing.
    std::ostringstream payload;
    payload
        << "  \"params\": \"" << paramSignature << "\",\n"
        << "  \"switches\": " << m.switches << ",\n"
        << "  \"links\": " << m.links << ",\n"
        << "  \"channels\": " << m.channels << ",\n"
        << "  \"constraints_met\": " << (m.constraintsMet ? 1 : 0)
        << ",\n"
        << "  \"violations\": " << m.violations << ",\n"
        << "  \"rounds\": " << m.rounds << ",\n"
        << "  \"switch_area\": " << m.switchArea << ",\n"
        << "  \"link_area\": " << m.linkArea << ",\n"
        << "  \"proc_link_area\": " << m.procLinkArea << ",\n"
        << "  \"exec_time\": " << m.execTime << ",\n"
        << "  \"avg_latency\": " << fmtDouble(m.avgLatency) << ",\n"
        << "  \"avg_hops\": " << fmtDouble(m.avgHops) << ",\n"
        << "  \"max_link_util\": " << fmtDouble(m.maxLinkUtil) << ",\n"
        << "  \"energy\": " << fmtDouble(m.energy) << "\n"
        << "}\n";

    std::ostringstream oss;
    oss << "{\n"
        << "  \"schema\": \"" << kCacheSalt << "\",\n"
        << "  \"checksum\": \"" << fmtHash(fnv1a64(payload.str()))
        << "\",\n"
        << payload.str();

    // Write-then-rename: readers only ever see complete records. Two
    // writers racing on one key write identical bytes (the pipeline is
    // deterministic), so either rename winning is fine.
    const auto path = recordPath(key);
    const auto tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            warn("dse cache: cannot write '", tmp, "'");
            return;
        }
        out << oss.str();
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        warn("dse cache: cannot rename '", tmp, "': ", ec.message());
}

} // namespace minnoc::dse
