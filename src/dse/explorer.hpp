/**
 * @file
 * Design-space exploration engine.
 *
 * The paper evaluates one generated network per pattern; the real value
 * of the methodology is the sweep. The explorer takes a communication
 * pattern plus a parameter grid (switch degree, restarts, seeds, link
 * directionality, VC configuration), fans the full
 * design -> floorplan -> simulate -> power pipeline out onto a worker
 * pool — one strictly sequential, re-entrant methodology run per job —
 * and reduces the evaluated points to a Pareto frontier over
 * (area, latency, energy). Jobs are content-hashed and memoized in the
 * on-disk ResultCache, so a warm rerun recomputes nothing, and every
 * artifact (report JSON included) is byte-identical at any thread
 * count: job order is the grid expansion order, never completion order.
 */

#ifndef MINNOC_DSE_EXPLORER_HPP
#define MINNOC_DSE_EXPLORER_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cache.hpp"
#include "core/clique_set.hpp"
#include "job.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_event.hpp"
#include "phase/segmenter.hpp"
#include "sim/config.hpp"
#include "topo/floorplan.hpp"
#include "topo/power.hpp"
#include "trace/trace.hpp"

namespace minnoc::dse {

/**
 * The swept parameter grid; expand() emits the cross product in a
 * fixed nested order (degree, restarts, seed, directionality, VCs,
 * phase window), which is also the point order of every report.
 */
struct ExploreGrid
{
    std::vector<std::uint32_t> maxDegrees = {4, 5, 6};
    std::vector<std::uint32_t> restarts = {8};
    std::vector<std::uint64_t> seeds = {1};
    /** 0 = duplex links, 1 = unidirectional channels. */
    std::vector<std::uint32_t> unidirectional = {0, 1};
    std::vector<std::uint32_t> vcs = {2, 3};
    std::uint32_t vcDepth = 4;
    /**
     * Phase-segmentation windows (messages); 0 = phase-aware evaluation
     * off, the classic single-network pipeline. The default sweeps only
     * the off point, so existing grids, reports and cache entries are
     * untouched unless the sweep is asked for.
     */
    std::vector<std::uint32_t> phaseWindows = {0};

    std::vector<JobParams> expand() const;
};

/** Everything one exploration run needs besides the pattern. */
struct ExploreConfig
{
    ExploreGrid grid;

    /** Worker threads (0 = hardware concurrency). */
    std::uint32_t threads = 0;

    /** Result-cache directory; empty selects defaultCacheDir(). */
    std::string cacheDir;
    /** Disable the cache entirely (cold evaluation, no stores). */
    bool useCache = true;

    /** Fixed per-run stage configurations (hashed into job keys). */
    topo::FloorplanConfig floorplan;
    topo::PowerModel power;
    /** Base simulator config; the grid overrides numVcs / vcDepth. */
    sim::SimConfig sim;

    /**
     * Segmenter template for phase-window jobs; the grid overrides
     * windowMessages. Only hashed into the keys of jobs whose
     * phaseWindow is nonzero, so classic jobs keep their cache keys.
     */
    phase::PhaseConfig phaseSegmenter;
    /** Boundary drain+swap penalty for phase-window jobs (cycles). */
    sim::Cycle phaseReconfigCost = 500;

    /**
     * Optional telemetry sinks (not owned, may be null). Per-job cache
     * hit/miss and design-quality gauges are keyed by grid index, so
     * their content is identical at any thread count; per-job stage
     * spans (methodology / build / simulate) land in @p traceLog on
     * wall-clock time. Neither participates in cache keys.
     */
    obs::MetricsRegistry *metrics = nullptr;
    obs::TraceEventLog *traceLog = nullptr;

    /**
     * Optional cooperative-cancellation token (not owned, may be
     * null). Checked before every DSE job and handed down into each
     * job's methodology (per-restart granularity) and simulator
     * (per-epoch granularity); a fired token unwinds explore() with
     * CancelledError. Never hashed into job keys.
     */
    const CancelToken *cancel = nullptr;
};

/** The reduced output of one exploration run. */
struct ExploreReport
{
    std::string pattern; ///< trace name
    std::uint32_t ranks = 0;
    /** Every evaluated point, in grid order, dominated flags set. */
    std::vector<DsePoint> points;
    /** Indices of the non-dominated points, ascending. */
    std::vector<std::size_t> frontier;
    std::size_t cacheHits = 0;
    std::size_t cacheMisses = 0;

    /**
     * Machine-readable JSON: all points (parameters, metrics,
     * dominated flag) plus the frontier index list. Cache statistics
     * are deliberately excluded so cold and warm runs emit identical
     * bytes.
     */
    std::string toJson() const;

    /** Human summary table, frontier points starred. */
    std::string summaryTable() const;
};

/**
 * The canonical parameter signature of one job: the concatenated
 * stage signatures (methodology | floorplan | power | simulator).
 * This string — not the raw tuple — is hashed into the cache key, so
 * every knob of every stage participates in invalidation.
 */
std::string jobSignature(const JobParams &params,
                         const ExploreConfig &config);

/**
 * Evaluate one job from scratch: methodology (sequential, re-entrant),
 * floorplan, trace-driven simulation, energy accounting. When
 * @p traceLog is given, per-stage wall-time spans are emitted on the
 * DSE track with @p tid (the job's grid index) as the thread id.
 */
JobMetrics evaluateJob(const trace::Trace &trace,
                       const core::CliqueSet &cliques,
                       const JobParams &params,
                       const ExploreConfig &config,
                       obs::TraceEventLog *traceLog = nullptr,
                       std::uint32_t tid = 0);

/**
 * Record one evaluated point's per-job telemetry: gauges keyed by grid
 * index, derived only from the job's result and cache state, so the
 * dump is byte-identical at any thread or worker count. Shared by the
 * in-process explorer and the distributed coordinator; no-op without a
 * metrics sink.
 */
void recordJobPoint(const ExploreConfig &config, std::size_t index,
                    const DsePoint &pt);

/**
 * Shared report finalization: tally cache hits/misses from the point
 * flags, run the Pareto reduction over (area, latency, energy), and
 * emit the run-level summary metrics. Expects report.points fully
 * populated in grid-expansion order — the merge point the in-process
 * explorer and the distributed coordinator share, so their reports are
 * byte-identical by construction.
 */
void finalizeReport(ExploreReport &report, const ExploreConfig &config);

/**
 * Explore @p trace over the grid: analyze the pattern once, evaluate
 * every job (cache-first) on a thread pool, extract the frontier.
 */
ExploreReport explore(const trace::Trace &trace,
                      const ExploreConfig &config);

} // namespace minnoc::dse

#endif // MINNOC_DSE_EXPLORER_HPP
