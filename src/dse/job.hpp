/**
 * @file
 * Design-space exploration job specification.
 *
 * One job = one full methodology pipeline run — design (partition +
 * finalize), floorplan, simulate, power — under one parameter tuple.
 * JobParams is the swept tuple; JobMetrics is the flat result record
 * the Pareto reduction and the on-disk cache operate on. Everything
 * here is plain data: evaluation lives in explorer.cpp, persistence in
 * cache.cpp.
 */

#ifndef MINNOC_DSE_JOB_HPP
#define MINNOC_DSE_JOB_HPP

#include <cstdint>
#include <string>

namespace minnoc::dse {

/** The parameter tuple of one exploration job. */
struct JobParams
{
    /** Maximum switch degree handed to the partitioner. */
    std::uint32_t maxDegree = 5;
    /** Methodology restarts (stochastic search width). */
    std::uint32_t restarts = 8;
    /** Base partitioner seed. */
    std::uint64_t seed = 1;
    /** Provision unidirectional channels instead of duplex links. */
    bool unidirectional = false;
    /** Virtual channels per physical link in the simulation. */
    std::uint32_t numVcs = 3;
    /** Buffer depth per virtual channel, in flits. */
    std::uint32_t vcDepth = 4;
    /**
     * Phase-segmentation window in messages; 0 disables phase-aware
     * evaluation (the classic monolithic pipeline). Nonzero selects the
     * time-multiplexed pipeline: segment the trace, synthesize one
     * network per phase, charge reconfiguration at every boundary.
     */
    std::uint32_t phaseWindow = 0;

    bool operator==(const JobParams &o) const = default;
};

/**
 * Flat result record of one evaluated job. Doubles are produced by a
 * deterministic pipeline and serialized with round-trip precision, so
 * a cache hit reproduces the computed record bit for bit.
 */
struct JobMetrics
{
    // Design (methodology output).
    std::uint32_t switches = 0;
    std::uint32_t links = 0;    ///< full-duplex inter-switch links
    std::uint32_t channels = 0; ///< directed channels (fwd + bwd)
    bool constraintsMet = false;
    std::uint32_t violations = 0; ///< residual Theorem-1 pairs
    std::uint32_t rounds = 0;

    // Floorplan (area model).
    std::uint32_t switchArea = 0;
    std::uint32_t linkArea = 0;
    std::uint32_t procLinkArea = 0;

    // Simulation.
    std::int64_t execTime = 0;
    double avgLatency = 0.0;
    double avgHops = 0.0;
    double maxLinkUtil = 0.0;

    // Power.
    double energy = 0.0;

    /** Combined silicon cost (the Pareto resource axis). */
    std::uint32_t
    totalArea() const
    {
        return switchArea + linkArea + procLinkArea;
    }

    bool operator==(const JobMetrics &o) const = default;
};

/** One explored point: parameters, metrics, and reduction flags. */
struct DsePoint
{
    JobParams params;
    JobMetrics metrics;
    /** True if some other point is at least as good on every axis. */
    bool dominated = false;
    /** True if the metrics came from the result cache. */
    bool fromCache = false;
};

} // namespace minnoc::dse

#endif // MINNOC_DSE_JOB_HPP
