#include "remote.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/log.hpp"

namespace minnoc::dist {

std::vector<HostSpec>
parseHostList(const std::string &spec)
{
    std::vector<HostSpec> hosts;
    std::size_t start = 0;
    while (start <= spec.size()) {
        auto comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(start, comma - start);
        start = comma + 1;
        if (entry.empty()) {
            if (spec.empty())
                break;
            fatal("dist: empty entry in host list '", spec, "'");
        }
        const auto colon = entry.rfind(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == entry.size())
            fatal("dist: host entry '", entry,
                  "' is not host:port");
        HostSpec h;
        h.host = entry.substr(0, colon);
        char *end = nullptr;
        const long port =
            std::strtol(entry.c_str() + colon + 1, &end, 10);
        if (!end || *end != '\0' || port < 1 || port > 65535)
            fatal("dist: host entry '", entry,
                  "' has an invalid port");
        h.port = static_cast<std::uint16_t>(port);
        hosts.push_back(std::move(h));
        if (comma == spec.size())
            break;
    }
    return hosts;
}

namespace {

int
tryConnect(const HostSpec &host, std::string &err)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string portStr = std::to_string(host.port);
    const int rc =
        ::getaddrinfo(host.host.c_str(), portStr.c_str(), &hints, &res);
    if (rc != 0) {
        err = "resolve " + host.label() + ": " + ::gai_strerror(rc);
        return -1;
    }
    int fd = -1;
    for (const addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        err = "connect " + host.label() + ": " + std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0 && err.empty())
        err = "connect " + host.label() + ": no usable address";
    if (fd >= 0) {
        // Job requests are single small lines; latency beats batching.
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        err.clear();
    }
    return fd;
}

} // namespace

int
connectHost(const HostSpec &host, std::string &err, int attempts)
{
    // Bounded exponential backoff: a daemon that is restarting (or
    // racing the coordinator's launch) gets a few seconds to come up;
    // a dead address fails fast enough to fall back elsewhere.
    std::int64_t delayUs = 100'000;
    for (int i = 0; i < attempts; ++i) {
        const int fd = tryConnect(host, err);
        if (fd >= 0)
            return fd;
        if (i + 1 < attempts) {
            ::usleep(static_cast<useconds_t>(delayUs));
            delayUs = std::min<std::int64_t>(delayUs * 2, 1'600'000);
        }
    }
    return -1;
}

bool
sendAll(int fd, std::string_view data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off,
                                 data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                pollfd p{fd, POLLOUT, 0};
                (void)::poll(&p, 1, 100);
                continue;
            }
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace minnoc::dist
