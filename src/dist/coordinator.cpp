#include "coordinator.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <functional>
#include <numeric>
#include <optional>
#include <poll.h>
#include <sstream>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include "dse/cache.hpp"
#include "phase/multi_design.hpp"
#include "protocol.hpp"
#include "remote.hpp"
#include "serve/protocol.hpp"
#include "util/cancel.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "worker.hpp"

namespace minnoc::dist {

namespace {

/** Scheduler tick; also the cancellation-polling period. */
constexpr int kPollMs = 100;
/** SIGTERM -> SIGKILL drain window on cancellation. */
constexpr std::int64_t kDrainUs = 2'000'000;
/** Requests kept in flight per remote lane (pipelined dispatch). */
constexpr std::size_t kRemoteWindow = 8;

/** One lane — a forked pipe worker or a remote daemon connection. */
struct WorkerProc
{
    pid_t pid = -1; ///< forked lanes only
    int fd = -1;    ///< pipe read end / socket (non-blocking); -1 = reaped
    FrameBuffer frames;  ///< pipe lanes: netstring decoder
    std::string lineBuf; ///< remote lanes: NDJSON reply buffer
    /** Assigned jobs not yet resulted (dispatched or queued). */
    std::vector<std::uint32_t> pending;
    /** Remote lanes: assigned jobs not yet sent (dispatch window). */
    std::deque<std::uint32_t> unsent;
    std::uint32_t attempt = 1;
    std::int64_t lastActivityUs = 0;
    bool remote = false;
    int hostIdx = -1; ///< index into DistOptions::hosts
    bool doneSeen = false;
    bool timedOut = false;
    std::string errorText; ///< from an `error` frame, "code: message"
};

using RequestBuilder = std::function<std::string(
    std::uint32_t slot, std::uint32_t attempt,
    const std::vector<std::uint32_t> &jobs)>;
/** One serve request line (newline-terminated) for one job. */
using RemoteJobBuilder = std::function<std::string(
    std::uint32_t job, std::uint32_t attempt)>;
using ResultHandler =
    std::function<void(const WorkerMsg &msg, std::uint32_t slot)>;

/** Restore the previous SIGPIPE disposition on scope exit. */
class SigpipeGuard
{
  public:
    SigpipeGuard() : _prev(std::signal(SIGPIPE, SIG_IGN)) {}
    ~SigpipeGuard() { std::signal(SIGPIPE, _prev); }

  private:
    using Handler = void (*)(int);
    Handler _prev;
};

WorkerProc
spawnWorker(std::uint32_t slot, std::uint32_t attempt,
            const std::vector<std::uint32_t> &jobs,
            const RequestBuilder &makeRequest)
{
    const std::string request = makeRequest(slot, attempt, jobs);
    int req[2];
    int res[2];
    if (::pipe(req) != 0 || ::pipe(res) != 0)
        fatal("dist: pipe: ", std::strerror(errno));
    const pid_t pid = ::fork();
    if (pid < 0)
        fatal("dist: fork: ", std::strerror(errno));
    if (pid == 0) {
        // Child: only its own pipe ends stay open. Inherited read ends
        // of sibling result pipes are harmless (they never block EOF);
        // write ends were already closed in the parent before this
        // fork, so no sibling can keep another worker's pipe alive.
        ::close(req[1]);
        ::close(res[0]);
        ::_exit(runWorker(req[0], res[1]));
    }
    ::close(req[0]);
    ::close(res[1]);
    // Exactly one request frame, then EOF: the worker's whole input.
    // A write failure means the child died instantly; the reaper will
    // pick the corpse up through the result pipe's EOF.
    (void)writeFrame(req[1], request);
    ::close(req[1]);
    const int flags = ::fcntl(res[0], F_GETFL, 0);
    ::fcntl(res[0], F_SETFL, flags | O_NONBLOCK);

    WorkerProc w;
    w.pid = pid;
    w.fd = res[0];
    w.pending = jobs;
    w.attempt = attempt;
    w.lastActivityUs = CancelToken::nowUs();
    return w;
}

/**
 * Open a remote lane: connect (with backoff) and dispatch the first
 * kRemoteWindow job requests; the rest queue in `unsent` and flow as
 * results land, so the daemon always has work without a failure
 * losing more than a window's worth of in-flight requests. A lane
 * that cannot connect or send is returned born dead (fd == -1,
 * errorText set) for the caller to route through the failure path.
 */
WorkerProc
spawnRemoteLane(int hostIdx, const HostSpec &host,
                std::uint32_t attempt,
                const std::vector<std::uint32_t> &jobs,
                const RemoteJobBuilder &makeJob)
{
    WorkerProc w;
    w.remote = true;
    w.hostIdx = hostIdx;
    w.attempt = attempt;
    w.pending = jobs;
    w.lastActivityUs = CancelToken::nowUs();

    std::string err;
    const int fd = connectHost(host, err);
    if (fd < 0) {
        w.errorText = err;
        return w;
    }
    const std::size_t window = std::min(jobs.size(), kRemoteWindow);
    for (std::size_t k = 0; k < jobs.size(); ++k) {
        if (k < window) {
            if (!sendAll(fd, makeJob(jobs[k], attempt))) {
                w.errorText = "send " + host.label() + ": " +
                              std::strerror(errno);
                ::close(fd);
                return w;
            }
        } else {
            w.unsent.push_back(jobs[k]);
        }
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    w.fd = fd;
    return w;
}

/**
 * SIGTERM forked workers, give kDrainUs to exit, SIGKILL stragglers.
 * Remote lanes just close: the daemon's reader sees EOF and
 * Disconnect-cancels every in-flight job, so a Ctrl-C here leaves no
 * orphaned work on any host.
 */
void
terminateAll(std::vector<WorkerProc> &procs)
{
    for (auto &w : procs) {
        if (w.remote) {
            if (w.fd >= 0) {
                ::close(w.fd);
                w.fd = -1;
            }
        } else if (w.fd >= 0 && w.pid > 0) {
            ::kill(w.pid, SIGTERM);
        }
    }
    const std::int64_t deadline = CancelToken::nowUs() + kDrainUs;
    for (auto &w : procs) {
        if (w.fd < 0 || w.pid <= 0)
            continue;
        int status = 0;
        for (;;) {
            const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
            if (r == w.pid || (r < 0 && errno == ECHILD))
                break;
            if (CancelToken::nowUs() >= deadline) {
                ::kill(w.pid, SIGKILL);
                ::waitpid(w.pid, &status, 0);
                break;
            }
            ::usleep(20'000);
        }
        ::close(w.fd);
        w.fd = -1;
        w.pid = -1;
    }
}

std::string
describeExit(int status)
{
    if (WIFEXITED(status))
        return "exit " + std::to_string(WEXITSTATUS(status));
    if (WIFSIGNALED(status))
        return "signal " + std::to_string(WTERMSIG(status));
    return "unknown exit";
}

/**
 * Drive every lane to completion: poll pipe and socket fds, dispatch
 * result documents, reap crashed/hung lanes and requeue their
 * unfinished jobs (at most once per shard) onto a surviving remote
 * host or a fresh forked worker. Throws CancelledError when @p cancel
 * fires, std::runtime_error when a shard fails twice.
 */
void
runShards(const std::vector<std::vector<std::uint32_t>> &shards,
          const DistOptions &options, const CancelToken *cancel,
          const RequestBuilder &makeRequest,
          const RemoteJobBuilder &makeJob, const ResultHandler &onResult,
          DistStats &stats, obs::TraceEventLog *traceLog,
          const char *jobLabel)
{
    SigpipeGuard sigpipe;
    const std::int64_t timeoutUs =
        std::max<std::int64_t>(options.workerTimeoutMs, 1) * 1000;
    const auto &hosts = options.hosts;
    const std::size_t remoteLanes =
        std::min(hosts.size(), shards.size());
    // A host that failed once is never retried: its replacement lane
    // must not inherit the same fault.
    std::vector<char> hostDead(hosts.size(), 0);

    std::vector<WorkerProc> procs;
    /** hostIdx >= 0: remote lane on hosts[hostIdx]; -1: forked. */
    const auto addSlot = [&](const std::vector<std::uint32_t> &jobs,
                             std::uint32_t attempt, int hostIdx) {
        const auto slot = static_cast<std::uint32_t>(procs.size());
        if (hostIdx >= 0)
            procs.push_back(
                spawnRemoteLane(hostIdx,
                                hosts[static_cast<std::size_t>(hostIdx)],
                                attempt, jobs, makeJob));
        else
            procs.push_back(
                spawnWorker(slot, attempt, jobs, makeRequest));
        stats.jobs.push_back(0);
        stats.cacheHits.push_back(0);
        stats.wallUsSum.push_back(0);
        stats.hostOf.push_back(
            hostIdx >= 0
                ? hosts[static_cast<std::size_t>(hostIdx)].label()
                : "");
        stats.workers = static_cast<std::uint32_t>(procs.size());
        if constexpr (obs::kEnabled) {
            if (traceLog)
                traceLog->threadName(
                    obs::kPidDist, slot,
                    hostIdx >= 0
                        ? "host " + stats.hostOf.back()
                        : "worker " + std::to_string(slot));
        }
        return slot;
    };

    // Reap one lane: close, waitpid (forked only), decide clean vs
    // failed, requeue. std::function so the born-dead replacement path
    // can recurse (depth bounded by the two-attempt cap).
    std::function<void(std::uint32_t)> reap =
        [&](std::uint32_t slot) {
        auto &w = procs[slot];
        if (w.fd >= 0) {
            ::close(w.fd);
            w.fd = -1;
        }
        int status = 0;
        if (!w.remote) {
            ::waitpid(w.pid, &status, 0);
            w.pid = -1;
        }

        const bool clean =
            w.pending.empty() && w.unsent.empty() &&
            w.errorText.empty() && !w.timedOut &&
            (w.remote ? true
                      : w.doneSeen && WIFEXITED(status) &&
                            WEXITSTATUS(status) == 0);
        if (clean)
            return;

        std::string reason;
        if (w.timedOut)
            reason = "timeout";
        else if (!w.errorText.empty())
            reason = w.errorText;
        else if (!w.remote && w.doneSeen && !w.pending.empty())
            reason = "protocol: done with " +
                     std::to_string(w.pending.size()) + " jobs pending";
        else if (w.remote)
            reason = "connection closed";
        else
            reason = describeExit(status);

        // Lost work: results never arrive for dispatched-but-unfinished
        // jobs (pending) nor for the queued window tail (unsent ⊆
        // pending for remote lanes; empty for forked ones).
        std::vector<std::uint32_t> lost = w.pending;
        std::sort(lost.begin(), lost.end());

        if (w.remote && w.hostIdx >= 0)
            hostDead[static_cast<std::size_t>(w.hostIdx)] = 1;

        WorkerFailure failure;
        failure.worker = slot;
        if (w.remote && w.hostIdx >= 0)
            failure.host =
                hosts[static_cast<std::size_t>(w.hostIdx)].label();
        failure.reason = reason;
        failure.requeuedJobs = lost;
        stats.failures.push_back(failure);
        warn("dist: ", w.remote ? "host lane " : "worker ", slot,
             w.remote ? " (" + failure.host + ")" : std::string(),
             " failed (", reason, "), ", lost.size(),
             " job(s) to requeue");

        if (lost.empty())
            return; // every assigned job already landed; nothing lost
        if (w.attempt >= 2) {
            terminateAll(procs);
            throw std::runtime_error(
                "dist: shard failed twice (last: " + reason +
                "); aborting");
        }
        const auto nextAttempt = w.attempt + 1;
        w.pending.clear();
        w.unsent.clear();

        // Requeue onto the first surviving host, else a forked local
        // worker — the run converges as long as one backend exists.
        int target = -1;
        for (std::size_t h = 0; h < hosts.size(); ++h) {
            if (!hostDead[h]) {
                target = static_cast<int>(h);
                break;
            }
        }
        const auto fresh = addSlot(lost, nextAttempt, target);
        if (procs[fresh].remote && procs[fresh].fd < 0)
            reap(fresh); // born dead (connect/send failed): recurse
    };

    // Shared Result/Done/Error handling for both wire formats. On a
    // protocol violation errorText gets a "protocol: " prefix, which
    // the pipe path translates into SIGKILL.
    const auto dispatch = [&](std::uint32_t slot,
                              const WorkerMsg &msg) {
        auto &w = procs[slot];
        w.lastActivityUs = CancelToken::nowUs();
        switch (msg.kind) {
        case WorkerMsg::Kind::Result: {
            const auto it = std::find(w.pending.begin(),
                                      w.pending.end(), msg.index);
            if (it == w.pending.end()) {
                w.errorText = "protocol: unexpected result for job " +
                              std::to_string(msg.index);
                break;
            }
            w.pending.erase(it);
            ++stats.jobs[slot];
            if (msg.cached)
                ++stats.cacheHits[slot];
            stats.wallUsSum[slot] += msg.wallUs;
            if constexpr (obs::kEnabled) {
                if (traceLog) {
                    const std::int64_t arrival = obs::wallMicros();
                    traceLog->complete(
                        std::string(jobLabel) + " " +
                            std::to_string(msg.index),
                        obs::kPidDist, slot, arrival - msg.wallUs,
                        std::max<std::int64_t>(msg.wallUs, 1),
                        "\"cached\": " +
                            std::string(msg.cached ? "true" : "false"));
                }
            }
            onResult(msg, slot);
            // Keep the remote window full; an empty pending set is
            // this lane's `done`.
            if (w.remote) {
                if (!w.unsent.empty()) {
                    const auto next = w.unsent.front();
                    if (sendAll(w.fd, makeJob(next, w.attempt)))
                        w.unsent.pop_front();
                    else
                        w.errorText = std::string("send: ") +
                                      std::strerror(errno);
                } else if (w.pending.empty()) {
                    w.doneSeen = true;
                }
            }
            break;
        }
        case WorkerMsg::Kind::Done:
            w.doneSeen = true;
            break;
        case WorkerMsg::Kind::Error:
            w.errorText = msg.code + ": " + msg.message;
            break;
        }
    };

    for (std::size_t i = 0; i < shards.size(); ++i)
        addSlot(shards[i], 1,
                i < remoteLanes ? static_cast<int>(i) : -1);
    // Route lanes that never connected through the failure path now.
    // (pending nonempty distinguishes an unprocessed born-dead lane
    // from one reap() already requeued recursively.)
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(procs.size()); ++i)
        if (procs[i].remote && procs[i].fd < 0 &&
            !procs[i].errorText.empty() && !procs[i].pending.empty())
            reap(i);

    while (true) {
        if (cancel && cancel->cancelled()) {
            terminateAll(procs);
            throw CancelledError(cancel->reason());
        }

        std::vector<pollfd> fds;
        std::vector<std::uint32_t> slotOf;
        for (std::uint32_t i = 0; i < procs.size(); ++i) {
            if (procs[i].fd >= 0) {
                fds.push_back({procs[i].fd, POLLIN, 0});
                slotOf.push_back(i);
            }
        }
        if (fds.empty())
            break;

        const int rc = ::poll(fds.data(),
                              static_cast<nfds_t>(fds.size()), kPollMs);
        if (rc < 0 && errno != EINTR)
            fatal("dist: poll: ", std::strerror(errno));

        for (std::size_t k = 0; k < fds.size(); ++k) {
            if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            const std::uint32_t slot = slotOf[k];
            if (procs[slot].fd < 0)
                continue; // already reaped this tick

            bool eof = false;
            char buf[65536];
            for (;;) {
                auto &w = procs[slot];
                const ssize_t n = ::read(w.fd, buf, sizeof buf);
                if (n > 0) {
                    if (w.remote)
                        w.lineBuf.append(
                            buf, static_cast<std::size_t>(n));
                    else
                        w.frames.append(
                            buf, static_cast<std::size_t>(n));
                    continue;
                }
                if (n == 0) {
                    eof = true;
                    break;
                }
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    break;
                eof = true;
                break;
            }

            if (procs[slot].remote) {
                // Remote lane: one serve reply per line; an ok reply
                // wraps the identical job-wire result document.
                auto &w = procs[slot];
                std::size_t start = 0;
                for (;;) {
                    const auto nl = w.lineBuf.find('\n', start);
                    if (nl == std::string::npos)
                        break;
                    const std::string line =
                        w.lineBuf.substr(start, nl - start);
                    start = nl + 1;
                    if (line.empty())
                        continue;
                    const auto reply = serve::parseReply(line);
                    if (!reply) {
                        w.errorText = "protocol: unparseable reply";
                        break;
                    }
                    if (!reply->ok) {
                        w.errorText =
                            reply->code + ": " + reply->message;
                        break;
                    }
                    std::string err;
                    const auto msg =
                        parseWorkerMsg(reply->result, err);
                    if (!msg) {
                        w.errorText = "protocol: " + err;
                        break;
                    }
                    dispatch(slot, *msg);
                    if (!w.errorText.empty())
                        break;
                }
                w.lineBuf.erase(0, start);
                if (w.errorText.empty() &&
                    w.lineBuf.size() > serve::kMaxRequestBytes)
                    w.errorText = "protocol: oversized reply line";
                if (!w.errorText.empty() || eof || w.doneSeen)
                    reap(slot);
                continue;
            }

            auto &w = procs[slot];
            while (auto payload = w.frames.next()) {
                std::string err;
                const auto msg = parseWorkerMsg(*payload, err);
                if (!msg) {
                    w.errorText = "protocol: " + err;
                    break;
                }
                dispatch(slot, *msg);
                if (!w.errorText.empty())
                    break;
            }
            if (w.frames.corrupt() && w.errorText.empty())
                w.errorText = "protocol: corrupt frame stream";
            // A protocol violation means the worker is off the rails;
            // stop it now instead of draining its stream.
            if (w.errorText.rfind("protocol:", 0) == 0 && w.pid > 0)
                ::kill(w.pid, SIGKILL);
            if (eof)
                reap(slot);
        }

        // Hang detection: no result and no done for the whole window.
        // A stalled socket and a stalled pipe are the same condition;
        // only the cleanup differs (close vs SIGKILL).
        const std::int64_t now = CancelToken::nowUs();
        for (std::uint32_t i = 0; i < procs.size(); ++i) {
            auto &w = procs[i];
            if (w.fd >= 0 && now - w.lastActivityUs > timeoutUs) {
                w.timedOut = true;
                if (!w.remote && w.pid > 0)
                    ::kill(w.pid, SIGKILL);
                reap(i);
            }
        }
    }
}

/** Post-run telemetry shared by both distributed entry points. */
void
recordDistTelemetry(obs::MetricsRegistry *metrics,
                    obs::TraceEventLog *traceLog, const DistStats &stats)
{
    if constexpr (obs::kEnabled) {
        if (metrics) {
            auto &m = *metrics;
            for (std::uint32_t w = 0; w < stats.workers; ++w) {
                const std::string prefix =
                    "dist/worker/" + std::to_string(w) + "/";
                m.counter(prefix + "jobs").add(stats.jobs[w]);
                m.counter(prefix + "cache_hits")
                    .add(stats.cacheHits[w]);
            }
            std::uint64_t hostFailures = 0;
            for (const auto &f : stats.failures)
                if (!f.host.empty())
                    ++hostFailures;
            m.counter("dist/worker_failures")
                .add(stats.failures.size() - hostFailures);
            m.counter("dist/host_failures").add(hostFailures);
            m.gauge("dist/workers")
                .set(static_cast<double>(stats.workers));
        }
        if (traceLog)
            traceLog->processName(obs::kPidDist, "minnoc dist");
    }
}

} // namespace

std::string
DistStats::toJson(const std::string &task) const
{
    std::ostringstream oss;
    oss << "{\n"
        << "  \"report\": \"minnoc-dist-status\",\n"
        << "  \"task\": \"" << task << "\",\n"
        << "  \"workers\": " << workers << ",\n"
        << "  \"per_worker\": [\n";
    for (std::uint32_t w = 0; w < workers; ++w) {
        oss << "    {\"worker\": " << w;
        if (w < hostOf.size() && !hostOf[w].empty())
            oss << ", \"host\": \"" << serve::jsonEscape(hostOf[w])
                << "\"";
        oss << ", \"jobs\": " << jobs[w]
            << ", \"cache_hits\": " << cacheHits[w]
            << ", \"wall_us\": " << wallUsSum[w] << "}"
            << (w + 1 < workers ? "," : "") << "\n";
    }
    // Failures split by backend: `worker_failed` keeps its historical
    // forked-worker meaning, remote lanes land in `host_failed`.
    const auto emitFailures = [&](bool remote) {
        bool first = true;
        for (const auto &f : failures) {
            if (f.host.empty() == remote)
                continue;
            oss << (first ? "" : ", ") << "{\"worker\": " << f.worker;
            if (remote)
                oss << ", \"host\": \"" << serve::jsonEscape(f.host)
                    << "\"";
            oss << ", \"reason\": \"" << serve::jsonEscape(f.reason)
                << "\", \"requeued_jobs\": [";
            for (std::size_t j = 0; j < f.requeuedJobs.size(); ++j)
                oss << (j ? ", " : "") << f.requeuedJobs[j];
            oss << "]}";
            first = false;
        }
    };
    oss << "  ],\n"
        << "  \"worker_failed\": [";
    emitFailures(false);
    oss << "],\n"
        << "  \"host_failed\": [";
    emitFailures(true);
    oss << "]\n}\n";
    return oss.str();
}

dse::ExploreReport
exploreDistributed(const trace::Trace &trace,
                   const dse::ExploreConfig &config,
                   const DistOptions &options, DistStats *statsOut)
{
    std::ostringstream patternStream;
    trace.save(patternStream);
    const std::string patternBytes = patternStream.str();

    const auto jobs = config.grid.expand();

    dse::ExploreReport report;
    report.pattern = trace.name();
    report.ranks = trace.numRanks();
    report.points.resize(jobs.size());

    DistStats localStats;
    DistStats &stats = statsOut ? *statsOut : localStats;
    stats = DistStats{};

    if (!jobs.empty()) {
        for (const auto seed : config.grid.seeds)
            if (seed > (1ull << 53))
                fatal("dist: seed ", seed,
                      " exceeds the wire's exact integer range");

        std::vector<std::string> sigs(jobs.size());
        std::vector<std::string> keys(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            sigs[i] = dse::jobSignature(jobs[i], config);
            keys[i] = dse::jobKey(patternBytes, sigs[i]);
        }

        // Content-hash sharding: order jobs by cache key (ties by grid
        // index) and deal them round-robin, so shards are balanced to
        // ±1 job and the assignment depends only on workload content
        // and grid, never on timing.
        std::vector<std::uint32_t> order(jobs.size());
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                      return keys[a] != keys[b] ? keys[a] < keys[b]
                                                : a < b;
                  });
        const auto n = std::max<std::uint32_t>(
            1, std::min<std::uint32_t>(
                   options.workers +
                       static_cast<std::uint32_t>(
                           options.hosts.size()),
                   static_cast<std::uint32_t>(jobs.size())));
        std::vector<std::vector<std::uint32_t>> shards(n);
        for (std::size_t k = 0; k < order.size(); ++k)
            shards[k % n].push_back(order[k]);
        for (auto &shard : shards)
            std::sort(shard.begin(), shard.end());

        const auto makeRequest =
            [&](std::uint32_t slot, std::uint32_t attempt,
                const std::vector<std::uint32_t> &assigned) {
                ShardRequest req;
                req.cmd = "explore_shard";
                req.worker = slot;
                req.attempt = attempt;
                req.traceText = patternBytes;
                req.jobs = assigned;
                for (const auto j : assigned)
                    req.sigs.push_back(sigs[j]);
                req.grid = config.grid;
                req.reconfigCost = config.phaseReconfigCost;
                req.cacheDir = config.cacheDir;
                req.useCache = config.useCache;
                req.mergeThreshold =
                    config.phaseSegmenter.mergeThreshold;
                req.minPhaseWindows =
                    config.phaseSegmenter.minPhaseWindows;
                req.matrixWeight = config.phaseSegmenter.matrixWeight;
                req.power = topo::powerModelKindName(config.power.kind);
                return encodeShardRequest(req);
            };
        // Remote lanes dispatch one `dse_job` per grid point; the
        // daemon uses its own disk cache, so `cache_dir` never crosses
        // the socket.
        const auto makeJob = [&](std::uint32_t job,
                                 std::uint32_t attempt) {
            const auto &p = jobs[job];
            std::string out = "{\"id\": \"" + std::to_string(job) +
                              "\", \"cmd\": \"dse_job\"";
            out += ", \"attempt\": " + std::to_string(attempt);
            out += ", \"job_index\": " + std::to_string(job);
            out += ", \"sig\": \"" + serve::jsonEscape(sigs[job]) +
                   "\"";
            out += ", \"max_degree\": " + std::to_string(p.maxDegree);
            out += ", \"restarts\": " + std::to_string(p.restarts);
            out += ", \"seed\": " + std::to_string(p.seed);
            out += std::string(", \"unidirectional\": ") +
                   (p.unidirectional ? "1" : "0");
            out += ", \"vcs\": " + std::to_string(p.numVcs);
            out += ", \"vc_depth\": " + std::to_string(p.vcDepth);
            out += ", \"phase_window\": " +
                   std::to_string(p.phaseWindow);
            out += ", \"reconfig_cost\": " +
                   std::to_string(config.phaseReconfigCost);
            out += ", \"threshold\": " +
                   fmtDouble(config.phaseSegmenter.mergeThreshold);
            out += ", \"min_phase_windows\": " +
                   std::to_string(config.phaseSegmenter.minPhaseWindows);
            out += ", \"matrix_weight\": " +
                   fmtDouble(config.phaseSegmenter.matrixWeight);
            // Only off the default tier: static requests stay
            // byte-identical to what pre-power daemons accept.
            if (config.power.kind != topo::PowerModelKind::Static)
                out += std::string(", \"power\": \"") +
                       topo::powerModelKindName(config.power.kind) +
                       "\"";
            out += ", \"deadline_ms\": " +
                   std::to_string(std::max<std::int64_t>(
                       options.workerTimeoutMs, 1));
            out += ", \"trace\": \"" + serve::jsonEscape(patternBytes) +
                   "\"}\n";
            return out;
        };
        const auto onResult = [&](const WorkerMsg &msg,
                                  std::uint32_t /*slot*/) {
            dse::DsePoint pt;
            pt.params = jobs[msg.index];
            pt.metrics = msg.metrics;
            pt.fromCache = msg.cached;
            dse::recordJobPoint(config, msg.index, pt);
            report.points[msg.index] = std::move(pt);
        };
        runShards(shards, options, config.cancel, makeRequest, makeJob,
                  onResult, stats, config.traceLog, "job");
    }

    dse::finalizeReport(report, config);
    recordDistTelemetry(config.metrics, config.traceLog, stats);
    return report;
}

phase::PhaseReport
evaluatePhasesDistributed(const trace::Trace &trace,
                          const phase::PhaseEvalConfig &config,
                          const DistOptions &options, DistStats *statsOut)
{
    const phase::Segmentation seg =
        phase::segmentTrace(trace, config.segmenter);

    DistStats localStats;
    DistStats &stats = statsOut ? *statsOut : localStats;
    stats = DistStats{};

    // Whole-trace artifacts stay in-process: the monolithic and union
    // designs need the full workload, and the per-phase standalone
    // designs (the bulk of the work) never feed into them — see
    // DESIGN.md §5j. The restart pool is scoped so no extra threads
    // exist when the workers fork below.
    phase::MultiPhaseResult multi;
    {
        std::uint32_t threads =
            config.threads ? config.threads
                           : std::thread::hardware_concurrency();
        threads = std::max(threads, 1u);
        std::optional<ThreadPool> pool;
        if (threads > 1)
            pool.emplace(threads);
        multi = phase::synthesizeMultiPhase(
            trace, seg, config.methodology, pool ? &*pool : nullptr,
            /*withPhaseDesigns=*/false);
    }

    const phase::VariantResult mono = phase::evalDesignVariant(
        multi.monolithic.design, multi.monolithic.violations.size(),
        trace, config);
    const phase::VariantResult uni = phase::evalDesignVariant(
        multi.unionDesign, multi.unionViolationCount(), trace, config);
    std::vector<std::size_t> unionViolations;
    unionViolations.reserve(multi.unionPhaseViolations.size());
    for (const auto &v : multi.unionPhaseViolations)
        unionViolations.push_back(v.size());

    const auto nPhases = static_cast<std::uint32_t>(seg.phases.size());
    std::vector<phase::PhaseRowEval> rows(nPhases);
    if (nPhases > 0) {
        if (config.methodology.partitioner.seed > (1ull << 53))
            fatal("dist: seed ", config.methodology.partitioner.seed,
                  " exceeds the wire's exact integer range");
        std::ostringstream patternStream;
        trace.save(patternStream);
        const std::string traceText = patternStream.str();
        const std::string sig = phasesSignature(config);

        const auto n = std::max<std::uint32_t>(
            1, std::min<std::uint32_t>(
                   options.workers +
                       static_cast<std::uint32_t>(
                           options.hosts.size()),
                   nPhases));
        std::vector<std::vector<std::uint32_t>> shards(n);
        for (std::uint32_t p = 0; p < nPhases; ++p)
            shards[p % n].push_back(p);

        const auto makeRequest =
            [&](std::uint32_t slot, std::uint32_t attempt,
                const std::vector<std::uint32_t> &assigned) {
                ShardRequest req;
                req.cmd = "phases_shard";
                req.worker = slot;
                req.attempt = attempt;
                req.traceText = traceText;
                req.jobs = assigned;
                req.sigs.assign(assigned.size(), sig);
                req.window = config.segmenter.windowMessages;
                req.mergeThreshold = config.segmenter.mergeThreshold;
                req.minPhaseWindows = config.segmenter.minPhaseWindows;
                req.matrixWeight = config.segmenter.matrixWeight;
                req.maxDegree =
                    config.methodology.partitioner.constraints.maxDegree;
                req.restarts = config.methodology.restarts;
                req.seed = config.methodology.partitioner.seed;
                req.reconfigCost = config.reconfigCost;
                req.expectedPhases = nPhases;
                req.power = topo::powerModelKindName(config.power.kind);
                return encodeShardRequest(req);
            };
        const auto makeJob = [&](std::uint32_t job,
                                 std::uint32_t attempt) {
            std::string out = "{\"id\": \"" + std::to_string(job) +
                              "\", \"cmd\": \"phase_job\"";
            out += ", \"attempt\": " + std::to_string(attempt);
            out += ", \"job_index\": " + std::to_string(job);
            out += ", \"sig\": \"" + serve::jsonEscape(sig) + "\"";
            out += ", \"window\": " +
                   std::to_string(config.segmenter.windowMessages);
            out += ", \"threshold\": " +
                   fmtDouble(config.segmenter.mergeThreshold);
            out += ", \"min_phase_windows\": " +
                   std::to_string(config.segmenter.minPhaseWindows);
            out += ", \"matrix_weight\": " +
                   fmtDouble(config.segmenter.matrixWeight);
            out += ", \"max_degree\": " +
                   std::to_string(config.methodology.partitioner
                                      .constraints.maxDegree);
            out += ", \"restarts\": " +
                   std::to_string(config.methodology.restarts);
            out += ", \"seed\": " +
                   std::to_string(config.methodology.partitioner.seed);
            out += ", \"reconfig_cost\": " +
                   std::to_string(config.reconfigCost);
            out += ", \"expected_phases\": " + std::to_string(nPhases);
            if (config.power.kind != topo::PowerModelKind::Static)
                out += std::string(", \"power\": \"") +
                       topo::powerModelKindName(config.power.kind) +
                       "\"";
            out += ", \"deadline_ms\": " +
                   std::to_string(std::max<std::int64_t>(
                       options.workerTimeoutMs, 1));
            out += ", \"trace\": \"" + serve::jsonEscape(traceText) +
                   "\"}\n";
            return out;
        };
        const auto onResult = [&](const WorkerMsg &msg,
                                  std::uint32_t /*slot*/) {
            rows.at(msg.index) = msg.row;
        };
        runShards(shards, options, config.methodology.cancel,
                  makeRequest, makeJob, onResult, stats,
                  config.traceLog, "phase");
    }

    auto report = phase::assemblePhaseReport(trace, config, seg, mono,
                                             uni, unionViolations, rows);
    recordDistTelemetry(config.metrics, config.traceLog, stats);
    return report;
}

} // namespace minnoc::dist
