#include "protocol.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <unistd.h>

#include "serve/protocol.hpp"
#include "util/json.hpp"

namespace minnoc::dist {

namespace {

/** %.17g — enough digits for exact double round-tripping. */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Largest integer a JSON double carries exactly. */
constexpr double kMaxExact = 9007199254740992.0; // 2^53

bool
getU32(const json::Value &obj, const char *key, std::uint32_t &out,
       std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isNumber()) {
        err = std::string("missing or non-numeric '") + key + "'";
        return false;
    }
    const double d = v->asNumber();
    if (d < 0 || d > 4294967295.0 || d != std::floor(d)) {
        err = std::string("'") + key + "' out of u32 range";
        return false;
    }
    out = static_cast<std::uint32_t>(d);
    return true;
}

bool
getU64(const json::Value &obj, const char *key, std::uint64_t &out,
       std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isNumber()) {
        err = std::string("missing or non-numeric '") + key + "'";
        return false;
    }
    const double d = v->asNumber();
    if (d < 0 || d > kMaxExact || d != std::floor(d)) {
        err = std::string("'") + key + "' out of exact-u64 range";
        return false;
    }
    out = static_cast<std::uint64_t>(d);
    return true;
}

bool
getI64(const json::Value &obj, const char *key, std::int64_t &out,
       std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isNumber()) {
        err = std::string("missing or non-numeric '") + key + "'";
        return false;
    }
    const double d = v->asNumber();
    if (d < -kMaxExact || d > kMaxExact || d != std::floor(d)) {
        err = std::string("'") + key + "' out of exact-i64 range";
        return false;
    }
    out = static_cast<std::int64_t>(d);
    return true;
}

bool
getDouble(const json::Value &obj, const char *key, double &out,
          std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isNumber()) {
        err = std::string("missing or non-numeric '") + key + "'";
        return false;
    }
    out = v->asNumber();
    return true;
}

bool
getBool(const json::Value &obj, const char *key, bool &out,
        std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isBool()) {
        err = std::string("missing or non-bool '") + key + "'";
        return false;
    }
    out = v->asBool();
    return true;
}

bool
getString(const json::Value &obj, const char *key, std::string &out,
          std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isString()) {
        err = std::string("missing or non-string '") + key + "'";
        return false;
    }
    out = v->asString();
    return true;
}

bool
getU32List(const json::Value &obj, const char *key,
           std::vector<std::uint32_t> &out, std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isArray()) {
        err = std::string("missing or non-array '") + key + "'";
        return false;
    }
    out.clear();
    for (const auto &e : v->asArray()) {
        if (!e.isNumber() || e.asNumber() < 0 ||
            e.asNumber() > 4294967295.0 ||
            e.asNumber() != std::floor(e.asNumber())) {
            err = std::string("non-u32 element in '") + key + "'";
            return false;
        }
        out.push_back(static_cast<std::uint32_t>(e.asNumber()));
    }
    return true;
}

bool
getU64List(const json::Value &obj, const char *key,
           std::vector<std::uint64_t> &out, std::string &err)
{
    const auto *v = obj.find(key);
    if (!v || !v->isArray()) {
        err = std::string("missing or non-array '") + key + "'";
        return false;
    }
    out.clear();
    for (const auto &e : v->asArray()) {
        if (!e.isNumber() || e.asNumber() < 0 ||
            e.asNumber() > kMaxExact ||
            e.asNumber() != std::floor(e.asNumber())) {
            err = std::string("non-exact-u64 element in '") + key + "'";
            return false;
        }
        out.push_back(static_cast<std::uint64_t>(e.asNumber()));
    }
    return true;
}

template <typename T>
void
appendList(std::string &out, const char *key, const std::vector<T> &v)
{
    out += std::string("\"") + key + "\": [";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(v[i]);
    }
    out += "]";
}

} // namespace

bool
writeFrame(int fd, std::string_view payload)
{
    std::string frame = std::to_string(payload.size());
    frame += ':';
    frame += payload;
    frame += '\n';
    std::size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n = ::write(fd, frame.data() + off,
                                  frame.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::string>
readFrame(int fd)
{
    // Length prefix: decimal digits terminated by ':'.
    std::size_t len = 0;
    std::size_t digits = 0;
    for (;;) {
        char c = 0;
        const ssize_t n = ::read(fd, &c, 1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (n == 0)
            return std::nullopt; // EOF
        if (c == ':')
            break;
        if (c < '0' || c > '9' || ++digits > 9)
            return std::nullopt;
        len = len * 10 + static_cast<std::size_t>(c - '0');
        if (len > kMaxFrameBytes)
            return std::nullopt;
    }
    if (digits == 0)
        return std::nullopt;
    std::string payload(len, '\0');
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::read(fd, payload.data() + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (n == 0)
            return std::nullopt;
        off += static_cast<std::size_t>(n);
    }
    char nl = 0;
    for (;;) {
        const ssize_t n = ::read(fd, &nl, 1);
        if (n < 0 && errno == EINTR)
            continue;
        if (n != 1 || nl != '\n')
            return std::nullopt;
        break;
    }
    return payload;
}

void
FrameBuffer::append(const char *data, std::size_t n)
{
    if (!_corrupt)
        _buf.append(data, n);
}

std::optional<std::string>
FrameBuffer::next()
{
    if (_corrupt)
        return std::nullopt;
    const auto colon = _buf.find(':');
    if (colon == std::string::npos) {
        if (_buf.size() > 10)
            _corrupt = true; // length prefix can't be this long
        return std::nullopt;
    }
    if (colon == 0 || colon > 9) {
        _corrupt = true;
        return std::nullopt;
    }
    std::size_t len = 0;
    for (std::size_t i = 0; i < colon; ++i) {
        const char c = _buf[i];
        if (c < '0' || c > '9') {
            _corrupt = true;
            return std::nullopt;
        }
        len = len * 10 + static_cast<std::size_t>(c - '0');
    }
    if (len > kMaxFrameBytes) {
        _corrupt = true;
        return std::nullopt;
    }
    const std::size_t total = colon + 1 + len + 1;
    if (_buf.size() < total)
        return std::nullopt;
    if (_buf[total - 1] != '\n') {
        _corrupt = true;
        return std::nullopt;
    }
    std::string payload = _buf.substr(colon + 1, len);
    _buf.erase(0, total);
    return payload;
}

std::string
encodeShardRequest(const ShardRequest &req)
{
    std::string out = "{\"cmd\": \"" + req.cmd + "\"";
    out += ", \"worker\": " + std::to_string(req.worker);
    out += ", \"attempt\": " + std::to_string(req.attempt);
    out += ", \"trace\": \"" + serve::jsonEscape(req.traceText) + "\"";
    out += ", ";
    appendList(out, "jobs", req.jobs);
    out += ", \"sigs\": [";
    for (std::size_t i = 0; i < req.sigs.size(); ++i) {
        if (i)
            out += ", ";
        out += "\"" + serve::jsonEscape(req.sigs[i]) + "\"";
    }
    out += "]";
    if (req.cmd == "explore_shard") {
        out += ", ";
        appendList(out, "degrees", req.grid.maxDegrees);
        out += ", ";
        appendList(out, "restarts", req.grid.restarts);
        out += ", ";
        appendList(out, "seeds", req.grid.seeds);
        out += ", ";
        appendList(out, "unidirectional", req.grid.unidirectional);
        out += ", ";
        appendList(out, "vcs", req.grid.vcs);
        out += ", \"vc_depth\": " + std::to_string(req.grid.vcDepth);
        out += ", ";
        appendList(out, "phase_windows", req.grid.phaseWindows);
        out += ", \"reconfig_cost\": " + std::to_string(req.reconfigCost);
        out += ", \"cache_dir\": \"" + serve::jsonEscape(req.cacheDir) +
               "\"";
        out += std::string(", \"cache\": ") +
               (req.useCache ? "true" : "false");
        out += ", \"threshold\": " + fmtDouble(req.mergeThreshold);
        out += ", \"min_phase_windows\": " +
               std::to_string(req.minPhaseWindows);
        out += ", \"matrix_weight\": " + fmtDouble(req.matrixWeight);
    } else {
        out += ", \"window\": " + std::to_string(req.window);
        out += ", \"threshold\": " + fmtDouble(req.mergeThreshold);
        out += ", \"min_phase_windows\": " +
               std::to_string(req.minPhaseWindows);
        out += ", \"matrix_weight\": " + fmtDouble(req.matrixWeight);
        out += ", \"max_degree\": " + std::to_string(req.maxDegree);
        out += ", \"restarts\": " + std::to_string(req.restarts);
        out += ", \"seed\": " + std::to_string(req.seed);
        out += ", \"reconfig_cost\": " + std::to_string(req.reconfigCost);
        out += ", \"expected_phases\": " +
               std::to_string(req.expectedPhases);
    }
    out += "}";
    return out;
}

std::optional<ShardRequest>
parseShardRequest(const std::string &text, std::string &err)
{
    const auto doc = json::parse(text);
    if (!doc || !doc->isObject()) {
        err = "request frame is not a JSON object";
        return std::nullopt;
    }
    ShardRequest req;
    if (!getString(*doc, "cmd", req.cmd, err) ||
        !getU32(*doc, "worker", req.worker, err) ||
        !getU32(*doc, "attempt", req.attempt, err) ||
        !getString(*doc, "trace", req.traceText, err) ||
        !getU32List(*doc, "jobs", req.jobs, err))
        return std::nullopt;
    const auto *sigs = doc->find("sigs");
    if (!sigs || !sigs->isArray()) {
        err = "missing or non-array 'sigs'";
        return std::nullopt;
    }
    for (const auto &s : sigs->asArray()) {
        if (!s.isString()) {
            err = "non-string element in 'sigs'";
            return std::nullopt;
        }
        req.sigs.push_back(s.asString());
    }
    if (req.sigs.size() != req.jobs.size()) {
        err = "'sigs' and 'jobs' length mismatch";
        return std::nullopt;
    }
    if (req.cmd == "explore_shard") {
        std::vector<std::uint64_t> seeds;
        if (!getU32List(*doc, "degrees", req.grid.maxDegrees, err) ||
            !getU32List(*doc, "restarts", req.grid.restarts, err) ||
            !getU64List(*doc, "seeds", seeds, err) ||
            !getU32List(*doc, "unidirectional", req.grid.unidirectional,
                        err) ||
            !getU32List(*doc, "vcs", req.grid.vcs, err) ||
            !getU32(*doc, "vc_depth", req.grid.vcDepth, err) ||
            !getU32List(*doc, "phase_windows", req.grid.phaseWindows,
                        err) ||
            !getI64(*doc, "reconfig_cost", req.reconfigCost, err) ||
            !getString(*doc, "cache_dir", req.cacheDir, err) ||
            !getBool(*doc, "cache", req.useCache, err) ||
            !getDouble(*doc, "threshold", req.mergeThreshold, err) ||
            !getU32(*doc, "min_phase_windows", req.minPhaseWindows,
                    err) ||
            !getDouble(*doc, "matrix_weight", req.matrixWeight, err))
            return std::nullopt;
        req.grid.seeds = std::move(seeds);
    } else if (req.cmd == "phases_shard") {
        std::uint64_t seed = 0;
        if (!getU32(*doc, "window", req.window, err) ||
            !getDouble(*doc, "threshold", req.mergeThreshold, err) ||
            !getU32(*doc, "min_phase_windows", req.minPhaseWindows,
                    err) ||
            !getDouble(*doc, "matrix_weight", req.matrixWeight, err) ||
            !getU32(*doc, "max_degree", req.maxDegree, err) ||
            !getU32(*doc, "restarts", req.restarts, err) ||
            !getU64(*doc, "seed", seed, err) ||
            !getI64(*doc, "reconfig_cost", req.reconfigCost, err) ||
            !getU32(*doc, "expected_phases", req.expectedPhases, err))
            return std::nullopt;
        req.seed = seed;
    } else {
        err = "unknown cmd '" + req.cmd + "'";
        return std::nullopt;
    }
    return req;
}

std::string
encodeResult(std::uint32_t index, bool cached, std::int64_t wallUs,
             const dse::JobMetrics &m)
{
    std::string out = "{\"type\": \"result\", \"index\": " +
                      std::to_string(index);
    out += std::string(", \"cached\": ") + (cached ? "true" : "false");
    out += ", \"wall_us\": " + std::to_string(wallUs);
    out += ", \"metrics\": {";
    out += "\"switches\": " + std::to_string(m.switches);
    out += ", \"links\": " + std::to_string(m.links);
    out += ", \"channels\": " + std::to_string(m.channels);
    out += std::string(", \"constraints_met\": ") +
           (m.constraintsMet ? "true" : "false");
    out += ", \"violations\": " + std::to_string(m.violations);
    out += ", \"rounds\": " + std::to_string(m.rounds);
    out += ", \"switch_area\": " + std::to_string(m.switchArea);
    out += ", \"link_area\": " + std::to_string(m.linkArea);
    out += ", \"proc_link_area\": " + std::to_string(m.procLinkArea);
    out += ", \"exec_time\": " + std::to_string(m.execTime);
    out += ", \"avg_latency\": " + fmtDouble(m.avgLatency);
    out += ", \"avg_hops\": " + fmtDouble(m.avgHops);
    out += ", \"max_link_util\": " + fmtDouble(m.maxLinkUtil);
    out += ", \"energy\": " + fmtDouble(m.energy);
    out += "}}";
    return out;
}

std::string
encodePhaseResult(std::uint32_t index, std::int64_t wallUs,
                  const phase::PhaseRowEval &row)
{
    const auto &v = row.network;
    std::string out = "{\"type\": \"result\", \"index\": " +
                      std::to_string(index);
    out += ", \"wall_us\": " + std::to_string(wallUs);
    out += ", \"row\": {";
    out += "\"switches\": " + std::to_string(v.switches);
    out += ", \"links\": " + std::to_string(v.links);
    out += ", \"channels\": " + std::to_string(v.channels);
    out += ", \"area\": " + std::to_string(v.area);
    out += ", \"exec_time\": " + std::to_string(v.execTime);
    out += ", \"avg_latency\": " + fmtDouble(v.avgLatency);
    out += ", \"energy\": " + fmtDouble(v.energy);
    out += ", \"packets\": " + std::to_string(v.packetsDelivered);
    out += ", \"violations\": " + std::to_string(v.violations);
    out += ", \"reconfig_idle_energy\": " +
           fmtDouble(row.reconfigIdleEnergy);
    out += "}}";
    return out;
}

std::string
encodeDone(std::uint64_t jobs, std::uint64_t cacheHits)
{
    return "{\"type\": \"done\", \"jobs\": " + std::to_string(jobs) +
           ", \"cache_hits\": " + std::to_string(cacheHits) + "}";
}

std::string
encodeError(const std::string &code, const std::string &message)
{
    return "{\"type\": \"error\", \"code\": \"" + serve::jsonEscape(code) +
           "\", \"message\": \"" + serve::jsonEscape(message) + "\"}";
}

std::string
phasesSignature(const phase::PhaseEvalConfig &config)
{
    return config.methodology.signature() + "|" +
           config.floorplan.signature() + "|" +
           config.power.signature() + "|" + config.sim.signature() +
           "|" + config.segmenter.signature() +
           ";rc=" + std::to_string(config.reconfigCost);
}

std::optional<WorkerMsg>
parseWorkerMsg(const std::string &text, std::string &err)
{
    const auto doc = json::parse(text);
    if (!doc || !doc->isObject()) {
        err = "worker frame is not a JSON object";
        return std::nullopt;
    }
    std::string type;
    if (!getString(*doc, "type", type, err))
        return std::nullopt;
    WorkerMsg msg;
    if (type == "result") {
        msg.kind = WorkerMsg::Kind::Result;
        if (!getU32(*doc, "index", msg.index, err) ||
            !getI64(*doc, "wall_us", msg.wallUs, err))
            return std::nullopt;
        if (const auto *m = doc->find("metrics")) {
            std::uint32_t violations = 0;
            if (!getU32(*m, "switches", msg.metrics.switches, err) ||
                !getU32(*m, "links", msg.metrics.links, err) ||
                !getU32(*m, "channels", msg.metrics.channels, err) ||
                !getBool(*m, "constraints_met",
                         msg.metrics.constraintsMet, err) ||
                !getU32(*m, "violations", violations, err) ||
                !getU32(*m, "rounds", msg.metrics.rounds, err) ||
                !getU32(*m, "switch_area", msg.metrics.switchArea,
                        err) ||
                !getU32(*m, "link_area", msg.metrics.linkArea, err) ||
                !getU32(*m, "proc_link_area", msg.metrics.procLinkArea,
                        err) ||
                !getI64(*m, "exec_time", msg.metrics.execTime, err) ||
                !getDouble(*m, "avg_latency", msg.metrics.avgLatency,
                           err) ||
                !getDouble(*m, "avg_hops", msg.metrics.avgHops, err) ||
                !getDouble(*m, "max_link_util",
                           msg.metrics.maxLinkUtil, err) ||
                !getDouble(*m, "energy", msg.metrics.energy, err) ||
                !getBool(*doc, "cached", msg.cached, err))
                return std::nullopt;
            msg.metrics.violations = violations;
        } else if (const auto *r = doc->find("row")) {
            msg.isPhaseRow = true;
            auto &v = msg.row.network;
            std::uint64_t packets = 0;
            std::uint64_t violations = 0;
            std::int64_t exec = 0;
            if (!getU32(*r, "switches", v.switches, err) ||
                !getU32(*r, "links", v.links, err) ||
                !getU32(*r, "channels", v.channels, err) ||
                !getU32(*r, "area", v.area, err) ||
                !getI64(*r, "exec_time", exec, err) ||
                !getDouble(*r, "avg_latency", v.avgLatency, err) ||
                !getDouble(*r, "energy", v.energy, err) ||
                !getU64(*r, "packets", packets, err) ||
                !getU64(*r, "violations", violations, err) ||
                !getDouble(*r, "reconfig_idle_energy",
                           msg.row.reconfigIdleEnergy, err))
                return std::nullopt;
            v.execTime = exec;
            v.packetsDelivered = packets;
            v.violations = static_cast<std::size_t>(violations);
        } else {
            err = "result frame lacks both 'metrics' and 'row'";
            return std::nullopt;
        }
    } else if (type == "done") {
        msg.kind = WorkerMsg::Kind::Done;
        if (!getU64(*doc, "jobs", msg.jobs, err) ||
            !getU64(*doc, "cache_hits", msg.cacheHits, err))
            return std::nullopt;
    } else if (type == "error") {
        msg.kind = WorkerMsg::Kind::Error;
        if (!getString(*doc, "code", msg.code, err) ||
            !getString(*doc, "message", msg.message, err))
            return std::nullopt;
    } else {
        err = "unknown worker message type '" + type + "'";
        return std::nullopt;
    }
    return msg;
}

} // namespace minnoc::dist
