#include "protocol.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <unistd.h>

#include "serve/protocol.hpp"
#include "topo/power.hpp"
#include "util/json.hpp"

namespace minnoc::dist {

// Typed field extraction shared with the serve job wire (jobwire.hpp).
using serve::getBool;
using serve::getDouble;
using serve::getI64;
using serve::getString;
using serve::getU32;
using serve::getU32List;
using serve::getU64;
using serve::getU64List;

namespace {

template <typename T>
void
appendList(std::string &out, const char *key, const std::vector<T> &v)
{
    out += std::string("\"") + key + "\": [";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(v[i]);
    }
    out += "]";
}

} // namespace

bool
writeFrame(int fd, std::string_view payload)
{
    std::string frame = std::to_string(payload.size());
    frame += ':';
    frame += payload;
    frame += '\n';
    std::size_t off = 0;
    while (off < frame.size()) {
        const ssize_t n = ::write(fd, frame.data() + off,
                                  frame.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::string>
readFrame(int fd)
{
    // Length prefix: decimal digits terminated by ':'.
    std::size_t len = 0;
    std::size_t digits = 0;
    for (;;) {
        char c = 0;
        const ssize_t n = ::read(fd, &c, 1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (n == 0)
            return std::nullopt; // EOF
        if (c == ':')
            break;
        if (c < '0' || c > '9' || ++digits > 9)
            return std::nullopt;
        len = len * 10 + static_cast<std::size_t>(c - '0');
        if (len > kMaxFrameBytes)
            return std::nullopt;
    }
    if (digits == 0)
        return std::nullopt;
    std::string payload(len, '\0');
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::read(fd, payload.data() + off, len - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return std::nullopt;
        }
        if (n == 0)
            return std::nullopt;
        off += static_cast<std::size_t>(n);
    }
    char nl = 0;
    for (;;) {
        const ssize_t n = ::read(fd, &nl, 1);
        if (n < 0 && errno == EINTR)
            continue;
        if (n != 1 || nl != '\n')
            return std::nullopt;
        break;
    }
    return payload;
}

void
FrameBuffer::append(const char *data, std::size_t n)
{
    if (!_corrupt)
        _buf.append(data, n);
}

std::optional<std::string>
FrameBuffer::next()
{
    if (_corrupt)
        return std::nullopt;
    const auto colon = _buf.find(':');
    if (colon == std::string::npos) {
        if (_buf.size() > 10)
            _corrupt = true; // length prefix can't be this long
        return std::nullopt;
    }
    if (colon == 0 || colon > 9) {
        _corrupt = true;
        return std::nullopt;
    }
    std::size_t len = 0;
    for (std::size_t i = 0; i < colon; ++i) {
        const char c = _buf[i];
        if (c < '0' || c > '9') {
            _corrupt = true;
            return std::nullopt;
        }
        len = len * 10 + static_cast<std::size_t>(c - '0');
    }
    if (len > kMaxFrameBytes) {
        _corrupt = true;
        return std::nullopt;
    }
    const std::size_t total = colon + 1 + len + 1;
    if (_buf.size() < total)
        return std::nullopt;
    if (_buf[total - 1] != '\n') {
        _corrupt = true;
        return std::nullopt;
    }
    std::string payload = _buf.substr(colon + 1, len);
    _buf.erase(0, total);
    return payload;
}

std::string
encodeShardRequest(const ShardRequest &req)
{
    std::string out = "{\"cmd\": \"" + req.cmd + "\"";
    out += ", \"worker\": " + std::to_string(req.worker);
    out += ", \"attempt\": " + std::to_string(req.attempt);
    out += ", \"trace\": \"" + serve::jsonEscape(req.traceText) + "\"";
    out += ", ";
    appendList(out, "jobs", req.jobs);
    out += ", \"sigs\": [";
    for (std::size_t i = 0; i < req.sigs.size(); ++i) {
        if (i)
            out += ", ";
        out += "\"" + serve::jsonEscape(req.sigs[i]) + "\"";
    }
    out += "]";
    out += ", \"power\": \"" + serve::jsonEscape(req.power) + "\"";
    if (req.cmd == "explore_shard") {
        out += ", ";
        appendList(out, "degrees", req.grid.maxDegrees);
        out += ", ";
        appendList(out, "restarts", req.grid.restarts);
        out += ", ";
        appendList(out, "seeds", req.grid.seeds);
        out += ", ";
        appendList(out, "unidirectional", req.grid.unidirectional);
        out += ", ";
        appendList(out, "vcs", req.grid.vcs);
        out += ", \"vc_depth\": " + std::to_string(req.grid.vcDepth);
        out += ", ";
        appendList(out, "phase_windows", req.grid.phaseWindows);
        out += ", \"reconfig_cost\": " + std::to_string(req.reconfigCost);
        out += ", \"cache_dir\": \"" + serve::jsonEscape(req.cacheDir) +
               "\"";
        out += std::string(", \"cache\": ") +
               (req.useCache ? "true" : "false");
        out += ", \"threshold\": " + fmtDouble(req.mergeThreshold);
        out += ", \"min_phase_windows\": " +
               std::to_string(req.minPhaseWindows);
        out += ", \"matrix_weight\": " + fmtDouble(req.matrixWeight);
    } else {
        out += ", \"window\": " + std::to_string(req.window);
        out += ", \"threshold\": " + fmtDouble(req.mergeThreshold);
        out += ", \"min_phase_windows\": " +
               std::to_string(req.minPhaseWindows);
        out += ", \"matrix_weight\": " + fmtDouble(req.matrixWeight);
        out += ", \"max_degree\": " + std::to_string(req.maxDegree);
        out += ", \"restarts\": " + std::to_string(req.restarts);
        out += ", \"seed\": " + std::to_string(req.seed);
        out += ", \"reconfig_cost\": " + std::to_string(req.reconfigCost);
        out += ", \"expected_phases\": " +
               std::to_string(req.expectedPhases);
    }
    out += "}";
    return out;
}

std::optional<ShardRequest>
parseShardRequest(const std::string &text, std::string &err)
{
    const auto doc = json::parse(text);
    if (!doc || !doc->isObject()) {
        err = "request frame is not a JSON object";
        return std::nullopt;
    }
    ShardRequest req;
    if (!getString(*doc, "cmd", req.cmd, err) ||
        !getU32(*doc, "worker", req.worker, err) ||
        !getU32(*doc, "attempt", req.attempt, err) ||
        !getString(*doc, "trace", req.traceText, err) ||
        !getU32List(*doc, "jobs", req.jobs, err))
        return std::nullopt;
    const auto *sigs = doc->find("sigs");
    if (!sigs || !sigs->isArray()) {
        err = "missing or non-array 'sigs'";
        return std::nullopt;
    }
    for (const auto &s : sigs->asArray()) {
        if (!s.isString()) {
            err = "non-string element in 'sigs'";
            return std::nullopt;
        }
        req.sigs.push_back(s.asString());
    }
    if (req.sigs.size() != req.jobs.size()) {
        err = "'sigs' and 'jobs' length mismatch";
        return std::nullopt;
    }
    if (!getString(*doc, "power", req.power, err))
        return std::nullopt;
    if (!topo::powerModelKindFromName(req.power)) {
        err = "'power' must be 'static' or 'activity'";
        return std::nullopt;
    }
    if (req.cmd == "explore_shard") {
        std::vector<std::uint64_t> seeds;
        if (!getU32List(*doc, "degrees", req.grid.maxDegrees, err) ||
            !getU32List(*doc, "restarts", req.grid.restarts, err) ||
            !getU64List(*doc, "seeds", seeds, err) ||
            !getU32List(*doc, "unidirectional", req.grid.unidirectional,
                        err) ||
            !getU32List(*doc, "vcs", req.grid.vcs, err) ||
            !getU32(*doc, "vc_depth", req.grid.vcDepth, err) ||
            !getU32List(*doc, "phase_windows", req.grid.phaseWindows,
                        err) ||
            !getI64(*doc, "reconfig_cost", req.reconfigCost, err) ||
            !getString(*doc, "cache_dir", req.cacheDir, err) ||
            !getBool(*doc, "cache", req.useCache, err) ||
            !getDouble(*doc, "threshold", req.mergeThreshold, err) ||
            !getU32(*doc, "min_phase_windows", req.minPhaseWindows,
                    err) ||
            !getDouble(*doc, "matrix_weight", req.matrixWeight, err))
            return std::nullopt;
        req.grid.seeds = std::move(seeds);
    } else if (req.cmd == "phases_shard") {
        std::uint64_t seed = 0;
        if (!getU32(*doc, "window", req.window, err) ||
            !getDouble(*doc, "threshold", req.mergeThreshold, err) ||
            !getU32(*doc, "min_phase_windows", req.minPhaseWindows,
                    err) ||
            !getDouble(*doc, "matrix_weight", req.matrixWeight, err) ||
            !getU32(*doc, "max_degree", req.maxDegree, err) ||
            !getU32(*doc, "restarts", req.restarts, err) ||
            !getU64(*doc, "seed", seed, err) ||
            !getI64(*doc, "reconfig_cost", req.reconfigCost, err) ||
            !getU32(*doc, "expected_phases", req.expectedPhases, err))
            return std::nullopt;
        req.seed = seed;
    } else {
        err = "unknown cmd '" + req.cmd + "'";
        return std::nullopt;
    }
    return req;
}

} // namespace minnoc::dist
