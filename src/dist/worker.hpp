/**
 * @file
 * Worker half of the multi-process exploration pipeline.
 *
 * A worker is a forked child that reads exactly one ShardRequest frame
 * from its request pipe, evaluates the assigned jobs strictly
 * sequentially, streams one `result` frame per job back over its
 * result pipe, and finishes with a `done` frame. Any failure — parse
 * error, signature drift, cancellation, internal fault — is reported
 * as a single structured `error` frame before exit, so the coordinator
 * never has to guess why a child died.
 *
 * All workers share the coordinator's content-hashed disk cache:
 * entries are atomic write-then-rename with payload checksums, so
 * concurrent writers are safe by construction (see dse/cache.hpp).
 */

#ifndef MINNOC_DIST_WORKER_HPP
#define MINNOC_DIST_WORKER_HPP

namespace minnoc::dist {

/**
 * Run the worker loop on an already-forked child: read one request
 * from @p requestFd, stream results to @p resultFd, return the child's
 * exit code (0 ok, 1 error, 130 cancelled). Installs its own
 * SIGINT/SIGTERM handlers (cooperative cancellation) and ignores
 * SIGPIPE (a vanished coordinator surfaces as a write error).
 *
 * Test hooks, honored only on attempt 1 so requeue tests converge:
 * MINNOC_DIST_TEST_CRASH=<worker> exits 42 after the first result;
 * MINNOC_DIST_TEST_HANG=<worker> stops responding after the first
 * result (the coordinator's activity timeout must reap it).
 */
int runWorker(int requestFd, int resultFd);

} // namespace minnoc::dist

#endif // MINNOC_DIST_WORKER_HPP
