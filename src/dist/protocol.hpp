/**
 * @file
 * Wire protocol of the multi-process exploration coordinator.
 *
 * A coordinator forks N workers and speaks to each over a pair of
 * anonymous pipes. Every message is one length-prefixed frame
 *
 *     <decimal byte count>:<payload>\n
 *
 * whose payload is a single JSON object — the same NDJSON documents
 * the `minnoc serve` protocol uses, wrapped in netstring framing so a
 * reader never depends on payload content to find message boundaries
 * (the trace text travels inside the request, escaped).
 *
 * The conversation is deliberately minimal: the coordinator writes
 * exactly one request frame and closes the pipe; the worker streams
 * back one `result` frame per finished job followed by one `done`
 * frame, or a single `error` frame drawn from the serve error taxonomy
 * (`parse_error`, `validation_error`, `cancelled`, `internal`, ...).
 *
 * Determinism contract: every number that feeds the final report
 * crosses the wire losslessly — integers as decimal (rejected beyond
 * 2^53, like serve), doubles as %.17g which strtod round-trips
 * bit-exactly. The coordinator sends each job's expected parameter
 * signature; the worker recomputes it from the wire fields and refuses
 * to run on any mismatch, so configuration drift between the two
 * processes is a structured error, never a silently different report.
 */

#ifndef MINNOC_DIST_PROTOCOL_HPP
#define MINNOC_DIST_PROTOCOL_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dse/explorer.hpp"
#include "phase/evaluator.hpp"

namespace minnoc::dist {

/** Hard cap on one frame (requests carry whole traces). */
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/**
 * Write one frame, handling partial writes and EINTR. Returns false on
 * any write error (EPIPE included) — the caller decides whether a
 * vanished peer is fatal.
 */
bool writeFrame(int fd, std::string_view payload);

/** Blocking read of one frame; nullopt on EOF or malformed framing. */
std::optional<std::string> readFrame(int fd);

/**
 * Incremental netstring decoder for the coordinator's non-blocking
 * reads: append() whatever arrived, next() yields complete payloads.
 */
class FrameBuffer
{
  public:
    void append(const char *data, std::size_t n);

    /** Extract the next complete payload, if one is buffered. */
    std::optional<std::string> next();

    /** Latched on any framing violation (junk, oversized frame). */
    bool corrupt() const { return _corrupt; }

  private:
    std::string _buf;
    bool _corrupt = false;
};

/**
 * One shard of work, coordinator -> worker. `cmd` selects the task;
 * the grid block is explore-only, the phase block phases-only.
 */
struct ShardRequest
{
    std::string cmd; ///< "explore_shard" | "phases_shard"
    std::uint32_t worker = 0;
    std::uint32_t attempt = 1; ///< 2 on the one allowed requeue
    std::string traceText;     ///< Trace::save bytes
    /** Assigned job indices: grid indices / phase indices. */
    std::vector<std::uint32_t> jobs;
    /** Per assigned job, the coordinator's expected signature. */
    std::vector<std::string> sigs;

    // explore_shard: the full grid (jobs index into its expansion).
    dse::ExploreGrid grid;
    std::int64_t reconfigCost = 500;
    std::string cacheDir;
    bool useCache = true;
    /** Segmenter knobs for phase-window jobs. */
    double mergeThreshold = 0.4;
    std::uint32_t minPhaseWindows = 2;
    double matrixWeight = 0.5;

    // phases_shard scalars (CLI-equivalent knobs).
    std::uint32_t window = 64;
    std::uint32_t maxDegree = 5;
    std::uint32_t restarts = 16;
    std::uint64_t seed = 1;
    /** Segmentation cross-check: phases the coordinator detected. */
    std::uint32_t expectedPhases = 0;
};

std::string encodeShardRequest(const ShardRequest &req);

/** Parse a request payload; on failure fills @p err, returns nullopt. */
std::optional<ShardRequest> parseShardRequest(const std::string &text,
                                              std::string &err);

/** Everything a worker sends back, one frame per message. */
struct WorkerMsg
{
    enum class Kind : std::uint8_t { Result, Done, Error };
    Kind kind = Kind::Done;

    // Result
    std::uint32_t index = 0; ///< grid index / phase index
    bool cached = false;     ///< explore only
    std::int64_t wallUs = 0; ///< worker-side wall time of this job
    dse::JobMetrics metrics; ///< explore payload
    phase::PhaseRowEval row; ///< phases payload
    bool isPhaseRow = false;

    // Done
    std::uint64_t jobs = 0;
    std::uint64_t cacheHits = 0;

    // Error (codes follow serve::errorCodeName)
    std::string code;
    std::string message;
};

std::string encodeResult(std::uint32_t index, bool cached,
                         std::int64_t wallUs,
                         const dse::JobMetrics &metrics);
std::string encodePhaseResult(std::uint32_t index, std::int64_t wallUs,
                              const phase::PhaseRowEval &row);
std::string encodeDone(std::uint64_t jobs, std::uint64_t cacheHits);
std::string encodeError(const std::string &code,
                        const std::string &message);

/** Parse a worker payload; on failure fills @p err, returns nullopt. */
std::optional<WorkerMsg> parseWorkerMsg(const std::string &text,
                                        std::string &err);

/**
 * Combined signature of one phases evaluation — every stage signature
 * concatenated plus the reconfiguration cost. The coordinator sends
 * it, the worker recomputes it from the wire scalars; inequality means
 * the config carries knobs the wire cannot express, and the worker
 * refuses rather than produce a silently different report.
 */
std::string phasesSignature(const phase::PhaseEvalConfig &config);

} // namespace minnoc::dist

#endif // MINNOC_DIST_PROTOCOL_HPP
