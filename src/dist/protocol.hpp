/**
 * @file
 * Wire protocol of the multi-process exploration coordinator.
 *
 * A coordinator forks N workers and speaks to each over a pair of
 * anonymous pipes. Every message is one length-prefixed frame
 *
 *     <decimal byte count>:<payload>\n
 *
 * whose payload is a single JSON object — the same NDJSON documents
 * the `minnoc serve` protocol uses, wrapped in netstring framing so a
 * reader never depends on payload content to find message boundaries
 * (the trace text travels inside the request, escaped).
 *
 * The conversation is deliberately minimal: the coordinator writes
 * exactly one request frame and closes the pipe; the worker streams
 * back one `result` frame per finished job followed by one `done`
 * frame, or a single `error` frame drawn from the serve error taxonomy
 * (`parse_error`, `validation_error`, `cancelled`, `internal`, ...).
 *
 * Determinism contract: every number that feeds the final report
 * crosses the wire losslessly — integers as decimal (rejected beyond
 * 2^53, like serve), doubles as %.17g which strtod round-trips
 * bit-exactly. The coordinator sends each job's expected parameter
 * signature; the worker recomputes it from the wire fields and refuses
 * to run on any mismatch, so configuration drift between the two
 * processes is a structured error, never a silently different report.
 */

#ifndef MINNOC_DIST_PROTOCOL_HPP
#define MINNOC_DIST_PROTOCOL_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dse/explorer.hpp"
#include "phase/evaluator.hpp"
#include "serve/jobwire.hpp"

namespace minnoc::dist {

// The per-job result layer (WorkerMsg, its encoders/parser and the
// phases signature) lives in serve/jobwire.*: the serve daemon emits
// the identical documents for `dse_job`/`phase_job` requests, which is
// what makes the remote backend byte-compatible with the pipe backend.
// Re-exported here so dist call sites keep their historical names.
using serve::WorkerMsg;
using serve::encodeResult;
using serve::encodePhaseResult;
using serve::encodeDone;
using serve::encodeError;
using serve::parseWorkerMsg;
using serve::phasesSignature;
using serve::fmtDouble;

/** Hard cap on one frame (requests carry whole traces). */
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

/**
 * Write one frame, handling partial writes and EINTR. Returns false on
 * any write error (EPIPE included) — the caller decides whether a
 * vanished peer is fatal.
 */
bool writeFrame(int fd, std::string_view payload);

/** Blocking read of one frame; nullopt on EOF or malformed framing. */
std::optional<std::string> readFrame(int fd);

/**
 * Incremental netstring decoder for the coordinator's non-blocking
 * reads: append() whatever arrived, next() yields complete payloads.
 */
class FrameBuffer
{
  public:
    void append(const char *data, std::size_t n);

    /** Extract the next complete payload, if one is buffered. */
    std::optional<std::string> next();

    /** Latched on any framing violation (junk, oversized frame). */
    bool corrupt() const { return _corrupt; }

  private:
    std::string _buf;
    bool _corrupt = false;
};

/**
 * One shard of work, coordinator -> worker. `cmd` selects the task;
 * the grid block is explore-only, the phase block phases-only.
 */
struct ShardRequest
{
    std::string cmd; ///< "explore_shard" | "phases_shard"
    std::uint32_t worker = 0;
    std::uint32_t attempt = 1; ///< 2 on the one allowed requeue
    std::string traceText;     ///< Trace::save bytes
    /** Assigned job indices: grid indices / phase indices. */
    std::vector<std::uint32_t> jobs;
    /** Per assigned job, the coordinator's expected signature. */
    std::vector<std::string> sigs;

    /** Energy accounting tier ("static" / "activity"), both kinds. */
    std::string power = "static";

    // explore_shard: the full grid (jobs index into its expansion).
    dse::ExploreGrid grid;
    std::int64_t reconfigCost = 500;
    std::string cacheDir;
    bool useCache = true;
    /** Segmenter knobs for phase-window jobs. */
    double mergeThreshold = 0.4;
    std::uint32_t minPhaseWindows = 2;
    double matrixWeight = 0.5;

    // phases_shard scalars (CLI-equivalent knobs).
    std::uint32_t window = 64;
    std::uint32_t maxDegree = 5;
    std::uint32_t restarts = 16;
    std::uint64_t seed = 1;
    /** Segmentation cross-check: phases the coordinator detected. */
    std::uint32_t expectedPhases = 0;
};

std::string encodeShardRequest(const ShardRequest &req);

/** Parse a request payload; on failure fills @p err, returns nullopt. */
std::optional<ShardRequest> parseShardRequest(const std::string &text,
                                              std::string &err);

} // namespace minnoc::dist

#endif // MINNOC_DIST_PROTOCOL_HPP
