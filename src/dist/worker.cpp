#include "worker.hpp"

#include <csignal>
#include <cstdlib>
#include <sstream>
#include <string>
#include <unistd.h>

#include "dse/cache.hpp"
#include "dse/explorer.hpp"
#include "phase/multi_design.hpp"
#include "protocol.hpp"
#include "serve/protocol.hpp"
#include "trace/analyzer.hpp"
#include "trace/trace.hpp"
#include "util/cancel.hpp"
#include "util/log.hpp"

namespace minnoc::dist {

namespace {

/** The worker's cancellation token, fired from the signal handlers. */
CancelToken gWorkerToken;

extern "C" void
onWorkerSignal(int)
{
    // Async-signal-safe: one relaxed atomic store.
    gWorkerToken.cancel(CancelReason::Shutdown);
}

/** True when the test hook @p env selects this worker on attempt 1. */
bool
hookFires(const char *env, const ShardRequest &req)
{
    if (req.attempt != 1)
        return false;
    const char *v = std::getenv(env);
    return v && std::string(v) == std::to_string(req.worker);
}

/** After the first result: simulated crash / hang fault injection. */
void
maybeInjectFault(const ShardRequest &req)
{
    if (hookFires("MINNOC_DIST_TEST_CRASH", req))
        ::_exit(42);
    if (hookFires("MINNOC_DIST_TEST_HANG", req)) {
        // Stop responding; only the coordinator's activity timeout (or
        // a cancellation signal) ends this worker.
        for (;;) {
            if (gWorkerToken.cancelled())
                ::_exit(130);
            ::usleep(50'000);
        }
    }
}

int
runExploreShard(const ShardRequest &req, int resultFd)
{
    std::istringstream in(req.traceText);
    const trace::Trace tr = trace::Trace::load(in);

    dse::ExploreConfig cfg;
    cfg.grid = req.grid;
    cfg.threads = 1;
    cfg.cacheDir = req.cacheDir;
    cfg.useCache = req.useCache;
    cfg.phaseSegmenter.mergeThreshold = req.mergeThreshold;
    cfg.phaseSegmenter.minPhaseWindows = req.minPhaseWindows;
    cfg.phaseSegmenter.matrixWeight = req.matrixWeight;
    cfg.phaseReconfigCost = req.reconfigCost;
    cfg.power.kind = *topo::powerModelKindFromName(req.power);
    cfg.cancel = &gWorkerToken;

    // Re-serialize: save∘load round-trips bit-exactly (the serve
    // daemon depends on the same property), so cache keys computed
    // here equal the coordinator's.
    std::ostringstream patternStream;
    tr.save(patternStream);
    const std::string patternBytes = patternStream.str();

    const auto jobs = cfg.grid.expand();
    auto cliques = trace::analyzeByCall(tr);
    cliques.prepareCaches();
    const dse::ResultCache cache(cfg.cacheDir, cfg.useCache);

    std::uint64_t finished = 0;
    std::uint64_t cacheHits = 0;
    for (std::size_t k = 0; k < req.jobs.size(); ++k) {
        checkCancel(&gWorkerToken);
        const std::uint32_t i = req.jobs[k];
        if (i >= jobs.size())
            fatal("shard references job ", i, " of a ", jobs.size(),
                  "-job grid");
        const auto &params = jobs[i];
        const auto sig = dse::jobSignature(params, cfg);
        if (sig != req.sigs[k]) {
            // Configuration drift between coordinator and worker: the
            // report would silently diverge, so refuse loudly.
            fatal("job ", i, " signature drift: coordinator expects '",
                  req.sigs[k], "', worker computes '", sig, "'");
        }
        const auto key = dse::jobKey(patternBytes, sig);
        const std::int64_t t0 = CancelToken::nowUs();
        dse::JobMetrics metrics;
        bool cached = false;
        if (auto hit = cache.load(key, sig)) {
            metrics = *hit;
            cached = true;
            ++cacheHits;
        } else {
            metrics = dse::evaluateJob(tr, cliques, params, cfg);
            cache.store(key, sig, metrics);
        }
        const std::int64_t wallUs = CancelToken::nowUs() - t0;
        if (!writeFrame(resultFd, encodeResult(i, cached, wallUs,
                                               metrics)))
            return 1; // coordinator vanished
        ++finished;
        if (finished == 1)
            maybeInjectFault(req);
    }
    if (!writeFrame(resultFd, encodeDone(finished, cacheHits)))
        return 1;
    return 0;
}

int
runPhasesShard(const ShardRequest &req, int resultFd)
{
    std::istringstream in(req.traceText);
    const trace::Trace tr = trace::Trace::load(in);

    phase::PhaseEvalConfig cfg;
    cfg.segmenter.windowMessages = req.window;
    cfg.segmenter.mergeThreshold = req.mergeThreshold;
    cfg.segmenter.minPhaseWindows = req.minPhaseWindows;
    cfg.segmenter.matrixWeight = req.matrixWeight;
    cfg.methodology.partitioner.constraints.maxDegree = req.maxDegree;
    cfg.methodology.partitioner.seed = req.seed;
    cfg.methodology.restarts = req.restarts;
    cfg.methodology.threads = 1;
    cfg.methodology.cancel = &gWorkerToken;
    cfg.sim.cancel = &gWorkerToken;
    cfg.reconfigCost = req.reconfigCost;
    cfg.power.kind = *topo::powerModelKindFromName(req.power);
    cfg.threads = 1;

    const auto sig = phasesSignature(cfg);
    if (!req.sigs.empty() && req.sigs.front() != sig) {
        fatal("phases signature drift: coordinator expects '",
              req.sigs.front(), "', worker computes '", sig, "'");
    }

    const phase::Segmentation seg =
        phase::segmentTrace(tr, cfg.segmenter);
    if (seg.phases.size() != req.expectedPhases) {
        fatal("segmentation drift: coordinator detected ",
              req.expectedPhases, " phases, worker detected ",
              seg.phases.size());
    }
    const phase::PhaseCliques cliques = phase::buildPhaseCliques(tr, seg);

    std::uint64_t finished = 0;
    for (const std::uint32_t p : req.jobs) {
        checkCancel(&gWorkerToken);
        if (p >= seg.phases.size())
            fatal("shard references phase ", p, " of ",
                  seg.phases.size());
        const std::int64_t t0 = CancelToken::nowUs();
        const auto row = phase::evalPhaseStandalone(
            tr, seg, cliques.standalone[p], p, cfg);
        const std::int64_t wallUs = CancelToken::nowUs() - t0;
        if (!writeFrame(resultFd, encodePhaseResult(p, wallUs, row)))
            return 1;
        ++finished;
        if (finished == 1)
            maybeInjectFault(req);
    }
    if (!writeFrame(resultFd, encodeDone(finished, 0)))
        return 1;
    return 0;
}

} // namespace

int
runWorker(int requestFd, int resultFd)
{
    // A vanished coordinator must surface as a write error, not
    // SIGPIPE; Ctrl-C / coordinator SIGTERM fire the shared token.
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGINT, onWorkerSignal);
    std::signal(SIGTERM, onWorkerSignal);
    gWorkerToken.reset();

    // User-level errors (malformed trace, bad shard) become structured
    // error frames instead of killing the process silently.
    LogConfig::instance().fatalThrows(true);

    const auto frame = readFrame(requestFd);
    if (!frame) {
        writeFrame(resultFd,
                   encodeError(serve::errorCodeName(
                                   serve::ErrorCode::ParseError),
                               "missing or malformed request frame"));
        return 1;
    }
    std::string err;
    const auto req = parseShardRequest(*frame, err);
    if (!req) {
        writeFrame(resultFd,
                   encodeError(serve::errorCodeName(
                                   serve::ErrorCode::ParseError),
                               err));
        return 1;
    }

    try {
        if (req->cmd == "explore_shard")
            return runExploreShard(*req, resultFd);
        return runPhasesShard(*req, resultFd);
    } catch (const CancelledError &e) {
        writeFrame(resultFd,
                   encodeError(serve::errorCodeName(
                                   serve::ErrorCode::Cancelled),
                               e.what()));
        return 130;
    } catch (const FatalError &e) {
        writeFrame(resultFd,
                   encodeError(serve::errorCodeName(
                                   serve::ErrorCode::ValidationError),
                               e.what()));
        return 1;
    } catch (const std::exception &e) {
        writeFrame(resultFd,
                   encodeError(serve::errorCodeName(
                                   serve::ErrorCode::Internal),
                               e.what()));
        return 1;
    }
}

} // namespace minnoc::dist
