/**
 * @file
 * Remote worker transport: TCP plumbing that lets the coordinator
 * drive `minnoc serve` daemons as job backends.
 *
 * A remote lane speaks the serve NDJSON protocol — one `dse_job` /
 * `phase_job` request per line, one reply per line — instead of the
 * netstring pipe protocol, but feeds the coordinator the exact same
 * per-job result documents (serve/jobwire.*), which is what keeps
 * `--hosts` byte-identical to `--workers`.
 *
 * Scope: address parsing, connection establishment with bounded
 * exponential backoff, and a partial-write-safe send. The lane state
 * machine itself lives in the coordinator, next to the pipe lanes.
 */

#ifndef MINNOC_DIST_REMOTE_HPP
#define MINNOC_DIST_REMOTE_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace minnoc::dist {

/** One daemon address from `--hosts host:port,host:port,...`. */
struct HostSpec
{
    std::string host; ///< name or dotted quad
    std::uint16_t port = 0;

    /** `host:port`, the stable label used in stats and trace lanes. */
    std::string label() const
    {
        return host + ":" + std::to_string(port);
    }
};

/**
 * Parse a comma-separated `host:port` list. Empty input yields an
 * empty vector; any malformed entry (missing port, port outside
 * [1, 65535], empty host) is fatal() — a typoed fleet address must
 * never silently shrink the fleet.
 */
std::vector<HostSpec> parseHostList(const std::string &spec);

/**
 * Connect to @p host with up to @p attempts tries, exponential
 * backoff from 100 ms. Returns the connected fd, or -1 with @p err
 * filled. The fd is left in blocking mode; callers flip O_NONBLOCK.
 */
int connectHost(const HostSpec &host, std::string &err,
                int attempts = 5);

/** Write all of @p data, riding out EINTR/EAGAIN; false on error. */
bool sendAll(int fd, std::string_view data);

} // namespace minnoc::dist

#endif // MINNOC_DIST_REMOTE_HPP
