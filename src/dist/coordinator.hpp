/**
 * @file
 * Multi-process exploration coordinator.
 *
 * Forks N workers, shards the job grid over them by content hash
 * (each job's cache key orders the jobs deterministically; shards are
 * dealt round-robin off that order, so they are balanced to ±1 job and
 * independent of grid layout), streams results back over pipes, and
 * merges them through the exact finalization path the in-process
 * explorer uses. Reports are therefore byte-identical to
 * `--workers 1` and to the single-process run by construction.
 *
 * With DistOptions::hosts set, the leading lanes are remote `minnoc
 * serve` daemons instead of forked processes: the same shards, dealt
 * by the same rule, dispatched one `dse_job`/`phase_job` request per
 * job over TCP (windowed, so a daemon always has work queued). Both
 * backends return the identical per-job result documents, so any mix
 * of hosts and forked workers produces the same report bytes.
 *
 * Fault handling: a worker that crashes, reports an error, or goes
 * silent past the activity timeout is reaped (SIGKILL if necessary)
 * and its *unfinished* jobs are requeued once onto a fresh worker;
 * jobs the dead worker already stored in the shared cache are not
 * recomputed. A second failure on the same shard is fatal. Every
 * failure is recorded in DistStats and surfaced as `worker_failed`
 * in the dist status JSON — never in the explore report itself, whose
 * bytes stay crash-independent.
 *
 * Cancellation: the caller's CancelToken is polled every scheduler
 * tick; once fired, workers get SIGTERM, a short drain window, then
 * SIGKILL, and the coordinator unwinds with CancelledError.
 */

#ifndef MINNOC_DIST_COORDINATOR_HPP
#define MINNOC_DIST_COORDINATOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "dse/explorer.hpp"
#include "phase/evaluator.hpp"
#include "remote.hpp"

namespace minnoc::dist {

/** Knobs of one distributed run. */
struct DistOptions
{
    /** Worker processes to fork (clamped to the job count, min 1). */
    std::uint32_t workers = 2;

    /**
     * Remote `minnoc serve` daemons to drive as job backends, one
     * lane each, ahead of the forked workers; `workers` may be 0 for
     * an all-remote run. A dead daemon's unfinished jobs requeue onto
     * a surviving host, or a forked local worker when none survives.
     */
    std::vector<HostSpec> hosts;

    /**
     * A worker producing no result for this long is presumed hung,
     * killed, and its shard requeued. Generous by default: one DSE
     * job on a large pattern can legitimately run minutes. For remote
     * lanes this doubles as the per-request deadline sent to the
     * daemon (subject to the daemon's own max-deadline clamp).
     */
    std::int64_t workerTimeoutMs = 600'000;
};

/** One reaped worker, for the status report. */
struct WorkerFailure
{
    std::uint32_t worker = 0; ///< worker slot
    /** `host:port` when the slot was a remote lane; "" when local. */
    std::string host;
    std::string reason;       ///< "timeout", "exit 42", "signal 9", ...
    /** Job indices requeued onto the replacement worker. */
    std::vector<std::uint32_t> requeuedJobs;
};

/** Per-worker accounting of one distributed run. */
struct DistStats
{
    /** Worker slots used (initial workers + any replacements). */
    std::uint32_t workers = 0;
    std::vector<std::uint64_t> jobs;      ///< results per slot
    std::vector<std::uint64_t> cacheHits; ///< cached results per slot
    std::vector<std::int64_t> wallUsSum;  ///< summed job wall time
    /** Per slot, the remote host label; "" for forked workers. */
    std::vector<std::string> hostOf;
    std::vector<WorkerFailure> failures;

    /**
     * Deterministic-shape status JSON (wall times are wall times; the
     * shape and counts are reproducible, the durations are not):
     * per-worker rows plus the `worker_failed` (forked workers) and
     * `host_failed` (remote lanes) arrays.
     */
    std::string toJson(const std::string &task) const;
};

/**
 * Distributed dse::explore. Identical output to explore(trace, config)
 * — same points, same frontier, same JSON bytes — with the grid
 * fanned out over DistOptions::workers processes sharing the disk
 * cache. config.threads is ignored (parallelism is process-level);
 * config.cancel is honored at scheduler-tick granularity here and at
 * job granularity inside each worker.
 */
dse::ExploreReport exploreDistributed(const trace::Trace &trace,
                                      const dse::ExploreConfig &config,
                                      const DistOptions &options,
                                      DistStats *stats = nullptr);

/**
 * Distributed phase::evaluatePhases: the coordinator segments the
 * trace and synthesizes the monolithic + union designs (they depend
 * on the whole trace), while the per-phase standalone synthesis and
 * replay — the bulk of the work — is sharded over workers. Byte-
 * identical to the in-process report.
 */
phase::PhaseReport
evaluatePhasesDistributed(const trace::Trace &trace,
                          const phase::PhaseEvalConfig &config,
                          const DistOptions &options,
                          DistStats *stats = nullptr);

} // namespace minnoc::dist

#endif // MINNOC_DIST_COORDINATOR_HPP
