#include "digraph.hpp"

#include <sstream>

#include "util/log.hpp"

namespace minnoc::graph {

NodeId
Digraph::addNode()
{
    _out.emplace_back();
    _in.emplace_back();
    return static_cast<NodeId>(_out.size() - 1);
}

NodeId
Digraph::addNodes(std::size_t n)
{
    const auto first = static_cast<NodeId>(_out.size());
    _out.resize(_out.size() + n);
    _in.resize(_in.size() + n);
    return first;
}

EdgeId
Digraph::addEdge(NodeId src, NodeId dst, std::int64_t weight,
                 std::int64_t tag)
{
    checkNode(src);
    checkNode(dst);
    const auto id = static_cast<EdgeId>(_edges.size());
    _edges.push_back(Edge{src, dst, weight, tag, true});
    _out[src].push_back(id);
    _in[dst].push_back(id);
    ++_numAlive;
    return id;
}

void
Digraph::removeEdge(EdgeId e)
{
    auto &edge = _edges.at(e);
    if (!edge.alive)
        panic("Digraph::removeEdge on dead edge ", e);
    edge.alive = false;
    --_numAlive;
}

std::vector<EdgeId>
Digraph::outEdges(NodeId n) const
{
    checkNode(n);
    std::vector<EdgeId> live;
    live.reserve(_out[n].size());
    for (EdgeId e : _out[n]) {
        if (_edges[e].alive)
            live.push_back(e);
    }
    return live;
}

std::vector<EdgeId>
Digraph::inEdges(NodeId n) const
{
    checkNode(n);
    std::vector<EdgeId> live;
    live.reserve(_in[n].size());
    for (EdgeId e : _in[n]) {
        if (_edges[e].alive)
            live.push_back(e);
    }
    return live;
}

std::vector<NodeId>
Digraph::successors(NodeId n) const
{
    std::vector<NodeId> nodes;
    for (EdgeId e : outEdges(n))
        nodes.push_back(_edges[e].dst);
    return nodes;
}

std::vector<NodeId>
Digraph::predecessors(NodeId n) const
{
    std::vector<NodeId> nodes;
    for (EdgeId e : inEdges(n))
        nodes.push_back(_edges[e].src);
    return nodes;
}

std::size_t
Digraph::outDegree(NodeId n) const
{
    return outEdges(n).size();
}

std::size_t
Digraph::inDegree(NodeId n) const
{
    return inEdges(n).size();
}

EdgeId
Digraph::findEdge(NodeId src, NodeId dst) const
{
    checkNode(src);
    checkNode(dst);
    for (EdgeId e : _out[src]) {
        if (_edges[e].alive && _edges[e].dst == dst)
            return e;
    }
    return kNoEdge;
}

std::size_t
Digraph::countEdges(NodeId src, NodeId dst) const
{
    checkNode(src);
    checkNode(dst);
    std::size_t count = 0;
    for (EdgeId e : _out[src]) {
        if (_edges[e].alive && _edges[e].dst == dst)
            ++count;
    }
    return count;
}

std::vector<EdgeId>
Digraph::edges() const
{
    std::vector<EdgeId> live;
    live.reserve(_numAlive);
    for (EdgeId e = 0; e < _edges.size(); ++e) {
        if (_edges[e].alive)
            live.push_back(e);
    }
    return live;
}

std::string
Digraph::toString() const
{
    std::ostringstream oss;
    oss << "Digraph(" << numNodes() << " nodes, " << numEdges()
        << " edges)\n";
    for (EdgeId e : edges()) {
        const auto &ed = _edges[e];
        oss << "  " << ed.src << " -> " << ed.dst << " (w=" << ed.weight
            << ", tag=" << ed.tag << ")\n";
    }
    return oss.str();
}

void
Digraph::checkNode(NodeId n) const
{
    if (n >= _out.size())
        panic("Digraph: node ", n, " out of range (", _out.size(), ")");
}

} // namespace minnoc::graph
