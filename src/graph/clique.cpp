#include "clique.hpp"

#include <algorithm>

namespace minnoc::graph {

namespace {

/** Bron-Kerbosch recursion with greedy pivot selection. */
class BronKerbosch
{
  public:
    BronKerbosch(const Ugraph &g, std::size_t limit)
        : _g(g), _limit(limit)
    {
    }

    std::vector<std::vector<NodeId>>
    run()
    {
        std::vector<NodeId> r;
        std::vector<NodeId> p(_g.numNodes());
        for (NodeId v = 0; v < _g.numNodes(); ++v)
            p[v] = v;
        std::vector<NodeId> x;
        expand(r, p, x);
        // Deterministic output order: by size descending, then lexicographic.
        std::sort(_found.begin(), _found.end(),
                  [](const auto &a, const auto &b) {
                      if (a.size() != b.size())
                          return a.size() > b.size();
                      return a < b;
                  });
        return std::move(_found);
    }

  private:
    bool
    full() const
    {
        return _limit != 0 && _found.size() >= _limit;
    }

    void
    expand(std::vector<NodeId> &r, std::vector<NodeId> p,
           std::vector<NodeId> x)
    {
        if (full())
            return;
        if (p.empty() && x.empty()) {
            auto clique = r;
            std::sort(clique.begin(), clique.end());
            _found.push_back(std::move(clique));
            return;
        }

        // Pivot: vertex of P union X with the most neighbors in P.
        NodeId pivot = kNoNode;
        std::size_t bestCover = 0;
        for (const auto &pool : {p, x}) {
            for (NodeId u : pool) {
                std::size_t cover = 0;
                for (NodeId v : p) {
                    if (_g.hasEdge(u, v))
                        ++cover;
                }
                if (pivot == kNoNode || cover > bestCover) {
                    pivot = u;
                    bestCover = cover;
                }
            }
        }

        // Candidates: P minus neighbors(pivot).
        std::vector<NodeId> candidates;
        for (NodeId v : p) {
            if (pivot == kNoNode || !_g.hasEdge(pivot, v))
                candidates.push_back(v);
        }

        for (NodeId v : candidates) {
            if (full())
                return;
            std::vector<NodeId> pNext;
            std::vector<NodeId> xNext;
            for (NodeId w : p) {
                if (_g.hasEdge(v, w))
                    pNext.push_back(w);
            }
            for (NodeId w : x) {
                if (_g.hasEdge(v, w))
                    xNext.push_back(w);
            }
            r.push_back(v);
            expand(r, std::move(pNext), std::move(xNext));
            r.pop_back();
            p.erase(std::find(p.begin(), p.end(), v));
            x.push_back(v);
        }
    }

    const Ugraph &_g;
    std::size_t _limit;
    std::vector<std::vector<NodeId>> _found;
};

} // namespace

std::vector<std::vector<NodeId>>
maximalCliques(const Ugraph &g, std::size_t limit)
{
    return BronKerbosch(g, limit).run();
}

std::vector<NodeId>
maximumClique(const Ugraph &g)
{
    auto cliques = maximalCliques(g);
    if (cliques.empty())
        return {};
    return cliques.front(); // sorted size-descending by run()
}

std::size_t
cliqueNumber(const Ugraph &g)
{
    return maximumClique(g).size();
}

} // namespace minnoc::graph
