/**
 * @file
 * Maximal clique enumeration.
 *
 * Used to validate the paper's clique-set machinery: the communication
 * clique set built from contention periods should consist of cliques of
 * the message overlap graph, and the maximum clique of a pipe's conflict
 * graph bounds the link count. Bron-Kerbosch with pivoting handles the
 * small graphs involved comfortably.
 */

#ifndef MINNOC_GRAPH_CLIQUE_HPP
#define MINNOC_GRAPH_CLIQUE_HPP

#include <vector>

#include "ugraph.hpp"

namespace minnoc::graph {

/**
 * Enumerate all maximal cliques of @p g (Bron-Kerbosch with pivoting).
 * Each clique is returned sorted by vertex id; the list order is
 * deterministic.
 *
 * @param limit optional cap on the number of cliques reported (0 = all).
 */
std::vector<std::vector<NodeId>> maximalCliques(const Ugraph &g,
                                                std::size_t limit = 0);

/** A maximum (largest) clique of @p g; empty for the empty graph. */
std::vector<NodeId> maximumClique(const Ugraph &g);

/** Clique number omega(g). */
std::size_t cliqueNumber(const Ugraph &g);

} // namespace minnoc::graph

#endif // MINNOC_GRAPH_CLIQUE_HPP
