#include "coloring.hpp"

#include <algorithm>
#include <numeric>

#include "util/log.hpp"

namespace minnoc::graph {

bool
isProperColoring(const Ugraph &g, const Coloring &c)
{
    if (c.color.size() != g.numNodes())
        return false;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        if (c.color[v] >= c.numColors)
            return false;
        for (NodeId w : g.neighbors(v)) {
            if (c.color[v] == c.color[w])
                return false;
        }
    }
    return true;
}

namespace {

/** Smallest color not used by any already-colored neighbor of v. */
std::uint32_t
smallestFreeColor(const Ugraph &g, const std::vector<std::uint32_t> &color,
                  NodeId v, std::vector<bool> &scratch)
{
    std::fill(scratch.begin(), scratch.end(), false);
    for (NodeId w : g.neighbors(v)) {
        const auto c = color[w];
        if (c != static_cast<std::uint32_t>(-1) && c < scratch.size())
            scratch[c] = true;
    }
    for (std::uint32_t c = 0; c < scratch.size(); ++c) {
        if (!scratch[c])
            return c;
    }
    return static_cast<std::uint32_t>(scratch.size());
}

} // namespace

Coloring
greedyColoring(const Ugraph &g)
{
    const std::size_t n = g.numNodes();
    Coloring result;
    result.color.assign(n, static_cast<std::uint32_t>(-1));
    if (n == 0)
        return result;

    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return g.degree(a) > g.degree(b);
    });

    std::vector<bool> scratch(g.maxDegree() + 1, false);
    for (NodeId v : order) {
        const auto c = smallestFreeColor(g, result.color, v, scratch);
        result.color[v] = c;
        result.numColors = std::max(result.numColors, c + 1);
    }
    return result;
}

Coloring
dsaturColoring(const Ugraph &g)
{
    const std::size_t n = g.numNodes();
    Coloring result;
    result.color.assign(n, static_cast<std::uint32_t>(-1));
    if (n == 0)
        return result;

    // Per-vertex saturation: set of neighbor colors, tracked as a bitset
    // over at most maxDegree+1 colors.
    const std::size_t maxColors = g.maxDegree() + 1;
    std::vector<std::vector<bool>> neighborColors(
        n, std::vector<bool>(maxColors, false));
    std::vector<std::uint32_t> saturation(n, 0);
    std::vector<bool> done(n, false);

    for (std::size_t step = 0; step < n; ++step) {
        // Pick the undone vertex with max saturation, ties by degree.
        NodeId best = kNoNode;
        for (NodeId v = 0; v < n; ++v) {
            if (done[v])
                continue;
            if (best == kNoNode || saturation[v] > saturation[best] ||
                (saturation[v] == saturation[best] &&
                 g.degree(v) > g.degree(best))) {
                best = v;
            }
        }

        std::uint32_t c = 0;
        while (c < maxColors && neighborColors[best][c])
            ++c;
        result.color[best] = c;
        result.numColors = std::max(result.numColors, c + 1);
        done[best] = true;

        for (NodeId w : g.neighbors(best)) {
            if (!done[w] && c < maxColors && !neighborColors[w][c]) {
                neighborColors[w][c] = true;
                ++saturation[w];
            }
        }
    }
    return result;
}

namespace {

/**
 * Branch-and-bound search state for exact coloring. Vertices are tried
 * in DSATUR-ish static order (degree-descending); at each vertex we try
 * every color in [0, usedColors] and prune when usedColors+1 >= best.
 */
class ExactSearch
{
  public:
    ExactSearch(const Ugraph &g, std::uint64_t budget)
        : _g(g), _budget(budget)
    {
    }

    Coloring
    run(const Coloring &seed)
    {
        const std::size_t n = _g.numNodes();
        _best = seed;
        if (n == 0)
            return _best;

        _order.resize(n);
        std::iota(_order.begin(), _order.end(), 0);
        std::stable_sort(_order.begin(), _order.end(),
                         [&](NodeId a, NodeId b) {
                             return _g.degree(a) > _g.degree(b);
                         });
        _current.assign(n, static_cast<std::uint32_t>(-1));
        _exhausted = false;
        descend(0, 0);
        return _best;
    }

    bool exhaustedBudget() const { return _exhausted; }

  private:
    void
    descend(std::size_t pos, std::uint32_t usedColors)
    {
        if (_exhausted)
            return;
        if (_budget && ++_expanded > _budget) {
            _exhausted = true;
            return;
        }
        if (usedColors >= _best.numColors)
            return; // cannot beat the incumbent
        if (pos == _order.size()) {
            _best.color = _current;
            _best.numColors = usedColors;
            return;
        }
        const NodeId v = _order[pos];
        // Try existing colors first, then (at most) one new color.
        const std::uint32_t limit =
            std::min<std::uint32_t>(usedColors + 1, _best.numColors - 1);
        for (std::uint32_t c = 0; c < limit; ++c) {
            bool feasible = true;
            for (NodeId w : _g.neighbors(v)) {
                if (_current[w] == c) {
                    feasible = false;
                    break;
                }
            }
            if (!feasible)
                continue;
            _current[v] = c;
            descend(pos + 1, std::max(usedColors, c + 1));
            _current[v] = static_cast<std::uint32_t>(-1);
        }
    }

    const Ugraph &_g;
    std::uint64_t _budget;
    std::uint64_t _expanded = 0;
    bool _exhausted = false;
    std::vector<NodeId> _order;
    std::vector<std::uint32_t> _current;
    Coloring _best;
};

} // namespace

Coloring
exactColoring(const Ugraph &g, std::uint64_t nodeBudget, bool *wasExact)
{
    // Seed with DSATUR: gives both an incumbent and an upper bound.
    Coloring seed = dsaturColoring(g);
    // If the clique bound already matches, DSATUR is provably optimal.
    if (cliqueLowerBound(g) == seed.numColors) {
        if (wasExact)
            *wasExact = true;
        return seed;
    }
    ExactSearch search(g, nodeBudget);
    Coloring best = search.run(seed);
    if (wasExact)
        *wasExact = !search.exhaustedBudget();
    return best;
}

std::vector<NodeId>
greedyClique(const Ugraph &g)
{
    const std::size_t n = g.numNodes();
    if (n == 0)
        return {};

    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return g.degree(a) > g.degree(b);
    });

    std::vector<NodeId> clique;
    for (NodeId v : order) {
        bool adjacentToAll = true;
        for (NodeId u : clique) {
            if (!g.hasEdge(u, v)) {
                adjacentToAll = false;
                break;
            }
        }
        if (adjacentToAll)
            clique.push_back(v);
    }
    return clique;
}

std::uint32_t
cliqueLowerBound(const Ugraph &g)
{
    if (g.numNodes() == 0)
        return 0;
    return static_cast<std::uint32_t>(greedyClique(g).size());
}

} // namespace minnoc::graph
