#include "ugraph.hpp"

#include <algorithm>
#include <sstream>

#include "util/log.hpp"

namespace minnoc::graph {

Ugraph::Ugraph(std::size_t n)
{
    _adj.resize(n);
    _matrix.assign(n * (n + 1) / 2, false);
}

NodeId
Ugraph::addNode()
{
    _adj.emplace_back();
    const std::size_t n = _adj.size();
    // Grow the packed lower-triangular matrix by one row (n cells).
    _matrix.resize(n * (n + 1) / 2, false);
    return static_cast<NodeId>(n - 1);
}

std::size_t
Ugraph::matrixIndex(NodeId a, NodeId b) const
{
    // Packed lower-triangular index with row = max(a,b), col = min(a,b).
    const NodeId row = std::max(a, b);
    const NodeId col = std::min(a, b);
    return static_cast<std::size_t>(row) * (row + 1) / 2 + col;
}

bool
Ugraph::addEdge(NodeId a, NodeId b)
{
    checkNode(a);
    checkNode(b);
    if (a == b)
        return false;
    const auto idx = matrixIndex(a, b);
    if (_matrix[idx])
        return false;
    _matrix[idx] = true;
    _adj[a].push_back(b);
    _adj[b].push_back(a);
    ++_numEdges;
    return true;
}

bool
Ugraph::hasEdge(NodeId a, NodeId b) const
{
    checkNode(a);
    checkNode(b);
    if (a == b)
        return false;
    return _matrix[matrixIndex(a, b)];
}

const std::vector<NodeId> &
Ugraph::neighbors(NodeId n) const
{
    checkNode(n);
    return _adj[n];
}

std::size_t
Ugraph::maxDegree() const
{
    std::size_t best = 0;
    for (const auto &nbrs : _adj)
        best = std::max(best, nbrs.size());
    return best;
}

bool
Ugraph::isClique(const std::vector<NodeId> &verts) const
{
    for (std::size_t i = 0; i < verts.size(); ++i) {
        for (std::size_t j = i + 1; j < verts.size(); ++j) {
            if (!hasEdge(verts[i], verts[j]))
                return false;
        }
    }
    return true;
}

double
Ugraph::density() const
{
    const std::size_t n = numNodes();
    if (n < 2)
        return 0.0;
    const double possible = static_cast<double>(n) * (n - 1) / 2.0;
    return static_cast<double>(_numEdges) / possible;
}

std::string
Ugraph::toString() const
{
    std::ostringstream oss;
    oss << "Ugraph(" << numNodes() << " nodes, " << numEdges()
        << " edges)\n";
    for (NodeId a = 0; a < _adj.size(); ++a) {
        for (NodeId b : _adj[a]) {
            if (a < b)
                oss << "  {" << a << ", " << b << "}\n";
        }
    }
    return oss.str();
}

void
Ugraph::checkNode(NodeId n) const
{
    if (n >= _adj.size())
        panic("Ugraph: node ", n, " out of range (", _adj.size(), ")");
}

} // namespace minnoc::graph
