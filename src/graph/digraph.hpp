/**
 * @file
 * Directed multigraph.
 *
 * Implements the paper's Definition 1 substrate: a system is a strongly
 * connected directed graph whose vertices are switches and processors and
 * whose edges are unidirectional links; a pair of vertices may be joined
 * by more than one edge (multi-edges model multi-link pipes).
 */

#ifndef MINNOC_GRAPH_DIGRAPH_HPP
#define MINNOC_GRAPH_DIGRAPH_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace minnoc::graph {

/** Identifier types; indices into the graph's internal arrays. */
using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

/** Sentinel for "no node"/"no edge". */
constexpr NodeId kNoNode = static_cast<NodeId>(-1);
constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/**
 * A directed multigraph with O(1) amortized node/edge insertion, lazy
 * edge removal, and per-node out/in adjacency lists.
 *
 * Edges carry an integer weight (used by the topology layer for link
 * length) and an opaque user tag.
 */
class Digraph
{
  public:
    /** One directed edge. */
    struct Edge
    {
        NodeId src = kNoNode;
        NodeId dst = kNoNode;
        std::int64_t weight = 1;
        std::int64_t tag = 0;
        bool alive = true;
    };

    Digraph() = default;

    /** Construct with @p n isolated nodes. */
    explicit Digraph(std::size_t n) { addNodes(n); }

    /** Add one node and return its id. */
    NodeId addNode();

    /** Add @p n nodes; returns the id of the first one. */
    NodeId addNodes(std::size_t n);

    /**
     * Add a directed edge.
     * @param src source node (must exist)
     * @param dst destination node (must exist)
     * @param weight edge weight (e.g., link length)
     * @param tag opaque user tag
     * @return id of the new edge
     */
    EdgeId addEdge(NodeId src, NodeId dst, std::int64_t weight = 1,
                   std::int64_t tag = 0);

    /** Remove an edge (lazy: it stays allocated but is skipped). */
    void removeEdge(EdgeId e);

    std::size_t numNodes() const { return _out.size(); }

    /** Number of live edges. */
    std::size_t numEdges() const { return _numAlive; }

    /** Access edge data; the edge must be alive or the caller must check. */
    const Edge &edge(EdgeId e) const { return _edges.at(e); }

    /** Mutable edge weight/tag access. */
    void edgeWeight(EdgeId e, std::int64_t w) { _edges.at(e).weight = w; }
    void edgeTag(EdgeId e, std::int64_t t) { _edges.at(e).tag = t; }

    /** Live outgoing edge ids of @p n. */
    std::vector<EdgeId> outEdges(NodeId n) const;

    /** Live incoming edge ids of @p n. */
    std::vector<EdgeId> inEdges(NodeId n) const;

    /** Live successor node ids (with multiplicity). */
    std::vector<NodeId> successors(NodeId n) const;

    /** Live predecessor node ids (with multiplicity). */
    std::vector<NodeId> predecessors(NodeId n) const;

    /** Out-degree counting only live edges. */
    std::size_t outDegree(NodeId n) const;

    /** In-degree counting only live edges. */
    std::size_t inDegree(NodeId n) const;

    /** Total degree (in + out) counting only live edges. */
    std::size_t degree(NodeId n) const { return inDegree(n) + outDegree(n); }

    /** First live edge from @p src to @p dst, or kNoEdge. */
    EdgeId findEdge(NodeId src, NodeId dst) const;

    /** Number of live parallel edges from @p src to @p dst. */
    std::size_t countEdges(NodeId src, NodeId dst) const;

    /** All live edge ids, in insertion order. */
    std::vector<EdgeId> edges() const;

    /** Human-readable dump for debugging. */
    std::string toString() const;

  private:
    void checkNode(NodeId n) const;

    std::vector<std::vector<EdgeId>> _out;
    std::vector<std::vector<EdgeId>> _in;
    std::vector<Edge> _edges;
    std::size_t _numAlive = 0;
};

} // namespace minnoc::graph

#endif // MINNOC_GRAPH_DIGRAPH_HPP
