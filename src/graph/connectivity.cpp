#include "connectivity.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/log.hpp"

namespace minnoc::graph {

std::vector<std::uint32_t>
stronglyConnectedComponents(const Digraph &g)
{
    const std::size_t n = g.numNodes();
    constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);

    std::vector<std::uint32_t> index(n, kUnvisited);
    std::vector<std::uint32_t> lowlink(n, 0);
    std::vector<bool> onStack(n, false);
    std::vector<NodeId> stack;
    std::vector<std::uint32_t> comp(n, kUnvisited);
    std::uint32_t nextIndex = 0;
    std::uint32_t nextComp = 0;

    // Iterative Tarjan: each frame tracks the node and the position in
    // its successor list.
    struct Frame
    {
        NodeId node;
        std::vector<NodeId> succs;
        std::size_t next = 0;
    };

    for (NodeId root = 0; root < n; ++root) {
        if (index[root] != kUnvisited)
            continue;
        std::vector<Frame> frames;
        frames.push_back(Frame{root, g.successors(root)});
        index[root] = lowlink[root] = nextIndex++;
        stack.push_back(root);
        onStack[root] = true;

        while (!frames.empty()) {
            Frame &fr = frames.back();
            if (fr.next < fr.succs.size()) {
                const NodeId w = fr.succs[fr.next++];
                if (index[w] == kUnvisited) {
                    index[w] = lowlink[w] = nextIndex++;
                    stack.push_back(w);
                    onStack[w] = true;
                    frames.push_back(Frame{w, g.successors(w)});
                } else if (onStack[w]) {
                    lowlink[fr.node] = std::min(lowlink[fr.node], index[w]);
                }
            } else {
                const NodeId v = fr.node;
                if (lowlink[v] == index[v]) {
                    // v is the root of an SCC; pop it off.
                    for (;;) {
                        const NodeId w = stack.back();
                        stack.pop_back();
                        onStack[w] = false;
                        comp[w] = nextComp;
                        if (w == v)
                            break;
                    }
                    ++nextComp;
                }
                frames.pop_back();
                if (!frames.empty()) {
                    const NodeId parent = frames.back().node;
                    lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
                }
            }
        }
    }
    return comp;
}

std::size_t
numScc(const Digraph &g)
{
    const auto comp = stronglyConnectedComponents(g);
    std::uint32_t maxComp = 0;
    for (auto c : comp)
        maxComp = std::max(maxComp, c + 1);
    return maxComp;
}

bool
isStronglyConnected(const Digraph &g)
{
    return g.numNodes() > 0 && numScc(g) == 1;
}

std::vector<EdgeId>
shortestPathEdges(const Digraph &g, NodeId src, NodeId dst)
{
    if (src == dst)
        return {};
    const std::size_t n = g.numNodes();
    std::vector<EdgeId> parentEdge(n, kNoEdge);
    std::vector<bool> visited(n, false);
    std::deque<NodeId> queue;
    queue.push_back(src);
    visited[src] = true;

    while (!queue.empty()) {
        const NodeId v = queue.front();
        queue.pop_front();
        for (EdgeId e : g.outEdges(v)) {
            const NodeId w = g.edge(e).dst;
            if (visited[w])
                continue;
            visited[w] = true;
            parentEdge[w] = e;
            if (w == dst) {
                // Reconstruct the edge path back to src.
                std::vector<EdgeId> path;
                NodeId cur = dst;
                while (cur != src) {
                    const EdgeId pe = parentEdge[cur];
                    path.push_back(pe);
                    cur = g.edge(pe).src;
                }
                std::reverse(path.begin(), path.end());
                return path;
            }
            queue.push_back(w);
        }
    }
    return {kNoEdge};
}

std::vector<std::int64_t>
bfsDistances(const Digraph &g, NodeId src)
{
    const std::size_t n = g.numNodes();
    std::vector<std::int64_t> dist(n, -1);
    std::deque<NodeId> queue;
    dist[src] = 0;
    queue.push_back(src);
    while (!queue.empty()) {
        const NodeId v = queue.front();
        queue.pop_front();
        for (const NodeId w : g.successors(v)) {
            if (dist[w] < 0) {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    return dist;
}

std::int64_t
diameter(const Digraph &g)
{
    if (g.numNodes() == 0)
        return -1;
    std::int64_t best = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        for (const auto d : bfsDistances(g, v))
            best = std::max(best, d);
    }
    return best;
}

double
averageDistance(const Digraph &g)
{
    std::int64_t total = 0;
    std::int64_t pairs = 0;
    for (NodeId v = 0; v < g.numNodes(); ++v) {
        const auto dist = bfsDistances(g, v);
        for (NodeId w = 0; w < g.numNodes(); ++w) {
            if (w != v && dist[w] >= 0) {
                total += dist[w];
                ++pairs;
            }
        }
    }
    return pairs ? static_cast<double>(total) / static_cast<double>(pairs)
                 : 0.0;
}

} // namespace minnoc::graph
