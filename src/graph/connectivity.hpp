/**
 * @file
 * Connectivity algorithms on directed multigraphs.
 *
 * The paper's Definition 1 requires the system graph to be strongly
 * connected; this module provides the Tarjan SCC check used by the
 * methodology's validity assertions, plus BFS shortest paths used by the
 * topology layer to materialize routes.
 */

#ifndef MINNOC_GRAPH_CONNECTIVITY_HPP
#define MINNOC_GRAPH_CONNECTIVITY_HPP

#include <vector>

#include "digraph.hpp"

namespace minnoc::graph {

/**
 * Strongly connected components by Tarjan's algorithm (iterative).
 * @return per-node component id, numbered in reverse topological order.
 */
std::vector<std::uint32_t> stronglyConnectedComponents(const Digraph &g);

/** Number of strongly connected components. */
std::size_t numScc(const Digraph &g);

/** True if @p g has exactly one SCC (and at least one node). */
bool isStronglyConnected(const Digraph &g);

/**
 * BFS shortest path from @p src to @p dst as a sequence of edge ids.
 * Returns an empty vector when src == dst, and when dst is unreachable the
 * result contains the single sentinel kNoEdge.
 */
std::vector<EdgeId> shortestPathEdges(const Digraph &g, NodeId src,
                                      NodeId dst);

/**
 * All-destination BFS hop distances from @p src.
 * Unreachable nodes get distance -1.
 */
std::vector<std::int64_t> bfsDistances(const Digraph &g, NodeId src);

/** Graph diameter in hops over reachable pairs; -1 for empty graphs. */
std::int64_t diameter(const Digraph &g);

/** Average hop distance over all ordered reachable pairs (excluding self). */
double averageDistance(const Digraph &g);

} // namespace minnoc::graph

#endif // MINNOC_GRAPH_CONNECTIVITY_HPP
