/**
 * @file
 * Undirected simple graph.
 *
 * Used for the paper's conflict graphs (Section 3.1): vertices are
 * communications crossing a pipe and edges join communications that
 * potentially conflict in time. The coloring and clique algorithms in
 * this library operate on this representation.
 */

#ifndef MINNOC_GRAPH_UGRAPH_HPP
#define MINNOC_GRAPH_UGRAPH_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "digraph.hpp"

namespace minnoc::graph {

/**
 * Undirected simple graph with adjacency-matrix-backed O(1) edge queries
 * and adjacency lists for iteration. Self-loops and parallel edges are
 * rejected (a communication never conflicts with itself).
 */
class Ugraph
{
  public:
    Ugraph() = default;

    /** Construct with @p n isolated vertices. */
    explicit Ugraph(std::size_t n);

    /** Add one vertex and return its id. */
    NodeId addNode();

    /**
     * Add an undirected edge {a, b}. Adding an existing edge or a
     * self-loop is a no-op that returns false.
     */
    bool addEdge(NodeId a, NodeId b);

    /** True if the edge {a, b} is present. */
    bool hasEdge(NodeId a, NodeId b) const;

    std::size_t numNodes() const { return _adj.size(); }
    std::size_t numEdges() const { return _numEdges; }

    /** Neighbor list of @p n. */
    const std::vector<NodeId> &neighbors(NodeId n) const;

    /** Degree of @p n. */
    std::size_t degree(NodeId n) const { return neighbors(n).size(); }

    /** Maximum degree over all vertices (0 for the empty graph). */
    std::size_t maxDegree() const;

    /** True if every pair of vertices in @p verts is adjacent. */
    bool isClique(const std::vector<NodeId> &verts) const;

    /**
     * The complement-free "density" in [0,1]: edges / possible edges.
     * Returns 0 for graphs with fewer than two vertices.
     */
    double density() const;

    /** Human-readable dump for debugging. */
    std::string toString() const;

  private:
    void checkNode(NodeId n) const;
    std::size_t matrixIndex(NodeId a, NodeId b) const;

    std::vector<std::vector<NodeId>> _adj;
    std::vector<bool> _matrix; // lower-triangular packed adjacency
    std::size_t _numEdges = 0;
};

} // namespace minnoc::graph

#endif // MINNOC_GRAPH_UGRAPH_HPP
