/**
 * @file
 * Graph coloring algorithms for conflict graphs.
 *
 * The design methodology (Section 3) needs two flavors of coloring:
 *  - fast lower-bound estimation during partitioning (done in
 *    core/fast_color using clique knowledge), and
 *  - formal coloring at finalization to fix the exact number of links
 *    per pipe (this module).
 *
 * Provided here: greedy largest-first, DSATUR, exact branch-and-bound
 * (practical for the small conflict graphs pipes produce), a
 * clique-based lower bound, and verification helpers.
 */

#ifndef MINNOC_GRAPH_COLORING_HPP
#define MINNOC_GRAPH_COLORING_HPP

#include <cstdint>
#include <vector>

#include "ugraph.hpp"

namespace minnoc::graph {

/** A proper vertex coloring: color index per vertex. */
struct Coloring
{
    std::vector<std::uint32_t> color;
    std::uint32_t numColors = 0;
};

/** True if @p c assigns distinct colors to every adjacent pair in @p g. */
bool isProperColoring(const Ugraph &g, const Coloring &c);

/**
 * Greedy coloring in largest-degree-first order (Welsh-Powell).
 * Uses at most maxDegree+1 colors.
 */
Coloring greedyColoring(const Ugraph &g);

/**
 * DSATUR coloring (Brelaz): picks the vertex with the highest color
 * saturation next. Typically tighter than plain greedy and exact on
 * bipartite graphs.
 */
Coloring dsaturColoring(const Ugraph &g);

/**
 * Exact chromatic-number coloring via branch-and-bound seeded with the
 * DSATUR solution. Exponential worst case; intended for the small
 * conflict graphs (tens of vertices) produced per pipe.
 *
 * @param nodeBudget abort knob: maximum number of search-tree nodes to
 *        expand before falling back to the DSATUR bound. 0 = unlimited.
 * @param wasExact optional out-flag: set false when the budget tripped.
 */
Coloring exactColoring(const Ugraph &g, std::uint64_t nodeBudget = 0,
                       bool *wasExact = nullptr);

/**
 * A greedy maximal clique grown from the highest-degree vertex; its size
 * is a lower bound on the chromatic number.
 */
std::vector<NodeId> greedyClique(const Ugraph &g);

/** Size of greedyClique: cheap chromatic-number lower bound. */
std::uint32_t cliqueLowerBound(const Ugraph &g);

} // namespace minnoc::graph

#endif // MINNOC_GRAPH_COLORING_HPP
