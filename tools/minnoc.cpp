/**
 * @file
 * minnoc command-line tool: generate traces, analyze patterns, design
 * networks, and simulate — the whole methodology pipeline from a
 * shell.
 *
 *   minnoc gen --bench CG --ranks 16 [--iterations 3] --out cg.trace
 *   minnoc analyze cg.trace
 *   minnoc design cg.trace [--max-degree 5] --out cg.design
 *   minnoc show cg.design
 *   minnoc simulate cg.trace --network mesh|torus|crossbar|cg.design
 *   minnoc explore cg.trace [--degrees 4,5,6] [--out report.json]
 *   minnoc compare cg.trace            (all four networks, one table)
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "coh/coherence.hpp"
#include "core/design_io.hpp"
#include "dist/coordinator.hpp"
#include "dse/explorer.hpp"
#include "obs/metrics.hpp"
#include "obs/sim_observer.hpp"
#include "obs/trace_event.hpp"
#include "phase/evaluator.hpp"
#include "topo/dot.hpp"
#include "core/methodology.hpp"
#include "sim/fault.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "topo/power.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"
#include "trace/scale_patterns.hpp"
#include "trace/synthetic.hpp"
#include "serve/server.hpp"
#include "util/cancel.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace minnoc;
using cli::Args;

namespace {

/**
 * Ctrl-C plumbing for the long-running commands: the handler fires a
 * shared CancelToken (one relaxed store, async-signal-safe), the
 * pipeline unwinds at its next checkpoint with CancelledError, and the
 * command wrapper turns that into one clean line + exit 130 instead of
 * a half-written artifact or a hard kill.
 */
CancelToken gCliToken;

extern "C" void
onCliSignal(int)
{
    gCliToken.cancel(CancelReason::Shutdown);
}

void
installCliCancel()
{
    std::signal(SIGINT, onCliSignal);
    std::signal(SIGTERM, onCliSignal);
}

/** The serve daemon the signal handler asks to drain. */
serve::Server *gServer = nullptr;

extern "C" void
onServeSignal(int)
{
    if (gServer)
        gServer->requestStop(); // async-signal-safe
}

trace::Trace
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '", path, "'");
    return trace::Trace::load(in);
}

core::FinalizedDesign
loadDesignFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open design file '", path, "'");
    return core::loadDesign(in);
}

void
writeFileOrDie(const std::string &path, const std::string &content)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write '", path, "'");
    os << content;
}

/**
 * Honor the shared observability flags: dump the metrics registry to
 * --metrics-out (deterministic content, timing metrics excluded) and
 * the trace-event log to --chrome-trace (open in Perfetto /
 * chrome://tracing).
 */
void
exportObservability(const Args &args, const obs::MetricsRegistry &metrics,
                    const obs::TraceEventLog &traceLog)
{
    const auto metricsOut = args.get("metrics-out");
    if (!metricsOut.empty()) {
        writeFileOrDie(metricsOut, metrics.toJson());
        std::printf("wrote %s\n", metricsOut.c_str());
    }
    const auto traceOut = args.get("chrome-trace");
    if (!traceOut.empty()) {
        writeFileOrDie(traceOut, traceLog.toJson());
        std::printf("wrote %s (open in Perfetto or chrome://tracing)\n",
                    traceOut.c_str());
    }
}

/**
 * Per-worker accounting of a distributed run: --dist-report FILE gets
 * the status JSON (including the `worker_failed` array), and the human
 * stream gets one line per worker slot plus any failures.
 */
void
reportDistRun(const Args &args, const dist::DistStats &stats,
              const char *task, std::FILE *human)
{
    const auto out = args.get("dist-report");
    if (!out.empty()) {
        writeFileOrDie(out, stats.toJson(task));
        std::fprintf(human, "wrote %s\n", out.c_str());
    }
    for (std::uint32_t w = 0; w < stats.workers; ++w) {
        const bool isHost =
            w < stats.hostOf.size() && !stats.hostOf[w].empty();
        std::fprintf(
            human,
            "%s %s: %llu job(s), %llu cache hit(s), %.1f ms busy\n",
            isHost ? "host" : "worker",
            isHost ? stats.hostOf[w].c_str()
                   : std::to_string(w).c_str(),
            static_cast<unsigned long long>(stats.jobs[w]),
            static_cast<unsigned long long>(stats.cacheHits[w]),
            static_cast<double>(stats.wallUsSum[w]) / 1000.0);
    }
    for (const auto &f : stats.failures) {
        if (f.host.empty())
            std::fprintf(human,
                         "worker %u FAILED (%s), %zu job(s) requeued\n",
                         f.worker, f.reason.c_str(),
                         f.requeuedJobs.size());
        else
            std::fprintf(human,
                         "host %s FAILED (%s), %zu job(s) requeued\n",
                         f.host.c_str(), f.reason.c_str(),
                         f.requeuedJobs.size());
    }
}

/** Parse a comma-separated synthetic-pattern list ("neighbor,transpose"). */
std::vector<trace::Pattern>
parsePatternList(const std::string &spec)
{
    std::vector<trace::Pattern> patterns;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ','))
        patterns.push_back(trace::patternFromName(item));
    if (patterns.empty())
        fatal("flag --patterns: expected a comma-separated pattern list");
    return patterns;
}

/** The selected `--power` accounting tier (default: static). */
topo::PowerModel
powerFromArgs(const Args &args)
{
    topo::PowerModel model;
    const auto name = args.get("power", "static");
    const auto kind = topo::powerModelKindFromName(name);
    if (!kind)
        fatal("flag --power: expected 'static' or 'activity', got '",
              name, "'");
    model.kind = *kind;
    return model;
}

trace::Trace
genCoherence(const Args &args)
{
    coh::CoherenceConfig cfg;
    cfg.ranks = args.getU32("ranks", cfg.ranks);
    cfg.blocks = args.getU32("blocks", cfg.blocks);
    cfg.maxSharers = args.getU32("sharers", cfg.maxSharers);
    cfg.rounds = args.getU32("iterations", cfg.rounds);
    cfg.opsPerRankPerRound =
        args.getU32("ops", cfg.opsPerRankPerRound);
    cfg.blockBytes = args.getU64("bytes", cfg.blockBytes);
    cfg.seed = args.getU64("seed", cfg.seed);
    cfg.computeCycles = static_cast<std::int64_t>(args.getU64(
        "compute", static_cast<std::uint64_t>(cfg.computeCycles)));
    const auto home = args.get("home");
    if (!home.empty()) {
        const auto map = coh::homeMapFromName(home);
        if (!map)
            fatal("flag --home: expected 'interleaved' or "
                  "'first-touch', got '",
                  home, "'");
        cfg.homeMap = *map;
    }
    const auto mixText = args.get("mix");
    if (!mixText.empty()) {
        std::string error;
        const auto mix = coh::parseMix(mixText, error);
        if (!mix)
            fatal("flag --mix: ", error);
        cfg.mix = *mix;
    }
    return coh::coherenceTrace(cfg);
}

trace::Trace
genTrace(const Args &args)
{
    // The three pattern families are mutually exclusive; silently
    // preferring one over another hides a typoed invocation.
    const bool wantScale = !args.get("scale-pattern").empty();
    const bool wantPatterns = !args.get("patterns").empty();
    const bool wantCoherence = args.getU32("coherence", 0) != 0;
    if (static_cast<int>(wantScale) + static_cast<int>(wantPatterns) +
            static_cast<int>(wantCoherence) >
        1) {
        fatal("gen: --patterns, --scale-pattern and --coherence are "
              "mutually exclusive; pick one pattern family");
    }
    // --coherence switches to the directory-coherence traffic
    // generator: seeded MSI protocol expansion over sharing classes.
    if (wantCoherence)
        return genCoherence(args);
    // --scale-pattern switches to the scale-curve pattern family
    // (ring/transpose/neighbor/rail plus the CommBench-style fan and
    // dense group-to-group generators), one bulk-synchronous epoch per
    // iteration.
    const auto scale = args.get("scale-pattern");
    if (!scale.empty()) {
        const auto ranks = args.getU32("ranks", 64);
        const auto groupSize = args.getU32("group-size", 8);
        const auto rails = args.getU32("rails", 2);
        const auto bytes = args.getU64("bytes", 1024);
        const auto iterations = args.getU32("iterations", 1);
        const auto ks =
            trace::makeScalePattern(scale, ranks, groupSize, rails);
        return trace::traceFromCliques(
            ks, scale + "-" + std::to_string(ranks), bytes, iterations);
    }
    // --patterns switches to the multi-phase synthetic generator: one
    // bulk-synchronous epoch per listed pattern.
    const auto patterns = args.get("patterns");
    if (!patterns.empty()) {
        trace::PhaseShiftConfig pcfg;
        pcfg.ranks = args.getU32("ranks", pcfg.ranks);
        pcfg.itersPerPhase = args.getU32("iterations", pcfg.itersPerPhase);
        pcfg.seed = args.getU64("seed", pcfg.seed);
        return trace::phaseShift(parsePatternList(patterns), pcfg);
    }
    trace::NasConfig cfg;
    const auto bench = trace::benchmarkFromName(args.get("bench", "CG"));
    cfg.ranks = args.getU32("ranks", trace::largeConfigRanks(bench));
    cfg.iterations = args.getU32("iterations", 3);
    cfg.seed = args.getU32("seed", 1);
    return trace::generateBenchmark(bench, cfg);
}

int
cmdGen(const Args &args)
{
    const auto tr = genTrace(args);

    const auto out = args.get("out");
    if (out.empty()) {
        tr.save(std::cout);
    } else {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write '", out, "'");
        tr.save(os);
        std::printf("wrote %s: %u ranks, %zu messages\n", out.c_str(),
                    tr.numRanks(), tr.numSends());
    }
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    if (args.positional.empty())
        fatal("analyze: missing trace file");
    const auto tr = loadTrace(args.positional[0]);
    auto ks = trace::analyzeByCall(tr);
    const auto removed = ks.reduceToMaximum();
    std::printf("trace '%s': %u ranks, %zu messages, %u call sites\n",
                tr.name().c_str(), tr.numRanks(), tr.numSends(),
                tr.numCalls());
    std::printf("%zu contention periods (%zu dominated removed), %zu "
                "distinct comms, largest period %zu\n",
                ks.numCliques(), removed, ks.numComms(),
                ks.maxCliqueSize());
    if (args.get("verbose") == "1")
        std::printf("%s", ks.toString().c_str());
    return 0;
}

int
cmdDesign(const Args &args)
{
    if (args.positional.empty())
        fatal("design: missing trace file");
    const auto tr = loadTrace(args.positional[0]);
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree =
        args.getU32("max-degree", 5);
    mcfg.restarts = args.getU32("restarts", 16);
    mcfg.partitioner.seed = args.getU32("seed", 1);
    mcfg.threads = args.getU32("threads", 0);
    mcfg.partitioner.hierarchicalThreshold =
        args.getU32("hier-threshold", 64);
    mcfg.partitioner.hierarchicalLeaf = args.getU32("hier-leaf", 8);

    obs::MetricsRegistry metrics;
    obs::TraceEventLog traceLog;
    if (args.has("metrics-out"))
        mcfg.metrics = &metrics;
    if (args.has("chrome-trace"))
        mcfg.traceLog = &traceLog;

    const auto outcome =
        core::runMethodology(trace::analyzeByCall(tr), mcfg);
    exportObservability(args, metrics, traceLog);
    std::printf("design: %s\n", outcome.summary().c_str());
    if (!outcome.violations.empty()) {
        warn("design is NOT contention-free (", outcome.violations.size(),
             " residual pairs)");
    }

    const auto out = args.get("out");
    if (out.empty()) {
        core::saveDesign(outcome.design, std::cout);
    } else {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write '", out, "'");
        core::saveDesign(outcome.design, os);
        std::printf("wrote %s\n", out.c_str());
    }
    return outcome.constraintsMet && outcome.violations.empty() ? 0 : 2;
}

int
cmdShow(const Args &args)
{
    if (args.positional.empty())
        fatal("show: missing design file");
    const auto design = loadDesignFile(args.positional[0]);
    std::printf("%s", design.toString().c_str());
    const auto plan = topo::planFloor(design);
    const auto [meshSw, meshLk] = topo::meshAreas(design.numProcs);
    std::printf("floorplanned areas: switch %u (mesh %u), link %u "
                "(mesh %u)\n",
                plan.switchArea, meshSw,
                plan.linkArea + plan.procLinkArea, meshLk);
    return 0;
}

topo::BuiltNetwork
buildNamedNetwork(const std::string &name, std::uint32_t ranks)
{
    if (name == "mesh")
        return topo::buildMesh(ranks);
    if (name == "torus")
        return topo::buildTorus(ranks);
    if (name == "crossbar")
        return topo::buildCrossbar(ranks);
    // Otherwise: a design file.
    const auto design = loadDesignFile(name);
    if (design.numProcs != ranks)
        fatal("design '", name, "' is for ", design.numProcs,
              " procs but the trace has ", ranks);
    const auto plan = topo::planFloor(design);
    return topo::buildFromDesign(design, plan);
}

void
printResult(const char *name, const topo::BuiltNetwork &net,
            const sim::SimResult &res, bool faulty,
            const topo::PowerModel &power = {})
{
    const auto energy = topo::computeEnergy(
        *net.topo, res.linkFlits, res.execTime, res.activity, power);
    std::printf("%-10s exec=%lld comm=%.0f lat=%.1f hops=%.2f "
                "util(max)=%.3f energy=%.0f deadlocks=%u\n",
                name, static_cast<long long>(res.execTime),
                res.commTimeMean(), res.avgPacketLatency,
                res.avgPacketHops, res.maxLinkUtilization,
                energy.total(), res.deadlockRecoveries);
    if (faulty) {
        std::printf("           faults: failed_links=%u "
                    "disconnected_pairs=%u corrupted_flits=%llu "
                    "retransmissions=%llu dropped=%llu recvs_lost=%llu "
                    "delivered_fraction=%.4f latency_inflation=%.3f\n",
                    res.failedLinks, res.disconnectedPairs,
                    static_cast<unsigned long long>(res.corruptedFlits),
                    static_cast<unsigned long long>(res.retransmissions),
                    static_cast<unsigned long long>(res.packetsDropped),
                    static_cast<unsigned long long>(res.recvsLost),
                    res.deliveredFraction, res.latencyInflation);
        for (const auto &[s, d] : res.undeliverableChannels)
            std::printf("           undeliverable channel: %u -> %u\n", s,
                        d);
    }
}

void
printRun(const char *name, const trace::Trace &tr,
         const topo::BuiltNetwork &net, const topo::PowerModel &power)
{
    printResult(name, net, sim::runTrace(tr, *net.topo, *net.routing),
                false, power);
}

/** Parse a comma-separated link-id list ("3,17,42"). */
std::vector<topo::LinkId>
parseLinkList(const std::string &spec)
{
    std::vector<topo::LinkId> ids;
    if (spec.empty())
        return ids;
    for (const auto v :
         cli::parseU32List("flag --fail-link-ids", spec))
        ids.push_back(static_cast<topo::LinkId>(v));
    return ids;
}

int
cmdSimulate(const Args &args)
{
    if (args.positional.empty())
        fatal("simulate: missing trace file");
    const auto tr = loadTrace(args.positional[0]);
    const auto name = args.get("network", "mesh");
    const auto net = buildNamedNetwork(name, tr.numRanks());

    sim::SimConfig scfg;
    scfg.maxRecoveries = args.getU32("max-recoveries", scfg.maxRecoveries);
    scfg.laxSyncSlack = static_cast<sim::Cycle>(
        args.getU64("lax-sync", 0));
    installCliCancel();
    scfg.cancel = &gCliToken;

    sim::FaultConfig fcfg;
    fcfg.randomFailLinks = args.getU32("fail-links", 0);
    fcfg.failLinks = parseLinkList(args.get("fail-link-ids"));
    fcfg.flitErrorRate = args.getDouble("flit-error-rate", 0.0);
    fcfg.seed = args.getU64("fault-seed", 1);
    fcfg.failAtCycle = static_cast<sim::Cycle>(args.getU64("fail-at", 0));
    fcfg.maxRetransmits =
        args.getU32("max-retransmits", fcfg.maxRetransmits);

    const bool faulty = fcfg.randomFailLinks > 0 ||
                        !fcfg.failLinks.empty() ||
                        fcfg.flitErrorRate > 0.0;

    const bool observe =
        args.has("metrics-out") || args.has("chrome-trace");
    obs::SimObserver observer;
    obs::SimObserver *op = observe ? &observer : nullptr;
    sim::SimResult res;
    try {
        res = faulty
                  ? sim::runTrace(tr, *net.topo, *net.routing, scfg,
                                  fcfg, op)
                  : sim::runTrace(tr, *net.topo, *net.routing, scfg,
                                  op);
    } catch (const CancelledError &) {
        std::fprintf(stderr, "simulate: interrupted, no results\n");
        return 130;
    }
    if (observe) {
        obs::MetricsRegistry metrics;
        obs::TraceEventLog traceLog;
        observer.exportTo(metrics);
        observer.exportTrace(traceLog);
        exportObservability(args, metrics, traceLog);
    }
    printResult(name.c_str(), net, res, faulty, powerFromArgs(args));
    return 0;
}

int
cmdDot(const Args &args)
{
    if (args.positional.empty())
        fatal("dot: missing design file");
    const auto design = loadDesignFile(args.positional[0]);
    const auto out = args.get("out");
    if (out.empty()) {
        topo::writeDesignDot(design, std::cout);
    } else {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write '", out, "'");
        topo::writeDesignDot(design, os);
        std::printf("wrote %s (render with: dot -Tpng -O %s)\n",
                    out.c_str(), out.c_str());
    }
    return 0;
}

int
cmdCompare(const Args &args)
{
    if (args.positional.empty())
        fatal("compare: missing trace file");
    const auto tr = loadTrace(args.positional[0]);

    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree =
        args.getU32("max-degree", 5);
    mcfg.threads = args.getU32("threads", 0);
    const auto outcome =
        core::runMethodology(trace::analyzeByCall(tr), mcfg);
    const auto plan = topo::planFloor(outcome.design);
    const auto generated = topo::buildFromDesign(outcome.design, plan);

    const auto power = powerFromArgs(args);
    printRun("crossbar", tr, topo::buildCrossbar(tr.numRanks()), power);
    printRun("mesh", tr, topo::buildMesh(tr.numRanks()), power);
    printRun("torus", tr, topo::buildTorus(tr.numRanks()), power);
    printRun("generated", tr, generated, power);
    return 0;
}

int
cmdExplore(const Args &args)
{
    if (args.positional.empty())
        fatal("explore: missing trace file");
    const auto tr = loadTrace(args.positional[0]);

    dse::ExploreConfig cfg;
    cfg.grid.maxDegrees = args.getU32List("degrees", cfg.grid.maxDegrees);
    cfg.grid.restarts = args.getU32List("restarts", cfg.grid.restarts);
    cfg.grid.seeds = args.getU64List("seeds", cfg.grid.seeds);
    cfg.grid.vcs = args.getU32List("vcs", cfg.grid.vcs);
    cfg.grid.unidirectional =
        args.getU32List("unidirectional", cfg.grid.unidirectional);
    for (const auto u : cfg.grid.unidirectional) {
        if (u > 1)
            fatal("flag --unidirectional: values must be 0 or 1, got ",
                  u);
    }
    cfg.grid.vcDepth = args.getU32("vc-depth", cfg.grid.vcDepth);
    cfg.grid.phaseWindows =
        args.getU32List("phase-windows", cfg.grid.phaseWindows);
    cfg.phaseReconfigCost = static_cast<sim::Cycle>(args.getU64(
        "reconfig-cost",
        static_cast<std::uint64_t>(cfg.phaseReconfigCost)));
    cfg.threads = args.getU32("threads", 0);
    cfg.cacheDir = args.get("cache-dir");
    cfg.useCache = args.getU32("cache", 1) != 0;
    cfg.power = powerFromArgs(args);

    obs::MetricsRegistry metrics;
    obs::TraceEventLog traceLog;
    if (args.has("metrics-out"))
        cfg.metrics = &metrics;
    if (args.has("chrome-trace"))
        cfg.traceLog = &traceLog;

    installCliCancel();
    cfg.cancel = &gCliToken;

    // --workers N forks N worker processes sharing the disk cache;
    // --hosts adds remote `minnoc serve` daemons as extra lanes. Any
    // mix yields a report byte-identical to the in-process sweep.
    const std::uint32_t workers = args.getU32("workers", 0);
    const auto hosts = dist::parseHostList(args.get("hosts"));
    const bool distributed = workers > 0 || !hosts.empty();
    dist::DistStats distStats;
    dse::ExploreReport report;
    try {
        if (distributed) {
            dist::DistOptions dopt;
            dopt.workers = workers;
            dopt.hosts = hosts;
            dopt.workerTimeoutMs = static_cast<std::int64_t>(
                args.getU64("worker-timeout-ms", 600'000));
            report = dist::exploreDistributed(tr, cfg, dopt, &distStats);
        } else {
            report = dse::explore(tr, cfg);
        }
    } catch (const CancelledError &) {
        std::fprintf(stderr,
                     "explore: interrupted, partial sweep discarded "
                     "(finished jobs stay cached)\n");
        return 130;
    }
    exportObservability(args, metrics, traceLog);
    const auto json = report.toJson();

    // JSON is the machine artifact; keep the human summary off its
    // stream so `minnoc explore t | jq .` stays parseable.
    const auto out = args.get("out");
    std::FILE *human = stdout;
    if (out.empty()) {
        std::fputs(json.c_str(), stdout);
        human = stderr;
    } else {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write '", out, "'");
        os << json;
        std::fprintf(human, "wrote %s\n", out.c_str());
    }
    std::fprintf(human, "explored %s-%u: %zu points, %zu on frontier\n",
                 report.pattern.c_str(), report.ranks,
                 report.points.size(), report.frontier.size());
    std::fputs(report.summaryTable().c_str(), human);
    const auto total = report.cacheHits + report.cacheMisses;
    std::fprintf(human,
                 "cache: %zu hits, %zu misses over %zu points "
                 "(%.1f%% hit rate)\n",
                 report.cacheHits, report.cacheMisses, total,
                 total ? 100.0 * static_cast<double>(report.cacheHits) /
                             static_cast<double>(total)
                       : 0.0);
    if (distributed)
        reportDistRun(args, distStats, "explore", human);
    return 0;
}

int
cmdPhases(const Args &args)
{
    if (args.positional.empty())
        fatal("phases: missing trace file");
    const auto tr = loadTrace(args.positional[0]);

    phase::PhaseEvalConfig cfg;
    cfg.segmenter.windowMessages =
        args.getU32("window", cfg.segmenter.windowMessages);
    cfg.segmenter.mergeThreshold =
        args.getDouble("threshold", cfg.segmenter.mergeThreshold);
    cfg.segmenter.minPhaseWindows =
        args.getU32("min-phase-windows", cfg.segmenter.minPhaseWindows);
    cfg.reconfigCost = static_cast<sim::Cycle>(
        args.getU64("reconfig-cost",
                    static_cast<std::uint64_t>(cfg.reconfigCost)));
    cfg.methodology.partitioner.constraints.maxDegree =
        args.getU32("max-degree", 5);
    cfg.methodology.restarts = args.getU32("restarts", 16);
    cfg.methodology.partitioner.seed = args.getU32("seed", 1);
    cfg.threads = args.getU32("threads", 0);
    cfg.power = powerFromArgs(args);

    obs::MetricsRegistry metrics;
    obs::TraceEventLog traceLog;
    if (args.has("metrics-out"))
        cfg.metrics = &metrics;
    if (args.has("chrome-trace"))
        cfg.traceLog = &traceLog;

    installCliCancel();
    cfg.methodology.cancel = &gCliToken;
    cfg.sim.cancel = &gCliToken;

    // --workers N farms the per-phase standalone syntheses out to
    // forked workers; --hosts adds remote `minnoc serve` daemons as
    // extra lanes. The merged report is byte-identical to the
    // in-process evaluation.
    const std::uint32_t workers = args.getU32("workers", 0);
    const auto hosts = dist::parseHostList(args.get("hosts"));
    const bool distributed = workers > 0 || !hosts.empty();
    dist::DistStats distStats;
    phase::PhaseReport report;
    try {
        if (distributed) {
            dist::DistOptions dopt;
            dopt.workers = workers;
            dopt.hosts = hosts;
            dopt.workerTimeoutMs = static_cast<std::int64_t>(
                args.getU64("worker-timeout-ms", 600'000));
            report =
                dist::evaluatePhasesDistributed(tr, cfg, dopt, &distStats);
        } else {
            report = phase::evaluatePhases(tr, cfg);
        }
    } catch (const CancelledError &) {
        std::fprintf(stderr,
                     "phases: interrupted, no report written\n");
        return 130;
    }
    exportObservability(args, metrics, traceLog);
    const auto json = report.toJson();

    // JSON is the machine artifact; keep the human summary off its
    // stream so `minnoc phases t | jq .` stays parseable.
    const auto out = args.get("out");
    std::FILE *human = stdout;
    if (out.empty()) {
        std::fputs(json.c_str(), stdout);
        human = stderr;
    } else {
        writeFileOrDie(out, json);
        std::fprintf(human, "wrote %s\n", out.c_str());
    }
    std::fprintf(human, "phases %s-%u:\n", report.pattern.c_str(),
                 report.ranks);
    std::fputs(report.summaryTable().c_str(), human);
    if (distributed)
        reportDistRun(args, distStats, "phases", human);
    std::size_t unionViolations = 0;
    for (const auto v : report.unionPhaseViolations)
        unionViolations += v;
    if (unionViolations)
        warn("union design is NOT contention-free against the phase "
             "cliques (",
             unionViolations, " residual pairs)");
    return 0;
}

int
cmdServe(const Args &args)
{
    serve::ServerConfig cfg;
    cfg.socketPath = args.get("socket");
    if (args.has("port"))
        cfg.port = static_cast<int>(args.getU32("port", 0));
    if (cfg.socketPath.empty() && cfg.port < 0)
        fatal("serve: need --socket PATH or --port N");
    cfg.workers = args.getU32("workers", cfg.workers);
    cfg.queueCapacity = args.getU32(
        "queue", static_cast<std::uint32_t>(cfg.queueCapacity));
    cfg.defaultDeadlineMs = static_cast<std::int64_t>(args.getU64(
        "deadline-ms",
        static_cast<std::uint64_t>(cfg.defaultDeadlineMs)));
    cfg.maxDeadlineMs = static_cast<std::int64_t>(args.getU64(
        "max-deadline-ms",
        static_cast<std::uint64_t>(cfg.maxDeadlineMs)));
    cfg.drainMs = static_cast<std::int64_t>(args.getU64(
        "drain-ms", static_cast<std::uint64_t>(cfg.drainMs)));
    cfg.idleTimeoutMs = static_cast<std::int64_t>(args.getU64(
        "idle-timeout-ms",
        static_cast<std::uint64_t>(cfg.idleTimeoutMs)));
    cfg.lruCapacity = args.getU32(
        "lru", static_cast<std::uint32_t>(cfg.lruCapacity));
    cfg.cacheDir = args.get("cache-dir");
    cfg.useCache = args.getU32("cache", 1) != 0;
    cfg.innerThreads = args.getU32("threads", 0);
    cfg.metricsOut = args.get("metrics-out");

    const auto server = std::make_unique<serve::Server>(cfg);
    std::string error;
    if (!server->start(error))
        fatal("serve: ", error);
    gServer = server.get();
    std::signal(SIGINT, onServeSignal);
    std::signal(SIGTERM, onServeSignal);
    // Never SIGPIPE on a vanished client (send already uses
    // MSG_NOSIGNAL; this covers any stray stdio on a closed pipe).
    std::signal(SIGPIPE, SIG_IGN);

    if (!cfg.socketPath.empty())
        std::fprintf(stderr, "serving on unix socket %s\n",
                     cfg.socketPath.c_str());
    else
        std::fprintf(stderr, "serving on 127.0.0.1:%d\n",
                     server->boundPort());
    server->serveForever();
    gServer = nullptr;
    std::fprintf(stderr, "serve: drained and stopped\n");
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: minnoc <command> [args]   (flags accept --k v and --k=v)\n"
        "  gen      --bench BT|CG|FFT|MG|SP --ranks N [--iterations I]\n"
        "           [--seed S] [--out FILE]\n"
        "           [--patterns neighbor,transpose,hotspot]\n"
        "           (--patterns generates a multi-phase synthetic\n"
        "           workload instead: one epoch per listed pattern)\n"
        "           [--scale-pattern ring|transpose|neighbor|rail|\n"
        "            fan_uni|fan_bi|fan_omni|dense_uni|dense_bi|\n"
        "            dense_omni] [--group-size G] [--rails R]\n"
        "           [--bytes B]\n"
        "           (CommBench-style single-pattern trace at scale;\n"
        "           fan/dense are group-to-group collectives)\n"
        "           [--coherence 1] [--blocks B] [--sharers S]\n"
        "           [--mix private:0.4,read_shared:0.3,...]\n"
        "           [--home interleaved|first-touch] [--ops O]\n"
        "           [--compute C]\n"
        "           (--coherence generates sparse-directory MSI\n"
        "           traffic instead: GetS/GetX, invalidation fan-out,\n"
        "           acks and writebacks over seeded sharing classes;\n"
        "           the three pattern families are mutually\n"
        "           exclusive)\n"
        "  analyze  TRACE [--verbose 1]\n"
        "  design   TRACE [--max-degree D] [--restarts R] [--out FILE]\n"
        "           [--threads N]  (0 = hardware concurrency; any N\n"
        "           yields the same design)\n"
        "           [--hier-threshold N] [--hier-leaf L]\n"
        "           (above N ranks the scalable hierarchical\n"
        "           partitioner engages; 0 forces the flat paper path)\n"
        "           [--metrics-out FILE] [--chrome-trace FILE]\n"
        "  show     DESIGN\n"
        "  simulate TRACE --network mesh|torus|crossbar|DESIGN\n"
        "           [--fail-links N] [--fail-link-ids 3,17]\n"
        "           [--fail-at CYCLE] [--flit-error-rate P]\n"
        "           [--fault-seed S] [--max-retransmits R]\n"
        "           [--max-recoveries R] [--lax-sync SLACK]\n"
        "           [--power static|activity]\n"
        "           [--metrics-out FILE] [--chrome-trace FILE]\n"
        "           (metrics-out: deterministic JSON telemetry dump;\n"
        "           chrome-trace: Perfetto-loadable timeline;\n"
        "           lax-sync: bounded-slack credit sync, cycles of\n"
        "           allowed credit lag; 0 = strict, the default;\n"
        "           power: static per-hop model or activity-based\n"
        "           per-event accounting)\n"
        "  compare  TRACE [--max-degree D] [--power static|activity]\n"
        "  explore  TRACE [--degrees 4,5,6] [--restarts 8]\n"
        "           [--seeds 1] [--vcs 2,3] [--unidirectional 0,1]\n"
        "           [--vc-depth D] [--phase-windows 0,64]\n"
        "           [--reconfig-cost C] [--threads N] [--cache-dir DIR]\n"
        "           [--cache 0|1] [--power static|activity] [--out FILE]\n"
        "           [--metrics-out FILE] [--chrome-trace FILE]\n"
        "           [--workers N] [--hosts HOST:PORT,...]\n"
        "           [--worker-timeout-ms MS] [--dist-report FILE]\n"
        "           (design-space sweep -> Pareto frontier JSON;\n"
        "           results are content-cached and byte-identical at\n"
        "           any --threads value; phase-windows 0 = classic\n"
        "           pipeline, N = time-multiplexed phase networks;\n"
        "           workers N forks N processes sharing the disk\n"
        "           cache -- same bytes as --workers 0; hosts adds\n"
        "           remote `minnoc serve` daemons as job backends,\n"
        "           same bytes at any host/worker mix)\n"
        "  phases   TRACE [--window N] [--threshold T]\n"
        "           [--min-phase-windows W] [--reconfig-cost C]\n"
        "           [--max-degree D] [--restarts R] [--seed S]\n"
        "           [--threads N] [--power static|activity] [--out FILE]\n"
        "           [--metrics-out FILE] [--chrome-trace FILE]\n"
        "           [--workers N] [--hosts HOST:PORT,...]\n"
        "           [--worker-timeout-ms MS] [--dist-report FILE]\n"
        "           (segment the trace into temporal phases and compare\n"
        "           monolithic vs union vs time-multiplexed designs;\n"
        "           the JSON report is byte-identical at any --threads\n"
        "           and at any --workers/--hosts mix)\n"
        "  serve    --socket PATH | --port N   (0 = ephemeral port)\n"
        "           [--workers W] [--queue Q] [--deadline-ms D]\n"
        "           [--max-deadline-ms M] [--drain-ms MS]\n"
        "           [--idle-timeout-ms MS] [--lru N] [--cache-dir DIR]\n"
        "           [--cache 0|1] [--threads T] [--metrics-out FILE]\n"
        "           (synthesis-as-a-service daemon: newline-delimited\n"
        "           JSON requests, bounded queue with queue_full\n"
        "           backpressure, per-request deadlines, two-tier\n"
        "           response cache; SIGTERM/SIGINT drains gracefully)\n"
        "  dot      DESIGN [--out FILE]        (graphviz export)\n");
}

/** Valid flags per subcommand (anything else is an error). */
const std::map<std::string, std::vector<std::string>> kCommandFlags = {
    {"gen",
     {"bench", "ranks", "iterations", "seed", "out", "patterns",
      "scale-pattern", "group-size", "rails", "bytes", "coherence",
      "blocks", "sharers", "mix", "home", "ops", "compute"}},
    {"analyze", {"verbose"}},
    {"design",
     {"max-degree", "restarts", "seed", "out", "threads",
      "hier-threshold", "hier-leaf", "metrics-out", "chrome-trace"}},
    {"show", {}},
    {"simulate",
     {"network", "fail-links", "fail-link-ids", "fail-at",
      "flit-error-rate", "fault-seed", "max-retransmits",
      "max-recoveries", "lax-sync", "power", "metrics-out",
      "chrome-trace"}},
    {"compare", {"max-degree", "threads", "power"}},
    {"explore",
     {"degrees", "restarts", "seeds", "vcs", "unidirectional",
      "vc-depth", "phase-windows", "reconfig-cost", "threads",
      "cache-dir", "cache", "power", "out", "metrics-out",
      "chrome-trace", "workers", "hosts", "worker-timeout-ms",
      "dist-report"}},
    {"phases",
     {"window", "threshold", "min-phase-windows", "reconfig-cost",
      "max-degree", "restarts", "seed", "threads", "power", "out",
      "metrics-out", "chrome-trace", "workers", "hosts",
      "worker-timeout-ms", "dist-report"}},
    {"serve",
     {"socket", "port", "workers", "queue", "deadline-ms",
      "max-deadline-ms", "drain-ms", "idle-timeout-ms", "lru",
      "cache-dir", "cache", "threads", "metrics-out"}},
    {"dot", {"out"}},
};

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    const auto flagsIt = kCommandFlags.find(cmd);
    if (flagsIt == kCommandFlags.end()) {
        usage();
        return 1;
    }
    const Args args = Args::parse(argc, argv, 2, flagsIt->second);
    if (cmd == "gen")
        return cmdGen(args);
    if (cmd == "analyze")
        return cmdAnalyze(args);
    if (cmd == "design")
        return cmdDesign(args);
    if (cmd == "show")
        return cmdShow(args);
    if (cmd == "simulate")
        return cmdSimulate(args);
    if (cmd == "compare")
        return cmdCompare(args);
    if (cmd == "explore")
        return cmdExplore(args);
    if (cmd == "phases")
        return cmdPhases(args);
    if (cmd == "serve")
        return cmdServe(args);
    return cmdDot(args);
}
