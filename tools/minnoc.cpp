/**
 * @file
 * minnoc command-line tool: generate traces, analyze patterns, design
 * networks, and simulate — the whole methodology pipeline from a
 * shell.
 *
 *   minnoc gen --bench CG --ranks 16 [--iterations 3] --out cg.trace
 *   minnoc analyze cg.trace
 *   minnoc design cg.trace [--max-degree 5] --out cg.design
 *   minnoc show cg.design
 *   minnoc simulate cg.trace --network mesh|torus|crossbar|cg.design
 *   minnoc compare cg.trace            (all four networks, one table)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/design_io.hpp"
#include "topo/dot.hpp"
#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "topo/power.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"
#include "util/log.hpp"

using namespace minnoc;

namespace {

/** Minimal flag parser: --key value pairs plus positionals. */
struct Args
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> flags;

    static Args
    parse(int argc, char **argv, int start)
    {
        Args args;
        for (int i = start; i < argc; ++i) {
            const std::string tok = argv[i];
            if (tok.rfind("--", 0) == 0) {
                if (i + 1 >= argc)
                    fatal("flag ", tok, " needs a value");
                args.flags[tok.substr(2)] = argv[++i];
            } else {
                args.positional.push_back(tok);
            }
        }
        return args;
    }

    std::string
    get(const std::string &key, const std::string &def = "") const
    {
        const auto it = flags.find(key);
        return it == flags.end() ? def : it->second;
    }

    std::uint32_t
    getU32(const std::string &key, std::uint32_t def) const
    {
        const auto it = flags.find(key);
        return it == flags.end()
                   ? def
                   : static_cast<std::uint32_t>(
                         std::strtoul(it->second.c_str(), nullptr, 10));
    }
};

trace::Trace
loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file '", path, "'");
    return trace::Trace::load(in);
}

core::FinalizedDesign
loadDesignFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open design file '", path, "'");
    return core::loadDesign(in);
}

int
cmdGen(const Args &args)
{
    trace::NasConfig cfg;
    const auto bench = trace::benchmarkFromName(args.get("bench", "CG"));
    cfg.ranks = args.getU32("ranks", trace::largeConfigRanks(bench));
    cfg.iterations = args.getU32("iterations", 3);
    cfg.seed = args.getU32("seed", 1);
    const auto tr = trace::generateBenchmark(bench, cfg);

    const auto out = args.get("out");
    if (out.empty()) {
        tr.save(std::cout);
    } else {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write '", out, "'");
        tr.save(os);
        std::printf("wrote %s: %u ranks, %zu messages\n", out.c_str(),
                    tr.numRanks(), tr.numSends());
    }
    return 0;
}

int
cmdAnalyze(const Args &args)
{
    if (args.positional.empty())
        fatal("analyze: missing trace file");
    const auto tr = loadTrace(args.positional[0]);
    auto ks = trace::analyzeByCall(tr);
    const auto removed = ks.reduceToMaximum();
    std::printf("trace '%s': %u ranks, %zu messages, %u call sites\n",
                tr.name().c_str(), tr.numRanks(), tr.numSends(),
                tr.numCalls());
    std::printf("%zu contention periods (%zu dominated removed), %zu "
                "distinct comms, largest period %zu\n",
                ks.numCliques(), removed, ks.numComms(),
                ks.maxCliqueSize());
    if (args.get("verbose") == "1")
        std::printf("%s", ks.toString().c_str());
    return 0;
}

int
cmdDesign(const Args &args)
{
    if (args.positional.empty())
        fatal("design: missing trace file");
    const auto tr = loadTrace(args.positional[0]);
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree =
        args.getU32("max-degree", 5);
    mcfg.restarts = args.getU32("restarts", 16);
    mcfg.partitioner.seed = args.getU32("seed", 1);

    const auto outcome =
        core::runMethodology(trace::analyzeByCall(tr), mcfg);
    std::printf("design: %s\n", outcome.summary().c_str());
    if (!outcome.violations.empty()) {
        warn("design is NOT contention-free (", outcome.violations.size(),
             " residual pairs)");
    }

    const auto out = args.get("out");
    if (out.empty()) {
        core::saveDesign(outcome.design, std::cout);
    } else {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write '", out, "'");
        core::saveDesign(outcome.design, os);
        std::printf("wrote %s\n", out.c_str());
    }
    return outcome.constraintsMet && outcome.violations.empty() ? 0 : 2;
}

int
cmdShow(const Args &args)
{
    if (args.positional.empty())
        fatal("show: missing design file");
    const auto design = loadDesignFile(args.positional[0]);
    std::printf("%s", design.toString().c_str());
    const auto plan = topo::planFloor(design);
    const auto [meshSw, meshLk] = topo::meshAreas(design.numProcs);
    std::printf("floorplanned areas: switch %u (mesh %u), link %u "
                "(mesh %u)\n",
                plan.switchArea, meshSw,
                plan.linkArea + plan.procLinkArea, meshLk);
    return 0;
}

topo::BuiltNetwork
buildNamedNetwork(const std::string &name, std::uint32_t ranks)
{
    if (name == "mesh")
        return topo::buildMesh(ranks);
    if (name == "torus")
        return topo::buildTorus(ranks);
    if (name == "crossbar")
        return topo::buildCrossbar(ranks);
    // Otherwise: a design file.
    const auto design = loadDesignFile(name);
    if (design.numProcs != ranks)
        fatal("design '", name, "' is for ", design.numProcs,
              " procs but the trace has ", ranks);
    const auto plan = topo::planFloor(design);
    return topo::buildFromDesign(design, plan);
}

void
printRun(const char *name, const trace::Trace &tr,
         const topo::BuiltNetwork &net)
{
    const auto res = sim::runTrace(tr, *net.topo, *net.routing);
    const auto energy = topo::computeEnergy(*net.topo, res.linkFlits,
                                            res.execTime);
    std::printf("%-10s exec=%lld comm=%.0f lat=%.1f hops=%.2f "
                "util(max)=%.3f energy=%.0f deadlocks=%u\n",
                name, static_cast<long long>(res.execTime),
                res.commTimeMean(), res.avgPacketLatency,
                res.avgPacketHops, res.maxLinkUtilization,
                energy.total(), res.deadlockRecoveries);
}

int
cmdSimulate(const Args &args)
{
    if (args.positional.empty())
        fatal("simulate: missing trace file");
    const auto tr = loadTrace(args.positional[0]);
    const auto name = args.get("network", "mesh");
    const auto net = buildNamedNetwork(name, tr.numRanks());
    printRun(name.c_str(), tr, net);
    return 0;
}

int
cmdDot(const Args &args)
{
    if (args.positional.empty())
        fatal("dot: missing design file");
    const auto design = loadDesignFile(args.positional[0]);
    const auto out = args.get("out");
    if (out.empty()) {
        topo::writeDesignDot(design, std::cout);
    } else {
        std::ofstream os(out);
        if (!os)
            fatal("cannot write '", out, "'");
        topo::writeDesignDot(design, os);
        std::printf("wrote %s (render with: dot -Tpng -O %s)\n",
                    out.c_str(), out.c_str());
    }
    return 0;
}

int
cmdCompare(const Args &args)
{
    if (args.positional.empty())
        fatal("compare: missing trace file");
    const auto tr = loadTrace(args.positional[0]);

    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree =
        args.getU32("max-degree", 5);
    const auto outcome =
        core::runMethodology(trace::analyzeByCall(tr), mcfg);
    const auto plan = topo::planFloor(outcome.design);
    const auto generated = topo::buildFromDesign(outcome.design, plan);

    printRun("crossbar", tr, topo::buildCrossbar(tr.numRanks()));
    printRun("mesh", tr, topo::buildMesh(tr.numRanks()));
    printRun("torus", tr, topo::buildTorus(tr.numRanks()));
    printRun("generated", tr, generated);
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: minnoc <command> [args]\n"
        "  gen      --bench BT|CG|FFT|MG|SP --ranks N [--iterations I]\n"
        "           [--seed S] [--out FILE]\n"
        "  analyze  TRACE [--verbose 1]\n"
        "  design   TRACE [--max-degree D] [--restarts R] [--out FILE]\n"
        "  show     DESIGN\n"
        "  simulate TRACE --network mesh|torus|crossbar|DESIGN\n"
        "  compare  TRACE [--max-degree D]\n"
        "  dot      DESIGN [--out FILE]        (graphviz export)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    const Args args = Args::parse(argc, argv, 2);
    if (cmd == "gen")
        return cmdGen(args);
    if (cmd == "analyze")
        return cmdAnalyze(args);
    if (cmd == "design")
        return cmdDesign(args);
    if (cmd == "show")
        return cmdShow(args);
    if (cmd == "simulate")
        return cmdSimulate(args);
    if (cmd == "compare")
        return cmdCompare(args);
    if (cmd == "dot")
        return cmdDot(args);
    usage();
    return 1;
}
