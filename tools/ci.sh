#!/usr/bin/env bash
# CI entry point: sanitized builds + full test suite + bench smoke.
#
# Usage: tools/ci.sh [build-dir]
#
# Three phases:
#  1. ASan + UBSan build tree running the full ctest suite.
#  2. TSan build tree running the concurrency-sensitive tests (thread
#     pool, parallel-restart determinism, Fast_Color cache under the
#     pool) — ASan and TSan cannot share a binary, hence the second
#     tree.
#  3. Release build tree running the partitioner_perf benchmark on one
#     small pattern as a smoke test; its JSON lands in the build dir.
#
# Any sanitizer report fails the run (halt_on_error / abort on UB).

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-asan}"
build_tsan="${build%-asan}-tsan"
build_bench="${build%-asan}-bench"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "=== phase 1: ASan + UBSan ==="
cmake -S "$repo" -B "$build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMINNOC_SANITIZE=ON
cmake --build "$build" -j "$jobs"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "=== phase 2: TSan (threaded subsystems) ==="
cmake -S "$repo" -B "$build_tsan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMINNOC_SANITIZE_THREAD=ON
cmake --build "$build_tsan" -j "$jobs" \
    --target test_thread_pool test_threads_determinism \
    test_fastcolor_diff
export TSAN_OPTIONS="halt_on_error=1"
"$build_tsan/tests/test_thread_pool"
"$build_tsan/tests/test_threads_determinism"
"$build_tsan/tests/test_fastcolor_diff"

echo "=== phase 3: Release bench smoke ==="
cmake -S "$repo" -B "$build_bench" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_bench" -j "$jobs" --target partitioner_perf
"$build_bench/bench/partitioner_perf" \
    --bench CG --ranks 8 --iterations 1 \
    --out "$build_bench/partitioner_perf.json"
