#!/usr/bin/env bash
# CI entry point: sanitized build + full test suite.
#
# Usage: tools/ci.sh [build-dir]
#
# Configures a dedicated build tree with MINNOC_SANITIZE=ON
# (ASan + UBSan), builds everything, and runs ctest. Any sanitizer
# report fails the run (halt_on_error / abort on UB).

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-asan}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -S "$repo" -B "$build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMINNOC_SANITIZE=ON
cmake --build "$build" -j "$jobs"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "$build" --output-on-failure -j "$jobs"
