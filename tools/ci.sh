#!/usr/bin/env bash
# CI entry point: sanitized builds + full test suite + bench smoke.
#
# Usage: tools/ci.sh [build-dir]
#
# Eleven phases:
#  1. ASan + UBSan build tree running the full ctest suite.
#  2. TSan build tree running the concurrency-sensitive tests (thread
#     pool, parallel-restart determinism, Fast_Color cache under the
#     pool) — ASan and TSan cannot share a binary, hence the second
#     tree.
#  3. Release build tree running the partitioner_perf benchmark on one
#     small pattern as a smoke test; its JSON lands in the build dir.
#  4. Explore cache smoke: a tiny DSE grid on CG-8 run twice against a
#     fresh cache dir under the build tree — the warm rerun must hit
#     the cache on every job (zero design recomputations) and its
#     frontier JSON must be byte-identical to the cold run's.
#  5. Observability: golden-design + metrics-determinism suites rerun
#     explicitly under ASan, sample metrics/Chrome-trace artifacts are
#     exported through the CLI, and the explore metrics dump is
#     compared byte-for-byte across thread counts.
#  6. Phase pipeline smoke: a synthetic phase-shift trace must segment
#     into >= 2 phases with a contention-free union design, the phases
#     report must be byte-identical across reruns and thread counts,
#     and the phase_gain bench emits its comparison JSON.
#  7. Serve robustness: the ASan/UBSan `minnoc serve` daemon is booted
#     on a unix socket and hammered by the serve_chaos harness (valid
#     traffic mixed with malformed, oversized, slow-writer and
#     disconnecting clients, a concurrent-duplicate dedup wave, and a
#     cache-corruption saboteur); the run must report zero crashes,
#     hangs or leaked in-flight jobs, SIGTERM must drain cleanly, and
#     the chaos JSON artifact lands in the build dir.
#  8. Scale-curve smoke: the hierarchical partitioner synthesizes
#     256-rank designs under ASan/UBSan within a wall-time budget,
#     every design Theorem-1-verified; the curve JSON lands in the
#     build dir.
#  9. Distributed explore + lax-sync smoke: `explore --workers 3`
#     under ASan must produce a frontier byte-identical to the
#     in-process run, a warm rerun against the merged shared cache
#     must hit on every job, the dist status JSON must report zero
#     worker failures, and the lax_sync bench must hold its
#     exactness/byte-identity gates; both JSON artifacts land in the
#     build dir.
# 10. Multi-host explore over `minnoc serve` (ASan): two loopback
#     daemons drive `explore --hosts`; the cold run must be
#     byte-identical to the in-process reference, a warm rerun must
#     hit every job on the daemon-side caches, and a third sweep with
#     one daemon SIGKILLed mid-run (wedged via the serve hang hook so
#     the kill is guaranteed to land mid-sweep) must still converge
#     byte-identical with the failure recorded in `host_failed` only;
#     the dist status artifacts land in the build dir.
# 11. Coherence stress smoke: the MSI traffic generator and per-phase
#     synthesis pipeline under ASan at small N within a wall-time
#     budget; the JSON must be byte-identical across thread counts,
#     every design Theorem-1-verified, the replay deadlock-free; the
#     artifact lands in the build dir.
#
# Any sanitizer report fails the run (halt_on_error / abort on UB).

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-asan}"
build_tsan="${build%-asan}-tsan"
build_bench="${build%-asan}-bench"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "=== phase 1: ASan + UBSan ==="
cmake -S "$repo" -B "$build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMINNOC_SANITIZE=ON
cmake --build "$build" -j "$jobs"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "$build" --output-on-failure -j "$jobs"

echo "=== phase 2: TSan (threaded subsystems) ==="
cmake -S "$repo" -B "$build_tsan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DMINNOC_SANITIZE_THREAD=ON
cmake --build "$build_tsan" -j "$jobs" \
    --target test_thread_pool test_threads_determinism \
    test_fastcolor_diff
export TSAN_OPTIONS="halt_on_error=1"
"$build_tsan/tests/test_thread_pool"
"$build_tsan/tests/test_threads_determinism"
"$build_tsan/tests/test_fastcolor_diff"

echo "=== phase 3: Release bench smoke ==="
cmake -S "$repo" -B "$build_bench" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_bench" -j "$jobs" --target partitioner_perf
"$build_bench/bench/partitioner_perf" \
    --bench CG --ranks 8 --iterations 1 \
    --out "$build_bench/partitioner_perf.json"

echo "=== phase 4: explore cache smoke ==="
cmake --build "$build_bench" -j "$jobs" --target minnoc
cache_dir="$build_bench/explore-cache"
rm -rf "$cache_dir"
"$build_bench/tools/minnoc" gen --bench CG --ranks 8 --iterations 1 \
    --out "$build_bench/ci-cg.trace"
explore_flags=(--degrees 4,5 --vcs 2,3 --restarts 2
               --cache-dir "$cache_dir")
"$build_bench/tools/minnoc" explore "$build_bench/ci-cg.trace" \
    "${explore_flags[@]}" --out "$build_bench/cg_frontier.json"
warm="$("$build_bench/tools/minnoc" explore "$build_bench/ci-cg.trace" \
    "${explore_flags[@]}" --out "$build_bench/cg_frontier_warm.json")"
echo "$warm"
echo "$warm" | grep -q "0 misses" ||
    { echo "FAIL: warm explore rerun recomputed designs"; exit 1; }
echo "$warm" | grep -q "100.0% hit rate" ||
    { echo "FAIL: warm explore rerun below 100% cache hits"; exit 1; }
cmp "$build_bench/cg_frontier.json" "$build_bench/cg_frontier_warm.json" ||
    { echo "FAIL: warm frontier JSON differs from cold"; exit 1; }

echo "=== phase 5: observability exports ==="
# Golden designs + metrics determinism explicitly under ASan (they also
# run inside phase 1's ctest; this re-run makes a drift failure loud
# and self-describing in the CI log).
"$build/tests/test_golden_designs"
"$build/tests/test_metrics_determinism"

# Sample artifacts: one simulate run with both exporters on, plus a
# cross-thread byte-identity check on the explore metrics dump.
"$build_bench/tools/minnoc" simulate "$build_bench/ci-cg.trace" \
    --network mesh \
    --metrics-out "$build_bench/sim_metrics.json" \
    --chrome-trace "$build_bench/sim_trace.json"
grep -q '"traceEvents"' "$build_bench/sim_trace.json" ||
    { echo "FAIL: chrome trace missing traceEvents"; exit 1; }
grep -q '"minnoc-metrics-v1"' "$build_bench/sim_metrics.json" ||
    { echo "FAIL: metrics dump missing schema marker"; exit 1; }
# --cache 0 pins cache state: hit/miss metrics must reflect thread
# count only, never what a previous phase happened to warm.
"$build_bench/tools/minnoc" explore "$build_bench/ci-cg.trace" \
    --degrees 4,5 --vcs 2,3 --restarts 2 --cache 0 --threads 1 \
    --metrics-out "$build_bench/explore_metrics_t1.json" >/dev/null
"$build_bench/tools/minnoc" explore "$build_bench/ci-cg.trace" \
    --degrees 4,5 --vcs 2,3 --restarts 2 --cache 0 --threads 4 \
    --metrics-out "$build_bench/explore_metrics_t4.json" >/dev/null
cmp "$build_bench/explore_metrics_t1.json" \
    "$build_bench/explore_metrics_t4.json" ||
    { echo "FAIL: explore metrics differ across thread counts"; exit 1; }

echo "=== phase 6: phase pipeline smoke ==="
cmake --build "$build_bench" -j "$jobs" --target phase_gain
"$build_bench/tools/minnoc" gen \
    --patterns neighbor,transpose,hotspot --ranks 16 \
    --out "$build_bench/ci-shift.trace"
phases_out="$("$build_bench/tools/minnoc" phases \
    "$build_bench/ci-shift.trace" --restarts 4 --threads 1 \
    --out "$build_bench/phase_report.json" 2>/dev/null)"
echo "$phases_out"
detected="$(echo "$phases_out" | sed -n 's/^\([0-9]*\) phase(s).*/\1/p')"
[ "${detected:-0}" -ge 2 ] ||
    { echo "FAIL: phase-shift trace detected < 2 phases"; exit 1; }
grep -q '"union_phase_violations": \[0\(, 0\)*\]' \
    "$build_bench/phase_report.json" ||
    { echo "FAIL: union design not contention-free per phase"; exit 1; }
"$build_bench/tools/minnoc" phases "$build_bench/ci-shift.trace" \
    --restarts 4 --threads 4 \
    --out "$build_bench/phase_report_t4.json" >/dev/null 2>&1
cmp "$build_bench/phase_report.json" \
    "$build_bench/phase_report_t4.json" ||
    { echo "FAIL: phases report differs across thread counts"; exit 1; }
"$build_bench/tools/minnoc" phases "$build_bench/ci-shift.trace" \
    --restarts 4 --threads 1 \
    --out "$build_bench/phase_report_rerun.json" >/dev/null 2>&1
cmp "$build_bench/phase_report.json" \
    "$build_bench/phase_report_rerun.json" ||
    { echo "FAIL: phases report differs across reruns"; exit 1; }
"$build_bench/bench/phase_gain" --ranks 16 --iterations 1 --restarts 2 \
    --out "$build_bench/phase_gain.json" 2>/dev/null
grep -q '"benchmark": "phase_gain"' "$build_bench/phase_gain.json" ||
    { echo "FAIL: phase_gain bench produced no report"; exit 1; }

echo "=== phase 7: serve daemon chaos (ASan) ==="
serve_sock="$build/ci-serve.sock"
serve_cache="$build/ci-serve-cache"
rm -rf "$serve_sock" "$serve_cache"
"$build/tools/minnoc" serve --socket "$serve_sock" --workers 4 \
    --cache-dir "$serve_cache" 2>"$build/ci-serve.log" &
serve_pid=$!
for _ in $(seq 50); do
    [ -S "$serve_sock" ] && break
    kill -0 "$serve_pid" 2>/dev/null ||
        { echo "FAIL: serve daemon died on boot"; cat "$build/ci-serve.log"; exit 1; }
    sleep 0.1
done
[ -S "$serve_sock" ] ||
    { echo "FAIL: serve daemon never bound its socket"; exit 1; }
# 500+ mixed requests: valid design/explore/ping traffic, malformed
# JSON, garbage bytes, oversized lines, slow writers, mid-request
# disconnects, tiny deadlines, a concurrent-duplicate dedup wave and a
# cache-corruption saboteur — all against the sanitized daemon.
"$build/bench/serve_chaos" --socket "$serve_sock" \
    --clients 8 --requests 500 --seed 1 \
    --corrupt-cache "$serve_cache" \
    --out "$build/serve_chaos.json" ||
    { echo "FAIL: serve chaos run"; cat "$build/ci-serve.log"; exit 1; }
grep -q '"pass": true' "$build/serve_chaos.json" ||
    { echo "FAIL: chaos artifact does not report pass"; exit 1; }
# Graceful drain: SIGTERM must finish in-flight work and exit 0.
kill -TERM "$serve_pid"
wait "$serve_pid" ||
    { echo "FAIL: serve daemon exited nonzero on SIGTERM"; exit 1; }
grep -q "drained and stopped" "$build/ci-serve.log" ||
    { echo "FAIL: serve daemon did not drain cleanly"; cat "$build/ci-serve.log"; exit 1; }
echo "serve chaos artifact: $build/serve_chaos.json"

echo "=== phase 8: scale curve (ASan) ==="
cmake --build "$build" -j "$jobs" --target scale_curve
# 256 ranks across all four patterns under ASan must finish inside the
# budget (the un-instrumented binary is ~10x faster; the bound guards
# against the pre-hierarchical super-linear blowup, where N=256 alone
# took minutes).
scale_budget=600
start_s=$SECONDS
"$build/bench/scale_curve" --sizes 64,128,256 --restarts 2 \
    --out "$build/scale_curve.json" ||
    { echo "FAIL: scale_curve produced a non-verified design"; exit 1; }
elapsed=$((SECONDS - start_s))
echo "scale_curve wall time: ${elapsed}s (budget ${scale_budget}s)"
[ "$elapsed" -le "$scale_budget" ] ||
    { echo "FAIL: scale_curve exceeded ${scale_budget}s budget"; exit 1; }
grep -q '"verified": false' "$build/scale_curve.json" &&
    { echo "FAIL: scale_curve JSON contains unverified designs"; exit 1; }
echo "scale curve artifact: $build/scale_curve.json"

echo "=== phase 9: distributed explore + lax-sync (ASan) ==="
cmake --build "$build" -j "$jobs" --target minnoc lax_sync
dist_cache="$build/ci-dist-cache"
rm -rf "$dist_cache"
"$build/tools/minnoc" gen --bench CG --ranks 8 --iterations 1 \
    --out "$build/ci-dist.trace"
dist_flags=(--degrees 4,5 --vcs 2,3 --restarts 2
            --cache-dir "$dist_cache")
# In-process reference, then a cold 3-worker run: same cache, and the
# frontier JSON must be byte-identical (sharding cannot change bytes).
"$build/tools/minnoc" explore "$build/ci-dist.trace" \
    "${dist_flags[@]}" --cache 0 \
    --out "$build/dist_frontier_ref.json"
"$build/tools/minnoc" explore "$build/ci-dist.trace" \
    "${dist_flags[@]}" --workers 3 \
    --dist-report "$build/dist_status.json" \
    --out "$build/dist_frontier_cold.json"
cmp "$build/dist_frontier_ref.json" "$build/dist_frontier_cold.json" ||
    { echo "FAIL: 3-worker frontier differs from in-process"; exit 1; }
grep -q '"worker_failed": \[\]' "$build/dist_status.json" ||
    { echo "FAIL: dist status reports worker failures"; exit 1; }
# Warm rerun against the merged cache the three workers populated:
# every job must hit, and the bytes must not move.
dist_warm="$("$build/tools/minnoc" explore "$build/ci-dist.trace" \
    "${dist_flags[@]}" --workers 3 \
    --out "$build/dist_frontier_warm.json")"
echo "$dist_warm"
echo "$dist_warm" | grep -q "100.0% hit rate" ||
    { echo "FAIL: warm distributed rerun below 100% cache hits"; exit 1; }
cmp "$build/dist_frontier_cold.json" "$build/dist_frontier_warm.json" ||
    { echo "FAIL: warm distributed frontier differs from cold"; exit 1; }
# Lax-sync bench gates: mesh exactness and dist byte-identity are its
# exit status; the JSON is the CI trend artifact.
"$build/bench/lax_sync" --ranks 16 --iterations 1 --workers 3 \
    --out "$build/lax_sync.json" >/dev/null ||
    { echo "FAIL: lax_sync bench gates"; exit 1; }
grep -q '"benchmark": "lax_sync"' "$build/lax_sync.json" ||
    { echo "FAIL: lax_sync bench produced no report"; exit 1; }
echo "dist status artifact: $build/dist_status.json"
echo "lax sync artifact: $build/lax_sync.json"

echo "=== phase 10: multi-host explore over minnoc serve (ASan) ==="
# Wait until a daemon accepts TCP on its port (or die with its log).
await_port() { # pid port log
    for _ in $(seq 100); do
        kill -0 "$1" 2>/dev/null ||
            { echo "FAIL: serve daemon on port $2 died on boot"; cat "$3"; exit 1; }
        (exec 3<>"/dev/tcp/127.0.0.1/$2") 2>/dev/null &&
            { exec 3>&- 3<&-; return 0; }
        sleep 0.1
    done
    echo "FAIL: serve daemon never bound port $2"; cat "$3"; exit 1
}
port_a=18871; port_b=18872; port_c=18873
rm -rf "$build"/ci-hosts-cache-*
"$build/tools/minnoc" serve --port $port_a --workers 1 \
    --max-deadline-ms 600000 --cache-dir "$build/ci-hosts-cache-a" \
    2>"$build/ci-hosts-a.log" &
host_a_pid=$!
"$build/tools/minnoc" serve --port $port_b --workers 1 \
    --max-deadline-ms 600000 --cache-dir "$build/ci-hosts-cache-b" \
    2>"$build/ci-hosts-b.log" &
host_b_pid=$!
await_port "$host_a_pid" "$port_a" "$build/ci-hosts-a.log"
await_port "$host_b_pid" "$port_b" "$build/ci-hosts-b.log"
# Cold sweep over both daemons: byte-identical to phase 9's in-process
# reference, no failures of either kind.
"$build/tools/minnoc" explore "$build/ci-dist.trace" \
    --degrees 4,5 --vcs 2,3 --restarts 2 --cache 0 \
    --hosts "127.0.0.1:$port_a,127.0.0.1:$port_b" \
    --dist-report "$build/hosts_status_cold.json" \
    --out "$build/hosts_frontier_cold.json"
cmp "$build/dist_frontier_ref.json" "$build/hosts_frontier_cold.json" ||
    { echo "FAIL: --hosts frontier differs from in-process"; exit 1; }
grep -q '"worker_failed": \[\]' "$build/hosts_status_cold.json" ||
    { echo "FAIL: clean --hosts run reports worker failures"; exit 1; }
grep -q '"host_failed": \[\]' "$build/hosts_status_cold.json" ||
    { echo "FAIL: clean --hosts run reports host failures"; exit 1; }
# Warm rerun: every job must hit the caches the daemons populated.
hosts_warm="$("$build/tools/minnoc" explore "$build/ci-dist.trace" \
    --degrees 4,5 --vcs 2,3 --restarts 2 --cache 0 \
    --hosts "127.0.0.1:$port_a,127.0.0.1:$port_b" \
    --out "$build/hosts_frontier_warm.json")"
echo "$hosts_warm"
echo "$hosts_warm" | grep -q "100.0% hit rate" ||
    { echo "FAIL: warm --hosts rerun below 100% cache hits"; exit 1; }
cmp "$build/hosts_frontier_cold.json" "$build/hosts_frontier_warm.json" ||
    { echo "FAIL: warm --hosts frontier differs from cold"; exit 1; }
# Kill one daemon mid-sweep. The victim is armed with the serve hang
# hook, so after its first job it wedges and the sweep provably cannot
# finish until the SIGKILL lands — the kill always hits mid-run. The
# coordinator must requeue onto the survivor and converge with
# identical bytes and the death recorded in host_failed only.
MINNOC_DIST_TEST_HANG=serve "$build/tools/minnoc" serve \
    --port $port_c --workers 1 --max-deadline-ms 600000 \
    --cache-dir "$build/ci-hosts-cache-c" \
    2>"$build/ci-hosts-c.log" &
host_c_pid=$!
await_port "$host_c_pid" "$port_c" "$build/ci-hosts-c.log"
( sleep 2; kill -KILL "$host_c_pid" 2>/dev/null ) &
killer_pid=$!
"$build/tools/minnoc" explore "$build/ci-dist.trace" \
    --degrees 4,5 --vcs 2,3 --restarts 2 --cache 0 \
    --hosts "127.0.0.1:$port_c,127.0.0.1:$port_b" \
    --worker-timeout-ms 60000 \
    --dist-report "$build/hosts_status_kill.json" \
    --out "$build/hosts_frontier_kill.json"
wait "$killer_pid" 2>/dev/null || true
cmp "$build/dist_frontier_ref.json" "$build/hosts_frontier_kill.json" ||
    { echo "FAIL: frontier changed after mid-sweep SIGKILL"; exit 1; }
grep -q '"host_failed": \[{' "$build/hosts_status_kill.json" ||
    { echo "FAIL: SIGKILLed daemon not recorded in host_failed"; exit 1; }
grep -q "\"requeued_jobs\": \[" "$build/hosts_status_kill.json" ||
    { echo "FAIL: no jobs requeued off the killed daemon"; exit 1; }
grep -q '"worker_failed": \[\]' "$build/hosts_status_kill.json" ||
    { echo "FAIL: remote death leaked into worker_failed"; exit 1; }
# The daemons that were not killed must still drain cleanly.
kill -TERM "$host_a_pid" "$host_b_pid"
wait "$host_a_pid" ||
    { echo "FAIL: daemon A exited nonzero on SIGTERM"; exit 1; }
wait "$host_b_pid" ||
    { echo "FAIL: daemon B exited nonzero on SIGTERM"; exit 1; }
wait "$host_c_pid" 2>/dev/null || true
echo "multi-host status artifacts: $build/hosts_status_cold.json," \
     "$build/hosts_status_kill.json"

echo "=== phase 11: coherence stress (ASan) ==="
cmake --build "$build" -j "$jobs" --target coherence_stress
# Small N under ASan inside a wall-time budget: the generator, the
# per-phase synthesis pipeline, and both power tiers end-to-end. The
# JSON must be byte-identical across reruns and thread counts, every
# synthesized design Theorem-1-verified, and the replay deadlock-free.
coh_budget=420
start_s=$SECONDS
"$build/bench/coherence_stress" --ranks 12 --blocks 48 --rounds 4 \
    --ops 12 --threads 1 --out "$build/coherence_stress.json" ||
    { echo "FAIL: coherence_stress exited nonzero"; exit 1; }
"$build/bench/coherence_stress" --ranks 12 --blocks 48 --rounds 4 \
    --ops 12 --threads 3 --out "$build/coherence_stress_t3.json" ||
    { echo "FAIL: coherence_stress (threaded) exited nonzero"; exit 1; }
elapsed=$((SECONDS - start_s))
echo "coherence_stress wall time: ${elapsed}s (budget ${coh_budget}s)"
[ "$elapsed" -le "$coh_budget" ] ||
    { echo "FAIL: coherence_stress exceeded ${coh_budget}s budget"; exit 1; }
cmp "$build/coherence_stress.json" "$build/coherence_stress_t3.json" ||
    { echo "FAIL: coherence_stress JSON differs across thread counts"; exit 1; }
grep -q '"verified": false' "$build/coherence_stress.json" &&
    { echo "FAIL: coherence_stress JSON contains unverified designs"; exit 1; }
grep -q '"deadlock_recoveries": 0' "$build/coherence_stress.json" ||
    { echo "FAIL: coherence replay hit deadlock recovery"; exit 1; }
echo "coherence stress artifact: $build/coherence_stress.json"
