/**
 * @file
 * End-to-end tests of the methodology driver across the paper's five
 * benchmarks and both configuration sizes.
 */

#include <gtest/gtest.h>

#include "core/methodology.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::core;

namespace {

CliqueSet
benchCliques(trace::Benchmark b, std::uint32_t ranks)
{
    trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 1;
    const auto tr = trace::generateBenchmark(b, cfg);
    return trace::analyzeByCall(tr);
}

} // namespace

/** Parameterized over (benchmark, small/large config). */
class MethodologyAllBenchmarks
    : public ::testing::TestWithParam<std::tuple<trace::Benchmark, bool>>
{
};

TEST_P(MethodologyAllBenchmarks, ContentionFreeWithinConstraints)
{
    const auto [bench, large] = GetParam();
    const std::uint32_t ranks = large ? trace::largeConfigRanks(bench)
                                      : trace::smallConfigRanks(bench);
    const auto ks = benchCliques(bench, ranks);

    MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = runMethodology(ks, cfg);

    // Theorem 1 must hold on the finalized design.
    EXPECT_TRUE(outcome.violations.empty())
        << trace::benchmarkName(bench) << "-" << ranks << ": "
        << outcome.violations.size() << " residual contentions";

    // All 5 benchmarks are feasible at degree 5 (the paper generates
    // degree-5 networks for each).
    EXPECT_TRUE(outcome.constraintsMet)
        << trace::benchmarkName(bench) << "-" << ranks;
    for (SwitchId s = 0; s < outcome.design.numSwitches; ++s)
        EXPECT_LE(outcome.design.switchDegree(s), 5u);

    // The generated network must be no larger than one switch per
    // processor (it should beat the mesh on switch count).
    EXPECT_LE(outcome.design.numSwitches, ranks);
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, MethodologyAllBenchmarks,
    ::testing::Combine(::testing::Values(trace::Benchmark::BT,
                                         trace::Benchmark::CG,
                                         trace::Benchmark::FFT,
                                         trace::Benchmark::MG,
                                         trace::Benchmark::SP),
                       ::testing::Bool()),
    [](const auto &info) {
        return trace::benchmarkName(std::get<0>(info.param)) +
               std::string(std::get<1>(info.param) ? "_large" : "_small");
    });

TEST(Methodology, DeterministicAcrossRuns)
{
    const auto ks = benchCliques(trace::Benchmark::CG, 16);
    MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 5;
    const auto a = runMethodology(ks, cfg);
    const auto b = runMethodology(ks, cfg);
    EXPECT_EQ(a.design.numSwitches, b.design.numSwitches);
    EXPECT_EQ(a.design.totalLinks(), b.design.totalLinks());
    EXPECT_EQ(a.design.procHome, b.design.procHome);
}

TEST(Methodology, SeedChangesDesignButNotCorrectness)
{
    const auto ks = benchCliques(trace::Benchmark::FFT, 16);
    MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 5;
    cfg.partitioner.seed = 1;
    const auto a = runMethodology(ks, cfg);
    cfg.partitioner.seed = 99;
    const auto b = runMethodology(ks, cfg);
    EXPECT_TRUE(a.violations.empty());
    EXPECT_TRUE(b.violations.empty());
}

TEST(Methodology, CliqueReductionDoesNotChangeVerification)
{
    const auto ks = benchCliques(trace::Benchmark::MG, 8);
    MethodologyConfig with;
    with.partitioner.constraints.maxDegree = 5;
    with.reduceCliques = true;
    MethodologyConfig without = with;
    without.reduceCliques = false;
    EXPECT_TRUE(runMethodology(ks, with).violations.empty());
    EXPECT_TRUE(runMethodology(ks, without).violations.empty());
}

TEST(Methodology, LooseConstraintsKeepMegaswitch)
{
    const auto ks = benchCliques(trace::Benchmark::CG, 8);
    MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 64;
    const auto outcome = runMethodology(ks, cfg);
    EXPECT_EQ(outcome.design.numSwitches, 1u);
    EXPECT_EQ(outcome.design.totalLinks(), 0u);
    EXPECT_TRUE(outcome.violations.empty());
}

TEST(Methodology, SummaryMentionsKeyFigures)
{
    const auto ks = benchCliques(trace::Benchmark::CG, 8);
    MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = runMethodology(ks, cfg);
    const auto text = outcome.summary();
    EXPECT_NE(text.find("switches="), std::string::npos);
    EXPECT_NE(text.find("links="), std::string::npos);
}

TEST(Methodology, HistoryEndsWithFinalize)
{
    const auto ks = benchCliques(trace::Benchmark::CG, 16);
    MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = runMethodology(ks, cfg);
    ASSERT_FALSE(outcome.history.empty());
    EXPECT_EQ(outcome.history.back().kind,
              PartitionStep::Kind::Finalize);
}
