/**
 * @file
 * Unit and property tests for graph coloring.
 */

#include <gtest/gtest.h>

#include "graph/clique.hpp"
#include "graph/coloring.hpp"
#include "util/rng.hpp"

using namespace minnoc::graph;
using minnoc::Rng;

namespace {

Ugraph
cycle(std::size_t n)
{
    Ugraph g(n);
    for (NodeId v = 0; v < n; ++v)
        g.addEdge(v, static_cast<NodeId>((v + 1) % n));
    return g;
}

Ugraph
complete(std::size_t n)
{
    Ugraph g(n);
    for (NodeId a = 0; a < n; ++a) {
        for (NodeId b = a + 1; b < n; ++b)
            g.addEdge(a, b);
    }
    return g;
}

Ugraph
randomGraph(std::size_t n, double p, std::uint64_t seed)
{
    Rng rng(seed);
    Ugraph g(n);
    for (NodeId a = 0; a < n; ++a) {
        for (NodeId b = a + 1; b < n; ++b) {
            if (rng.chance(p))
                g.addEdge(a, b);
        }
    }
    return g;
}

} // namespace

TEST(Coloring, EmptyGraph)
{
    Ugraph g;
    EXPECT_EQ(greedyColoring(g).numColors, 0u);
    EXPECT_EQ(dsaturColoring(g).numColors, 0u);
    EXPECT_EQ(exactColoring(g).numColors, 0u);
}

TEST(Coloring, EdgelessGraphOneColor)
{
    Ugraph g(5);
    const auto c = exactColoring(g);
    EXPECT_EQ(c.numColors, 1u);
    EXPECT_TRUE(isProperColoring(g, c));
}

TEST(Coloring, EvenCycleTwoColors)
{
    const auto g = cycle(8);
    EXPECT_EQ(dsaturColoring(g).numColors, 2u);
    EXPECT_EQ(exactColoring(g).numColors, 2u);
}

TEST(Coloring, OddCycleThreeColors)
{
    const auto g = cycle(7);
    const auto c = exactColoring(g);
    EXPECT_EQ(c.numColors, 3u);
    EXPECT_TRUE(isProperColoring(g, c));
}

TEST(Coloring, CompleteGraphNeedsN)
{
    const auto g = complete(6);
    EXPECT_EQ(exactColoring(g).numColors, 6u);
    EXPECT_EQ(cliqueLowerBound(g), 6u);
}

TEST(Coloring, IsProperColoringRejectsBadColorings)
{
    Ugraph g(2);
    g.addEdge(0, 1);
    Coloring bad;
    bad.color = {0, 0};
    bad.numColors = 1;
    EXPECT_FALSE(isProperColoring(g, bad));
    Coloring wrongSize;
    wrongSize.color = {0};
    wrongSize.numColors = 1;
    EXPECT_FALSE(isProperColoring(g, wrongSize));
    Coloring outOfRange;
    outOfRange.color = {0, 5};
    outOfRange.numColors = 2;
    EXPECT_FALSE(isProperColoring(g, outOfRange));
}

TEST(Coloring, BipartiteDsaturExact)
{
    // Complete bipartite K(3,3): chromatic number 2.
    Ugraph g(6);
    for (NodeId a = 0; a < 3; ++a) {
        for (NodeId b = 3; b < 6; ++b)
            g.addEdge(a, b);
    }
    EXPECT_EQ(dsaturColoring(g).numColors, 2u);
}

TEST(Coloring, PetersenGraphChromaticThree)
{
    // The Petersen graph: 3-chromatic, clique number 2 -- exercises the
    // branch-and-bound beyond the clique-bound shortcut.
    Ugraph g(10);
    for (NodeId v = 0; v < 5; ++v) {
        g.addEdge(v, (v + 1) % 5);             // outer cycle
        g.addEdge(v + 5, ((v + 2) % 5) + 5);   // inner pentagram
        g.addEdge(v, v + 5);                   // spokes
    }
    EXPECT_EQ(cliqueLowerBound(g), 2u);
    bool exact = false;
    const auto c = exactColoring(g, 0, &exact);
    EXPECT_TRUE(exact);
    EXPECT_EQ(c.numColors, 3u);
    EXPECT_TRUE(isProperColoring(g, c));
}

TEST(Coloring, BudgetFallbackStillProper)
{
    const auto g = randomGraph(24, 0.5, 99);
    bool exact = true;
    const auto c = exactColoring(g, 1, &exact); // absurdly small budget
    EXPECT_TRUE(isProperColoring(g, c));
}

TEST(Coloring, GreedyCliqueIsClique)
{
    const auto g = randomGraph(30, 0.4, 5);
    const auto clique = greedyClique(g);
    EXPECT_TRUE(g.isClique(clique));
    EXPECT_GE(clique.size(), 1u);
}

/** Property sweep over random graphs of varying density. */
class ColoringProperty
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(ColoringProperty, OrderingAndProperness)
{
    const auto [seed, density] = GetParam();
    const auto g = randomGraph(18, density, static_cast<std::uint64_t>(seed));

    const auto greedy = greedyColoring(g);
    const auto dsatur = dsaturColoring(g);
    bool exact = false;
    const auto best = exactColoring(g, 5'000'000, &exact);

    EXPECT_TRUE(isProperColoring(g, greedy));
    EXPECT_TRUE(isProperColoring(g, dsatur));
    EXPECT_TRUE(isProperColoring(g, best));

    // Exact <= DSATUR <= maxDegree+1; exact >= clique bound.
    EXPECT_LE(best.numColors, dsatur.numColors);
    EXPECT_LE(greedy.numColors, g.maxDegree() + 1);
    EXPECT_LE(dsatur.numColors, g.maxDegree() + 1);
    EXPECT_GE(best.numColors, cliqueLowerBound(g));

    if (exact) {
        // The true clique number also lower-bounds the chromatic number.
        EXPECT_GE(best.numColors, cliqueNumber(g));
    }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, ColoringProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(0.15, 0.4, 0.75)));
