/**
 * @file
 * Unit tests for the trace-driven workload engine.
 */

#include <gtest/gtest.h>

#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::sim;
using minnoc::trace::OpKind;
using minnoc::trace::Trace;
using minnoc::trace::TraceOp;

TEST(TraceDriver, ComputeOnlyFinishesOnTime)
{
    Trace t("compute", 2);
    t.push(0, TraceOp::compute(5000));
    t.push(1, TraceOp::compute(700));
    const auto built = topo::buildCrossbar(2);
    const auto res = runTrace(t, *built.topo, *built.routing);
    // Fast-forward makes this cheap; finish = compute time (+epsilon).
    EXPECT_GE(res.execTime, 5000);
    EXPECT_LE(res.execTime, 5010);
    EXPECT_EQ(res.commTime[0], 0);
    EXPECT_EQ(res.commTime[1], 0);
    EXPECT_EQ(res.packetsDelivered, 0u);
}

TEST(TraceDriver, PingPongAccounting)
{
    Trace t("pingpong", 2);
    t.push(0, TraceOp::send(1, 400, 0));
    t.push(1, TraceOp::recv(0, 400, 0));
    t.push(1, TraceOp::send(0, 400, 1));
    t.push(0, TraceOp::recv(1, 400, 1));
    const auto built = topo::buildCrossbar(2);
    const auto res = runTrace(t, *built.topo, *built.routing);

    EXPECT_EQ(res.packetsDelivered, 2u);
    EXPECT_EQ(res.deadlockRecoveries, 0u);
    // Each rank spends its whole run communicating.
    EXPECT_GT(res.commTime[0], 0);
    EXPECT_GT(res.commTime[1], 0);
    EXPECT_LE(res.commTime[0], res.execTime);
    // Round trip of two 101-flit packets plus overheads.
    EXPECT_GE(res.execTime, 2 * 101);
    EXPECT_LE(res.execTime, 2 * 101 + 80);
}

TEST(TraceDriver, SendBlocksUntilInjected)
{
    // One long send: the sender's comm time covers the injection of all
    // flits, not just the overhead.
    Trace t("block", 2);
    t.push(0, TraceOp::send(1, 4000, 0)); // 1001 flits
    t.push(1, TraceOp::recv(0, 4000, 0));
    const auto built = topo::buildCrossbar(2);
    const auto res = runTrace(t, *built.topo, *built.routing);
    EXPECT_GE(res.commTime[0], 1001);
}

TEST(TraceDriver, RecvWaitCountsAsCommTime)
{
    Trace t("wait", 2);
    t.push(0, TraceOp::compute(10000));
    t.push(0, TraceOp::send(1, 4, 0));
    t.push(1, TraceOp::recv(0, 4, 0)); // waits ~10k cycles
    const auto built = topo::buildCrossbar(2);
    const auto res = runTrace(t, *built.topo, *built.routing);
    EXPECT_GE(res.commTime[1], 10000);
    EXPECT_EQ(res.commTime[0] > 0, true);
    EXPECT_LT(res.commTime[0], 100);
}

TEST(TraceDriver, RankCountMismatchFatal)
{
    Trace t("mismatch", 3);
    const auto built = topo::buildCrossbar(2);
    EXPECT_EXIT(runTrace(t, *built.topo, *built.routing),
                ::testing::ExitedWithCode(1), "ranks");
}

TEST(TraceDriver, DeadlockedTraceFatal)
{
    Trace t("dead", 2);
    t.push(0, TraceOp::recv(1, 4, 0));
    t.push(1, TraceOp::recv(0, 4, 1));
    t.push(0, TraceOp::send(1, 4, 1));
    t.push(1, TraceOp::send(0, 4, 0));
    const auto built = topo::buildCrossbar(2);
    EXPECT_EXIT(runTrace(t, *built.topo, *built.routing),
                ::testing::ExitedWithCode(1), "deadlocked");
}

TEST(TraceDriver, ResultAggregates)
{
    SimResult res;
    res.commTime = {10, 20, 30};
    EXPECT_DOUBLE_EQ(res.commTimeMean(), 20.0);
    EXPECT_EQ(res.commTimeMax(), 30);
    SimResult empty;
    EXPECT_DOUBLE_EQ(empty.commTimeMean(), 0.0);
    EXPECT_EQ(empty.commTimeMax(), 0);
}

/** Full benchmark traces on every baseline topology. */
class DriverBenchmarkSweep
    : public ::testing::TestWithParam<minnoc::trace::Benchmark>
{
};

TEST_P(DriverBenchmarkSweep, RunsOnAllBaselines)
{
    minnoc::trace::NasConfig cfg;
    cfg.ranks = minnoc::trace::smallConfigRanks(GetParam());
    cfg.iterations = 1;
    const auto tr = generateBenchmark(GetParam(), cfg);

    const auto xbar = topo::buildCrossbar(cfg.ranks);
    const auto mesh = topo::buildMesh(cfg.ranks);
    const auto torus = topo::buildTorus(cfg.ranks);

    const auto rx = runTrace(tr, *xbar.topo, *xbar.routing);
    const auto rm = runTrace(tr, *mesh.topo, *mesh.routing);
    const auto rt = runTrace(tr, *torus.topo, *torus.routing);

    EXPECT_EQ(rx.packetsDelivered, tr.numSends());
    EXPECT_EQ(rm.packetsDelivered, tr.numSends());
    EXPECT_EQ(rt.packetsDelivered, tr.numSends());

    // The non-blocking crossbar is the performance reference: nothing
    // beats it by more than scheduling noise.
    EXPECT_LE(rx.execTime, rm.execTime + 5);
    EXPECT_LE(rx.execTime, rt.execTime + 5);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, DriverBenchmarkSweep,
                         ::testing::Values(minnoc::trace::Benchmark::BT,
                                           minnoc::trace::Benchmark::CG,
                                           minnoc::trace::Benchmark::FFT,
                                           minnoc::trace::Benchmark::MG,
                                           minnoc::trace::Benchmark::SP),
                         [](const auto &info) {
                             return minnoc::trace::benchmarkName(
                                 info.param);
                         });

TEST(TraceDriver, DeterministicAcrossRuns)
{
    minnoc::trace::NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    const auto tr = generateBenchmark(minnoc::trace::Benchmark::CG, cfg);
    const auto mesh = topo::buildMesh(8);
    const auto a = runTrace(tr, *mesh.topo, *mesh.routing);
    const auto b = runTrace(tr, *mesh.topo, *mesh.routing);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.commTime, b.commTime);
}
