/**
 * @file
 * Unit tests for the power model and the simulator's link statistics.
 */

#include <gtest/gtest.h>

#include "core/methodology.hpp"
#include "sim/trace_driver.hpp"
#include "topo/builders.hpp"
#include "topo/floorplan.hpp"
#include "topo/power.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::topo;

TEST(Power, ZeroTrafficOnlyLeaks)
{
    const auto net = buildMesh(4);
    std::vector<std::uint64_t> flits(net.topo->numLinks(), 0);
    const auto report = computeEnergy(*net.topo, flits, 1000);
    EXPECT_DOUBLE_EQ(report.dynamic(), 0.0);
    EXPECT_GT(report.leakage(), 0.0);
    EXPECT_DOUBLE_EQ(report.total(), report.leakage());
}

TEST(Power, DynamicScalesWithFlitsAndLength)
{
    Topology t(2, 2, "toy");
    t.addDuplex(t.procNode(0), t.switchNode(0), 0);
    t.addDuplex(t.procNode(1), t.switchNode(1), 0);
    const auto [longLink, backLink] =
        t.addDuplex(t.switchNode(0), t.switchNode(1), 4);
    (void)backLink;

    PowerModel model;
    model.switchLeakagePerCycle = 0.0;
    model.wireLeakagePerTileCycle = 0.0;

    std::vector<std::uint64_t> flits(t.numLinks(), 0);
    flits[longLink] = 10;
    const auto report = computeEnergy(t, flits, 0, model);
    EXPECT_DOUBLE_EQ(report.switchDynamic,
                     10 * model.switchEnergyPerFlit);
    EXPECT_DOUBLE_EQ(report.wireDynamic,
                     10 * model.wireEnergyPerFlitTile * 4);
}

TEST(Power, MismatchedVectorPanics)
{
    const auto net = buildMesh(4);
    std::vector<std::uint64_t> flits(3, 0);
    EXPECT_DEATH(computeEnergy(*net.topo, flits, 10), "links");
}

TEST(Power, ReportToString)
{
    EnergyReport r;
    r.switchDynamic = 1.0;
    r.wireDynamic = 2.0;
    r.switchLeakage = 3.0;
    r.wireLeakage = 4.0;
    EXPECT_DOUBLE_EQ(r.total(), 10.0);
    EXPECT_NE(r.toString().find("energy total=10"), std::string::npos);
}

TEST(LinkStats, FlitCountsMatchTraffic)
{
    const auto net = buildCrossbar(2);
    trace::Trace t("one", 2);
    t.push(0, trace::TraceOp::send(1, 400, 0)); // 101 flits
    t.push(1, trace::TraceOp::recv(0, 400, 0));
    const auto res = sim::runTrace(t, *net.topo, *net.routing);
    ASSERT_EQ(res.linkFlits.size(), net.topo->numLinks());
    // Injection link of 0 and ejection link of 1 each carried 101.
    EXPECT_EQ(res.linkFlits[net.topo->injectionLink(0)], 101u);
    EXPECT_EQ(res.linkFlits[net.topo->ejectionLink(1)], 101u);
    // Reverse-direction channels stayed silent.
    EXPECT_EQ(res.linkFlits[net.topo->ejectionLink(0)], 0u);
    EXPECT_EQ(res.linkFlits[net.topo->injectionLink(1)], 0u);
}

TEST(LinkStats, HopsMatchPathLength)
{
    const auto net = buildMesh(16);
    trace::Trace t("corner", 16);
    t.push(0, trace::TraceOp::send(15, 64, 0)); // 6 mesh hops + in/out
    t.push(15, trace::TraceOp::recv(0, 64, 0));
    const auto res = sim::runTrace(t, *net.topo, *net.routing);
    EXPECT_DOUBLE_EQ(res.avgPacketHops, 8.0); // inject + 6 + eject
}

TEST(LinkStats, UtilizationBounds)
{
    trace::NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    const auto tr = trace::generateCG(cfg);
    const auto net = buildMesh(8);
    const auto res = sim::runTrace(tr, *net.topo, *net.routing);
    EXPECT_GT(res.maxLinkUtilization, 0.0);
    EXPECT_LE(res.maxLinkUtilization, 1.0);
    EXPECT_LE(res.meanLinkUtilization, res.maxLinkUtilization);
}

TEST(LinkStats, GeneratedNetworkUsesLessEnergyThanMeshOnCg)
{
    // The power-extension headline: the CG-16 generated network moves
    // fewer flit-tiles than the mesh and leaks less wire.
    trace::NasConfig cfg;
    cfg.ranks = 16;
    cfg.iterations = 1;
    const auto tr = trace::generateCG(cfg);

    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome =
        core::runMethodology(trace::analyzeByCall(tr), mcfg);
    const auto plan = planFloor(outcome.design);
    const auto gen = buildFromDesign(outcome.design, plan);
    const auto mesh = buildMesh(16);

    const auto rg = sim::runTrace(tr, *gen.topo, *gen.routing);
    const auto rm = sim::runTrace(tr, *mesh.topo, *mesh.routing);
    const auto eg = computeEnergy(*gen.topo, rg.linkFlits, rg.execTime);
    const auto em =
        computeEnergy(*mesh.topo, rm.linkFlits, rm.execTime);
    EXPECT_LT(eg.total(), em.total());
}
