/**
 * @file
 * Unit tests for the statistics accumulators.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/stats.hpp"

using minnoc::Histogram;
using minnoc::ScalarStat;
using minnoc::StatRegistry;

TEST(ScalarStat, EmptyIsZero)
{
    ScalarStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(ScalarStat, SingleSample)
{
    ScalarStat s;
    s.sample(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(ScalarStat, KnownMoments)
{
    ScalarStat s;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic textbook example
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(ScalarStat, NegativeValues)
{
    ScalarStat s;
    s.sample(-3.0);
    s.sample(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(ScalarStat, MergeMatchesCombinedStream)
{
    ScalarStat a;
    ScalarStat b;
    ScalarStat whole;
    for (int i = 0; i < 50; ++i) {
        const double v = 0.37 * i - 3.0;
        (i % 2 ? a : b).sample(v);
        whole.sample(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(ScalarStat, MergeWithEmpty)
{
    ScalarStat a;
    a.sample(1.0);
    ScalarStat empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(ScalarStat, ResetClears)
{
    ScalarStat s;
    s.sample(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BinPlacement)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.0);  // bin 0
    h.sample(9.99); // bin 9
    h.sample(5.0);  // bin 5
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.sample(-0.1);
    h.sample(1.0); // hi is exclusive
    h.sample(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.binLo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binLo(1), 12.0);
    EXPECT_DOUBLE_EQ(h.binLo(4), 18.0);
}

TEST(Histogram, RejectsBadConstruction)
{
    EXPECT_DEATH(Histogram(0.0, 1.0, 0), "at least one bin");
    EXPECT_DEATH(Histogram(1.0, 1.0, 4), "lo < hi");
}

TEST(StatRegistry, CreatesAndFinds)
{
    StatRegistry reg;
    reg["latency"].sample(4.0);
    reg["latency"].sample(6.0);
    EXPECT_TRUE(reg.contains("latency"));
    EXPECT_FALSE(reg.contains("missing"));
    EXPECT_DOUBLE_EQ(reg["latency"].mean(), 5.0);
}

TEST(StatRegistry, DumpIsDeterministic)
{
    StatRegistry reg;
    reg["zeta"].sample(1.0);
    reg["alpha"].sample(2.0);
    std::ostringstream oss;
    reg.dump(oss);
    const auto text = oss.str();
    EXPECT_LT(text.find("alpha"), text.find("zeta"));
}
