/**
 * @file
 * Unit tests for the observability metrics registry: histogram bucket
 * geometry and quantiles, registry JSON schema (validated with the
 * in-tree parser), timing-metric exclusion, and dump determinism.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "util/json.hpp"

using namespace minnoc;
using obs::LatencyHistogram;

TEST(LatencyHistogram, SmallValuesAreExact)
{
    // Below 2^kSubBits every value has its own bucket.
    for (std::uint64_t v = 0; v < 16; ++v) {
        EXPECT_EQ(LatencyHistogram::bucketOf(v), v);
        EXPECT_EQ(LatencyHistogram::bucketLo(v), v);
        EXPECT_EQ(LatencyHistogram::bucketHi(v), v);
    }
}

TEST(LatencyHistogram, BucketEdgesRoundTrip)
{
    // Every value maps into a bucket whose [lo, hi] contains it, and
    // bucket indexing is monotone in the value.
    std::size_t prev = 0;
    for (std::uint64_t v :
         {0ull, 1ull, 15ull, 16ull, 17ull, 31ull, 32ull, 100ull,
          1000ull, 65535ull, 65536ull, 1000000ull, (1ull << 40),
          (1ull << 40) + 12345, ~0ull}) {
        const auto b = LatencyHistogram::bucketOf(v);
        EXPECT_LE(LatencyHistogram::bucketLo(b), v) << "v=" << v;
        EXPECT_GE(LatencyHistogram::bucketHi(b), v) << "v=" << v;
        EXPECT_GE(b, prev) << "v=" << v;
        prev = b;
    }
}

TEST(LatencyHistogram, RelativeErrorBounded)
{
    // Bucket width never exceeds 1/16 of the bucket's lower edge — the
    // quantile resolution guarantee.
    for (std::uint64_t v = 16; v < (1ull << 20); v = v * 3 / 2 + 1) {
        const auto b = LatencyHistogram::bucketOf(v);
        const auto lo = LatencyHistogram::bucketLo(b);
        const auto hi = LatencyHistogram::bucketHi(b);
        EXPECT_LE(hi - lo + 1, lo / 16 + 1) << "v=" << v;
    }
}

TEST(LatencyHistogram, CountSumMinMaxExact)
{
    LatencyHistogram h;
    std::uint64_t sum = 0;
    for (std::uint64_t v = 7; v < 5000; v += 13) {
        h.record(v);
        sum += v;
    }
    EXPECT_EQ(h.count(), (5000 - 7 + 12) / 13);
    EXPECT_EQ(h.sum(), sum);
    EXPECT_EQ(h.min(), 7u);
    EXPECT_EQ(h.max(), 4999u);
    EXPECT_NEAR(h.mean(),
                static_cast<double>(sum) /
                    static_cast<double>(h.count()),
                1e-9);
}

TEST(LatencyHistogram, QuantilesWithinResolution)
{
    LatencyHistogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v);
    // p50 of 1..1000 is 500; the bucketed answer may overshoot by at
    // most one bucket width (6.25%).
    const auto p50 = h.quantile(0.5);
    EXPECT_GE(p50, 500u);
    EXPECT_LE(p50, 532u);
    EXPECT_EQ(h.quantile(0.0), 1u);
    EXPECT_EQ(h.quantile(1.0), 1000u);
    const auto p99 = h.quantile(0.99);
    EXPECT_GE(p99, 990u);
    EXPECT_LE(p99, 1000u);
}

TEST(LatencyHistogram, EmptyIsAllZero)
{
    const LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(MetricsRegistry, JsonIsValidAndNameOrdered)
{
    obs::MetricsRegistry reg;
    reg.counter("zeta/events").add(3);
    reg.gauge("alpha/value").set(1.5);
    reg.series("mid/points").sample(10, 0.25);
    reg.series("mid/points").sample(20, 0.5);
    reg.histogram("beta/latency").record(42);

    const auto dump = reg.toJson();
    const auto parsed = json::parse(dump);
    ASSERT_TRUE(parsed.has_value()) << dump;

    const auto *metrics = parsed->find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_TRUE(metrics->isArray());
    const auto &arr = metrics->asArray();
    ASSERT_EQ(arr.size(), 4u);

    // Name order regardless of registration order.
    std::vector<std::string> names;
    for (const auto &m : arr)
        names.push_back(m.find("name")->asString());
    EXPECT_EQ(names, (std::vector<std::string>{
                         "alpha/value", "beta/latency", "mid/points",
                         "zeta/events"}));

    EXPECT_EQ(arr[0].find("type")->asString(), "gauge");
    EXPECT_EQ(arr[0].find("value")->asNumber(), 1.5);
    EXPECT_EQ(arr[1].find("type")->asString(), "histogram");
    EXPECT_EQ(arr[1].find("count")->asNumber(), 1.0);
    EXPECT_EQ(arr[2].find("type")->asString(), "series");
    EXPECT_EQ(arr[2].find("points")->asArray().size(), 2u);
    EXPECT_EQ(arr[3].find("type")->asString(), "counter");
    EXPECT_EQ(arr[3].find("value")->asNumber(), 3.0);
}

TEST(MetricsRegistry, TimingMetricsExcludedByDefault)
{
    obs::MetricsRegistry reg;
    reg.counter("work/items").add(1);
    reg.gauge("work/elapsed_us", true).set(12345.0);

    const auto dump = reg.toJson();
    EXPECT_EQ(dump.find("elapsed_us"), std::string::npos);
    EXPECT_NE(dump.find("work/items"), std::string::npos);

    const auto withTimings = reg.toJson(true);
    EXPECT_NE(withTimings.find("elapsed_us"), std::string::npos);
}

TEST(MetricsRegistry, ReturnedHandlesAreStable)
{
    obs::MetricsRegistry reg;
    auto &c = reg.counter("c");
    c.add(1);
    reg.counter("other").add(99);
    // Registering more metrics must not invalidate earlier handles.
    c.add(1);
    EXPECT_EQ(reg.counter("c").value(), 2u);
}

TEST(MetricsRegistry, DumpIsDeterministic)
{
    const auto build = [] {
        obs::MetricsRegistry reg;
        reg.gauge("g").set(0.30000000000000004);
        reg.counter("c").add(7);
        auto &h = reg.histogram("h");
        for (std::uint64_t v = 0; v < 100; v += 3)
            h.record(v);
        return reg.toJson();
    };
    EXPECT_EQ(build(), build());
}
