/**
 * @file
 * Strict JSON validator for shell-driven tests: parse each file
 * argument with the test suite's own parser and fail loudly on the
 * first malformed one. Keeps the CLI pipeline test honest about the
 * machine artifacts it produces without depending on jq.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hpp"

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: json_lint FILE...\n");
        return 2;
    }
    for (int i = 1; i < argc; ++i) {
        std::ifstream is(argv[i]);
        if (!is) {
            std::fprintf(stderr, "json_lint: cannot read %s\n", argv[i]);
            return 1;
        }
        std::ostringstream oss;
        oss << is.rdbuf();
        if (!minnoc::json::parse(oss.str())) {
            std::fprintf(stderr, "json_lint: %s is not valid JSON\n",
                         argv[i]);
            return 1;
        }
    }
    return 0;
}
