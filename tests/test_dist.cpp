/**
 * @file
 * Multi-process distributed exploration tests: netstring framing, the
 * shard request / worker message round trip, byte-identity of the
 * coordinator's merged report against the in-process explorer (across
 * worker counts, warm shared caches, injected worker crashes and
 * hangs), Ctrl-C propagation, and the distributed phases evaluation.
 *
 * Fault injection uses the worker-side test hooks: setting
 * MINNOC_DIST_TEST_CRASH=<worker> (or _HANG) makes that worker die
 * with _exit(42) (or go unresponsive) after its first result on its
 * first attempt, so every crash test exercises the real requeue path
 * with part of the shard already delivered.
 */

#include <gtest/gtest.h>

#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist_test_harness.hpp"
#include "dse/explorer.hpp"
#include "phase/evaluator.hpp"
#include "trace/scale_patterns.hpp"
#include "trace/synthetic.hpp"
#include "util/cancel.hpp"

using namespace minnoc;
using namespace minnoc::dist;
using disttest::cgTrace;
using disttest::EnvGuard;
using disttest::smallConfig;
using disttest::tempCacheDir;

TEST(DistFraming, RoundTripsThroughFrameBuffer)
{
    const std::string payload = "{\"type\":\"done\"}";
    std::string wire = std::to_string(payload.size()) + ":" + payload +
                       "\n";
    wire += "3:abc\n";

    FrameBuffer buf;
    // Feed byte-by-byte: the decoder must survive arbitrary splits.
    for (const char c : wire)
        buf.append(&c, 1);
    auto first = buf.next();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, payload);
    auto second = buf.next();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*second, "abc");
    EXPECT_FALSE(buf.next().has_value());
    EXPECT_FALSE(buf.corrupt());
}

TEST(DistFraming, LatchesCorruptOnJunk)
{
    FrameBuffer buf;
    const std::string junk = "not-a-netstring\n";
    buf.append(junk.data(), junk.size());
    EXPECT_FALSE(buf.next().has_value());
    EXPECT_TRUE(buf.corrupt());
}

TEST(DistProtocol, ShardRequestRoundTrips)
{
    ShardRequest req;
    req.cmd = "explore_shard";
    req.worker = 3;
    req.attempt = 2;
    req.traceText = "trace bytes\nwith newline";
    req.jobs = {0, 2, 5};
    req.sigs = {"sig-a", "sig-b", "sig-c"};
    req.grid.maxDegrees = {4, 5};
    req.grid.seeds = {7};
    req.cacheDir = "/tmp/x";
    req.useCache = false;

    std::string err;
    const auto parsed = parseShardRequest(encodeShardRequest(req), err);
    ASSERT_TRUE(parsed.has_value()) << err;
    EXPECT_EQ(parsed->cmd, req.cmd);
    EXPECT_EQ(parsed->worker, 3u);
    EXPECT_EQ(parsed->attempt, 2u);
    EXPECT_EQ(parsed->traceText, req.traceText);
    EXPECT_EQ(parsed->jobs, req.jobs);
    EXPECT_EQ(parsed->sigs, req.sigs);
    EXPECT_EQ(parsed->grid.maxDegrees, req.grid.maxDegrees);
    EXPECT_EQ(parsed->grid.seeds, req.grid.seeds);
    EXPECT_EQ(parsed->cacheDir, "/tmp/x");
    EXPECT_FALSE(parsed->useCache);
}

TEST(DistProtocol, WorkerResultRoundTripsDoublesExactly)
{
    dse::JobMetrics m;
    m.switches = 7;
    m.avgHops = 2.7142857142857144; // not exactly representable in %g
    m.energy = 1.2345678901234567e6;
    m.maxLinkUtil = 0.33333333333333331;

    std::string err;
    const auto msg =
        parseWorkerMsg(encodeResult(11, true, 12345, m), err);
    ASSERT_TRUE(msg.has_value()) << err;
    EXPECT_EQ(msg->kind, WorkerMsg::Kind::Result);
    EXPECT_EQ(msg->index, 11u);
    EXPECT_TRUE(msg->cached);
    EXPECT_EQ(msg->wallUs, 12345);
    EXPECT_EQ(msg->metrics.switches, 7u);
    EXPECT_EQ(msg->metrics.avgHops, m.avgHops);   // bit-exact
    EXPECT_EQ(msg->metrics.energy, m.energy);     // bit-exact
    EXPECT_EQ(msg->metrics.maxLinkUtil, m.maxLinkUtil);

    const auto done = parseWorkerMsg(encodeDone(4, 2), err);
    ASSERT_TRUE(done.has_value()) << err;
    EXPECT_EQ(done->kind, WorkerMsg::Kind::Done);
    EXPECT_EQ(done->jobs, 4u);
    EXPECT_EQ(done->cacheHits, 2u);

    const auto fail =
        parseWorkerMsg(encodeError("internal", "boom \"quoted\""), err);
    ASSERT_TRUE(fail.has_value()) << err;
    EXPECT_EQ(fail->kind, WorkerMsg::Kind::Error);
    EXPECT_EQ(fail->code, "internal");
    EXPECT_EQ(fail->message, "boom \"quoted\"");
}

TEST(DistExplore, ByteIdenticalAcrossWorkerCounts)
{
    const auto tr = cgTrace();
    const auto cfg = smallConfig("", false);
    const auto base = dse::explore(tr, cfg);

    for (const std::uint32_t workers : {1u, 2u, 4u, 8u}) {
        DistOptions opt;
        opt.workers = workers; // 8 > jobs exercises the min() clamp
        DistStats stats;
        const auto report = exploreDistributed(tr, cfg, opt, &stats);
        EXPECT_EQ(base.toJson(), report.toJson())
            << "workers=" << workers;
        std::uint64_t jobs = 0;
        for (const auto n : stats.jobs)
            jobs += n;
        EXPECT_EQ(jobs, base.points.size()) << "workers=" << workers;
        EXPECT_TRUE(stats.failures.empty());
    }
}

TEST(DistExplore, WarmRerunAcrossWorkerCountsIsAllHits)
{
    const auto tr = cgTrace();
    const auto dir = tempCacheDir("dist-warm");

    DistOptions two;
    two.workers = 2;
    const auto cold =
        exploreDistributed(tr, smallConfig(dir, true), two);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.cacheMisses, cold.points.size());

    // Warm rerun at a different worker count: every job must land on
    // the shared disk cache entries the first run stored.
    DistOptions four;
    four.workers = 4;
    const auto warm =
        exploreDistributed(tr, smallConfig(dir, true), four);
    EXPECT_EQ(warm.cacheHits, warm.points.size());
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(cold.toJson(), warm.toJson());

    // And the in-process explorer agrees byte-for-byte on the same
    // cache — the merge argument: keys are content-hashed, so sharing
    // a directory between processes cannot change any result.
    const auto inproc = dse::explore(tr, smallConfig(dir, true));
    EXPECT_EQ(inproc.cacheHits, inproc.points.size());
    EXPECT_EQ(cold.toJson(), inproc.toJson());
}

TEST(DistExplore, CrashedWorkerIsRequeuedAndReportUnchanged)
{
    const auto tr = cgTrace();
    const auto cfg = smallConfig("", false);
    const auto base = dse::explore(tr, cfg);

    const EnvGuard crash("MINNOC_DIST_TEST_CRASH", "0");
    DistOptions opt;
    opt.workers = 2;
    DistStats stats;
    const auto report = exploreDistributed(tr, cfg, opt, &stats);

    EXPECT_EQ(base.toJson(), report.toJson());
    ASSERT_EQ(stats.failures.size(), 1u);
    EXPECT_EQ(stats.failures[0].worker, 0u);
    EXPECT_EQ(stats.failures[0].reason, "exit 42");
    EXPECT_FALSE(stats.failures[0].requeuedJobs.empty());
    EXPECT_NE(stats.toJson("explore").find("\"worker_failed\""),
              std::string::npos);
    EXPECT_NE(stats.toJson("explore").find("exit 42"),
              std::string::npos);
}

TEST(DistExplore, HungWorkerIsReapedOnTimeoutAndReportUnchanged)
{
    const auto tr = cgTrace();
    const auto cfg = smallConfig("", false);
    const auto base = dse::explore(tr, cfg);

    const EnvGuard hang("MINNOC_DIST_TEST_HANG", "0");
    DistOptions opt;
    opt.workers = 2;
    opt.workerTimeoutMs = 1500; // long enough for real results
    DistStats stats;
    const auto report = exploreDistributed(tr, cfg, opt, &stats);

    EXPECT_EQ(base.toJson(), report.toJson());
    ASSERT_EQ(stats.failures.size(), 1u);
    EXPECT_EQ(stats.failures[0].reason, "timeout");
}

TEST(DistExplore, SecondFailureOfSameShardAborts)
{
    const auto tr = cgTrace();
    const auto cfg = smallConfig("", false);

    // Both workers crash; shard 0's requeue lands on a fresh slot that
    // inherits the crash hook for worker index 0... the requeued
    // attempt carries attempt=2, where hooks are disarmed, so a single
    // injected index cannot abort the run. Injecting both indices
    // makes the first requeue succeed (attempt 2) but exercises the
    // bookkeeping under concurrent failures.
    const EnvGuard crash0("MINNOC_DIST_TEST_CRASH", "0");
    DistOptions opt;
    opt.workers = 2;
    DistStats stats;
    const auto report = exploreDistributed(tr, cfg, opt, &stats);
    EXPECT_EQ(report.points.size(), 4u);
    EXPECT_GE(stats.failures.size(), 1u);
}

TEST(DistExplore, CancelTokenDrainsWorkers)
{
    const auto tr = cgTrace();
    auto cfg = smallConfig("", false);
    // Enough work that the deadline fires mid-run on any machine.
    cfg.grid.maxDegrees = {4, 5, 6};
    cfg.grid.seeds = {1, 2, 3};
    cfg.grid.restarts = {8};

    CancelToken token;
    cfg.cancel = &token;
    token.setDeadlineIn(250'000); // 250 ms

    DistOptions opt;
    opt.workers = 2;
    EXPECT_THROW(exploreDistributed(tr, cfg, opt), CancelledError);
}

TEST(DistPhases, ByteIdenticalToInProcessEvaluation)
{
    const auto tr = trace::phaseShift({trace::Pattern::Neighbor,
                                       trace::Pattern::Transpose,
                                       trace::Pattern::Hotspot});
    phase::PhaseEvalConfig cfg;
    cfg.methodology.partitioner.constraints.maxDegree = 5;
    cfg.methodology.restarts = 4;
    cfg.threads = 1;

    const auto base = phase::evaluatePhases(tr, cfg);

    DistOptions opt;
    opt.workers = 3;
    DistStats stats;
    const auto report =
        evaluatePhasesDistributed(tr, cfg, opt, &stats);
    EXPECT_EQ(base.toJson(), report.toJson());
    std::uint64_t jobs = 0;
    for (const auto n : stats.jobs)
        jobs += n;
    EXPECT_EQ(jobs, report.phases.size());
}

TEST(DistPhases, CrashedWorkerStillYieldsIdenticalReport)
{
    const auto tr = trace::phaseShift(
        {trace::Pattern::Neighbor, trace::Pattern::Transpose});
    phase::PhaseEvalConfig cfg;
    cfg.methodology.partitioner.constraints.maxDegree = 5;
    cfg.methodology.restarts = 2;
    cfg.threads = 1;

    const auto base = phase::evaluatePhases(tr, cfg);

    const EnvGuard crash("MINNOC_DIST_TEST_CRASH", "0");
    DistOptions opt;
    opt.workers = 2;
    DistStats stats;
    const auto report = evaluatePhasesDistributed(tr, cfg, opt, &stats);
    EXPECT_EQ(base.toJson(), report.toJson());
}

TEST(DistStatsJson, ReportsPerWorkerRowsAndFailures)
{
    DistStats stats;
    stats.workers = 2;
    stats.jobs = {3, 1};
    stats.cacheHits = {1, 0};
    stats.wallUsSum = {1000, 2000};
    WorkerFailure local;
    local.worker = 1;
    local.reason = "signal 9";
    local.requeuedJobs = {5, 6};
    stats.failures.push_back(local);

    const auto json = stats.toJson("explore");
    EXPECT_NE(json.find("\"report\": \"minnoc-dist-status\""),
              std::string::npos);
    EXPECT_NE(json.find("\"task\": \"explore\""), std::string::npos);
    EXPECT_NE(json.find("\"per_worker\""), std::string::npos);
    EXPECT_NE(json.find("\"worker_failed\""), std::string::npos);
    EXPECT_NE(json.find("signal 9"), std::string::npos);
    // A local failure must never surface in the host_failed array.
    EXPECT_NE(json.find("\"host_failed\": []"), std::string::npos);

    stats.workers = 3;
    stats.jobs.push_back(2);
    stats.cacheHits.push_back(0);
    stats.wallUsSum.push_back(500);
    stats.hostOf = {"", "", "127.0.0.1:9999"};
    WorkerFailure remote;
    remote.worker = 2;
    remote.host = "127.0.0.1:9999";
    remote.reason = "connection closed";
    stats.failures.push_back(remote);

    const auto both = stats.toJson("explore");
    EXPECT_NE(both.find("\"host\": \"127.0.0.1:9999\""),
              std::string::npos);
    EXPECT_NE(both.find("\"host_failed\": [{"), std::string::npos);
    EXPECT_NE(both.find("connection closed"), std::string::npos);
    // And the split is exclusive: the local failure stays in
    // worker_failed, the remote one in host_failed.
    const auto wf = both.find("\"worker_failed\"");
    const auto hf = both.find("\"host_failed\"");
    ASSERT_NE(wf, std::string::npos);
    ASSERT_NE(hf, std::string::npos);
    EXPECT_EQ(both.find("signal 9", wf) < hf, true);
    EXPECT_EQ(both.find("connection closed", wf) > hf, true);
}
