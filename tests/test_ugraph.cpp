/**
 * @file
 * Unit tests for the undirected simple graph.
 */

#include <gtest/gtest.h>

#include "graph/ugraph.hpp"

using namespace minnoc::graph;

TEST(Ugraph, EmptyGraph)
{
    Ugraph g;
    EXPECT_EQ(g.numNodes(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_DOUBLE_EQ(g.density(), 0.0);
}

TEST(Ugraph, AddEdgeSymmetric)
{
    Ugraph g(3);
    EXPECT_TRUE(g.addEdge(0, 2));
    EXPECT_TRUE(g.hasEdge(0, 2));
    EXPECT_TRUE(g.hasEdge(2, 0));
    EXPECT_EQ(g.degree(0), 1u);
    EXPECT_EQ(g.degree(2), 1u);
    EXPECT_EQ(g.degree(1), 0u);
}

TEST(Ugraph, DuplicateEdgeRejected)
{
    Ugraph g(2);
    EXPECT_TRUE(g.addEdge(0, 1));
    EXPECT_FALSE(g.addEdge(0, 1));
    EXPECT_FALSE(g.addEdge(1, 0));
    EXPECT_EQ(g.numEdges(), 1u);
}

TEST(Ugraph, SelfLoopRejected)
{
    Ugraph g(2);
    EXPECT_FALSE(g.addEdge(1, 1));
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_FALSE(g.hasEdge(1, 1));
}

TEST(Ugraph, GrowWithAddNode)
{
    Ugraph g(2);
    g.addEdge(0, 1);
    const NodeId n = g.addNode();
    EXPECT_EQ(n, 2u);
    EXPECT_TRUE(g.addEdge(0, 2));
    EXPECT_TRUE(g.hasEdge(0, 2));
    EXPECT_TRUE(g.hasEdge(0, 1)); // old edges survive growth
    EXPECT_FALSE(g.hasEdge(1, 2));
}

TEST(Ugraph, MaxDegree)
{
    Ugraph g(4);
    EXPECT_EQ(g.maxDegree(), 0u);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(0, 3);
    EXPECT_EQ(g.maxDegree(), 3u);
}

TEST(Ugraph, IsClique)
{
    Ugraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(1, 2);
    EXPECT_TRUE(g.isClique({0, 1, 2}));
    EXPECT_FALSE(g.isClique({0, 1, 3}));
    EXPECT_TRUE(g.isClique({0}));
    EXPECT_TRUE(g.isClique({}));
}

TEST(Ugraph, Density)
{
    Ugraph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    g.addEdge(0, 3);
    EXPECT_DOUBLE_EQ(g.density(), 3.0 / 6.0);
}

TEST(Ugraph, NeighborsList)
{
    Ugraph g(5);
    g.addEdge(2, 0);
    g.addEdge(2, 4);
    const auto &nbrs = g.neighbors(2);
    EXPECT_EQ(nbrs.size(), 2u);
}

TEST(Ugraph, OutOfRangePanics)
{
    Ugraph g(2);
    EXPECT_DEATH(g.addEdge(0, 5), "out of range");
    EXPECT_DEATH(g.neighbors(7), "out of range");
}

TEST(Ugraph, LargeCompleteGraph)
{
    const std::size_t n = 50;
    Ugraph g(n);
    for (NodeId a = 0; a < n; ++a) {
        for (NodeId b = a + 1; b < n; ++b)
            g.addEdge(a, b);
    }
    EXPECT_EQ(g.numEdges(), n * (n - 1) / 2);
    EXPECT_DOUBLE_EQ(g.density(), 1.0);
    EXPECT_EQ(g.maxDegree(), n - 1);
}
