#!/bin/sh
# End-to-end smoke test of the minnoc CLI: generate a trace, analyze,
# design, round-trip the design file through show/simulate/dot.
# Invoked by CTest with $1 = path to the minnoc binary.
set -e

MINNOC="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

"$MINNOC" gen --bench CG --ranks 8 --iterations 1 --out "$DIR/cg.trace"
test -s "$DIR/cg.trace"

"$MINNOC" analyze "$DIR/cg.trace" | grep -q "contention periods"

"$MINNOC" design "$DIR/cg.trace" --max-degree 5 --restarts 4 \
    --out "$DIR/cg.design" 2>/dev/null
test -s "$DIR/cg.design"
head -1 "$DIR/cg.design" | grep -q "minnoc-design 1"

"$MINNOC" show "$DIR/cg.design" | grep -q "FinalizedDesign"

"$MINNOC" simulate "$DIR/cg.trace" --network "$DIR/cg.design" \
    | grep -q "deadlocks=0"
"$MINNOC" simulate "$DIR/cg.trace" --network mesh | grep -q "exec="

"$MINNOC" dot "$DIR/cg.design" --out "$DIR/cg.dot"
grep -q "graph design" "$DIR/cg.dot"

echo "cli pipeline OK"
