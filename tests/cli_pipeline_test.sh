#!/bin/sh
# End-to-end smoke test of the minnoc CLI: generate a trace, analyze,
# design, round-trip the design file through show/simulate/dot, and
# run the phase-gain pipeline on a synthetic phase-shift workload.
# Invoked by CTest with $1 = path to the minnoc binary and
# $2 = path to the json_lint validator (optional; JSON checks are
# skipped when absent).
set -e

MINNOC="$1"
JSON_LINT="$2"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

lint_json() {
    if [ -n "$JSON_LINT" ]; then
        "$JSON_LINT" "$@"
    fi
}

"$MINNOC" gen --bench CG --ranks 8 --iterations 1 --out "$DIR/cg.trace"
test -s "$DIR/cg.trace"

"$MINNOC" analyze "$DIR/cg.trace" | grep -q "contention periods"

"$MINNOC" design "$DIR/cg.trace" --max-degree 5 --restarts 4 \
    --out "$DIR/cg.design" 2>/dev/null
test -s "$DIR/cg.design"
head -1 "$DIR/cg.design" | grep -q "minnoc-design 1"

"$MINNOC" show "$DIR/cg.design" | grep -q "FinalizedDesign"

"$MINNOC" simulate "$DIR/cg.trace" --network "$DIR/cg.design" \
    | grep -q "deadlocks=0"
"$MINNOC" simulate "$DIR/cg.trace" --network mesh | grep -q "exec="

"$MINNOC" dot "$DIR/cg.design" --out "$DIR/cg.dot"
grep -q "graph design" "$DIR/cg.dot"

# Phase pipeline: a synthetic phase-shift workload must segment into
# at least two phases, verify contention-free per phase, and produce a
# byte-identical report at any thread count.
"$MINNOC" gen --patterns neighbor,transpose,hotspot --ranks 16 \
    --out "$DIR/shift.trace"
test -s "$DIR/shift.trace"

"$MINNOC" phases "$DIR/shift.trace" --restarts 4 --threads 1 \
    --out "$DIR/phases1.json" >"$DIR/phases.log" 2>/dev/null
grep -q "phase(s)" "$DIR/phases.log"
phases=$(sed -n 's/^\([0-9]*\) phase(s).*/\1/p' "$DIR/phases.log")
test "$phases" -ge 2

"$MINNOC" phases "$DIR/shift.trace" --restarts 4 --threads 4 \
    --out "$DIR/phases4.json" 2>/dev/null
cmp "$DIR/phases1.json" "$DIR/phases4.json"
lint_json "$DIR/phases1.json"
grep -q '"union_phase_violations": \[0\(, 0\)*\]' "$DIR/phases1.json"

# The explore sweep accepts the phase-window dimension and reports it.
"$MINNOC" explore "$DIR/shift.trace" --degrees 5 --vcs 3 \
    --unidirectional 0 --phase-windows 0,64 --cache 0 \
    --out "$DIR/explore.json" 2>/dev/null
lint_json "$DIR/explore.json"
grep -q '"phase_window": 64' "$DIR/explore.json"

echo "cli pipeline OK"
