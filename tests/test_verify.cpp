/**
 * @file
 * Unit tests for the Theorem-1 verifier.
 */

#include <gtest/gtest.h>

#include "core/verify.hpp"
#include "util/rng.hpp"

using namespace minnoc::core;
using minnoc::Rng;

namespace {

/** Hand-build a two-switch design with one pipe of @p links links and
 * the given per-direction comm -> link assignment. */
FinalizedDesign
twoSwitchDesign(const CliqueSet &ks, std::uint32_t links,
                const std::map<CommId, std::uint32_t> &fwd,
                const std::map<CommId, std::uint32_t> &bwd)
{
    FinalizedDesign d;
    d.numProcs = ks.numProcs();
    d.numSwitches = 2;
    d.switchProcs = {{}, {}};
    d.procHome.resize(d.numProcs);
    // Even procs on switch 0, odd on switch 1.
    for (ProcId p = 0; p < d.numProcs; ++p) {
        d.procHome[p] = p % 2;
        d.switchProcs[p % 2].push_back(p);
    }
    d.comms.resize(ks.numComms());
    d.routes.resize(ks.numComms());
    for (CommId c = 0; c < ks.numComms(); ++c) {
        d.comms[c] = ks.comm(c);
        const auto s = d.procHome[d.comms[c].src];
        const auto t = d.procHome[d.comms[c].dst];
        if (s == t)
            d.routes[c] = {s};
        else
            d.routes[c] = {s, t};
    }
    FinalizedPipe pipe;
    pipe.key = PipeKey(0, 1);
    pipe.links = links;
    pipe.fwdLink = fwd;
    pipe.bwdLink = bwd;
    d.pipes.push_back(pipe);
    return d;
}

} // namespace

TEST(Verify, EmptyDesignContentionFree)
{
    CliqueSet ks(2);
    FinalizedDesign d;
    d.numProcs = 2;
    d.numSwitches = 1;
    d.switchProcs = {{0, 1}};
    d.procHome = {0, 0};
    EXPECT_TRUE(checkContentionFree(d, ks).empty());
    EXPECT_TRUE(resourceConflictSet(d).empty());
}

TEST(Verify, ConflictingCommsOnSeparateLinksPass)
{
    CliqueSet ks(4);
    const CommId a = ks.internComm(Comm(0, 1)); // 0 on S0, 1 on S1
    const CommId b = ks.internComm(Comm(2, 3)); // 2 on S0, 3 on S1
    ks.addCliqueByIds({a, b});
    const auto d = twoSwitchDesign(ks, 2, {{a, 0}, {b, 1}}, {});
    EXPECT_TRUE(checkContentionFree(d, ks).empty());
    // They still do not share resources at all.
    EXPECT_TRUE(resourceConflictSet(d).empty());
}

TEST(Verify, ConflictingCommsOnSameLinkFlagged)
{
    CliqueSet ks(4);
    const CommId a = ks.internComm(Comm(0, 1));
    const CommId b = ks.internComm(Comm(2, 3));
    ks.addCliqueByIds({a, b});
    const auto d = twoSwitchDesign(ks, 1, {{a, 0}, {b, 0}}, {});
    const auto violations = checkContentionFree(d, ks);
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_EQ(violations[0].pipe, PipeKey(0, 1));
    EXPECT_TRUE(violations[0].forward);
    EXPECT_EQ(violations[0].link, 0u);
    const auto text = violations[0].toString(ks);
    EXPECT_NE(text.find("share link"), std::string::npos);
}

TEST(Verify, NonConflictingSharingIsAllowed)
{
    CliqueSet ks(4);
    const CommId a = ks.internComm(Comm(0, 1));
    const CommId b = ks.internComm(Comm(2, 3));
    ks.addCliqueByIds({a});
    ks.addCliqueByIds({b}); // different periods: no potential contention
    const auto d = twoSwitchDesign(ks, 1, {{a, 0}, {b, 0}}, {});
    EXPECT_TRUE(checkContentionFree(d, ks).empty());
    // But they DO share a resource.
    const auto conflicts = resourceConflictSet(d);
    ASSERT_EQ(conflicts.size(), 1u);
    EXPECT_EQ(conflicts[0],
              (std::pair<CommId, CommId>{std::min(a, b), std::max(a, b)}));
}

TEST(Verify, OppositeDirectionsNeverConflict)
{
    CliqueSet ks(4);
    const CommId a = ks.internComm(Comm(0, 1)); // fwd S0->S1
    const CommId b = ks.internComm(Comm(1, 0)); // bwd S1->S0
    ks.addCliqueByIds({a, b});
    const auto d = twoSwitchDesign(ks, 1, {{a, 0}}, {{b, 0}});
    EXPECT_TRUE(checkContentionFree(d, ks).empty());
    EXPECT_TRUE(resourceConflictSet(d).empty());
}

TEST(Verify, TheoremOneIsSufficientNotNecessary)
{
    // C and R both non-empty but disjoint: still contention-free.
    CliqueSet ks(6);
    const CommId a = ks.internComm(Comm(0, 1));
    const CommId b = ks.internComm(Comm(2, 3));
    const CommId c = ks.internComm(Comm(4, 5));
    ks.addCliqueByIds({a, b}); // a-b potentially contend
    ks.addCliqueByIds({c});
    // a and c share a link (no temporal conflict); b rides alone.
    const auto d =
        twoSwitchDesign(ks, 2, {{a, 0}, {c, 0}, {b, 1}}, {});
    EXPECT_FALSE(resourceConflictSet(d).empty());
    EXPECT_FALSE(ks.contentionSet().empty());
    EXPECT_TRUE(checkContentionFree(d, ks).empty());
}
