/**
 * @file
 * Unit tests for the worker pool behind the parallel restart loop.
 * These are the primary targets of the TSan CI job.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

using minnoc::ThreadPool;

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit(
            [&counter] { counter.fetch_add(1, std::memory_order_relaxed); }));
    }
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(1000, 0);
    // Disjoint slots: no synchronization needed, TSan must stay quiet.
    pool.parallelFor(hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
    for (const int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions)
{
    ThreadPool pool(2);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        pool.parallelFor(16,
                         [&completed](std::size_t i) {
                             if (i == 7)
                                 throw std::runtime_error("boom");
                             completed.fetch_add(1);
                         }),
        std::runtime_error);
    // Every non-throwing task still ran (parallelFor waits for all
    // tasks before rethrowing, so captured references stay valid).
    EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPool, ZeroThreadRequestClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<bool> ran{false};
    pool.parallelFor(1, [&ran](std::size_t) { ran = true; });
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, DestructorDrainsWithoutDeadlock)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(3);
        std::vector<std::future<void>> futures;
        for (int i = 0; i < 24; ++i) {
            futures.push_back(pool.submit([&counter] {
                counter.fetch_add(1, std::memory_order_relaxed);
            }));
        }
        for (auto &f : futures)
            f.get();
    } // destructor joins here
    EXPECT_EQ(counter.load(), 24);
}

TEST(ThreadPool, ReusableAcrossManyRounds)
{
    ThreadPool pool(4);
    std::atomic<long> total{0};
    for (int round = 0; round < 20; ++round) {
        pool.parallelFor(8, [&total](std::size_t i) {
            total.fetch_add(static_cast<long>(i),
                            std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(total.load(), 20 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}
