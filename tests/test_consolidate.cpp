/**
 * @file
 * Direct unit tests for global route consolidation and degree repair
 * (the extensions in DESIGN.md section 5b).
 */

#include <gtest/gtest.h>

#include "core/design_network.hpp"
#include "core/route_optimizer.hpp"
#include "util/rng.hpp"

using namespace minnoc::core;
using minnoc::Rng;

namespace {

/**
 * Three switches in a row hosting procs {0,1}, {2,3}, {4,5}; comms
 * supplied by the caller. Returns switch ids {a, b, c}.
 */
std::array<SwitchId, 3>
threeSwitches(DesignNetwork &net, Rng &rng)
{
    const SwitchId b = net.splitSwitch(0, rng);
    const SwitchId c = net.splitSwitch(0, rng);
    for (ProcId p : {0u, 1u})
        net.moveProc(p, 0);
    for (ProcId p : {2u, 3u})
        net.moveProc(p, b);
    for (ProcId p : {4u, 5u})
        net.moveProc(p, c);
    return {0, b, c};
}

} // namespace

TEST(Consolidate, MergesCompatibleTrafficOntoSharedPipes)
{
    // (0,4) and (1,5) in different cliques: consolidation can ride
    // both on one pipe A-C with width 1.
    CliqueSet ks(6);
    ks.addClique({Comm(0, 4)});
    ks.addClique({Comm(1, 5)});
    DesignNetwork net(ks);
    Rng rng(1);
    threeSwitches(net, rng);
    EXPECT_EQ(net.totalEstimatedLinks(), 1u); // direct routes share A-C

    // Force them apart first: reroute (1,5) via B.
    const CommId c15 = ks.findComm(Comm(1, 5));
    net.setRoute(c15, {net.homeOf(1), 1, net.homeOf(5)});
    EXPECT_EQ(net.totalEstimatedLinks(), 3u);

    const auto stats = consolidateRoutes(net, 4);
    EXPECT_GT(stats.committedMoves, 0u);
    // Greedy consolidation reclaims at least one link; depending on
    // visit order it lands on the 1-link global optimum (both comms
    // direct) or the 2-link local optimum (both via B).
    EXPECT_LE(net.totalEstimatedLinks(), 2u);
    net.checkInvariants();
}

TEST(Consolidate, RespectsConflicts)
{
    // Same clique: the two comms can never share a link; consolidation
    // must not collapse them into width-1.
    CliqueSet ks(6);
    ks.addClique({Comm(0, 4), Comm(1, 5)});
    DesignNetwork net(ks);
    Rng rng(2);
    threeSwitches(net, rng);

    consolidateRoutes(net, 4);
    net.checkInvariants();
    // Total estimate can be 2 (width-2 pipe or detour) but never 1.
    EXPECT_GE(net.totalEstimatedLinks(), 2u);
}

TEST(Consolidate, MovesMirroredPairsJointly)
{
    // Exchange pair (0,4)/(4,0): individually unmovable (full-duplex
    // width is the max), jointly consolidatable onto the A-B-C path.
    CliqueSet ks(6);
    ks.addClique({Comm(0, 4), Comm(4, 0)});
    ks.addClique({Comm(0, 2), Comm(2, 0)});
    ks.addClique({Comm(2, 4), Comm(4, 2)});
    DesignNetwork net(ks);
    Rng rng(3);
    threeSwitches(net, rng);
    // Direct routes: pipes A-C, A-B, B-C each width 1 = 3 links.
    EXPECT_EQ(net.totalEstimatedLinks(), 3u);

    consolidateRoutes(net, 8);
    net.checkInvariants();
    // (0,4)/(4,0) can ride A-B + B-C (different cliques from the
    // neighbor exchanges): 2 links total.
    EXPECT_EQ(net.totalEstimatedLinks(), 2u);
}

TEST(Consolidate, NoOpOnOptimalNetwork)
{
    CliqueSet ks(6);
    ks.addClique({Comm(0, 2), Comm(2, 4)});
    DesignNetwork net(ks);
    Rng rng(4);
    threeSwitches(net, rng);
    const auto before = net.totalEstimatedLinks();
    const auto stats = consolidateRoutes(net, 4);
    EXPECT_EQ(stats.committedMoves, 0u);
    EXPECT_EQ(net.totalEstimatedLinks(), before);
}

TEST(Repair, ShedsTrafficFromOverloadedSwitch)
{
    // Hub scenario: a heavy middle switch B {1..4} relays the only
    // A <-> C communication. With a budget that makes B a violator but
    // leaves A and C plenty of spare degree, repair must open a direct
    // A-C pipe and take B out of the path.
    CliqueSet ks(6);
    ks.addClique({Comm(0, 5)});
    ks.addClique({Comm(1, 2)}); // intra-B load (no links)
    DesignNetwork net(ks);
    Rng rng(5);
    const SwitchId b = net.splitSwitch(0, rng);
    const SwitchId c = net.splitSwitch(0, rng);
    net.moveProc(0, 0);
    for (ProcId p : {1u, 2u, 3u, 4u})
        net.moveProc(p, b);
    net.moveProc(5, c);

    const auto c05 = ks.findComm(Comm(0, 5));
    net.setRoute(c05, {0, b, c});
    const auto degB = net.estimatedDegree(b);
    ASSERT_GE(degB, 6u); // 4 procs + 2 transit pipes

    const std::uint32_t budget = degB - 1;
    const auto stats = repairDegrees(net, budget, 4);
    net.checkInvariants();
    EXPECT_GT(stats.committedMoves, 0u);
    EXPECT_LE(net.estimatedDegree(b), budget);
    // The communication now bypasses B entirely.
    EXPECT_EQ(net.route(c05), (std::vector<SwitchId>{0, c}));
}

TEST(Repair, NoOpWhenWithinBudget)
{
    CliqueSet ks(6);
    ks.addClique({Comm(0, 2)});
    DesignNetwork net(ks);
    Rng rng(6);
    threeSwitches(net, rng);
    const auto stats = repairDegrees(net, 64, 4);
    EXPECT_EQ(stats.committedMoves, 0u);
}
