/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "util/rng.hpp"

using minnoc::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(7);
    for (const std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.below(0), "bound 0");
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveBounds)
{
    Rng rng(3);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= (v == -3);
        sawHi |= (v == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, RangeSingleton)
{
    Rng rng(5);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(rng.range(4, 4), 4);
}

TEST(Rng, RangeBackwardsPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.range(2, 1), "lo > hi");
}

TEST(Rng, UniformInHalfOpenUnit)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) is 0.5; loose tolerance.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(23);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto shuffled = v;
    rng.shuffle(shuffled);
    auto sorted = shuffled;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, v);
}

TEST(Rng, ShuffleActuallyMoves)
{
    Rng rng(29);
    std::vector<int> v(50);
    for (int i = 0; i < 50; ++i)
        v[i] = i;
    auto shuffled = v;
    rng.shuffle(shuffled);
    EXPECT_NE(shuffled, v);
}

TEST(Rng, ShuffleEmptyAndSingle)
{
    Rng rng(31);
    std::vector<int> empty;
    rng.shuffle(empty);
    EXPECT_TRUE(empty.empty());
    std::vector<int> one{7};
    rng.shuffle(one);
    EXPECT_EQ(one, std::vector<int>{7});
}

TEST(Rng, SplitIsDeterministicPerStream)
{
    Rng a(42);
    Rng b(42);
    Rng childA = a.split(3);
    Rng childB = b.split(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(childA.next(), childB.next());
}

TEST(Rng, SplitStreamsDecorrelate)
{
    Rng parent(42);
    Rng s0 = parent.split(0);
    Rng s1 = parent.split(1);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (s0.next() == s1.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, SplitDoesNotAdvanceParent)
{
    Rng a(7);
    Rng b(7);
    (void)a.split(0);
    (void)a.split(1);
    (void)a.split(99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitChildDiffersFromParentStream)
{
    Rng parent(17);
    Rng child = parent.split(0);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (parent.next() == child.next());
    EXPECT_LT(same, 3);
}
