/**
 * @file
 * Thread-count invariance of the methodology: the parallel restart loop
 * processes wave results in seed order and replays the sequential
 * stopping rule, so for a fixed seed the chosen design must be
 * byte-identical at every thread count, on all five NAS patterns.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/design_io.hpp"
#include "core/methodology.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;

namespace {

core::DesignOutcome
designWithThreads(const core::CliqueSet &ks, std::uint32_t threads)
{
    core::MethodologyConfig cfg;
    cfg.partitioner.constraints.maxDegree = 5;
    cfg.partitioner.seed = 1;
    cfg.restarts = 6;
    cfg.threads = threads;
    return core::runMethodology(ks, cfg);
}

std::string
serialized(const core::FinalizedDesign &design)
{
    std::ostringstream oss;
    core::saveDesign(design, oss);
    return oss.str();
}

class ThreadsDeterminism
    : public ::testing::TestWithParam<trace::Benchmark>
{
};

} // namespace

TEST_P(ThreadsDeterminism, FourThreadsMatchOneThread)
{
    trace::NasConfig tcfg;
    tcfg.ranks = trace::smallConfigRanks(GetParam());
    tcfg.iterations = 1;
    tcfg.seed = 1;
    const auto tr = trace::generateBenchmark(GetParam(), tcfg);
    const auto ks = trace::analyzeByCall(tr);

    const auto one = designWithThreads(ks, 1);
    const auto four = designWithThreads(ks, 4);

    EXPECT_EQ(one.design.totalLinks(), four.design.totalLinks());
    EXPECT_EQ(one.design.numSwitches, four.design.numSwitches);
    EXPECT_EQ(one.constraintsMet, four.constraintsMet);
    EXPECT_EQ(one.violations.size(), four.violations.size());
    EXPECT_EQ(serialized(one.design), serialized(four.design));
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, ThreadsDeterminism,
    ::testing::Values(trace::Benchmark::BT, trace::Benchmark::CG,
                      trace::Benchmark::FFT, trace::Benchmark::MG,
                      trace::Benchmark::SP),
    [](const ::testing::TestParamInfo<trace::Benchmark> &info) {
        return trace::benchmarkName(info.param);
    });

TEST(ThreadsDeterminism, OversubscribedPoolStillMatches)
{
    // More threads than restarts: the wave logic must clamp and still
    // replay the same selection.
    trace::NasConfig tcfg;
    tcfg.ranks = trace::smallConfigRanks(trace::Benchmark::CG);
    tcfg.iterations = 1;
    const auto tr = trace::generateBenchmark(trace::Benchmark::CG, tcfg);
    const auto ks = trace::analyzeByCall(tr);

    const auto one = designWithThreads(ks, 1);
    const auto many = designWithThreads(ks, 16);
    EXPECT_EQ(serialized(one.design), serialized(many.design));
}
