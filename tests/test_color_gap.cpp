/**
 * @file
 * The Fast_Color estimate is only a lower bound: a 5-cycle of pairwise
 * conflicts (clique number 2, chromatic number 3) makes it
 * underestimate. These tests pin down that gap and verify the
 * methodology's estimate-then-exact-recheck loop handles it.
 */

#include <gtest/gtest.h>

#include "core/design_network.hpp"
#include "core/finalize.hpp"
#include "core/methodology.hpp"
#include "graph/coloring.hpp"
#include "util/rng.hpp"

using namespace minnoc::core;
using minnoc::Rng;

namespace {

/**
 * Ten processors, five communications c0..c4 from procs 0-4 to procs
 * 5-9, with pairwise conflicts forming the 5-cycle c0-c1-c2-c3-c4-c0:
 * clique number 2, chromatic number 3.
 */
CliqueSet
pentagonCliques()
{
    CliqueSet ks(10);
    const Comm comms[5] = {Comm(0, 5), Comm(1, 6), Comm(2, 7),
                           Comm(3, 8), Comm(4, 9)};
    for (int i = 0; i < 5; ++i)
        ks.addClique({comms[i], comms[(i + 1) % 5]});
    return ks;
}

} // namespace

TEST(ColorGap, FastColorUnderestimatesOddCycle)
{
    CliqueSet ks = pentagonCliques();
    DesignNetwork net(ks);
    Rng rng(1);
    const SwitchId sj = net.splitSwitch(0, rng);
    // Sources on one switch, destinations on the other: every comm
    // crosses the single pipe.
    for (ProcId p = 0; p < 5; ++p)
        net.moveProc(p, 0);
    for (ProcId p = 5; p < 10; ++p)
        net.moveProc(p, sj);

    // Fast_Color sees the largest clique-set intersection: 2.
    EXPECT_EQ(net.fastColor(PipeKey(0, sj)), 2u);

    // Formal coloring needs 3 (odd cycle).
    const auto design = finalizeDesign(net);
    ASSERT_EQ(design.pipes.size(), 1u);
    EXPECT_EQ(design.pipes[0].links, 3u);
    EXPECT_TRUE(design.colorsExact);
}

TEST(ColorGap, FinalizedAssignmentIsStillContentionFree)
{
    CliqueSet ks = pentagonCliques();
    DesignNetwork net(ks);
    Rng rng(1);
    const SwitchId sj = net.splitSwitch(0, rng);
    for (ProcId p = 0; p < 5; ++p)
        net.moveProc(p, 0);
    for (ProcId p = 5; p < 10; ++p)
        net.moveProc(p, sj);
    const auto design = finalizeDesign(net);
    EXPECT_TRUE(checkContentionFree(design, ks).empty());
}

TEST(ColorGap, MethodologyAbsorbsTheGap)
{
    // With a degree budget that the ESTIMATE satisfies but the exact
    // coloring would not, the driver's re-check loop must still land
    // on a valid (possibly repartitioned) design.
    CliqueSet ks = pentagonCliques();
    MethodologyConfig cfg;
    // Estimate for the all-crossing split: 5 procs + 2 links = 7; the
    // exact answer is 5 procs + 3 links = 8. Budget 7 exposes the gap.
    cfg.partitioner.constraints.maxDegree = 7;
    cfg.restarts = 8;
    const auto outcome = runMethodology(ks, cfg);
    EXPECT_TRUE(outcome.violations.empty());
    for (SwitchId s = 0; s < outcome.design.numSwitches; ++s)
        EXPECT_LE(outcome.design.switchDegree(s), 7u);
}

TEST(ColorGap, ExactColoringMatchesStandaloneChromatic)
{
    // The same C5 through graph::exactColoring directly (sanity that
    // the finalize path uses the true chromatic number).
    minnoc::graph::Ugraph c5(5);
    for (minnoc::graph::NodeId v = 0; v < 5; ++v)
        c5.addEdge(v, (v + 1) % 5);
    EXPECT_EQ(minnoc::graph::cliqueLowerBound(c5), 2u);
    EXPECT_EQ(minnoc::graph::exactColoring(c5).numColors, 3u);
}
