/**
 * @file
 * Cross-host conformance and chaos tests for `--hosts`: the
 * coordinator drives real `minnoc serve` daemons on loopback (each a
 * forked DaemonProc) and the merged report must be byte-identical to
 * the in-process explorer and the pipe-worker path — cold, warm, at
 * any host/worker mix, and under injected daemon failures.
 *
 * Chaos coverage reuses the dist fault hooks with the value "serve":
 * MINNOC_DIST_TEST_CRASH=serve makes a daemon _exit(42) at the start
 * of its second job's compute (so part of the shard is already
 * delivered, exercising the real partial-requeue path), and _HANG
 * parks it in an unresponsive loop for the coordinator's activity
 * timeout to catch. Harder failures — SIGKILL mid-run, a dead address,
 * an all-hosts-dead fallback onto a forked local worker — are induced
 * directly.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "dist/coordinator.hpp"
#include "dist_test_harness.hpp"
#include "dse/explorer.hpp"
#include "phase/evaluator.hpp"
#include "serve/protocol.hpp"
#include "trace/synthetic.hpp"
#include "util/cancel.hpp"

using namespace minnoc;
using namespace minnoc::dist;
using namespace minnoc::disttest;

namespace {

DistOptions
hostsOnly(const std::vector<HostSpec> &hosts)
{
    DistOptions opt;
    opt.workers = 0;
    opt.hosts = hosts;
    return opt;
}

std::vector<HostSpec>
specsOf(std::initializer_list<const DaemonProc *> daemons)
{
    std::vector<HostSpec> hosts;
    for (const auto *d : daemons)
        hosts.push_back(parseHostList(d->hostSpec())[0]);
    return hosts;
}

} // namespace

TEST(DistHosts, ByteIdenticalAcrossBackendMixes)
{
    const auto tr = cgTrace();
    const auto cfg = smallConfig("", false);
    const auto base = dse::explore(tr, cfg);

    DaemonProc::Options dopt;
    dopt.useCache = false;
    DaemonProc a(dopt), b(dopt);
    ASSERT_GT(a.port(), 0);
    ASSERT_GT(b.port(), 0);

    // All-remote: every lane is a daemon.
    {
        DistStats stats;
        const auto report = exploreDistributed(
            tr, cfg, hostsOnly(specsOf({&a, &b})), &stats);
        EXPECT_EQ(base.toJson(), report.toJson());
        ASSERT_EQ(stats.hostOf.size(), 2u);
        EXPECT_EQ(stats.hostOf[0], a.hostSpec());
        EXPECT_EQ(stats.hostOf[1], b.hostSpec());
        EXPECT_TRUE(stats.failures.empty());
        std::uint64_t jobs = 0;
        for (const auto n : stats.jobs)
            jobs += n;
        EXPECT_EQ(jobs, base.points.size());
    }

    // Mixed: one daemon lane ahead of one forked pipe worker.
    {
        DistOptions opt;
        opt.workers = 1;
        opt.hosts = specsOf({&a});
        DistStats stats;
        const auto report = exploreDistributed(tr, cfg, opt, &stats);
        EXPECT_EQ(base.toJson(), report.toJson());
        ASSERT_EQ(stats.hostOf.size(), 2u);
        EXPECT_EQ(stats.hostOf[0], a.hostSpec());
        EXPECT_EQ(stats.hostOf[1], ""); // forked lane
        EXPECT_TRUE(stats.failures.empty());
    }
}

TEST(DistHosts, WarmRerunOnDaemonCachesIsAllHits)
{
    const auto tr = cgTrace();
    // The coordinator never touches a disk cache on an all-remote
    // run; each daemon owns its cache directory (the socket is the
    // trust boundary), so the coordinator-side config disables it.
    const auto cfg = smallConfig("", false);

    DaemonProc::Options da;
    da.cacheDir = tempCacheDir("hosts-warm-a");
    DaemonProc::Options db;
    db.cacheDir = tempCacheDir("hosts-warm-b");
    DaemonProc a(da), b(db);
    ASSERT_GT(a.port(), 0);
    ASSERT_GT(b.port(), 0);
    const auto opt = hostsOnly(specsOf({&a, &b}));

    const auto cold = exploreDistributed(tr, cfg, opt);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.cacheMisses, cold.points.size());

    // Same hosts, same shards: every job lands on the entry its
    // daemon stored the first time.
    const auto warm = exploreDistributed(tr, cfg, opt);
    EXPECT_EQ(warm.cacheHits, warm.points.size());
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(cold.toJson(), warm.toJson());

    // And the in-process explorer agrees byte-for-byte.
    EXPECT_EQ(cold.toJson(), dse::explore(tr, cfg).toJson());
}

TEST(DistHosts, CrashedDaemonFailsOverAndReportUnchanged)
{
    const auto tr = cgTrace();
    const auto cfg = smallConfig("", false);
    const auto base = dse::explore(tr, cfg);

    DaemonProc::Options armed;
    armed.useCache = false;
    armed.env = {{"MINNOC_DIST_TEST_CRASH", "serve"}};
    DaemonProc::Options clean;
    clean.useCache = false;
    DaemonProc a(armed), b(clean);
    ASSERT_GT(a.port(), 0);
    ASSERT_GT(b.port(), 0);

    DistStats stats;
    const auto report = exploreDistributed(
        tr, cfg, hostsOnly(specsOf({&a, &b})), &stats);

    EXPECT_EQ(base.toJson(), report.toJson());
    ASSERT_EQ(stats.failures.size(), 1u);
    EXPECT_EQ(stats.failures[0].host, a.hostSpec());
    EXPECT_EQ(stats.failures[0].reason, "connection closed");
    // The hook fires after the first job, so the requeue is partial:
    // the delivered result is never recomputed.
    EXPECT_FALSE(stats.failures[0].requeuedJobs.empty());
    EXPECT_LT(stats.failures[0].requeuedJobs.size(),
              base.points.size());
    // The daemon really died on the injected _exit(42).
    EXPECT_EQ(a.await(), 42);

    const auto json = stats.toJson("explore");
    EXPECT_NE(json.find("\"host_failed\": [{"), std::string::npos);
    EXPECT_NE(json.find(a.hostSpec()), std::string::npos);
    // Remote failures never leak into the forked-worker array.
    EXPECT_NE(json.find("\"worker_failed\": []"), std::string::npos);
}

TEST(DistHosts, HungDaemonTimesOutAndFailsOver)
{
    const auto tr = cgTrace();
    const auto cfg = smallConfig("", false);
    const auto base = dse::explore(tr, cfg);

    DaemonProc::Options armed;
    armed.useCache = false;
    armed.env = {{"MINNOC_DIST_TEST_HANG", "serve"}};
    DaemonProc::Options clean;
    clean.useCache = false;
    DaemonProc a(armed), b(clean);
    ASSERT_GT(a.port(), 0);
    ASSERT_GT(b.port(), 0);

    auto opt = hostsOnly(specsOf({&a, &b}));
    opt.workerTimeoutMs = 2'500; // long enough for real results
    DistStats stats;
    const auto report = exploreDistributed(tr, cfg, opt, &stats);

    EXPECT_EQ(base.toJson(), report.toJson());
    ASSERT_EQ(stats.failures.size(), 1u);
    EXPECT_EQ(stats.failures[0].host, a.hostSpec());
    EXPECT_EQ(stats.failures[0].reason, "timeout");
}

TEST(DistHosts, DeadAddressFailsOverToSurvivor)
{
    const auto tr = cgTrace();
    const auto cfg = smallConfig("", false);
    const auto base = dse::explore(tr, cfg);

    DaemonProc::Options dopt;
    dopt.useCache = false;
    DaemonProc a(dopt), b(dopt);
    ASSERT_GT(a.port(), 0);
    ASSERT_GT(b.port(), 0);
    const auto hosts = specsOf({&a, &b});

    // Kill A before the run: its lane is born dead (connect refused
    // after the bounded retries) and the whole shard requeues onto B.
    a.kill(SIGKILL);
    ASSERT_EQ(a.await(), 128 + SIGKILL);

    DistStats stats;
    const auto report =
        exploreDistributed(tr, cfg, hostsOnly(hosts), &stats);
    EXPECT_EQ(base.toJson(), report.toJson());
    ASSERT_EQ(stats.failures.size(), 1u);
    EXPECT_EQ(stats.failures[0].host, hosts[0].label());
    EXPECT_NE(stats.failures[0].reason.find("connect"),
              std::string::npos);
    EXPECT_EQ(stats.failures[0].requeuedJobs.size(),
              base.points.size() / 2);
}

TEST(DistHosts, AllHostsDeadFallsBackToForkedWorker)
{
    const auto tr = cgTrace();
    const auto cfg = smallConfig("", false);
    const auto base = dse::explore(tr, cfg);

    DaemonProc::Options dopt;
    dopt.useCache = false;
    DaemonProc a(dopt);
    ASSERT_GT(a.port(), 0);
    const auto hosts = specsOf({&a});
    a.kill(SIGKILL);
    a.await();

    // Single (dead) host, zero workers: the requeue has no surviving
    // host and must fork a local pipe worker instead.
    DistStats stats;
    const auto report =
        exploreDistributed(tr, cfg, hostsOnly(hosts), &stats);
    EXPECT_EQ(base.toJson(), report.toJson());
    ASSERT_EQ(stats.failures.size(), 1u);
    EXPECT_EQ(stats.failures[0].host, hosts[0].label());
    ASSERT_EQ(stats.hostOf.size(), 2u);
    EXPECT_EQ(stats.hostOf.back(), ""); // the forked fallback lane
    EXPECT_EQ(stats.jobs.back(), base.points.size());
}

TEST(DistHosts, SigkillMidRunStillConverges)
{
    const auto tr = cgTrace();
    auto cfg = smallConfig("", false);
    cfg.grid.seeds = {1, 2}; // 8 jobs: enough runway for the kill
    const auto base = dse::explore(tr, cfg);

    DaemonProc::Options dopt;
    dopt.useCache = false;
    DaemonProc a(dopt), b(dopt);
    ASSERT_GT(a.port(), 0);
    ASSERT_GT(b.port(), 0);

    // A real SIGKILL from outside, racing the sweep. Whichever side
    // of the race wins, the report bytes must not change; the failure
    // record appears exactly when the kill landed mid-shard.
    std::thread killer([&a] {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        a.kill(SIGKILL);
    });
    DistStats stats;
    const auto report = exploreDistributed(
        tr, cfg, hostsOnly(specsOf({&a, &b})), &stats);
    killer.join();

    EXPECT_EQ(base.toJson(), report.toJson());
    for (const auto &f : stats.failures)
        EXPECT_EQ(f.host, a.hostSpec());
    EXPECT_EQ(a.await(), 128 + SIGKILL);
}

TEST(DistHosts, CancelTokenUnwindsAndDaemonsSurvive)
{
    const auto tr = cgTrace();
    auto cfg = smallConfig("", false);
    // Enough work that the deadline fires mid-run on any machine.
    cfg.grid.maxDegrees = {4, 5, 6};
    cfg.grid.seeds = {1, 2, 3};
    cfg.grid.restarts = {8};

    DaemonProc::Options dopt;
    dopt.useCache = false;
    DaemonProc a(dopt), b(dopt);
    ASSERT_GT(a.port(), 0);
    ASSERT_GT(b.port(), 0);

    CancelToken token;
    cfg.cancel = &token;
    token.setDeadlineIn(250'000); // 250 ms

    EXPECT_THROW(
        exploreDistributed(tr, cfg, hostsOnly(specsOf({&a, &b}))),
        CancelledError);

    // The daemons outlive their cancelled client: the dropped
    // connections Disconnect-cancel the in-flight jobs, and both
    // daemons still drain gracefully on SIGTERM.
    EXPECT_EQ(::kill(a.pid(), 0), 0);
    EXPECT_EQ(::kill(b.pid(), 0), 0);
    EXPECT_EQ(a.terminate(), 0);
    EXPECT_EQ(b.terminate(), 0);
}

TEST(DistHostsPhases, ByteIdenticalToInProcessEvaluation)
{
    const auto tr = trace::phaseShift({trace::Pattern::Neighbor,
                                       trace::Pattern::Transpose,
                                       trace::Pattern::Hotspot});
    phase::PhaseEvalConfig cfg;
    cfg.methodology.partitioner.constraints.maxDegree = 5;
    cfg.methodology.restarts = 4;
    cfg.threads = 1;

    const auto base = phase::evaluatePhases(tr, cfg);

    DaemonProc::Options dopt;
    dopt.useCache = false;
    DaemonProc a(dopt), b(dopt);
    ASSERT_GT(a.port(), 0);
    ASSERT_GT(b.port(), 0);

    DistStats stats;
    const auto report = evaluatePhasesDistributed(
        tr, cfg, hostsOnly(specsOf({&a, &b})), &stats);
    EXPECT_EQ(base.toJson(), report.toJson());
    std::uint64_t jobs = 0;
    for (const auto n : stats.jobs)
        jobs += n;
    EXPECT_EQ(jobs, report.phases.size());
    EXPECT_TRUE(stats.failures.empty());
}

TEST(DistHostsPhases, CrashedDaemonStillYieldsIdenticalReport)
{
    const auto tr = trace::phaseShift(
        {trace::Pattern::Neighbor, trace::Pattern::Transpose,
         trace::Pattern::Hotspot});
    phase::PhaseEvalConfig cfg;
    cfg.methodology.partitioner.constraints.maxDegree = 5;
    cfg.methodology.restarts = 2;
    cfg.threads = 1;

    const auto base = phase::evaluatePhases(tr, cfg);

    DaemonProc::Options armed;
    armed.useCache = false;
    armed.env = {{"MINNOC_DIST_TEST_CRASH", "serve"}};
    DaemonProc::Options clean;
    clean.useCache = false;
    DaemonProc a(armed), b(clean);
    ASSERT_GT(a.port(), 0);
    ASSERT_GT(b.port(), 0);

    DistStats stats;
    const auto report = evaluatePhasesDistributed(
        tr, cfg, hostsOnly(specsOf({&a, &b})), &stats);
    EXPECT_EQ(base.toJson(), report.toJson());
    ASSERT_EQ(stats.failures.size(), 1u);
    EXPECT_EQ(stats.failures[0].host, a.hostSpec());
}

namespace {

/** One request/reply round trip on a fresh connection. */
std::optional<serve::Reply>
roundTripLine(const HostSpec &host, const std::string &line)
{
    std::string err;
    const int fd = connectHost(host, err, 2);
    if (fd < 0)
        return std::nullopt;
    std::optional<serve::Reply> reply;
    if (sendAll(fd, line + "\n")) {
        std::string buf;
        char c = 0;
        while (::read(fd, &c, 1) == 1 && c != '\n')
            buf.push_back(c);
        reply = serve::parseReply(buf);
    }
    ::close(fd);
    return reply;
}

} // namespace

TEST(DistHostsProtocol, DaemonSurvivesHostileDseJobLines)
{
    DaemonProc::Options dopt;
    dopt.useCache = false;
    DaemonProc d(dopt);
    ASSERT_GT(d.port(), 0);
    const auto host = parseHostList(d.hostSpec())[0];

    const std::string hostiles[] = {
        // Garbage bytes.
        "not json at all",
        // Truncated object.
        "{\"id\": \"x\", \"cmd\": \"dse_job\", \"sig",
        // Missing mandatory sig.
        "{\"id\": \"x\", \"cmd\": \"dse_job\", \"trace\": \"t\"}",
        // Out-of-range attempt.
        "{\"id\": \"x\", \"cmd\": \"dse_job\", \"trace\": \"t\","
        " \"sig\": \"s\", \"attempt\": 7}",
        // Misplaced explore-only key.
        "{\"id\": \"x\", \"cmd\": \"dse_job\", \"trace\": \"t\","
        " \"sig\": \"s\", \"degrees\": [4]}",
        // Well-formed request whose trace bytes are garbage: the
        // compute-side fatal must come back structured, not kill the
        // daemon.
        "{\"id\": \"x\", \"cmd\": \"dse_job\", \"trace\": \"t\","
        " \"sig\": \"s\"}",
        // Oversized line: rejected at the framing layer.
        "{\"id\": \"x\", \"cmd\": \"dse_job\", \"pad\": \"" +
            std::string(serve::kMaxRequestBytes + 1, 'a') + "\"}",
    };
    for (const auto &line : hostiles) {
        const auto reply = roundTripLine(host, line);
        ASSERT_TRUE(reply.has_value())
            << "no structured reply for a "
            << line.size() << "-byte hostile line";
        EXPECT_FALSE(reply->ok);
        EXPECT_FALSE(reply->code.empty());
        EXPECT_FALSE(reply->message.empty());
    }

    // After everything above the daemon still answers health checks
    // and still drains gracefully.
    const auto pong =
        roundTripLine(host, "{\"id\": \"p\", \"cmd\": \"ping\"}");
    ASSERT_TRUE(pong.has_value());
    EXPECT_TRUE(pong->ok);
    EXPECT_EQ(d.terminate(), 0);
}

TEST(DistHostsProtocol, StatusReportsJobCounters)
{
    const auto tr = cgTrace();
    const auto cfg = smallConfig("", false);

    DaemonProc::Options dopt;
    dopt.useCache = false;
    DaemonProc d(dopt);
    ASSERT_GT(d.port(), 0);
    const auto hosts = specsOf({&d});

    (void)exploreDistributed(tr, cfg, hostsOnly(hosts));

    const auto status =
        roundTripLine(hosts[0], "{\"id\": \"s\", \"cmd\": \"status\"}");
    ASSERT_TRUE(status.has_value());
    EXPECT_TRUE(status->ok);
    EXPECT_NE(status->result.find("\"dse_jobs\": 4"),
              std::string::npos)
        << status->result;
    EXPECT_NE(status->result.find("\"job_cache_hits\""),
              std::string::npos);
    EXPECT_EQ(d.terminate(), 0);
}

TEST(DistHostsParse, HostListParsing)
{
    EXPECT_TRUE(parseHostList("").empty());
    const auto one = parseHostList("127.0.0.1:8841");
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0].host, "127.0.0.1");
    EXPECT_EQ(one[0].port, 8841);
    EXPECT_EQ(one[0].label(), "127.0.0.1:8841");

    const auto two = parseHostList("localhost:1,[::1]:65535");
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0].host, "localhost");
    EXPECT_EQ(two[0].port, 1);
    EXPECT_EQ(two[1].host, "[::1]");
    EXPECT_EQ(two[1].port, 65535);
}
