/**
 * @file
 * Unit tests for the routing functions.
 */

#include <gtest/gtest.h>

#include "core/methodology.hpp"
#include "topo/builders.hpp"
#include "topo/routing.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"

using namespace minnoc;
using namespace minnoc::topo;

TEST(CrossbarRouting, TwoHopPaths)
{
    const auto net = buildCrossbar(4);
    const auto *table =
        dynamic_cast<const TableRouting *>(net.routing.get());
    ASSERT_NE(table, nullptr);
    for (core::ProcId s = 0; s < 4; ++s) {
        for (core::ProcId d = 0; d < 4; ++d) {
            if (s == d)
                continue;
            EXPECT_EQ(table->path(s, d).size(), 2u);
        }
    }
}

TEST(MeshDor, PathsAreMinimalAndXFirst)
{
    const auto net = buildMesh(16); // 4x4
    const auto *table =
        dynamic_cast<const TableRouting *>(net.routing.get());
    ASSERT_NE(table, nullptr);

    for (core::ProcId s = 0; s < 16; ++s) {
        for (core::ProcId d = 0; d < 16; ++d) {
            if (s == d)
                continue;
            const auto &path = table->path(s, d);
            const std::uint32_t hops =
                static_cast<std::uint32_t>(path.size()) - 2;
            const std::uint32_t manh =
                (s % 4 > d % 4 ? s % 4 - d % 4 : d % 4 - s % 4) +
                (s / 4 > d / 4 ? s / 4 - d / 4 : d / 4 - s / 4);
            EXPECT_EQ(hops, manh) << "pair (" << s << "," << d << ")";

            // X-first: once a vertical move happens no horizontal move
            // may follow.
            bool movedY = false;
            for (std::size_t i = 1; i + 1 < path.size(); ++i) {
                const auto &l = net.topo->link(path[i]);
                const auto a = net.topo->switchOf(l.from);
                const auto b = net.topo->switchOf(l.to);
                const bool vertical = (a % 4) == (b % 4);
                if (vertical)
                    movedY = true;
                else
                    EXPECT_FALSE(movedY) << "Y before X on (" << s << ","
                                         << d << ")";
            }
        }
    }
}

TEST(MeshDor, DeterministicSingleCandidate)
{
    const auto net = buildMesh(8);
    const auto cands =
        net.routing->candidates(net.topo->procNode(0), 0, 5);
    EXPECT_EQ(cands.size(), 1u);
}

TEST(TorusTfar, OffersBothMinimalDirections)
{
    const auto net = buildTorus(16); // 4x4
    // From (0,0) to (2,2): x distance 2 either way, y distance 2 either
    // way: four candidates at the source switch.
    const auto cands = net.routing->candidates(
        net.topo->switchNode(0), 0, 10); // proc 10 = (2,2)
    EXPECT_EQ(cands.size(), 4u);
}

TEST(TorusTfar, SingleDirectionWhenAligned)
{
    const auto net = buildTorus(16);
    // From (0,0) to (1,0): one x hop forward is strictly shorter.
    const auto cands =
        net.routing->candidates(net.topo->switchNode(0), 0, 1);
    EXPECT_EQ(cands.size(), 1u);
    EXPECT_EQ(net.topo->link(cands[0]).to, net.topo->switchNode(1));
}

TEST(TorusTfar, EjectsAtDestinationSwitch)
{
    const auto net = buildTorus(8);
    const auto cands =
        net.routing->candidates(net.topo->switchNode(3), 0, 3);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(net.topo->link(cands[0]).to, net.topo->procNode(3));
}

TEST(TorusTfar, WrapsAround)
{
    const auto net = buildTorus(16);
    // From (0,0) to (3,0): wrap -x (1 hop) beats +x (3 hops).
    const auto cands =
        net.routing->candidates(net.topo->switchNode(0), 0, 3);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(net.topo->link(cands[0]).to, net.topo->switchNode(3));
}

TEST(TableRouting, RejectsDiscontinuousPath)
{
    const auto net = buildMesh(4);
    TableRouting table(*net.topo, "bad");
    // Injection link of 0 followed by ejection of 3 is discontinuous on
    // a 2x2 mesh (different switches).
    EXPECT_DEATH(table.setPath(0, 3,
                               {net.topo->injectionLink(0),
                                net.topo->ejectionLink(3)}),
                 "discontinuous");
}

TEST(TableRouting, MissingPathPanics)
{
    const auto net = buildMesh(4);
    TableRouting table(*net.topo, "empty");
    EXPECT_DEATH(table.path(0, 1), "no path");
}

TEST(DesignRouting, CoversAllPairsIncludingUnknown)
{
    // Build a design from CG-8 and confirm the routing table serves
    // every pair, including those CG never communicates.
    trace::NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    const auto tr = trace::generateCG(cfg);
    const auto ks = trace::analyzeByCall(tr);
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = core::runMethodology(ks, mcfg);
    const auto plan = planFloor(outcome.design);
    const auto net = buildFromDesign(outcome.design, plan);

    const auto *table =
        dynamic_cast<const TableRouting *>(net.routing.get());
    ASSERT_NE(table, nullptr);
    for (core::ProcId s = 0; s < 8; ++s) {
        for (core::ProcId d = 0; d < 8; ++d) {
            if (s != d) {
                EXPECT_TRUE(table->hasPath(s, d));
            }
        }
    }
    // validateRouting re-walks every pair; rerun explicitly.
    EXPECT_NO_FATAL_FAILURE(validateRouting(*net.topo, *net.routing));
}

TEST(DesignRouting, KnownCommsFollowFinalizedColors)
{
    trace::NasConfig cfg;
    cfg.ranks = 8;
    cfg.iterations = 1;
    const auto tr = trace::generateCG(cfg);
    const auto ks = trace::analyzeByCall(tr);
    core::MethodologyConfig mcfg;
    mcfg.partitioner.constraints.maxDegree = 5;
    const auto outcome = core::runMethodology(ks, mcfg);
    const auto plan = planFloor(outcome.design);
    const auto net = buildFromDesign(outcome.design, plan);
    const auto *table =
        dynamic_cast<const TableRouting *>(net.routing.get());
    ASSERT_NE(table, nullptr);

    // Every design comm's path length equals its switch route length +1
    // (injection + per-pipe links + ejection).
    for (core::CommId c = 0; c < outcome.design.comms.size(); ++c) {
        const auto &comm = outcome.design.comms[c];
        if (comm.src == comm.dst)
            continue;
        const auto &route = outcome.design.routes[c];
        const auto &path = table->path(comm.src, comm.dst);
        EXPECT_EQ(path.size(), route.size() + 1);
    }
}
