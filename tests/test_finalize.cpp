/**
 * @file
 * Unit tests for design finalization (formal coloring, link assignment,
 * orphan pruning, connectivity patching).
 */

#include <gtest/gtest.h>

#include "core/finalize.hpp"
#include "core/partitioner.hpp"
#include "graph/connectivity.hpp"
#include "graph/digraph.hpp"
#include "trace/analyzer.hpp"
#include "trace/nas_generators.hpp"
#include "util/rng.hpp"

using namespace minnoc::core;
using minnoc::Rng;

namespace {

DesignNetwork
partitionedCg(CliqueSet &ks, std::uint32_t ranks, std::uint32_t degree)
{
    minnoc::trace::NasConfig cfg;
    cfg.ranks = ranks;
    cfg.iterations = 1;
    const auto tr = minnoc::trace::generateCG(cfg);
    ks = minnoc::trace::analyzeByCall(tr);
    ks.reduceToMaximum();
    DesignNetwork net(ks);
    PartitionerConfig pc;
    pc.constraints.maxDegree = degree;
    partitionNetwork(net, pc);
    return net;
}

} // namespace

TEST(Finalize, MegaswitchFinalizesToOneSwitch)
{
    CliqueSet ks(4);
    ks.addClique({Comm(0, 1), Comm(2, 3)});
    DesignNetwork net(ks);
    const auto design = finalizeDesign(net);
    EXPECT_EQ(design.numSwitches, 1u);
    EXPECT_TRUE(design.pipes.empty());
    EXPECT_EQ(design.totalLinks(), 0u);
    EXPECT_EQ(design.switchDegree(0), 4u);
    EXPECT_TRUE(design.colorsExact);
}

TEST(Finalize, LinkCountsMatchChromaticNumbers)
{
    // Two conflicting comms on one pipe per direction: exactly 2 links.
    CliqueSet ks(4);
    ks.addClique({Comm(0, 2), Comm(1, 3)});
    DesignNetwork net(ks);
    Rng rng(1);
    const SwitchId sj = net.splitSwitch(0, rng);
    for (ProcId p : {0u, 1u})
        net.moveProc(p, 0);
    for (ProcId p : {2u, 3u})
        net.moveProc(p, sj);
    const auto design = finalizeDesign(net);
    ASSERT_EQ(design.pipes.size(), 1u);
    EXPECT_EQ(design.pipes[0].links, 2u);
    // Conflicting comms must receive distinct link colors.
    const auto &fwd = design.pipes[0].fwdLink;
    ASSERT_EQ(fwd.size(), 2u);
    const auto it = fwd.begin();
    EXPECT_NE(it->second, std::next(it)->second);
}

TEST(Finalize, NonConflictingCommsShareOneLink)
{
    CliqueSet ks(4);
    ks.addClique({Comm(0, 2)});
    ks.addClique({Comm(1, 3)});
    DesignNetwork net(ks);
    Rng rng(1);
    const SwitchId sj = net.splitSwitch(0, rng);
    for (ProcId p : {0u, 1u})
        net.moveProc(p, 0);
    for (ProcId p : {2u, 3u})
        net.moveProc(p, sj);
    const auto design = finalizeDesign(net);
    ASSERT_EQ(design.pipes.size(), 1u);
    EXPECT_EQ(design.pipes[0].links, 1u);
}

TEST(Finalize, OrphanSwitchesPruned)
{
    CliqueSet ks(4);
    ks.addClique({Comm(0, 1), Comm(2, 3)});
    DesignNetwork net(ks);
    Rng rng(1);
    const SwitchId sj = net.splitSwitch(0, rng);
    // Pull everything back to switch 0: sj becomes an orphan.
    for (ProcId p = 0; p < 4; ++p)
        net.moveProc(p, 0);
    (void)sj;
    const auto design = finalizeDesign(net);
    EXPECT_EQ(design.numSwitches, 1u);
    for (ProcId p = 0; p < 4; ++p)
        EXPECT_EQ(design.procHome[p], 0u);
}

TEST(Finalize, ConnectivityPatchJoinsIslands)
{
    // Two comms fully inside two separate switch islands: the patch
    // must connect them.
    CliqueSet ks(4);
    ks.addClique({Comm(0, 1)});
    ks.addClique({Comm(2, 3)});
    DesignNetwork net(ks);
    Rng rng(1);
    const SwitchId sj = net.splitSwitch(0, rng);
    for (ProcId p : {0u, 1u})
        net.moveProc(p, 0);
    for (ProcId p : {2u, 3u})
        net.moveProc(p, sj);
    const auto design = finalizeDesign(net);
    ASSERT_EQ(design.pipes.size(), 1u);
    EXPECT_TRUE(design.pipes[0].connectivityOnly);
    EXPECT_EQ(design.pipes[0].links, 1u);

    // The switch graph must now be strongly connected.
    minnoc::graph::Digraph sg(design.numSwitches);
    for (const auto &p : design.pipes) {
        sg.addEdge(p.key.a, p.key.b);
        sg.addEdge(p.key.b, p.key.a);
    }
    EXPECT_TRUE(minnoc::graph::isStronglyConnected(sg));
}

TEST(Finalize, CgSixteenIsConnectedAndWithinDegree)
{
    CliqueSet ks;
    auto net = partitionedCg(ks, 16, 5);
    const auto design = finalizeDesign(net);

    minnoc::graph::Digraph sg(design.numSwitches);
    for (const auto &p : design.pipes) {
        sg.addEdge(p.key.a, p.key.b);
        sg.addEdge(p.key.b, p.key.a);
    }
    EXPECT_TRUE(minnoc::graph::isStronglyConnected(sg));
    for (SwitchId s = 0; s < design.numSwitches; ++s)
        EXPECT_LE(design.switchDegree(s), 5u);
    EXPECT_TRUE(design.colorsExact);
}

TEST(Finalize, RoutesSurviveRemapping)
{
    CliqueSet ks;
    auto net = partitionedCg(ks, 16, 5);
    const auto design = finalizeDesign(net);
    for (CommId c = 0; c < design.comms.size(); ++c) {
        const auto &route = design.routes[c];
        ASSERT_FALSE(route.empty());
        EXPECT_EQ(route.front(), design.procHome[design.comms[c].src]);
        EXPECT_EQ(route.back(), design.procHome[design.comms[c].dst]);
        for (const auto s : route)
            EXPECT_LT(s, design.numSwitches);
        // Every hop is a finalized pipe with a link color for this comm.
        for (std::size_t i = 0; i + 1 < route.size(); ++i) {
            const auto pi =
                design.pipeIndex(PipeKey(route[i], route[i + 1]));
            ASSERT_NE(pi, FinalizedDesign::npos);
            const auto &pipe = design.pipes[pi];
            const bool fwd = route[i] < route[i + 1];
            const auto &linkOf = fwd ? pipe.fwdLink : pipe.bwdLink;
            const auto it = linkOf.find(c);
            ASSERT_NE(it, linkOf.end());
            EXPECT_LT(it->second, pipe.links);
        }
    }
}

TEST(Finalize, PipeIndexMissingKey)
{
    CliqueSet ks(4);
    ks.addClique({Comm(0, 1)});
    DesignNetwork net(ks);
    const auto design = finalizeDesign(net);
    EXPECT_EQ(design.pipeIndex(PipeKey(0, 1)), FinalizedDesign::npos);
}

TEST(Finalize, ToStringSmoke)
{
    CliqueSet ks(4);
    ks.addClique({Comm(0, 1)});
    DesignNetwork net(ks);
    const auto design = finalizeDesign(net);
    EXPECT_NE(design.toString().find("FinalizedDesign"),
              std::string::npos);
}
