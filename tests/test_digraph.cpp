/**
 * @file
 * Unit tests for the directed multigraph.
 */

#include <gtest/gtest.h>

#include "graph/digraph.hpp"

using namespace minnoc::graph;

TEST(Digraph, EmptyGraph)
{
    Digraph g;
    EXPECT_EQ(g.numNodes(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_TRUE(g.edges().empty());
}

TEST(Digraph, AddNodesReturnsFirstId)
{
    Digraph g;
    EXPECT_EQ(g.addNode(), 0u);
    EXPECT_EQ(g.addNodes(3), 1u);
    EXPECT_EQ(g.numNodes(), 4u);
}

TEST(Digraph, AddEdgeBasics)
{
    Digraph g(3);
    const EdgeId e = g.addEdge(0, 1, 5, 42);
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.edge(e).src, 0u);
    EXPECT_EQ(g.edge(e).dst, 1u);
    EXPECT_EQ(g.edge(e).weight, 5);
    EXPECT_EQ(g.edge(e).tag, 42);
}

TEST(Digraph, ParallelEdgesAllowed)
{
    Digraph g(2);
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    g.addEdge(0, 1);
    EXPECT_EQ(g.countEdges(0, 1), 3u);
    EXPECT_EQ(g.outDegree(0), 3u);
    EXPECT_EQ(g.inDegree(1), 3u);
}

TEST(Digraph, DirectionalityRespected)
{
    Digraph g(2);
    g.addEdge(0, 1);
    EXPECT_EQ(g.countEdges(1, 0), 0u);
    EXPECT_EQ(g.findEdge(1, 0), kNoEdge);
    EXPECT_NE(g.findEdge(0, 1), kNoEdge);
}

TEST(Digraph, RemoveEdgeIsLazyButHidden)
{
    Digraph g(3);
    const EdgeId a = g.addEdge(0, 1);
    const EdgeId b = g.addEdge(0, 2);
    g.removeEdge(a);
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.outDegree(0), 1u);
    EXPECT_EQ(g.findEdge(0, 1), kNoEdge);
    EXPECT_EQ(g.findEdge(0, 2), b);
    const auto live = g.edges();
    ASSERT_EQ(live.size(), 1u);
    EXPECT_EQ(live[0], b);
}

TEST(Digraph, DoubleRemovePanics)
{
    Digraph g(2);
    const EdgeId e = g.addEdge(0, 1);
    g.removeEdge(e);
    EXPECT_DEATH(g.removeEdge(e), "dead edge");
}

TEST(Digraph, SuccessorsPredecessors)
{
    Digraph g(4);
    g.addEdge(0, 1);
    g.addEdge(0, 2);
    g.addEdge(3, 0);
    const auto succ = g.successors(0);
    EXPECT_EQ(succ.size(), 2u);
    const auto pred = g.predecessors(0);
    ASSERT_EQ(pred.size(), 1u);
    EXPECT_EQ(pred[0], 3u);
    EXPECT_EQ(g.degree(0), 3u);
}

TEST(Digraph, OutOfRangePanics)
{
    Digraph g(2);
    EXPECT_DEATH(g.addEdge(0, 5), "out of range");
    EXPECT_DEATH(g.outEdges(9), "out of range");
}

TEST(Digraph, EdgeWeightAndTagMutation)
{
    Digraph g(2);
    const EdgeId e = g.addEdge(0, 1);
    g.edgeWeight(e, 7);
    g.edgeTag(e, -2);
    EXPECT_EQ(g.edge(e).weight, 7);
    EXPECT_EQ(g.edge(e).tag, -2);
}

TEST(Digraph, SelfLoopAllowedInDigraph)
{
    // The generic digraph permits self loops (Topology forbids them at
    // its own level).
    Digraph g(1);
    g.addEdge(0, 0);
    EXPECT_EQ(g.outDegree(0), 1u);
    EXPECT_EQ(g.inDegree(0), 1u);
}

TEST(Digraph, ToStringSmoke)
{
    Digraph g(2);
    g.addEdge(0, 1, 3);
    const auto text = g.toString();
    EXPECT_NE(text.find("0 -> 1"), std::string::npos);
}
